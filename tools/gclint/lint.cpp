#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace gclint {

namespace {

constexpr const char* kRules[] = {"rand",           "wallclock",
                                  "thread",         "unchecked-status",
                                  "unordered-iter", "dtm-store",
                                  "hot-string",     "mc-blocking",
                                  "net-cost"};

/// A file after preprocessing: stripped code lines plus suppression state.
struct Prepared {
  const FileInput* input = nullptr;
  std::string path;                      ///< forward slashes, leading '/'
  std::vector<std::string> lines;        ///< comments/strings blanked
  std::vector<std::set<std::string>> allow;  ///< per-line allowed rules
  std::set<std::string> allow_file;
};

std::string normalize_path(const std::string& raw) {
  std::string path = raw;
  std::replace(path.begin(), path.end(), '\\', '/');
  if (path.empty() || path.front() != '/') path.insert(path.begin(), '/');
  return path;
}

bool in_dir(const Prepared& file, const char* dir) {
  return file.path.find(dir) != std::string::npos;
}

/// Blanks comments, string literals, and char literals while preserving
/// the line structure, so rule regexes never match inside either. Handles
/// raw strings with custom delimiters. The delimiting double quotes of
/// ordinary string literals are KEPT (contents blanked) so rules that care
/// about where literals sit — hot-string's `"..." + x` pattern — can see
/// them; raw and char literals are blanked entirely, quotes included.
std::string strip(const std::string& src) {
  std::string out;
  out.reserve(src.size());
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_end;  // ")delim\"" terminator of the active raw string
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   src[i - 1])) &&
                               src[i - 1] != '_'))) {
          std::size_t paren = src.find('(', i + 2);
          if (paren == std::string::npos) {
            out += c;
            break;
          }
          raw_end = ")" + src.substr(i + 2, paren - i - 2) + "\"";
          state = State::kRaw;
          out.append(paren - i + 1, ' ');
          i = paren;
        } else if (c == '"') {
          state = State::kString;
          out += '"';
        } else if (c == '\'') {
          state = State::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
          out += c;
        } else {
          out += ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          out += '"';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kRaw:
        if (src.compare(i, raw_end.size(), raw_end) == 0) {
          out.append(raw_end.size(), ' ');
          i += raw_end.size() - 1;
          state = State::kCode;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string::size_type begin = 0;
  while (begin <= text.size()) {
    const auto end = text.find('\n', begin);
    if (end == std::string::npos) {
      lines.push_back(text.substr(begin));
      break;
    }
    lines.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return lines;
}

bool is_blank(const std::string& line) {
  return std::all_of(line.begin(), line.end(), [](unsigned char c) {
    return std::isspace(c) != 0;
  });
}

std::vector<std::string> split_rule_list(const std::string& list) {
  std::vector<std::string> rules;
  std::string current;
  for (const char c : list) {
    if (c == ',') {
      if (!current.empty()) rules.push_back(current);
      current.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      current += c;
    }
  }
  if (!current.empty()) rules.push_back(current);
  return rules;
}

bool known_rule(const std::string& rule) {
  for (const char* name : kRules) {
    if (rule == name) return true;
  }
  return false;
}

/// Parses `// gclint: allow(...)` / `allow-file(...)` directives from the
/// ORIGINAL lines (they live inside comments, which strip() blanks out).
void collect_suppressions(const std::vector<std::string>& raw_lines,
                          Prepared& file, std::vector<Finding>& findings) {
  static const std::regex directive(
      R"(//\s*gclint:\s*(allow|allow-file)\(([^)]*)\))");
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    std::smatch match;
    if (!std::regex_search(raw_lines[i], match, directive)) continue;
    const bool whole_file = match[1] == "allow-file";
    for (const std::string& rule : split_rule_list(match[2])) {
      if (!known_rule(rule)) {
        findings.push_back({file.input->path, static_cast<int>(i + 1),
                            "directive",
                            "suppression names unknown rule '" + rule + "'"});
        continue;
      }
      if (whole_file) {
        file.allow_file.insert(rule);
      } else {
        file.allow[i].insert(rule);
        // A directive alone on its line covers the line below it.
        if (i + 1 < file.lines.size() && is_blank(file.lines[i])) {
          file.allow[i + 1].insert(rule);
        }
      }
    }
  }
}

bool suppressed(const Prepared& file, std::size_t line_index,
                const std::string& rule) {
  if (file.allow_file.count(rule) > 0) return true;
  return line_index < file.allow.size() &&
         file.allow[line_index].count(rule) > 0;
}

void report(const Prepared& file, std::size_t line_index,
            const std::string& rule, const std::string& message,
            std::vector<Finding>& findings) {
  if (suppressed(file, line_index, rule)) return;
  findings.push_back({file.input->path, static_cast<int>(line_index + 1),
                      rule, message});
}

// ---------------------------------------------------------------------------
// rand: nondeterministic random sources outside the blessed RNG module.

void check_rand(const Prepared& file, std::vector<Finding>& findings) {
  if (in_dir(file, "common/rng.")) return;
  static const std::regex pattern(
      R"(\b(std::rand\b|srand\s*\(|random_device\b))");
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    if (std::regex_search(file.lines[i], pattern)) {
      report(file, i, "rand",
             "nondeterministic random source; use gc::Rng (common/rng.hpp)",
             findings);
    }
  }
}

// ---------------------------------------------------------------------------
// wallclock: real-time reads inside simulation-path code. Virtual time
// comes from the DES engine; a wall-clock read there silently couples
// results to host speed.

void check_wallclock(const Prepared& file, std::vector<Finding>& findings) {
  if (!in_dir(file, "/des/") && !in_dir(file, "/net/") &&
      !in_dir(file, "/diet/") && !in_dir(file, "/ramses/")) {
    return;
  }
  static const std::regex pattern(
      R"(\b(system_clock|steady_clock|high_resolution_clock|gettimeofday|clock_gettime)\b)");
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    if (std::regex_search(file.lines[i], pattern)) {
      report(file, i, "wallclock",
             "wall-clock read in sim-path code; use Env::now() virtual time",
             findings);
    }
  }
}

// ---------------------------------------------------------------------------
// thread: raw std::thread outside the shared pool. Ad-hoc threads bypass
// the pool's determinism guarantees and GC_THREADS sizing.

void check_thread(const Prepared& file, std::vector<Finding>& findings) {
  if (in_dir(file, "/parallel/")) return;
  static const std::regex pattern(R"(\bstd::thread\b)");
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    if (std::regex_search(file.lines[i], pattern)) {
      report(file, i, "thread",
             "raw std::thread outside src/parallel; use the shared pool",
             findings);
    }
  }
}

// ---------------------------------------------------------------------------
// mc-blocking: wall-clock sleeps and unbounded blocking waits in the
// middleware layers (src/diet, src/dtm). Those layers run under the DPOR
// model checker (src/mc), which owns the virtual clock and explores one
// dispatch at a time — a host-time sleep or an open-ended wait there
// either stalls exploration or hides an ordering behind real time where
// the checker cannot permute it. Timer work belongs on Env::post_after;
// the few legitimate RealEnv-only blocking paths carry a suppression.

void check_mc_blocking(const Prepared& file, std::vector<Finding>& findings) {
  if (!in_dir(file, "/diet/") && !in_dir(file, "/dtm/")) return;
  // sleep_for/sleep_until: always wrong here, even bounded — they block
  // the dispatch thread on the host clock.
  static const std::regex sleep(R"(\b(sleep_for|sleep_until)\s*\()");
  // member wait() with no deadline: condition_variable::wait,
  // future::wait, semaphore-style wait. wait_for/wait_until (bounded)
  // and names like wait_idle do not match.
  static const std::regex wait(R"((\.|->)\s*wait\s*\()");
  // future<T>::get blocks until the value exists; only identifiers that
  // look like futures are flagged (smart-pointer .get() is everywhere).
  static const std::regex future_get(
      R"(\b\w*future\w*\s*(\.|->)\s*get\s*\(\s*\))");
  // counting_semaphore::acquire and friends.
  static const std::regex acquire(R"((\.|->)\s*acquire\s*\(\s*\))");
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& line = file.lines[i];
    const char* what = nullptr;
    if (std::regex_search(line, sleep)) {
      what = "wall-clock sleep";
    } else if (std::regex_search(line, wait)) {
      what = "unbounded wait()";
    } else if (std::regex_search(line, future_get)) {
      what = "blocking future get()";
    } else if (std::regex_search(line, acquire)) {
      what = "semaphore acquire()";
    }
    if (what != nullptr) {
      report(file, i, "mc-blocking",
             std::string(what) +
                 " in model-checked middleware; use Env::post_after (or a "
                 "bounded wait_for) so src/mc can explore around it",
             findings);
    }
  }
}

// ---------------------------------------------------------------------------
// unchecked-status: a bare expression-statement call to a function whose
// declaration (anywhere in the input set) returns Status or Result<...>.

std::set<std::string> collect_status_returning(
    const std::vector<Prepared>& files) {
  static const std::regex decl(
      R"((?:^|[^\w:<])(?:gc::)?(?:Status|Result<[^<>;]*>)\s+([A-Za-z_]\w*)\s*\()");
  std::set<std::string> names;
  for (const Prepared& file : files) {
    for (const std::string& line : file.lines) {
      auto begin = std::sregex_iterator(line.begin(), line.end(), decl);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        names.insert((*it)[1]);
      }
    }
  }
  // Factory helpers whose value is the point of the call; a bare statement
  // of these is dead code, not a swallowed error.
  names.erase("ok");
  names.erase("make_error");
  // Ambiguity guard: a name also declared with a void return anywhere in
  // the set (RunningStats::add vs ServiceTable::add) cannot be attributed
  // by token matching — precision wins over recall, skip it.
  static const std::regex void_decl(R"(\bvoid\s+([A-Za-z_]\w*)\s*\()");
  for (const Prepared& file : files) {
    for (const std::string& line : file.lines) {
      auto begin = std::sregex_iterator(line.begin(), line.end(), void_decl);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        names.erase((*it)[1]);
      }
    }
  }
  return names;
}

void check_unchecked_status(const Prepared& file,
                            const std::set<std::string>& status_fns,
                            std::vector<Finding>& findings) {
  // Anchored at statement start: assignments, conditions, and `return`
  // lines never match, only a discarded call like `registry.unbind(n);`.
  static const std::regex bare_call(
      R"(^\s*(?:[A-Za-z_]\w*(?:::|\.|->))*([A-Za-z_]\w*)\s*\(.*\)\s*;\s*$)");
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    std::smatch match;
    if (!std::regex_match(file.lines[i], match, bare_call)) continue;
    const std::string name = match[1];
    if (status_fns.count(name) == 0) continue;
    report(file, i, "unchecked-status",
           "result of Status-returning '" + name +
               "' is discarded; check it or cast to void with a reason",
           findings);
  }
}

// ---------------------------------------------------------------------------
// unordered-iter: range-for over a container declared unordered in the
// same file, feeding serialization/hash/stream calls — iteration order is
// hash-dependent and varies across libstdc++ versions and runs.

std::set<std::string> collect_unordered_names(const Prepared& file) {
  static const std::regex decl(
      R"(\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s+([A-Za-z_]\w*)\s*[;{=])");
  std::set<std::string> names;
  for (const std::string& line : file.lines) {
    auto begin = std::sregex_iterator(line.begin(), line.end(), decl);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      names.insert((*it)[1]);
    }
  }
  return names;
}

void check_unordered_iter(const Prepared& file,
                          std::vector<Finding>& findings) {
  const std::set<std::string> unordered = collect_unordered_names(file);
  if (unordered.empty()) return;
  static const std::regex loop(R"(\bfor\s*\([^)]*:\s*([A-Za-z_]\w*)\s*\))");
  static const std::regex sink(
      R"((serialize|encode|\bhash|Hash|fnv|digest|<<|\.str\s*\())");
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    std::smatch match;
    if (!std::regex_search(file.lines[i], match, loop)) continue;
    if (unordered.count(match[1]) == 0) continue;
    // Scan the loop body: until braces opened at/after the `for` close,
    // capped to keep the heuristic local.
    int depth = 0;
    bool opened = false;
    const std::size_t last = std::min(file.lines.size(), i + 16);
    for (std::size_t j = i; j < last; ++j) {
      for (const char c : file.lines[j]) {
        if (c == '{') {
          ++depth;
          opened = true;
        } else if (c == '}') {
          --depth;
        }
      }
      if (std::regex_search(file.lines[j], sink)) {
        report(file, i, "unordered-iter",
               "iteration over unordered container '" + std::string(match[1]) +
                   "' feeds serialized/hashed/streamed output; sort first or "
                   "use an ordered container",
               findings);
        break;
      }
      if (opened && depth <= 0) break;
    }
  }
}

// ---------------------------------------------------------------------------
// dtm-store: direct DataManager::store outside the data-management layer.
// Every store must ride the SED's store_value path so the replica catalog
// hears about it; a bypassed store is invisible to locate/replication and
// leaks on eviction. Matches `.store(`/`->store(` on names declared
// DataManager in the same file (atomics' .store() stays invisible because
// their names are never declared DataManager).

std::set<std::string> collect_datamanager_names(const Prepared& file) {
  static const std::regex decl(
      R"(\b(?:dtm::)?DataManager\s*[&*]?\s+([A-Za-z_]\w*)\s*[;{=(,)])");
  std::set<std::string> names;
  for (const std::string& line : file.lines) {
    auto begin = std::sregex_iterator(line.begin(), line.end(), decl);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      names.insert((*it)[1]);
    }
  }
  return names;
}

void check_dtm_store(const Prepared& file, std::vector<Finding>& findings) {
  if (in_dir(file, "/dtm/") || in_dir(file, "diet/sed.cpp")) return;
  const std::set<std::string> managers = collect_datamanager_names(file);
  static const std::regex accessor(
      R"(\bdata_manager\s*\(\s*\)\s*(?:\.|->)\s*store\s*\()");
  static const std::regex call(
      R"(\b([A-Za-z_]\w*)\s*(?:\.|->)\s*store\s*\()");
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& line = file.lines[i];
    bool hit = std::regex_search(line, accessor);
    if (!hit && !managers.empty()) {
      auto begin = std::sregex_iterator(line.begin(), line.end(), call);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        if (managers.count((*it)[1]) > 0) {
          hit = true;
          break;
        }
      }
    }
    if (hit) {
      report(file, i, "dtm-store",
             "direct DataManager::store outside src/dtm//src/diet/sed.cpp; "
             "route the write through the SED so the catalog is updated",
             findings);
    }
  }
}

// ---------------------------------------------------------------------------
// hot-string: per-message std::string construction on the DES/message hot
// path. Every event and every message delivery runs through src/des/ and
// src/net/simenv.cpp; a std::to_string or literal concatenation there
// costs an allocation per event unless it sits in an obs::tracing()/
// obs::metrics_on() cold branch (a single relaxed atomic load when off) or
// is hoisted off the per-message path (then suppressed with a reason).

void check_hot_string(const Prepared& file, std::vector<Finding>& findings) {
  if (!in_dir(file, "/des/") &&
      file.path.find("net/simenv.cpp") == std::string::npos) {
    return;
  }
  // strip() keeps the delimiting quotes of string literals, so a literal
  // operand of operator+ is visible as `" +` / `+ "`.
  static const std::regex trigger(R"(\bstd::to_string\s*\(|"\s*\+|\+\s*")");
  static const std::regex guard(R"(\b(?:obs\s*::\s*)?(?:tracing|metrics_on)\s*\(\s*\))");
  // Brace-tracked guard scope: a line is "cold" when it sits inside a
  // block opened on a line that tests tracing()/metrics_on(), or tests one
  // itself (single-line `if (obs::tracing()) f(...)`).
  std::vector<char> brace_guard;  // per open brace: opened under a guard?
  std::size_t guarded_open = 0;   // braces currently open under a guard
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& line = file.lines[i];
    const bool line_guard = std::regex_search(line, guard);
    if (guarded_open == 0 && !line_guard &&
        std::regex_search(line, trigger)) {
      report(file, i, "hot-string",
             "per-message string construction on the DES hot path; guard "
             "behind obs::tracing()/obs::metrics_on() or cache it off the "
             "per-event path",
             findings);
    }
    for (const char c : line) {
      if (c == '{') {
        const char g = (line_guard || guarded_open > 0) ? 1 : 0;
        brace_guard.push_back(g);
        guarded_open += g;
      } else if (c == '}') {
        if (!brace_guard.empty()) {
          guarded_open -= brace_guard.back();
          brace_guard.pop_back();
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// net-cost: direct Topology::transfer_time / bandwidth arithmetic outside
// the network and platform layers. Those formulas price a transfer on an
// idle network; any scheduler or subsystem computing its own byte costs
// from them silently ignores congestion once the flow model is on. The
// blessed entry point everywhere else is Env::estimate_transfer_s, which
// answers contention-aware when enabled and falls back to the closed form
// when not.

void check_net_cost(const Prepared& file, std::vector<Finding>& findings) {
  if (in_dir(file, "/net/") || in_dir(file, "/platform/")) return;
  static const std::regex pattern(R"(\b(transfer_time|bandwidth)\s*\()");
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    std::smatch match;
    if (std::regex_search(file.lines[i], match, pattern)) {
      report(file, i, "net-cost",
             "direct " + std::string(match[1]) +
                 "() cost arithmetic outside src/net//src/platform; use "
                 "Env::estimate_transfer_s so congestion is priced in",
             findings);
    }
  }
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> names(std::begin(kRules),
                                              std::end(kRules));
  return names;
}

std::vector<Finding> lint(const std::vector<FileInput>& files) {
  std::vector<Finding> findings;
  std::vector<Prepared> prepared;
  prepared.reserve(files.size());
  for (const FileInput& input : files) {
    Prepared file;
    file.input = &input;
    file.path = normalize_path(input.path);
    file.lines = split_lines(strip(input.content));
    file.allow.resize(file.lines.size());
    collect_suppressions(split_lines(input.content), file, findings);
    prepared.push_back(std::move(file));
  }
  const std::set<std::string> status_fns = collect_status_returning(prepared);
  for (const Prepared& file : prepared) {
    check_rand(file, findings);
    check_wallclock(file, findings);
    check_thread(file, findings);
    check_unchecked_status(file, status_fns, findings);
    check_unordered_iter(file, findings);
    check_dtm_store(file, findings);
    check_hot_string(file, findings);
    check_mc_blocking(file, findings);
    check_net_cost(file, findings);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::string format(const Finding& finding) {
  std::ostringstream out;
  out << finding.path << ":" << finding.line << ": " << finding.rule << ": "
      << finding.message;
  return out.str();
}

}  // namespace gclint
