// gclint driver: lints every C++ source file under the given paths and
// prints findings as "path:line: rule: message". Exit code 1 when any
// finding survives suppression, so it slots straight into ctest.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

namespace fs = std::filesystem;

bool is_source(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

std::vector<std::string> collect_files(const std::vector<std::string>& roots) {
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    if (fs::is_regular_file(root)) {
      files.push_back(root);
      continue;
    }
    std::error_code ec;
    for (fs::recursive_directory_iterator it(root, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (it->is_regular_file() && is_source(it->path())) {
        files.push_back(it->path().string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) roots.emplace_back(argv[i]);
  if (roots.empty()) {
    std::cerr << "usage: gclint <file-or-dir>...\n";
    return 2;
  }
  std::vector<gclint::FileInput> inputs;
  for (const std::string& path : collect_files(roots)) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "gclint: cannot read " << path << "\n";
      return 2;
    }
    std::ostringstream content;
    content << in.rdbuf();
    inputs.push_back({path, content.str()});
  }
  const std::vector<gclint::Finding> findings = gclint::lint(inputs);
  for (const gclint::Finding& finding : findings) {
    std::cout << gclint::format(finding) << "\n";
  }
  if (findings.empty()) {
    std::cout << "gclint: " << inputs.size() << " files clean\n";
    return 0;
  }
  std::cout << "gclint: " << findings.size() << " finding(s) in "
            << inputs.size() << " files\n";
  return 1;
}
