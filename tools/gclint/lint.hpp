// gclint: a dependency-free determinism/correctness linter for this repo.
//
// The codebase promises bit-reproducible simulations; that promise is easy
// to break with one innocent call (`std::rand`, a wall-clock read in the
// sim path, an unordered-container iteration feeding a hash). Full
// libclang tooling is unavailable in the build image, so this linter works
// on tokens and line-anchored regular expressions over comment- and
// string-stripped source. It is deliberately heuristic: rules aim for
// zero false negatives on the patterns we care about and rely on the
// suppression syntax below for the rare justified use.
//
// Suppressions (checked against the known rule list):
//   // gclint: allow(rule[, rule...]) <reason>      same line, or the
//       line below when the directive stands alone on its own line
//   // gclint: allow-file(rule[, rule...]) <reason> whole file
//
// Rules:
//   rand             std::rand/srand/std::random_device outside common/rng
//   wallclock        wall-clock reads in sim-path code (des/net/diet/ramses)
//   thread           raw std::thread outside src/parallel
//   unchecked-status calling a Status/Result-returning function and
//                    discarding the result
//   unordered-iter   iterating an unordered container into serialized,
//                    hashed, or streamed output
//   dtm-store        direct DataManager::store outside src/dtm/ or
//                    src/diet/sed.cpp (bypasses the replica catalog)
//   hot-string       per-message std::string construction (std::to_string,
//                    operator+ on a string literal) in the DES/message hot
//                    path (src/des/, src/net/simenv.cpp) outside an
//                    obs::tracing()/obs::metrics_on() cold branch — label
//                    and trace names must be built lazily or cached, never
//                    per event/message
//   mc-blocking      wall-clock sleeps (sleep_for/sleep_until) or
//                    unbounded blocking (cv/future .wait(), future .get(),
//                    semaphore .acquire()) in src/diet/ or src/dtm/ — the
//                    model checker (src/mc) drives those layers one
//                    dispatch at a time on a virtual clock and cannot
//                    explore past a host-time wait; RealEnv-only blocking
//                    paths carry a gclint: allow
#pragma once

#include <string>
#include <vector>

namespace gclint {

/// One source file handed to the linter. `path` drives per-directory rule
/// scoping (forward slashes; relative or absolute both work).
struct FileInput {
  std::string path;
  std::string content;
};

struct Finding {
  std::string path;
  int line = 0;  ///< 1-based
  std::string rule;
  std::string message;
};

/// Names of every rule the linter knows (suppression directives naming
/// anything else are themselves reported, as rule "directive").
const std::vector<std::string>& rule_names();

/// Lints the files as one set. The unchecked-status rule collects
/// Status-returning function names across all inputs, so pass the whole
/// source tree together for best coverage.
std::vector<Finding> lint(const std::vector<FileInput>& files);

/// "path:line: rule: message" — clickable in most editors.
std::string format(const Finding& finding);

}  // namespace gclint
