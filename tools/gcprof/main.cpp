// gcprof driver: reads the journal (required) plus optional time-series
// and trace exports, prints the critical-path report to stdout, and
// optionally writes the JSON form for CI. Exit codes: 0 ok, 1 strict-mode
// violations, 2 usage/input errors — so it slots straight into scripts.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "prof.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream content;
  content << in.rdbuf();
  out = content.str();
  return true;
}

int usage() {
  std::cerr << "usage: gcprof --journal <j.jsonl> [--timeseries <t.jsonl>]\n"
               "              [--trace <trace.json>] [--top N]\n"
               "              [--json <report.json>] [--strict]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string journal_path;
  std::string timeseries_path;
  std::string trace_path;
  std::string json_path;
  gc::prof::Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](std::string& slot) {
      if (i + 1 >= argc) return false;
      slot = argv[++i];
      return true;
    };
    if (arg == "--journal") {
      if (!value(journal_path)) return usage();
    } else if (arg == "--timeseries") {
      if (!value(timeseries_path)) return usage();
    } else if (arg == "--trace") {
      if (!value(trace_path)) return usage();
    } else if (arg == "--json") {
      if (!value(json_path)) return usage();
    } else if (arg == "--top") {
      std::string n;
      if (!value(n)) return usage();
      options.top_k = std::atoi(n.c_str());
    } else if (arg == "--strict") {
      options.strict = true;
    } else {
      std::cerr << "gcprof: unknown flag " << arg << "\n";
      return usage();
    }
  }
  if (journal_path.empty()) return usage();

  std::string text;
  if (!read_file(journal_path, text)) {
    std::cerr << "gcprof: cannot read " << journal_path << "\n";
    return 2;
  }
  const auto journal_lines = gc::prof::parse_jsonl(text);
  if (!journal_lines.has_value()) {
    std::cerr << "gcprof: malformed journal " << journal_path << "\n";
    return 2;
  }
  std::vector<gc::prof::Request> requests;
  for (const gc::prof::JsonValue& line : *journal_lines) {
    auto request = gc::prof::request_from_json(line);
    if (!request.has_value()) {
      std::cerr << "gcprof: journal record missing required fields\n";
      return 2;
    }
    requests.push_back(std::move(*request));
  }

  std::optional<gc::prof::SeriesInfo> series;
  if (!timeseries_path.empty()) {
    if (!read_file(timeseries_path, text)) {
      std::cerr << "gcprof: cannot read " << timeseries_path << "\n";
      return 2;
    }
    const auto samples = gc::prof::parse_jsonl(text);
    if (!samples.has_value()) {
      std::cerr << "gcprof: malformed time series " << timeseries_path << "\n";
      return 2;
    }
    series = gc::prof::series_info(*samples);
  }

  std::optional<std::map<std::uint64_t, double>> network;
  if (!trace_path.empty()) {
    if (!read_file(trace_path, text)) {
      std::cerr << "gcprof: cannot read " << trace_path << "\n";
      return 2;
    }
    const auto trace = gc::prof::parse_json(text);
    if (!trace.has_value()) {
      std::cerr << "gcprof: malformed trace " << trace_path << "\n";
      return 2;
    }
    network = gc::prof::network_seconds_from_trace(*trace);
  }

  const gc::prof::Report report = gc::prof::build_report(
      std::move(requests), series, network, options);
  std::cout << gc::prof::to_text(report);
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    out << gc::prof::to_json(report);
    if (!out) {
      std::cerr << "gcprof: cannot write " << json_path << "\n";
      return 2;
    }
  }
  if (options.strict && !report.violations.empty()) {
    std::cerr << "gcprof: " << report.violations.size()
              << " violation(s) in strict mode\n";
    return 1;
  }
  return 0;
}
