// gcprof: offline profiler over the observability exports.
//
// Input: the per-request journal (--journal, JSONL; see obs/journal.hpp),
// optionally the time-series export (--timeseries, JSONL; obs/timeseries.hpp)
// and a Chrome trace (--trace; obs/trace.hpp). Output: a deterministic
// critical-path report — where did each request's time go, which phase
// dominates, which SEDs carried the load, what the hierarchy fan-out looked
// like — as human text and as JSON for CI assertions.
//
// Everything here is pure computation over parsed files: no clocks, no
// randomness, no ordering dependence on the input (requests are re-sorted,
// maps are ordered), so the same inputs always produce byte-identical
// reports. Split into a static core (this header + prof.cpp) so tests can
// drive the analysis on canned exports without shelling out to the binary.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gc::prof {

// ---------------------------------------------------------------------------
// Minimal JSON: just enough to read our own exports. Object members keep
// file order; `find` is linear (our objects are small).

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  [[nodiscard]] double num_or(double fallback) const {
    return kind == Kind::kNumber ? number : fallback;
  }
  [[nodiscard]] std::string str_or(std::string fallback) const {
    return kind == Kind::kString ? str : std::move(fallback);
  }
};

/// Whole-text parse; std::nullopt on any syntax error or trailing garbage.
std::optional<JsonValue> parse_json(const std::string& text);

/// One value per non-empty line; std::nullopt if any line fails to parse.
std::optional<std::vector<JsonValue>> parse_jsonl(const std::string& text);

// ---------------------------------------------------------------------------
// Journal model.

/// One journal record (one DIET call), as exported by obs::Journal.
struct Request {
  std::uint64_t trace_id = 0;
  std::string service;
  std::string client;
  std::string ma;
  std::string la;
  std::string sed;
  int attempts = 1;
  std::string status;
  double submitted = -1.0;
  double found = -1.0;
  double arrived = -1.0;
  double exec_start = -1.0;
  double exec_end = -1.0;
  double completed = -1.0;

  [[nodiscard]] bool ok() const { return status == "ok"; }
  /// Full client -> MA -> LA -> SED path resolved.
  [[nodiscard]] bool complete_path() const {
    return !client.empty() && !ma.empty() && !la.empty() && !sed.empty();
  }
  /// All six boundaries present and non-decreasing.
  [[nodiscard]] bool boundaries_valid() const;
  [[nodiscard]] double total() const { return completed - submitted; }
};

/// The five phases between consecutive boundaries. Computed as differences
/// of the (already-rounded) exported boundaries, so sum() telescopes to
/// total() up to float re-rounding of the partial sums — build_report
/// verifies the identity to a 1e-9 relative tolerance per record.
struct Phases {
  double finding = 0.0;     ///< submitted -> found (MA scheduling round-trip)
  double transfer = 0.0;    ///< found -> arrived (call data to the SED)
  double queue_init = 0.0;  ///< arrived -> exec_start (SED queue + init)
  double compute = 0.0;     ///< exec_start -> exec_end (solve function)
  double reply = 0.0;       ///< exec_end -> completed (result home)
  [[nodiscard]] double sum() const {
    return finding + transfer + queue_init + compute + reply;
  }
};

/// Phase names in boundary order, parallel to the Phases fields.
inline constexpr const char* kPhaseNames[] = {"finding", "transfer",
                                              "queue_init", "compute",
                                              "reply"};

[[nodiscard]] Phases phases_of(const Request& r);

/// Parses one journal line; std::nullopt if required fields are missing.
std::optional<Request> request_from_json(const JsonValue& v);

// ---------------------------------------------------------------------------
// Auxiliary inputs.

/// Summary of the time-series export: sample count and time coverage.
struct SeriesInfo {
  std::size_t samples = 0;
  double t_first = 0.0;
  double t_last = 0.0;
};

[[nodiscard]] SeriesInfo series_info(const std::vector<JsonValue>& samples);

/// Total duration of "msg:*" spans per trace id, in seconds, from a Chrome
/// trace export — the modeled time requests spent on the network.
[[nodiscard]] std::map<std::uint64_t, double> network_seconds_from_trace(
    const JsonValue& trace);

// ---------------------------------------------------------------------------
// Report.

struct Options {
  int top_k = 5;       ///< slowest-request list length
  bool strict = false; ///< record violations (and fail) on incomplete data
};

struct SedStat {
  std::string name;
  std::string la;  ///< parent LA (from the requests it served)
  std::uint64_t jobs = 0;
  double busy_seconds = 0.0;
  double utilization = 0.0;  ///< busy / campaign span
};

struct Report {
  std::size_t requests = 0;
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t complete_paths = 0;
  double span_start = 0.0;  ///< earliest submitted
  double span_end = 0.0;    ///< latest completed
  Phases totals;            ///< summed over requests with valid boundaries
  double total_latency = 0.0;
  std::map<std::string, std::size_t> dominant;  ///< phase -> #requests where
                                                ///< it was the largest share
  std::vector<Request> slowest;  ///< top-k by total(), ties by trace id
  std::vector<SedStat> seds;     ///< sorted by name
  std::map<std::string, std::vector<std::string>> las_by_ma;  ///< sorted
  std::map<std::string, std::vector<std::string>> seds_by_la; ///< sorted

  bool have_series = false;
  SeriesInfo series;

  bool have_network = false;
  std::size_t network_traced = 0;     ///< requests with msg spans
  double network_seconds = 0.0;       ///< summed over all traced requests

  /// Strict-mode findings; empty means the exports are complete and
  /// self-consistent. Populated (but not fatal) in non-strict mode too.
  std::vector<std::string> violations;
};

[[nodiscard]] Report build_report(
    std::vector<Request> requests, const std::optional<SeriesInfo>& series,
    const std::optional<std::map<std::uint64_t, double>>& network,
    const Options& options);

[[nodiscard]] std::string to_text(const Report& report);
[[nodiscard]] std::string to_json(const Report& report);

}  // namespace gc::prof
