#include "prof.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>

namespace gc::prof {

namespace {

// --- formatting helpers (standalone: gcprof links nothing from src/) ---

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string fmt_fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --- JSON parser: recursive descent over the whole buffer ---

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> parse() {
    skip_ws();
    JsonValue v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool parse_value(JsonValue& out) {  // NOLINT(misc-no-recursion)
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.str);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_number(JsonValue& out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    out.number = std::strtod(start, &end);
    if (end == start) return false;
    out.kind = JsonValue::Kind::kNumber;
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }

  bool parse_string(std::string& out) {
    if (text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out += esc;
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a') + 10;
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A') + 10;
            } else {
              return false;
            }
          }
          // Our exports only ever emit \u00XX control escapes; encode the
          // BMP code point as UTF-8 and move on.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_array(JsonValue& out) {  // NOLINT(misc-no-recursion)
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue item;
      skip_ws();
      if (!parse_value(item)) return false;
      out.arr.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool parse_object(JsonValue& out) {  // NOLINT(misc-no-recursion)
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || !parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.obj.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

double field_num(const JsonValue& obj, const std::string& key,
                 double fallback) {
  const JsonValue* v = obj.find(key);
  return v != nullptr ? v->num_or(fallback) : fallback;
}

std::string field_str(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  return v != nullptr ? v->str_or("") : "";
}

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::optional<JsonValue> parse_json(const std::string& text) {
  return Parser(text).parse();
}

std::optional<std::vector<JsonValue>> parse_jsonl(const std::string& text) {
  std::vector<JsonValue> values;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::optional<JsonValue> v = parse_json(line);
    if (!v.has_value()) return std::nullopt;
    values.push_back(std::move(*v));
  }
  return values;
}

bool Request::boundaries_valid() const {
  const double b[] = {submitted, found, arrived, exec_start, exec_end,
                      completed};
  for (const double v : b) {
    if (v < 0.0) return false;
  }
  for (std::size_t i = 1; i < 6; ++i) {
    if (b[i] < b[i - 1]) return false;
  }
  return true;
}

Phases phases_of(const Request& r) {
  Phases p;
  p.finding = r.found - r.submitted;
  p.transfer = r.arrived - r.found;
  p.queue_init = r.exec_start - r.arrived;
  p.compute = r.exec_end - r.exec_start;
  p.reply = r.completed - r.exec_end;
  return p;
}

std::optional<Request> request_from_json(const JsonValue& v) {
  const JsonValue* id = v.find("trace_id");
  const JsonValue* phases = v.find("phases");
  if (id == nullptr || id->kind != JsonValue::Kind::kNumber ||
      phases == nullptr || phases->kind != JsonValue::Kind::kObject) {
    return std::nullopt;
  }
  Request r;
  r.trace_id = static_cast<std::uint64_t>(id->number);
  r.service = field_str(v, "service");
  r.client = field_str(v, "client");
  r.status = field_str(v, "status");
  r.attempts = static_cast<int>(field_num(v, "attempts", 1.0));
  if (const JsonValue* path = v.find("path")) {
    r.ma = field_str(*path, "ma");
    r.la = field_str(*path, "la");
    r.sed = field_str(*path, "sed");
  }
  r.submitted = field_num(*phases, "submitted", -1.0);
  r.found = field_num(*phases, "found", -1.0);
  r.arrived = field_num(*phases, "arrived", -1.0);
  r.exec_start = field_num(*phases, "exec_start", -1.0);
  r.exec_end = field_num(*phases, "exec_end", -1.0);
  r.completed = field_num(*phases, "completed", -1.0);
  return r;
}

SeriesInfo series_info(const std::vector<JsonValue>& samples) {
  SeriesInfo info;
  info.samples = samples.size();
  if (!samples.empty()) {
    info.t_first = field_num(samples.front(), "t", 0.0);
    info.t_last = field_num(samples.back(), "t", 0.0);
  }
  return info;
}

std::map<std::uint64_t, double> network_seconds_from_trace(
    const JsonValue& trace) {
  std::map<std::uint64_t, double> by_trace;
  const JsonValue* events = trace.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    return by_trace;
  }
  for (const JsonValue& ev : events->arr) {
    if (field_str(ev, "ph") != "X") continue;
    const std::string name = field_str(ev, "name");
    if (name.compare(0, 4, "msg:") != 0) continue;
    const JsonValue* args = ev.find("args");
    if (args == nullptr) continue;
    const std::string id_str = field_str(*args, "trace_id");
    if (id_str.empty()) continue;
    const std::uint64_t id = std::strtoull(id_str.c_str(), nullptr, 10);
    by_trace[id] += field_num(ev, "dur", 0.0) / 1e6;  // us -> s
  }
  return by_trace;
}

Report build_report(
    std::vector<Request> requests, const std::optional<SeriesInfo>& series,
    const std::optional<std::map<std::uint64_t, double>>& network,
    const Options& options) {
  Report report;
  std::sort(requests.begin(), requests.end(),
            [](const Request& a, const Request& b) {
              return a.trace_id < b.trace_id;
            });
  report.requests = requests.size();

  bool have_span = false;
  for (const Request& r : requests) {
    if (r.ok()) {
      ++report.ok;
    } else {
      ++report.failed;
    }
    if (r.complete_path()) ++report.complete_paths;

    if (r.ok() && !r.complete_path()) {
      report.violations.push_back("trace " + std::to_string(r.trace_id) +
                                  ": ok but incomplete path");
    }
    if (r.ok() && !r.boundaries_valid()) {
      report.violations.push_back("trace " + std::to_string(r.trace_id) +
                                  ": ok but missing/non-monotone boundaries");
    }

    if (r.submitted >= 0.0 && r.completed >= 0.0) {
      if (!have_span) {
        report.span_start = r.submitted;
        report.span_end = r.completed;
        have_span = true;
      } else {
        report.span_start = std::min(report.span_start, r.submitted);
        report.span_end = std::max(report.span_end, r.completed);
      }
    }

    if (!r.boundaries_valid()) continue;
    const Phases p = phases_of(r);
    // The telescoping invariant: phases are differences of consecutive
    // exported boundaries, so their sum is the end-to-end latency up to
    // floating-point re-rounding of the partial sums (a few ulps).
    const double tolerance = 1e-9 * std::max(1.0, std::abs(r.total()));
    if (std::abs(p.sum() - r.total()) > tolerance) {
      report.violations.push_back("trace " + std::to_string(r.trace_id) +
                                  ": phases do not sum to total");
    }
    report.totals.finding += p.finding;
    report.totals.transfer += p.transfer;
    report.totals.queue_init += p.queue_init;
    report.totals.compute += p.compute;
    report.totals.reply += p.reply;
    report.total_latency += r.total();
    const double values[] = {p.finding, p.transfer, p.queue_init, p.compute,
                             p.reply};
    std::size_t best = 0;
    for (std::size_t i = 1; i < 5; ++i) {
      if (values[i] > values[best]) best = i;
    }
    ++report.dominant[kPhaseNames[best]];
  }

  // Top-k slowest among requests with a measurable total; ties broken by
  // trace id so the list is deterministic.
  std::vector<Request> timed;
  for (const Request& r : requests) {
    if (r.submitted >= 0.0 && r.completed >= 0.0) timed.push_back(r);
  }
  std::sort(timed.begin(), timed.end(), [](const Request& a,
                                           const Request& b) {
    if (a.total() != b.total()) return a.total() > b.total();
    return a.trace_id < b.trace_id;
  });
  const std::size_t k =
      std::min(timed.size(), static_cast<std::size_t>(
                                 options.top_k > 0 ? options.top_k : 0));
  report.slowest.assign(timed.begin(), timed.begin() + static_cast<long>(k));

  // Per-SED load, from the compute intervals the journal already carries.
  const double span = report.span_end - report.span_start;
  std::map<std::string, SedStat> sed_stats;
  for (const Request& r : requests) {
    if (r.sed.empty()) continue;
    SedStat& stat = sed_stats[r.sed];
    stat.name = r.sed;
    if (stat.la.empty()) stat.la = r.la;
    if (r.exec_start >= 0.0 && r.exec_end >= 0.0) {
      ++stat.jobs;
      stat.busy_seconds += r.exec_end - r.exec_start;
    }
  }
  for (auto& [name, stat] : sed_stats) {
    stat.utilization = span > 0.0 ? stat.busy_seconds / span : 0.0;
    report.seds.push_back(stat);
  }

  // Hierarchy fan-out from the resolved paths.
  std::map<std::string, std::set<std::string>> las;
  std::map<std::string, std::set<std::string>> seds;
  for (const Request& r : requests) {
    if (!r.ma.empty() && !r.la.empty()) las[r.ma].insert(r.la);
    if (!r.la.empty() && !r.sed.empty()) seds[r.la].insert(r.sed);
  }
  for (const auto& [ma, children] : las) {
    report.las_by_ma[ma].assign(children.begin(), children.end());
  }
  for (const auto& [la, children] : seds) {
    report.seds_by_la[la].assign(children.begin(), children.end());
  }

  if (series.has_value()) {
    report.have_series = true;
    report.series = *series;
  }
  if (network.has_value()) {
    report.have_network = true;
    for (const Request& r : requests) {
      auto it = network->find(r.trace_id);
      if (it != network->end()) {
        ++report.network_traced;
        report.network_seconds += it->second;
      }
    }
  }
  return report;
}

namespace {

std::string pct(double part, double whole) {
  return whole > 0.0 ? fmt_fixed(100.0 * part / whole, 1) + "%" : "-";
}

void phase_rows(std::ostringstream& out, const Report& r) {
  const double values[] = {r.totals.finding, r.totals.transfer,
                           r.totals.queue_init, r.totals.compute,
                           r.totals.reply};
  for (std::size_t i = 0; i < 5; ++i) {
    out << "  " << kPhaseNames[i];
    for (std::size_t pad = std::string(kPhaseNames[i]).size(); pad < 12;
         ++pad) {
      out << ' ';
    }
    out << fmt_fixed(values[i], 3) << " s  (" << pct(values[i], r.total_latency)
        << ")\n";
  }
}

}  // namespace

std::string to_text(const Report& r) {
  std::ostringstream out;
  out << "gcprof report\n";
  out << "requests: " << r.requests << " (ok " << r.ok << ", failed "
      << r.failed << ", complete paths " << r.complete_paths << ")\n";
  out << "span: " << fmt_fixed(r.span_start, 3) << " .. "
      << fmt_fixed(r.span_end, 3) << " s (makespan "
      << fmt_fixed(r.span_end - r.span_start, 3) << " s)\n";
  out << "\ncritical-path decomposition (total "
      << fmt_fixed(r.total_latency, 3) << " request-seconds):\n";
  phase_rows(out, r);
  out << "\ndominant phase:";
  if (r.dominant.empty()) out << " (none)";
  for (const auto& [phase, count] : r.dominant) {
    out << " " << phase << "=" << count;
  }
  out << "\n\ntop " << r.slowest.size() << " slowest requests:\n";
  for (const Request& req : r.slowest) {
    const Phases p = phases_of(req);
    out << "  trace " << req.trace_id << "  " << req.service << "  "
        << fmt_fixed(req.total(), 3) << " s  " << req.client << " -> "
        << req.ma << " -> " << (req.la.empty() ? "(direct)" : req.la)
        << " -> " << req.sed << "\n";
    if (req.boundaries_valid()) {
      out << "    finding " << fmt_fixed(p.finding, 3) << ", transfer "
          << fmt_fixed(p.transfer, 3) << ", queue+init "
          << fmt_fixed(p.queue_init, 3) << ", compute "
          << fmt_fixed(p.compute, 3) << ", reply " << fmt_fixed(p.reply, 3)
          << "\n";
    }
  }
  out << "\nper-SED utilization (" << r.seds.size() << " SEDs):\n";
  for (const SedStat& sed : r.seds) {
    out << "  " << sed.name << "  jobs " << sed.jobs << "  busy "
        << fmt_fixed(sed.busy_seconds, 3) << " s  util "
        << fmt_fixed(100.0 * sed.utilization, 1) << "%\n";
  }
  std::size_t sed_total = 0;
  out << "\nhierarchy fan-out: " << r.las_by_ma.size() << " MA(s)\n";
  for (const auto& [ma, children] : r.las_by_ma) {
    out << "  " << ma << ": " << children.size() << " LA(s)\n";
  }
  for (const auto& [la, children] : r.seds_by_la) {
    out << "  " << la << ": " << children.size() << " SED(s)\n";
    sed_total += children.size();
  }
  out << "  total SEDs on request paths: " << sed_total << "\n";
  if (r.have_series) {
    out << "\ntimeseries: " << r.series.samples << " samples covering "
        << fmt_fixed(r.series.t_first, 3) << " .. "
        << fmt_fixed(r.series.t_last, 3) << " s\n";
  }
  if (r.have_network) {
    out << "\nnetwork (from trace): " << r.network_traced
        << " traced requests, " << fmt_fixed(r.network_seconds, 3)
        << " s in msg spans\n";
  }
  if (!r.violations.empty()) {
    out << "\nviolations (" << r.violations.size() << "):\n";
    for (const std::string& v : r.violations) {
      out << "  " << v << "\n";
    }
  }
  return out.str();
}

std::string to_json(const Report& r) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"requests\": " << r.requests << ",\n";
  out << "  \"ok\": " << r.ok << ",\n";
  out << "  \"failed\": " << r.failed << ",\n";
  out << "  \"complete_paths\": " << r.complete_paths << ",\n";
  out << "  \"span\": {\"start\": " << fmt_double(r.span_start)
      << ", \"end\": " << fmt_double(r.span_end) << "},\n";
  out << "  \"total_latency_seconds\": " << fmt_double(r.total_latency)
      << ",\n";
  const double values[] = {r.totals.finding, r.totals.transfer,
                           r.totals.queue_init, r.totals.compute,
                           r.totals.reply};
  out << "  \"phases\": {";
  for (std::size_t i = 0; i < 5; ++i) {
    if (i != 0) out << ", ";
    out << '"' << kPhaseNames[i] << "\": " << fmt_double(values[i]);
  }
  out << "},\n";
  out << "  \"dominant\": {";
  bool first = true;
  for (const auto& [phase, count] : r.dominant) {
    if (!first) out << ", ";
    first = false;
    out << '"' << phase << "\": " << count;
  }
  out << "},\n";
  out << "  \"slowest\": [";
  first = true;
  for (const Request& req : r.slowest) {
    if (!first) out << ",";
    first = false;
    const Phases p = phases_of(req);
    out << "\n    {\"trace_id\": " << req.trace_id << ", \"service\": \""
        << escape_json(req.service) << "\", \"total\": "
        << fmt_double(req.total()) << ", \"path\": {\"client\": \""
        << escape_json(req.client) << "\", \"ma\": \"" << escape_json(req.ma)
        << "\", \"la\": \"" << escape_json(req.la) << "\", \"sed\": \""
        << escape_json(req.sed) << "\"}, \"phases\": {\"finding\": "
        << fmt_double(p.finding) << ", \"transfer\": "
        << fmt_double(p.transfer) << ", \"queue_init\": "
        << fmt_double(p.queue_init) << ", \"compute\": "
        << fmt_double(p.compute) << ", \"reply\": " << fmt_double(p.reply)
        << "}}";
  }
  out << "\n  ],\n";
  out << "  \"seds\": [";
  first = true;
  for (const SedStat& sed : r.seds) {
    if (!first) out << ",";
    first = false;
    out << "\n    {\"name\": \"" << escape_json(sed.name) << "\", \"la\": \""
        << escape_json(sed.la) << "\", \"jobs\": " << sed.jobs
        << ", \"busy_seconds\": " << fmt_double(sed.busy_seconds)
        << ", \"utilization\": " << fmt_double(sed.utilization) << "}";
  }
  out << "\n  ],\n";
  out << "  \"fanout\": {\"las_by_ma\": {";
  first = true;
  for (const auto& [ma, children] : r.las_by_ma) {
    if (!first) out << ", ";
    first = false;
    out << '"' << escape_json(ma) << "\": " << children.size();
  }
  out << "}, \"seds_by_la\": {";
  first = true;
  for (const auto& [la, children] : r.seds_by_la) {
    if (!first) out << ", ";
    first = false;
    out << '"' << escape_json(la) << "\": " << children.size();
  }
  out << "}},\n";
  if (r.have_series) {
    out << "  \"timeseries\": {\"samples\": " << r.series.samples
        << ", \"t_first\": " << fmt_double(r.series.t_first)
        << ", \"t_last\": " << fmt_double(r.series.t_last) << "},\n";
  }
  if (r.have_network) {
    out << "  \"network\": {\"traced\": " << r.network_traced
        << ", \"seconds\": " << fmt_double(r.network_seconds) << "},\n";
  }
  out << "  \"violations\": [";
  first = true;
  for (const std::string& v : r.violations) {
    if (!first) out << ", ";
    first = false;
    out << '"' << escape_json(v) << '"';
  }
  out << "]\n}\n";
  return out.str();
}

}  // namespace gc::prof
