// Tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "des/engine.hpp"
#include "des/link.hpp"
#include "des/resource.hpp"

namespace gc::des {
namespace {

TEST(Engine, StartsAtZero) {
  Engine engine;
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
  EXPECT_EQ(engine.events_pending(), 0u);
}

TEST(Engine, ExecutesInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(Engine, SameTimeFifo) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, ScheduleAfter) {
  Engine engine;
  double fired_at = -1.0;
  engine.schedule_at(5.0, [&] {
    engine.schedule_after(2.5, [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Engine, CancelPreventsExecution) {
  Engine engine;
  bool fired = false;
  const EventId id = engine.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_FALSE(engine.cancel(id));  // second cancel is a no-op
  engine.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelledEventDoesNotAdvanceClock) {
  Engine engine;
  const EventId id = engine.schedule_at(100.0, [] {});
  engine.schedule_at(1.0, [] {});
  engine.cancel(id);
  engine.run();
  EXPECT_DOUBLE_EQ(engine.now(), 1.0);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine engine;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    engine.schedule_at(static_cast<double>(i), [&] { ++count; });
  }
  engine.run_until(5.0);
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
  engine.run();
  EXPECT_EQ(count, 10);
}

TEST(Engine, RunUntilAdvancesClockWhenIdle) {
  Engine engine;
  engine.run_until(42.0);
  EXPECT_DOUBLE_EQ(engine.now(), 42.0);
}

TEST(Engine, EventsExecutedCounts) {
  Engine engine;
  for (int i = 0; i < 7; ++i) engine.schedule_after(1.0, [] {});
  engine.run();
  EXPECT_EQ(engine.events_executed(), 7u);
}

TEST(Engine, NestedScheduling) {
  Engine engine;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 50) engine.schedule_after(1.0, recurse);
  };
  engine.schedule_after(0.0, recurse);
  engine.run();
  EXPECT_EQ(depth, 50);
  EXPECT_DOUBLE_EQ(engine.now(), 49.0);
}

TEST(Engine, CancelledTimersDoNotAccumulate) {
  // Regression: the heartbeat pattern — re-arm a far-future watchdog and
  // cancel the previous one, every tick — used to leave one tombstone per
  // tick in the calendar for the whole run (the watchdogs only drain at
  // t=1e9). Compaction must keep tombstones bounded by the live count.
  Engine engine;
  EventId watchdog = 0;
  std::size_t peak = 0;
  for (int i = 0; i < 100000; ++i) {
    if (watchdog != 0) {
      EXPECT_TRUE(engine.cancel(watchdog));
    }
    watchdog = engine.schedule_at(1e9 + i, [] {});
    peak = std::max(peak, engine.events_tombstoned());
    ASSERT_LE(engine.events_tombstoned(),
              engine.events_pending() + 64);  // compaction invariant
  }
  // Live set stayed tiny, so the calendar did too.
  EXPECT_EQ(engine.events_pending(), 1u);
  EXPECT_LE(peak, 65u);
  engine.run();
  EXPECT_EQ(engine.events_tombstoned(), 0u);
  EXPECT_EQ(engine.events_executed(), 1u);
}

TEST(Engine, TombstonedAndHighwaterAccessors) {
  Engine engine;
  const EventId a = engine.schedule_at(1.0, [] {});
  engine.schedule_at(2.0, [] {});
  engine.schedule_at(3.0, [] {});
  EXPECT_EQ(engine.queue_depth_highwater(), 3u);
  EXPECT_EQ(engine.events_tombstoned(), 0u);
  EXPECT_TRUE(engine.cancel(a));
  EXPECT_EQ(engine.events_tombstoned(), 1u);
  EXPECT_EQ(engine.events_pending(), 2u);
  engine.run();
  EXPECT_EQ(engine.events_tombstoned(), 0u);
  EXPECT_EQ(engine.queue_depth_highwater(), 3u);
}

class EngineRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineRandomized, AlwaysMonotonicTime) {
  Engine engine;
  Rng rng(GetParam());
  double last = -1.0;
  bool monotonic = true;
  for (int i = 0; i < 500; ++i) {
    engine.schedule_at(rng.uniform(0.0, 100.0), [&] {
      if (engine.now() < last) monotonic = false;
      last = engine.now();
      if (engine.now() < 90.0) {
        engine.schedule_after(rng.uniform(0.0, 5.0), [] {});
      }
    });
  }
  engine.run();
  EXPECT_TRUE(monotonic);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineRandomized,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------- Resource ----------

TEST(Resource, GrantsUpToCapacity) {
  Engine engine;
  Resource resource(engine, 2);
  int granted = 0;
  for (int i = 0; i < 5; ++i) {
    resource.acquire([&] { ++granted; });
  }
  engine.run();
  EXPECT_EQ(granted, 2);
  EXPECT_EQ(resource.in_use(), 2u);
  EXPECT_EQ(resource.waiting(), 3u);
}

TEST(Resource, ReleaseWakesFifo) {
  Engine engine;
  Resource resource(engine, 1);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    resource.acquire([&order, &resource, &engine, i] {
      order.push_back(i);
      engine.schedule_after(1.0, [&resource] { resource.release(); });
    });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(resource.in_use(), 0u);
}

TEST(Resource, CapacityAccessor) {
  Engine engine;
  Resource resource(engine, 3);
  EXPECT_EQ(resource.capacity(), 3u);
}

// ---------- Link ----------

TEST(Link, DelayOnlyTransferTime) {
  Engine engine;
  Link link(engine, 0.010, 1e6);  // 10ms, 1 MB/s
  double arrived = -1.0;
  link.transfer(1000, [&] { arrived = engine.now(); });
  engine.run();
  EXPECT_NEAR(arrived, 0.011, 1e-12);
  EXPECT_EQ(link.transfers(), 1u);
  EXPECT_EQ(link.bytes_carried(), 1000);
}

TEST(Link, DelayOnlyTransfersOverlap) {
  Engine engine;
  Link link(engine, 0.010, 1e6);
  std::vector<double> arrivals;
  for (int i = 0; i < 3; ++i) {
    link.transfer(1000, [&] { arrivals.push_back(engine.now()); });
  }
  engine.run();
  ASSERT_EQ(arrivals.size(), 3u);
  for (const double t : arrivals) EXPECT_NEAR(t, 0.011, 1e-12);
}

TEST(Link, SerializedTransfersQueue) {
  Engine engine;
  Link link(engine, 0.0, 1e6, LinkMode::kSerialized);
  std::vector<double> arrivals;
  for (int i = 0; i < 3; ++i) {
    link.transfer(1000000, [&] { arrivals.push_back(engine.now()); });
  }
  engine.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_NEAR(arrivals[0], 1.0, 1e-9);
  EXPECT_NEAR(arrivals[1], 2.0, 1e-9);
  EXPECT_NEAR(arrivals[2], 3.0, 1e-9);
}

TEST(Link, TransferTimeQuery) {
  Engine engine;
  Link link(engine, 0.020, gbit_per_s(1.0));
  EXPECT_NEAR(link.transfer_time(125000000), 0.020 + 1.0, 1e-9);
}

}  // namespace
}  // namespace gc::des
