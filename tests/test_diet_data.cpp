// Tests for DIET data types, profiles, config and protocol messages.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "diet/config.hpp"
#include "diet/data.hpp"
#include "diet/profile.hpp"
#include "diet/protocol.hpp"

namespace gc::diet {
namespace {

// ---------- ArgValue ----------

TEST(ArgValue, ScalarRoundtrip) {
  ArgValue arg;
  ASSERT_TRUE(arg.set_scalar<std::int32_t>(128, BaseType::kInt,
                                           Persistence::kVolatile)
                  .is_ok());
  EXPECT_TRUE(arg.has_value());
  auto back = arg.get_scalar<std::int32_t>();
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), 128);
  EXPECT_EQ(arg.desc.type, DataType::kScalar);
  EXPECT_EQ(arg.wire_bytes(), 4);
}

TEST(ArgValue, ScalarTypeSizeMismatch) {
  ArgValue arg;
  const auto status =
      arg.set_scalar<double>(1.0, BaseType::kInt, Persistence::kVolatile);
  EXPECT_FALSE(status.is_ok());  // double is 8 bytes, INT is 4
}

TEST(ArgValue, ScalarGetWrongType) {
  ArgValue arg;
  ASSERT_TRUE(arg.set_scalar<std::int32_t>(1, BaseType::kInt,
                                           Persistence::kVolatile)
                  .is_ok());
  EXPECT_FALSE(arg.get_scalar<double>().is_ok());
}

TEST(ArgValue, VectorRoundtrip) {
  ArgValue arg;
  const std::vector<double> values = {1.0, 2.5, -3.0};
  ASSERT_TRUE(arg.set_vector<double>(values, BaseType::kDouble,
                                     Persistence::kPersistent)
                  .is_ok());
  auto back = arg.get_vector<double>();
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), values);
  EXPECT_EQ(arg.desc.rows, 3u);
  EXPECT_EQ(arg.desc.persistence, Persistence::kPersistent);
  EXPECT_EQ(arg.wire_bytes(), 24);
}

TEST(ArgValue, StringRoundtrip) {
  ArgValue arg;
  ASSERT_TRUE(arg.set_string("hello grid", Persistence::kVolatile).is_ok());
  auto back = arg.get_string();
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), "hello grid");
}

TEST(ArgValue, FileWithPinnedSize) {
  ArgValue arg;
  ASSERT_TRUE(
      arg.set_file("/nfs/sim/results.tar", Persistence::kVolatile, 1 << 20)
          .is_ok());
  auto file = arg.get_file();
  ASSERT_TRUE(file.is_ok());
  EXPECT_EQ(file.value().path, "/nfs/sim/results.tar");
  EXPECT_EQ(file.value().size_bytes, 1 << 20);
  EXPECT_EQ(arg.wire_bytes(), 1 << 20);
}

TEST(ArgValue, FileStatsRealFile) {
  const std::string path = "/tmp/gc_test_argvalue_file.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << std::string(1234, 'x');
  }
  ArgValue arg;
  ASSERT_TRUE(arg.set_file(path, Persistence::kVolatile).is_ok());
  EXPECT_EQ(arg.get_file().value().size_bytes, 1234);
  std::filesystem::remove(path);
}

TEST(ArgValue, MissingValueErrors) {
  ArgValue arg;
  EXPECT_FALSE(arg.get_scalar<std::int32_t>().is_ok());
  EXPECT_FALSE(arg.get_string().is_ok());
  EXPECT_FALSE(arg.get_file().is_ok());
  EXPECT_EQ(arg.wire_bytes(), 0);
}

TEST(ArgValue, SerializeValueRoundtrip) {
  ArgValue scalar;
  ASSERT_TRUE(scalar
                  .set_scalar<std::int64_t>(-7, BaseType::kLongInt,
                                            Persistence::kSticky)
                  .is_ok());
  ArgValue file;
  ASSERT_TRUE(
      file.set_file("/x/y.tar", Persistence::kVolatile, 4096).is_ok());
  ArgValue empty;
  empty.desc.type = DataType::kScalar;

  net::Writer writer;
  scalar.serialize_value(writer);
  file.serialize_value(writer);
  empty.serialize_value(writer);

  net::Reader reader(writer.data());
  ArgValue back;
  back.deserialize_value(reader);
  EXPECT_EQ(back.get_scalar<std::int64_t>().value(), -7);
  EXPECT_EQ(back.desc.persistence, Persistence::kSticky);
  back.deserialize_value(reader);
  EXPECT_EQ(back.get_file().value().path, "/x/y.tar");
  EXPECT_EQ(back.modeled_bytes(), 4096);
  back.deserialize_value(reader);
  EXPECT_FALSE(back.has_value());
  EXPECT_TRUE(reader.done());
}

// ---------- ProfileDesc / Profile ----------

TEST(ProfileDesc, PaperShape) {
  // arg.profile = diet_profile_desc_alloc("ramsesZoom2", 6, 6, 8);
  ProfileDesc desc("ramsesZoom2", 6, 6, 8);
  EXPECT_EQ(desc.arg_count(), 9);
  EXPECT_EQ(desc.direction(0), Direction::kIn);
  EXPECT_EQ(desc.direction(6), Direction::kIn);
  EXPECT_EQ(desc.direction(7), Direction::kOut);
  EXPECT_EQ(desc.direction(8), Direction::kOut);
}

TEST(ProfileDesc, InOutDirections) {
  ProfileDesc desc("svc", 0, 2, 4);
  EXPECT_EQ(desc.direction(0), Direction::kIn);
  EXPECT_EQ(desc.direction(1), Direction::kInOut);
  EXPECT_EQ(desc.direction(2), Direction::kInOut);
  EXPECT_EQ(desc.direction(3), Direction::kOut);
}

TEST(ProfileDesc, NoInArguments) {
  ProfileDesc desc("outonly", -1, -1, 0);
  EXPECT_EQ(desc.arg_count(), 1);
  EXPECT_EQ(desc.direction(0), Direction::kOut);
}

TEST(ProfileDesc, Matching) {
  ProfileDesc a("svc", 1, 1, 2);
  a.arg(0).type = DataType::kFile;
  a.arg(0).base = BaseType::kChar;
  a.arg(1).type = DataType::kScalar;
  a.arg(1).base = BaseType::kInt;
  a.arg(2).type = DataType::kScalar;
  a.arg(2).base = BaseType::kInt;

  ProfileDesc b = a;
  EXPECT_TRUE(a.matches(b));

  ProfileDesc other_name("svc2", 1, 1, 2);
  EXPECT_FALSE(a.matches(other_name));

  ProfileDesc wrong_type = a;
  wrong_type.arg(1).base = BaseType::kDouble;
  EXPECT_FALSE(a.matches(wrong_type));

  ProfileDesc wrong_shape("svc", 0, 1, 2);
  EXPECT_FALSE(a.matches(wrong_shape));
}

TEST(ProfileDesc, SerializeRoundtrip) {
  ProfileDesc desc("ramsesZoom2", 6, 6, 8);
  desc.arg(0).type = DataType::kFile;
  desc.arg(7).type = DataType::kFile;
  net::Writer writer;
  desc.serialize(writer);
  net::Reader reader(writer.data());
  const ProfileDesc back = ProfileDesc::deserialize(reader);
  EXPECT_TRUE(back.matches(desc));
  EXPECT_TRUE(reader.done());
}

TEST(ProfileDesc, DeserializeGarbageIsInvalid) {
  net::Writer writer;
  writer.str("x");
  writer.i32(5);
  writer.i32(3);  // last_inout < last_in: invalid
  writer.i32(7);
  net::Reader reader(writer.data());
  const ProfileDesc back = ProfileDesc::deserialize(reader);
  EXPECT_FALSE(back.valid());
}

TEST(Profile, InputsCompleteAndBytes) {
  Profile profile("svc", 1, 1, 2);
  EXPECT_FALSE(profile.inputs_complete());
  profile.arg(0).set_scalar<std::int32_t>(1, BaseType::kInt,
                                          Persistence::kVolatile);
  EXPECT_FALSE(profile.inputs_complete());
  profile.arg(1).set_vector<double>(std::vector<double>{1, 2},
                                    BaseType::kDouble,
                                    Persistence::kVolatile);
  EXPECT_TRUE(profile.inputs_complete());
  EXPECT_EQ(profile.in_bytes(), 4 + 16);
}

TEST(Profile, FileBytesSeparated) {
  Profile profile("svc", 1, 1, 3);
  profile.arg(0).set_file("/in.nml", Persistence::kVolatile, 4096);
  profile.arg(1).set_scalar<std::int32_t>(1, BaseType::kInt,
                                          Persistence::kVolatile);
  profile.arg(2).set_file("/out.tar", Persistence::kVolatile, 1 << 20);
  EXPECT_EQ(profile.in_file_bytes(), 4096);
  EXPECT_EQ(profile.out_file_bytes(), (1 << 20));
  EXPECT_EQ(profile.in_bytes(), 4096 + 4);
}

TEST(Profile, InputsSerializeToCalleeAndBack) {
  Profile caller("svc", 2, 3, 5);
  caller.arg(0).set_scalar<std::int32_t>(42, BaseType::kInt,
                                         Persistence::kVolatile);
  caller.arg(1).set_string("params", Persistence::kVolatile);
  caller.arg(2).set_file("/in.bin", Persistence::kVolatile, 10);
  caller.arg(3).set_scalar<double>(2.5, BaseType::kDouble,
                                   Persistence::kVolatile);  // INOUT

  net::Writer writer;
  caller.serialize_inputs(writer);
  net::Reader reader(writer.data());
  Profile callee = Profile::deserialize_inputs("svc", 2, 3, 5, reader);

  EXPECT_EQ(callee.arg(0).get_scalar<std::int32_t>().value(), 42);
  EXPECT_EQ(callee.arg(1).get_string().value(), "params");
  EXPECT_EQ(callee.arg(2).get_file().value().path, "/in.bin");
  EXPECT_DOUBLE_EQ(callee.arg(3).get_scalar<double>().value(), 2.5);
  EXPECT_FALSE(callee.arg(4).has_value());  // OUT not shipped

  // Callee fills INOUT + OUT; merge back.
  callee.arg(3).set_scalar<double>(7.5, BaseType::kDouble,
                                   Persistence::kVolatile);
  callee.arg(4).set_file("/out.tar", Persistence::kVolatile, 999);
  callee.arg(5).set_scalar<std::int32_t>(0, BaseType::kInt,
                                         Persistence::kVolatile);
  net::Writer out_writer;
  callee.serialize_outputs(out_writer);
  net::Reader out_reader(out_writer.data());
  caller.merge_outputs(out_reader);

  EXPECT_DOUBLE_EQ(caller.arg(3).get_scalar<double>().value(), 7.5);
  EXPECT_EQ(caller.arg(4).get_file().value().path, "/out.tar");
  EXPECT_EQ(caller.arg(5).get_scalar<std::int32_t>().value(), 0);
  // IN args keep the caller's values ("brought back into the same memory
  // zone" applies to INOUT only).
  EXPECT_EQ(caller.arg(0).get_scalar<std::int32_t>().value(), 42);
}

// ---------- Config ----------

TEST(Config, ParseBasics) {
  const Config config = Config::parse(
      "# client configuration\n"
      "MAName = MA1\n"
      "schedulerPolicy=mct\n"
      "  traceLevel =  5  # inline comment\n"
      "\n"
      "malformed line without equals\n");
  EXPECT_EQ(config.get_or("maname", ""), "MA1");
  EXPECT_EQ(config.get_or("SCHEDULERPOLICY", ""), "mct");  // case-insensitive
  EXPECT_EQ(config.get_int("tracelevel").value(), 5);
  EXPECT_FALSE(config.get("missing").has_value());
}

TEST(Config, TypedAccessors) {
  const Config config = Config::parse("a = 12\nb = 2.5\nc = nope\n");
  EXPECT_EQ(config.get_int("a").value(), 12);
  EXPECT_DOUBLE_EQ(config.get_double("b").value(), 2.5);
  EXPECT_FALSE(config.get_int("c").is_ok());
  EXPECT_FALSE(config.get_int("zz").is_ok());
}

TEST(Config, RoundtripThroughToString) {
  Config config;
  config.set("MAName", "MA1");
  config.set("parentName", "LA-lyon");
  const Config back = Config::parse(config.to_string());
  EXPECT_EQ(back.get_or("maname", ""), "MA1");
  EXPECT_EQ(back.get_or("parentname", ""), "LA-lyon");
}

TEST(Config, LoadMissingFileFails) {
  EXPECT_FALSE(Config::load("/nonexistent/path.cfg").is_ok());
}

// ---------- protocol messages ----------

TEST(Protocol, SedRegisterRoundtrip) {
  SedRegisterMsg msg;
  msg.sed_uid = 3;
  msg.name = "SeD-violette-0";
  msg.host_power = 1.0;
  msg.machines = 16;
  msg.services.emplace_back("ramsesZoom2", 6, 6, 8);
  const auto back = SedRegisterMsg::decode(msg.encode());
  EXPECT_EQ(back.sed_uid, 3u);
  EXPECT_EQ(back.name, "SeD-violette-0");
  EXPECT_EQ(back.machines, 16);
  ASSERT_EQ(back.services.size(), 1u);
  EXPECT_EQ(back.services[0].path(), "ramsesZoom2");
}

TEST(Protocol, SubmitAndCollectRoundtrip) {
  RequestSubmitMsg submit;
  submit.client_request_id = 55;
  submit.desc = ProfileDesc("ramsesZoom1", 2, 2, 4);
  submit.in_bytes = 5000;
  const auto submit_back = RequestSubmitMsg::decode(submit.encode());
  EXPECT_EQ(submit_back.client_request_id, 55u);
  EXPECT_EQ(submit_back.desc.path(), "ramsesZoom1");
  EXPECT_EQ(submit_back.in_bytes, 5000);

  RequestCollectMsg collect;
  collect.request_key = 77;
  collect.desc = submit.desc;
  const auto collect_back = RequestCollectMsg::decode(collect.encode());
  EXPECT_EQ(collect_back.request_key, 77u);
  EXPECT_TRUE(collect_back.desc.matches(submit.desc));
}

TEST(Protocol, ReplyRoundtrip) {
  RequestReplyMsg reply;
  reply.client_request_id = 9;
  reply.found = true;
  reply.chosen.sed_uid = 4;
  reply.chosen.sed_name = "SeD-grelon-1";
  reply.chosen.est.host_power = 1.43;
  const auto back = RequestReplyMsg::decode(reply.encode());
  EXPECT_TRUE(back.found);
  EXPECT_EQ(back.chosen.sed_uid, 4u);
  EXPECT_DOUBLE_EQ(back.chosen.est.host_power, 1.43);

  RequestReplyMsg not_found;
  not_found.client_request_id = 10;
  not_found.found = false;
  EXPECT_FALSE(RequestReplyMsg::decode(not_found.encode()).found);
}

TEST(Protocol, CallMessagesRoundtrip) {
  CallDataMsg data;
  data.call_id = 12;
  data.path = "ramsesZoom2";
  data.last_in = 6;
  data.last_inout = 6;
  data.last_out = 8;
  data.inputs = net::Bytes{9, 8, 7};
  const auto data_back = CallDataMsg::decode(data.encode());
  EXPECT_EQ(data_back.call_id, 12u);
  EXPECT_EQ(data_back.inputs, (net::Bytes{9, 8, 7}));

  CallResultMsg result;
  result.call_id = 12;
  result.solve_status = 0;
  result.outputs = net::Bytes{1};
  const auto result_back = CallResultMsg::decode(result.encode());
  EXPECT_EQ(result_back.solve_status, 0);
  EXPECT_EQ(result_back.outputs.size(), 1u);

  JobDoneMsg done;
  done.sed_uid = 2;
  done.call_id = 12;
  done.busy_seconds = 5041.0;
  const auto done_back = JobDoneMsg::decode(done.encode());
  EXPECT_DOUBLE_EQ(done_back.busy_seconds, 5041.0);
}

}  // namespace
}  // namespace gc::diet
