// Tests for TreeMaker (merger trees).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "halo/halomaker.hpp"
#include "tree/treemaker.hpp"

namespace gc::tree {
namespace {

halo::Halo make_halo(std::uint64_t id, double mass,
                     std::vector<std::uint64_t> members) {
  halo::Halo h;
  h.id = id;
  h.mass = mass;
  h.npart = members.size();
  h.members = std::move(members);
  return h;
}

halo::HaloCatalog make_catalog(double aexp,
                               std::vector<halo::Halo> halos) {
  halo::HaloCatalog catalog;
  catalog.aexp = aexp;
  catalog.box_mpc = 100.0;
  catalog.halos = std::move(halos);
  return catalog;
}

TEST(TreeMaker, SimpleDescendantChain) {
  // One halo tracked over three snapshots by particle overlap.
  std::vector<halo::HaloCatalog> catalogs = {
      make_catalog(0.3, {make_halo(1, 1.0, {1, 2, 3, 4})}),
      make_catalog(0.6, {make_halo(1, 1.2, {1, 2, 3, 4, 5})}),
      make_catalog(1.0, {make_halo(1, 1.5, {1, 2, 3, 4, 5, 6})}),
  };
  const MergerForest forest = build_forest(catalogs);
  ASSERT_EQ(forest.nodes().size(), 3u);
  EXPECT_TRUE(forest.check_invariants());

  const auto roots = forest.roots();
  ASSERT_EQ(roots.size(), 1u);
  const auto branch = forest.main_branch(roots[0]);
  ASSERT_EQ(branch.size(), 3u);
  EXPECT_DOUBLE_EQ(forest.nodes()[static_cast<size_t>(branch[0])].aexp, 1.0);
  EXPECT_DOUBLE_EQ(forest.nodes()[static_cast<size_t>(branch[2])].aexp, 0.3);
  EXPECT_EQ(forest.merger_count(), 0u);
}

TEST(TreeMaker, MergerRecorded) {
  // Two halos at t0 merge into one at t1; the heavier is main progenitor.
  std::vector<halo::HaloCatalog> catalogs = {
      make_catalog(0.5, {make_halo(1, 2.0, {1, 2, 3, 4, 5, 6}),
                         make_halo(2, 1.0, {10, 11, 12})}),
      make_catalog(1.0,
                   {make_halo(1, 3.1, {1, 2, 3, 4, 5, 6, 10, 11, 12, 20})}),
  };
  const MergerForest forest = build_forest(catalogs);
  EXPECT_TRUE(forest.check_invariants());
  EXPECT_EQ(forest.merger_count(), 1u);

  const auto roots = forest.roots();
  ASSERT_EQ(roots.size(), 1u);
  const TreeNode& final_node = forest.nodes()[static_cast<size_t>(roots[0])];
  ASSERT_EQ(final_node.progenitors.size(), 2u);
  const TreeNode& main =
      forest.nodes()[static_cast<size_t>(final_node.main_progenitor)];
  EXPECT_DOUBLE_EQ(main.mass, 2.0);
}

TEST(TreeMaker, SplitPicksLargestOverlap) {
  // A halo whose particles split 70/30 between two descendants follows the
  // 70% part.
  std::vector<std::uint64_t> members;
  for (std::uint64_t i = 1; i <= 10; ++i) members.push_back(i);
  std::vector<halo::HaloCatalog> catalogs = {
      make_catalog(0.5, {make_halo(1, 1.0, members)}),
      make_catalog(1.0, {make_halo(1, 0.9, {1, 2, 3, 4, 5, 6, 7}),
                         make_halo(2, 0.5, {8, 9, 10})}),
  };
  const MergerForest forest = build_forest(catalogs);
  const TreeNode& progenitor = forest.nodes()[0];
  ASSERT_GE(progenitor.descendant, 0);
  const TreeNode& descendant =
      forest.nodes()[static_cast<size_t>(progenitor.descendant)];
  EXPECT_EQ(descendant.halo_id, 1u);
  EXPECT_EQ(descendant.npart, 7u);
}

TEST(TreeMaker, DissolvedHaloHasNoDescendant) {
  std::vector<halo::HaloCatalog> catalogs = {
      make_catalog(0.5, {make_halo(1, 1.0, {1, 2, 3})}),
      make_catalog(1.0, {make_halo(1, 1.0, {50, 51, 52})}),  // disjoint
  };
  const MergerForest forest = build_forest(catalogs);
  EXPECT_EQ(forest.nodes()[0].descendant, -1);
  EXPECT_TRUE(forest.nodes()[1].progenitors.empty());
  EXPECT_TRUE(forest.check_invariants());
}

TEST(TreeMaker, NewbornHaloHasNoProgenitor) {
  std::vector<halo::HaloCatalog> catalogs = {
      make_catalog(0.5, {}),
      make_catalog(1.0, {make_halo(1, 1.0, {1, 2, 3})}),
  };
  const MergerForest forest = build_forest(catalogs);
  ASSERT_EQ(forest.nodes().size(), 1u);
  EXPECT_EQ(forest.nodes()[0].main_progenitor, -1);
  EXPECT_EQ(forest.main_branch(0).size(), 1u);
}

TEST(TreeMaker, EmptyInput) {
  const MergerForest forest = build_forest({});
  EXPECT_TRUE(forest.nodes().empty());
  EXPECT_TRUE(forest.roots().empty());
  EXPECT_TRUE(forest.check_invariants());
}

TEST(TreeMaker, CarriesHaloProperties) {
  halo::Halo h = make_halo(5, 2.5, {1, 2, 3});
  h.x = 0.1;
  h.y = 0.2;
  h.z = 0.3;
  h.vx = 100.0;
  const MergerForest forest = build_forest({make_catalog(0.7, {h})});
  const TreeNode& node = forest.nodes()[0];
  EXPECT_EQ(node.halo_id, 5u);
  EXPECT_DOUBLE_EQ(node.aexp, 0.7);
  EXPECT_DOUBLE_EQ(node.mass, 2.5);
  EXPECT_DOUBLE_EQ(node.x, 0.1);
  EXPECT_DOUBLE_EQ(node.vx, 100.0);
}

TEST(TreeMaker, ForestIoRoundtrip) {
  std::vector<halo::HaloCatalog> catalogs = {
      make_catalog(0.5, {make_halo(1, 2.0, {1, 2, 3, 4}),
                         make_halo(2, 1.0, {9, 10, 11})}),
      make_catalog(1.0, {make_halo(1, 3.2, {1, 2, 3, 4, 9, 10, 11})}),
  };
  const MergerForest forest = build_forest(catalogs);

  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("gc_tree_" + std::to_string(::getpid()) + ".bin"))
          .string();
  ASSERT_TRUE(write_forest(path, forest).is_ok());
  auto back = read_forest(path);
  ASSERT_TRUE(back.is_ok());
  ASSERT_EQ(back.value().nodes().size(), forest.nodes().size());
  EXPECT_TRUE(back.value().check_invariants());
  EXPECT_EQ(back.value().merger_count(), 1u);
  for (std::size_t i = 0; i < forest.nodes().size(); ++i) {
    EXPECT_EQ(back.value().nodes()[i].halo_id, forest.nodes()[i].halo_id);
    EXPECT_EQ(back.value().nodes()[i].descendant,
              forest.nodes()[i].descendant);
    EXPECT_EQ(back.value().nodes()[i].progenitors,
              forest.nodes()[i].progenitors);
  }
  std::filesystem::remove(path);
}

TEST(TreeMaker, LongChainWithBranching) {
  // 4 snapshots: two independent halos; they merge at snapshot 2; the
  // merged halo survives to snapshot 3.
  std::vector<halo::HaloCatalog> catalogs = {
      make_catalog(0.25, {make_halo(1, 1.0, {1, 2, 3}),
                          make_halo(2, 0.8, {10, 11, 12})}),
      make_catalog(0.5, {make_halo(1, 1.1, {1, 2, 3, 4}),
                         make_halo(2, 0.9, {10, 11, 12, 13})}),
      make_catalog(0.75,
                   {make_halo(1, 2.2, {1, 2, 3, 4, 10, 11, 12, 13})}),
      make_catalog(1.0,
                   {make_halo(1, 2.3, {1, 2, 3, 4, 10, 11, 12, 13, 14})}),
  };
  const MergerForest forest = build_forest(catalogs);
  EXPECT_TRUE(forest.check_invariants());
  EXPECT_EQ(forest.merger_count(), 1u);
  const auto branch = forest.main_branch(forest.roots()[0]);
  EXPECT_EQ(branch.size(), 4u);  // root -> merged -> heavier -> its t0 self
}

}  // namespace
}  // namespace gc::tree
