// Property-based sweeps across the stack: seeded TEST_P suites asserting
// invariants that must hold for ANY seed, not just the calibrated one.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "diet/profile.hpp"
#include "halo/halomaker.hpp"
#include "hilbert/hilbert.hpp"
#include "ramses/domain.hpp"
#include "ramses/loader.hpp"
#include "ramses/pm.hpp"
#include "workflow/campaign.hpp"

namespace gc {
namespace {

class Seeded : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, Seeded,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------- Hilbert partitioning ----------

TEST_P(Seeded, HilbertPartitionBalancesRandomWeights) {
  Rng rng(GetParam());
  const std::size_t cells = 512;
  std::vector<double> weights(cells);
  double total = 0.0;
  for (auto& w : weights) {
    w = rng.exponential(1.0);
    total += w;
  }
  for (const int parts : {2, 3, 7, 16}) {
    const auto bounds = hilbert::partition(weights, parts);
    ASSERT_EQ(bounds.size(), static_cast<std::size_t>(parts) + 1);
    double max_part = 0.0;
    for (int p = 0; p < parts; ++p) {
      double sum = 0.0;
      for (std::size_t i = bounds[static_cast<size_t>(p)];
           i < bounds[static_cast<size_t>(p) + 1]; ++i) {
        sum += weights[i];
      }
      max_part = std::max(max_part, sum);
    }
    // Greedy prefix split: no part exceeds the ideal share by more than
    // the largest single weight.
    const double largest =
        *std::max_element(weights.begin(), weights.end());
    EXPECT_LE(max_part, total / parts + largest + 1e-9);
  }
}

TEST_P(Seeded, HilbertRoundtripRandomOrders) {
  Rng rng(GetParam() * 977);
  for (int i = 0; i < 200; ++i) {
    const int order = 1 + static_cast<int>(rng.uniform_u64(21));
    const auto n = std::uint32_t{1} << order;
    const auto x = static_cast<std::uint32_t>(rng.uniform_u64(n));
    const auto y = static_cast<std::uint32_t>(rng.uniform_u64(n));
    const auto z = static_cast<std::uint32_t>(rng.uniform_u64(n));
    std::uint32_t bx, by, bz;
    hilbert::decode(hilbert::encode(x, y, z, order), order, bx, by, bz);
    ASSERT_EQ(bx, x);
    ASSERT_EQ(by, y);
    ASSERT_EQ(bz, z);
  }
}

// ---------- profile serialization ----------

diet::Profile random_profile(Rng& rng) {
  const int last_out = static_cast<int>(rng.uniform_u64(6));
  const int last_inout = static_cast<int>(rng.uniform_u64(
                             static_cast<std::uint64_t>(last_out) + 2)) -
                         1;
  const int last_in =
      last_inout >= 0
          ? static_cast<int>(rng.uniform_u64(
                static_cast<std::uint64_t>(last_inout) + 2)) -
                1
          : -1;
  diet::Profile profile("svc" + std::to_string(rng.uniform_u64(3)),
                        std::min(last_in, last_inout),
                        std::min(last_inout, last_out), last_out);
  for (int i = 0; i <= profile.last_inout(); ++i) {
    switch (rng.uniform_u64(4)) {
      case 0:
        profile.arg(i).set_scalar<std::int32_t>(
            static_cast<std::int32_t>(rng.next_u64()), diet::BaseType::kInt,
            diet::Persistence::kVolatile);
        break;
      case 1: {
        std::vector<double> values(rng.uniform_u64(16));
        for (auto& v : values) v = rng.normal();
        profile.arg(i).set_vector<double>(values, diet::BaseType::kDouble,
                                          diet::Persistence::kPersistent);
        break;
      }
      case 2:
        profile.arg(i).set_string(std::string(rng.uniform_u64(32), 'x'),
                                  diet::Persistence::kVolatile);
        break;
      default:
        profile.arg(i).set_file("/f" + std::to_string(rng.uniform_u64(100)),
                                diet::Persistence::kVolatile,
                                static_cast<std::int64_t>(
                                    rng.uniform_u64(1 << 20)));
        break;
    }
  }
  return profile;
}

TEST_P(Seeded, ProfileInputsRoundtripAnyShape) {
  Rng rng(GetParam() * 31337);
  for (int round = 0; round < 50; ++round) {
    const diet::Profile original = random_profile(rng);
    net::Writer writer;
    original.serialize_inputs(writer);
    net::Reader reader(writer.data());
    const diet::Profile back = diet::Profile::deserialize_inputs(
        original.path(), original.last_in(), original.last_inout(),
        original.last_out(), reader);
    ASSERT_TRUE(reader.done());
    ASSERT_EQ(back.arg_count(), original.arg_count());
    for (int i = 0; i <= original.last_inout(); ++i) {
      ASSERT_EQ(back.arg(i).has_value(), original.arg(i).has_value());
      ASSERT_EQ(back.arg(i).raw(), original.arg(i).raw());
      ASSERT_EQ(back.arg(i).file_path(), original.arg(i).file_path());
      ASSERT_EQ(back.arg(i).modeled_bytes(), original.arg(i).modeled_bytes());
    }
    ASSERT_EQ(back.in_bytes(), original.in_bytes());
  }
}

// ---------- FoF ----------

TEST_P(Seeded, FofPartitionsAllParticles) {
  // Groups + isolated particles: every particle lands in exactly one
  // group; halos' member lists are disjoint.
  Rng rng(GetParam() * 101);
  std::vector<double> x, y, z, v(0), mass;
  std::vector<std::uint64_t> id;
  const int blobs = 3 + static_cast<int>(rng.uniform_u64(4));
  for (int b = 0; b < blobs; ++b) {
    const double cx = rng.uniform();
    const double cy = rng.uniform();
    const double cz = rng.uniform();
    const int count = 30 + static_cast<int>(rng.uniform_u64(60));
    for (int i = 0; i < count; ++i) {
      auto wrap = [](double w) { return w - std::floor(w); };
      x.push_back(wrap(cx + rng.normal(0, 0.004)));
      y.push_back(wrap(cy + rng.normal(0, 0.004)));
      z.push_back(wrap(cz + rng.normal(0, 0.004)));
      mass.push_back(1e-4);
      id.push_back(id.size() + 1);
    }
  }
  for (int i = 0; i < 500; ++i) {
    x.push_back(rng.uniform());
    y.push_back(rng.uniform());
    z.push_back(rng.uniform());
    mass.push_back(1e-4);
    id.push_back(id.size() + 1);
  }
  std::vector<double> zero(x.size(), 0.0);
  halo::ParticleView view{&x, &y, &z, &zero, &zero, &zero, &mass, &id};
  const halo::HaloCatalog catalog =
      halo::find_halos(view, 1.0, 100.0, halo::FofOptions{0.1, 20});

  std::set<std::uint64_t> seen;
  for (const auto& h : catalog.halos) {
    EXPECT_GE(h.npart, 20u);
    for (const std::uint64_t pid : h.members) {
      EXPECT_TRUE(seen.insert(pid).second) << "particle in two halos";
    }
    EXPECT_GE(h.x, 0.0);
    EXPECT_LT(h.x, 1.0);
    EXPECT_GT(h.mass, 0.0);
  }
  EXPECT_LE(seen.size(), x.size());
}

// ---------- PM dynamics ----------

TEST_P(Seeded, LeapfrogConservesMassAndWrapsPositions) {
  Rng rng(GetParam() * 7);
  cosmo::Cosmology cosmology{cosmo::Params{}};
  ramses::PmSolver solver(cosmology, {16, 0.27});
  ramses::ParticleSet particles;
  const int n = 6;
  for (int i = 0; i < n * n * n; ++i) {
    particles.push_back(rng.uniform(), rng.uniform(), rng.uniform(),
                        rng.normal(0, 1e-3), rng.normal(0, 1e-3),
                        rng.normal(0, 1e-3), 1.0 / (n * n * n),
                        static_cast<std::uint64_t>(i + 1), 0);
  }
  const double mass0 = particles.total_mass();
  double a = 0.2;
  for (int s = 0; s < 10; ++s) {
    solver.step(particles, a, 0.05);
    a += 0.05;
    ASSERT_TRUE(particles.valid());
  }
  EXPECT_DOUBLE_EQ(particles.total_mass(), mass0);
}

TEST_P(Seeded, DomainDecompositionCoversEverything) {
  Rng rng(GetParam() * 13);
  ramses::ParticleSet particles;
  for (int i = 0; i < 3000; ++i) {
    particles.push_back(rng.uniform(), rng.uniform(), rng.uniform(), 0, 0, 0,
                        1.0 / 3000, static_cast<std::uint64_t>(i + 1), 0);
  }
  for (const int ranks : {2, 5, 11}) {
    ramses::DomainDecomposition domain(particles, 4, ranks);
    const auto load = domain.load(particles);
    std::size_t total = 0;
    for (const std::size_t l : load) total += l;
    ASSERT_EQ(total, particles.size());
    EXPECT_LT(domain.imbalance(particles), 1.25);
  }
}

// ---------- campaign invariants for any seed ----------

TEST_P(Seeded, CampaignInvariants) {
  workflow::CampaignConfig config;
  config.sub_simulations = 22;
  config.seed = GetParam();
  const workflow::CampaignResult result =
      workflow::run_grid5000_campaign(config);

  EXPECT_EQ(result.failed_calls, 0u);
  ASSERT_EQ(result.zoom2.size(), 22u);

  // Every record is fully populated and causally ordered.
  for (const auto& record : result.zoom2) {
    EXPECT_TRUE(record.ok);
    EXPECT_GE(record.found, record.submitted);
    EXPECT_GE(record.started, record.found);
    EXPECT_GE(record.completed, record.started);
    EXPECT_FALSE(record.sed_name.empty());
  }

  // Assignments sum to the request count; distribution even (2 each).
  std::uint64_t assigned = 0;
  for (const auto& sed : result.seds) {
    assigned += sed.requests;
    EXPECT_EQ(sed.requests, 2u);
  }
  EXPECT_EQ(assigned, 22u);

  // Makespan bounded below by the best possible and above by sequential.
  EXPECT_GT(result.makespan, result.part1_duration);
  EXPECT_LT(result.makespan, result.sequential_estimate);

  // Finding time stays in the calibrated regime for any seed.
  EXPECT_GT(result.finding_mean, 0.040);
  EXPECT_LT(result.finding_mean, 0.060);
}

// ---------- contention flow model: tie-seed bit-identity ----------

TEST_P(Seeded, ContentionCampaignIsTieSeedInvariant) {
  auto run = [&](std::uint64_t tie_seed) {
    workflow::CampaignConfig config;
    config.sub_simulations = 12;
    config.contention = true;
    config.wan_bandwidth_scale = 0.05;  // force real congestion
    config.shipped_input_bytes = 64 << 20;
    config.input_mode = diet::Persistence::kPersistent;
    config.policy = "mct-data";
    config.tie_break_seed = tie_seed;
    return workflow::run_grid5000_campaign(config);
  };
  const workflow::CampaignResult baseline = run(0);
  const workflow::CampaignResult seeded = run(GetParam());
  EXPECT_GT(baseline.flows_completed, 0u);
  // Flow scheduling is deterministic: scrambling same-timestamp event
  // order must leave every outcome bit-identical.
  EXPECT_EQ(baseline.makespan, seeded.makespan);
  EXPECT_EQ(baseline.science_digest, seeded.science_digest);
  EXPECT_EQ(baseline.flows_completed, seeded.flows_completed);
  EXPECT_EQ(baseline.network_bytes, seeded.network_bytes);
  ASSERT_EQ(baseline.zoom2.size(), seeded.zoom2.size());
  for (std::size_t i = 0; i < baseline.zoom2.size(); ++i) {
    EXPECT_EQ(baseline.zoom2[i].completed, seeded.zoom2[i].completed);
  }
}

}  // namespace
}  // namespace gc
