// Chaos suite: the DIET hierarchy under deterministic fault injection.
//
// The contract under test (ISSUE 4): with a fault plan active, the zoom
// campaign must still complete every sub-simulation with science output
// identical to the fault-free run, two same-seed chaos runs must be
// bit-identical, retries must never execute a call id twice on any SED
// (at-most-once), a crashed SED must fail a blocking diet_call within
// its deadline instead of hanging it, and heartbeat evictions must land
// at the same virtual timestamps on every replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "des/engine.hpp"
#include "diet/client.hpp"
#include "diet/deployment.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "naming/registry.hpp"
#include "net/realenv.hpp"
#include "net/simenv.hpp"
#include "obs/trace.hpp"
#include "workflow/campaign.hpp"

namespace gc {
namespace {

// ---------- fault plans ----------

TEST(FaultPlan, NoneIsInactive) {
  const auto plan = fault::parse_plan("none");
  ASSERT_TRUE(plan.is_ok());
  EXPECT_FALSE(plan.value().active);
  EXPECT_EQ(plan.value().to_string(), "none");
}

TEST(FaultPlan, PresetsActivate) {
  const auto drop = fault::parse_plan("drop-only");
  ASSERT_TRUE(drop.is_ok());
  EXPECT_TRUE(drop.value().active);
  EXPECT_GT(drop.value().drop_rate, 0.0);
  EXPECT_EQ(drop.value().sed_crash_fraction, 0.0);

  const auto crash = fault::parse_plan("crash-only");
  ASSERT_TRUE(crash.is_ok());
  EXPECT_EQ(crash.value().drop_rate, 0.0);
  EXPECT_GT(crash.value().sed_crash_fraction, 0.0);

  const auto mixed = fault::parse_plan("mixed");
  ASSERT_TRUE(mixed.is_ok());
  EXPECT_GT(mixed.value().drop_rate, 0.0);
  EXPECT_GT(mixed.value().sed_crash_fraction, 0.0);
  EXPECT_EQ(mixed.value().isolations, 1);
}

TEST(FaultPlan, OverridesApply) {
  const auto plan =
      fault::parse_plan("mixed, drop=0.25 ,crash=0.5,max_attempts=9");
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  EXPECT_DOUBLE_EQ(plan.value().drop_rate, 0.25);
  EXPECT_DOUBLE_EQ(plan.value().sed_crash_fraction, 0.5);
  EXPECT_EQ(plan.value().max_attempts, 9);
  // Untouched knobs keep the preset's values.
  EXPECT_DOUBLE_EQ(plan.value().duplicate_rate, 0.02);
}

TEST(FaultPlan, BadSpellingsAreErrors) {
  EXPECT_FALSE(fault::parse_plan("hurricane").is_ok());
  EXPECT_FALSE(fault::parse_plan("mixed,drop").is_ok());
  EXPECT_FALSE(fault::parse_plan("mixed,wind=0.5").is_ok());
  EXPECT_FALSE(fault::parse_plan("mixed,drop=lots").is_ok());
}

// ---------- the materialized schedule ----------

bool same_schedule(const std::vector<fault::ProcessFault>& a,
                   const std::vector<fault::ProcessFault>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].kind != b[i].kind || a[i].index != b[i].index ||
        a[i].at_s != b[i].at_s) {
      return false;
    }
  }
  return true;
}

TEST(FaultSchedule, DeterministicPerSeed) {
  const auto plan = fault::parse_plan("mixed,la_deaths=1").value();
  const auto first = fault::materialize(plan, 11, 6, 42);
  const auto replay = fault::materialize(plan, 11, 6, 42);
  EXPECT_FALSE(first.empty());
  EXPECT_TRUE(same_schedule(first, replay));
  const auto other = fault::materialize(plan, 11, 6, 43);
  EXPECT_FALSE(same_schedule(first, other));
}

TEST(FaultSchedule, VictimsDistinctWindowedAndPaired) {
  const auto plan = fault::parse_plan("mixed,crash=0.5,isolations=2").value();
  const auto schedule = fault::materialize(plan, 11, 6, 7);

  std::set<int> crashed;
  std::set<int> isolated;
  std::map<int, SimTime> crash_at;
  for (const auto& f : schedule) {
    EXPECT_GE(f.at_s, plan.fault_window_from_s);
    switch (f.kind) {
      case fault::ProcessFault::Kind::kSedCrash:
        EXPECT_LT(f.at_s, plan.fault_window_to_s);
        EXPECT_TRUE(crashed.insert(f.index).second)
            << "SED " << f.index << " crashed twice";
        crash_at[f.index] = f.at_s;
        break;
      case fault::ProcessFault::Kind::kSedRestart:
        EXPECT_EQ(crashed.count(f.index), 1u);
        EXPECT_DOUBLE_EQ(f.at_s,
                         crash_at[f.index] + plan.sed_restart_delay_s);
        break;
      case fault::ProcessFault::Kind::kSedIsolate:
        EXPECT_TRUE(isolated.insert(f.index).second);
        break;
      default:
        break;
    }
  }
  // ceil(0.5 * 11) crashes; partitions never hit a crash victim.
  EXPECT_EQ(crashed.size(), 6u);
  EXPECT_EQ(isolated.size(), 2u);
  for (const int sed : isolated) EXPECT_EQ(crashed.count(sed), 0u);
  // The schedule is sorted for the campaign's post_after loop.
  EXPECT_TRUE(std::is_sorted(schedule.begin(), schedule.end(),
                             [](const fault::ProcessFault& a,
                                const fault::ProcessFault& b) {
                               return a.at_s < b.at_s;
                             }));
}

// ---------- the injector ----------

net::FaultDecision decide(fault::Injector& injector, SimTime now,
                          net::NodeId src, net::NodeId dst,
                          std::uint32_t type, std::uint64_t seq) {
  net::Envelope envelope;
  envelope.type = type;
  return injector.on_message(now, src, dst, envelope, seq);
}

TEST(FaultInjector, DecisionsDependOnlyOnMessageCoordinates) {
  const auto plan =
      fault::parse_plan("drop-only,drop=0.3,dup=0.3,delay=0.3").value();
  fault::Injector forward(plan, 99);
  fault::Injector backward(plan, 99);

  // Query the same coordinates in opposite orders, with reverse-direction
  // traffic interleaved into one of the passes: every per-coordinate
  // decision must still match (nothing is drawn from a shared stream),
  // and at these rates some messages must actually be tampered with.
  std::vector<net::FaultDecision> fwd(201);
  std::vector<net::FaultDecision> bwd(201);
  for (int seq = 1; seq <= 200; ++seq) {
    fwd[static_cast<std::size_t>(seq)] =
        decide(forward, 10.0, 1, 2, 21, static_cast<std::uint64_t>(seq));
  }
  for (int seq = 200; seq >= 1; --seq) {
    const auto mirror = decide(backward, 10.0, 2, 1, 21,
                               static_cast<std::uint64_t>(seq));
    (void)mirror;  // direction matters, but must not disturb (1 -> 2)
    bwd[static_cast<std::size_t>(seq)] =
        decide(backward, 10.0, 1, 2, 21, static_cast<std::uint64_t>(seq));
  }
  int tampered = 0;
  for (int seq = 1; seq <= 200; ++seq) {
    const auto& a = fwd[static_cast<std::size_t>(seq)];
    const auto& b = bwd[static_cast<std::size_t>(seq)];
    EXPECT_EQ(a.drop, b.drop) << "seq " << seq;
    EXPECT_EQ(a.duplicate, b.duplicate) << "seq " << seq;
    EXPECT_EQ(a.extra_delay_s, b.extra_delay_s) << "seq " << seq;
    if (a.tampered()) ++tampered;
  }
  EXPECT_GT(tampered, 0);
}

TEST(FaultInjector, GraceWindowProtectsEarlyMessages) {
  const auto plan = fault::parse_plan("drop-only,drop=1.0").value();
  fault::Injector injector(plan, 5);
  for (int seq = 1; seq <= 50; ++seq) {
    const auto decision =
        decide(injector, plan.message_faults_from_s / 2.0, 1, 2, 21,
               static_cast<std::uint64_t>(seq));
    EXPECT_FALSE(decision.tampered());
  }
  EXPECT_TRUE(decide(injector, plan.message_faults_from_s + 1.0, 1, 2, 21, 1)
                  .drop);
}

TEST(FaultInjector, IsolationDropsBothDirectionsUntilHealed) {
  // Zero rates: only the partition can drop anything.
  const auto plan = fault::parse_plan("drop-only,drop=0,dup=0,delay=0");
  fault::Injector injector(plan.value(), 5);
  EXPECT_FALSE(decide(injector, 100.0, 3, 4, 21, 1).tampered());
  injector.isolate(3);
  EXPECT_TRUE(decide(injector, 100.0, 3, 4, 21, 2).drop);
  EXPECT_TRUE(decide(injector, 100.0, 4, 3, 21, 3).drop);
  EXPECT_FALSE(decide(injector, 100.0, 4, 5, 21, 4).tampered());
  injector.heal(3);
  EXPECT_FALSE(decide(injector, 100.0, 3, 4, 21, 5).tampered());
  EXPECT_EQ(injector.stats().dropped.load(), 2u);
}

// ---------- chaos regression: the zoom campaign survives ----------

constexpr int kChaosSeeds = 16;

struct ChaosOutcome {
  std::uint64_t digest = 0;
  double makespan = 0.0;
  std::uint64_t failed = 0;
  std::uint64_t resubmissions = 0;
  std::uint64_t evictions = 0;
};

ChaosOutcome run_chaos(const std::string& plan, std::uint64_t fault_seed) {
  workflow::CampaignConfig config;
  config.sub_simulations = 22;
  config.seed = 11;
  config.fault_plan = plan;
  config.fault_seed = fault_seed;
  const workflow::CampaignResult result =
      workflow::run_grid5000_campaign(config);
  return ChaosOutcome{result.science_digest, result.makespan,
                      result.failed_calls, result.resubmissions,
                      result.heartbeat_evictions};
}

TEST(Chaos, CampaignSurvivesEveryPlanWithFaultFreeScience) {
  const ChaosOutcome fault_free = run_chaos("", 1);
  EXPECT_EQ(fault_free.failed, 0u);
  EXPECT_NE(fault_free.digest, 0u);

  for (const char* plan : {"drop-only", "crash-only", "mixed"}) {
    for (std::uint64_t seed = 1; seed <= kChaosSeeds; ++seed) {
      const ChaosOutcome run = run_chaos(plan, seed);
      // run_grid5000_campaign GC_CHECKs completion of all 22 sub-sims;
      // reaching here means the campaign finished. The science must be
      // exactly the fault-free science, with no call left failed.
      ASSERT_EQ(run.failed, 0u) << plan << " seed " << seed;
      ASSERT_EQ(run.digest, fault_free.digest) << plan << " seed " << seed;
    }
  }
}

TEST(Chaos, SameSeedReplaysAreBitIdentical) {
  for (const char* plan : {"drop-only", "crash-only", "mixed"}) {
    for (std::uint64_t seed = 1; seed <= kChaosSeeds; ++seed) {
      const ChaosOutcome first = run_chaos(plan, seed);
      const ChaosOutcome replay = run_chaos(plan, seed);
      // Bitwise == on the double: same seed, same virtual history.
      ASSERT_EQ(first.makespan, replay.makespan) << plan << " seed " << seed;
      ASSERT_EQ(first.digest, replay.digest) << plan << " seed " << seed;
      ASSERT_EQ(first.resubmissions, replay.resubmissions)
          << plan << " seed " << seed;
      ASSERT_EQ(first.evictions, replay.evictions)
          << plan << " seed " << seed;
    }
  }
}

// ---------- at-most-once execution under retries ----------

diet::ProfileDesc double_desc() {
  diet::ProfileDesc desc("double", 0, 0, 1);
  desc.arg(0).type = diet::DataType::kScalar;
  desc.arg(0).base = diet::BaseType::kInt;
  desc.arg(1).type = diet::DataType::kScalar;
  desc.arg(1).base = diet::BaseType::kInt;
  return desc;
}

void register_double(diet::ServiceTable& services,
                     double modeled_seconds = 10.0) {
  diet::SolveFn solve = [modeled_seconds](diet::ServiceContext& ctx) {
    ctx.compute(
        modeled_seconds,
        [&ctx]() {
          const auto in = ctx.profile().arg(0).get_scalar<std::int32_t>();
          if (!in.is_ok()) return 1;
          ctx.profile().arg(1).set_scalar<std::int32_t>(
              in.value() * 2, diet::BaseType::kInt,
              diet::Persistence::kVolatile);
          return 0;
        },
        [&ctx](int rc) { ctx.finish(rc); });
  };
  ASSERT_TRUE(services.add(double_desc(), std::move(solve)).is_ok());
}

diet::DeploymentSpec small_spec() {
  diet::DeploymentSpec spec;
  spec.ma_node = 0;
  for (int la = 0; la < 2; ++la) {
    diet::DeploymentSpec::LaSpec l;
    l.name = "LA" + std::to_string(la);
    l.node = static_cast<net::NodeId>(1 + la);
    for (int s = 0; s < 2; ++s) {
      diet::DeploymentSpec::SedSpec sed;
      sed.name = "SeD" + std::to_string(la) + std::to_string(s);
      sed.node = static_cast<net::NodeId>(3 + la * 2 + s);
      sed.machines = 4;
      l.sed_indexes.push_back(static_cast<int>(spec.seds.size()));
      spec.seds.push_back(sed);
    }
    spec.las.push_back(l);
  }
  return spec;
}

/// Fuzzes client retries against injected drops and duplicates, then
/// checks the at-most-once oracle from the outside: across every SED's
/// job log, no wire call id may appear twice (a duplicated delivery must
/// be deduplicated; a retry must run under a fresh id). The GC_CHECK
/// UniqueIds invariant inside Sed::start_next guards the same property
/// from the inside and would abort this test on violation.
TEST(AtMostOnce, RetriesNeverExecuteACallIdTwice) {
  for (std::uint64_t fault_seed = 1; fault_seed <= 6; ++fault_seed) {
    const auto plan =
        fault::parse_plan("drop-only,drop=0.15,dup=0.2,delay=0.1,from_s=0.5")
            .value();
    fault::Injector injector(plan, fault_seed);

    des::Engine engine;
    net::UniformTopology topology(5e-3, 1.25e8);
    net::SimEnv env(engine, topology);
    env.set_fault_hook(&injector);
    naming::Registry registry;
    diet::ServiceTable services;
    register_double(services);
    diet::Deployment deployment(env, registry, services, small_spec());

    diet::Client::Tuning tuning;
    tuning.max_attempts = 8;
    tuning.attempt_timeout_s = 40.0;
    tuning.backoff_base_s = 2.0;
    diet::Client client("client", tuning);
    env.attach(client, 0);
    client.connect(registry.resolve("MA1").value());
    engine.run_until(engine.now() + 1.0);

    int completions = 0;
    int ok = 0;
    for (int i = 0; i < 24; ++i) {
      diet::Profile profile("double", 0, 0, 1);
      profile.arg(0).set_scalar<std::int32_t>(i, diet::BaseType::kInt,
                                              diet::Persistence::kVolatile);
      profile.arg(1).desc.type = diet::DataType::kScalar;
      profile.arg(1).desc.base = diet::BaseType::kInt;
      client.call_async(std::move(profile),
                        [&](const gc::Status& status, diet::Profile&) {
                          ++completions;
                          if (status.is_ok()) ++ok;
                        });
    }
    engine.run();

    EXPECT_EQ(completions, 24) << "fault seed " << fault_seed;
    EXPECT_GT(ok, 0) << "fault seed " << fault_seed;

    std::set<std::uint64_t> executed;
    for (std::size_t s = 0; s < deployment.sed_count(); ++s) {
      for (const auto& job : deployment.sed(s).job_log()) {
        EXPECT_TRUE(executed.insert(job.call_id).second)
            << "call id " << job.call_id << " executed twice (fault seed "
            << fault_seed << ")";
      }
    }
    EXPECT_GE(executed.size(), static_cast<std::size_t>(ok));
  }
}

// ---------- RealEnv under a mixed message-fault load ----------
//
// The tsan-smoke scenario: the injector is consulted from the client
// thread and the dispatcher thread concurrently while retries race
// duplicated and dropped messages. Registered separately in CMake so the
// ThreadSanitizer preset runs exactly this test.

TEST(RealEnvMixedFault, CallsSurviveDropsAndDuplicates) {
  // Registration happens well inside the grace window; only the
  // steady-state call traffic is tampered with.
  const auto plan =
      fault::parse_plan("drop-only,drop=0.1,dup=0.15,delay=0,from_s=1.0")
          .value();
  fault::Injector injector(plan, 3);

  net::UniformTopology topology(1e-4, 1e9);
  net::RealEnv env(topology);
  env.set_fault_hook(&injector);
  naming::Registry registry;
  diet::ServiceTable services;
  register_double(services, 0.0);
  diet::Deployment deployment(env, registry, services, small_spec());

  diet::Client::Tuning tuning;
  tuning.max_attempts = 8;
  tuning.attempt_timeout_s = 1.0;
  tuning.backoff_base_s = 0.05;
  diet::Client client("client", tuning);
  env.attach(client, 0);
  client.connect(registry.resolve("MA1").value());
  env.start();
  env.wait_idle();
  std::this_thread::sleep_for(std::chrono::milliseconds(1100));

  for (int i = 0; i < 6; ++i) {
    diet::Profile profile("double", 0, 0, 1);
    profile.arg(0).set_scalar<std::int32_t>(i, diet::BaseType::kInt,
                                            diet::Persistence::kVolatile);
    profile.arg(1).desc.type = diet::DataType::kScalar;
    profile.arg(1).desc.base = diet::BaseType::kInt;
    const gc::Status status = client.call(profile, /*deadline_s=*/20.0);
    EXPECT_TRUE(status.is_ok()) << "call " << i << ": " << status.to_string();
    if (status.is_ok()) {
      EXPECT_EQ(profile.arg(1).get_scalar<std::int32_t>().value(), i * 2);
    }
  }
  env.stop();
}

// ---------- the client deadline against a dead SED (RealEnv) ----------

TEST(ClientDeadline, CrashedSedFailsBlockingCallWithinDeadline) {
  net::UniformTopology topology(1e-4, 1e9);
  net::RealEnv env(topology);
  naming::Registry registry;
  diet::ServiceTable services;

  // The SED accepts the call and then never replies — the observable
  // behaviour of a SED that crashed mid-execution.
  diet::SolveFn black_hole = [](diet::ServiceContext& ctx) { (void)ctx; };
  ASSERT_TRUE(services.add(double_desc(), std::move(black_hole)).is_ok());

  diet::DeploymentSpec spec;
  spec.ma_node = 0;
  diet::DeploymentSpec::LaSpec la;
  la.name = "LA";
  la.node = 1;
  diet::DeploymentSpec::SedSpec sed;
  sed.name = "SeD";
  sed.node = 2;
  la.sed_indexes.push_back(0);
  spec.seds.push_back(sed);
  spec.las.push_back(la);
  diet::Deployment deployment(env, registry, services, spec);

  diet::Client client("client");
  env.attach(client, 0);
  client.connect(registry.resolve("MA1").value());
  env.start();
  env.wait_idle();

  diet::Profile profile("double", 0, 0, 1);
  profile.arg(0).set_scalar<std::int32_t>(21, diet::BaseType::kInt,
                                          diet::Persistence::kVolatile);
  profile.arg(1).desc.type = diet::DataType::kScalar;
  profile.arg(1).desc.base = diet::BaseType::kInt;

  const auto wall_start = std::chrono::steady_clock::now();
  const gc::Status status = client.call(profile, /*deadline_s=*/0.3);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kUnavailable) << status.to_string();
  // Returned because the deadline fired, not because anything replied;
  // generous wall bound so a loaded CI machine does not flake.
  EXPECT_LT(wall_s, 10.0);
  env.stop();
}

// ---------- heartbeat eviction determinism (via the trace) ----------

struct ScopedTrace {
  ScopedTrace() {
    obs::Tracer::instance().clear();
    obs::Tracer::instance().set_enabled(true);
  }
  ~ScopedTrace() {
    obs::Tracer::instance().set_enabled(false);
    obs::Tracer::instance().clear();
  }
};

/// Runs a crash-heavy campaign with tracing on and returns every
/// heartbeat-eviction instant as (agent track, dead child, virtual time).
std::vector<std::tuple<std::string, std::string, double>> eviction_instants(
    std::uint64_t fault_seed) {
  ScopedTrace trace;
  workflow::CampaignConfig config;
  config.sub_simulations = 22;
  config.seed = 11;
  config.fault_plan = "crash-only";
  config.fault_seed = fault_seed;
  const workflow::CampaignResult result =
      workflow::run_grid5000_campaign(config);
  EXPECT_EQ(result.failed_calls, 0u);

  std::vector<std::tuple<std::string, std::string, double>> out;
  for (const auto& event : obs::Tracer::instance().events()) {
    if (event.name.rfind("hb-dead:", 0) == 0) {
      out.emplace_back(event.track, event.name, event.ts);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(Chaos, HeartbeatEvictionTimestampsAreDeterministic) {
  const auto first = eviction_instants(4);
  const auto replay = eviction_instants(4);
  EXPECT_FALSE(first.empty());
  ASSERT_EQ(first.size(), replay.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(std::get<0>(first[i]), std::get<0>(replay[i]));
    EXPECT_EQ(std::get<1>(first[i]), std::get<1>(replay[i]));
    // Bitwise-equal virtual timestamps: the watchdog fired at the same
    // instant on both runs.
    EXPECT_EQ(std::get<2>(first[i]), std::get<2>(replay[i]));
  }
  // The instants survive into the exported Perfetto JSON (the trace is
  // cleared per run, so re-run one traced campaign and export it).
  ScopedTrace trace;
  workflow::CampaignConfig config;
  config.sub_simulations = 22;
  config.seed = 11;
  config.fault_plan = "crash-only";
  config.fault_seed = 4;
  (void)workflow::run_grid5000_campaign(config);
  const std::string json = obs::Tracer::instance().chrome_trace_json();
  EXPECT_NE(json.find("hb-dead:"), std::string::npos);
}

}  // namespace
}  // namespace gc
