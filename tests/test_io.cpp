// Tests for Fortran records, namelists and tar archives.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "io/fortran.hpp"
#include "io/namelist.hpp"
#include "io/tar.hpp"

namespace gc::io {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("gc_io_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

// ---------- Fortran records ----------

TEST(Fortran, RoundtripRecords) {
  TempDir dir;
  const std::string path = dir.file("records.bin");
  {
    FortranWriter writer(path);
    ASSERT_TRUE(writer.ok());
    const std::vector<float> plane = {1.0F, 2.0F, 3.0F};
    ASSERT_TRUE(writer.record_array<float>(plane).is_ok());
    ASSERT_TRUE(writer.record_scalar<std::int32_t>(128).is_ok());
    ASSERT_TRUE(writer.record(std::span<const std::uint8_t>{}).is_ok());
    ASSERT_TRUE(writer.close().is_ok());
  }
  FortranReader reader(path);
  ASSERT_TRUE(reader.ok());
  auto plane = reader.record_array<float>();
  ASSERT_TRUE(plane.is_ok());
  EXPECT_EQ(plane.value(), (std::vector<float>{1.0F, 2.0F, 3.0F}));
  auto scalar = reader.record_scalar<std::int32_t>();
  ASSERT_TRUE(scalar.is_ok());
  EXPECT_EQ(scalar.value(), 128);
  auto empty = reader.record();
  ASSERT_TRUE(empty.is_ok());
  EXPECT_TRUE(empty.value().empty());
  EXPECT_TRUE(reader.eof());
}

TEST(Fortran, MarkerFraming) {
  // Verify the actual on-disk framing: 4-byte length before and after.
  TempDir dir;
  const std::string path = dir.file("framing.bin");
  {
    FortranWriter writer(path);
    ASSERT_TRUE(writer.record_scalar<double>(1.5).is_ok());
  }
  std::ifstream in(path, std::ios::binary);
  std::uint32_t head = 0;
  double value = 0;
  std::uint32_t tail = 0;
  in.read(reinterpret_cast<char*>(&head), 4);
  in.read(reinterpret_cast<char*>(&value), 8);
  in.read(reinterpret_cast<char*>(&tail), 4);
  EXPECT_EQ(head, 8u);
  EXPECT_EQ(tail, 8u);
  EXPECT_DOUBLE_EQ(value, 1.5);
}

TEST(Fortran, CorruptTrailerDetected) {
  TempDir dir;
  const std::string path = dir.file("corrupt.bin");
  {
    FortranWriter writer(path);
    ASSERT_TRUE(writer.record_scalar<std::int32_t>(7).is_ok());
  }
  // Flip the trailing marker.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8);
    const std::uint32_t bad = 999;
    f.write(reinterpret_cast<const char*>(&bad), 4);
  }
  FortranReader reader(path);
  EXPECT_FALSE(reader.record().is_ok());
}

TEST(Fortran, TruncatedPayloadDetected) {
  TempDir dir;
  const std::string path = dir.file("trunc.bin");
  {
    std::ofstream out(path, std::ios::binary);
    const std::uint32_t marker = 100;  // claims 100 bytes, writes none
    out.write(reinterpret_cast<const char*>(&marker), 4);
  }
  FortranReader reader(path);
  EXPECT_FALSE(reader.record().is_ok());
}

TEST(Fortran, WrongElementSizeRejected) {
  TempDir dir;
  const std::string path = dir.file("sizes.bin");
  {
    FortranWriter writer(path);
    ASSERT_TRUE(writer.record_array<float>(std::vector<float>{1, 2, 3}).is_ok());
  }
  FortranReader reader(path);
  EXPECT_FALSE(reader.record_array<double>().is_ok());  // 12 % 8 != 0
}

TEST(Fortran, MissingFile) {
  FortranReader reader("/nonexistent/file.bin");
  EXPECT_FALSE(reader.ok());
  EXPECT_FALSE(reader.record().is_ok());
}

// ---------- namelist ----------

TEST(Namelist, ParseRamsesStyle) {
  auto nml = Namelist::parse(
      "&RUN_PARAMS\n"
      "  cosmo=.true.\n"
      "  levelmin=7        ! base AMR level\n"
      "  boxlen=100.0\n"
      "  aout=0.3,0.5,1.0\n"
      "  title='zoom run'\n"
      "/\n"
      "&ZOOM_PARAMS\n"
      "  nlevels=2\n"
      "  growth=1.5d2\n"
      "/\n");
  ASSERT_TRUE(nml.is_ok());
  const NamelistGroup* run = nml.value().group("run_params");
  ASSERT_NE(run, nullptr);
  EXPECT_TRUE(run->get_bool("cosmo").value());
  EXPECT_EQ(run->get_int("levelmin").value(), 7);
  EXPECT_DOUBLE_EQ(run->get_double("boxlen").value(), 100.0);
  EXPECT_EQ(run->get_string("title").value(), "zoom run");
  const auto aout = run->get_doubles("aout");
  ASSERT_TRUE(aout.is_ok());
  EXPECT_EQ(aout.value(), (std::vector<double>{0.3, 0.5, 1.0}));
  // Fortran d-exponent.
  EXPECT_DOUBLE_EQ(
      nml.value().group("zoom_params")->get_double("growth").value(), 150.0);
}

TEST(Namelist, CaseInsensitive) {
  auto nml = Namelist::parse("&Run_Params\nLevelMin=3\n/\n");
  ASSERT_TRUE(nml.is_ok());
  EXPECT_EQ(nml.value().group("RUN_PARAMS")->get_int("levelmin").value(), 3);
}

TEST(Namelist, Errors) {
  EXPECT_FALSE(Namelist::parse("&g\nx=1\n").is_ok());       // unterminated
  EXPECT_FALSE(Namelist::parse("x=1\n/\n").is_ok());        // outside group
  EXPECT_FALSE(Namelist::parse("&g\njust text\n/\n").is_ok());
  EXPECT_FALSE(Namelist::load("/no/such/file.nml").is_ok());
}

TEST(Namelist, TypedErrors) {
  auto nml = Namelist::parse("&g\nx=abc\n/\n");
  ASSERT_TRUE(nml.is_ok());
  const NamelistGroup* g = nml.value().group("g");
  EXPECT_FALSE(g->get_int("x").is_ok());
  EXPECT_FALSE(g->get_double("x").is_ok());
  EXPECT_FALSE(g->get_bool("x").is_ok());
  EXPECT_FALSE(g->get_int("missing").is_ok());
}

TEST(Namelist, RoundtripThroughText) {
  Namelist nml;
  auto& g = nml.group_or_create("run_params");
  g.set("npart", "128");
  g.set("boxlen", "100");
  auto back = Namelist::parse(nml.to_string());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().group("run_params")->get_int("npart").value(), 128);
}

TEST(Namelist, SaveAndLoad) {
  TempDir dir;
  Namelist nml;
  nml.group_or_create("g").set("v", "42");
  ASSERT_TRUE(nml.save(dir.file("t.nml")).is_ok());
  auto back = Namelist::load(dir.file("t.nml"));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().group("g")->get_int("v").value(), 42);
}

// ---------- tar ----------

TEST(Tar, RoundtripMultipleFiles) {
  TarWriter writer;
  ASSERT_TRUE(writer.add_text("README.txt", "hello\n").is_ok());
  std::vector<std::uint8_t> binary(1000);
  for (std::size_t i = 0; i < binary.size(); ++i) {
    binary[i] = static_cast<std::uint8_t>(i);
  }
  ASSERT_TRUE(writer.add("data/snapshot.bin", binary).is_ok());
  ASSERT_TRUE(writer.add_text("empty.txt", "").is_ok());
  EXPECT_EQ(writer.entry_count(), 3u);

  const auto archive = writer.finish();
  EXPECT_EQ(archive.size() % 512, 0u);

  auto entries = TarReader::parse(archive);
  ASSERT_TRUE(entries.is_ok());
  ASSERT_EQ(entries.value().size(), 3u);
  EXPECT_EQ(entries.value()[0].name, "README.txt");
  EXPECT_EQ(std::string(entries.value()[0].data.begin(),
                        entries.value()[0].data.end()),
            "hello\n");
  EXPECT_EQ(entries.value()[1].name, "data/snapshot.bin");
  EXPECT_EQ(entries.value()[1].data, binary);
  EXPECT_TRUE(entries.value()[2].data.empty());
}

TEST(Tar, WriteAndLoadFile) {
  TempDir dir;
  TarWriter writer;
  ASSERT_TRUE(writer.add_text("a.txt", "contents").is_ok());
  ASSERT_TRUE(writer.write(dir.file("out.tar")).is_ok());
  auto entries = TarReader::load(dir.file("out.tar"));
  ASSERT_TRUE(entries.is_ok());
  ASSERT_EQ(entries.value().size(), 1u);
  EXPECT_EQ(entries.value()[0].name, "a.txt");
}

TEST(Tar, SystemTarCanList) {
  // The archives claim ustar; verify with the real tar when present.
  if (std::system("command -v tar >/dev/null 2>&1") != 0) {
    GTEST_SKIP() << "no tar binary";
  }
  TempDir dir;
  TarWriter writer;
  ASSERT_TRUE(writer.add_text("halos_000.txt", "1 2 3\n").is_ok());
  ASSERT_TRUE(writer.add_text("galaxies.txt", "4 5 6\n").is_ok());
  ASSERT_TRUE(writer.write(dir.file("check.tar")).is_ok());
  const std::string cmd =
      "tar -tf " + dir.file("check.tar") + " > " + dir.file("list.txt") +
      " 2>/dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  std::ifstream list(dir.file("list.txt"));
  std::string line1, line2;
  std::getline(list, line1);
  std::getline(list, line2);
  EXPECT_EQ(line1, "halos_000.txt");
  EXPECT_EQ(line2, "galaxies.txt");
}

TEST(Tar, AddFileFromDisk) {
  TempDir dir;
  {
    std::ofstream out(dir.file("src.bin"), std::ios::binary);
    out << "payload";
  }
  TarWriter writer;
  ASSERT_TRUE(writer.add_file("renamed.bin", dir.file("src.bin")).is_ok());
  auto entries = TarReader::parse(writer.finish());
  ASSERT_TRUE(entries.is_ok());
  EXPECT_EQ(entries.value()[0].name, "renamed.bin");
  EXPECT_EQ(entries.value()[0].data.size(), 7u);
}

TEST(Tar, RejectsBadNames) {
  TarWriter writer;
  EXPECT_FALSE(writer.add_text("", "x").is_ok());
  EXPECT_FALSE(writer.add_text(std::string(150, 'a'), "x").is_ok());
}

TEST(Tar, AddAfterFinishFails) {
  TarWriter writer;
  ASSERT_TRUE(writer.add_text("a", "1").is_ok());
  (void)writer.finish();
  EXPECT_FALSE(writer.add_text("b", "2").is_ok());
}

TEST(Tar, ParseRejectsGarbage) {
  std::vector<std::uint8_t> junk(1024, 0x5a);
  EXPECT_FALSE(TarReader::parse(junk).is_ok());
}

TEST(Tar, ParseEmptyArchive) {
  TarWriter writer;
  auto entries = TarReader::parse(writer.finish());
  ASSERT_TRUE(entries.is_ok());
  EXPECT_TRUE(entries.value().empty());
}

}  // namespace
}  // namespace gc::io
