// Tests for the initial-conditions generator (GRAFIC stand-in).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>

#include "common/stats.hpp"
#include "grafic/files.hpp"
#include "grafic/grf.hpp"
#include "grafic/ic.hpp"

namespace gc::grafic {
namespace {

// ---------- Gaussian random fields ----------

TEST(Grf, MeanIsZero) {
  Rng rng(1);
  cosmo::PowerSpectrum power;
  const auto field = gaussian_random_field(
      32, 100.0, [&power](double k) { return power(k); }, rng);
  EXPECT_NEAR(field.sum() / static_cast<double>(field.size()), 0.0, 1e-10);
}

TEST(Grf, DeterministicFromSeed) {
  cosmo::PowerSpectrum power;
  const auto p = [&power](double k) { return power(k); };
  Rng rng_a(42);
  Rng rng_b(42);
  const auto a = gaussian_random_field(16, 100.0, p, rng_a);
  const auto b = gaussian_random_field(16, 100.0, p, rng_b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.raw()[i], b.raw()[i]);
  }
}

TEST(Grf, MeasuredSpectrumMatchesTarget) {
  // Closing the loop: generate with P(k), measure P(k) back, compare in
  // the well-sampled middle of the k range.
  Rng rng(7);
  cosmo::PowerSpectrum power;
  const double box = 100.0;
  const auto field = gaussian_random_field(
      64, box, [&power](double k) { return power(k); }, rng);
  const auto measured = measure_power(field, box, 12);
  ASSERT_GT(measured.size(), 6u);
  int checked = 0;
  for (const auto& [k, p] : measured) {
    if (k < 0.2 || k > 1.2) continue;  // skip cosmic variance + Nyquist
    EXPECT_NEAR(p / power(k), 1.0, 0.35) << "at k = " << k;
    ++checked;
  }
  EXPECT_GE(checked, 3);
}

TEST(Grf, FlatSpectrumVarianceMatches) {
  // White spectrum P = const: cell variance = P * N^3 / V (sum over all
  // modes), easy to verify analytically.
  Rng rng(9);
  const int n = 32;
  const double box = 50.0;
  const double p0 = 2.5;
  const auto field =
      gaussian_random_field(n, box, [p0](double) { return p0; }, rng);
  RunningStats stats;
  for (const double v : field.raw()) stats.add(v);
  const double n3 = static_cast<double>(n) * n * n;
  const double expected_var = p0 * n3 / (box * box * box);
  // One k=0 mode of the n^3 is zeroed: irrelevant at this size.
  EXPECT_NEAR(stats.variance() / expected_var, 1.0, 0.05);
}

TEST(Grf, KminCutRemovesLargeScales) {
  Rng rng(11);
  const double box = 100.0;
  GrfOptions options;
  options.k_min = 0.5;  // h/Mpc
  const auto field = gaussian_random_field(
      32, box, [](double) { return 100.0; }, rng, options);
  const auto measured = measure_power(field, box, 10);
  for (const auto& [k, p] : measured) {
    if (k < 0.35) {
      EXPECT_LT(p, 5.0) << "power leaked below k_min at k = " << k;
    }
  }
}

// ---------- trilinear ----------

TEST(Trilinear, ExactAtGridPoints) {
  const int n = 4;
  std::vector<float> grid(static_cast<size_t>(n * n * n));
  for (std::size_t i = 0; i < grid.size(); ++i) {
    grid[i] = static_cast<float>(i);
  }
  EXPECT_NEAR(trilinear(grid, n, 1.0, 2.0, 3.0),
              grid[(1 * 4 + 2) * 4 + 3], 1e-12);
}

TEST(Trilinear, LinearFieldReproduced) {
  // f = z is linear -> interpolation is exact away from the wrap.
  const int n = 8;
  std::vector<float> grid(static_cast<size_t>(n * n * n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      for (int k = 0; k < n; ++k) {
        grid[static_cast<size_t>((i * n + j) * n + k)] =
            static_cast<float>(k);
      }
    }
  }
  EXPECT_NEAR(trilinear(grid, n, 2.0, 3.0, 4.5), 4.5, 1e-6);
  EXPECT_NEAR(trilinear(grid, n, 2.25, 3.75, 2.5), 2.5, 1e-6);
}

TEST(Trilinear, PeriodicWrap) {
  const int n = 4;
  std::vector<float> grid(static_cast<size_t>(n * n * n), 0.0F);
  grid[0] = 8.0F;  // (0,0,0)
  // Halfway between (3,0,0) and (wrapped) (0,0,0).
  EXPECT_NEAR(trilinear(grid, n, 3.5, 0.0, 0.0), 4.0, 1e-6);
  EXPECT_NEAR(trilinear(grid, n, -0.5, 0.0, 0.0), 4.0, 1e-6);
}

// ---------- IC levels ----------

TEST(Generator, SingleLevelShapes) {
  cosmo::Params params;
  Generator generator(params, 3);
  const auto ic = generator.single_level(16, 100.0, 0.05);
  ASSERT_EQ(ic.levels.size(), 1u);
  const IcLevel& level = ic.levels[0];
  EXPECT_EQ(level.n, 16);
  EXPECT_EQ(level.level, 0);
  EXPECT_DOUBLE_EQ(level.box_mpc, 100.0);
  EXPECT_DOUBLE_EQ(level.a_start, 0.05);
  EXPECT_EQ(level.cells(), 4096u);
  for (int axis = 0; axis < 3; ++axis) {
    EXPECT_EQ(level.disp[static_cast<size_t>(axis)].size(), 4096u);
    EXPECT_EQ(level.vel[static_cast<size_t>(axis)].size(), 4096u);
  }
  EXPECT_EQ(level.delta.size(), 4096u);
}

TEST(Generator, DisplacementsHaveZeroMean) {
  Generator generator(cosmo::Params{}, 5);
  const auto ic = generator.single_level(16, 100.0, 0.05);
  for (int axis = 0; axis < 3; ++axis) {
    RunningStats stats;
    for (const float d : ic.levels[0].disp[static_cast<size_t>(axis)]) {
      stats.add(d);
    }
    EXPECT_NEAR(stats.mean(), 0.0, 1e-8);
    EXPECT_GT(stats.stddev(), 0.0);
  }
}

TEST(Generator, VelocityProportionalToDisplacement) {
  // Zel'dovich: v = a H f psi, one constant for the whole level.
  Generator generator(cosmo::Params{}, 6);
  const double a = 0.1;
  const auto ic = generator.single_level(8, 100.0, a);
  const IcLevel& level = ic.levels[0];
  cosmo::Cosmology cosmology{cosmo::Params{}};
  const double expected =
      a * 100.0 * cosmology.efunc(a) * cosmology.growth_rate(a);
  for (std::size_t i = 0; i < level.cells(); ++i) {
    if (std::abs(level.disp[0][i]) < 1e-4) continue;
    EXPECT_NEAR(level.vel[0][i] / level.disp[0][i], expected,
                std::abs(expected) * 1e-4);
  }
}

TEST(Generator, DisplacementAmplitudeGrows) {
  // Later start -> larger growth factor -> larger displacements.
  Generator g_early(cosmo::Params{}, 7);
  Generator g_late(cosmo::Params{}, 7);  // same seed
  const auto early = g_early.single_level(16, 100.0, 0.02);
  const auto late = g_late.single_level(16, 100.0, 0.2);
  RunningStats s_early;
  RunningStats s_late;
  for (const float d : early.levels[0].disp[0]) s_early.add(d);
  for (const float d : late.levels[0].disp[0]) s_late.add(d);
  cosmo::Cosmology cosmology{cosmo::Params{}};
  const double expected_ratio =
      cosmology.growth(0.2) / cosmology.growth(0.02);
  EXPECT_NEAR(s_late.stddev() / s_early.stddev(), expected_ratio,
              expected_ratio * 0.02);
}

TEST(Generator, MultiLevelRussianDolls) {
  Generator generator(cosmo::Params{}, 8);
  const Vec3 centre{60.0, 50.0, 40.0};
  const auto ic = generator.multi_level(16, 100.0, 0.05, centre, 3);
  ASSERT_EQ(ic.levels.size(), 4u);
  double size = 100.0;
  for (std::size_t l = 1; l < ic.levels.size(); ++l) {
    size *= 0.5;
    const IcLevel& level = ic.levels[l];
    EXPECT_EQ(level.level, static_cast<int>(l));
    EXPECT_DOUBLE_EQ(level.box_mpc, size);
    // Centred on the requested halo position.
    EXPECT_NEAR(level.origin.x + size / 2.0, centre.x, 1e-9);
    EXPECT_NEAR(level.origin.y + size / 2.0, centre.y, 1e-9);
    EXPECT_NEAR(level.origin.z + size / 2.0, centre.z, 1e-9);
    // Nested inside the parent.
    const IcLevel& parent = ic.levels[l - 1];
    EXPECT_GE(level.origin.x, parent.origin.x - 1e-9);
    EXPECT_LE(level.origin.x + level.box_mpc,
              parent.origin.x + parent.box_mpc + 1e-9);
    // Finer cells.
    EXPECT_LT(level.cell_mpc(), parent.cell_mpc());
  }
}

TEST(Generator, ChildInheritsParentLargeScales) {
  // The child field resamples the parent's delta, so their correlation
  // must be strongly positive (new power only above the parent Nyquist).
  Generator generator(cosmo::Params{}, 9);
  const auto ic =
      generator.multi_level(32, 100.0, 0.05, Vec3{50.0, 50.0, 50.0}, 1);
  const IcLevel& parent = ic.levels[0];
  const IcLevel& child = ic.levels[1];
  const double parent_cell = parent.box_mpc / parent.n;
  const double child_cell = child.box_mpc / child.n;
  double dot = 0.0;
  double pp = 0.0;
  double cc = 0.0;
  const auto n = static_cast<std::size_t>(child.n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        const double px = (child.origin.x + (i + 0.5) * child_cell) /
                              parent_cell - 0.5;
        const double py = (child.origin.y + (j + 0.5) * child_cell) /
                              parent_cell - 0.5;
        const double pz = (child.origin.z + (k + 0.5) * child_cell) /
                              parent_cell - 0.5;
        const double parent_value =
            trilinear(parent.delta, parent.n, px, py, pz);
        const double child_value = child.delta[(i * n + j) * n + k];
        dot += parent_value * child_value;
        pp += parent_value * parent_value;
        cc += child_value * child_value;
      }
    }
  }
  const double correlation = dot / std::sqrt(pp * cc);
  EXPECT_GT(correlation, 0.5);
}

// ---------- 2LPT ----------

TEST(SecondOrder, FieldHasZeroMeanAndFiniteRms) {
  Generator generator(cosmo::Params{}, 31);
  const auto ic = generator.single_level(16, 100.0, 0.1);
  const auto psi2 =
      second_order_displacement(ic.levels[0].delta, 16, 100.0);
  for (int axis = 0; axis < 3; ++axis) {
    RunningStats stats;
    for (const float v : psi2[static_cast<size_t>(axis)]) stats.add(v);
    EXPECT_NEAR(stats.mean(), 0.0, 1e-6);
    EXPECT_GT(stats.stddev(), 0.0);
  }
}

TEST(SecondOrder, CorrectionIsSubdominantAtEarlyTimes) {
  // psi2 scales as D^2: at an early start the 2LPT term must be a small
  // fraction of the Zel'dovich displacement.
  Generator first(cosmo::Params{}, 32);
  Generator second(cosmo::Params{}, 32);
  second.set_second_order(true);
  const auto lpt1 = first.single_level(16, 100.0, 0.05);
  const auto lpt2 = second.single_level(16, 100.0, 0.05);

  RunningStats diff;
  RunningStats base;
  for (std::size_t i = 0; i < lpt1.levels[0].cells(); ++i) {
    diff.add(lpt2.levels[0].disp[0][i] - lpt1.levels[0].disp[0][i]);
    base.add(lpt1.levels[0].disp[0][i]);
  }
  EXPECT_GT(diff.stddev(), 0.0);              // the correction exists...
  EXPECT_LT(diff.stddev(), 0.2 * base.stddev());  // ...but is subdominant
}

TEST(SecondOrder, CorrectionGrowsFasterThanLinear) {
  // ratio(2LPT term / 1LPT term) ~ D(a): doubling the growth factor
  // roughly doubles the relative size of the correction.
  auto relative_correction = [](double a_start) {
    Generator first(cosmo::Params{}, 33);
    Generator second(cosmo::Params{}, 33);
    second.set_second_order(true);
    const auto lpt1 = first.single_level(16, 100.0, a_start);
    const auto lpt2 = second.single_level(16, 100.0, a_start);
    RunningStats diff;
    RunningStats base;
    for (std::size_t i = 0; i < lpt1.levels[0].cells(); ++i) {
      diff.add(lpt2.levels[0].disp[0][i] - lpt1.levels[0].disp[0][i]);
      base.add(lpt1.levels[0].disp[0][i]);
    }
    return diff.stddev() / base.stddev();
  };
  const double early = relative_correction(0.05);
  const double late = relative_correction(0.2);
  cosmo::Cosmology cosmology{cosmo::Params{}};
  const double growth_ratio =
      cosmology.growth(0.2) / cosmology.growth(0.05);
  EXPECT_NEAR(late / early, growth_ratio, growth_ratio * 0.15);
}

// ---------- files ----------

TEST(Files, WriteReadRoundtrip) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("gc_grafic_" + std::to_string(::getpid())))
          .string();
  Generator generator(cosmo::Params{}, 10);
  const auto ic = generator.single_level(8, 100.0, 0.05);
  ASSERT_TRUE(write_level(dir, ic.levels[0], ic.params).is_ok());

  auto back = read_level(dir);
  ASSERT_TRUE(back.is_ok());
  const IcLevel& level = back.value();
  EXPECT_EQ(level.n, 8);
  EXPECT_NEAR(level.box_mpc, 100.0, 1e-4);
  EXPECT_NEAR(level.a_start, 0.05, 1e-6);
  for (std::size_t i = 0; i < level.cells(); ++i) {
    EXPECT_FLOAT_EQ(level.disp[0][i], ic.levels[0].disp[0][i]);
    EXPECT_FLOAT_EQ(level.vel[2][i], ic.levels[0].vel[2][i]);
    EXPECT_FLOAT_EQ(level.delta[i], ic.levels[0].delta[i]);
  }

  auto header = read_header(dir + "/ic_deltac");
  ASSERT_TRUE(header.is_ok());
  EXPECT_EQ(header.value().np1, 8);
  EXPECT_NEAR(header.value().omega_m, 0.27, 1e-6);
  EXPECT_NEAR(header.value().h0, 71.0, 1e-4);
  std::filesystem::remove_all(dir);
}

TEST(Files, ReadMissingDirFails) {
  EXPECT_FALSE(read_level("/nonexistent/grafic/dir").is_ok());
}

}  // namespace
}  // namespace gc::grafic
