// Differential property test: the optimized DES engine (des/engine.hpp)
// must be observably indistinguishable from the frozen pre-optimization
// reference (des/reference.hpp).
//
// A randomized program of schedule_at / cancel / run_until ops — heavy on
// identical timestamps to stress the tie-break — drives both engines with
// the same RNG stream. Handlers record (marker, clock) on execution and a
// third of them schedule children from inside the run, so the in-handler
// insertion order is exercised too. Pop order, the clock each handler
// observed, events_executed, and the final now() must match exactly,
// under tie seed 0 and three fuzzed seeds.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "des/engine.hpp"
#include "des/reference.hpp"

namespace {

using gc::SimTime;

struct Trace {
  std::vector<std::uint64_t> markers;  ///< pop order
  std::vector<SimTime> clocks;         ///< now() seen by each handler
  std::uint64_t executed = 0;
  SimTime final_now = 0.0;
};

// Handler body shared by both engines; children derive their schedule
// parameters from the parent marker alone, so as long as the pop order
// matches, both engines issue identical child schedules.
template <typename EngineT>
void fire(EngineT* eng, Trace* tr, std::uint64_t marker, int depth) {
  tr->markers.push_back(marker);
  tr->clocks.push_back(eng->now());
  if (depth < 2 && marker % 3 == 0) {
    const double delay = 0.25 * static_cast<double>(marker % 7);
    eng->schedule_at(eng->now() + delay,
                     [eng, tr, m = marker * 31 + 7, depth] {
                       fire(eng, tr, m, depth + 1);
                     });
  }
}

template <typename EngineT>
Trace replay(EngineT& eng, std::uint64_t tie_seed, std::uint64_t program_seed,
             int n_ops) {
  Trace tr;
  eng.set_tie_break_seed(tie_seed);
  std::mt19937_64 rng(program_seed);
  // Parallel id vectors: index k is the k-th schedule op in both engines,
  // so "cancel ids[k]" names the same logical event on each side even
  // though the id values differ.
  std::vector<decltype(eng.schedule_at(0.0, [] {}))> ids;
  for (int i = 0; i < n_ops; ++i) {
    const std::uint64_t pick = rng() % 100;
    if (pick < 55) {
      // Discrete half-second delays: many events share a timestamp, so
      // ordering rests entirely on the (tie, seq) keys under test.
      const double delay = 0.5 * static_cast<double>(rng() % 8);
      const std::uint64_t marker = static_cast<std::uint64_t>(i);
      ids.push_back(eng.schedule_at(
          eng.now() + delay,
          [&eng, &tr, marker] { fire(&eng, &tr, marker, 0); }));
    } else if (pick < 75 && !ids.empty()) {
      // Cancel a random prior event; may already have fired or been
      // cancelled — both engines must agree on the outcome either way.
      eng.cancel(ids[rng() % ids.size()]);
    } else {
      eng.run_until(eng.now() + 0.5 * static_cast<double>(rng() % 6));
    }
  }
  eng.run();
  tr.executed = eng.events_executed();
  tr.final_now = eng.now();
  return tr;
}

TEST(DesProperty, OptimizedEngineMatchesReference) {
  std::mt19937_64 seed_rng(0xC0FFEE);
  std::vector<std::uint64_t> tie_seeds = {0};
  for (int i = 0; i < 3; ++i) tie_seeds.push_back(seed_rng());

  for (const std::uint64_t tie : tie_seeds) {
    gc::des::Engine opt;
    gc::des::ReferenceEngine ref;
    const Trace a = replay(opt, tie, /*program_seed=*/0x5EED, 10000);
    const Trace b = replay(ref, tie, /*program_seed=*/0x5EED, 10000);
    ASSERT_EQ(a.markers, b.markers) << "pop order diverged, tie seed " << tie;
    ASSERT_EQ(a.clocks, b.clocks) << "handler clocks diverged, tie seed "
                                  << tie;
    EXPECT_EQ(a.executed, b.executed) << "tie seed " << tie;
    EXPECT_EQ(a.final_now, b.final_now) << "tie seed " << tie;
    EXPECT_GT(a.executed, 4000u) << "program degenerated, tie seed " << tie;
  }
}

}  // namespace
