// Tests for the MiniMPI runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/rng.hpp"
#include "minimpi/comm.hpp"

namespace gc::minimpi {
namespace {

TEST(MiniMpi, SingleRankRuns) {
  int visits = 0;
  run(1, [&](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    ++visits;
  });
  EXPECT_EQ(visits, 1);
}

TEST(MiniMpi, PointToPoint) {
  std::atomic<int> received{0};
  run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 7, 1234);
    } else {
      received = comm.recv_value<int>(0, 7);
    }
  });
  EXPECT_EQ(received.load(), 1234);
}

TEST(MiniMpi, TagsKeepMessagesApart) {
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, /*tag=*/2, 22);
      comm.send_value<int>(1, /*tag=*/1, 11);
    } else {
      // Receive in the opposite order of sending: matching is by tag.
      a = comm.recv_value<int>(0, 1);
      b = comm.recv_value<int>(0, 2);
    }
  });
  EXPECT_EQ(a.load(), 11);
  EXPECT_EQ(b.load(), 22);
}

TEST(MiniMpi, AnySource) {
  std::atomic<int> sum{0};
  run(4, [&](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 3; ++i) {
        sum += comm.recv_value<int>(Comm::kAnySource, 5);
      }
    } else {
      comm.send_value<int>(0, 5, comm.rank());
    }
  });
  EXPECT_EQ(sum.load(), 1 + 2 + 3);
}

TEST(MiniMpi, VectorPayloads) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> data(1000);
      std::iota(data.begin(), data.end(), 0.0);
      comm.send_vec<double>(1, 3, data);
    } else {
      const auto data = comm.recv_vec<double>(0, 3);
      ASSERT_EQ(data.size(), 1000u);
      EXPECT_DOUBLE_EQ(data[999], 999.0);
    }
  });
}

TEST(MiniMpi, Barrier) {
  std::atomic<int> phase1{0};
  std::atomic<bool> violated{false};
  run(4, [&](Comm& comm) {
    ++phase1;
    comm.barrier();
    if (phase1.load() != 4) violated = true;
    comm.barrier();
  });
  EXPECT_FALSE(violated.load());
}

TEST(MiniMpi, RepeatedBarriers) {
  run(3, [](Comm& comm) {
    for (int i = 0; i < 50; ++i) comm.barrier();
  });
  SUCCEED();
}

TEST(MiniMpi, Bcast) {
  run(4, [](Comm& comm) {
    std::vector<int> data;
    if (comm.rank() == 2) data = {10, 20, 30};
    comm.bcast(data, 2);
    ASSERT_EQ(data.size(), 3u);
    EXPECT_EQ(data[1], 20);
  });
}

TEST(MiniMpi, ReduceAndAllreduce) {
  run(4, [](Comm& comm) {
    const int sum = comm.allreduce_sum(comm.rank() + 1);
    EXPECT_EQ(sum, 10);
    const int max = comm.allreduce_max(comm.rank());
    EXPECT_EQ(max, 3);
    const int min = comm.allreduce_min(comm.rank() + 5);
    EXPECT_EQ(min, 5);
    const double dsum = comm.allreduce_sum(0.5);
    EXPECT_DOUBLE_EQ(dsum, 2.0);
  });
}

TEST(MiniMpi, GatherConcatenatesInRankOrder) {
  run(3, [](Comm& comm) {
    std::vector<int> mine(static_cast<size_t>(comm.rank()) + 1, comm.rank());
    const auto all = comm.gather(mine, 0);
    if (comm.rank() == 0) {
      EXPECT_EQ(all, (std::vector<int>{0, 1, 1, 2, 2, 2}));
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(MiniMpi, Allgather) {
  run(3, [](Comm& comm) {
    const auto all = comm.allgather(std::vector<int>{comm.rank()});
    EXPECT_EQ(all, (std::vector<int>{0, 1, 2}));
  });
}

TEST(MiniMpi, AllreduceVecSum) {
  run(4, [](Comm& comm) {
    std::vector<double> mesh(64, static_cast<double>(comm.rank()));
    comm.allreduce_vec_sum(mesh);
    for (const double v : mesh) EXPECT_DOUBLE_EQ(v, 6.0);  // 0+1+2+3
  });
}

TEST(MiniMpi, Alltoall) {
  run(3, [](Comm& comm) {
    std::vector<std::vector<int>> outgoing(3);
    for (int dest = 0; dest < 3; ++dest) {
      outgoing[static_cast<size_t>(dest)] = {comm.rank() * 10 + dest};
    }
    const auto incoming = comm.alltoall(outgoing);
    ASSERT_EQ(incoming.size(), 3u);
    for (int src = 0; src < 3; ++src) {
      ASSERT_EQ(incoming[static_cast<size_t>(src)].size(), 1u);
      EXPECT_EQ(incoming[static_cast<size_t>(src)][0],
                src * 10 + comm.rank());
    }
  });
}

TEST(MiniMpi, AlltoallEmptyLanes) {
  run(4, [](Comm& comm) {
    std::vector<std::vector<int>> outgoing(4);
    // Only rank 0 sends, and only to rank 3.
    if (comm.rank() == 0) outgoing[3] = {42};
    const auto incoming = comm.alltoall(outgoing);
    if (comm.rank() == 3) {
      EXPECT_EQ(incoming[0], (std::vector<int>{42}));
    }
    for (int src = 1; src < 4; ++src) {
      EXPECT_TRUE(incoming[static_cast<size_t>(src)].empty());
    }
  });
}

TEST(MiniMpi, RandomizedTrafficStress) {
  // Deterministic pseudo-random pairwise sends; every message must arrive.
  std::atomic<long> total_received{0};
  const int nranks = 4;
  const int rounds = 50;
  run(nranks, [&](Comm& comm) {
    Rng rng(static_cast<std::uint64_t>(comm.rank()) + 1);
    // Everyone sends `rounds` messages to (rank+1)%n and receives as many.
    const int dest = (comm.rank() + 1) % nranks;
    const int src = (comm.rank() + nranks - 1) % nranks;
    for (int i = 0; i < rounds; ++i) {
      comm.send_value<std::uint64_t>(dest, 9, rng.next_u64());
    }
    for (int i = 0; i < rounds; ++i) {
      (void)comm.recv_value<std::uint64_t>(src, 9);
      ++total_received;
    }
  });
  EXPECT_EQ(total_received.load(), nranks * rounds);
}

}  // namespace
}  // namespace gc::minimpi
