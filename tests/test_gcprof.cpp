// gcprof tests: the JSON/JSONL reader, the journal-record model, the
// report builder's invariants, and an end-to-end pass over a canned
// 22-sub-simulation campaign — every request must resolve a complete
// client -> MA -> LA -> SED path whose five phases telescope to the
// end-to-end latency, and the exports (and the report built from them)
// must be byte-identical across repeat runs and --tie-seed scrambles.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "prof.hpp"
#include "workflow/campaign.hpp"

namespace gc {
namespace {

// ---------------------------------------------------------------------------
// JSON reader.

TEST(GcprofJson, ParsesValuesAndRejectsGarbage) {
  const auto v = prof::parse_json(
      "{\"a\": [1, 2.5, -3e2], \"s\": \"q\\\"u\\\\o\\u0041\", "
      "\"b\": true, \"n\": null}");
  ASSERT_TRUE(v.has_value());
  ASSERT_EQ(v->kind, prof::JsonValue::Kind::kObject);
  const prof::JsonValue* arr = v->find("a");
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->arr.size(), 3u);
  EXPECT_DOUBLE_EQ(arr->arr[1].number, 2.5);
  EXPECT_DOUBLE_EQ(arr->arr[2].number, -300.0);
  const prof::JsonValue* s = v->find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->str, "q\"u\\oA");
  EXPECT_EQ(v->find("missing"), nullptr);

  EXPECT_FALSE(prof::parse_json("{\"a\": }").has_value());
  EXPECT_FALSE(prof::parse_json("{} trailing").has_value());
  EXPECT_FALSE(prof::parse_json("\"unterminated").has_value());
  EXPECT_FALSE(prof::parse_json("").has_value());
}

TEST(GcprofJson, JsonlSkipsBlankLinesAndFailsOnBadLine) {
  const auto good = prof::parse_jsonl("{\"a\": 1}\n\n  \n{\"b\": 2}\n");
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(good->size(), 2u);

  EXPECT_FALSE(prof::parse_jsonl("{\"a\": 1}\nnot json\n").has_value());
}

// ---------------------------------------------------------------------------
// Journal-record model.

const char* kJournalLine =
    "{\"trace_id\": 7, \"service\": \"zoom2\", \"client\": \"c\", "
    "\"path\": {\"ma\": \"MA1\", \"la\": \"LA-x\", \"sed\": \"SeD-x-1\"}, "
    "\"attempts\": 2, \"status\": \"ok\", \"phases\": {\"submitted\": 1, "
    "\"found\": 1.5, \"arrived\": 2, \"exec_start\": 2.25, "
    "\"exec_end\": 10, \"completed\": 10.5}}";

TEST(GcprofRequest, ParsesJournalLineAndRequiresCoreFields) {
  const auto v = prof::parse_json(kJournalLine);
  ASSERT_TRUE(v.has_value());
  const auto r = prof::request_from_json(*v);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->trace_id, 7u);
  EXPECT_EQ(r->service, "zoom2");
  EXPECT_EQ(r->ma, "MA1");
  EXPECT_EQ(r->la, "LA-x");
  EXPECT_EQ(r->sed, "SeD-x-1");
  EXPECT_EQ(r->attempts, 2);
  EXPECT_TRUE(r->ok());
  EXPECT_TRUE(r->complete_path());
  EXPECT_TRUE(r->boundaries_valid());
  EXPECT_DOUBLE_EQ(r->total(), 9.5);

  // trace_id and the phases object are load-bearing; without them the
  // line is rejected rather than defaulted.
  const auto no_id = prof::parse_json("{\"phases\": {}}");
  ASSERT_TRUE(no_id.has_value());
  EXPECT_FALSE(prof::request_from_json(*no_id).has_value());
  const auto no_phases = prof::parse_json("{\"trace_id\": 1}");
  ASSERT_TRUE(no_phases.has_value());
  EXPECT_FALSE(prof::request_from_json(*no_phases).has_value());
}

TEST(GcprofRequest, PhasesTelescopeAndValidityCatchesGaps) {
  const auto v = prof::parse_json(kJournalLine);
  ASSERT_TRUE(v.has_value());
  prof::Request r = *prof::request_from_json(*v);
  const prof::Phases p = prof::phases_of(r);
  EXPECT_DOUBLE_EQ(p.finding, 0.5);
  EXPECT_DOUBLE_EQ(p.transfer, 0.5);
  EXPECT_DOUBLE_EQ(p.queue_init, 0.25);
  EXPECT_DOUBLE_EQ(p.compute, 7.75);
  EXPECT_DOUBLE_EQ(p.reply, 0.5);
  EXPECT_DOUBLE_EQ(p.sum(), r.total());

  r.arrived = -1.0;  // never reached the SED
  EXPECT_FALSE(r.boundaries_valid());
  r.arrived = 2.0;
  r.exec_end = 1.0;  // non-monotone
  EXPECT_FALSE(r.boundaries_valid());
}

// ---------------------------------------------------------------------------
// Auxiliary inputs.

TEST(GcprofTrace, NetworkSecondsAggregatesMsgSpansByTrace) {
  const auto trace = prof::parse_json(
      "{\"traceEvents\": ["
      "{\"ph\": \"X\", \"name\": \"msg:CallData\", \"ts\": 0, "
      "\"dur\": 1500000, \"args\": {\"trace_id\": \"7\"}},"
      "{\"ph\": \"X\", \"name\": \"msg:Reply\", \"ts\": 0, "
      "\"dur\": 500000, \"args\": {\"trace_id\": \"7\"}},"
      "{\"ph\": \"X\", \"name\": \"msg:CallData\", \"ts\": 0, "
      "\"dur\": 250000, \"args\": {\"trace_id\": \"8\"}},"
      "{\"ph\": \"X\", \"name\": \"exec:zoom2\", \"ts\": 0, "
      "\"dur\": 9000000, \"args\": {\"trace_id\": \"7\"}},"
      "{\"ph\": \"i\", \"name\": \"msg:Drop\", \"ts\": 0, "
      "\"args\": {\"trace_id\": \"7\"}}"
      "]}");
  ASSERT_TRUE(trace.has_value());
  const auto by_trace = prof::network_seconds_from_trace(*trace);
  ASSERT_EQ(by_trace.size(), 2u);  // exec spans and instants don't count
  EXPECT_DOUBLE_EQ(by_trace.at(7), 2.0);
  EXPECT_DOUBLE_EQ(by_trace.at(8), 0.25);
}

TEST(GcprofTrace, SeriesInfoSummarizesCoverage) {
  const auto samples = prof::parse_jsonl(
      "{\"t\": 0, \"counters\": {}}\n"
      "{\"t\": 60, \"counters\": {}}\n"
      "{\"t\": 120, \"counters\": {}}\n");
  ASSERT_TRUE(samples.has_value());
  const prof::SeriesInfo info = prof::series_info(*samples);
  EXPECT_EQ(info.samples, 3u);
  EXPECT_DOUBLE_EQ(info.t_first, 0.0);
  EXPECT_DOUBLE_EQ(info.t_last, 120.0);
}

// ---------------------------------------------------------------------------
// Report builder on synthetic records.

prof::Request synthetic(std::uint64_t id, double scale) {
  prof::Request r;
  r.trace_id = id;
  r.service = "zoom2";
  r.client = "c";
  r.ma = "MA1";
  r.la = "LA0";
  r.sed = "SeD0" + std::to_string(id);
  r.status = "ok";
  r.submitted = 0.0;
  r.found = 1.0 * scale;
  r.arrived = 2.0 * scale;
  r.exec_start = 3.0 * scale;
  r.exec_end = 10.0 * scale;
  r.completed = 11.0 * scale;
  return r;
}

TEST(GcprofReport, FlagsViolationsRanksSlowestAndAttributesLoad) {
  std::vector<prof::Request> requests;
  requests.push_back(synthetic(3, 1.0));
  requests.push_back(synthetic(1, 2.0));
  prof::Request broken = synthetic(2, 1.0);
  broken.la = "";  // ok status but the path never resolved: a violation
  requests.push_back(broken);
  prof::Request failed = synthetic(4, 1.0);
  failed.status = "deadline exceeded";
  failed.arrived = failed.exec_start = failed.exec_end = -1.0;
  requests.push_back(failed);

  prof::Options opts;
  opts.top_k = 2;
  opts.strict = true;
  const prof::Report report =
      prof::build_report(requests, std::nullopt, std::nullopt, opts);

  EXPECT_EQ(report.requests, 4u);
  EXPECT_EQ(report.ok, 3u);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.complete_paths, 3u);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_NE(report.violations[0].find("trace 2"), std::string::npos);
  EXPECT_NE(report.violations[0].find("incomplete path"), std::string::npos);

  // Failed requests without boundaries stay out of the phase totals; the
  // compute phase (7 per unit scale) dominates every valid record.
  EXPECT_EQ(report.dominant.at("compute"), 3u);
  EXPECT_DOUBLE_EQ(report.totals.compute, 7.0 + 14.0 + 7.0);
  EXPECT_DOUBLE_EQ(report.total_latency, 11.0 + 22.0 + 11.0);

  ASSERT_EQ(report.slowest.size(), 2u);
  EXPECT_EQ(report.slowest[0].trace_id, 1u);  // scale 2: slowest
  EXPECT_EQ(report.slowest[1].trace_id, 2u);  // 11 s tie broken by id
  EXPECT_DOUBLE_EQ(report.span_end - report.span_start, 22.0);

  // Per-SED load from the exec intervals; fan-out from resolved paths. The
  // failed request's SED shows up too, with no completed job to its name.
  ASSERT_EQ(report.seds.size(), 4u);
  EXPECT_EQ(report.seds[0].jobs, 1u);
  EXPECT_GT(report.seds[0].utilization, 0.0);
  EXPECT_EQ(report.seds[3].name, "SeD04");
  EXPECT_EQ(report.seds[3].jobs, 0u);
  EXPECT_EQ(report.las_by_ma.at("MA1").size(), 1u);
  EXPECT_EQ(report.seds_by_la.at("LA0").size(), 3u);  // trace 2 has no LA

  // Both renderers are pure functions of the report.
  EXPECT_EQ(prof::to_text(report), prof::to_text(report));
  const std::string json = prof::to_json(report);
  EXPECT_EQ(json, prof::to_json(report));
  EXPECT_NE(json.find("\"violations\": [\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// End to end over a canned campaign: 1 zoom1 + 22 zoom2 requests through
// the simulated Grid'5000 deployment, journal + time-series on.

struct TelemetryGuard {
  TelemetryGuard() {
    obs::Metrics::instance().reset();
    obs::Metrics::instance().set_enabled(true);
    obs::TimeSeries::instance().clear();
    obs::TimeSeries::instance().set_interval(600.0);
    obs::TimeSeries::instance().set_enabled(true);
    obs::Journal::instance().clear();
    obs::Journal::instance().set_enabled(true);
  }
  ~TelemetryGuard() {
    obs::Journal::instance().set_enabled(false);
    obs::Journal::instance().clear();
    obs::TimeSeries::instance().set_enabled(false);
    obs::TimeSeries::instance().clear();
    obs::TimeSeries::instance().set_interval(60.0);
    obs::Metrics::instance().set_enabled(false);
    obs::Metrics::instance().reset();
  }
};

struct Exports {
  std::string journal;
  std::string series;
};

Exports run_campaign(std::uint64_t tie_seed) {
  obs::Journal::instance().clear();
  obs::TimeSeries::instance().clear();
  obs::Metrics::instance().reset();
  workflow::CampaignConfig config;
  config.sub_simulations = 22;
  config.tie_break_seed = tie_seed;
  const workflow::CampaignResult result =
      workflow::run_grid5000_campaign(config);
  EXPECT_EQ(result.failed_calls, 0u);
  EXPECT_EQ(result.zoom2.size(), 22u);
  Exports e;
  e.journal = obs::Journal::instance().to_jsonl();
  e.series = obs::TimeSeries::instance().to_jsonl();
  return e;
}

std::vector<prof::Request> requests_of(const Exports& e) {
  const auto lines = prof::parse_jsonl(e.journal);
  EXPECT_TRUE(lines.has_value());
  std::vector<prof::Request> requests;
  if (!lines.has_value()) return requests;
  for (const auto& line : *lines) {
    const auto r = prof::request_from_json(line);
    EXPECT_TRUE(r.has_value());
    if (r.has_value()) requests.push_back(*r);
  }
  return requests;
}

prof::Report report_of(const Exports& e) {
  const auto samples = prof::parse_jsonl(e.series);
  EXPECT_TRUE(samples.has_value());
  prof::Options opts;
  opts.strict = true;
  return prof::build_report(requests_of(e), prof::series_info(*samples),
                            std::nullopt, opts);
}

TEST(GcprofCampaign, CompletePathsTelescopingPhasesAndDeterminism) {
  TelemetryGuard guard;
  // Warm-up run: metric instruments persist across reset(), so the very
  // first run's early samples see fewer series than any later run's.
  // Every compared run below starts from the full instrument set.
  const Exports warmup = run_campaign(0);

  const Exports a = run_campaign(0);
  // Repeat run, same seed: the journal is a pure function of the modeled
  // schedule, so it is byte-identical even against the warm-up run.
  EXPECT_EQ(warmup.journal, a.journal);

  const std::vector<prof::Request> requests = requests_of(a);
  ASSERT_EQ(requests.size(), 23u);  // 1 zoom1 + 22 zoom2
  for (const prof::Request& r : requests) {
    EXPECT_TRUE(r.ok()) << "trace " << r.trace_id << ": " << r.status;
    EXPECT_TRUE(r.complete_path())
        << "trace " << r.trace_id << ": " << r.ma << "/" << r.la << "/"
        << r.sed;
    EXPECT_TRUE(r.boundaries_valid()) << "trace " << r.trace_id;
    const prof::Phases p = prof::phases_of(r);
    EXPECT_NEAR(p.sum(), r.total(), 1e-9 * std::max(1.0, r.total()))
        << "trace " << r.trace_id;
  }

  const prof::Report report = report_of(a);
  EXPECT_EQ(report.requests, 23u);
  EXPECT_EQ(report.ok, 23u);
  EXPECT_EQ(report.complete_paths, 23u);
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.slowest.size(), 5u);
  EXPECT_EQ(report.las_by_ma.size(), 1u);  // one MA fronts the platform
  EXPECT_FALSE(report.seds.empty());
  for (const prof::SedStat& sed : report.seds) {
    EXPECT_GE(sed.jobs, 1u);
    EXPECT_GT(sed.utilization, 0.0);
    EXPECT_LE(sed.utilization, 1.0);
  }
  EXPECT_TRUE(report.have_series);
  EXPECT_GE(report.series.samples, 2u);
  EXPECT_NE(prof::to_text(report).find("gcprof report"), std::string::npos);

  // Tie-seed fuzz: scrambling same-timestamp event order must not move a
  // single byte of either export or of the report built from them.
  const Exports b = run_campaign(11);
  const Exports c = run_campaign(97);
  EXPECT_EQ(a.journal, b.journal);
  EXPECT_EQ(a.journal, c.journal);
  EXPECT_EQ(a.series, b.series);
  EXPECT_EQ(a.series, c.series);
  EXPECT_EQ(prof::to_json(report), prof::to_json(report_of(b)));
}

}  // namespace
}  // namespace gc
