// Tests for the zoom services (profiles, decoding, sim-mode solves) and
// their registration.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "des/engine.hpp"
#include "diet/client.hpp"
#include "diet/deployment.hpp"
#include "halo/halomaker.hpp"
#include "io/tar.hpp"
#include "naming/registry.hpp"
#include "net/simenv.hpp"
#include "workflow/campaign.hpp"
#include "workflow/services.hpp"

namespace gc::workflow {
namespace {

std::string temp_dir(const char* tag) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       (std::string("gc_wf_") + tag + "_" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(Services, Zoom2ProfileMatchesPaperShape) {
  // Section 4.2.1: diet_profile_desc_alloc("ramsesZoom2", 6, 6, 8) with
  // seven IN arguments, one OUT file and one OUT error code.
  const diet::ProfileDesc desc = zoom2_profile_desc();
  EXPECT_EQ(desc.path(), "ramsesZoom2");
  EXPECT_EQ(desc.last_in(), 6);
  EXPECT_EQ(desc.last_inout(), 6);
  EXPECT_EQ(desc.last_out(), 8);
  EXPECT_EQ(desc.arg(0).type, diet::DataType::kFile);
  for (int i = 1; i <= 6; ++i) {
    EXPECT_EQ(desc.arg(i).type, diet::DataType::kScalar);
    EXPECT_EQ(desc.arg(i).base, diet::BaseType::kInt);
  }
  EXPECT_EQ(desc.arg(7).type, diet::DataType::kFile);
  EXPECT_EQ(desc.arg(8).type, diet::DataType::kScalar);
}

TEST(Services, ClientProfilesMatchServiceDescs) {
  const diet::Profile z1 = make_zoom1_profile("/tmp/x.nml", 1024, 128, 100);
  EXPECT_TRUE(zoom1_profile_desc().matches(z1.desc()));
  EXPECT_TRUE(z1.inputs_complete());

  const diet::Profile z2 =
      make_zoom2_profile("/tmp/x.nml", 1024, 128, 100, 64, 32, 96, 2);
  EXPECT_TRUE(zoom2_profile_desc().matches(z2.desc()));
  EXPECT_TRUE(z2.inputs_complete());
  EXPECT_EQ(z2.arg(3).get_scalar<std::int32_t>().value(), 64);
  EXPECT_EQ(z2.arg(6).get_scalar<std::int32_t>().value(), 2);
  EXPECT_EQ(z2.in_file_bytes(), 1024);
}

TEST(Services, RegisterAddsBothServices) {
  diet::ServiceTable table;
  ServiceOptions options;
  ASSERT_TRUE(register_services(table, options).is_ok());
  EXPECT_EQ(table.size(), 2u);
  EXPECT_NE(table.find_by_path("ramsesZoom1"), nullptr);
  EXPECT_NE(table.find_by_path("ramsesZoom2"), nullptr);
  // Estimators present (the plug-in scheduler hook).
  EXPECT_TRUE(
      static_cast<bool>(table.find_by_path("ramsesZoom2")->estimator));
  // Double registration fails.
  EXPECT_FALSE(register_services(table, options).is_ok());
}

TEST(Services, EstimatorFillsCompTime) {
  diet::ServiceTable table;
  ServiceOptions options;
  ASSERT_TRUE(register_services(table, options).is_ok());
  sched::Estimation est;
  table.find_by_path("ramsesZoom2")
      ->estimator(zoom2_profile_desc(), 1.43, 16, est);
  // Nancy-class SED: ~4190 s per zoom2 (Section 5.2 shape).
  EXPECT_NEAR(est.service_comp_s, 4190.0, 50.0);
  sched::Estimation est_slow;
  table.find_by_path("ramsesZoom2")
      ->estimator(zoom2_profile_desc(), 1.00, 16, est_slow);
  EXPECT_GT(est_slow.service_comp_s, est.service_comp_s);
}

/// One-SED DES harness that runs a single service call to completion.
struct MiniGrid {
  MiniGrid(const ServiceOptions& options)
      : topology(1e-3, 1.25e8), env(engine, topology) {
    GC_CHECK(register_services(services, options).is_ok());
    diet::DeploymentSpec spec;
    spec.ma_node = 0;
    diet::DeploymentSpec::LaSpec la;
    la.name = "LA";
    la.node = 1;
    diet::DeploymentSpec::SedSpec sed;
    sed.name = "SeD-test";
    sed.node = 2;
    sed.host_power = 1.3;
    sed.machines = 16;
    la.sed_indexes.push_back(0);
    spec.seds.push_back(sed);
    spec.las.push_back(la);
    deployment =
        std::make_unique<diet::Deployment>(env, registry, services, spec);
    env.attach(client, 0);
    client.connect(registry.resolve("MA1").value());
    engine.run_until(engine.now() + 1.0);
  }

  gc::Status call(diet::Profile profile, diet::Profile* result) {
    gc::Status status = make_error(ErrorCode::kInternal, "did not run");
    client.call_async(std::move(profile),
                      [&](const gc::Status& s, diet::Profile& p) {
                        status = s;
                        *result = p;
                      });
    engine.run();
    return status;
  }

  des::Engine engine;
  net::UniformTopology topology;
  net::SimEnv env;
  naming::Registry registry;
  diet::ServiceTable services;
  std::unique_ptr<diet::Deployment> deployment;
  diet::Client client{"client"};
};

TEST(Services, SimZoom1ProducesReadableCatalog) {
  ServiceOptions options;
  options.work_dir = temp_dir("z1");
  MiniGrid grid(options);

  diet::Profile result;
  const gc::Status status =
      grid.call(make_zoom1_profile("/none.nml", 4096, 128, 100), &result);
  ASSERT_TRUE(status.is_ok()) << status.to_string();
  EXPECT_EQ(result.arg(4).get_scalar<std::int32_t>().value(), 0);

  auto file = result.arg(3).get_file();
  ASSERT_TRUE(file.is_ok());
  // Modeled transfer size is the configured catalog size...
  EXPECT_EQ(file.value().size_bytes, options.catalog_bytes);
  // ...but the file on disk is a real, readable catalog with >= 100 halos
  // (the campaign picks its zoom targets from it).
  auto catalog = halo::read_catalog(file.value().path);
  ASSERT_TRUE(catalog.is_ok());
  EXPECT_GE(catalog.value().halos.size(), 100u);
  // Sorted by mass.
  for (std::size_t i = 1; i < catalog.value().halos.size(); ++i) {
    EXPECT_LE(catalog.value().halos[i].mass,
              catalog.value().halos[i - 1].mass);
  }
  std::filesystem::remove_all(options.work_dir);
}

TEST(Services, SimZoom1TakesModeledTime) {
  ServiceOptions options;
  options.work_dir = temp_dir("z1t");
  MiniGrid grid(options);
  diet::Profile result;
  ASSERT_TRUE(
      grid.call(make_zoom1_profile("/none.nml", 4096, 128, 100), &result)
          .is_ok());
  // Power 1.3 SED: ~4511 s of virtual time (the paper's 1h15m anchor).
  const auto& record = grid.client.records().at(0);
  EXPECT_NEAR(record.completed - record.started, 4511.0, 4511.0 * 0.08);
  std::filesystem::remove_all(options.work_dir);
}

TEST(Services, SimZoom2ProducesTarball) {
  ServiceOptions options;
  options.work_dir = temp_dir("z2");
  MiniGrid grid(options);
  diet::Profile result;
  const gc::Status status = grid.call(
      make_zoom2_profile("/none.nml", 4096, 128, 100, 10, 20, 30, 2),
      &result);
  ASSERT_TRUE(status.is_ok()) << status.to_string();
  EXPECT_EQ(result.arg(8).get_scalar<std::int32_t>().value(), 0);

  auto file = result.arg(7).get_file();
  ASSERT_TRUE(file.is_ok());
  EXPECT_EQ(file.value().size_bytes, options.tarball_bytes);
  auto entries = io::TarReader::load(file.value().path);
  ASSERT_TRUE(entries.is_ok());
  ASSERT_GE(entries.value().size(), 1u);
  EXPECT_EQ(entries.value()[0].name, "README.txt");
  std::filesystem::remove_all(options.work_dir);
}

TEST(Services, BadArgumentsReturnErrorCode) {
  ServiceOptions options;
  options.work_dir = temp_dir("bad");
  MiniGrid grid(options);
  // resolution 0 is invalid -> solve returns 1, call surfaces an error.
  diet::Profile result;
  const gc::Status status =
      grid.call(make_zoom1_profile("/none.nml", 4096, 0, 100), &result);
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(result.arg(4).get_scalar<std::int32_t>().value(), 1);
  std::filesystem::remove_all(options.work_dir);
}

TEST(Services, RealModeZoom1RunsActualPipeline) {
  ServiceOptions options;
  options.mode = ServiceMode::kReal;
  options.work_dir = temp_dir("real1");
  options.real_max_resolution = 8;  // tiny but real
  options.real_steps = 6;
  MiniGrid grid(options);

  diet::Profile result;
  const gc::Status status =
      grid.call(make_zoom1_profile("/none.nml", 4096, 128, 100), &result);
  ASSERT_TRUE(status.is_ok()) << status.to_string();
  auto file = result.arg(3).get_file();
  ASSERT_TRUE(file.is_ok());
  auto catalog = halo::read_catalog(file.value().path);
  ASSERT_TRUE(catalog.is_ok());
  // A real 8^3 run at z=0 contains at least one FoF group.
  EXPECT_GE(catalog.value().total_particles, 512u);
  std::filesystem::remove_all(options.work_dir);
}

TEST(Services, RealModeZoom2ProducesGalaxyTar) {
  ServiceOptions options;
  options.mode = ServiceMode::kReal;
  options.work_dir = temp_dir("real2");
  options.real_max_resolution = 8;
  options.real_steps = 6;
  MiniGrid grid(options);

  diet::Profile result;
  const gc::Status status = grid.call(
      make_zoom2_profile("/none.nml", 4096, 128, 100, 64, 64, 64, 1),
      &result);
  ASSERT_TRUE(status.is_ok()) << status.to_string();
  auto file = result.arg(7).get_file();
  ASSERT_TRUE(file.is_ok());
  auto entries = io::TarReader::load(file.value().path);
  ASSERT_TRUE(entries.is_ok());
  // README + per-snapshot halo catalogs + galaxies.txt.
  EXPECT_GE(entries.value().size(), 3u);
  bool has_galaxies = false;
  for (const auto& entry : entries.value()) {
    if (entry.name == "galaxies.txt") has_galaxies = true;
  }
  EXPECT_TRUE(has_galaxies);
  std::filesystem::remove_all(options.work_dir);
}

TEST(Campaign, SpecFromG5kMirrorsPlacement) {
  const auto g5k = platform::make_grid5000();
  CampaignConfig config;
  config.policy = "mct";
  const diet::DeploymentSpec spec = deployment_spec_from_g5k(g5k, config);
  EXPECT_EQ(spec.policy, "mct");
  EXPECT_EQ(spec.las.size(), 6u);
  EXPECT_EQ(spec.seds.size(), 11u);
  EXPECT_EQ(spec.ma_node, g5k.ma_node);
  for (std::size_t i = 0; i < spec.seds.size(); ++i) {
    EXPECT_EQ(spec.seds[i].node, g5k.seds[i].frontal);
    EXPECT_EQ(spec.seds[i].machines, 16);
    EXPECT_GT(spec.seds[i].host_power, 0.9);
  }
}

}  // namespace
}  // namespace gc::workflow
