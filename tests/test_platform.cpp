// Tests for the Grid'5000 platform model and the RAMSES cost model.
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "common/rng.hpp"
#include "platform/cost_model.hpp"
#include "platform/grid5000.hpp"
#include "platform/platform.hpp"

namespace gc::platform {
namespace {

TEST(Platform, BuilderShapes) {
  Platform platform(10e-3, 1e8);
  const SiteId site_a = platform.add_site("a");
  const SiteId site_b = platform.add_site("b");
  const ClusterId c0 = platform.add_cluster(site_a, "c0", opteron(246), 4);
  const ClusterId c1 = platform.add_cluster(site_b, "c1", opteron(275), 2);
  EXPECT_EQ(platform.site_count(), 2u);
  EXPECT_EQ(platform.cluster_count(), 2u);
  EXPECT_EQ(platform.node_count(), 6u);
  EXPECT_EQ(platform.cluster(c0).nodes.size(), 4u);
  EXPECT_EQ(platform.cluster(c1).nodes.size(), 2u);
  EXPECT_EQ(platform.node(0).cluster, c0);
  EXPECT_EQ(platform.node(5).cluster, c1);
}

TEST(Platform, LatencyTiers) {
  Platform platform(10e-3, 1e8);
  const SiteId site_a = platform.add_site("a");
  const SiteId site_b = platform.add_site("b");
  const ClusterId c0 = platform.add_cluster(site_a, "c0", opteron(246), 2,
                                            0.05e-3, 1e9 / 8);
  const ClusterId c1 = platform.add_cluster(site_a, "c1", opteron(248), 2,
                                            0.05e-3, 1e9 / 8);
  const ClusterId c2 = platform.add_cluster(site_b, "c2", opteron(250), 2);
  const net::NodeId n0 = platform.cluster(c0).nodes[0];
  const net::NodeId n1 = platform.cluster(c0).nodes[1];
  const net::NodeId n2 = platform.cluster(c1).nodes[0];
  const net::NodeId n3 = platform.cluster(c2).nodes[0];

  EXPECT_DOUBLE_EQ(platform.latency(n0, n0), 0.0);          // loopback
  EXPECT_DOUBLE_EQ(platform.latency(n0, n1), 0.05e-3);      // LAN
  EXPECT_DOUBLE_EQ(platform.latency(n0, n2), 0.1e-3);       // same site
  EXPECT_DOUBLE_EQ(platform.latency(n0, n3), 10e-3);        // WAN default
}

TEST(Platform, WanOverride) {
  Platform platform(10e-3, 1e8);
  const SiteId site_a = platform.add_site("a");
  const SiteId site_b = platform.add_site("b");
  const ClusterId c0 = platform.add_cluster(site_a, "c0", opteron(246), 1);
  const ClusterId c1 = platform.add_cluster(site_b, "c1", opteron(246), 1);
  platform.set_wan_link(site_a, site_b, 3e-3, 2e9);
  const net::NodeId n0 = platform.cluster(c0).nodes[0];
  const net::NodeId n1 = platform.cluster(c1).nodes[0];
  EXPECT_DOUBLE_EQ(platform.latency(n0, n1), 3e-3);
  EXPECT_DOUBLE_EQ(platform.latency(n1, n0), 3e-3);  // symmetric
  EXPECT_DOUBLE_EQ(platform.bandwidth(n0, n1), 2e9);
}

TEST(Platform, TransferTime) {
  Platform platform(10e-3, 1e6);
  const SiteId site_a = platform.add_site("a");
  const SiteId site_b = platform.add_site("b");
  const net::NodeId n0 =
      platform.cluster(platform.add_cluster(site_a, "c0", opteron(246), 1))
          .nodes[0];
  const net::NodeId n1 =
      platform.cluster(platform.add_cluster(site_b, "c1", opteron(246), 1))
          .nodes[0];
  EXPECT_NEAR(platform.transfer_time(n0, n1, 1000000), 10e-3 + 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(platform.transfer_time(n0, n0, 1 << 30), 0.0);
}

TEST(Machine, OpteronCatalogue) {
  EXPECT_DOUBLE_EQ(opteron(246).relative_power, 1.00);
  EXPECT_DOUBLE_EQ(opteron(248).relative_power, 1.10);
  EXPECT_DOUBLE_EQ(opteron(250).relative_power, 1.20);
  EXPECT_DOUBLE_EQ(opteron(252).relative_power, 1.30);
  EXPECT_DOUBLE_EQ(opteron(275).relative_power, 1.43);
  EXPECT_EQ(opteron(9999).name, "opteron-246");  // fallback
}

// ---------- the Section 5.1 deployment ----------

TEST(Grid5000, DeploymentShape) {
  const G5kDeployment d = make_grid5000();
  EXPECT_EQ(d.platform.site_count(), 5u);     // Lyon Lille Nancy Toulouse Sophia
  EXPECT_EQ(d.platform.cluster_count(), 6u);  // Lyon has two
  EXPECT_EQ(d.las.size(), 6u);                // one LA per cluster
  EXPECT_EQ(d.seds.size(), 11u);              // 2 per cluster, capricorne 1
  for (const auto& sed : d.seds) EXPECT_EQ(sed.machines, 16);
  EXPECT_EQ(d.client_node, d.ma_node);        // client co-located with MA
}

TEST(Grid5000, OneClusterHasOneSed) {
  const G5kDeployment d = make_grid5000();
  int with_one = 0;
  for (const auto& la : d.las) {
    if (la.sed_indexes.size() == 1) ++with_one;
    else EXPECT_EQ(la.sed_indexes.size(), 2u);
  }
  EXPECT_EQ(with_one, 1);
}

TEST(Grid5000, PowerSpreadMatchesFigure4) {
  const G5kDeployment d = make_grid5000();
  double fastest = 0.0;
  double slowest = 1e9;
  for (const auto& sed : d.seds) {
    const double p = d.platform.cluster(sed.cluster).model.relative_power;
    fastest = std::max(fastest, p);
    slowest = std::min(slowest, p);
  }
  // Toulouse ~15h vs Nancy ~10h30 -> ratio ~1.43.
  EXPECT_NEAR(fastest / slowest, 1.43, 0.01);
}

TEST(Grid5000, MachinesPerSedConfigurable) {
  const G5kDeployment d = make_grid5000(4);
  for (const auto& sed : d.seds) EXPECT_EQ(sed.machines, 4);
}

// ---------- cost model ----------

TEST(CostModel, Part1Anchor) {
  RamsesCostModel model;
  // 1h15m11s on the Lyon sagittaire SED (power 1.30, 16 machines).
  const double d = model.duration(model.zoom1_work(ZoomJobSpec{}), 1.30, 16);
  EXPECT_NEAR(d, 4511.0, 4511.0 * 0.002);
}

TEST(CostModel, Part2MeanAnchor) {
  RamsesCostModel model;
  // Mean over the 11 SEDs of the Section 5.1 deployment = 1h24m01s.
  const G5kDeployment g5k = make_grid5000();
  ZoomJobSpec spec;
  spec.zoom_levels = 2;
  RunningStats stats;
  for (const auto& sed : g5k.seds) {
    const double p = g5k.platform.cluster(sed.cluster).model.relative_power;
    stats.add(model.duration(model.zoom2_work(spec), p, 16));
  }
  EXPECT_NEAR(stats.mean(), 5041.0, 5041.0 * 0.005);
}

TEST(CostModel, ToulouseNancyAnchors) {
  RamsesCostModel model;
  ZoomJobSpec spec;
  spec.zoom_levels = 2;
  const double toulouse = 9.0 * model.duration(model.zoom2_work(spec), 1.00, 16);
  const double nancy = 9.0 * model.duration(model.zoom2_work(spec), 1.43, 16);
  EXPECT_NEAR(toulouse / 3600.0, 15.0, 0.1);   // ~15h
  EXPECT_NEAR(nancy / 3600.0, 10.5, 0.05);     // ~10h30
}

TEST(CostModel, ResolutionScalingMonotonic) {
  RamsesCostModel model;
  ZoomJobSpec lo;
  lo.resolution = 64;
  ZoomJobSpec hi;
  hi.resolution = 256;
  EXPECT_LT(model.zoom1_work(lo), model.zoom1_work(ZoomJobSpec{}));
  EXPECT_GT(model.zoom1_work(hi), 7.9 * model.zoom1_work(ZoomJobSpec{}));
}

TEST(CostModel, ZoomLevelsAddWork) {
  RamsesCostModel model;
  ZoomJobSpec l0;
  ZoomJobSpec l3;
  l3.zoom_levels = 3;
  EXPECT_GT(model.zoom2_work(l3), model.zoom2_work(l0));
}

TEST(CostModel, AmdahlNormalizedAtReference) {
  RamsesCostModel model;
  EXPECT_DOUBLE_EQ(model.duration(1000.0, 1.0, 16), 1000.0);
  // Fewer machines -> slower; more -> faster but sublinear.
  EXPECT_GT(model.duration(1000.0, 1.0, 8), 1000.0);
  EXPECT_LT(model.duration(1000.0, 1.0, 32), 1000.0);
  EXPECT_GT(model.duration(1000.0, 1.0, 32), 500.0);
}

TEST(CostModel, JitterPreservesMean) {
  RamsesCostModel model;
  Rng rng(4);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.add(model.duration_with_jitter(5000.0, 1.0, 16, rng));
  }
  EXPECT_NEAR(stats.mean(), 5000.0, 10.0);
  EXPECT_NEAR(stats.stddev() / stats.mean(), 0.015, 0.002);
}

TEST(CostModel, ZeroJitterIsDeterministic) {
  RamsesCostModel::Tuning tuning;
  tuning.jitter_cv = 0.0;
  RamsesCostModel model(tuning);
  Rng rng(4);
  EXPECT_DOUBLE_EQ(model.duration_with_jitter(5000.0, 1.0, 16, rng), 5000.0);
}

}  // namespace
}  // namespace gc::platform
