// Tests for GalaxyMaker (the semi-analytic model).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "galaxy/galaxymaker.hpp"

namespace gc::galaxy {
namespace {

halo::Halo make_halo(std::uint64_t id, double mass,
                     std::vector<std::uint64_t> members) {
  halo::Halo h;
  h.id = id;
  h.mass = mass;
  h.npart = members.size();
  h.members = std::move(members);
  return h;
}

halo::HaloCatalog make_catalog(double aexp, std::vector<halo::Halo> halos) {
  halo::HaloCatalog catalog;
  catalog.aexp = aexp;
  catalog.halos = std::move(halos);
  return catalog;
}

tree::MergerForest growing_halo_forest() {
  std::vector<halo::HaloCatalog> catalogs;
  std::vector<std::uint64_t> members;
  double mass = 0.5;
  for (int s = 0; s < 5; ++s) {
    members.push_back(static_cast<std::uint64_t>(s) + 1);
    catalogs.push_back(
        make_catalog(0.2 + 0.2 * s, {make_halo(1, mass, members)}));
    mass *= 1.5;
  }
  return tree::build_forest(catalogs);
}

TEST(GalaxyMaker, OneCatalogPerSnapshot) {
  const auto forest = growing_halo_forest();
  const cosmo::Cosmology cosmology{cosmo::Params{}};
  const auto catalogs = run_sam(forest, cosmology);
  ASSERT_EQ(catalogs.size(), 5u);
  for (const auto& catalog : catalogs) {
    EXPECT_EQ(catalog.galaxies.size(), 1u);
  }
}

TEST(GalaxyMaker, StarsFormAndGrow) {
  const auto forest = growing_halo_forest();
  const cosmo::Cosmology cosmology{cosmo::Params{}};
  const auto catalogs = run_sam(forest, cosmology);
  double last = -1.0;
  for (const auto& catalog : catalogs) {
    const Galaxy& g = catalog.galaxies[0];
    EXPECT_GE(g.mstar, 0.0);
    EXPECT_GE(g.mcold, 0.0);
    EXPECT_GE(g.mhot, 0.0);
    EXPECT_GE(g.sfr, 0.0);
    EXPECT_GT(g.mstar, last);  // stellar mass is monotone non-decreasing
    last = g.mstar;
  }
  EXPECT_GT(catalogs.back().galaxies[0].mstar, 0.0);
}

TEST(GalaxyMaker, BaryonBudgetConserved) {
  const auto forest = growing_halo_forest();
  const cosmo::Cosmology cosmology{cosmo::Params{}};
  SamParams params;
  const auto catalogs = run_sam(forest, cosmology, params);
  // All baryons that ever entered equal what is stored in the phases.
  const Galaxy& g = catalogs.back().galaxies[0];
  const double available = params.baryon_fraction * g.halo_mass;
  EXPECT_NEAR(g.mhot + g.mcold + g.mstar, available, available * 1e-9);
}

TEST(GalaxyMaker, HeavierHaloMakesMoreStars) {
  std::vector<halo::HaloCatalog> catalogs = {
      make_catalog(0.5, {make_halo(1, 4.0, {1, 2, 3, 4}),
                         make_halo(2, 1.0, {10, 11})}),
      make_catalog(1.0, {make_halo(1, 4.2, {1, 2, 3, 4}),
                         make_halo(2, 1.1, {10, 11})}),
  };
  const auto forest = tree::build_forest(catalogs);
  const cosmo::Cosmology cosmology{cosmo::Params{}};
  const auto result = run_sam(forest, cosmology);
  const auto& final_galaxies = result.back().galaxies;
  ASSERT_EQ(final_galaxies.size(), 2u);
  const Galaxy& heavy = final_galaxies[0].halo_mass > final_galaxies[1].halo_mass
                            ? final_galaxies[0]
                            : final_galaxies[1];
  const Galaxy& light = final_galaxies[0].halo_mass > final_galaxies[1].halo_mass
                            ? final_galaxies[1]
                            : final_galaxies[0];
  EXPECT_GT(heavy.mstar, light.mstar);
}

TEST(GalaxyMaker, MergerCombinesGalaxies) {
  std::vector<halo::HaloCatalog> catalogs = {
      make_catalog(0.4, {make_halo(1, 2.0, {1, 2, 3}),
                         make_halo(2, 1.5, {10, 11, 12})}),
      make_catalog(1.0, {make_halo(1, 3.6, {1, 2, 3, 10, 11, 12})}),
  };
  const auto forest = tree::build_forest(catalogs);
  const cosmo::Cosmology cosmology{cosmo::Params{}};
  SamParams params;
  const auto result = run_sam(forest, cosmology, params);

  const auto& before = result[0].galaxies;
  ASSERT_EQ(before.size(), 2u);
  const auto& after = result[1].galaxies;
  ASSERT_EQ(after.size(), 1u);
  // The merged galaxy inherits at least the sum of its progenitors' stars.
  EXPECT_GE(after[0].mstar, before[0].mstar + before[1].mstar);
  EXPECT_EQ(after[0].n_mergers, 1);
  // Baryon budget still holds after the merger.
  const double available = params.baryon_fraction * after[0].halo_mass;
  EXPECT_NEAR(after[0].mhot + after[0].mcold + after[0].mstar, available,
              available * 1e-9);
}

TEST(GalaxyMaker, FeedbackReducesStars) {
  const auto forest = growing_halo_forest();
  const cosmo::Cosmology cosmology{cosmo::Params{}};
  SamParams weak;
  weak.feedback_efficiency = 0.0;
  SamParams strong;
  strong.feedback_efficiency = 2.0;
  const double stars_weak =
      run_sam(forest, cosmology, weak).back().galaxies[0].mstar;
  const double stars_strong =
      run_sam(forest, cosmology, strong).back().galaxies[0].mstar;
  EXPECT_GT(stars_weak, stars_strong);
}

TEST(GalaxyMaker, TextCatalog) {
  const auto forest = growing_halo_forest();
  const cosmo::Cosmology cosmology{cosmo::Params{}};
  const auto result = run_sam(forest, cosmology);
  const std::string text = catalog_to_text(result.back());
  EXPECT_NE(text.find("ngal=1"), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

TEST(GalaxyMaker, CatalogIoRoundtrip) {
  const auto forest = growing_halo_forest();
  const cosmo::Cosmology cosmology{cosmo::Params{}};
  const auto result = run_sam(forest, cosmology);

  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("gc_gal_" + std::to_string(::getpid()) + ".bin"))
          .string();
  ASSERT_TRUE(write_catalog(path, result.back()).is_ok());
  auto back = read_catalog(path);
  ASSERT_TRUE(back.is_ok());
  ASSERT_EQ(back.value().galaxies.size(), 1u);
  EXPECT_DOUBLE_EQ(back.value().galaxies[0].mstar,
                   result.back().galaxies[0].mstar);
  EXPECT_DOUBLE_EQ(back.value().aexp, result.back().aexp);
  std::filesystem::remove(path);
}

TEST(GalaxyMaker, EmptyForest) {
  const cosmo::Cosmology cosmology{cosmo::Params{}};
  const auto result = run_sam(tree::MergerForest{}, cosmology);
  EXPECT_TRUE(result.empty());
}

}  // namespace
}  // namespace gc::galaxy
