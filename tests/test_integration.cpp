// End-to-end campaign tests on the simulated Grid'5000 — the experiment of
// Section 5 at full and reduced scale, plus reproducibility and policy
// comparisons.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/units.hpp"
#include "workflow/campaign.hpp"

namespace gc::workflow {
namespace {

CampaignConfig small_config(std::uint64_t seed = 7) {
  CampaignConfig config;
  config.sub_simulations = 22;  // 2 per SED
  config.seed = seed;
  return config;
}

TEST(Integration, FullPaperCampaignMatchesSection52) {
  CampaignConfig config;  // the real thing: 100 sub-simulations
  const CampaignResult result = run_grid5000_campaign(config);

  EXPECT_EQ(result.failed_calls, 0u);
  ASSERT_EQ(result.zoom2.size(), 100u);

  // Paper: total 16h18m43s (58723 s). Accept +-3%.
  EXPECT_NEAR(result.makespan, 58723.0, 58723.0 * 0.03);
  // Paper: first part 1h15m11s (4511 s).
  EXPECT_NEAR(result.part1_duration, 4511.0, 4511.0 * 0.05);
  // Paper: second part mean 1h24m01s (5041 s).
  EXPECT_NEAR(result.part2_mean_exec, 5041.0, 5041.0 * 0.02);
  // Paper: sequential estimate > 141 h.
  EXPECT_GT(result.sequential_estimate, 140.0 * 3600.0);
  EXPECT_LT(result.sequential_estimate, 143.5 * 3600.0);
  // Paper: ~8.7x against sequential.
  EXPECT_NEAR(result.sequential_estimate / result.makespan, 8.7, 0.25);
  // Paper: finding 49.8 ms average; overhead ~7 s total.
  EXPECT_NEAR(result.finding_mean, 0.0498, 0.004);
  EXPECT_NEAR(result.overhead_total, 7.0, 1.0);
}

TEST(Integration, RequestDistributionIsNineNineTen) {
  CampaignConfig config;
  const CampaignResult result = run_grid5000_campaign(config);
  // "each SED received 9 requests (one of them received 10)".
  std::vector<std::uint64_t> counts;
  for (const auto& sed : result.seds) counts.push_back(sed.requests);
  std::sort(counts.begin(), counts.end());
  ASSERT_EQ(counts.size(), 11u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(counts[static_cast<size_t>(i)], 9u);
  EXPECT_EQ(counts[10], 10u);
}

TEST(Integration, PerSedTimesFollowClusterPower) {
  CampaignConfig config;
  const CampaignResult result = run_grid5000_campaign(config);
  // Figure 4 right: Toulouse busiest (~15h), Nancy idlest (~10h30).
  double toulouse = 0.0;
  double nancy = 0.0;
  for (const auto& sed : result.seds) {
    if (sed.site == "toulouse") toulouse = std::max(toulouse, sed.busy_seconds);
    if (sed.site == "nancy") nancy = std::max(nancy, sed.busy_seconds);
  }
  EXPECT_NEAR(toulouse, 15.0 * 3600.0, 15.0 * 3600.0 * 0.03);
  EXPECT_NEAR(nancy, 10.5 * 3600.0, 10.5 * 3600.0 * 0.03);
  // Every SED with 9 requests on the same cluster has similar busy time.
  EXPECT_NEAR(toulouse / nancy, 1.43, 0.06);
}

TEST(Integration, FindingTimeNearlyConstant) {
  CampaignConfig config;
  const CampaignResult result = run_grid5000_campaign(config);
  double min_find = 1e18;
  double max_find = 0.0;
  for (const auto& record : result.zoom2) {
    min_find = std::min(min_find, record.finding_time());
    max_find = std::max(max_find, record.finding_time());
  }
  // "low and nearly constant": spread under 20% of the mean.
  EXPECT_LT(max_find - min_find, 0.2 * result.finding_mean);
}

TEST(Integration, LatencyGrowsByOrdersOfMagnitude) {
  CampaignConfig config;
  const CampaignResult result = run_grid5000_campaign(config);
  std::vector<double> latencies;
  for (const auto& record : result.zoom2) {
    latencies.push_back(record.latency());
  }
  std::sort(latencies.begin(), latencies.end());
  // First wave: transfer + initiation, tens of ms. Last: hours of queue.
  EXPECT_LT(latencies.front(), 0.2);
  EXPECT_GT(latencies.back(), 3600.0);
}

TEST(Integration, GanttJobsNeverOverlapPerSed) {
  const CampaignResult result = run_grid5000_campaign(small_config());
  for (const auto& sed : result.seds) {
    for (std::size_t j = 1; j < sed.jobs.size(); ++j) {
      EXPECT_GE(sed.jobs[j].started, sed.jobs[j - 1].finished)
          << sed.name << " job " << j;
    }
    for (const auto& job : sed.jobs) {
      EXPECT_GE(job.started, job.arrived);
      EXPECT_GT(job.finished, job.started);
      EXPECT_EQ(job.solve_status, 0);
    }
  }
}

TEST(Integration, SameSeedReproducesExactly) {
  const CampaignResult a = run_grid5000_campaign(small_config(11));
  const CampaignResult b = run_grid5000_campaign(small_config(11));
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.finding_mean, b.finding_mean);
  ASSERT_EQ(a.zoom2.size(), b.zoom2.size());
  for (std::size_t i = 0; i < a.zoom2.size(); ++i) {
    EXPECT_EQ(a.zoom2[i].sed_name, b.zoom2[i].sed_name);
    EXPECT_DOUBLE_EQ(a.zoom2[i].completed, b.zoom2[i].completed);
  }
}

TEST(Integration, DifferentSeedsDiffer) {
  const CampaignResult a = run_grid5000_campaign(small_config(1));
  const CampaignResult b = run_grid5000_campaign(small_config(2));
  EXPECT_NE(a.makespan, b.makespan);
}

TEST(Integration, MctPolicyImprovesMakespan) {
  // The paper's claim: "A better makespan could be attained by writing a
  // plug-in scheduler".
  CampaignConfig default_config;
  CampaignConfig mct_config;
  mct_config.policy = "mct";
  const double default_makespan =
      run_grid5000_campaign(default_config).makespan;
  const double mct_makespan = run_grid5000_campaign(mct_config).makespan;
  EXPECT_LT(mct_makespan, default_makespan * 0.95);
}

TEST(Integration, ScalesWithRequestCount) {
  // Fewer requests, shorter campaign; makespan dominated by the slowest
  // SED's share.
  CampaignConfig tiny = small_config();
  tiny.sub_simulations = 11;
  const CampaignResult result = run_grid5000_campaign(tiny);
  ASSERT_EQ(result.zoom2.size(), 11u);
  // One job per SED: makespan ~ part1 + slowest zoom2 (~6000 s).
  EXPECT_LT(result.makespan, 4511.0 + 7000.0);
  for (const auto& sed : result.seds) EXPECT_LE(sed.requests, 1u);
}

TEST(Integration, MoreMachinesPerSedShortenJobs) {
  CampaignConfig few = small_config();
  few.machines_per_sed = 8;
  CampaignConfig many = small_config();
  many.machines_per_sed = 32;
  const CampaignResult slow = run_grid5000_campaign(few);
  const CampaignResult fast = run_grid5000_campaign(many);
  EXPECT_GT(slow.part2_mean_exec, fast.part2_mean_exec * 1.3);
}

TEST(Integration, FaultBeforeBurstEvictsAndCompletes) {
  CampaignConfig config = small_config();
  config.fault_sed_index = 7;  // a Toulouse SED
  config.fault_at_s = 600.0;   // dies during part 1
  const CampaignResult result = run_grid5000_campaign(config);
  EXPECT_EQ(result.failed_calls, 0u);
  EXPECT_EQ(result.resubmissions, 0u);
  // The victim ran nothing.
  EXPECT_EQ(result.seds[7].requests, 0u);
  // All 22 jobs landed on the 10 survivors.
  std::uint64_t assigned = 0;
  for (const auto& sed : result.seds) assigned += sed.requests;
  EXPECT_EQ(assigned, 22u);
}

TEST(Integration, FaultMidBurstRecoversWithRetries) {
  CampaignConfig config = small_config();
  config.fault_sed_index = 7;
  config.fault_at_s = 4511.0 + 1800.0;  // 30 min into part 2
  config.call_deadline_s = 6.0 * 3600.0;
  config.max_retries = 2;
  const CampaignResult result = run_grid5000_campaign(config);
  EXPECT_EQ(result.failed_calls, 0u);
  EXPECT_GE(result.resubmissions, 1u);
  // Makespan suffered but stays bounded.
  CampaignConfig healthy = small_config();
  const CampaignResult baseline = run_grid5000_campaign(healthy);
  EXPECT_GT(result.makespan, baseline.makespan);
  EXPECT_LT(result.makespan, baseline.makespan + 8.0 * 3600.0);
}

TEST(Integration, ConcurrencyTradesLatencyForMakespan) {
  CampaignConfig serial = small_config();
  CampaignConfig concurrent = small_config();
  concurrent.sed_tuning.concurrency = 2;
  concurrent.machines_per_sed = 8;  // same total machines
  const CampaignResult a = run_grid5000_campaign(serial);
  const CampaignResult b = run_grid5000_campaign(concurrent);
  // Per-job execution roughly doubles on half the machines.
  EXPECT_GT(b.part2_mean_exec, 1.6 * a.part2_mean_exec);
  EXPECT_EQ(b.failed_calls, 0u);
}

TEST(Integration, TrafficAccounted) {
  // The result tarballs dominate the byte count: ~22 x 200 MiB.
  const CampaignConfig config = small_config();
  const CampaignResult result = run_grid5000_campaign(config);
  (void)result;
  SUCCEED();  // traffic accounting is covered in test_net; campaign ran.
}

}  // namespace
}  // namespace gc::workflow
