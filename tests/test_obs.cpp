// Observability tests: span bookkeeping, histogram bucket math, exporter
// validity/determinism, and trace-id propagation through a three-level
// DIET hierarchy under the DES.
#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <string>

#include "des/engine.hpp"
#include "diet/client.hpp"
#include "diet/deployment.hpp"
#include "naming/registry.hpp"
#include "net/simenv.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gc::obs {
namespace {

// The tracer and metrics registry are process-global; every test scopes
// its enablement and wipes recorded state on both ends.
struct ObsGuard {
  ObsGuard() {
    Tracer::instance().clear();
    Tracer::instance().set_enabled(true);
    Metrics::instance().reset();
    Metrics::instance().set_enabled(true);
  }
  ~ObsGuard() {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
    Metrics::instance().set_enabled(false);
    Metrics::instance().reset();
  }
};

// ---------------------------------------------------------------------------
// A minimal JSON syntax checker, enough to validate the exporters' output
// without a JSON dependency: values, objects, arrays, strings with escapes,
// numbers.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(
                    static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Tracer basics.

TEST(Trace, SpanNestingAndOrdering) {
  ObsGuard guard;
  auto& tracer = Tracer::instance();
  const SpanId parent = tracer.begin_span(1.0, "call:double", "client:c", 7);
  const SpanId child = tracer.begin_span(1.5, "finding", "client:c", 7, parent);
  EXPECT_NE(parent, 0u);
  EXPECT_NE(child, 0u);
  EXPECT_NE(parent, child);
  tracer.span_arg(parent, "status", "ok");
  tracer.end_span(child, 2.0);
  tracer.end_span(parent, 4.0);

  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].span_id, parent);
  EXPECT_EQ(events[0].parent_span, 0u);
  EXPECT_FALSE(events[0].open);
  EXPECT_DOUBLE_EQ(events[0].ts, 1.0);
  EXPECT_DOUBLE_EQ(events[0].dur, 3.0);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "status");

  EXPECT_EQ(events[1].span_id, child);
  EXPECT_EQ(events[1].parent_span, parent);
  EXPECT_DOUBLE_EQ(events[1].dur, 0.5);
  EXPECT_EQ(events[1].trace_id, 7u);
  // Record order is monotonic: the tie-breaker for equal timestamps.
  EXPECT_LT(events[0].seq, events[1].seq);
}

TEST(Trace, DisabledRecordsNothingAndSpanZeroIsSafe) {
  ObsGuard guard;
  auto& tracer = Tracer::instance();
  tracer.set_enabled(false);
  const SpanId span = tracer.begin_span(1.0, "x", "t");
  EXPECT_EQ(span, 0u);
  tracer.span_arg(span, "k", "v");
  tracer.end_span(span, 2.0);  // must be a no-op, not a crash
  tracer.complete_span(1.0, 1.0, "y", "t");
  tracer.instant(1.0, "z", "t");
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(Trace, EndSpanClampsNegativeDuration) {
  ObsGuard guard;
  auto& tracer = Tracer::instance();
  const SpanId span = tracer.begin_span(5.0, "x", "t");
  tracer.end_span(span, 4.0);  // clock went backwards: clamp, don't go negative
  EXPECT_DOUBLE_EQ(tracer.events().at(0).dur, 0.0);
}

TEST(Trace, ChromeJsonIsValidAndDeterministic) {
  ObsGuard guard;
  auto& tracer = Tracer::instance();
  const SpanId a = tracer.begin_span(0.010, "call:\"quoted\"", "client:c", 3);
  tracer.instant(0.011, "deliver:10", "net:n0", 3);
  tracer.complete_span(0.012, 0.005, "msg:10", "net:n0", 3, a);
  tracer.end_span(a, 0.020);

  const std::string json = tracer.chrome_trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_EQ(json, tracer.chrome_trace_json());  // pure function of state

  // Metadata names both tracks; events carry microsecond timestamps.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("client:c"), std::string::npos);
  EXPECT_NE(json.find("net:n0"), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 10000.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 10000.000"), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\": \"3\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Histogram bucket math.

TEST(MetricsTest, HistogramBucketsUseLeSemantics) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);   // <= 1    -> bucket 0
  h.observe(1.0);   // == edge -> bucket 0 (le is inclusive)
  h.observe(1.5);   // <= 2    -> bucket 1
  h.observe(4.0);   // == edge -> bucket 2
  h.observe(100.0); // overflow -> +Inf bucket
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 107.0);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(0), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(MetricsTest, ExponentialBounds) {
  const auto bounds = Histogram::exponential_bounds(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
  // The shared layouts are ascending (Histogram's construction contract).
  EXPECT_TRUE(std::is_sorted(latency_buckets_s().begin(),
                             latency_buckets_s().end()));
  EXPECT_TRUE(std::is_sorted(duration_buckets_s().begin(),
                             duration_buckets_s().end()));
}

TEST(MetricsTest, SeriesIdentityIgnoresLabelOrder) {
  ObsGuard guard;
  auto& m = Metrics::instance();
  Counter& a = m.counter("t_requests", {{"agent", "MA"}, {"zone", "x"}});
  Counter& b = m.counter("t_requests", {{"zone", "x"}, {"agent", "MA"}});
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);

  // reset() zeroes values but keeps instruments alive: cached references
  // (the DES engine and the pool hold some) must stay valid.
  m.reset();
  EXPECT_EQ(a.value(), 0u);
  a.inc();
  EXPECT_EQ(m.counter("t_requests", {{"agent", "MA"}, {"zone", "x"}}).value(),
            1u);
}

TEST(MetricsTest, PrometheusExportShape) {
  ObsGuard guard;
  auto& m = Metrics::instance();
  m.counter("t_total", {{"sed", "s1"}}).inc(2);
  m.gauge("t_depth").set(1.5);
  Histogram& h = m.histogram("t_seconds", {0.1, 1.0}, {{"sed", "s1"}});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(10.0);

  const std::string text = m.to_prometheus();
  EXPECT_EQ(text, m.to_prometheus());  // deterministic
  EXPECT_NE(text.find("# TYPE t_total counter"), std::string::npos);
  EXPECT_NE(text.find("t_total{sed=\"s1\"} 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("t_depth 1.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_seconds histogram"), std::string::npos);
  // Cumulative buckets, le spliced into the existing label set, +Inf last.
  EXPECT_NE(text.find("t_seconds_bucket{sed=\"s1\",le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("t_seconds_bucket{sed=\"s1\",le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("t_seconds_bucket{sed=\"s1\",le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("t_seconds_sum{sed=\"s1\"} 10.55"), std::string::npos);
  EXPECT_NE(text.find("t_seconds_count{sed=\"s1\"} 3"), std::string::npos);
}

TEST(MetricsTest, JsonExportIsValidJson) {
  ObsGuard guard;
  auto& m = Metrics::instance();
  m.counter("t_with\"quote").inc();
  m.gauge("t_gauge", {{"k", "v"}}).set(-2.25);
  m.histogram("t_hist", {1.0}).observe(0.5);
  const std::string json = m.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_EQ(json, m.to_json());
}

// ---------------------------------------------------------------------------
// End-to-end: one DIET call through a 1 MA / 2 LA / 4 SED hierarchy under
// SimEnv must come out as a single causally-linked trace.

diet::ProfileDesc double_desc() {
  diet::ProfileDesc desc("double", 0, 0, 1);
  desc.arg(0).type = diet::DataType::kScalar;
  desc.arg(0).base = diet::BaseType::kInt;
  desc.arg(1).type = diet::DataType::kScalar;
  desc.arg(1).base = diet::BaseType::kInt;
  return desc;
}

diet::Profile double_profile(std::int32_t value) {
  diet::Profile profile("double", 0, 0, 1);
  profile.arg(0).set_scalar<std::int32_t>(value, diet::BaseType::kInt,
                                          diet::Persistence::kVolatile);
  profile.arg(1).desc.type = diet::DataType::kScalar;
  profile.arg(1).desc.base = diet::BaseType::kInt;
  return profile;
}

/// 1 MA ("MA1"), 2 LAs, 2 SEDs per LA — the shape of test_diet_agents.cpp.
struct SimFixture {
  SimFixture() : topology(5e-3, 1.25e8), env(engine, topology) {
    diet::SolveFn solve = [](diet::ServiceContext& ctx) {
      ctx.compute(
          10.0,
          [&ctx]() {
            const auto in =
                ctx.profile().arg(0).get_scalar<std::int32_t>();
            if (!in.is_ok()) return 1;
            ctx.profile().arg(1).set_scalar<std::int32_t>(
                in.value() * 2, diet::BaseType::kInt,
                diet::Persistence::kVolatile);
            return 0;
          },
          [&ctx](int rc) { ctx.finish(rc); });
    };
    EXPECT_TRUE(services.add(double_desc(), std::move(solve)).is_ok());
    diet::DeploymentSpec spec;
    spec.ma_node = 0;
    for (int la = 0; la < 2; ++la) {
      diet::DeploymentSpec::LaSpec l;
      l.name = "LA" + std::to_string(la);
      l.node = static_cast<net::NodeId>(1 + la);
      for (int s = 0; s < 2; ++s) {
        diet::DeploymentSpec::SedSpec sed;
        sed.name = "SeD" + std::to_string(la) + std::to_string(s);
        sed.node = static_cast<net::NodeId>(3 + la * 2 + s);
        l.sed_indexes.push_back(static_cast<int>(spec.seds.size()));
        spec.seds.push_back(sed);
      }
      spec.las.push_back(l);
    }
    deployment =
        std::make_unique<diet::Deployment>(env, registry, services, spec);
    env.attach(client, 0);
    client.connect(registry.resolve("MA1").value());
    engine.run_until(engine.now() + 1.0);
  }

  des::Engine engine;
  net::UniformTopology topology;
  net::SimEnv env;
  naming::Registry registry;
  diet::ServiceTable services;
  std::unique_ptr<diet::Deployment> deployment;
  diet::Client client{"client"};
};

/// Runs one call through a fresh fixture and returns the tracer's export.
std::string traced_call_json() {
  Tracer::instance().clear();
  SimFixture fix;
  bool done = false;
  fix.client.call_async(double_profile(21),
                        [&](const gc::Status& s, diet::Profile&) {
                          EXPECT_TRUE(s.is_ok()) << s.to_string();
                          done = true;
                        });
  fix.engine.run();
  EXPECT_TRUE(done);
  return Tracer::instance().chrome_trace_json();
}

TEST(Hierarchy, TraceIdLinksClientToSedAcrossThreeLevels) {
  ObsGuard guard;
  SimFixture fix;
  // Registration traffic is traced too but carries no trace id; wipe it so
  // the assertions below see exactly one request's events.
  Tracer::instance().clear();

  bool done = false;
  fix.client.call_async(double_profile(21),
                        [&](const gc::Status& s, diet::Profile&) {
                          EXPECT_TRUE(s.is_ok()) << s.to_string();
                          done = true;
                        });
  fix.engine.run();
  ASSERT_TRUE(done);

  const auto events = Tracer::instance().events();
  ASSERT_FALSE(events.empty());

  // The client's call span defines the trace id (= the request id).
  TraceId trace = 0;
  SpanId call_span = 0;
  for (const auto& ev : events) {
    if (ev.track == "client:client" && ev.name == "call:double") {
      trace = ev.trace_id;
      call_span = ev.span_id;
    }
  }
  ASSERT_NE(trace, 0u);
  ASSERT_NE(call_span, 0u);

  // The "finding" phase is a child of the call span, on the same trace.
  bool finding_linked = false;
  for (const auto& ev : events) {
    if (ev.name == "finding" && ev.parent_span == call_span &&
        ev.trace_id == trace && !ev.open) {
      finding_linked = true;
    }
  }
  EXPECT_TRUE(finding_linked);

  // Every level of the hierarchy contributed a span with the same trace id:
  // MA collect, at least one LA collect, and the executing SED's
  // queue + exec pair. That is the complete client->MA->LA->SED chain.
  std::set<std::string> tracks_on_trace;
  bool sed_exec = false;
  bool sed_queue = false;
  bool la_collect = false;
  bool ma_collect = false;
  for (const auto& ev : events) {
    if (ev.trace_id != trace) continue;
    tracks_on_trace.insert(ev.track);
    if (ev.track == "agent:MA1" && ev.name == "collect:double") {
      ma_collect = true;
    }
    if (ev.track.rfind("agent:LA", 0) == 0 && ev.name == "collect:double") {
      la_collect = true;
    }
    if (ev.track.rfind("sed:", 0) == 0) {
      if (ev.name.rfind("queue:", 0) == 0) sed_queue = true;
      if (ev.name.rfind("exec:", 0) == 0) sed_exec = true;
    }
  }
  EXPECT_TRUE(ma_collect);
  EXPECT_TRUE(la_collect);
  EXPECT_TRUE(sed_queue);
  EXPECT_TRUE(sed_exec);
  // Client + MA + >=1 LA + >=1 SED + network tracks all participated.
  EXPECT_GE(tracks_on_trace.size(), 5u) << "tracks: "
      << [&] {
           std::string s;
           for (const auto& t : tracks_on_trace) s += t + " ";
           return s;
         }();

  // All spans closed: no half-open request state at quiescence.
  for (const auto& ev : events) {
    if (ev.trace_id == trace) {
      EXPECT_FALSE(ev.open) << ev.name;
    }
  }
}

TEST(Hierarchy, ChromeExportIsDeterministicUnderSimEnv) {
  ObsGuard guard;
  const std::string first = traced_call_json();
  const std::string second = traced_call_json();
  EXPECT_TRUE(JsonChecker(first).valid());
  EXPECT_EQ(first, second);
}

TEST(Hierarchy, MetricsCountRequestsPerLevel) {
  ObsGuard guard;
  SimFixture fix;
  Metrics::instance().reset();  // drop registration-phase counts

  constexpr int kCalls = 8;
  int done = 0;
  for (int i = 0; i < kCalls; ++i) {
    fix.client.call_async(double_profile(i),
                          [&](const gc::Status& s, diet::Profile&) {
                            EXPECT_TRUE(s.is_ok());
                            ++done;
                          });
  }
  fix.engine.run();
  ASSERT_EQ(done, kCalls);

  auto& m = Metrics::instance();
  EXPECT_EQ(m.counter("diet_client_calls_total", {{"client", "client"}})
                .value(),
            static_cast<std::uint64_t>(kCalls));
  EXPECT_EQ(m.counter("diet_agent_requests_total", {{"agent", "MA1"}}).value(),
            static_cast<std::uint64_t>(kCalls));
  // The MA fans every request out to both LAs.
  EXPECT_EQ(m.counter("diet_agent_forwards_total", {{"agent", "MA1"}}).value(),
            static_cast<std::uint64_t>(2 * kCalls));

  std::uint64_t sed_jobs = 0;
  double busy = 0.0;
  for (const char* sed : {"SeD00", "SeD01", "SeD10", "SeD11"}) {
    sed_jobs += m.counter("diet_sed_jobs_total", {{"sed", sed}}).value();
    busy += m.gauge("diet_sed_busy_seconds_total", {{"sed", sed}}).value();
    // Quiescent: every queue drained.
    EXPECT_DOUBLE_EQ(m.gauge("diet_sed_queue_depth", {{"sed", sed}}).value(),
                     0.0);
  }
  EXPECT_EQ(sed_jobs, static_cast<std::uint64_t>(kCalls));
  // 8 jobs x 10 modeled seconds each.
  EXPECT_GT(busy, 79.9);

  EXPECT_EQ(m.histogram("diet_finding_time_seconds", latency_buckets_s())
                .count(),
            static_cast<std::uint64_t>(kCalls));
  EXPECT_EQ(m.histogram("diet_call_total_seconds", duration_buckets_s())
                .count(),
            static_cast<std::uint64_t>(kCalls));
}

}  // namespace
}  // namespace gc::obs
