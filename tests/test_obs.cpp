// Observability tests: span bookkeeping, histogram bucket math, exporter
// validity/determinism, and trace-id propagation through a three-level
// DIET hierarchy under the DES.
#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <string>

#include "des/engine.hpp"
#include "diet/client.hpp"
#include "diet/deployment.hpp"
#include "naming/registry.hpp"
#include "net/simenv.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace gc::obs {
namespace {

// The tracer and metrics registry are process-global; every test scopes
// its enablement and wipes recorded state on both ends.
struct ObsGuard {
  ObsGuard() {
    Tracer::instance().clear();
    Tracer::instance().set_enabled(true);
    Metrics::instance().reset();
    Metrics::instance().set_enabled(true);
  }
  ~ObsGuard() {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
    Metrics::instance().set_enabled(false);
    Metrics::instance().reset();
  }
};

// ---------------------------------------------------------------------------
// A minimal JSON syntax checker, enough to validate the exporters' output
// without a JSON dependency: values, objects, arrays, strings with escapes,
// numbers.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(
                    static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Tracer basics.

TEST(Trace, SpanNestingAndOrdering) {
  ObsGuard guard;
  auto& tracer = Tracer::instance();
  const SpanId parent = tracer.begin_span(1.0, "call:double", "client:c", 7);
  const SpanId child = tracer.begin_span(1.5, "finding", "client:c", 7, parent);
  EXPECT_NE(parent, 0u);
  EXPECT_NE(child, 0u);
  EXPECT_NE(parent, child);
  tracer.span_arg(parent, "status", "ok");
  tracer.end_span(child, 2.0);
  tracer.end_span(parent, 4.0);

  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].span_id, parent);
  EXPECT_EQ(events[0].parent_span, 0u);
  EXPECT_FALSE(events[0].open);
  EXPECT_DOUBLE_EQ(events[0].ts, 1.0);
  EXPECT_DOUBLE_EQ(events[0].dur, 3.0);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "status");

  EXPECT_EQ(events[1].span_id, child);
  EXPECT_EQ(events[1].parent_span, parent);
  EXPECT_DOUBLE_EQ(events[1].dur, 0.5);
  EXPECT_EQ(events[1].trace_id, 7u);
  // Record order is monotonic: the tie-breaker for equal timestamps.
  EXPECT_LT(events[0].seq, events[1].seq);
}

TEST(Trace, DisabledRecordsNothingAndSpanZeroIsSafe) {
  ObsGuard guard;
  auto& tracer = Tracer::instance();
  tracer.set_enabled(false);
  const SpanId span = tracer.begin_span(1.0, "x", "t");
  EXPECT_EQ(span, 0u);
  tracer.span_arg(span, "k", "v");
  tracer.end_span(span, 2.0);  // must be a no-op, not a crash
  tracer.complete_span(1.0, 1.0, "y", "t");
  tracer.instant(1.0, "z", "t");
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(Trace, EndSpanClampsNegativeDuration) {
  ObsGuard guard;
  auto& tracer = Tracer::instance();
  const SpanId span = tracer.begin_span(5.0, "x", "t");
  tracer.end_span(span, 4.0);  // clock went backwards: clamp, don't go negative
  EXPECT_DOUBLE_EQ(tracer.events().at(0).dur, 0.0);
}

TEST(Trace, ChromeJsonIsValidAndDeterministic) {
  ObsGuard guard;
  auto& tracer = Tracer::instance();
  const SpanId a = tracer.begin_span(0.010, "call:\"quoted\"", "client:c", 3);
  tracer.instant(0.011, "deliver:10", "net:n0", 3);
  tracer.complete_span(0.012, 0.005, "msg:10", "net:n0", 3, a);
  tracer.end_span(a, 0.020);

  const std::string json = tracer.chrome_trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_EQ(json, tracer.chrome_trace_json());  // pure function of state

  // Metadata names both tracks; events carry microsecond timestamps.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("client:c"), std::string::npos);
  EXPECT_NE(json.find("net:n0"), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 10000.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 10000.000"), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\": \"3\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Histogram bucket math.

TEST(MetricsTest, HistogramBucketsUseLeSemantics) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);   // <= 1    -> bucket 0
  h.observe(1.0);   // == edge -> bucket 0 (le is inclusive)
  h.observe(1.5);   // <= 2    -> bucket 1
  h.observe(4.0);   // == edge -> bucket 2
  h.observe(100.0); // overflow -> +Inf bucket
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 107.0);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(0), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(MetricsTest, ExponentialBounds) {
  const auto bounds = Histogram::exponential_bounds(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
  // The shared layouts are ascending (Histogram's construction contract).
  EXPECT_TRUE(std::is_sorted(latency_buckets_s().begin(),
                             latency_buckets_s().end()));
  EXPECT_TRUE(std::is_sorted(duration_buckets_s().begin(),
                             duration_buckets_s().end()));
}

TEST(MetricsTest, SeriesIdentityIgnoresLabelOrder) {
  ObsGuard guard;
  auto& m = Metrics::instance();
  Counter& a = m.counter("t_requests", {{"agent", "MA"}, {"zone", "x"}});
  Counter& b = m.counter("t_requests", {{"zone", "x"}, {"agent", "MA"}});
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);

  // reset() zeroes values but keeps instruments alive: cached references
  // (the DES engine and the pool hold some) must stay valid.
  m.reset();
  EXPECT_EQ(a.value(), 0u);
  a.inc();
  EXPECT_EQ(m.counter("t_requests", {{"agent", "MA"}, {"zone", "x"}}).value(),
            1u);
}

TEST(MetricsTest, PrometheusExportShape) {
  ObsGuard guard;
  auto& m = Metrics::instance();
  m.counter("t_total", {{"sed", "s1"}}).inc(2);
  m.gauge("t_depth").set(1.5);
  Histogram& h = m.histogram("t_seconds", {0.1, 1.0}, {{"sed", "s1"}});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(10.0);

  const std::string text = m.to_prometheus();
  EXPECT_EQ(text, m.to_prometheus());  // deterministic
  EXPECT_NE(text.find("# TYPE t_total counter"), std::string::npos);
  EXPECT_NE(text.find("t_total{sed=\"s1\"} 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("t_depth 1.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_seconds histogram"), std::string::npos);
  // Cumulative buckets, le spliced into the existing label set, +Inf last.
  EXPECT_NE(text.find("t_seconds_bucket{sed=\"s1\",le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("t_seconds_bucket{sed=\"s1\",le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("t_seconds_bucket{sed=\"s1\",le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("t_seconds_sum{sed=\"s1\"} 10.55"), std::string::npos);
  EXPECT_NE(text.find("t_seconds_count{sed=\"s1\"} 3"), std::string::npos);
}

TEST(MetricsTest, JsonExportIsValidJson) {
  ObsGuard guard;
  auto& m = Metrics::instance();
  m.counter("t_with\"quote").inc();
  m.gauge("t_gauge", {{"k", "v"}}).set(-2.25);
  m.histogram("t_hist", {1.0}).observe(0.5);
  const std::string json = m.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_EQ(json, m.to_json());
}

// ---------------------------------------------------------------------------
// End-to-end: one DIET call through a 1 MA / 2 LA / 4 SED hierarchy under
// SimEnv must come out as a single causally-linked trace.

diet::ProfileDesc double_desc() {
  diet::ProfileDesc desc("double", 0, 0, 1);
  desc.arg(0).type = diet::DataType::kScalar;
  desc.arg(0).base = diet::BaseType::kInt;
  desc.arg(1).type = diet::DataType::kScalar;
  desc.arg(1).base = diet::BaseType::kInt;
  return desc;
}

diet::Profile double_profile(std::int32_t value) {
  diet::Profile profile("double", 0, 0, 1);
  profile.arg(0).set_scalar<std::int32_t>(value, diet::BaseType::kInt,
                                          diet::Persistence::kVolatile);
  profile.arg(1).desc.type = diet::DataType::kScalar;
  profile.arg(1).desc.base = diet::BaseType::kInt;
  return profile;
}

/// 1 MA ("MA1"), 2 LAs, 2 SEDs per LA — the shape of test_diet_agents.cpp.
struct SimFixture {
  SimFixture() : topology(5e-3, 1.25e8), env(engine, topology) {
    diet::SolveFn solve = [](diet::ServiceContext& ctx) {
      ctx.compute(
          10.0,
          [&ctx]() {
            const auto in =
                ctx.profile().arg(0).get_scalar<std::int32_t>();
            if (!in.is_ok()) return 1;
            ctx.profile().arg(1).set_scalar<std::int32_t>(
                in.value() * 2, diet::BaseType::kInt,
                diet::Persistence::kVolatile);
            return 0;
          },
          [&ctx](int rc) { ctx.finish(rc); });
    };
    EXPECT_TRUE(services.add(double_desc(), std::move(solve)).is_ok());
    diet::DeploymentSpec spec;
    spec.ma_node = 0;
    for (int la = 0; la < 2; ++la) {
      diet::DeploymentSpec::LaSpec l;
      l.name = "LA" + std::to_string(la);
      l.node = static_cast<net::NodeId>(1 + la);
      for (int s = 0; s < 2; ++s) {
        diet::DeploymentSpec::SedSpec sed;
        sed.name = "SeD" + std::to_string(la) + std::to_string(s);
        sed.node = static_cast<net::NodeId>(3 + la * 2 + s);
        l.sed_indexes.push_back(static_cast<int>(spec.seds.size()));
        spec.seds.push_back(sed);
      }
      spec.las.push_back(l);
    }
    deployment =
        std::make_unique<diet::Deployment>(env, registry, services, spec);
    env.attach(client, 0);
    client.connect(registry.resolve("MA1").value());
    engine.run_until(engine.now() + 1.0);
  }

  des::Engine engine;
  net::UniformTopology topology;
  net::SimEnv env;
  naming::Registry registry;
  diet::ServiceTable services;
  std::unique_ptr<diet::Deployment> deployment;
  diet::Client client{"client"};
};

/// Runs one call through a fresh fixture and returns the tracer's export.
std::string traced_call_json() {
  Tracer::instance().clear();
  SimFixture fix;
  bool done = false;
  fix.client.call_async(double_profile(21),
                        [&](const gc::Status& s, diet::Profile&) {
                          EXPECT_TRUE(s.is_ok()) << s.to_string();
                          done = true;
                        });
  fix.engine.run();
  EXPECT_TRUE(done);
  return Tracer::instance().chrome_trace_json();
}

TEST(Hierarchy, TraceIdLinksClientToSedAcrossThreeLevels) {
  ObsGuard guard;
  SimFixture fix;
  // Registration traffic is traced too but carries no trace id; wipe it so
  // the assertions below see exactly one request's events.
  Tracer::instance().clear();

  bool done = false;
  fix.client.call_async(double_profile(21),
                        [&](const gc::Status& s, diet::Profile&) {
                          EXPECT_TRUE(s.is_ok()) << s.to_string();
                          done = true;
                        });
  fix.engine.run();
  ASSERT_TRUE(done);

  const auto events = Tracer::instance().events();
  ASSERT_FALSE(events.empty());

  // The client's call span defines the trace id (= the request id).
  TraceId trace = 0;
  SpanId call_span = 0;
  for (const auto& ev : events) {
    if (ev.track == "client:client" && ev.name == "call:double") {
      trace = ev.trace_id;
      call_span = ev.span_id;
    }
  }
  ASSERT_NE(trace, 0u);
  ASSERT_NE(call_span, 0u);

  // The "finding" phase is a child of the call span, on the same trace.
  bool finding_linked = false;
  for (const auto& ev : events) {
    if (ev.name == "finding" && ev.parent_span == call_span &&
        ev.trace_id == trace && !ev.open) {
      finding_linked = true;
    }
  }
  EXPECT_TRUE(finding_linked);

  // Every level of the hierarchy contributed a span with the same trace id:
  // MA collect, at least one LA collect, and the executing SED's
  // queue + exec pair. That is the complete client->MA->LA->SED chain.
  std::set<std::string> tracks_on_trace;
  bool sed_exec = false;
  bool sed_queue = false;
  bool la_collect = false;
  bool ma_collect = false;
  for (const auto& ev : events) {
    if (ev.trace_id != trace) continue;
    tracks_on_trace.insert(ev.track);
    if (ev.track == "agent:MA1" && ev.name == "collect:double") {
      ma_collect = true;
    }
    if (ev.track.rfind("agent:LA", 0) == 0 && ev.name == "collect:double") {
      la_collect = true;
    }
    if (ev.track.rfind("sed:", 0) == 0) {
      if (ev.name.rfind("queue:", 0) == 0) sed_queue = true;
      if (ev.name.rfind("exec:", 0) == 0) sed_exec = true;
    }
  }
  EXPECT_TRUE(ma_collect);
  EXPECT_TRUE(la_collect);
  EXPECT_TRUE(sed_queue);
  EXPECT_TRUE(sed_exec);
  // Client + MA + >=1 LA + >=1 SED + network tracks all participated.
  EXPECT_GE(tracks_on_trace.size(), 5u) << "tracks: "
      << [&] {
           std::string s;
           for (const auto& t : tracks_on_trace) s += t + " ";
           return s;
         }();

  // All spans closed: no half-open request state at quiescence.
  for (const auto& ev : events) {
    if (ev.trace_id == trace) {
      EXPECT_FALSE(ev.open) << ev.name;
    }
  }
}

TEST(Hierarchy, ChromeExportIsDeterministicUnderSimEnv) {
  ObsGuard guard;
  const std::string first = traced_call_json();
  const std::string second = traced_call_json();
  EXPECT_TRUE(JsonChecker(first).valid());
  EXPECT_EQ(first, second);
}

TEST(Hierarchy, MetricsCountRequestsPerLevel) {
  ObsGuard guard;
  SimFixture fix;
  Metrics::instance().reset();  // drop registration-phase counts

  constexpr int kCalls = 8;
  int done = 0;
  for (int i = 0; i < kCalls; ++i) {
    fix.client.call_async(double_profile(i),
                          [&](const gc::Status& s, diet::Profile&) {
                            EXPECT_TRUE(s.is_ok());
                            ++done;
                          });
  }
  fix.engine.run();
  ASSERT_EQ(done, kCalls);

  auto& m = Metrics::instance();
  EXPECT_EQ(m.counter("diet_client_calls_total", {{"client", "client"}})
                .value(),
            static_cast<std::uint64_t>(kCalls));
  EXPECT_EQ(m.counter("diet_agent_requests_total", {{"agent", "MA1"}}).value(),
            static_cast<std::uint64_t>(kCalls));
  // The MA fans every request out to both LAs.
  EXPECT_EQ(m.counter("diet_agent_forwards_total", {{"agent", "MA1"}}).value(),
            static_cast<std::uint64_t>(2 * kCalls));

  std::uint64_t sed_jobs = 0;
  double busy = 0.0;
  for (const char* sed : {"SeD00", "SeD01", "SeD10", "SeD11"}) {
    sed_jobs += m.counter("diet_sed_jobs_total", {{"sed", sed}}).value();
    busy += m.gauge("diet_sed_busy_seconds_total", {{"sed", sed}}).value();
    // Quiescent: every queue drained.
    EXPECT_DOUBLE_EQ(m.gauge("diet_sed_queue_depth", {{"sed", sed}}).value(),
                     0.0);
  }
  EXPECT_EQ(sed_jobs, static_cast<std::uint64_t>(kCalls));
  // 8 jobs x 10 modeled seconds each.
  EXPECT_GT(busy, 79.9);

  EXPECT_EQ(m.histogram("diet_finding_time_seconds", latency_buckets_s())
                .count(),
            static_cast<std::uint64_t>(kCalls));
  EXPECT_EQ(m.histogram("diet_call_total_seconds", duration_buckets_s())
                .count(),
            static_cast<std::uint64_t>(kCalls));
}

// ---------------------------------------------------------------------------
// Label-value escaping (regression: raw quotes/backslashes/newlines in a
// label value used to reach the exporters unescaped).

TEST(MetricsTest, LabelValuesAreEscapedInExports) {
  ObsGuard guard;
  auto& m = Metrics::instance();
  m.counter("t_esc", {{"path", "a\"b\\c\nd"}}).inc(4);

  const std::string prom = m.to_prometheus();
  // The raw value must never appear; the escaped spelling must.
  EXPECT_EQ(prom.find("a\"b\\c\nd"), std::string::npos) << prom;
  EXPECT_NE(prom.find("t_esc{path=\"a\\\"b\\\\c\\nd\"} 4"), std::string::npos)
      << prom;

  const std::string json = m.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;

  // Escaping is injective: values that differ only by escape-vs-raw must
  // land on distinct series, not alias each other.
  Counter& raw = m.counter("t_esc2", {{"k", "x\"y"}});
  Counter& pre = m.counter("t_esc2", {{"k", "x\\\"y"}});
  EXPECT_NE(&raw, &pre);

  // Stable identity: the same raw value resolves to the same series.
  m.counter("t_esc", {{"path", "a\"b\\c\nd"}}).inc();
  EXPECT_EQ(m.counter("t_esc", {{"path", "a\"b\\c\nd"}}).value(), 5u);
}

TEST(MetricsTest, SnapshotCapturesAllInstrumentKinds) {
  ObsGuard guard;
  auto& m = Metrics::instance();
  m.counter("t_c", {{"k", "v"}}).inc(3);
  m.gauge("t_g").set(2.5);
  m.histogram("t_h", {1.0}).observe(0.5);
  m.histogram("t_h", {1.0}).observe(3.0);

  // The registry keeps instruments across reset(), so earlier tests'
  // (zeroed) series may coexist — look keys up instead of counting.
  const MetricsSnapshot snap = m.snapshot();
  bool found_counter = false;
  for (const auto& [key, v] : snap.counters) {
    if (key == "t_c{k=\"v\"}") {
      found_counter = true;
      EXPECT_EQ(v, 3u);
    }
  }
  EXPECT_TRUE(found_counter);
  bool found_gauge = false;
  for (const auto& [key, v] : snap.gauges) {
    if (key == "t_g") {
      found_gauge = true;
      EXPECT_DOUBLE_EQ(v, 2.5);
    }
  }
  EXPECT_TRUE(found_gauge);
  bool found_hist = false;
  for (const auto& h : snap.histograms) {
    if (h.key == "t_h") {
      found_hist = true;
      EXPECT_EQ(h.count, 2u);
      EXPECT_DOUBLE_EQ(h.sum, 3.5);
    }
  }
  EXPECT_TRUE(found_hist);
}

// ---------------------------------------------------------------------------
// Time series.

struct SeriesGuard {
  SeriesGuard() {
    TimeSeries::instance().clear();
    TimeSeries::instance().set_enabled(true);
  }
  ~SeriesGuard() {
    TimeSeries::instance().set_enabled(false);
    TimeSeries::instance().clear();
  }
};

TEST(TimeSeriesTest, SamplesSnapshotTheRegistryAndExportJsonl) {
  ObsGuard obs_guard;
  SeriesGuard guard;
  auto& ts = TimeSeries::instance();
  auto& m = Metrics::instance();

  m.counter("ts_events").inc(10);
  ts.sample(1.0);
  m.counter("ts_events").inc(5);
  m.gauge("ts_depth").set(3.0);
  ts.sample(2.0);
  EXPECT_EQ(ts.sample_count(), 2u);

  const std::string jsonl = ts.to_jsonl();
  EXPECT_EQ(jsonl, ts.to_jsonl());  // pure function of state
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t nl = jsonl.find('\n'); nl != std::string::npos;
       nl = jsonl.find('\n', start)) {
    lines.push_back(jsonl.substr(start, nl - start));
    start = nl + 1;
  }
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(JsonChecker(line).valid()) << line;
  }
  // The first sample predates the gauge and the second increment.
  EXPECT_NE(lines[0].find("\"t\": 1"), std::string::npos);
  EXPECT_NE(lines[0].find("\"ts_events\": 10"), std::string::npos);
  EXPECT_EQ(lines[0].find("ts_depth"), std::string::npos);
  EXPECT_NE(lines[1].find("\"ts_events\": 15"), std::string::npos);
  EXPECT_NE(lines[1].find("\"ts_depth\": 3"), std::string::npos);
}

TEST(TimeSeriesTest, DisabledSamplesNothingAndWallSamplerIsNoop) {
  ObsGuard obs_guard;
  auto& ts = TimeSeries::instance();
  ts.clear();
  ts.set_enabled(false);
  ts.sample(1.0);
  EXPECT_EQ(ts.sample_count(), 0u);
  ts.start_wall_sampler();  // disabled: must not spawn a thread
  ts.stop_wall_sampler();   // and stopping an unstarted sampler is safe
  EXPECT_EQ(ts.sample_count(), 0u);
}

TEST(TimeSeriesTest, WallSamplerTakesStartAndStopSamples) {
  ObsGuard obs_guard;
  SeriesGuard guard;
  auto& ts = TimeSeries::instance();
  ts.set_interval(3600.0);  // no periodic ticks within the test
  ts.start_wall_sampler();
  ts.stop_wall_sampler();
  // One immediate sample on start, one closing sample on stop.
  EXPECT_EQ(ts.sample_count(), 2u);
}

// ---------------------------------------------------------------------------
// Journal: merge, path resolution, ordering.

struct JournalGuard {
  JournalGuard() {
    Journal::instance().clear();
    Journal::instance().set_enabled(true);
  }
  ~JournalGuard() {
    Journal::instance().set_enabled(false);
    Journal::instance().clear();
  }
};

TEST(JournalTest, MergesSedPhasesAndResolvesPath) {
  JournalGuard guard;
  auto& j = Journal::instance();
  j.note_edge("LA0", "MA1");
  j.note_edge("SeD00", "LA0");
  j.note_edge("SeDdirect", "MA1");  // registered straight under the MA

  // SED phases may arrive before or after the client's completion record;
  // file both orders across two requests.
  j.sed_phases(2, "SeD00", 10.0, 11.0, 20.0);

  RequestRecord r2;
  r2.trace_id = 2;
  r2.service = "double";
  r2.client = "client";
  r2.status = "ok";
  r2.submitted = 9.0;
  r2.found = 9.5;
  r2.completed = 21.0;
  j.complete(r2);

  RequestRecord r1;
  r1.trace_id = 1;
  r1.service = "double";
  r1.client = "client";
  r1.sed = "SeDdirect";
  r1.status = "ok";
  r1.submitted = 1.0;
  r1.found = 1.5;
  r1.completed = 8.0;
  j.complete(r1);
  j.sed_phases(1, "SeDdirect", 2.0, 3.0, 7.0);

  const auto records = j.records();
  ASSERT_EQ(records.size(), 2u);
  // Sorted by trace id even though trace 2 completed first.
  EXPECT_EQ(records[0].trace_id, 1u);
  EXPECT_EQ(records[1].trace_id, 2u);

  // Trace 1: direct SED under the MA — no LA level.
  EXPECT_EQ(records[0].ma, "MA1");
  EXPECT_EQ(records[0].la, "");
  EXPECT_EQ(records[0].sed, "SeDdirect");
  EXPECT_DOUBLE_EQ(records[0].exec_start, 3.0);

  // Trace 2: full 4-level path, SED name filled from the phase record.
  EXPECT_EQ(records[1].ma, "MA1");
  EXPECT_EQ(records[1].la, "LA0");
  EXPECT_EQ(records[1].sed, "SeD00");
  EXPECT_DOUBLE_EQ(records[1].arrived, 10.0);
  EXPECT_DOUBLE_EQ(records[1].exec_end, 20.0);
}

TEST(JournalTest, JsonlIsValidAndInsertionOrderIndependent) {
  JournalGuard guard;
  auto& j = Journal::instance();
  j.note_edge("LA0", "MA1");
  j.note_edge("SeD00", "LA0");

  auto file = [&](std::uint64_t id) {
    RequestRecord r;
    r.trace_id = id;
    r.service = "svc\"quoted\"";
    r.client = "client";
    r.status = "ok";
    r.submitted = 1.0;
    r.found = 2.0;
    r.completed = 30.0;
    j.complete(r);
    j.sed_phases(id, "SeD00", 3.0, 4.0, 29.0);
  };
  file(3);
  file(1);
  file(2);
  const std::string first = j.to_jsonl();

  j.clear();
  j.note_edge("SeD00", "LA0");  // edges in the other order too
  j.note_edge("LA0", "MA1");
  file(1);
  file(2);
  file(3);
  EXPECT_EQ(first, j.to_jsonl());

  std::size_t start = 0;
  for (std::size_t nl = first.find('\n'); nl != std::string::npos;
       nl = first.find('\n', start)) {
    EXPECT_TRUE(JsonChecker(first.substr(start, nl - start)).valid());
    start = nl + 1;
  }
}

TEST(Hierarchy, JournalRecordsCompletePhasedRequests) {
  ObsGuard obs_guard;
  JournalGuard guard;
  SimFixture fix;

  constexpr int kCalls = 4;
  int done = 0;
  for (int i = 0; i < kCalls; ++i) {
    fix.client.call_async(double_profile(i),
                          [&](const gc::Status& s, diet::Profile&) {
                            EXPECT_TRUE(s.is_ok());
                            ++done;
                          });
  }
  fix.engine.run();
  ASSERT_EQ(done, kCalls);

  const auto records = Journal::instance().records();
  ASSERT_EQ(records.size(), static_cast<std::size_t>(kCalls));
  for (const auto& r : records) {
    EXPECT_EQ(r.status, "ok");
    EXPECT_EQ(r.client, "client");
    EXPECT_EQ(r.ma, "MA1");
    EXPECT_TRUE(r.la == "LA0" || r.la == "LA1") << r.la;
    EXPECT_EQ(r.sed.rfind("SeD", 0), 0u) << r.sed;
    // Boundaries present and monotone: submitted <= found <= arrived <=
    // exec_start <= exec_end <= completed.
    const double b[] = {r.submitted,   r.found,    r.arrived,
                        r.exec_start, r.exec_end, r.completed};
    for (int i = 0; i < 6; ++i) EXPECT_GE(b[i], 0.0);
    for (int i = 1; i < 6; ++i) EXPECT_GE(b[i], b[i - 1]);
    // The modeled solve is 10 s.
    EXPECT_NEAR(r.exec_end - r.exec_start, 10.0, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// DES event tags: counts and virtual-time attribution.

TEST(EventTags, CountsAndTimeAttributionAreTracked) {
  des::Engine engine;
  int fired = 0;
  engine.schedule_after(1.0, [&] { ++fired; }, des::EventTag::kTimer);
  engine.schedule_after(3.0, [&] { ++fired; }, des::EventTag::kMessage);
  engine.schedule_after(3.5, [&] { ++fired; });  // default: kGeneric
  engine.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(engine.events_scheduled_by_tag(des::EventTag::kTimer), 1u);
  EXPECT_EQ(engine.events_executed_by_tag(des::EventTag::kTimer), 1u);
  EXPECT_EQ(engine.events_executed_by_tag(des::EventTag::kMessage), 1u);
  EXPECT_EQ(engine.events_executed_by_tag(des::EventTag::kGeneric), 1u);
  EXPECT_EQ(engine.events_executed_by_tag(des::EventTag::kSampler), 0u);
  // Clock advances: 0->1 into the timer, 1->3 into the message, 3->3.5
  // into the generic event; the per-tag times sum to now().
  EXPECT_DOUBLE_EQ(engine.time_advanced_by_tag(des::EventTag::kTimer), 1.0);
  EXPECT_DOUBLE_EQ(engine.time_advanced_by_tag(des::EventTag::kMessage), 2.0);
  EXPECT_DOUBLE_EQ(engine.time_advanced_by_tag(des::EventTag::kGeneric), 0.5);
  EXPECT_DOUBLE_EQ(engine.time_advanced_by_tag(des::EventTag::kTimer) +
                       engine.time_advanced_by_tag(des::EventTag::kMessage) +
                       engine.time_advanced_by_tag(des::EventTag::kGeneric),
                   engine.now());
}

TEST(EventTags, PublishedAsGaugesWhenMetricsOn) {
  ObsGuard guard;
  des::Engine engine;
  engine.schedule_after(2.0, [] {}, des::EventTag::kMessage);
  engine.run();
  engine.publish_tag_metrics();
  auto& m = Metrics::instance();
  EXPECT_DOUBLE_EQ(
      m.gauge("des_events_executed_by_tag", {{"tag", "message"}}).value(),
      1.0);
  EXPECT_DOUBLE_EQ(
      m.gauge("des_time_advanced_seconds_by_tag", {{"tag", "message"}})
          .value(),
      2.0);
  EXPECT_DOUBLE_EQ(
      m.gauge("des_events_executed_by_tag", {{"tag", "execute"}}).value(),
      0.0);
}

}  // namespace
}  // namespace gc::obs
