// Tests for the FFT, quadrature/ODE helpers and the 3D grid.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "math/fft.hpp"
#include "math/grid3.hpp"
#include "math/integrate.hpp"

namespace gc::math {
namespace {

class FftRoundtrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundtrip, InverseRecovers) {
  const std::size_t n = GetParam();
  Rng rng(n);
  std::vector<Complex> data(n);
  for (auto& v : data) v = {rng.normal(), rng.normal()};
  const std::vector<Complex> original = data;
  fft(data, false);
  fft(data, true);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundtrip,
                         ::testing::Values(1, 2, 4, 8, 64, 256, 1024));

TEST(Fft, DeltaFunctionIsFlat) {
  std::vector<Complex> data(16, Complex(0.0, 0.0));
  data[0] = Complex(1.0, 0.0);
  fft(data, false);
  for (const Complex& v : data) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleModeLandsInOneBin) {
  const std::size_t n = 64;
  std::vector<Complex> data(n);
  const int k = 5;
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = Complex(std::cos(2.0 * M_PI * k * static_cast<double>(i) / n),
                      0.0);
  }
  fft(data, false);
  // cos -> two symmetric spikes at k and n-k of height n/2.
  for (std::size_t i = 0; i < n; ++i) {
    const double expected =
        (i == static_cast<std::size_t>(k) || i == n - k) ? n / 2.0 : 0.0;
    EXPECT_NEAR(std::abs(data[i]), expected, 1e-9) << "bin " << i;
  }
}

TEST(Fft, ParsevalHolds) {
  const std::size_t n = 256;
  Rng rng(3);
  std::vector<Complex> data(n);
  double time_energy = 0.0;
  for (auto& v : data) {
    v = {rng.normal(), rng.normal()};
    time_energy += std::norm(v);
  }
  fft(data, false);
  double freq_energy = 0.0;
  for (const auto& v : data) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, time_energy * n, time_energy * n * 1e-12);
}

TEST(Fft, Linearity) {
  const std::size_t n = 32;
  Rng rng(4);
  std::vector<Complex> a(n);
  std::vector<Complex> b(n);
  std::vector<Complex> sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = {rng.normal(), 0.0};
    b[i] = {rng.normal(), 0.0};
    sum[i] = a[i] + 2.0 * b[i];
  }
  fft(a, false);
  fft(b, false);
  fft(sum, false);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(sum[i] - (a[i] + 2.0 * b[i])), 0.0, 1e-9);
  }
}

TEST(Fft3, RoundtripCube) {
  const std::size_t n = 8;
  Rng rng(5);
  std::vector<Complex> data(n * n * n);
  for (auto& v : data) v = {rng.normal(), 0.0};
  const auto original = data;
  fft3(data, n, false);
  fft3(data, n, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-10);
  }
}

TEST(Fft3, RoundtripNonCubic) {
  const std::size_t n0 = 4;
  const std::size_t n1 = 8;
  const std::size_t n2 = 2;
  Rng rng(6);
  std::vector<Complex> data(n0 * n1 * n2);
  for (auto& v : data) v = {rng.normal(), rng.normal()};
  const auto original = data;
  fft3(data, n0, n1, n2, false);
  fft3(data, n0, n1, n2, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(std::abs(data[i] - original[i]), 0.0, 1e-10);
  }
}

TEST(Fft3, PlaneWaveSingleBin) {
  const std::size_t n = 8;
  std::vector<Complex> data(n * n * n);
  // exp(i 2 pi (2 x / n)) -> spike at (2, 0, 0).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        const double phase = 2.0 * M_PI * 2.0 * static_cast<double>(i) / n;
        data[(i * n + j) * n + k] = Complex(std::cos(phase), std::sin(phase));
      }
    }
  }
  fft3(data, n, false);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        const double expected = (i == 2 && j == 0 && k == 0)
                                    ? static_cast<double>(n * n * n)
                                    : 0.0;
        EXPECT_NEAR(std::abs(data[(i * n + j) * n + k]), expected, 1e-8);
      }
    }
  }
}

TEST(Fft, FreqIndexConvention) {
  EXPECT_EQ(freq_index(0, 8), 0);
  EXPECT_EQ(freq_index(3, 8), 3);
  EXPECT_EQ(freq_index(4, 8), 4);   // Nyquist stays positive
  EXPECT_EQ(freq_index(5, 8), -3);
  EXPECT_EQ(freq_index(7, 8), -1);
}

TEST(Fft, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
}

// ---------- integrate ----------

TEST(Integrate, SimpsonPolynomialExact) {
  // Simpson integrates cubics exactly.
  const double integral =
      simpson([](double x) { return x * x * x - 2.0 * x + 1.0; }, 0.0, 2.0, 2);
  EXPECT_NEAR(integral, 4.0 - 4.0 + 2.0, 1e-12);
}

TEST(Integrate, SimpsonTranscendental) {
  const double integral = simpson([](double x) { return std::sin(x); }, 0.0,
                                  M_PI, 128);
  EXPECT_NEAR(integral, 2.0, 1e-8);
}

TEST(Integrate, Rk4Exponential) {
  // y' = y, y(0) = 1 -> y(1) = e.
  const double y = rk4([](double, double y) { return y; }, 0.0, 1.0, 1.0, 64);
  EXPECT_NEAR(y, M_E, 1e-8);
}

TEST(Integrate, Rk4System) {
  // Harmonic oscillator: a' = b, b' = -a; (1, 0) at t=0 -> (cos t, -sin t).
  const Vec2 y = rk4_2(
      [](double, const Vec2& v) {
        return Vec2{v.b, -v.a};
      },
      0.0, Vec2{1.0, 0.0}, M_PI / 2.0, 256);
  EXPECT_NEAR(y.a, 0.0, 1e-8);
  EXPECT_NEAR(y.b, -1.0, 1e-8);
}

// ---------- grid3 ----------

TEST(Grid3, BasicIndexing) {
  Grid3<int> grid(4);
  grid.at(1, 2, 3) = 42;
  EXPECT_EQ(grid.at(1, 2, 3), 42);
  EXPECT_EQ(grid.size(), 64u);
}

TEST(Grid3, PeriodicWrap) {
  Grid3<int> grid(4);
  grid.at(0, 0, 0) = 7;
  EXPECT_EQ(grid.atp(4, 4, 4), 7);
  EXPECT_EQ(grid.atp(-4, 0, 0), 7);
  EXPECT_EQ(grid.atp(-1, -1, -1), grid.at(3, 3, 3));
  EXPECT_EQ(grid.atp(8, -8, 12), 7);
}

TEST(Grid3, FillAndSum) {
  Grid3<double> grid(3, 2.0);
  EXPECT_DOUBLE_EQ(grid.sum(), 54.0);
  grid.fill(0.5);
  EXPECT_DOUBLE_EQ(grid.sum(), 13.5);
}

}  // namespace
}  // namespace gc::math
