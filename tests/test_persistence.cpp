// Tests for persistent data management (DIET's DTM): the DataManager LRU
// store and the client <-> SED reference protocol end to end.
#include <gtest/gtest.h>

#include "des/engine.hpp"
#include "diet/client.hpp"
#include "diet/datamgr.hpp"
#include "diet/deployment.hpp"
#include "naming/registry.hpp"
#include "net/simenv.hpp"

namespace gc::diet {
namespace {

ArgValue vector_value(std::size_t n, double fill, Persistence mode) {
  ArgValue value;
  std::vector<double> data(n, fill);
  EXPECT_TRUE(
      value.set_vector<double>(data, BaseType::kDouble, mode).is_ok());
  value.set_data_id(value.content_id());
  return value;
}

// ---------- ArgValue reference mechanics ----------

TEST(ArgValueRef, ContentIdIsStableAndDiscriminating) {
  const ArgValue a = vector_value(8, 1.0, Persistence::kPersistent);
  const ArgValue b = vector_value(8, 1.0, Persistence::kPersistent);
  const ArgValue c = vector_value(8, 2.0, Persistence::kPersistent);
  EXPECT_EQ(a.content_id(), b.content_id());
  EXPECT_NE(a.content_id(), c.content_id());
}

TEST(ArgValueRef, MakeReferenceDropsPayload) {
  ArgValue value = vector_value(1000, 3.0, Persistence::kPersistent);
  const std::int64_t full = value.wire_bytes();
  EXPECT_EQ(full, 8000);
  value.make_reference();
  EXPECT_TRUE(value.is_reference());
  EXPECT_TRUE(value.has_value());
  EXPECT_LT(value.wire_bytes(), 64);
}

TEST(ArgValueRef, SerializeRoundtripKeepsReferenceBit) {
  ArgValue value = vector_value(16, 1.5, Persistence::kSticky);
  value.make_reference();
  net::Writer w;
  value.serialize_value(w);
  net::Reader r(w.data());
  ArgValue back;
  back.deserialize_value(r);
  EXPECT_TRUE(back.is_reference());
  EXPECT_EQ(back.data_id(), value.data_id());
  EXPECT_EQ(back.desc.persistence, Persistence::kSticky);
}

TEST(ArgValueRef, MaterializeRestoresPayload) {
  const ArgValue stored = vector_value(16, 2.5, Persistence::kPersistent);
  ArgValue reference = stored;
  reference.make_reference();
  reference.materialize_from(stored);
  EXPECT_FALSE(reference.is_reference());
  auto data = reference.get_vector<double>();
  ASSERT_TRUE(data.is_ok());
  EXPECT_EQ(data.value().size(), 16u);
  EXPECT_DOUBLE_EQ(data.value()[3], 2.5);
  EXPECT_EQ(reference.data_id(), stored.data_id());
}

// ---------- DataManager ----------

TEST(DataManager, StoreLookupErase) {
  DataManager manager;
  const ArgValue value = vector_value(10, 1.0, Persistence::kPersistent);
  manager.store(value);
  EXPECT_EQ(manager.count(), 1u);
  EXPECT_EQ(manager.bytes(), 80);
  const ArgValue* found = manager.lookup(value.data_id());
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->wire_bytes(), 80);
  EXPECT_EQ(manager.hits(), 1u);
  EXPECT_EQ(manager.lookup("nope"), nullptr);
  EXPECT_EQ(manager.misses(), 1u);
  EXPECT_TRUE(manager.erase(value.data_id()));
  EXPECT_FALSE(manager.erase(value.data_id()));
  EXPECT_EQ(manager.bytes(), 0);
}

TEST(DataManager, IgnoresUnnamedAndReferences) {
  DataManager manager;
  ArgValue unnamed;
  (void)unnamed.set_string("x", Persistence::kPersistent);
  manager.store(unnamed);  // no data id
  EXPECT_EQ(manager.count(), 0u);
  ArgValue reference = vector_value(4, 1.0, Persistence::kPersistent);
  reference.make_reference();
  manager.store(reference);
  EXPECT_EQ(manager.count(), 0u);
}

TEST(DataManager, RestoreRefreshesBytes) {
  DataManager manager;
  ArgValue value = vector_value(10, 1.0, Persistence::kPersistent);
  manager.store(value);
  manager.store(value);  // idempotent
  EXPECT_EQ(manager.count(), 1u);
  EXPECT_EQ(manager.bytes(), 80);
}

TEST(DataManager, LruEviction) {
  DataManager manager(/*max_bytes=*/200);
  const ArgValue a = vector_value(10, 1.0, Persistence::kPersistent);  // 80 B
  const ArgValue b = vector_value(10, 2.0, Persistence::kPersistent);
  const ArgValue c = vector_value(10, 3.0, Persistence::kPersistent);
  manager.store(a);
  manager.store(b);
  EXPECT_EQ(manager.count(), 2u);
  // Touch a so b becomes the LRU victim.
  EXPECT_NE(manager.lookup(a.data_id()), nullptr);
  manager.store(c);  // 240 B > 200 -> evict b
  EXPECT_EQ(manager.evictions(), 1u);
  EXPECT_NE(manager.lookup(a.data_id()), nullptr);
  EXPECT_EQ(manager.lookup(b.data_id()), nullptr);
  EXPECT_NE(manager.lookup(c.data_id()), nullptr);
}

// ---------- end to end over the middleware ----------

/// Service with one persistent vector IN argument; OUT = its sum.
ProfileDesc sum_desc() {
  ProfileDesc desc("sum", 0, 0, 1);
  desc.arg(0).type = DataType::kVector;
  desc.arg(0).base = BaseType::kDouble;
  desc.arg(1).type = DataType::kScalar;
  desc.arg(1).base = BaseType::kDouble;
  return desc;
}

struct PersistFixture {
  explicit PersistFixture(std::int64_t store_bytes = 0)
      : topology(1e-3, 1e6 /* slow link: payload size matters */),
        env(engine, topology) {
    SolveFn solve = [](ServiceContext& ctx) {
      ctx.compute(
          1.0,
          [&ctx]() {
            auto data = ctx.profile().arg(0).get_vector<double>();
            if (!data.is_ok()) return 1;
            double sum = 0.0;
            for (const double v : data.value()) sum += v;
            ctx.profile().arg(1).set_scalar<double>(
                sum, BaseType::kDouble, Persistence::kVolatile);
            return 0;
          },
          [&ctx](int rc) { ctx.finish(rc); });
    };
    GC_CHECK(services.add(sum_desc(), std::move(solve)).is_ok());

    DeploymentSpec spec;
    spec.ma_node = 0;
    spec.sed_tuning.data_store_max_bytes = store_bytes;
    DeploymentSpec::LaSpec la;
    la.name = "LA";
    la.node = 1;
    DeploymentSpec::SedSpec sed;
    sed.name = "SeD";
    sed.node = 2;
    la.sed_indexes.push_back(0);
    spec.seds.push_back(sed);
    spec.las.push_back(la);
    deployment = std::make_unique<Deployment>(env, registry, services, spec);
    env.attach(client, 0);
    client.connect(registry.resolve("MA1").value());
    engine.run_until(engine.now() + 1.0);
  }

  double call_sum(const std::vector<double>& data, Persistence mode) {
    Profile profile("sum", 0, 0, 1);
    profile.arg(0).set_vector<double>(data, BaseType::kDouble, mode);
    profile.arg(1).desc.type = DataType::kScalar;
    profile.arg(1).desc.base = BaseType::kDouble;
    double sum = -1.0;
    bool ok = false;
    client.call_async(std::move(profile),
                      [&](const gc::Status& status, Profile& result) {
                        ok = status.is_ok();
                        if (ok) {
                          sum = result.arg(1).get_scalar<double>().value();
                        }
                      });
    engine.run();
    EXPECT_TRUE(ok);
    return sum;
  }

  des::Engine engine;
  net::UniformTopology topology;
  net::SimEnv env;
  naming::Registry registry;
  ServiceTable services;
  std::unique_ptr<Deployment> deployment;
  Client client{"client"};
};

TEST(Persistence, SecondCallShipsReferenceOnly) {
  PersistFixture fix;
  const std::vector<double> data(20000, 0.5);  // 160 KB payload

  EXPECT_DOUBLE_EQ(fix.call_sum(data, Persistence::kPersistent), 10000.0);
  const std::int64_t after_first = fix.env.bytes_sent();
  EXPECT_DOUBLE_EQ(fix.call_sum(data, Persistence::kPersistent), 10000.0);
  const std::int64_t second_call = fix.env.bytes_sent() - after_first;

  // The second call must not re-ship the 160 KB payload.
  EXPECT_LT(second_call, 4096);
  EXPECT_EQ(fix.deployment->sed(0).data_manager().count(), 1u);
  EXPECT_EQ(fix.deployment->sed(0).data_manager().hits(), 1u);
}

TEST(Persistence, VolatileAlwaysShipsFullData) {
  PersistFixture fix;
  const std::vector<double> data(20000, 0.5);
  EXPECT_DOUBLE_EQ(fix.call_sum(data, Persistence::kVolatile), 10000.0);
  const std::int64_t after_first = fix.env.bytes_sent();
  EXPECT_DOUBLE_EQ(fix.call_sum(data, Persistence::kVolatile), 10000.0);
  const std::int64_t second_call = fix.env.bytes_sent() - after_first;
  EXPECT_GT(second_call, 160000);
  EXPECT_EQ(fix.deployment->sed(0).data_manager().count(), 0u);
}

TEST(Persistence, EvictionTriggersTransparentResend) {
  // Store fits only one value: the second datum evicts the first; re-using
  // the first then misses and the client resends transparently.
  PersistFixture fix(/*store_bytes=*/200000);
  const std::vector<double> first(20000, 1.0);
  const std::vector<double> second(20000, 2.0);

  EXPECT_DOUBLE_EQ(fix.call_sum(first, Persistence::kPersistent), 20000.0);
  EXPECT_DOUBLE_EQ(fix.call_sum(second, Persistence::kPersistent), 40000.0);
  EXPECT_EQ(fix.deployment->sed(0).data_manager().evictions(), 1u);
  // First datum evicted -> reference misses -> client resends -> correct
  // answer anyway.
  EXPECT_DOUBLE_EQ(fix.call_sum(first, Persistence::kPersistent), 20000.0);
  EXPECT_EQ(fix.deployment->sed(0).data_manager().misses(), 1u);
}

TEST(Persistence, DistinctDataGetDistinctIds) {
  PersistFixture fix;
  EXPECT_DOUBLE_EQ(
      fix.call_sum(std::vector<double>(100, 1.0), Persistence::kPersistent),
      100.0);
  EXPECT_DOUBLE_EQ(
      fix.call_sum(std::vector<double>(100, 2.0), Persistence::kPersistent),
      200.0);
  EXPECT_EQ(fix.deployment->sed(0).data_manager().count(), 2u);
}

}  // namespace
}  // namespace gc::diet
