// Tests for persistent data management (DIET's DTM/DAGDA): the dtm blob
// store and replica catalog, the client <-> SED reference protocol, the
// hierarchy catalog's consistency properties, and peer-to-peer healing
// after replica loss.
#include <gtest/gtest.h>

#include "des/engine.hpp"
#include "diet/client.hpp"
#include "diet/deployment.hpp"
#include "dtm/catalog.hpp"
#include "dtm/datamgr.hpp"
#include "naming/registry.hpp"
#include "net/simenv.hpp"
#include "sched/policy.hpp"

namespace gc::diet {
namespace {

ArgValue vector_value(std::size_t n, double fill, Persistence mode) {
  ArgValue value;
  std::vector<double> data(n, fill);
  EXPECT_TRUE(
      value.set_vector<double>(data, BaseType::kDouble, mode).is_ok());
  value.set_data_id(value.content_id());
  return value;
}

/// The serialized form a SED would store for an argument.
dtm::Blob blob_of(const ArgValue& value) {
  net::Writer w;
  value.serialize_value(w);
  return dtm::Blob{w.take(), value.wire_bytes()};
}

// ---------- ArgValue reference mechanics ----------

TEST(ArgValueRef, ContentIdIsStableAndDiscriminating) {
  const ArgValue a = vector_value(8, 1.0, Persistence::kPersistent);
  const ArgValue b = vector_value(8, 1.0, Persistence::kPersistent);
  const ArgValue c = vector_value(8, 2.0, Persistence::kPersistent);
  EXPECT_EQ(a.content_id(), b.content_id());
  EXPECT_NE(a.content_id(), c.content_id());
}

TEST(ArgValueRef, MakeReferenceDropsPayload) {
  ArgValue value = vector_value(1000, 3.0, Persistence::kPersistent);
  const std::int64_t full = value.wire_bytes();
  EXPECT_EQ(full, 8000);
  value.make_reference();
  EXPECT_TRUE(value.is_reference());
  EXPECT_TRUE(value.has_value());
  EXPECT_LT(value.wire_bytes(), 64);
}

TEST(ArgValueRef, SerializeRoundtripKeepsReferenceBit) {
  ArgValue value = vector_value(16, 1.5, Persistence::kSticky);
  value.make_reference();
  net::Writer w;
  value.serialize_value(w);
  net::Reader r(w.data());
  ArgValue back;
  back.deserialize_value(r);
  EXPECT_TRUE(back.is_reference());
  EXPECT_EQ(back.data_id(), value.data_id());
  EXPECT_EQ(back.desc.persistence, Persistence::kSticky);
}

TEST(ArgValueRef, MaterializeRestoresPayload) {
  const ArgValue stored = vector_value(16, 2.5, Persistence::kPersistent);
  ArgValue reference = stored;
  reference.make_reference();
  reference.materialize_from(stored);
  EXPECT_FALSE(reference.is_reference());
  auto data = reference.get_vector<double>();
  ASSERT_TRUE(data.is_ok());
  EXPECT_EQ(data.value().size(), 16u);
  EXPECT_DOUBLE_EQ(data.value()[3], 2.5);
  EXPECT_EQ(reference.data_id(), stored.data_id());
}

// ---------- dtm::DataManager (the blob store) ----------

TEST(DataManager, StoreLookupErase) {
  dtm::DataManager manager;
  const ArgValue value = vector_value(10, 1.0, Persistence::kPersistent);
  EXPECT_TRUE(manager.store(value.data_id(), blob_of(value)));
  EXPECT_EQ(manager.count(), 1u);
  EXPECT_EQ(manager.bytes(), 80);
  const dtm::Blob* found = manager.lookup(value.data_id());
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->charged_bytes, 80);
  EXPECT_EQ(manager.hits(), 1u);
  EXPECT_EQ(manager.lookup("nope"), nullptr);
  EXPECT_EQ(manager.misses(), 1u);
  EXPECT_TRUE(manager.erase(value.data_id()));
  EXPECT_FALSE(manager.erase(value.data_id()));
  EXPECT_EQ(manager.bytes(), 0);
}

TEST(DataManager, RefreshIsNotAFreshStore) {
  dtm::DataManager manager;
  const ArgValue value = vector_value(10, 1.0, Persistence::kPersistent);
  EXPECT_TRUE(manager.store(value.data_id(), blob_of(value)));
  // A refresh keeps one entry and reports not-fresh, so the owner does
  // not re-register the id in the catalog.
  EXPECT_FALSE(manager.store(value.data_id(), blob_of(value)));
  EXPECT_EQ(manager.count(), 1u);
  EXPECT_EQ(manager.bytes(), 80);
}

TEST(DataManager, LruEviction) {
  dtm::DataManager manager(/*max_bytes=*/200);
  const ArgValue a = vector_value(10, 1.0, Persistence::kPersistent);  // 80 B
  const ArgValue b = vector_value(10, 2.0, Persistence::kPersistent);
  const ArgValue c = vector_value(10, 3.0, Persistence::kPersistent);
  std::vector<std::string> evicted;
  manager.set_eviction_listener(
      [&evicted](const std::string& id, std::int64_t) {
        evicted.push_back(id);
      });
  manager.store(a.data_id(), blob_of(a));
  manager.store(b.data_id(), blob_of(b));
  EXPECT_EQ(manager.count(), 2u);
  // Touch a so b becomes the LRU victim.
  EXPECT_NE(manager.lookup(a.data_id()), nullptr);
  manager.store(c.data_id(), blob_of(c));  // 240 B > 200 -> evict b
  EXPECT_EQ(manager.evictions(), 1u);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], b.data_id());
  EXPECT_NE(manager.lookup(a.data_id()), nullptr);
  EXPECT_EQ(manager.lookup(b.data_id()), nullptr);
  EXPECT_NE(manager.lookup(c.data_id()), nullptr);
}

TEST(DataManager, EvictionPrefersReplicatedEntries) {
  dtm::DataManager manager(/*max_bytes=*/200);
  const ArgValue a = vector_value(10, 1.0, Persistence::kPersistent);
  const ArgValue b = vector_value(10, 2.0, Persistence::kPersistent);
  const ArgValue c = vector_value(10, 3.0, Persistence::kPersistent);
  manager.store(a.data_id(), blob_of(a));
  manager.store(b.data_id(), blob_of(b));
  // a is the LRU victim, but b has a replica elsewhere: a peer can serve
  // b back, so b goes first.
  manager.set_replica_hint(b.data_id(), 1);
  manager.store(c.data_id(), blob_of(c));
  EXPECT_NE(manager.lookup(a.data_id()), nullptr);
  EXPECT_EQ(manager.lookup(b.data_id()), nullptr);
}

// ---------- mct-data policy ----------

TEST(MctDataPolicy, PrefersTheDataHolder) {
  auto policy = sched::make_policy("mct-data");
  ASSERT_NE(policy, nullptr);
  EXPECT_EQ(policy->name(), "mct-data");
  // Two otherwise-equal SEDs; moving the data to #2 costs 50 s.
  sched::Candidate holder;
  holder.sed_uid = 1;
  holder.est.service_comp_s = 100.0;
  sched::Candidate mover;
  mover.sed_uid = 2;
  mover.est.service_comp_s = 100.0;
  mover.est.data_bytes_to_move = 6.25e9;
  mover.est.data_xfer_s = 50.0;
  std::vector<sched::Candidate> candidates{mover, holder};
  Rng rng(1);
  policy->rank(candidates, sched::RequestContext{}, rng);
  EXPECT_EQ(candidates[0].sed_uid, 1u);
  // A big enough compute gap still outweighs locality.
  candidates[0].est.service_comp_s = 1000.0;
  policy->rank(candidates, sched::RequestContext{}, rng);
  EXPECT_EQ(candidates[0].sed_uid, 2u);
}

// ---------- end to end over the middleware ----------

/// Service with one persistent vector IN argument; OUT = its sum.
ProfileDesc sum_desc() {
  ProfileDesc desc("sum", 0, 0, 1);
  desc.arg(0).type = DataType::kVector;
  desc.arg(0).base = BaseType::kDouble;
  desc.arg(1).type = DataType::kScalar;
  desc.arg(1).base = BaseType::kDouble;
  return desc;
}

struct FixtureOptions {
  std::int64_t store_bytes = 0;
  int sed_count = 1;
  int replication_factor = 1;
  std::string policy = "default";
};

struct PersistFixture {
  explicit PersistFixture(FixtureOptions options = {})
      : topology(1e-3, 1e6 /* slow link: payload size matters */),
        env(engine, topology) {
    SolveFn solve = [](ServiceContext& ctx) {
      ctx.compute(
          1.0,
          [&ctx]() {
            auto data = ctx.profile().arg(0).get_vector<double>();
            if (!data.is_ok()) return 1;
            double sum = 0.0;
            for (const double v : data.value()) sum += v;
            ctx.profile().arg(1).set_scalar<double>(
                sum, BaseType::kDouble, Persistence::kVolatile);
            return 0;
          },
          [&ctx](int rc) { ctx.finish(rc); });
    };
    GC_CHECK(services.add(sum_desc(), std::move(solve)).is_ok());

    DeploymentSpec spec;
    spec.ma_node = 0;
    spec.policy = options.policy;
    spec.sed_tuning.data_store_max_bytes = options.store_bytes;
    spec.sed_tuning.replication_factor = options.replication_factor;
    DeploymentSpec::LaSpec la;
    la.name = "LA";
    la.node = 1;
    for (int i = 0; i < options.sed_count; ++i) {
      DeploymentSpec::SedSpec sed;
      sed.name = "SeD" + std::to_string(i);
      sed.node = static_cast<net::NodeId>(2 + i);
      // Strictly decreasing power: under --policy fastest the first SED
      // wins every placement, which the P2P tests rely on.
      sed.host_power = 4.0 - i;
      la.sed_indexes.push_back(i);
      spec.seds.push_back(sed);
    }
    spec.las.push_back(la);
    deployment = std::make_unique<Deployment>(env, registry, services, spec);
    env.attach(client, 0);
    client.connect(registry.resolve("MA1").value());
    engine.run_until(engine.now() + 1.0);
  }

  double call_sum(const std::vector<double>& data, Persistence mode) {
    Profile profile("sum", 0, 0, 1);
    profile.arg(0).set_vector<double>(data, BaseType::kDouble, mode);
    profile.arg(1).desc.type = DataType::kScalar;
    profile.arg(1).desc.base = BaseType::kDouble;
    double sum = -1.0;
    bool ok = false;
    client.call_async(std::move(profile),
                      [&](const gc::Status& status, Profile& result) {
                        ok = status.is_ok();
                        if (ok) {
                          sum = result.arg(1).get_scalar<double>().value();
                        }
                      });
    engine.run();
    EXPECT_TRUE(ok);
    return sum;
  }

  /// Catalog-consistency property: every replica the hierarchy believes
  /// in is resolvable — the recorded SED exists, is alive, and actually
  /// holds the blob. Checked at the MA and at every LA.
  void expect_catalog_resolvable() {
    std::vector<const dtm::ReplicaCatalog*> catalogs;
    catalogs.push_back(&deployment->ma().catalog());
    for (std::size_t i = 0; i < deployment->la_count(); ++i) {
      catalogs.push_back(&deployment->la(i).catalog());
    }
    for (const dtm::ReplicaCatalog* catalog : catalogs) {
      for (const std::string& id : catalog->ids()) {
        const auto* replicas = catalog->locate(id);
        ASSERT_NE(replicas, nullptr);
        for (const auto& [uid, info] : *replicas) {
          Sed* sed = deployment->sed_by_uid(uid);
          ASSERT_NE(sed, nullptr) << "catalog points at unknown SED " << uid;
          EXPECT_FALSE(sed->failed());
          EXPECT_TRUE(sed->data_manager().contains(id))
              << "catalog entry " << id << " not resident on SED " << uid;
        }
      }
    }
  }

  des::Engine engine;
  net::UniformTopology topology;
  net::SimEnv env;
  naming::Registry registry;
  ServiceTable services;
  std::unique_ptr<Deployment> deployment;
  Client client{"client"};
};

TEST(Persistence, SecondCallShipsReferenceOnly) {
  PersistFixture fix;
  const std::vector<double> data(20000, 0.5);  // 160 KB payload

  EXPECT_DOUBLE_EQ(fix.call_sum(data, Persistence::kPersistent), 10000.0);
  const std::int64_t after_first = fix.env.bytes_sent();
  EXPECT_DOUBLE_EQ(fix.call_sum(data, Persistence::kPersistent), 10000.0);
  const std::int64_t second_call = fix.env.bytes_sent() - after_first;

  // The second call must not re-ship the 160 KB payload.
  EXPECT_LT(second_call, 4096);
  EXPECT_EQ(fix.deployment->sed(0).data_manager().count(), 1u);
  EXPECT_EQ(fix.deployment->sed(0).data_manager().hits(), 1u);
}

TEST(Persistence, VolatileAlwaysShipsFullData) {
  PersistFixture fix;
  const std::vector<double> data(20000, 0.5);
  EXPECT_DOUBLE_EQ(fix.call_sum(data, Persistence::kVolatile), 10000.0);
  const std::int64_t after_first = fix.env.bytes_sent();
  EXPECT_DOUBLE_EQ(fix.call_sum(data, Persistence::kVolatile), 10000.0);
  const std::int64_t second_call = fix.env.bytes_sent() - after_first;
  EXPECT_GT(second_call, 160000);
  EXPECT_EQ(fix.deployment->sed(0).data_manager().count(), 0u);
}

TEST(Persistence, EvictionTriggersTransparentResend) {
  // Store fits only one value: the second datum evicts the first; re-using
  // the first then misses, the locate comes back empty (no surviving
  // replica anywhere), and the client resends transparently.
  FixtureOptions options;
  options.store_bytes = 200000;
  PersistFixture fix(options);
  const std::vector<double> first(20000, 1.0);
  const std::vector<double> second(20000, 2.0);

  EXPECT_DOUBLE_EQ(fix.call_sum(first, Persistence::kPersistent), 20000.0);
  EXPECT_DOUBLE_EQ(fix.call_sum(second, Persistence::kPersistent), 40000.0);
  EXPECT_EQ(fix.deployment->sed(0).data_manager().evictions(), 1u);
  // First datum evicted -> reference misses -> client resends -> correct
  // answer anyway.
  EXPECT_DOUBLE_EQ(fix.call_sum(first, Persistence::kPersistent), 20000.0);
  EXPECT_EQ(fix.deployment->sed(0).data_manager().misses(), 1u);
}

TEST(Persistence, DistinctDataGetDistinctIds) {
  PersistFixture fix;
  EXPECT_DOUBLE_EQ(
      fix.call_sum(std::vector<double>(100, 1.0), Persistence::kPersistent),
      100.0);
  EXPECT_DOUBLE_EQ(
      fix.call_sum(std::vector<double>(100, 2.0), Persistence::kPersistent),
      200.0);
  EXPECT_EQ(fix.deployment->sed(0).data_manager().count(), 2u);
}

// ---------- hierarchy catalog properties ----------

TEST(Catalog, RegistrationAggregatesUpTheHierarchy) {
  PersistFixture fix;
  const std::vector<double> data(1000, 1.0);
  EXPECT_DOUBLE_EQ(fix.call_sum(data, Persistence::kPersistent), 1000.0);

  // The id is in the LA's catalog and the MA's, attributed to SED uid 1.
  EXPECT_EQ(fix.deployment->ma().catalog().entry_count(), 1u);
  EXPECT_EQ(fix.deployment->la(0).catalog().entry_count(), 1u);
  const std::vector<std::string> ids = fix.deployment->ma().catalog().ids();
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_TRUE(fix.deployment->ma().catalog().holds(ids[0], 1));
  fix.expect_catalog_resolvable();
}

TEST(Catalog, NoStaleEntriesAfterEviction) {
  FixtureOptions options;
  options.store_bytes = 200000;
  PersistFixture fix(options);
  EXPECT_DOUBLE_EQ(
      fix.call_sum(std::vector<double>(20000, 1.0), Persistence::kPersistent),
      20000.0);
  EXPECT_DOUBLE_EQ(
      fix.call_sum(std::vector<double>(20000, 2.0), Persistence::kPersistent),
      40000.0);
  fix.engine.run();
  // The evicted id unregistered itself all the way up: one entry left,
  // and everything still recorded is resident.
  EXPECT_EQ(fix.deployment->ma().catalog().entry_count(), 1u);
  EXPECT_EQ(fix.deployment->la(0).catalog().entry_count(), 1u);
  fix.expect_catalog_resolvable();
}

TEST(Catalog, WriteReplicationCopiesToPeers) {
  FixtureOptions options;
  options.sed_count = 2;
  options.replication_factor = 2;
  options.policy = "fastest";
  PersistFixture fix(options);
  const std::vector<double> data(20000, 0.5);
  EXPECT_DOUBLE_EQ(fix.call_sum(data, Persistence::kPersistent), 10000.0);
  fix.engine.run();  // let the replication pull complete

  // The LA fanned the fresh registration out: both SEDs hold the blob,
  // the catalogs record two replicas, and all of them resolve.
  EXPECT_EQ(fix.deployment->sed(0).data_manager().count(), 1u);
  EXPECT_EQ(fix.deployment->sed(1).data_manager().count(), 1u);
  EXPECT_EQ(fix.deployment->ma().catalog().replica_count(), 2u);
  EXPECT_EQ(fix.deployment->la(0).catalog().replica_count(), 2u);
  fix.expect_catalog_resolvable();
}

TEST(Catalog, CrashedSedReplicasAreDropped) {
  FixtureOptions options;
  options.sed_count = 2;
  options.replication_factor = 2;
  options.policy = "fastest";
  PersistFixture fix(options);
  EXPECT_DOUBLE_EQ(
      fix.call_sum(std::vector<double>(20000, 0.5), Persistence::kPersistent),
      10000.0);
  fix.engine.run();
  EXPECT_EQ(fix.deployment->ma().catalog().replica_count(), 2u);

  // Restart SED 0 (its store dies with it). Re-registration tells the LA,
  // which drops every replica the old incarnation held and propagates the
  // unregistration to the MA.
  fix.deployment->sed(0).fail();
  fix.deployment->sed(0).restart();
  fix.engine.run();
  EXPECT_EQ(fix.deployment->sed(0).data_manager().count(), 0u);
  EXPECT_EQ(fix.deployment->ma().catalog().replica_count(), 1u);
  EXPECT_FALSE(fix.deployment->ma().catalog().holds(
      fix.deployment->ma().catalog().ids()[0], 1));
  fix.expect_catalog_resolvable();
}

// ---------- chaos: replica loss heals peer-to-peer ----------

TEST(Chaos, ReplicaLossHealsViaPeerFetch) {
  FixtureOptions options;
  options.sed_count = 2;
  options.replication_factor = 2;
  options.policy = "fastest";
  PersistFixture fix(options);
  const std::vector<double> data(20000, 0.5);  // 160 KB payload
  const net::NodeId client_node = 0;
  const net::NodeId sed0_node = 2;
  const net::NodeId sed1_node = 3;

  EXPECT_DOUBLE_EQ(fix.call_sum(data, Persistence::kPersistent), 10000.0);
  fix.engine.run();
  EXPECT_EQ(fix.deployment->ma().catalog().replica_count(), 2u);

  // SED 0 (the fastest, so the scheduler's constant choice) crashes and
  // loses its store; SED 1 keeps its replica.
  fix.deployment->sed(0).fail();
  fix.deployment->sed(0).restart();
  fix.engine.run();
  EXPECT_FALSE(fix.deployment->sed(0).data_manager().contains(
      fix.deployment->ma().catalog().ids()[0]));

  const auto client_bytes_before =
      fix.env.bytes_by_node_pair().count({client_node, sed0_node}) > 0
          ? fix.env.bytes_by_node_pair().at({client_node, sed0_node})
          : 0;

  // Same data again: the call lands on the restarted SED 0, misses, and
  // must heal by pulling the blob from SED 1 — not by failing back to
  // the client for a full resend.
  EXPECT_DOUBLE_EQ(fix.call_sum(data, Persistence::kPersistent), 10000.0);
  fix.engine.run();

  const auto client_bytes_after =
      fix.env.bytes_by_node_pair().at({client_node, sed0_node});
  const auto peer_bytes = fix.env.bytes_by_node_pair().count(
                              {sed1_node, sed0_node}) > 0
                              ? fix.env.bytes_by_node_pair().at(
                                    {sed1_node, sed0_node})
                              : 0;
  // The payload crossed the SED 1 -> SED 0 link, not the client link.
  EXPECT_LT(client_bytes_after - client_bytes_before, 16000);
  EXPECT_GT(peer_bytes, 160000);
  // The healed replica is stored, re-registered, and resolvable again.
  EXPECT_TRUE(fix.deployment->sed(0).data_manager().contains(
      fix.deployment->ma().catalog().ids()[0]));
  EXPECT_EQ(fix.deployment->ma().catalog().replica_count(), 2u);
  fix.expect_catalog_resolvable();
}

}  // namespace
}  // namespace gc::diet
