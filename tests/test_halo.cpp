// Tests for HaloMaker (friends-of-friends).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>

#include "common/rng.hpp"
#include "halo/halomaker.hpp"
#include "halo/overdensity.hpp"

namespace gc::halo {
namespace {

/// Owns the particle arrays a ParticleView points into.
struct Particles {
  std::vector<double> x, y, z, vx, vy, vz, mass;
  std::vector<std::uint64_t> id;

  void add(double px, double py, double pz, double vvx = 0, double vvy = 0,
           double vvz = 0, double m = 1e-5) {
    x.push_back(px - std::floor(px));
    y.push_back(py - std::floor(py));
    z.push_back(pz - std::floor(pz));
    vx.push_back(vvx);
    vy.push_back(vvy);
    vz.push_back(vvz);
    mass.push_back(m);
    id.push_back(id.size() + 1);
  }

  [[nodiscard]] ParticleView view() const {
    return ParticleView{&x, &y, &z, &vx, &vy, &vz, &mass, &id};
  }

  void blob(Rng& rng, double cx, double cy, double cz, int count,
            double sigma, double vmean = 0.0) {
    for (int i = 0; i < count; ++i) {
      add(cx + rng.normal(0, sigma), cy + rng.normal(0, sigma),
          cz + rng.normal(0, sigma), vmean + rng.normal(0, 50),
          rng.normal(0, 50), rng.normal(0, 50));
    }
  }
};

TEST(HaloMaker, EmptyInput) {
  Particles p;
  const HaloCatalog catalog = find_halos(p.view(), 1.0, 100.0);
  EXPECT_TRUE(catalog.halos.empty());
  EXPECT_EQ(catalog.total_particles, 0u);
}

TEST(HaloMaker, TwoSeparatedClusters) {
  Rng rng(1);
  Particles p;
  p.blob(rng, 0.25, 0.25, 0.25, 300, 0.004, 100.0);
  p.blob(rng, 0.75, 0.75, 0.75, 150, 0.004, -100.0);
  // Sparse background that must NOT form halos.
  for (int i = 0; i < 50; ++i) {
    p.add(rng.uniform(), rng.uniform(), rng.uniform());
  }

  const HaloCatalog catalog =
      find_halos(p.view(), 1.0, 100.0, FofOptions{0.2, 20});
  ASSERT_EQ(catalog.halos.size(), 2u);
  // Sorted by mass, heaviest first, ids renumbered.
  EXPECT_EQ(catalog.halos[0].id, 1u);
  EXPECT_GE(catalog.halos[0].npart, 290u);
  EXPECT_GE(catalog.halos[1].npart, 140u);
  EXPECT_GT(catalog.halos[0].mass, catalog.halos[1].mass);
  // Centres recovered.
  EXPECT_NEAR(catalog.halos[0].x, 0.25, 0.01);
  EXPECT_NEAR(catalog.halos[1].z, 0.75, 0.01);
  // Bulk velocities recovered.
  EXPECT_NEAR(catalog.halos[0].vx, 100.0, 15.0);
  EXPECT_NEAR(catalog.halos[1].vx, -100.0, 15.0);
  EXPECT_GT(catalog.halos[0].sigma_v, 10.0);
  EXPECT_GT(catalog.halos[0].r_rms, 0.0);
}

TEST(HaloMaker, MinNpartFilters) {
  Rng rng(2);
  Particles p;
  p.blob(rng, 0.5, 0.5, 0.5, 19, 0.002);
  const HaloCatalog strict =
      find_halos(p.view(), 1.0, 100.0, FofOptions{0.2, 20});
  EXPECT_TRUE(strict.halos.empty());
  const HaloCatalog loose =
      find_halos(p.view(), 1.0, 100.0, FofOptions{0.2, 10});
  EXPECT_EQ(loose.halos.size(), 1u);
}

TEST(HaloMaker, PeriodicBoundaryHalo) {
  // A cluster straddling the box corner must come out as ONE halo with a
  // correctly wrapped centre.
  Rng rng(3);
  Particles p;
  for (int i = 0; i < 200; ++i) {
    p.add(0.001 + rng.normal(0, 0.003), 0.999 + rng.normal(0, 0.003),
          rng.normal(0, 0.003));
  }
  const HaloCatalog catalog =
      find_halos(p.view(), 1.0, 100.0, FofOptions{0.25, 20});
  ASSERT_EQ(catalog.halos.size(), 1u);
  EXPECT_EQ(catalog.halos[0].npart, 200u);
  // Centre near the corner, wrapped into [0,1).
  const double cx = catalog.halos[0].x;
  const double cy = catalog.halos[0].y;
  EXPECT_TRUE(cx < 0.02 || cx > 0.98) << cx;
  EXPECT_TRUE(cy < 0.02 || cy > 0.98) << cy;
}

TEST(HaloMaker, LinkingLengthControlsMerging) {
  // Two blobs 0.05 apart: tight linking separates them, loose merges.
  Rng rng(4);
  Particles p;
  p.blob(rng, 0.45, 0.5, 0.5, 200, 0.002);
  p.blob(rng, 0.50, 0.5, 0.5, 200, 0.002);
  const HaloCatalog tight =
      find_halos(p.view(), 1.0, 100.0, FofOptions{0.15, 20});
  const HaloCatalog loose =
      find_halos(p.view(), 1.0, 100.0, FofOptions{1.2, 20});
  EXPECT_EQ(tight.halos.size(), 2u);
  EXPECT_EQ(loose.halos.size(), 1u);
  EXPECT_EQ(loose.halos[0].npart, 400u);
}

TEST(HaloMaker, MembersCarryParticleIds) {
  Rng rng(5);
  Particles p;
  p.blob(rng, 0.3, 0.3, 0.3, 100, 0.003);
  const HaloCatalog catalog =
      find_halos(p.view(), 1.0, 100.0, FofOptions{0.2, 20});
  ASSERT_EQ(catalog.halos.size(), 1u);
  ASSERT_EQ(catalog.halos[0].members.size(), 100u);
  std::vector<std::uint64_t> members = catalog.halos[0].members;
  std::sort(members.begin(), members.end());
  EXPECT_EQ(members.front(), 1u);
  EXPECT_EQ(members.back(), 100u);
}

TEST(HaloMaker, InvariantUnderParticleOrder) {
  Rng rng(6);
  Particles p;
  p.blob(rng, 0.2, 0.6, 0.4, 120, 0.003);
  p.blob(rng, 0.7, 0.2, 0.8, 80, 0.003);
  const HaloCatalog forward =
      find_halos(p.view(), 1.0, 100.0, FofOptions{0.2, 20});

  // Reverse the particle order (keeping ids).
  Particles reversed;
  for (std::size_t i = p.x.size(); i-- > 0;) {
    reversed.x.push_back(p.x[i]);
    reversed.y.push_back(p.y[i]);
    reversed.z.push_back(p.z[i]);
    reversed.vx.push_back(p.vx[i]);
    reversed.vy.push_back(p.vy[i]);
    reversed.vz.push_back(p.vz[i]);
    reversed.mass.push_back(p.mass[i]);
    reversed.id.push_back(p.id[i]);
  }
  const HaloCatalog backward =
      find_halos(reversed.view(), 1.0, 100.0, FofOptions{0.2, 20});

  ASSERT_EQ(forward.halos.size(), backward.halos.size());
  for (std::size_t h = 0; h < forward.halos.size(); ++h) {
    EXPECT_EQ(forward.halos[h].npart, backward.halos[h].npart);
    EXPECT_NEAR(forward.halos[h].mass, backward.halos[h].mass, 1e-12);
    auto a = forward.halos[h].members;
    auto b = backward.halos[h].members;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

TEST(HaloMaker, CatalogIoRoundtrip) {
  Rng rng(7);
  Particles p;
  p.blob(rng, 0.4, 0.4, 0.4, 60, 0.003);
  HaloCatalog catalog = find_halos(p.view(), 0.5, 100.0, FofOptions{0.2, 20});
  ASSERT_EQ(catalog.halos.size(), 1u);

  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("gc_halo_" + std::to_string(::getpid()) + ".bin"))
          .string();
  ASSERT_TRUE(write_catalog(path, catalog).is_ok());
  auto back = read_catalog(path);
  ASSERT_TRUE(back.is_ok());
  EXPECT_DOUBLE_EQ(back.value().aexp, 0.5);
  EXPECT_DOUBLE_EQ(back.value().box_mpc, 100.0);
  ASSERT_EQ(back.value().halos.size(), 1u);
  const Halo& original = catalog.halos[0];
  const Halo& loaded = back.value().halos[0];
  EXPECT_EQ(loaded.id, original.id);
  EXPECT_EQ(loaded.npart, original.npart);
  EXPECT_DOUBLE_EQ(loaded.mass, original.mass);
  EXPECT_DOUBLE_EQ(loaded.x, original.x);
  EXPECT_DOUBLE_EQ(loaded.sigma_v, original.sigma_v);
  EXPECT_EQ(loaded.members, original.members);
  std::filesystem::remove(path);
}

TEST(HaloMaker, TextCatalogHasRows) {
  Rng rng(8);
  Particles p;
  p.blob(rng, 0.5, 0.5, 0.5, 50, 0.003);
  const HaloCatalog catalog =
      find_halos(p.view(), 1.0, 100.0, FofOptions{0.2, 20});
  const std::string text = catalog_to_text(catalog);
  EXPECT_NE(text.find("nhalos=1"), std::string::npos);
  // Two header lines + one row.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

TEST(Overdensity, RecoversCompactClusterMass) {
  // Half the box mass in a tight ball at (0.5,0.5,0.5), the rest diffuse:
  // R200 encloses (almost exactly) the ball.
  Rng rng(21);
  Particles p;
  const int cluster_n = 2000;
  const int background_n = 2000;
  const double mass = 1.0 / (cluster_n + background_n);
  for (int i = 0; i < cluster_n; ++i) {
    // Uniform ball of radius 0.02 via rejection.
    double x, y, z;
    do {
      x = rng.uniform(-0.02, 0.02);
      y = rng.uniform(-0.02, 0.02);
      z = rng.uniform(-0.02, 0.02);
    } while (x * x + y * y + z * z > 0.02 * 0.02);
    p.add(0.5 + x, 0.5 + y, 0.5 + z, 0, 0, 0, mass);
  }
  for (int i = 0; i < background_n; ++i) {
    p.add(rng.uniform(), rng.uniform(), rng.uniform(), 0, 0, 0, mass);
  }

  const SoProperties so =
      spherical_overdensity(p.view(), 0.5, 0.5, 0.5, 200.0);
  // Analytic: M(R200) ~ 0.5 (the ball), R200 = (3*0.5/(4 pi 200))^(1/3).
  const double expected_r = std::cbrt(3.0 * 0.5 / (4.0 * M_PI * 200.0));
  EXPECT_NEAR(so.mass, 0.5, 0.03);
  EXPECT_NEAR(so.radius, expected_r, expected_r * 0.1);
  EXPECT_GE(so.npart, 1900u);
}

TEST(Overdensity, EmptyRegionGivesZero) {
  Rng rng(22);
  Particles p;
  for (int i = 0; i < 500; ++i) {
    p.add(rng.uniform(), rng.uniform(), rng.uniform());
  }
  // Uniform box at mean density 1 << 200: no SO halo anywhere.
  const SoProperties so =
      spherical_overdensity(p.view(), 0.5, 0.5, 0.5, 200.0);
  EXPECT_DOUBLE_EQ(so.mass, 0.0);
  EXPECT_DOUBLE_EQ(so.radius, 0.0);
}

TEST(Overdensity, HigherThresholdGivesSmallerRadius) {
  Rng rng(23);
  Particles p;
  // Centrally concentrated cluster (gaussian, sigma wide enough that the
  // outskirts drop below both thresholds) so density falls outward.
  for (int i = 0; i < 3000; ++i) {
    p.add(0.5 + rng.normal(0, 0.03), 0.5 + rng.normal(0, 0.03),
          0.5 + rng.normal(0, 0.03), 0, 0, 0, 1.0 / 3000);
  }
  const SoProperties m200 =
      spherical_overdensity(p.view(), 0.5, 0.5, 0.5, 200.0);
  const SoProperties m500 =
      spherical_overdensity(p.view(), 0.5, 0.5, 0.5, 500.0);
  EXPECT_GT(m200.radius, m500.radius);
  EXPECT_GT(m200.mass, m500.mass);
  EXPECT_GT(m500.mass, 0.0);
}

TEST(Overdensity, PerCatalogHelper) {
  Rng rng(24);
  Particles p;
  p.blob(rng, 0.3, 0.3, 0.3, 500, 0.002);
  p.blob(rng, 0.7, 0.7, 0.7, 300, 0.002);
  const HaloCatalog catalog =
      find_halos(p.view(), 1.0, 100.0, FofOptions{0.2, 20});
  ASSERT_EQ(catalog.halos.size(), 2u);
  const auto so = so_properties(p.view(), catalog, 200.0);
  ASSERT_EQ(so.size(), 2u);
  EXPECT_GT(so[0].mass, so[1].mass);  // ordering follows the FoF masses
  EXPECT_GT(so[0].npart, 0u);
}

TEST(HaloMaker, ScalesToManyParticles) {
  // Smoke: 30k particles with structure finish quickly and find halos.
  Rng rng(9);
  Particles p;
  for (int blob = 0; blob < 10; ++blob) {
    p.blob(rng, rng.uniform(), rng.uniform(), rng.uniform(), 500, 0.004);
  }
  for (int i = 0; i < 25000; ++i) {
    p.add(rng.uniform(), rng.uniform(), rng.uniform());
  }
  const HaloCatalog catalog =
      find_halos(p.view(), 1.0, 100.0, FofOptions{0.12, 50});
  EXPECT_GE(catalog.halos.size(), 8u);
  EXPECT_LE(catalog.halos.size(), 12u);
}

}  // namespace
}  // namespace gc::halo
