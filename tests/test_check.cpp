// Tests for the GC_CHECK debug invariant layer: every checker class, and a
// seeded violation of each instrumented invariant proving the production
// call sites actually catch it. A swapped-in failure handler records
// violations instead of aborting.
#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <vector>

#include "check/invariant.hpp"
#include "check/lockorder.hpp"
#include "des/engine.hpp"
#include "diet/agent.hpp"
#include "diet/sed.hpp"
#include "net/realenv.hpp"
#include "net/simenv.hpp"
#include "sched/policy.hpp"

// The whole suite exercises the debug invariant layer; in a GC_CHECK=OFF
// build every call site is compiled away and there is nothing to test.
#ifndef GC_CHECK_INVARIANTS

TEST(Invariant, SkippedWithoutGcCheck) {
  GTEST_SKIP() << "built with GC_CHECK=OFF";
}

#else

namespace gc {
namespace {

static_assert(check::kEnabled,
              "this suite requires a GC_CHECK=ON build (the default)");

std::vector<std::string> g_violations;

void record_violation(const char* file, int line, const std::string& what) {
  g_violations.push_back(std::string(file) + ":" + std::to_string(line) +
                         ": " + what);
}

/// Swaps in a recording failure handler for the test's scope.
struct Capture {
  Capture() {
    g_violations.clear();
    check::reset_failure_count();
    check::set_failure_handler(&record_violation);
  }
  ~Capture() { check::set_failure_handler(nullptr); }
  [[nodiscard]] std::size_t count() const {
    return static_cast<std::size_t>(check::failure_count());
  }
  [[nodiscard]] bool saw(const std::string& needle) const {
    for (const std::string& v : g_violations) {
      if (v.find(needle) != std::string::npos) return true;
    }
    return false;
  }
};

// ---------- the macro itself ----------

TEST(Invariant, MacroReportsOnlyOnFalse) {
  Capture capture;
  GC_INVARIANT(1 + 1 == 2, "arithmetic holds");
  EXPECT_EQ(capture.count(), 0u);
  GC_INVARIANT(false, "seeded violation");
  EXPECT_EQ(capture.count(), 1u);
  EXPECT_TRUE(capture.saw("seeded violation"));
}

// ---------- FifoMonitor ----------

TEST(Invariant, FifoMonitorAcceptsInOrderStreams) {
  Capture capture;
  check::FifoMonitor fifo("test");
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    fifo.observe(7, seq, __FILE__, __LINE__);
  }
  fifo.observe(8, 100, __FILE__, __LINE__);  // new stream, any start
  fifo.observe(8, 101, __FILE__, __LINE__);
  EXPECT_EQ(capture.count(), 0u);
}

TEST(Invariant, FifoMonitorCatchesReordering) {
  Capture capture;
  check::FifoMonitor fifo("test");
  fifo.observe(7, 1, __FILE__, __LINE__);
  fifo.observe(7, 3, __FILE__, __LINE__);  // 2 overtaken
  EXPECT_EQ(capture.count(), 1u);
  EXPECT_TRUE(capture.saw("FIFO"));
}

// ---------- UniqueIds ----------

TEST(Invariant, UniqueIdsCatchesDuplicateAdd) {
  Capture capture;
  check::UniqueIds ids("test ids");
  ids.add(42, __FILE__, __LINE__);
  EXPECT_TRUE(ids.contains(42));
  EXPECT_EQ(capture.count(), 0u);
  ids.add(42, __FILE__, __LINE__);  // still live: violation
  EXPECT_EQ(capture.count(), 1u);
  ids.remove(42);
  ids.add(42, __FILE__, __LINE__);  // released and reused: fine
  EXPECT_EQ(capture.count(), 1u);
  ids.remove(99);  // unknown remove is tolerated
  EXPECT_EQ(capture.count(), 1u);
}

// ---------- StoreAudit ----------

TEST(Invariant, StoreAuditTracksCleanTraffic) {
  Capture capture;
  check::StoreAudit audit("test store");
  audit.add("a", 100, __FILE__, __LINE__);
  audit.add("b", 50, __FILE__, __LINE__);
  audit.expect(2, 150, __FILE__, __LINE__);
  audit.remove("a", 100, __FILE__, __LINE__);
  audit.expect(1, 50, __FILE__, __LINE__);
  EXPECT_EQ(capture.count(), 0u);
}

TEST(Invariant, StoreAuditCatchesEveryDriftMode) {
  Capture capture;
  check::StoreAudit audit("test store");
  audit.add("a", 100, __FILE__, __LINE__);
  audit.add("a", 100, __FILE__, __LINE__);  // duplicate insert
  EXPECT_EQ(capture.count(), 1u);
  audit.remove("ghost", 1, __FILE__, __LINE__);  // unknown remove
  EXPECT_EQ(capture.count(), 2u);
  audit.remove("a", 999, __FILE__, __LINE__);  // size drift
  EXPECT_EQ(capture.count(), 3u);
  audit.reset();
  audit.add("b", 10, __FILE__, __LINE__);
  audit.expect(1, 11, __FILE__, __LINE__);  // aggregate mismatch
  EXPECT_EQ(capture.count(), 4u);
}

// ---------- lock-order recorder ----------

TEST(Invariant, LockOrderAcceptsConsistentOrder) {
  Capture capture;
  auto& recorder = check::LockOrderRecorder::instance();
  recorder.reset();
  for (int round = 0; round < 3; ++round) {
    recorder.acquired("outer", __FILE__, __LINE__);
    recorder.acquired("inner", __FILE__, __LINE__);
    recorder.released("inner");
    recorder.released("outer");
  }
  EXPECT_EQ(capture.count(), 0u);
  EXPECT_EQ(recorder.edge_count(), 1u);
  recorder.reset();
}

TEST(Invariant, LockOrderCatchesInversionCycle) {
  Capture capture;
  auto& recorder = check::LockOrderRecorder::instance();
  recorder.reset();
  recorder.acquired("A", __FILE__, __LINE__);
  recorder.acquired("B", __FILE__, __LINE__);  // records A -> B
  recorder.released("B");
  recorder.released("A");
  recorder.acquired("B", __FILE__, __LINE__);
  recorder.acquired("A", __FILE__, __LINE__);  // closes the cycle
  EXPECT_EQ(capture.count(), 1u);
  EXPECT_TRUE(capture.saw("cycle") || capture.saw("order"));
  recorder.released("A");
  recorder.released("B");
  recorder.reset();
}

TEST(Invariant, LockOrderCatchesSelfDeadlock) {
  Capture capture;
  auto& recorder = check::LockOrderRecorder::instance();
  recorder.reset();
  recorder.acquired("self", __FILE__, __LINE__);
  recorder.acquired("self", __FILE__, __LINE__);  // non-recursive re-lock
  EXPECT_EQ(capture.count(), 1u);
  recorder.released("self");
  recorder.released("self");
  recorder.reset();
}

TEST(Invariant, TrackedLockAndTrackerRoundTrip) {
  Capture capture;
  auto& recorder = check::LockOrderRecorder::instance();
  recorder.reset();
  std::mutex m;
  {
    GC_TRACKED_LOCK(lock, m, "test.mutex");
  }
  {
    check::LockTracker tracker("test.cv", __FILE__, __LINE__);
    tracker.unlocked();  // cv wait handed the lock back
    tracker.relocked();
  }
  EXPECT_EQ(capture.count(), 0u);
  recorder.reset();
}

// ---------- DES engine ----------

TEST(Invariant, EngineCatchesSchedulingIntoThePast) {
  des::Engine engine;
  engine.schedule_at(1.0, [] {});
  engine.run();
  ASSERT_DOUBLE_EQ(engine.now(), 1.0);
  Capture capture;
  engine.schedule_at(0.5, [] {});  // behind the virtual clock
  EXPECT_EQ(capture.count(), 1u);
  EXPECT_TRUE(capture.saw("past"));
}

// ---------- RealEnv ----------

TEST(Invariant, RealEnvCatchesPostAfterStop) {
  net::UniformTopology topology(0.0, 1e9);
  net::RealEnv env(topology);
  env.start();
  env.post_after(0.0, [] {});
  env.wait_idle();
  env.stop();
  Capture capture;
  env.post_after(0.0, [] {});  // the seeded violation
  EXPECT_EQ(capture.count(), 1u);
  EXPECT_TRUE(capture.saw("stop"));
}

// ---------- DIET actors ----------

struct NullActor final : net::Actor {
  void on_message(const net::Envelope&) override {}
};

TEST(Invariant, SedCatchesMissingTraceId) {
  des::Engine engine;
  net::UniformTopology topology(1e-3, 1e9);
  net::SimEnv env(engine, topology);
  diet::ServiceTable services;
  diet::Sed sed(1, "s1", services, 1.0, 1, diet::SedTuning{}, 7);
  NullActor client;
  env.attach(sed, 0);
  env.attach(client, 1);

  diet::CallDataMsg msg;
  msg.call_id = 1;
  msg.path = "nosuch";
  msg.last_out = 0;  // Profile markers must be valid even for a bad path.
  Capture capture;
  env.send(net::Envelope{client.endpoint(), sed.endpoint(), diet::kCallData,
                         msg.encode(), 0, /*trace_id=*/0});
  engine.run();
  EXPECT_GE(capture.count(), 1u);
  EXPECT_TRUE(capture.saw("trace"));
}

TEST(Invariant, AgentCatchesMissingTraceId) {
  des::Engine engine;
  net::UniformTopology topology(1e-3, 1e9);
  net::SimEnv env(engine, topology);
  diet::Agent ma(diet::Agent::Kind::kMaster, "MA",
                 sched::make_default_policy(), diet::AgentTuning{}, 7);
  NullActor client;
  env.attach(ma, 0);
  env.attach(client, 1);

  diet::RequestSubmitMsg msg;
  msg.client_request_id = 1;
  msg.desc = diet::ProfileDesc("nosuch", -1, -1, 0);
  Capture capture;
  env.send(net::Envelope{client.endpoint(), ma.endpoint(),
                         diet::kRequestSubmit, msg.encode(), 0,
                         /*trace_id=*/0});
  engine.run();
  EXPECT_GE(capture.count(), 1u);
  EXPECT_TRUE(capture.saw("trace"));
}

TEST(Invariant, AgentCatchesRequestKeyCollision) {
  des::Engine engine;
  net::UniformTopology topology(1e-3, 1e9);
  net::SimEnv env(engine, topology);
  diet::Agent la(diet::Agent::Kind::kLocal, "LA",
                 sched::make_default_policy(), diet::AgentTuning{}, 7);
  diet::ServiceTable services;
  diet::ProfileDesc desc("svc", -1, -1, 0);
  desc.arg(0).type = diet::DataType::kScalar;
  ASSERT_TRUE(
      services
          .add(desc, [](diet::ServiceContext& ctx) { ctx.finish(0); })
          .is_ok());
  diet::Sed sed(1, "s1", services, 1.0, 1, diet::SedTuning{}, 7);
  NullActor parent;
  NullActor impostor;
  env.attach(la, 0);
  env.attach(sed, 1);
  env.attach(parent, 2);
  env.attach(impostor, 3);
  sed.register_at(la.endpoint());
  engine.run();

  // Two *different* parents using the same request key while the first
  // round (SED estimation delay) is still in flight. A repeat from the
  // same parent is a legitimate network duplicate (dropped silently, see
  // the chaos suite); the same key from elsewhere is a real collision.
  diet::RequestCollectMsg msg;
  msg.request_key = 5;
  msg.desc = desc;
  Capture capture;
  env.send(net::Envelope{parent.endpoint(), la.endpoint(),
                         diet::kRequestCollect, msg.encode(), 0, 5});
  env.send(net::Envelope{impostor.endpoint(), la.endpoint(),
                         diet::kRequestCollect, msg.encode(), 0, 5});
  engine.run();
  EXPECT_GE(capture.count(), 1u);
  EXPECT_TRUE(capture.saw("collision"));
}

TEST(Invariant, SedDedupsDuplicateCallId) {
  des::Engine engine;
  net::UniformTopology topology(1e-3, 1e9);
  net::SimEnv env(engine, topology);
  diet::ServiceTable services;
  diet::ProfileDesc desc("svc", -1, -1, 0);
  desc.arg(0).type = diet::DataType::kScalar;
  ASSERT_TRUE(services
                  .add(desc,
                       [](diet::ServiceContext& ctx) {
                         ctx.compute(
                             1000.0, []() { return 0; },
                             [&ctx](int rc) { ctx.finish(rc); });
                       })
                  .is_ok());
  diet::Sed sed(1, "s1", services, 1.0, 1, diet::SedTuning{}, 7);
  NullActor client;
  env.attach(sed, 0);
  env.attach(client, 1);

  diet::Profile profile("svc", -1, -1, 0);
  profile.arg(0).desc.type = diet::DataType::kScalar;
  diet::CallDataMsg msg;
  msg.call_id = 9;
  msg.path = "svc";
  msg.last_out = 0;
  net::Writer w;
  profile.serialize_inputs(w);
  msg.inputs = w.take();

  Capture capture;
  // The same call id lands twice — a duplicated delivery or a stale
  // retry. At-most-once execution: the SED accepts the first, silently
  // drops the copy, and no invariant fires.
  env.send(net::Envelope{client.endpoint(), sed.endpoint(), diet::kCallData,
                         msg.encode(), 0, 9});
  env.send(net::Envelope{client.endpoint(), sed.endpoint(), diet::kCallData,
                         msg.encode(), 0, 9});
  engine.run();
  EXPECT_EQ(capture.count(), 0u);
  EXPECT_EQ(sed.jobs_completed(), 1u);
}

}  // namespace
}  // namespace gc

#endif  // GC_CHECK_INVARIANTS
