// Tests for the RAMSES-style N-body stack: PM gravity, leapfrog, AMR,
// domain decomposition, snapshots, driver.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <numeric>

#include "cosmo/cosmology.hpp"
#include "ramses/amr.hpp"
#include "ramses/domain.hpp"
#include "ramses/loader.hpp"
#include "ramses/pm.hpp"
#include "ramses/simulation.hpp"
#include "ramses/snapshot.hpp"

namespace gc::ramses {
namespace {

ParticleSet uniform_lattice(int n) {
  ParticleSet particles;
  const double mass = 1.0 / (static_cast<double>(n) * n * n);
  std::uint64_t id = 1;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      for (int k = 0; k < n; ++k) {
        particles.push_back((i + 0.5) / n, (j + 0.5) / n, (k + 0.5) / n, 0.0,
                            0.0, 0.0, mass, id++, 0);
      }
    }
  }
  return particles;
}

// ---------- particles ----------

TEST(Particles, WrapPositions) {
  ParticleSet particles;
  particles.push_back(0.5, 0.5, 0.5, 0, 0, 0, 1.0, 1, 0);
  particles.x[0] = 1.25;
  particles.y[0] = -0.25;
  particles.z[0] = 3.0;
  particles.wrap_positions();
  EXPECT_DOUBLE_EQ(particles.x[0], 0.25);
  EXPECT_DOUBLE_EQ(particles.y[0], 0.75);
  EXPECT_DOUBLE_EQ(particles.z[0], 0.0);
  EXPECT_TRUE(particles.valid());
}

TEST(Particles, ValidCatchesBadState) {
  ParticleSet particles;
  particles.push_back(0.5, 0.5, 0.5, 0, 0, 0, 1.0, 1, 0);
  EXPECT_TRUE(particles.valid());
  particles.x[0] = 1.5;
  EXPECT_FALSE(particles.valid());
  particles.x[0] = 0.5;
  particles.mass[0] = 0.0;
  EXPECT_FALSE(particles.valid());
  particles.mass[0] = 1.0;
  particles.y.push_back(0.1);  // ragged arrays
  EXPECT_FALSE(particles.valid());
}

TEST(Particles, AppendAndTotalMass) {
  ParticleSet a = uniform_lattice(2);
  ParticleSet b = uniform_lattice(2);
  a.append(b);
  EXPECT_EQ(a.size(), 16u);
  EXPECT_NEAR(a.total_mass(), 2.0, 1e-12);
}

// ---------- CIC / Poisson / forces ----------

TEST(Pm, CicConservesMass) {
  Rng rng(1);
  ParticleSet particles;
  for (int i = 0; i < 1000; ++i) {
    particles.push_back(rng.uniform(), rng.uniform(), rng.uniform(), 0, 0, 0,
                        1.0 / 1000, static_cast<std::uint64_t>(i + 1), 0);
  }
  const auto delta = cic_deposit(particles, 16);
  // sum(delta) = sum(rho/rho_mean) - N^3 = 0 for total mass 1.
  EXPECT_NEAR(delta.sum(), 0.0, 1e-9);
}

TEST(Pm, UniformLatticeIsFlat) {
  // Lattice aligned with cell centres: delta should vanish everywhere.
  const auto particles = uniform_lattice(16);
  const auto delta = cic_deposit(particles, 16);
  for (const double v : delta.raw()) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(Pm, PoissonSolvesSingleMode) {
  // delta = cos(2 pi m x) -> phi = -rhs/(2 pi m)^2 cos(2 pi m x).
  const std::size_t n = 32;
  const int m = 3;
  math::Grid3<double> delta(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double value =
        std::cos(2.0 * M_PI * m * (static_cast<double>(i)) / n);
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) delta.at(i, j, k) = value;
    }
  }
  const double rhs = 4.0;
  const auto phi = solve_poisson(delta, rhs);
  const double k2 = std::pow(2.0 * M_PI * m, 2);
  for (std::size_t i = 0; i < n; ++i) {
    const double expected =
        -rhs / k2 * std::cos(2.0 * M_PI * m * (static_cast<double>(i)) / n);
    EXPECT_NEAR(phi.at(i, 5, 7), expected, 1e-10);
  }
}

TEST(Pm, PoissonZeroModeGauge) {
  math::Grid3<double> delta(8, 1.0);  // pure k=0 content
  const auto phi = solve_poisson(delta, 1.0);
  for (const double v : phi.raw()) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Pm, ForcesConserveMomentum) {
  // CIC deposit + CIC interpolation with a symmetric kernel: the total
  // force on a closed system vanishes.
  Rng rng(3);
  ParticleSet particles;
  for (int i = 0; i < 200; ++i) {
    particles.push_back(rng.uniform(), rng.uniform(), rng.uniform(), 0, 0, 0,
                        rng.uniform(0.5, 2.0) / 200.0,
                        static_cast<std::uint64_t>(i + 1), 0);
  }
  const auto delta = cic_deposit(particles, 16);
  const auto phi = solve_poisson(delta, 1.5 * 0.27);
  const auto acc = interpolate_forces(phi, particles);
  for (int axis = 0; axis < 3; ++axis) {
    double total = 0.0;
    for (std::size_t p = 0; p < particles.size(); ++p) {
      total += particles.mass[p] * acc[static_cast<size_t>(axis)][p];
    }
    EXPECT_NEAR(total, 0.0, 1e-8);
  }
}

TEST(Pm, TwoBodiesAttract) {
  ParticleSet particles;
  particles.push_back(0.4, 0.5, 0.5, 0, 0, 0, 0.5, 1, 0);
  particles.push_back(0.6, 0.5, 0.5, 0, 0, 0, 0.5, 2, 0);
  const auto delta = cic_deposit(particles, 32);
  const auto phi = solve_poisson(delta, 1.0);
  const auto acc = interpolate_forces(phi, particles);
  EXPECT_GT(acc[0][0], 0.0);  // left particle pulled right
  EXPECT_LT(acc[0][1], 0.0);  // right particle pulled left
  EXPECT_NEAR(acc[0][0] + acc[0][1], 0.0, 1e-9);  // equal masses
  EXPECT_NEAR(acc[1][0], 0.0, 1e-9);              // no transverse force
}

TEST(Pm, MomentumUnitConversions) {
  const double v = 312.5;  // km/s
  const double a = 0.25;
  const double box = 100.0;
  const double p = momentum_from_kms(v, a, box);
  EXPECT_NEAR(kms_from_momentum(p, a, box), v, 1e-12);
}

TEST(Pm, ZeldovichModeGrowsLikeD) {
  // THE physics validation: a single-mode Zel'dovich perturbation evolved
  // by the PM leapfrog must follow the linear growth factor until shell
  // crossing. EdS cosmology so D(a) = a exactly.
  cosmo::Params params;
  params.omega_m = 1.0;
  params.omega_l = 0.0;
  const cosmo::Cosmology cosmology(params);

  const int n = 32;
  const int mode = 1;
  const double a0 = 0.05;
  const double a1 = 0.4;
  const double amplitude = 0.01;  // displacement in box units (linear)

  // Zel'dovich setup at a0: x = q + D psi, p = a^2 dx/dt = a^3 E D' psi
  // with D = a, D' = 1 (EdS, code units H0 = 1).
  ParticleSet particles;
  std::uint64_t id = 1;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      for (int k = 0; k < n; ++k) {
        const double q = (i + 0.5) / n;
        const double psi =
            amplitude * std::sin(2.0 * M_PI * mode * q);
        double x = q + a0 * psi;
        x -= std::floor(x);
        const double p =
            std::pow(a0, 3) * cosmology.efunc(a0) * psi;  // a^3 E D' psi
        particles.push_back(x, (j + 0.5) / n, (k + 0.5) / n, p, 0.0, 0.0,
                            1.0 / (static_cast<double>(n) * n * n), id++, 0);
      }
    }
  }

  PmSolver solver(cosmology, {n, params.omega_m});
  const int steps = 64;
  double a = a0;
  const double ratio = std::pow(a1 / a0, 1.0 / steps);
  for (int s = 0; s < steps; ++s) {
    const double next = a * ratio;
    solver.step(particles, a, next - a);
    a = next;
  }

  // Fit the displacement amplitude at a1 against sin(2 pi q); the
  // Lagrangian coordinate q is recovered from the particle id (ids were
  // assigned in lattice order: id - 1 = (i*n + j)*n + k).
  double num = 0.0;
  double den = 0.0;
  for (std::size_t p = 0; p < particles.size(); ++p) {
    const auto lattice_i = (particles.id[p] - 1) / (n * n);
    const double q = (static_cast<double>(lattice_i) + 0.5) / n;
    double dx = particles.x[p] - q;
    if (dx > 0.5) dx -= 1.0;
    if (dx < -0.5) dx += 1.0;
    const double basis = std::sin(2.0 * M_PI * mode * q);
    num += dx * basis;
    den += basis * basis;
  }
  const double measured = num / den;
  const double expected = a1 * amplitude;  // D(a1) psi
  EXPECT_NEAR(measured / expected, 1.0, 0.05);
}

// ---------- loader ----------

TEST(Loader, SingleLevelCountsAndMass) {
  grafic::Generator generator(cosmo::Params{}, 21);
  const auto ic = generator.single_level(8, 100.0, 0.05);
  const ParticleSet particles = particles_from_ic(ic);
  EXPECT_EQ(particles.size(), 512u);
  EXPECT_NEAR(particles.total_mass(), 1.0, 1e-9);
  EXPECT_TRUE(particles.valid());
  // Unique ids.
  std::vector<std::uint64_t> ids = particles.id;
  std::sort(ids.begin(), ids.end());
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
}

TEST(Loader, ZoomReplacesRegionWithLighterParticles) {
  grafic::Generator generator(cosmo::Params{}, 22);
  const auto ic =
      generator.multi_level(8, 100.0, 0.05, grafic::Vec3{50, 50, 50}, 1);
  const ParticleSet particles = particles_from_ic(ic);
  // Base 8^3 minus the replaced quarter-box region + child 8^3.
  EXPECT_GT(particles.size(), 512u);
  EXPECT_NEAR(particles.total_mass(), 1.0, 0.02);
  // Two mass species present.
  const auto [min_it, max_it] =
      std::minmax_element(particles.mass.begin(), particles.mass.end());
  EXPECT_NEAR(*max_it / *min_it, 8.0, 1e-6);
  // Light (zoom) particles concentrated near the centre.
  for (std::size_t p = 0; p < particles.size(); ++p) {
    if (particles.level[p] == 1) {
      EXPECT_NEAR(particles.x[p], 0.5, 0.3);
    }
  }
}

// ---------- AMR ----------

TEST(Amr, UniformLoadDoesNotRefine) {
  const auto particles = uniform_lattice(8);
  AmrTree tree(particles, AmrOptions{2, 6, 8});
  // 4^3 base cells, 8 particles each = m_refine -> no refinement.
  EXPECT_EQ(tree.cells().size(), 64u);
  EXPECT_EQ(tree.leaf_count(), 64u);
  EXPECT_EQ(tree.max_level(), 2);
  EXPECT_TRUE(tree.check_invariants());
}

TEST(Amr, ClusterTriggersRefinement) {
  Rng rng(5);
  ParticleSet particles;
  // 500 particles in a tight ball around (0.3, 0.3, 0.3).
  for (int i = 0; i < 500; ++i) {
    auto wrap = [](double v) { return v - std::floor(v); };
    particles.push_back(wrap(0.3 + rng.normal(0, 0.01)),
                        wrap(0.3 + rng.normal(0, 0.01)),
                        wrap(0.3 + rng.normal(0, 0.01)), 0, 0, 0, 1.0 / 500,
                        static_cast<std::uint64_t>(i + 1), 0);
  }
  AmrTree tree(particles, AmrOptions{2, 8, 10});
  EXPECT_GT(tree.max_level(), 4);
  EXPECT_TRUE(tree.check_invariants());
  // Density at the cluster dwarfs the void density.
  EXPECT_GT(tree.density_at(0.3, 0.3, 0.3), 100.0);
  EXPECT_LT(tree.density_at(0.8, 0.8, 0.8), 1.0);
}

TEST(Amr, LevelMaxRespected) {
  ParticleSet particles;
  for (int i = 0; i < 100; ++i) {
    particles.push_back(0.5001, 0.5001, 0.5001, 0, 0, 0, 0.01,
                        static_cast<std::uint64_t>(i + 1), 0);
  }
  AmrTree tree(particles, AmrOptions{1, 4, 2});
  EXPECT_EQ(tree.max_level(), 4);
  EXPECT_TRUE(tree.check_invariants());
}

TEST(Amr, LeafLookupConsistent) {
  Rng rng(6);
  ParticleSet particles;
  for (int i = 0; i < 2000; ++i) {
    particles.push_back(rng.uniform(), rng.uniform(), rng.uniform(), 0, 0, 0,
                        1.0 / 2000, static_cast<std::uint64_t>(i + 1), 0);
  }
  AmrTree tree(particles, AmrOptions{3, 7, 4});
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform();
    const double y = rng.uniform();
    const double z = rng.uniform();
    const auto& leaf = tree.cells()[tree.leaf_at(x, y, z)];
    EXPECT_LE(std::abs(x - leaf.cx), leaf.half + 1e-12);
    EXPECT_LE(std::abs(y - leaf.cy), leaf.half + 1e-12);
    EXPECT_LE(std::abs(z - leaf.cz), leaf.half + 1e-12);
    EXPECT_LT(leaf.first_child, 0);
  }
}

TEST(Amr, CellsPerLevelSums) {
  const auto particles = uniform_lattice(8);
  AmrTree tree(particles, AmrOptions{2, 6, 8});
  const auto per_level = tree.cells_per_level();
  const std::size_t total =
      std::accumulate(per_level.begin(), per_level.end(), std::size_t{0});
  EXPECT_EQ(total, tree.cells().size());
}

// ---------- domain decomposition ----------

TEST(Domain, BalancedOnUniform) {
  const auto particles = uniform_lattice(16);
  for (const int ranks : {2, 4, 8}) {
    DomainDecomposition domain(particles, 4, ranks);
    EXPECT_LT(domain.imbalance(particles), 1.05) << ranks << " ranks";
    const auto load = domain.load(particles);
    std::size_t total = 0;
    for (const std::size_t l : load) total += l;
    EXPECT_EQ(total, particles.size());
  }
}

TEST(Domain, RanksCoverCurveContiguously) {
  const auto particles = uniform_lattice(8);
  DomainDecomposition domain(particles, 3, 4);
  const auto& bounds = domain.bounds();
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), 512u);
  // rank_of follows the bounds.
  int last_rank = 0;
  for (std::size_t i = 0; i < particles.size(); ++i) {
    const int r =
        domain.rank_of(particles.x[i], particles.y[i], particles.z[i]);
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 4);
    last_rank = std::max(last_rank, r);
  }
  EXPECT_EQ(last_rank, 3);
}

TEST(Domain, ExchangeConservesParticles) {
  const auto all = uniform_lattice(8);
  std::atomic<std::size_t> total{0};
  std::atomic<int> misplaced{0};
  minimpi::run(4, [&](minimpi::Comm& comm) {
    ParticleSet mine;
    if (comm.rank() == 0) mine = all;
    DomainDecomposition domain(all, 3, 4);  // same domain on every rank
    const ParticleSet owned = exchange_particles(comm, mine, domain);
    total += owned.size();
    for (std::size_t i = 0; i < owned.size(); ++i) {
      if (domain.rank_of(owned.x[i], owned.y[i], owned.z[i]) != comm.rank()) {
        ++misplaced;
      }
    }
  });
  EXPECT_EQ(total.load(), all.size());
  EXPECT_EQ(misplaced.load(), 0);
}

// ---------- snapshots ----------

TEST(Snapshot, WriteReadRoundtrip) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("gc_snap_" + std::to_string(::getpid())))
          .string();
  Snapshot snap;
  snap.aexp = 0.5;
  snap.box_mpc = 100.0;
  snap.particles = uniform_lattice(4);
  snap.particles.px[0] = 0.125;

  auto path = write_snapshot(dir, 3, snap);
  ASSERT_TRUE(path.is_ok());
  EXPECT_NE(path.value().find("output_00003.bin"), std::string::npos);

  auto back = read_snapshot(path.value());
  ASSERT_TRUE(back.is_ok());
  EXPECT_DOUBLE_EQ(back.value().aexp, 0.5);
  EXPECT_DOUBLE_EQ(back.value().box_mpc, 100.0);
  EXPECT_EQ(back.value().particles.size(), 64u);
  EXPECT_DOUBLE_EQ(back.value().particles.px[0], 0.125);
  EXPECT_EQ(back.value().particles.id[63], 64u);
  std::filesystem::remove_all(dir);
}

TEST(Snapshot, ReadMissingFails) {
  EXPECT_FALSE(read_snapshot("/no/such/output_00001.bin").is_ok());
}

// ---------- run params / driver ----------

TEST(RunParams, NamelistRoundtrip) {
  RunParams params;
  params.npart_dim = 64;
  params.box_mpc = 50.0;
  params.zoom_levels = 2;
  params.zoom_centre = {10.0, 20.0, 30.0};
  params.aout = {0.3, 0.6};
  params.seed = 777;

  auto nml = io::Namelist::parse(params.to_namelist());
  ASSERT_TRUE(nml.is_ok());
  auto back = RunParams::from_namelist(nml.value());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().npart_dim, 64);
  EXPECT_DOUBLE_EQ(back.value().box_mpc, 50.0);
  EXPECT_EQ(back.value().zoom_levels, 2);
  EXPECT_DOUBLE_EQ(back.value().zoom_centre.y, 20.0);
  EXPECT_EQ(back.value().aout, (std::vector<double>{0.3, 0.6}));
  EXPECT_EQ(back.value().seed, 777u);
}

TEST(RunParams, RejectsNonsense) {
  auto nml = io::Namelist::parse("&run_params\nnpart=1\n/\n");
  ASSERT_TRUE(nml.is_ok());
  EXPECT_FALSE(RunParams::from_namelist(nml.value()).is_ok());
}

RunParams tiny_run() {
  RunParams params;
  params.npart_dim = 8;
  params.pm_grid = 16;
  params.steps = 8;
  params.a_start = 0.1;
  params.aout = {0.5};
  params.seed = 31;
  return params;
}

TEST(Simulation, SerialRunProducesSnapshots) {
  const RunResult result = run_simulation(tiny_run());
  EXPECT_EQ(result.particle_count, 512u);
  EXPECT_EQ(result.steps_taken, 8);
  ASSERT_EQ(result.snapshots.size(), 2u);  // aout=0.5 plus a_end
  EXPECT_NEAR(result.snapshots[0].aexp, 0.5, 1e-9);
  EXPECT_NEAR(result.snapshots[1].aexp, 1.0, 1e-9);
  EXPECT_TRUE(result.snapshots[1].particles.valid());
  EXPECT_NEAR(result.snapshots[1].particles.total_mass(), 1.0, 1e-9);
}

TEST(Simulation, StructureGrows) {
  // Gravity clusters matter: density variance rises from start to end.
  const RunResult result = run_simulation(tiny_run());
  const auto& final_particles = result.snapshots.back().particles;
  const auto delta = cic_deposit(final_particles, 8);
  double var = 0.0;
  for (const double v : delta.raw()) var += v * v;
  var /= static_cast<double>(delta.size());
  EXPECT_GT(var, 0.05);  // appreciably non-uniform by a = 1
}

TEST(Simulation, StepCallbackInvoked) {
  int calls = 0;
  double last_a = 0.0;
  run_simulation(tiny_run(), [&](int, double a, const ParticleSet&) {
    ++calls;
    EXPECT_GT(a, last_a);
    last_a = a;
  });
  EXPECT_EQ(calls, 8);
}

TEST(Simulation, AdaptiveSteppingSubdivides) {
  RunParams params = tiny_run();
  params.adaptive = true;
  params.cfl = 0.05;  // tight courant limit -> many substeps
  const RunResult adaptive = run_simulation(params);
  const RunResult fixed = run_simulation(tiny_run());
  EXPECT_GT(adaptive.steps_taken, fixed.steps_taken);
  ASSERT_EQ(adaptive.snapshots.size(), fixed.snapshots.size());
  EXPECT_NEAR(adaptive.snapshots.back().aexp, 1.0, 1e-9);
  EXPECT_TRUE(adaptive.snapshots.back().particles.valid());
}

TEST(Simulation, AdaptiveRespectsBackstop) {
  RunParams params = tiny_run();
  params.adaptive = true;
  params.cfl = 1e-7;  // absurd limit: the backstop must terminate the run
  const RunResult result = run_simulation(params);
  EXPECT_LE(result.steps_taken, 64 * params.steps + params.steps);
  EXPECT_EQ(result.snapshots.size(), 2u);
}

TEST(RunParams, AdaptiveRoundtripsThroughNamelist) {
  RunParams params;
  params.adaptive = true;
  params.cfl = 0.3;
  auto nml = io::Namelist::parse(params.to_namelist());
  ASSERT_TRUE(nml.is_ok());
  auto back = RunParams::from_namelist(nml.value());
  ASSERT_TRUE(back.is_ok());
  EXPECT_TRUE(back.value().adaptive);
  EXPECT_DOUBLE_EQ(back.value().cfl, 0.3);
}

TEST(Simulation, ParallelMatchesSerial) {
  const RunParams params = tiny_run();
  const RunResult serial = run_simulation(params);
  const RunResult parallel = run_simulation_parallel(params, 3);
  ASSERT_EQ(parallel.snapshots.size(), serial.snapshots.size());
  EXPECT_EQ(parallel.particle_count, serial.particle_count);

  const auto& a = serial.snapshots.back().particles;
  const auto& b = parallel.snapshots.back().particles;
  ASSERT_EQ(a.size(), b.size());
  std::vector<std::size_t> of_id(a.size() + 1);
  for (std::size_t i = 0; i < b.size(); ++i) {
    of_id[static_cast<std::size_t>(b.id[i])] = i;
  }
  double max_dx = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::size_t j = of_id[static_cast<std::size_t>(a.id[i])];
    auto wrapped = [](double d) {
      if (d > 0.5) d -= 1.0;
      if (d < -0.5) d += 1.0;
      return std::abs(d);
    };
    max_dx = std::max(max_dx, wrapped(a.x[i] - b.x[j]));
  }
  EXPECT_LT(max_dx, 1e-12);
}

}  // namespace
}  // namespace gc::ramses
