// Tests for the gclint rules: one seeded violation per rule, the scoping
// exemptions, comment/string immunity, and the suppression syntax.
#include <gtest/gtest.h>

#include <algorithm>

#include "lint.hpp"

namespace {

using gclint::FileInput;
using gclint::Finding;

std::vector<Finding> lint_one(const std::string& path,
                              const std::string& content) {
  return gclint::lint({FileInput{path, content}});
}

bool has_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

// ---------- rand ----------

TEST(Gclint, FlagsRandOutsideRngModule) {
  const auto findings =
      lint_one("src/halo/h.cpp", "int f() { return std::rand(); }\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "rand");
  EXPECT_EQ(findings[0].line, 1);
}

TEST(Gclint, AllowsRandomDeviceInsideRngModule) {
  const auto findings = lint_one(
      "src/common/rng.hpp", "std::uint64_t seed() { std::random_device d; "
                            "return d(); }\n");
  EXPECT_TRUE(findings.empty());
}

TEST(Gclint, FlagsRandomDeviceElsewhere) {
  EXPECT_TRUE(has_rule(
      lint_one("src/sched/p.cpp", "std::random_device d;\n"), "rand"));
}

// ---------- wallclock ----------

TEST(Gclint, FlagsWallClockInSimPath) {
  for (const char* dir : {"des", "net", "diet", "ramses"}) {
    const auto findings = lint_one(
        std::string("src/") + dir + "/x.cpp",
        "auto t = std::chrono::steady_clock::now();\n");
    EXPECT_TRUE(has_rule(findings, "wallclock")) << dir;
  }
}

TEST(Gclint, AllowsWallClockOutsideSimPath) {
  const auto findings = lint_one(
      "src/obs/trace.cpp", "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_TRUE(findings.empty());
}

// ---------- thread ----------

TEST(Gclint, FlagsRawThreadOutsideParallel) {
  EXPECT_TRUE(has_rule(
      lint_one("src/diet/x.cpp", "std::thread t([]{});\n"), "thread"));
}

TEST(Gclint, AllowsThreadInsideParallel) {
  EXPECT_TRUE(
      lint_one("src/parallel/pool.cpp", "std::thread t([]{});\n").empty());
}

// ---------- unchecked-status ----------

TEST(Gclint, FlagsDiscardedStatusCall) {
  const std::string src =
      "gc::Status save(int v);\n"
      "void f() {\n"
      "  save(1);\n"
      "}\n";
  const auto findings = lint_one("src/io/x.cpp", src);
  ASSERT_TRUE(has_rule(findings, "unchecked-status"));
  EXPECT_EQ(findings[0].line, 3);
}

TEST(Gclint, AcceptsConsumedStatusCall) {
  const std::string src =
      "gc::Status save(int v);\n"
      "void f() {\n"
      "  auto s = save(1);\n"
      "  if (save(2).is_ok()) return;\n"
      "  return save(3);\n"
      "}\n";
  EXPECT_TRUE(lint_one("src/io/x.cpp", src).empty());
}

TEST(Gclint, SkipsNamesWithAmbiguousReturnTypes) {
  // `add` is declared both Status- and void-returning somewhere in the
  // set: token matching cannot attribute a call, so it is not flagged.
  const std::vector<FileInput> files = {
      {"src/a.hpp", "gc::Status add(int);\n"},
      {"src/b.hpp", "void add(double);\n"},
      {"src/c.cpp", "void f() { add(1); }\n"},
  };
  EXPECT_TRUE(gclint::lint(files).empty());
}

TEST(Gclint, CollectsStatusNamesAcrossFiles) {
  const std::vector<FileInput> files = {
      {"src/api.hpp", "Result<int> parse(const std::string& s);\n"},
      {"src/use.cpp", "void f() {\n  parse(\"x\");\n}\n"},
  };
  EXPECT_TRUE(has_rule(gclint::lint(files), "unchecked-status"));
}

// ---------- unordered-iter ----------

TEST(Gclint, FlagsUnorderedIterationIntoSerializedOutput) {
  const std::string src =
      "std::unordered_map<int, int> m_;\n"
      "void f(net::Writer& w) {\n"
      "  for (const auto& kv : m_) {\n"
      "    w.encode(kv.second);\n"
      "  }\n"
      "}\n";
  const auto findings = lint_one("src/diet/x.cpp", src);
  ASSERT_TRUE(has_rule(findings, "unordered-iter"));
  EXPECT_EQ(findings[0].line, 3);
}

TEST(Gclint, AllowsOrderedIterationIntoSerializedOutput) {
  const std::string src =
      "std::map<int, int> m_;\n"
      "void f(net::Writer& w) {\n"
      "  for (const auto& kv : m_) w.encode(kv.second);\n"
      "}\n";
  EXPECT_TRUE(lint_one("src/diet/x.cpp", src).empty());
}

TEST(Gclint, AllowsUnorderedIterationWithoutSink) {
  const std::string src =
      "std::unordered_map<int, int> m_;\n"
      "int f() {\n"
      "  int total = 0;\n"
      "  for (const auto& kv : m_) total += kv.second;\n"
      "  return total;\n"
      "}\n";
  EXPECT_TRUE(lint_one("src/diet/x.cpp", src).empty());
}

// ---------- dtm-store ----------

TEST(Gclint, FlagsDirectDataManagerStoreOutsideDtm) {
  const std::string src =
      "dtm::DataManager cache_;\n"
      "void f(const std::string& id, dtm::Blob blob) {\n"
      "  cache_.store(id, std::move(blob));\n"
      "}\n";
  const auto findings = lint_one("src/diet/agent.cpp", src);
  ASSERT_TRUE(has_rule(findings, "dtm-store"));
  EXPECT_EQ(findings[0].line, 3);
}

TEST(Gclint, FlagsStoreThroughAccessorChain) {
  EXPECT_TRUE(has_rule(
      lint_one("src/workflow/campaign.cpp",
               "void f(diet::Sed& sed) { sed.data_manager().store(id, b); }\n"),
      "dtm-store"));
}

TEST(Gclint, AllowsStoreInsideDtmAndSed) {
  const std::string src =
      "dtm::DataManager store_;\n"
      "void f() { store_.store(id, std::move(blob)); }\n";
  EXPECT_TRUE(lint_one("src/dtm/datamgr.cpp", src).empty());
  EXPECT_TRUE(lint_one("src/diet/sed.cpp", src).empty());
}

TEST(Gclint, IgnoresAtomicStore) {
  // .store() on names never declared DataManager (atomics) is invisible.
  const std::string src =
      "std::atomic<bool> enabled_;\n"
      "void f() { enabled_.store(true, std::memory_order_relaxed); }\n";
  EXPECT_TRUE(lint_one("src/obs/x.hpp", src).empty());
}

// ---------- hot-string ----------

TEST(Gclint, FlagsToStringOnDesHotPath) {
  const std::string src =
      "void f(int type) {\n"
      "  track = std::to_string(type);\n"
      "}\n";
  for (const char* path : {"src/des/engine.cpp", "src/net/simenv.cpp"}) {
    const auto findings = lint_one(path, src);
    ASSERT_TRUE(has_rule(findings, "hot-string")) << path;
    EXPECT_EQ(findings[0].line, 2);
  }
}

TEST(Gclint, FlagsLiteralConcatenationOnDesHotPath) {
  EXPECT_TRUE(has_rule(
      lint_one("src/des/engine.cpp",
               "void f() { name = \"ev:\" + suffix; }\n"),
      "hot-string"));
}

TEST(Gclint, AllowsHotStringOutsideHotPath) {
  // diet/, obs/, workflow/ build strings freely; only the DES kernel and
  // the SimEnv message path are rate-critical.
  EXPECT_TRUE(lint_one("src/diet/agent.cpp",
                       "void f(int t) { s = std::to_string(t); }\n")
                  .empty());
  // net/ files other than simenv.cpp (e.g. realenv.cpp) are out of scope.
  EXPECT_TRUE(lint_one("src/net/realenv.cpp",
                       "void f(int t) { s = std::to_string(t); }\n")
                  .empty());
}

TEST(Gclint, AllowsHotStringInsideTracingGuard) {
  const std::string src =
      "void f(int type) {\n"
      "  if (obs::tracing()) {\n"
      "    trace(\"msg:\" + std::to_string(type));\n"
      "  }\n"
      "  if (obs::metrics_on()) {\n"
      "    m.counter(\"x_\" + std::to_string(type)).inc();\n"
      "  }\n"
      "}\n";
  EXPECT_TRUE(lint_one("src/net/simenv.cpp", src).empty());
}

TEST(Gclint, FlagsHotStringAfterGuardBlockCloses) {
  const std::string src =
      "void f(int type) {\n"
      "  if (obs::tracing()) {\n"
      "    trace(std::to_string(type));\n"
      "  }\n"
      "  name = std::to_string(type);\n"
      "}\n";
  const auto findings = lint_one("src/des/engine.cpp", src);
  ASSERT_TRUE(has_rule(findings, "hot-string"));
  EXPECT_EQ(findings[0].line, 5);
}

TEST(Gclint, HotStringSuppressionWorks) {
  const std::string src =
      "void f(int n) {\n"
      "  // gclint: allow(hot-string) built once per stream, cached\n"
      "  label = \"n\" + std::to_string(n);\n"
      "}\n";
  EXPECT_TRUE(lint_one("src/net/simenv.cpp", src).empty());
}

// ---------- mc-blocking ----------

TEST(Gclint, FlagsSleepInMiddleware) {
  for (const char* dir : {"diet", "dtm"}) {
    const auto findings = lint_one(
        std::string("src/") + dir + "/x.cpp",
        "void f() { std::this_thread::sleep_for(std::chrono::seconds(1)); "
        "}\n");
    EXPECT_TRUE(has_rule(findings, "mc-blocking")) << dir;
  }
}

TEST(Gclint, FlagsUnboundedWaitInMiddleware) {
  EXPECT_TRUE(has_rule(
      lint_one("src/diet/x.cpp", "cv.wait(lock, [] { return done; });\n"),
      "mc-blocking"));
  EXPECT_TRUE(has_rule(
      lint_one("src/dtm/x.cpp", "sem->acquire();\n"), "mc-blocking"));
  EXPECT_TRUE(has_rule(
      lint_one("src/diet/x.cpp", "return future.get();\n"), "mc-blocking"));
}

TEST(Gclint, AllowsBoundedWaitAndNonFutureGet) {
  // wait_for has a deadline, wait_idle is a different API, and .get() on
  // a smart pointer is not a blocking call.
  const std::string src =
      "bool ok = cv.wait_for(lock, timeout, [] { return done; });\n"
      "env->wait_idle();\n"
      "auto* p = holder.get();\n";
  EXPECT_TRUE(lint_one("src/diet/x.cpp", src).empty());
}

TEST(Gclint, AllowsBlockingOutsideMiddleware) {
  EXPECT_TRUE(lint_one("src/parallel/pool.cpp",
                       "cv.wait(lock, [] { return !queue.empty(); });\n")
                  .empty());
}

TEST(Gclint, McBlockingSuppressionWorks) {
  const std::string src =
      "// gclint: allow(mc-blocking) RealEnv client-thread wait\n"
      "cv.wait(lock, [] { return done; });\n";
  EXPECT_TRUE(lint_one("src/diet/x.cpp", src).empty());
}

// ---------- net-cost ----------

TEST(Gclint, FlagsTransferTimeOutsideNetAndPlatform) {
  EXPECT_TRUE(has_rule(
      lint_one("src/diet/x.cpp",
               "const double t = env()->topology().transfer_time(a, b, n);\n"),
      "net-cost"));
  EXPECT_TRUE(has_rule(
      lint_one("src/sched/x.cpp",
               "double bps = topo.bandwidth(a, b);\n"),
      "net-cost"));
}

TEST(Gclint, AllowsCostArithmeticInNetAndPlatform) {
  const std::string src =
      "const double t = topology().transfer_time(a, b, n);\n"
      "const double bps = bandwidth(a, b);\n";
  EXPECT_TRUE(lint_one("src/net/simenv.cpp", src).empty());
  EXPECT_TRUE(lint_one("src/platform/platform.cpp", src).empty());
}

TEST(Gclint, AllowsEstimateTransferEverywhere) {
  EXPECT_TRUE(
      lint_one("src/diet/x.cpp",
               "const double t = env()->estimate_transfer_s(a, b, n);\n")
          .empty());
}

TEST(Gclint, NetCostSuppressionWorks) {
  const std::string src =
      "// gclint: allow(net-cost) closed-form by design: idle-network bound\n"
      "const double t = topo.transfer_time(a, b, n);\n";
  EXPECT_TRUE(lint_one("src/diet/x.cpp", src).empty());
}

// ---------- comment and string immunity ----------

TEST(Gclint, IgnoresCommentsAndStrings) {
  const std::string src =
      "// std::rand() in a comment\n"
      "/* std::thread in a block comment */\n"
      "const char* s = \"std::rand()\";\n"
      "const char* r = R\"(std::thread)\";\n";
  EXPECT_TRUE(lint_one("src/diet/x.cpp", src).empty());
}

// ---------- suppressions ----------

TEST(Gclint, SameLineSuppressionSilencesFinding) {
  const std::string src =
      "std::thread t([]{});  // gclint: allow(thread) test fixture thread\n";
  EXPECT_TRUE(lint_one("src/diet/x.cpp", src).empty());
}

TEST(Gclint, StandaloneDirectiveCoversNextLine) {
  const std::string src =
      "// gclint: allow(thread) test fixture thread\n"
      "std::thread t([]{});\n";
  EXPECT_TRUE(lint_one("src/diet/x.cpp", src).empty());
}

TEST(Gclint, FileDirectiveCoversWholeFile) {
  const std::string src =
      "// gclint: allow-file(thread) this backend owns its threads\n"
      "std::thread a([]{});\n"
      "std::thread b([]{});\n";
  EXPECT_TRUE(lint_one("src/diet/x.cpp", src).empty());
}

TEST(Gclint, SuppressionIsRuleSpecific) {
  const std::string src =
      "// gclint: allow(wallclock) wrong rule\n"
      "std::thread t([]{});\n";
  EXPECT_TRUE(has_rule(lint_one("src/diet/x.cpp", src), "thread"));
}

TEST(Gclint, UnknownRuleInDirectiveIsItselfReported) {
  const auto findings = lint_one(
      "src/diet/x.cpp", "// gclint: allow(no-such-rule) typo\nint x;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "directive");
}

TEST(Gclint, RuleListIsStable) {
  const auto& names = gclint::rule_names();
  ASSERT_EQ(names.size(), 9u);
  EXPECT_NE(std::find(names.begin(), names.end(), "unchecked-status"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "hot-string"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "mc-blocking"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "net-cost"), names.end());
}

}  // namespace
