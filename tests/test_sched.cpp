// Tests for estimation vectors and scheduling policies.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sched/estimation.hpp"
#include "sched/policy.hpp"

namespace gc::sched {
namespace {

Candidate make_candidate(std::uint64_t uid, double power, double queue,
                         double assigned, double comp = -1.0) {
  Candidate c;
  c.sed_uid = uid;
  c.sed_endpoint = static_cast<net::Endpoint>(uid + 100);
  c.sed_name = "SeD-" + std::to_string(uid);
  c.est.host_power = power;
  c.est.queue_length = queue;
  c.est.agent_assigned = assigned;
  c.est.service_comp_s = comp;
  return c;
}

TEST(Estimation, SerializeRoundtrip) {
  Estimation est;
  est.timestamp = 12.5;
  est.host_power = 1.43;
  est.machines = 16;
  est.queue_length = 3;
  est.queued_work_s = 15000.0;
  est.free_cpu = 0.15;
  est.free_mem_mb = 1024.0;
  est.service_comp_s = 4190.0;
  est.jobs_completed = 9;
  est.agent_assigned = 2;

  net::Writer writer;
  est.serialize(writer);
  net::Reader reader(writer.data());
  const Estimation back = Estimation::deserialize(reader);
  EXPECT_TRUE(reader.done());
  EXPECT_DOUBLE_EQ(back.timestamp, est.timestamp);
  EXPECT_DOUBLE_EQ(back.host_power, est.host_power);
  EXPECT_EQ(back.machines, est.machines);
  EXPECT_DOUBLE_EQ(back.queued_work_s, est.queued_work_s);
  EXPECT_DOUBLE_EQ(back.service_comp_s, est.service_comp_s);
  EXPECT_EQ(back.jobs_completed, est.jobs_completed);
  EXPECT_DOUBLE_EQ(back.agent_assigned, est.agent_assigned);
}

TEST(Estimation, CandidateListRoundtrip) {
  std::vector<Candidate> candidates;
  for (int i = 0; i < 5; ++i) {
    candidates.push_back(make_candidate(static_cast<std::uint64_t>(i),
                                        1.0 + i, i, 0.0));
  }
  net::Writer writer;
  serialize_candidates(writer, candidates);
  net::Reader reader(writer.data());
  const auto back = deserialize_candidates(reader);
  ASSERT_EQ(back.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(back[static_cast<size_t>(i)].sed_uid,
              static_cast<std::uint64_t>(i));
    EXPECT_EQ(back[static_cast<size_t>(i)].sed_name,
              "SeD-" + std::to_string(i));
  }
}

TEST(Policy, RegistryKnowsAllNames) {
  for (const auto& name : policy_names()) {
    EXPECT_NE(make_policy(name), nullptr) << name;
  }
  EXPECT_EQ(make_policy("nonsense"), nullptr);
}

TEST(Policy, DefaultPrefersLeastOutstanding) {
  auto policy = make_default_policy();
  Rng rng(1);
  std::vector<Candidate> candidates = {
      make_candidate(1, 1.0, 0.0, 5.0),
      make_candidate(2, 1.0, 0.0, 0.0),
      make_candidate(3, 1.0, 0.0, 2.0),
  };
  policy->rank(candidates, RequestContext{}, rng);
  EXPECT_EQ(candidates[0].sed_uid, 2u);
  EXPECT_EQ(candidates[1].sed_uid, 3u);
  EXPECT_EQ(candidates[2].sed_uid, 1u);
}

TEST(Policy, DefaultUsesMaxOfQueueAndAssigned) {
  auto policy = make_default_policy();
  Rng rng(1);
  // uid 1: agent thinks 0 assigned but SED reports queue 4 (stale agent).
  std::vector<Candidate> candidates = {
      make_candidate(1, 1.0, 4.0, 0.0),
      make_candidate(2, 1.0, 0.0, 1.0),
  };
  policy->rank(candidates, RequestContext{}, rng);
  EXPECT_EQ(candidates[0].sed_uid, 2u);
}

TEST(Policy, DefaultIgnoresPower) {
  // The paper's point: the deployed default does NOT prefer fast machines.
  auto policy = make_default_policy();
  Rng rng(1);
  int fast_first = 0;
  for (int round = 0; round < 200; ++round) {
    std::vector<Candidate> candidates = {
        make_candidate(1, 1.43, 0.0, 0.0),  // fast
        make_candidate(2, 1.00, 0.0, 0.0),  // slow, same outstanding
    };
    policy->rank(candidates, RequestContext{}, rng);
    if (candidates[0].sed_uid == 1) ++fast_first;
  }
  // Ties break randomly: roughly half each, never all-fast.
  EXPECT_GT(fast_first, 60);
  EXPECT_LT(fast_first, 140);
}

TEST(Policy, DefaultSpreadsRoundOfAssignments) {
  // Simulate the MA loop: assign 100 requests, updating outstanding counts.
  auto policy = make_default_policy();
  Rng rng(3);
  std::vector<double> outstanding(11, 0.0);
  std::vector<int> assigned(11, 0);
  for (int r = 0; r < 100; ++r) {
    std::vector<Candidate> candidates;
    for (std::uint64_t uid = 0; uid < 11; ++uid) {
      candidates.push_back(make_candidate(
          uid, 1.0 + 0.05 * static_cast<double>(uid), 0.0,
          outstanding[uid]));
    }
    policy->rank(candidates, RequestContext{}, rng);
    const std::uint64_t chosen = candidates[0].sed_uid;
    outstanding[chosen] += 1.0;
    assigned[chosen] += 1;
  }
  // 100 over 11: every SED got 9 requests, one got 10 (Figure 4 left).
  int nines = 0;
  int tens = 0;
  for (const int count : assigned) {
    if (count == 9) ++nines;
    if (count == 10) ++tens;
  }
  EXPECT_EQ(nines, 10);
  EXPECT_EQ(tens, 1);
}

TEST(Policy, MctPrefersFasterWhenIdle) {
  auto policy = make_mct_policy();
  Rng rng(1);
  std::vector<Candidate> candidates = {
      make_candidate(1, 1.00, 0.0, 0.0, 5990.0),
      make_candidate(2, 1.43, 0.0, 0.0, 4189.0),
  };
  policy->rank(candidates, RequestContext{}, rng);
  EXPECT_EQ(candidates[0].sed_uid, 2u);
}

TEST(Policy, MctBalancesBacklogAgainstSpeed) {
  auto policy = make_mct_policy();
  Rng rng(1);
  // Fast SED has 2 outstanding jobs of 4189s (completion = 3*4189 = 12567);
  // slow idle SED completes in 5990 -> slow wins.
  Candidate fast = make_candidate(1, 1.43, 2.0, 2.0, 4189.0);
  fast.est.queued_work_s = 2.0 * 4189.0;
  Candidate slow = make_candidate(2, 1.00, 0.0, 0.0, 5990.0);
  std::vector<Candidate> candidates = {fast, slow};
  policy->rank(candidates, RequestContext{}, rng);
  EXPECT_EQ(candidates[0].sed_uid, 2u);
}

TEST(Policy, MctFallsBackWithoutPluginEstimate) {
  auto policy = make_mct_policy();
  Rng rng(1);
  std::vector<Candidate> candidates = {
      make_candidate(1, 1.00, 0.0, 0.0, -1.0),
      make_candidate(2, 2.00, 0.0, 0.0, -1.0),
  };
  policy->rank(candidates, RequestContext{}, rng);
  EXPECT_EQ(candidates[0].sed_uid, 2u);  // power-only fallback
}

TEST(Policy, FastestSortsByPower) {
  auto policy = make_fastest_policy();
  Rng rng(1);
  std::vector<Candidate> candidates = {
      make_candidate(1, 1.0, 0.0, 0.0),
      make_candidate(2, 1.43, 9.0, 9.0),  // busy but fast: still first
      make_candidate(3, 1.2, 0.0, 0.0),
  };
  policy->rank(candidates, RequestContext{}, rng);
  EXPECT_EQ(candidates[0].sed_uid, 2u);
  EXPECT_EQ(candidates[1].sed_uid, 3u);
  EXPECT_EQ(candidates[2].sed_uid, 1u);
}

TEST(Policy, RandomIsUniformish) {
  auto policy = make_random_policy();
  Rng rng(9);
  std::vector<int> first_count(4, 0);
  for (int round = 0; round < 400; ++round) {
    std::vector<Candidate> candidates;
    for (std::uint64_t uid = 0; uid < 4; ++uid) {
      candidates.push_back(make_candidate(uid, 1.0, 0.0, 0.0));
    }
    policy->rank(candidates, RequestContext{}, rng);
    first_count[candidates[0].sed_uid] += 1;
  }
  for (const int count : first_count) {
    EXPECT_GT(count, 60);
    EXPECT_LT(count, 140);
  }
}

TEST(Policy, EmptyCandidateListIsFine) {
  Rng rng(1);
  for (const auto& name : policy_names()) {
    auto policy = make_policy(name);
    std::vector<Candidate> empty;
    policy->rank(empty, RequestContext{}, rng);
    EXPECT_TRUE(empty.empty());
  }
}

TEST(Policy, SingleCandidateUntouched) {
  Rng rng(1);
  for (const auto& name : policy_names()) {
    auto policy = make_policy(name);
    std::vector<Candidate> one = {make_candidate(7, 1.0, 0.0, 0.0)};
    policy->rank(one, RequestContext{}, rng);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0].sed_uid, 7u);
  }
}

}  // namespace
}  // namespace gc::sched
