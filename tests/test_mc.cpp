// Model-checker suite: the checker checked.
//
// Three kinds of evidence that src/mc does what it claims:
//  - clean scenarios are explored exhaustively (and the sleep-set
//    reduction beats naive enumeration by the margin the DESIGN.md
//    section advertises), with stable schedule counts as a regression
//    bound on both the scenarios and the reduction;
//  - each mutation seam (check/mutation.hpp) re-introduces a known-fixed
//    ordering bug, and the explorer finds it and produces a
//    counterexample that replay() reproduces deterministically;
//  - the trace codec round-trips and replay is bit-stable.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/mutation.hpp"
#include "mc/checker.hpp"
#include "mc/scenario.hpp"

namespace gc {
namespace {

const mc::Scenario& scenario(const std::string& name) {
  const mc::Scenario* s = mc::find_scenario(name);
  EXPECT_NE(s, nullptr) << "no scenario named " << name;
  return *s;
}

// ---------- exhaustive verification of clean scenarios ----------

TEST(McSmoke, SmallScenarioExploresCleanAndComplete) {
  const mc::Result result = mc::explore(scenario("small").fn);
  EXPECT_TRUE(result.complete);
  EXPECT_FALSE(result.violation_found) << result.violation.what;
  // Regression bound: 1 MA / 1 LA / 2 SED with two concurrent calls has
  // 16 inequivalent schedules today. Growing this number means new
  // nondeterminism leaked into the scenario (or ownership attribution
  // regressed); shrinking it means coverage silently narrowed.
  EXPECT_GE(result.schedules_explored, 8u);
  EXPECT_LE(result.schedules_explored, 64u);
  EXPECT_GT(result.schedules_pruned, 0u) << "sleep sets pruned nothing";
}

TEST(McSmoke, SleepSetsPruneAtLeastTenfold) {
  mc::Options dpor;
  const mc::Result reduced = mc::explore(scenario("small").fn, dpor);

  mc::Options naive;
  naive.sleep_sets = false;
  const mc::Result full = mc::explore(scenario("small").fn, naive);

  ASSERT_TRUE(reduced.complete);
  ASSERT_TRUE(full.complete);
  EXPECT_FALSE(full.violation_found) << full.violation.what;
  // Naive enumeration visits every ordering of every tie group; DPOR
  // executes one schedule per Mazurkiewicz trace. The paper-sized
  // deployments only get more commutative, so 10x here is the floor.
  EXPECT_GE(full.schedules_explored, 10 * reduced.schedules_explored)
      << "naive=" << full.schedules_explored
      << " dpor=" << reduced.schedules_explored;
}

TEST(McSmoke, FaultScenariosExploreClean) {
  for (const char* name :
       {"small_dup", "small_drop", "crash_heal", "federation_crash"}) {
    const mc::Result result = mc::explore(scenario(name).fn);
    EXPECT_TRUE(result.complete) << name;
    EXPECT_FALSE(result.violation_found)
        << name << ": " << result.violation.what;
  }
}

// ---------- the checker catches re-introduced bugs ----------

// Each known-fixed ordering bug, re-enabled through its seam, must be
// (a) found by exploration, (b) reported with the violating schedule,
// and (c) reproducible by replaying the minimized counterexample.
void expect_mutation_caught(check::Mutation mutation,
                            const std::string& scenario_name) {
  if (!check::kMutationsCompiled) {
    GTEST_SKIP() << "built without GC_MC_MUTATIONS";
  }
  const mc::Scenario& s = scenario(scenario_name);
  check::ScopedMutation seam(mutation);

  const mc::Result result = mc::explore(s.fn);
  ASSERT_TRUE(result.violation_found)
      << scenario_name << " explored " << result.schedules_explored
      << " schedules without tripping the seeded bug";
  EXPECT_FALSE(result.violation.what.empty());
  EXPECT_FALSE(result.violating_schedule.empty());

  // The counterexample must survive the encode -> decode -> replay trip.
  const std::string trace = mc::encode_trace(s.name, result.counterexample);
  std::string decoded_name;
  std::vector<mc::Decision> decoded;
  ASSERT_TRUE(mc::decode_trace(trace, decoded_name, decoded));
  EXPECT_EQ(decoded_name, s.name);
  const mc::ReplayResult replayed = mc::replay(s.fn, decoded);
  EXPECT_TRUE(replayed.violation_found)
      << "counterexample did not reproduce under replay";
  EXPECT_EQ(replayed.violation.what, result.violation.what);
}

TEST(McMutation, StaleReplyReusedWireIdIsCaught) {
  // Client retry reusing the dead attempt's wire id + a dropped first
  // result: the stale-duplicate journal swallows the retry's answer.
  expect_mutation_caught(check::Mutation::kStaleReplyReuseWire, "small_drop");
}

TEST(McMutation, SedSkippingDedupJournalIsCaught) {
  // Network-duplicated kCallData + no dedup journal: the SED runs the
  // same call twice and the live-call UniqueIds invariant trips.
  expect_mutation_caught(check::Mutation::kSedSkipDedup, "small_dup");
}

TEST(McMutation, ReplicasKeptOnEvictionAreCaught) {
  // Heartbeat eviction that forgets drop_sed_replicas: the catalog keeps
  // routing reads at a corpse, which the post-crash probe asserts on.
  expect_mutation_caught(check::Mutation::kKeepReplicasOnEviction,
                         "crash_heal");
}

TEST(McMutation, CleanRunsAfterScopedMutationRestores) {
  if (!check::kMutationsCompiled) {
    GTEST_SKIP() << "built without GC_MC_MUTATIONS";
  }
  {
    check::ScopedMutation seam(check::Mutation::kSedSkipDedup);
    EXPECT_TRUE(check::mutation_enabled(check::Mutation::kSedSkipDedup));
  }
  EXPECT_FALSE(check::mutation_enabled(check::Mutation::kSedSkipDedup));
  const mc::Result result = mc::explore(scenario("small_dup").fn);
  EXPECT_TRUE(result.complete);
  EXPECT_FALSE(result.violation_found) << result.violation.what;
}

// ---------- trace codec and replay determinism ----------

TEST(McTrace, EncodeDecodeRoundTrips) {
  const std::vector<mc::Decision> decisions = {{0, 42}, {3, 0xdeadbeefULL},
                                               {17, 1}};
  const std::string text = mc::encode_trace("small", decisions);
  std::string name;
  std::vector<mc::Decision> back;
  ASSERT_TRUE(mc::decode_trace(text, name, back));
  EXPECT_EQ(name, "small");
  ASSERT_EQ(back.size(), decisions.size());
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    EXPECT_EQ(back[i].index, decisions[i].index);
    EXPECT_EQ(back[i].cid, decisions[i].cid);
  }
}

TEST(McTrace, DecodeRejectsGarbage) {
  std::string name;
  std::vector<mc::Decision> decisions;
  EXPECT_FALSE(mc::decode_trace("", name, decisions));
  EXPECT_FALSE(mc::decode_trace("not a trace\n", name, decisions));
  EXPECT_FALSE(mc::decode_trace(
      "# gc mc counterexample v1\ndecision 0 1\n", name, decisions))
      << "trace without a scenario line must be rejected";
}

TEST(McTrace, ReplayIsDeterministic) {
  const mc::Scenario& s = scenario("small");
  // Force the second choice at the first two multi-choice points by
  // replaying what the default run reports there.
  const mc::ReplayResult base = mc::replay(s.fn, {});
  ASSERT_GE(base.schedule.size(), 2u);

  const mc::ReplayResult again = mc::replay(s.fn, {});
  ASSERT_EQ(again.schedule.size(), base.schedule.size());
  for (std::size_t i = 0; i < base.schedule.size(); ++i) {
    EXPECT_EQ(again.schedule[i].cid, base.schedule[i].cid) << "step " << i;
    EXPECT_EQ(again.schedule[i].time, base.schedule[i].time) << "step " << i;
    EXPECT_EQ(again.schedule[i].owner, base.schedule[i].owner) << "step " << i;
  }
  EXPECT_FALSE(base.violation_found);
}

TEST(McTrace, ForcedDecisionChangesTheSchedule) {
  const mc::Scenario& s = scenario("small");
  const mc::ReplayResult base = mc::replay(s.fn, {});
  // Find a multi-choice step and force its non-default alternative via
  // a fresh exploration's counterexample machinery: simplest is to force
  // the cid that did NOT run first at the first 2-wide decision.
  const mc::Step* wide = nullptr;
  for (const mc::Step& step : base.schedule) {
    if (step.alternatives >= 2) {
      wide = &step;
      break;
    }
  }
  ASSERT_NE(wide, nullptr) << "scenario has no concurrency to permute";
  // Replaying the same cid that ran by default must be a no-op...
  const mc::ReplayResult same =
      mc::replay(s.fn, {{wide->index, wide->cid}});
  ASSERT_GT(same.schedule.size(), 0u);
  EXPECT_EQ(same.schedule[0].cid, base.schedule[0].cid);
  EXPECT_FALSE(same.violation_found);
}

}  // namespace
}  // namespace gc
