// The shared thread pool: chunking, nesting, exception propagation, and
// the determinism contract (byte-identical simulation snapshots at any
// thread count).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "parallel/pool.hpp"
#include "ramses/simulation.hpp"

namespace {

using gc::parallel::chunk_count;
using gc::parallel::for_each_chunk;
using gc::parallel::parallel_for;
using gc::parallel::parallel_reduce;
using gc::parallel::set_thread_count;
using gc::parallel::thread_count;

/// Restores the default thread count when a test exits.
struct ThreadCountGuard {
  ~ThreadCountGuard() { set_thread_count(0); }
};

TEST(Pool, DefaultThreadCountIsAtLeastOne) {
  EXPECT_GE(thread_count(), 1u);
}

TEST(Pool, SetThreadCountRoundtrip) {
  ThreadCountGuard guard;
  set_thread_count(3);
  EXPECT_EQ(thread_count(), 3u);
  set_thread_count(1);
  EXPECT_EQ(thread_count(), 1u);
  set_thread_count(0);  // back to default
  EXPECT_GE(thread_count(), 1u);
}

TEST(Pool, ChunkCount) {
  EXPECT_EQ(chunk_count(0, 0, 4), 0u);
  EXPECT_EQ(chunk_count(0, 1, 4), 1u);
  EXPECT_EQ(chunk_count(0, 4, 4), 1u);
  EXPECT_EQ(chunk_count(0, 5, 4), 2u);
  EXPECT_EQ(chunk_count(3, 11, 4), 2u);
  EXPECT_EQ(chunk_count(0, 8, 0), 8u);  // grain 0 treated as 1
}

TEST(Pool, ParallelForCoversEveryIndexOnce) {
  ThreadCountGuard guard;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    set_thread_count(threads);
    for (const std::size_t grain : {1u, 3u, 7u, 1000u}) {
      std::vector<std::atomic<int>> hits(257);
      for (auto& h : hits) h = 0;
      parallel_for(0, hits.size(), grain,
                   [&](std::size_t begin, std::size_t end) {
                     for (std::size_t i = begin; i < end; ++i) ++hits[i];
                   });
      for (std::size_t i = 0; i < hits.size(); ++i) {
        EXPECT_EQ(hits[i], 1) << "threads=" << threads << " grain=" << grain
                              << " index=" << i;
      }
    }
  }
}

TEST(Pool, EmptyAndSingleElementRanges) {
  ThreadCountGuard guard;
  set_thread_count(4);
  int calls = 0;
  parallel_for(5, 5, 8, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(5, 6, 8, [&](std::size_t begin, std::size_t end) {
    ++calls;
    EXPECT_EQ(begin, 5u);
    EXPECT_EQ(end, 6u);
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(for_each_chunk(0, 0, 16,
                           [](std::size_t, std::size_t, std::size_t) {}),
            0u);
}

TEST(Pool, NestedCallsRunInlineAndComplete) {
  ThreadCountGuard guard;
  set_thread_count(4);
  std::vector<std::atomic<int>> hits(64 * 16);
  for (auto& h : hits) h = 0;
  parallel_for(0, 64, 4, [&](std::size_t outer_b, std::size_t outer_e) {
    for (std::size_t o = outer_b; o < outer_e; ++o) {
      EXPECT_TRUE(gc::parallel::in_parallel_region());
      parallel_for(0, 16, 2, [&](std::size_t inner_b, std::size_t inner_e) {
        for (std::size_t i = inner_b; i < inner_e; ++i) ++hits[o * 16 + i];
      });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h, 1);
  EXPECT_FALSE(gc::parallel::in_parallel_region());
}

TEST(Pool, ExceptionPropagatesAndPoolSurvives) {
  ThreadCountGuard guard;
  for (const std::size_t threads : {1u, 4u}) {
    set_thread_count(threads);
    EXPECT_THROW(
        parallel_for(0, 100, 1,
                     [](std::size_t begin, std::size_t end) {
                       for (std::size_t i = begin; i < end; ++i) {
                         if (i == 73) throw std::runtime_error("boom");
                       }
                     }),
        std::runtime_error);
    // The pool must remain usable after a failed region.
    std::atomic<int> sum{0};
    parallel_for(0, 10, 1, [&](std::size_t begin, std::size_t end) {
      sum += static_cast<int>(end - begin);
    });
    EXPECT_EQ(sum, 10);
  }
}

TEST(Pool, ReduceMatchesSerialSum) {
  ThreadCountGuard guard;
  set_thread_count(4);
  const std::size_t n = 100000;
  const auto total = parallel_reduce(
      0, n, 1024, std::uint64_t{0},
      [](std::size_t begin, std::size_t end) {
        std::uint64_t s = 0;
        for (std::size_t i = begin; i < end; ++i) s += i;
        return s;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(total, static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST(Pool, ReduceIsBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  // A floating-point sum whose value depends on the reduction tree: the
  // fixed chunking + ordered combine must give the same bits at 1, 2, 5
  // threads.
  std::vector<double> values(10001);
  double x = 0.1;
  for (auto& v : values) {
    v = x;
    x = x * 1.0001 + 1e-7;
  }
  auto sum_with = [&](std::size_t threads) {
    set_thread_count(threads);
    return parallel_reduce(
        0, values.size(), 97, 0.0,
        [&](std::size_t begin, std::size_t end) {
          double s = 0.0;
          for (std::size_t i = begin; i < end; ++i) s += values[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  const double s1 = sum_with(1);
  const double s2 = sum_with(2);
  const double s5 = sum_with(5);
  EXPECT_EQ(std::memcmp(&s1, &s2, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&s1, &s5, sizeof(double)), 0);
}

/// Byte-level equality of two particle sets (positions, momenta, masses,
/// ids — everything a snapshot carries).
bool byte_identical(const gc::ramses::ParticleSet& a,
                    const gc::ramses::ParticleSet& b) {
  auto same = [](const auto& u, const auto& v) {
    using T = typename std::decay_t<decltype(u)>::value_type;
    return u.size() == v.size() &&
           (u.empty() ||
            std::memcmp(u.data(), v.data(), u.size() * sizeof(T)) == 0);
  };
  return same(a.x, b.x) && same(a.y, b.y) && same(a.z, b.z) &&
         same(a.px, b.px) && same(a.py, b.py) && same(a.pz, b.pz) &&
         same(a.mass, b.mass) && same(a.id, b.id) && same(a.level, b.level);
}

TEST(Determinism, SimulationSnapshotsByteIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  gc::ramses::RunParams params;
  params.npart_dim = 8;
  params.pm_grid = 16;
  params.steps = 4;
  params.a_start = 0.1;
  params.seed = 1234;

  set_thread_count(1);
  const gc::ramses::RunResult serial = gc::ramses::run_simulation(params);
  set_thread_count(4);
  const gc::ramses::RunResult threaded = gc::ramses::run_simulation(params);

  ASSERT_FALSE(serial.snapshots.empty());
  ASSERT_EQ(serial.snapshots.size(), threaded.snapshots.size());
  for (std::size_t s = 0; s < serial.snapshots.size(); ++s) {
    EXPECT_EQ(serial.snapshots[s].aexp, threaded.snapshots[s].aexp);
    EXPECT_TRUE(byte_identical(serial.snapshots[s].particles,
                               threaded.snapshots[s].particles))
        << "snapshot " << s << " differs between GC_THREADS=1 and 4";
  }
}

TEST(Determinism, ZoomSimulationByteIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  gc::ramses::RunParams params;
  params.npart_dim = 8;
  params.pm_grid = 16;
  params.steps = 2;
  params.a_start = 0.1;
  params.seed = 77;
  params.zoom_levels = 1;
  params.zoom_centre = {0.5, 0.5, 0.5};

  set_thread_count(1);
  const auto serial = gc::ramses::run_simulation(params);
  set_thread_count(2);
  const auto threaded = gc::ramses::run_simulation(params);

  ASSERT_EQ(serial.snapshots.size(), threaded.snapshots.size());
  for (std::size_t s = 0; s < serial.snapshots.size(); ++s) {
    EXPECT_TRUE(byte_identical(serial.snapshots[s].particles,
                               threaded.snapshots[s].particles));
  }
}

}  // namespace
