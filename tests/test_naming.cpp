// Tests for the naming service.
#include <gtest/gtest.h>

#include "naming/registry.hpp"

namespace gc::naming {
namespace {

TEST(Registry, BindAndResolve) {
  Registry registry;
  EXPECT_TRUE(registry.bind("MA1", 42).is_ok());
  auto resolved = registry.resolve("MA1");
  ASSERT_TRUE(resolved.is_ok());
  EXPECT_EQ(resolved.value(), 42u);
}

TEST(Registry, DuplicateBindFails) {
  Registry registry;
  EXPECT_TRUE(registry.bind("MA1", 1).is_ok());
  const auto status = registry.bind("MA1", 2);
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(registry.resolve("MA1").value(), 1u);
}

TEST(Registry, RebindReplaces) {
  Registry registry;
  registry.rebind("LA-lyon", 1);
  registry.rebind("LA-lyon", 7);
  EXPECT_EQ(registry.resolve("LA-lyon").value(), 7u);
}

TEST(Registry, ResolveMissing) {
  Registry registry;
  const auto resolved = registry.resolve("nope");
  ASSERT_FALSE(resolved.is_ok());
  EXPECT_EQ(resolved.status().code(), ErrorCode::kNotFound);
}

TEST(Registry, Unbind) {
  Registry registry;
  registry.rebind("x", 1);
  EXPECT_TRUE(registry.unbind("x").is_ok());
  EXPECT_FALSE(registry.resolve("x").is_ok());
  EXPECT_FALSE(registry.unbind("x").is_ok());
}

TEST(Registry, ListAndSize) {
  Registry registry;
  registry.rebind("a", 1);
  registry.rebind("b", 2);
  registry.rebind("c", 3);
  EXPECT_EQ(registry.size(), 3u);
  auto names = registry.list();
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "c"}));
}

}  // namespace
}  // namespace gc::naming
