// Tests for the paper-style C API (DIET_client.h / DIET_server.h veneer)
// including the asynchronous GridRPC family.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "diet/agent.hpp"
#include "diet/capi.hpp"
#include "sched/policy.hpp"

namespace {

int solve_double(diet_profile_t* pb) {
  const std::int32_t* in = nullptr;
  if (diet_scalar_get(diet_parameter(pb, 0), &in, nullptr) != 0) return 1;
  const std::int32_t out = *in * 2;
  diet_scalar_set(diet_parameter(pb, 1), &out, DIET_VOLATILE, DIET_INT);
  return 0;
}

int solve_fail(diet_profile_t*) { return 42; }

/// One full in-process deployment usable by the C API.
class CapiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("gc_capi_" + std::to_string(::getpid())))
               .string();
    std::filesystem::create_directories(dir_);

    topology_ = std::make_unique<gc::net::UniformTopology>(1e-4, 1e9);
    env_ = std::make_unique<gc::net::RealEnv>(*topology_);
    registry_ = std::make_unique<gc::naming::Registry>();
    gc::diet::capi::bind_process(*env_, *registry_, 0);

    ma_ = std::make_unique<gc::diet::Agent>(
        gc::diet::Agent::Kind::kMaster, "MA1",
        gc::sched::make_default_policy(), gc::diet::AgentTuning{}, 1);
    env_->attach(*ma_, 1);
    registry_->rebind("MA1", ma_->endpoint());
    la_ = std::make_unique<gc::diet::Agent>(
        gc::diet::Agent::Kind::kLocal, "LA1",
        gc::sched::make_default_policy(), gc::diet::AgentTuning{}, 2);
    env_->attach(*la_, 2);
    registry_->rebind("LA1", la_->endpoint());
    la_->register_at(ma_->endpoint());

    sed_cfg_ = dir_ + "/sed.cfg";
    std::ofstream(sed_cfg_) << "parentName = LA1\nname = SeD-capi\n"
                               "nodeId = 3\nhostPower = 1.0\nmachines = 1\n";
    client_cfg_ = dir_ + "/client.cfg";
    std::ofstream(client_cfg_) << "MAName = MA1\n";

    // Registration messages are already queued; run the dispatcher so
    // tests that never call diet_initialize/diet_SeD still drain them.
    env_->start();
  }

  void TearDown() override {
    diet_finalize();
    env_->stop();
    gc::diet::capi::unbind_process();
    std::filesystem::remove_all(dir_);
  }

  void register_services() {
    diet_service_table_init(4);
    diet_profile_desc_t* desc = diet_profile_desc_alloc("double", 0, 0, 1);
    diet_generic_desc_set(diet_parameter(desc, 0), DIET_SCALAR, DIET_INT);
    diet_generic_desc_set(diet_parameter(desc, 1), DIET_SCALAR, DIET_INT);
    ASSERT_EQ(diet_service_table_add(desc, nullptr, solve_double), 0);
    diet_profile_desc_t* fail_desc =
        diet_profile_desc_alloc("always_fails", 0, 0, 1);
    diet_generic_desc_set(diet_parameter(fail_desc, 0), DIET_SCALAR, DIET_INT);
    diet_generic_desc_set(diet_parameter(fail_desc, 1), DIET_SCALAR, DIET_INT);
    ASSERT_EQ(diet_service_table_add(fail_desc, nullptr, solve_fail), 0);
    diet_profile_desc_free(desc);
    diet_profile_desc_free(fail_desc);
    ASSERT_EQ(diet_SeD(sed_cfg_.c_str(), 0, nullptr), 0);
  }

  diet_profile_t* make_profile(const char* name, std::int32_t value) {
    diet_profile_t* profile = diet_profile_alloc(name, 0, 0, 1);
    diet_scalar_set(diet_parameter(profile, 0), &value, DIET_VOLATILE,
                    DIET_INT);
    // OUT declared without value.
    diet_parameter(profile, 1)->desc.type = gc::diet::DataType::kScalar;
    diet_parameter(profile, 1)->desc.base = gc::diet::BaseType::kInt;
    return profile;
  }

  std::string dir_;
  std::string sed_cfg_;
  std::string client_cfg_;
  std::unique_ptr<gc::net::UniformTopology> topology_;
  std::unique_ptr<gc::net::RealEnv> env_;
  std::unique_ptr<gc::naming::Registry> registry_;
  std::unique_ptr<gc::diet::Agent> ma_;
  std::unique_ptr<gc::diet::Agent> la_;
};

TEST_F(CapiTest, InitializeRequiresValidConfig) {
  EXPECT_NE(diet_initialize("/nonexistent.cfg", 0, nullptr), 0);
  const std::string bad = dir_ + "/bad.cfg";
  std::ofstream(bad) << "MAName = NoSuchMA\n";
  EXPECT_NE(diet_initialize(bad.c_str(), 0, nullptr), 0);
  EXPECT_EQ(diet_initialize(client_cfg_.c_str(), 0, nullptr), 0);
}

TEST_F(CapiTest, SynchronousCallRoundtrip) {
  register_services();
  ASSERT_EQ(diet_initialize(client_cfg_.c_str(), 0, nullptr), 0);
  env_->wait_idle();

  diet_profile_t* profile = make_profile("double", 21);
  ASSERT_EQ(diet_call(profile), 0);
  const std::int32_t* result = nullptr;
  ASSERT_EQ(diet_scalar_get(diet_parameter(profile, 1), &result, nullptr), 0);
  EXPECT_EQ(*result, 42);
  diet_profile_free(profile);
}

TEST_F(CapiTest, FailingSolveSurfacesError) {
  register_services();
  ASSERT_EQ(diet_initialize(client_cfg_.c_str(), 0, nullptr), 0);
  env_->wait_idle();
  diet_profile_t* profile = make_profile("always_fails", 1);
  EXPECT_NE(diet_call(profile), 0);
  diet_profile_free(profile);
}

TEST_F(CapiTest, GrpcAliasesWork) {
  register_services();
  ASSERT_EQ(grpc_initialize(client_cfg_.c_str()), 0);
  env_->wait_idle();
  diet_profile_t* profile = make_profile("double", 5);
  ASSERT_EQ(grpc_call(profile), 0);
  const std::int32_t* result = nullptr;
  diet_scalar_get(diet_parameter(profile, 1), &result, nullptr);
  EXPECT_EQ(*result, 10);
  diet_profile_free(profile);
  EXPECT_EQ(grpc_finalize(), 0);
}

TEST_F(CapiTest, AsyncCallAndWait) {
  register_services();
  ASSERT_EQ(diet_initialize(client_cfg_.c_str(), 0, nullptr), 0);
  env_->wait_idle();

  diet_profile_t* profile = make_profile("double", 100);
  diet_reqID_t id = 0;
  ASSERT_EQ(diet_call_async(profile, &id), 0);
  EXPECT_GT(id, 0u);
  EXPECT_EQ(diet_wait(id), 0);
  EXPECT_EQ(diet_probe(id), 0);  // completed
  const std::int32_t* result = nullptr;
  diet_scalar_get(diet_parameter(profile, 1), &result, nullptr);
  EXPECT_EQ(*result, 200);
  EXPECT_EQ(diet_cancel(id), 0);
  EXPECT_EQ(diet_probe(id), -1);  // forgotten
  diet_profile_free(profile);
}

TEST_F(CapiTest, AsyncBurstWaitAll) {
  // The paper's client pattern: "he requests simultaneously 100
  // sub-simulations" — here a burst of 8 async calls + wait_all.
  register_services();
  ASSERT_EQ(diet_initialize(client_cfg_.c_str(), 0, nullptr), 0);
  env_->wait_idle();

  std::vector<diet_profile_t*> profiles;
  std::vector<diet_reqID_t> ids;
  for (int i = 0; i < 8; ++i) {
    profiles.push_back(make_profile("double", i));
    diet_reqID_t id = 0;
    ASSERT_EQ(diet_call_async(profiles.back(), &id), 0);
    ids.push_back(id);
  }
  EXPECT_EQ(diet_wait_all(), 0);
  for (int i = 0; i < 8; ++i) {
    const std::int32_t* result = nullptr;
    diet_scalar_get(diet_parameter(profiles[static_cast<size_t>(i)], 1),
                    &result, nullptr);
    EXPECT_EQ(*result, 2 * i);
    diet_profile_free(profiles[static_cast<size_t>(i)]);
  }
}

TEST_F(CapiTest, WaitAnyReturnsACompletedRequest) {
  register_services();
  ASSERT_EQ(diet_initialize(client_cfg_.c_str(), 0, nullptr), 0);
  env_->wait_idle();

  diet_profile_t* a = make_profile("double", 1);
  diet_profile_t* b = make_profile("double", 2);
  diet_reqID_t id_a = 0;
  diet_reqID_t id_b = 0;
  ASSERT_EQ(diet_call_async(a, &id_a), 0);
  ASSERT_EQ(diet_call_async(b, &id_b), 0);
  diet_reqID_t winner = 0;
  EXPECT_EQ(diet_wait_any(&winner), 0);
  EXPECT_TRUE(winner == id_a || winner == id_b);
  EXPECT_EQ(diet_wait_all(), 0);
  diet_profile_free(a);
  diet_profile_free(b);
}

TEST_F(CapiTest, ServiceTablePrintsAndRejectsDuplicates) {
  register_services();
  diet_print_service_table();
  diet_profile_desc_t* dup = diet_profile_desc_alloc("double", 0, 0, 1);
  diet_generic_desc_set(diet_parameter(dup, 0), DIET_SCALAR, DIET_INT);
  diet_generic_desc_set(diet_parameter(dup, 1), DIET_SCALAR, DIET_INT);
  EXPECT_NE(diet_service_table_add(dup, nullptr, solve_double), 0);
  diet_profile_desc_free(dup);
}

TEST_F(CapiTest, FreeDataClearsValue) {
  diet_profile_t* profile = diet_profile_alloc("x", 0, 0, 1);
  const std::int32_t v = 7;
  diet_scalar_set(diet_parameter(profile, 0), &v, DIET_VOLATILE, DIET_INT);
  EXPECT_TRUE(diet_parameter(profile, 0)->has_value());
  EXPECT_EQ(diet_free_data(diet_parameter(profile, 0)), 0);
  EXPECT_FALSE(diet_parameter(profile, 0)->has_value());
  EXPECT_NE(diet_free_data(nullptr), 0);
  diet_profile_free(profile);
}

TEST_F(CapiTest, FileArgumentsThroughCApi) {
  register_services();
  ASSERT_EQ(diet_initialize(client_cfg_.c_str(), 0, nullptr), 0);

  const std::string payload = dir_ + "/input.bin";
  std::ofstream(payload) << std::string(2048, 'z');

  diet_profile_t* profile = diet_profile_alloc("unused", 0, 0, 1);
  ASSERT_EQ(diet_file_set(diet_parameter(profile, 0), DIET_VOLATILE,
                          payload.c_str()),
            0);
  std::size_t size = 0;
  char* path = nullptr;
  ASSERT_EQ(diet_file_get(diet_parameter(profile, 0), nullptr, &size, &path),
            0);
  EXPECT_EQ(size, 2048u);
  EXPECT_STREQ(path, payload.c_str());
  std::free(path);
  // NULL-path OUT declaration (Section 4.3.2).
  ASSERT_EQ(diet_file_set(diet_parameter(profile, 1), DIET_VOLATILE, nullptr),
            0);
  EXPECT_FALSE(diet_parameter(profile, 1)->has_value());
  diet_profile_free(profile);
}

}  // namespace
