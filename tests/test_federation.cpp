// Federation suite: multi-MA deployments under test (ISSUE 9).
//
// The contract: an MA that cannot serve a request locally forwards the
// collect to capable peer MAs within a hop budget (TTL), peers answer
// with a bounded top-k candidate list, the same request arriving at a
// shard along two federation paths collects once (dedup), a forward that
// loops back to its origin shard is dropped, a dead peer MA is ejected by
// the heartbeat watchdog and rejoins when its beacons resume, persistent
// data is locatable across federation edges, and — the science contract —
// a federated campaign computes exactly what the single-MA campaign
// computes, fault-free and under every chaos plan.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "des/engine.hpp"
#include "diet/client.hpp"
#include "diet/deployment.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "naming/registry.hpp"
#include "net/simenv.hpp"
#include "workflow/campaign.hpp"

namespace gc {
namespace {

// ---------- shared service + fixture plumbing ----------

/// Scalar int service `name`: out = 2 * in. Each shard gets its own
/// ServiceTable, so a service can exist on some shards only — that is
/// what makes a local miss (and thus a federation forward) happen.
diet::ProfileDesc twice_desc(const std::string& name) {
  diet::ProfileDesc desc(name, 0, 0, 1);
  desc.arg(0).type = diet::DataType::kScalar;
  desc.arg(0).base = diet::BaseType::kInt;
  desc.arg(1).type = diet::DataType::kScalar;
  desc.arg(1).base = diet::BaseType::kInt;
  return desc;
}

void register_twice(diet::ServiceTable& services, const std::string& name) {
  diet::SolveFn solve = [](diet::ServiceContext& ctx) {
    ctx.compute(
        1.0,
        [&ctx]() {
          const auto in = ctx.profile().arg(0).get_scalar<std::int32_t>();
          if (!in.is_ok()) return 1;
          ctx.profile().arg(1).set_scalar<std::int32_t>(
              in.value() * 2, diet::BaseType::kInt,
              diet::Persistence::kVolatile);
          return 0;
        },
        [&ctx](int rc) { ctx.finish(rc); });
  };
  ASSERT_TRUE(services.add(twice_desc(name), std::move(solve)).is_ok());
}

/// Persistent-vector service `name`: out = sum of the vector. Used by the
/// cross-federation data-locality test.
void register_sum(diet::ServiceTable& services, const std::string& name) {
  diet::ProfileDesc desc(name, 0, 0, 1);
  desc.arg(0).type = diet::DataType::kVector;
  desc.arg(0).base = diet::BaseType::kDouble;
  desc.arg(1).type = diet::DataType::kScalar;
  desc.arg(1).base = diet::BaseType::kDouble;
  diet::SolveFn solve = [](diet::ServiceContext& ctx) {
    ctx.compute(
        1.0,
        [&ctx]() {
          const auto data = ctx.profile().arg(0).get_vector<double>();
          if (!data.is_ok()) return 1;
          double sum = 0.0;
          for (const double v : data.value()) sum += v;
          ctx.profile().arg(1).set_scalar<double>(
              sum, diet::BaseType::kDouble, diet::Persistence::kVolatile);
          return 0;
        },
        [&ctx](int rc) { ctx.finish(rc); });
  };
  ASSERT_TRUE(services.add(desc, std::move(solve)).is_ok());
}

/// One shard of a hand-built federation: `seds` SEDs under one LA. Nodes
/// are laid out 16 per shard so shards never share a node (isolation
/// faults hit exactly one shard's MA).
diet::DeploymentSpec shard_spec(int shard, int seds,
                                const diet::AgentTuning& tuning) {
  diet::DeploymentSpec spec;
  const net::NodeId base = static_cast<net::NodeId>(100 + 16 * shard);
  spec.ma_name = "MA" + std::to_string(shard + 1);
  spec.ma_node = base;
  spec.agent_tuning = tuning;
  if (tuning.heartbeat_timeout > 0.0) {
    // The watchdog owns liveness: SEDs must beat too (staggered like the
    // campaign does), and strike eviction must not erase children first.
    spec.sed_tuning.heartbeat_period = 0.17 + 0.01 * shard;
    spec.agent_tuning.max_child_timeouts = 0;
  }
  spec.seed = 42 + static_cast<std::uint64_t>(shard);
  diet::DeploymentSpec::LaSpec la;
  la.name = "LA" + std::to_string(shard + 1);
  la.node = base + 1;
  for (int s = 0; s < seds; ++s) {
    diet::DeploymentSpec::SedSpec sed;
    sed.name = "SeD" + std::to_string(shard + 1) + "-" + std::to_string(s);
    sed.node = base + 2 + static_cast<net::NodeId>(s);
    sed.machines = 2;
    la.sed_indexes.push_back(s);
    spec.seds.push_back(sed);
  }
  spec.las.push_back(la);
  return spec;
}

/// A full-mesh federation (diet::Federation wiring) with one service
/// table per shard.
struct FedFixture {
  FedFixture(std::vector<std::vector<std::string>> shard_services,
             const diet::AgentTuning& tuning, int seds_per_shard = 1)
      : topology(1e-3, 1.25e8), env(engine, topology) {
    const std::size_t n = shard_services.size();
    std::vector<diet::ServiceTable*> table_ptrs;
    std::vector<diet::DeploymentSpec> specs;
    for (std::size_t i = 0; i < n; ++i) {
      tables.push_back(std::make_unique<diet::ServiceTable>());
      for (const std::string& service : shard_services[i]) {
        if (service.rfind("sum", 0) == 0) {
          register_sum(*tables[i], service);
        } else {
          register_twice(*tables[i], service);
        }
      }
      table_ptrs.push_back(tables[i].get());
      specs.push_back(shard_spec(static_cast<int>(i), seds_per_shard,
                                 tuning));
    }
    federation = std::make_unique<diet::Federation>(env, registry,
                                                    table_ptrs,
                                                    std::move(specs));
    engine.run_until(engine.now() + 1.0);
  }

  /// Creates a client on its own node, connected to shard `shard`'s MA.
  std::unique_ptr<diet::Client> make_client(int shard,
                                            std::uint64_t id_base) {
    auto client = std::make_unique<diet::Client>(
        "client" + std::to_string(id_base >> 32), diet::Client::Tuning{},
        id_base);
    env.attach(*client, static_cast<net::NodeId>(1 + (id_base >> 32)));
    client->connect(
        registry.resolve("MA" + std::to_string(shard + 1)).value());
    return client;
  }

  /// Blocking-style call of a `twice` service; nullopt = the call failed.
  /// Steps the engine until the call completes (or 120 virtual seconds
  /// pass) rather than draining it: self-rearming heartbeat beacons keep
  /// the calendar non-empty forever, so engine.run() would never return.
  std::optional<std::int32_t> call_twice(diet::Client& client,
                                         const std::string& service,
                                         std::int32_t in) {
    diet::Profile profile(service, 0, 0, 1);
    profile.arg(0).set_scalar<std::int32_t>(in, diet::BaseType::kInt,
                                            diet::Persistence::kVolatile);
    profile.arg(1).desc.type = diet::DataType::kScalar;
    profile.arg(1).desc.base = diet::BaseType::kInt;
    bool done = false;
    std::optional<std::int32_t> out;
    client.call_async(std::move(profile),
                      [&](const gc::Status& status, diet::Profile& result) {
                        done = true;
                        if (status.is_ok()) {
                          out = result.arg(1).get_scalar<std::int32_t>()
                                    .value();
                        }
                      });
    const double deadline = engine.now() + 120.0;
    while (!done && engine.now() < deadline && engine.step()) {
    }
    return out;
  }

  des::Engine engine;
  net::UniformTopology topology;
  net::SimEnv env;
  naming::Registry registry;
  std::vector<std::unique_ptr<diet::ServiceTable>> tables;
  std::unique_ptr<diet::Federation> federation;
};

diet::AgentTuning fed_tuning(std::uint32_t ttl, std::size_t top_k,
                             bool always) {
  diet::AgentTuning tuning;
  tuning.peer_ttl = ttl;
  tuning.peer_top_k = top_k;
  tuning.federate_always = always;
  return tuning;
}

// ---------- on-miss forwarding ----------

TEST(Federation, OnMissForwardsToCapablePeer) {
  // "work" everywhere, "rare" only on shard 2. A shard-1 client's "rare"
  // call misses locally and must be served by shard 2 over the mesh.
  FedFixture fix({{"work"}, {"work", "rare"}},
                 fed_tuning(/*ttl=*/1, /*top_k=*/4, /*always=*/false));
  auto client = fix.make_client(0, 1ull << 32);

  EXPECT_EQ(fix.call_twice(*client, "rare", 21), 42);
  EXPECT_EQ(fix.federation->ma(0).peer_stats().forwards, 1u);
  EXPECT_EQ(fix.federation->ma(1).peer_stats().replies, 1u);
  EXPECT_GE(fix.federation->ma(1).peer_stats().candidates_returned, 1u);
  // The chosen SED lives in shard 2.
  EXPECT_EQ(client->records().back().sed_name.rfind("SeD2", 0), 0u);

  // A locally-served "work" call must NOT cross the mesh (on-miss mode).
  EXPECT_EQ(fix.call_twice(*client, "work", 5), 10);
  EXPECT_EQ(fix.federation->ma(0).peer_stats().forwards, 1u);
}

TEST(Federation, TtlZeroDisablesForwarding) {
  FedFixture fix({{"work"}, {"work", "rare"}},
                 fed_tuning(/*ttl=*/0, /*top_k=*/4, /*always=*/false));
  auto client = fix.make_client(0, 1ull << 32);

  // No hop budget: the local miss is final and the call fails.
  EXPECT_EQ(fix.call_twice(*client, "rare", 21), std::nullopt);
  EXPECT_EQ(fix.federation->ma(0).peer_stats().forwards, 0u);
}

// ---------- TTL chains ----------

/// A hand-wired *line* federation MA1 -- MA2 -- MA3 (no MA1--MA3 edge),
/// which diet::Federation's full mesh cannot express. The service lives
/// on shards 2 and 3; whether shard 3 is ever consulted from shard 1
/// depends purely on the hop budget.
struct LineFixture {
  explicit LineFixture(std::uint32_t ttl)
      : topology(1e-3, 1.25e8), env(engine, topology) {
    for (int i = 0; i < 3; ++i) {
      tables.push_back(std::make_unique<diet::ServiceTable>());
    }
    register_twice(*tables[0], "work");  // shard 1 serves something local
    register_twice(*tables[1], "rare");
    register_twice(*tables[2], "rare");
    diet::AgentTuning tuning = fed_tuning(ttl, 4, /*always=*/true);
    for (int i = 0; i < 3; ++i) {
      diet::DeploymentSpec spec = shard_spec(i, 1, tuning);
      spec.ma_uid = static_cast<std::uint32_t>(i + 1);
      spec.sed_uid_base = static_cast<std::uint64_t>(i) * 100;
      spec.request_key_base = static_cast<std::uint64_t>(i + 1) << 48;
      shards.push_back(std::make_unique<diet::Deployment>(
          env, registry, *tables[static_cast<std::size_t>(i)], spec));
    }
    // The line: 1--2 and 2--3, both directions, no 1--3 edge.
    shards[0]->ma().connect_peer(shards[1]->ma().endpoint());
    shards[1]->ma().connect_peer(shards[0]->ma().endpoint());
    shards[1]->ma().connect_peer(shards[2]->ma().endpoint());
    shards[2]->ma().connect_peer(shards[1]->ma().endpoint());
    engine.run_until(engine.now() + 1.0);
  }

  des::Engine engine;
  net::UniformTopology topology;
  net::SimEnv env;
  naming::Registry registry;
  std::vector<std::unique_ptr<diet::ServiceTable>> tables;
  std::vector<std::unique_ptr<diet::Deployment>> shards;
};

std::optional<std::int32_t> line_call(LineFixture& fix,
                                      diet::Client& client,
                                      std::int32_t in) {
  diet::Profile profile("rare", 0, 0, 1);
  profile.arg(0).set_scalar<std::int32_t>(in, diet::BaseType::kInt,
                                          diet::Persistence::kVolatile);
  profile.arg(1).desc.type = diet::DataType::kScalar;
  profile.arg(1).desc.base = diet::BaseType::kInt;
  std::optional<std::int32_t> out;
  client.call_async(std::move(profile),
                    [&](const gc::Status& status, diet::Profile& result) {
                      if (status.is_ok()) {
                        out =
                            result.arg(1).get_scalar<std::int32_t>().value();
                      }
                    });
  fix.engine.run();
  return out;
}

TEST(Federation, TtlOneStopsAtDirectPeers) {
  LineFixture fix(/*ttl=*/1);
  diet::Client client("client", diet::Client::Tuning{}, 1ull << 32);
  fix.env.attach(client, 1);
  client.connect(fix.registry.resolve("MA1").value());

  // MA1 -> MA2 spends the whole budget: MA2 answers from its own shard
  // and may not re-forward to MA3.
  EXPECT_EQ(line_call(fix, client, 21), 42);
  EXPECT_EQ(fix.shards[0]->ma().peer_stats().forwards, 1u);
  EXPECT_EQ(fix.shards[1]->ma().peer_stats().forwards, 0u);
  EXPECT_EQ(fix.shards[2]->ma().peer_stats().replies, 0u);
}

TEST(Federation, TtlTwoReachesTheSecondHop) {
  LineFixture fix(/*ttl=*/2);
  diet::Client client("client", diet::Client::Tuning{}, 1ull << 32);
  fix.env.attach(client, 1);
  client.connect(fix.registry.resolve("MA1").value());

  // MA1 -> MA2 (one hop left) -> MA3: the far shard answers too, and its
  // candidates reach MA1 through MA2's merged reply.
  EXPECT_EQ(line_call(fix, client, 21), 42);
  EXPECT_EQ(fix.shards[0]->ma().peer_stats().forwards, 1u);
  EXPECT_EQ(fix.shards[1]->ma().peer_stats().forwards, 1u);
  EXPECT_EQ(fix.shards[2]->ma().peer_stats().replies, 1u);
}

// ---------- bounded candidate fan-in (top-k) ----------

TEST(Federation, PeerRepliesAreTruncatedToTopK) {
  // Shard 2 has 6 capable SEDs but answers with at most 2 candidates: the
  // merge cost at the originating MA is bounded per shard.
  FedFixture fix({{"work"}, {"rare"}},
                 fed_tuning(/*ttl=*/1, /*top_k=*/2, /*always=*/false),
                 /*seds_per_shard=*/6);
  auto client = fix.make_client(0, 1ull << 32);

  EXPECT_EQ(fix.call_twice(*client, "rare", 4), 8);
  EXPECT_EQ(fix.federation->ma(1).peer_stats().replies, 1u);
  EXPECT_EQ(fix.federation->ma(1).peer_stats().candidates_returned, 2u);
}

TEST(Federation, TopKZeroReturnsEveryCandidate) {
  FedFixture fix({{"work"}, {"rare"}},
                 fed_tuning(/*ttl=*/1, /*top_k=*/0, /*always=*/false),
                 /*seds_per_shard=*/6);
  auto client = fix.make_client(0, 1ull << 32);

  EXPECT_EQ(fix.call_twice(*client, "rare", 4), 8);
  EXPECT_EQ(fix.federation->ma(1).peer_stats().candidates_returned, 6u);
}

// ---------- dedup and loop prevention ----------

TEST(Federation, DiamondPathsCollectOnce) {
  // Full mesh of 3 shards, all capable, federate_always, budget 2: the
  // origin forwards to both peers, and each peer re-forwards to the
  // other. Every shard thus sees the request twice (once from the origin,
  // once from its sibling) — the second copy must be dropped, and the
  // origin must still get exactly one answer per peer.
  FedFixture fix({{"work"}, {"work"}, {"work"}},
                 fed_tuning(/*ttl=*/2, /*top_k=*/4, /*always=*/true));
  auto client = fix.make_client(0, 1ull << 32);

  EXPECT_EQ(fix.call_twice(*client, "work", 10), 20);
  EXPECT_EQ(fix.federation->ma(0).peer_stats().forwards, 2u);
  EXPECT_EQ(fix.federation->ma(1).peer_stats().forwards, 1u);
  EXPECT_EQ(fix.federation->ma(2).peer_stats().forwards, 1u);
  std::uint64_t dup_drops = 0;
  std::uint64_t loop_drops = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    dup_drops += fix.federation->ma(i).peer_stats().dup_drops;
    loop_drops += fix.federation->ma(i).peer_stats().loop_drops;
  }
  // One duplicate dropped at each non-origin shard; the origin-uid check
  // keeps any copy from ever being *sent* back to shard 1.
  EXPECT_EQ(dup_drops, 2u);
  EXPECT_EQ(loop_drops, 0u);
}

/// Swallows anything sent to it; the return address for forged messages.
struct Sink final : net::Actor {
  void on_message(const net::Envelope&) override {}
};

TEST(Federation, ForwardLoopedBackToOriginIsDropped) {
  // The send-side origin check needs the peer's uid, which it only has
  // after the peer's announce. A forward racing that announce can still
  // loop back — modeled here by forging a kPeerCollect whose origin is
  // the receiving MA itself.
  FedFixture fix({{"work"}, {"work"}},
                 fed_tuning(/*ttl=*/1, /*top_k=*/4, /*always=*/true));
  Sink sink;
  fix.env.attach(sink, 90);

  diet::RequestCollectMsg msg;
  msg.request_key = 0xdeadbeefULL;
  msg.desc = twice_desc("work");
  msg.in_bytes = 4;
  msg.origin_uid = fix.federation->ma(0).ma_uid();
  msg.ttl = 1;
  fix.env.send(net::Envelope{sink.endpoint(),
                             fix.federation->ma(0).endpoint(),
                             diet::kPeerCollect, msg.encode(), 0, 0});
  fix.engine.run_until(fix.engine.now() + 2.0);
  EXPECT_EQ(fix.federation->ma(0).peer_stats().loop_drops, 1u);

  // The same key from a foreign origin expands once; its wire duplicate
  // is dropped by the cross-MA dedup journal.
  msg.origin_uid = 77;  // no such shard: nothing to loop back to
  fix.env.send(net::Envelope{sink.endpoint(),
                             fix.federation->ma(0).endpoint(),
                             diet::kPeerCollect, msg.encode(), 0, 0});
  fix.env.send(net::Envelope{sink.endpoint(),
                             fix.federation->ma(0).endpoint(),
                             diet::kPeerCollect, msg.encode(), 0, 0});
  fix.engine.run();
  EXPECT_EQ(fix.federation->ma(0).peer_stats().dup_drops, 1u);
  EXPECT_EQ(fix.federation->ma(0).peer_stats().replies, 1u);
}

// ---------- peer death and revival via heartbeats ----------

TEST(Federation, PeerDeathEjectsShardAndRevivalRejoins) {
  diet::AgentTuning tuning = fed_tuning(1, 4, /*always=*/false);
  // Staggered beacon periods (as the deployments use for SEDs) and a
  // watchdog tight enough to fire within the test's virtual seconds.
  tuning.heartbeat_period = 0.19;
  tuning.heartbeat_timeout = 1.0;
  FedFixture fix({{"work"}, {"work", "rare"}}, tuning);

  // A zero-rate plan: the injector is live (isolate/heal work) but rolls
  // no dice, so the run stays deterministic.
  const auto plan =
      fault::parse_plan("drop-only,drop=0,dup=0,delay=0").value();
  fault::Injector injector(plan, 1);
  fix.env.set_fault_hook(&injector);

  auto client = fix.make_client(0, 1ull << 32);
  EXPECT_EQ(fix.call_twice(*client, "rare", 1), 2);

  // Cut shard 2's MA off the WAN. Its beacons stop; shard 1's watchdog
  // must eject the whole shard.
  const net::NodeId ma2_node = 100 + 16;  // shard_spec(1) puts MA2 here
  injector.isolate(ma2_node);
  fix.engine.run_until(fix.engine.now() + 5.0);
  EXPECT_EQ(fix.federation->ma(0).peer_stats().evictions, 1u);

  // With the only capable shard ejected, the rare call fails fast — the
  // dead peer is skipped, not waited for.
  const std::uint64_t forwards_before =
      fix.federation->ma(0).peer_stats().forwards;
  EXPECT_EQ(fix.call_twice(*client, "rare", 2), std::nullopt);
  EXPECT_EQ(fix.federation->ma(0).peer_stats().forwards, forwards_before);

  // Heal the link: beacons resume, the shard rejoins, requests cross
  // the mesh again.
  injector.heal(ma2_node);
  fix.engine.run_until(fix.engine.now() + 5.0);
  EXPECT_EQ(fix.call_twice(*client, "rare", 3), 6);
}

// ---------- persistent data across federation edges ----------

TEST(Federation, LocateCrossesFederationAndPullsPeerToPeer) {
  // "stage" (persistent input) exists only on shard 1, "sum2" only on
  // shard 2. Staging places the datum on a shard-1 SED; the follow-up
  // sum2 call is scheduled onto shard 2, whose hierarchy has never seen
  // the id. The SED's locate must cross the federation edge to shard 1
  // and the datum must arrive SED-to-SED.
  FedFixture fix({{"sum-stage"}, {"sum2"}},
                 fed_tuning(/*ttl=*/1, /*top_k=*/4, /*always=*/false));
  auto client = fix.make_client(0, 1ull << 32);
  const std::vector<double> data(4096, 0.5);

  auto call_sum = [&](const std::string& service) {
    diet::Profile profile(service, 0, 0, 1);
    profile.arg(0).set_vector<double>(data, diet::BaseType::kDouble,
                                      diet::Persistence::kPersistent);
    profile.arg(1).desc.type = diet::DataType::kScalar;
    profile.arg(1).desc.base = diet::BaseType::kDouble;
    double out = -1.0;
    client->call_async(std::move(profile),
                       [&](const gc::Status& status, diet::Profile& result) {
                         if (status.is_ok()) {
                           out = result.arg(1).get_scalar<double>().value();
                         }
                       });
    fix.engine.run();
    return out;
  };

  EXPECT_DOUBLE_EQ(call_sum("sum-stage"), 2048.0);
  diet::Sed& holder = fix.federation->shard(0).sed(0);
  diet::Sed& remote = fix.federation->shard(1).sed(0);
  EXPECT_EQ(holder.data_manager().count(), 1u);
  EXPECT_EQ(remote.data_manager().count(), 0u);

  EXPECT_DOUBLE_EQ(call_sum("sum2"), 2048.0);
  EXPECT_EQ(client->records().back().sed_name.rfind("SeD2", 0), 0u);
  // The pull healed the remote shard's copy without the client resending.
  EXPECT_EQ(remote.data_manager().count(), 1u);
}

// ---------- the science contract: federated == single-MA ----------

workflow::CampaignResult run_campaign(int mas, const std::string& plan,
                                      std::uint64_t fault_seed) {
  workflow::CampaignConfig config;
  config.sub_simulations = 22;
  config.seed = 11;
  config.federation_mas = mas;
  config.fault_plan = plan;
  config.fault_seed = fault_seed;
  return workflow::run_grid5000_campaign(config);
}

TEST(FederationChaos, FaultFreeFederatedCampaignMatchesSingleMa) {
  const workflow::CampaignResult single = run_campaign(1, "", 1);
  const workflow::CampaignResult fed = run_campaign(2, "", 1);
  EXPECT_EQ(single.failed_calls, 0u);
  EXPECT_EQ(fed.failed_calls, 0u);
  EXPECT_NE(fed.science_digest, 0u);
  // Same sub-simulations, same results: federation must not change *what*
  // is computed, only which shard schedules it.
  EXPECT_EQ(fed.science_digest, single.science_digest);
  // And the mesh was actually exercised (split shards federate_always).
  EXPECT_GT(fed.federation_forwards, 0u);
  EXPECT_GT(fed.federation_replies, 0u);
}

TEST(FederationChaos, ChaosPlansPreserveTheScienceAcrossTheMesh) {
  const workflow::CampaignResult single = run_campaign(1, "", 1);
  for (const char* plan : {"drop-only", "crash-only", "mixed"}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const workflow::CampaignResult run = run_campaign(2, plan, seed);
      ASSERT_EQ(run.failed_calls, 0u) << plan << " seed " << seed;
      ASSERT_EQ(run.science_digest, single.science_digest)
          << plan << " seed " << seed;
    }
  }
}

TEST(FederationChaos, SameSeedFederatedChaosRunsAreBitIdentical) {
  for (const char* plan : {"drop-only", "mixed"}) {
    const workflow::CampaignResult first = run_campaign(2, plan, 5);
    const workflow::CampaignResult replay = run_campaign(2, plan, 5);
    ASSERT_EQ(first.makespan, replay.makespan) << plan;
    ASSERT_EQ(first.science_digest, replay.science_digest) << plan;
    ASSERT_EQ(first.federation_forwards, replay.federation_forwards) << plan;
  }
}

}  // namespace
}  // namespace gc
