// DES schedule fuzzer: replays full scenarios under permuted same-
// timestamp tie-break seeds and asserts bit-identical outcomes.
//
// The DES engine breaks timestamp ties by insertion order (seed 0). Any
// other tie-break seed permutes the execution order of logically-
// concurrent events; if the middleware ever depends on that order (an
// unordered-map iteration, a candidate-arrival race, a same-time FIFO
// assumption), some seed here diverges: snapshot hashes, makespans, and
// the trace topology must all match the seed-0 baseline exactly.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "check/statehash.hpp"
#include "des/engine.hpp"
#include "diet/client.hpp"
#include "diet/deployment.hpp"
#include "mc/tracehash.hpp"
#include "naming/registry.hpp"
#include "net/simenv.hpp"
#include "obs/trace.hpp"
#include "workflow/campaign.hpp"

namespace gc {
namespace {

constexpr int kTieSeeds = 32;  ///< fuzz seeds checked against baseline 0

// ---------- hashing helpers ----------
//
// The FNV-1a accumulator and the order-independent trace-topology hash
// this suite introduced now live in the library (the model checker and
// the invariant layer share them): check::Fnv / check::MultisetHash in
// check/statehash.hpp, mc::trace_topology_hash() in mc/tracehash.hpp.
using check::Fnv;

/// Enables tracing for one scenario run, on a cleared tracer.
struct ScopedTrace {
  ScopedTrace() {
    obs::Tracer::instance().clear();
    obs::Tracer::instance().set_enabled(true);
  }
  ~ScopedTrace() {
    obs::Tracer::instance().set_enabled(false);
    obs::Tracer::instance().clear();
  }
};

// ---------- scenario 1: the zoom campaign ----------

struct CampaignSnapshot {
  std::uint64_t state_hash = 0;
  std::uint64_t trace_hash = 0;
  double makespan = 0.0;
};

void hash_record(Fnv& f, const diet::Client::CallRecord& r) {
  f.u64(r.id);
  f.str(r.service);
  f.d(r.submitted);
  f.d(r.found);
  f.d(r.started);
  f.d(r.completed);
  f.u64(r.sed_uid);
  f.str(r.sed_name);
  f.u64(static_cast<std::uint64_t>(r.solve_status));
  f.u64(r.ok ? 1 : 0);
}

CampaignSnapshot run_campaign(std::uint64_t tie_seed) {
  workflow::CampaignConfig config;
  config.sub_simulations = 22;
  config.seed = 11;
  config.tie_break_seed = tie_seed;

  ScopedTrace trace;
  const workflow::CampaignResult result =
      workflow::run_grid5000_campaign(config);

  Fnv f;
  hash_record(f, result.zoom1);
  f.u64(result.zoom2.size());
  for (const auto& record : result.zoom2) hash_record(f, record);
  f.u64(result.seds.size());
  for (const auto& sed : result.seds) {
    f.str(sed.name);
    f.str(sed.cluster);
    f.str(sed.site);
    f.d(sed.machine_power);
    f.u64(sed.requests);
    f.d(sed.busy_seconds);
    f.u64(sed.jobs.size());
    for (const auto& job : sed.jobs) {
      f.u64(job.call_id);
      f.str(job.service);
      f.d(job.arrived);
      f.d(job.started);
      f.d(job.finished);
      f.u64(static_cast<std::uint64_t>(job.solve_status));
    }
  }
  f.d(result.part1_duration);
  f.d(result.part2_mean_exec);
  f.d(result.makespan);
  f.d(result.sequential_estimate);
  f.d(result.finding_mean);
  f.d(result.overhead_total);
  f.u64(result.failed_calls);
  f.u64(result.resubmissions);
  f.i64(result.network_bytes);
  f.u64(result.network_messages);

  return CampaignSnapshot{f.h, mc::trace_topology_hash(), result.makespan};
}

TEST(ScheduleFuzz, CampaignIsTieBreakInvariant) {
  const CampaignSnapshot baseline = run_campaign(0);
  for (std::uint64_t seed = 1; seed <= kTieSeeds; ++seed) {
    const CampaignSnapshot run = run_campaign(seed);
    ASSERT_EQ(run.state_hash, baseline.state_hash) << "tie seed " << seed;
    ASSERT_EQ(run.makespan, baseline.makespan) << "tie seed " << seed;
    ASSERT_EQ(run.trace_hash, baseline.trace_hash) << "tie seed " << seed;
  }
}

// ---------- scenario 2: MA / 2 LA / 4 SED hierarchy burst ----------

diet::ProfileDesc double_desc() {
  diet::ProfileDesc desc("double", 0, 0, 1);
  desc.arg(0).type = diet::DataType::kScalar;
  desc.arg(0).base = diet::BaseType::kInt;
  desc.arg(1).type = diet::DataType::kScalar;
  desc.arg(1).base = diet::BaseType::kInt;
  return desc;
}

struct HierarchySnapshot {
  std::uint64_t state_hash = 0;
  std::uint64_t trace_hash = 0;
  double end_time = 0.0;
};

/// 1 MA, 2 LAs, 4 SEDs; one client fires a 12-call burst through
/// registration, scheduling, and execution. The whole run — registration
/// traffic included — executes under the given tie-break seed.
HierarchySnapshot run_hierarchy(std::uint64_t tie_seed) {
  des::Engine engine;
  engine.set_tie_break_seed(tie_seed);
  net::UniformTopology topology(5e-3, 1.25e8);
  net::SimEnv env(engine, topology);
  naming::Registry registry;
  diet::ServiceTable services;

  diet::SolveFn solve = [](diet::ServiceContext& ctx) {
    ctx.compute(
        10.0,
        [&ctx]() {
          const auto in = ctx.profile().arg(0).get_scalar<std::int32_t>();
          if (!in.is_ok()) return 1;
          ctx.profile().arg(1).set_scalar<std::int32_t>(
              in.value() * 2, diet::BaseType::kInt,
              diet::Persistence::kVolatile);
          return 0;
        },
        [&ctx](int rc) { ctx.finish(rc); });
  };
  EXPECT_TRUE(services.add(double_desc(), std::move(solve)).is_ok());

  diet::DeploymentSpec spec;
  spec.ma_node = 0;
  for (int la = 0; la < 2; ++la) {
    diet::DeploymentSpec::LaSpec l;
    l.name = "LA" + std::to_string(la);
    l.node = static_cast<net::NodeId>(1 + la);
    for (int s = 0; s < 2; ++s) {
      diet::DeploymentSpec::SedSpec sed;
      sed.name = "SeD" + std::to_string(la) + std::to_string(s);
      sed.node = static_cast<net::NodeId>(3 + la * 2 + s);
      sed.host_power = 1.0 + 0.2 * la;
      sed.machines = 4;
      l.sed_indexes.push_back(static_cast<int>(spec.seds.size()));
      spec.seds.push_back(sed);
    }
    spec.las.push_back(l);
  }

  ScopedTrace trace;
  diet::Deployment deployment(env, registry, services, spec);
  diet::Client client("client");
  env.attach(client, 0);
  client.connect(registry.resolve("MA1").value());
  engine.run_until(engine.now() + 1.0);

  // A burst of simultaneous submissions: every hand-off event lands at
  // one timestamp, the classic tie-break stress.
  int completions = 0;
  for (int i = 0; i < 12; ++i) {
    diet::Profile profile("double", 0, 0, 1);
    profile.arg(0).set_scalar<std::int32_t>(i, diet::BaseType::kInt,
                                            diet::Persistence::kVolatile);
    profile.arg(1).desc.type = diet::DataType::kScalar;
    profile.arg(1).desc.base = diet::BaseType::kInt;
    client.call_async(std::move(profile),
                      [&completions](const gc::Status& status,
                                     diet::Profile& out) {
                        (void)out;
                        if (status.is_ok()) ++completions;
                      });
  }
  engine.run();
  EXPECT_EQ(completions, 12);

  Fnv f;
  f.u64(client.records().size());
  for (const auto& record : client.records()) hash_record(f, record);
  f.i64(env.bytes_sent());
  f.u64(env.messages_sent());
  f.d(engine.now());
  return HierarchySnapshot{f.h, mc::trace_topology_hash(), engine.now()};
}

TEST(ScheduleFuzz, HierarchyBurstIsTieBreakInvariant) {
  const HierarchySnapshot baseline = run_hierarchy(0);
  for (std::uint64_t seed = 1; seed <= kTieSeeds; ++seed) {
    const HierarchySnapshot run = run_hierarchy(seed);
    ASSERT_EQ(run.state_hash, baseline.state_hash) << "tie seed " << seed;
    ASSERT_EQ(run.end_time, baseline.end_time) << "tie seed " << seed;
    ASSERT_EQ(run.trace_hash, baseline.trace_hash) << "tie seed " << seed;
  }
}

// ---------- the tie-break scramble itself ----------

TEST(ScheduleFuzz, TieBreakSeedZeroPreservesInsertionOrder) {
  des::Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    engine.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 8; ++i) ASSERT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ScheduleFuzz, TieBreakSeedPermutesSameTimestampEvents) {
  // At least one of a handful of seeds must produce a non-insertion
  // order, or the scramble is a no-op and the fuzzer above tests nothing.
  bool permuted = false;
  for (std::uint64_t seed = 1; seed <= 8 && !permuted; ++seed) {
    des::Engine engine;
    engine.set_tie_break_seed(seed);
    std::vector<int> order;
    for (int i = 0; i < 8; ++i) {
      engine.schedule_at(1.0, [&order, i] { order.push_back(i); });
    }
    engine.run();
    for (int i = 0; i < 8; ++i) {
      if (order[static_cast<size_t>(i)] != i) permuted = true;
    }
  }
  EXPECT_TRUE(permuted);
}

}  // namespace
}  // namespace gc
