// Tests for the background cosmology and the linear power spectrum.
#include <gtest/gtest.h>

#include <cmath>

#include "cosmo/cosmology.hpp"
#include "cosmo/massfunction.hpp"
#include "cosmo/power.hpp"

namespace gc::cosmo {
namespace {

Params eds() {
  Params params;
  params.omega_m = 1.0;
  params.omega_l = 0.0;
  return params;
}

TEST(Cosmology, EfuncToday) {
  Cosmology cosmology;
  EXPECT_NEAR(cosmology.efunc(1.0), 1.0, 1e-12);
}

TEST(Cosmology, EfuncMatterScaling) {
  // Deep in matter domination E(a) ~ sqrt(Om) a^-3/2.
  Cosmology cosmology;
  const double a = 0.02;
  EXPECT_NEAR(cosmology.efunc(a), std::sqrt(0.27) * std::pow(a, -1.5),
              0.01 * cosmology.efunc(a));
}

TEST(Cosmology, HubbleToday) {
  Cosmology cosmology;
  EXPECT_NEAR(cosmology.hubble(1.0), 71.0, 1e-9);
}

TEST(Cosmology, EdsAgeIsTwoThirds) {
  // Einstein-de Sitter: t(a) = (2/3) a^{3/2} in 1/H0 units.
  Cosmology cosmology(eds());
  EXPECT_NEAR(cosmology.age(1.0), 2.0 / 3.0, 1e-6);
  EXPECT_NEAR(cosmology.age(0.25), 2.0 / 3.0 * std::pow(0.25, 1.5), 1e-6);
}

TEST(Cosmology, LcdmAgeIsReasonable) {
  Cosmology cosmology;  // WMAP3-ish
  const double age_gyr = cosmology.age(1.0) * cosmology.hubble_time_gyr();
  EXPECT_GT(age_gyr, 13.0);
  EXPECT_LT(age_gyr, 14.5);
}

TEST(Cosmology, AgeMonotonic) {
  Cosmology cosmology;
  double last = 0.0;
  for (double a = 0.05; a <= 2.0; a += 0.05) {
    const double t = cosmology.age(a);
    EXPECT_GT(t, last);
    last = t;
  }
}

TEST(Cosmology, AOfAgeInverts) {
  Cosmology cosmology;
  for (const double a : {0.1, 0.3, 0.5, 1.0, 1.5}) {
    EXPECT_NEAR(cosmology.a_of_age(cosmology.age(a)), a, 1e-6);
  }
}

TEST(Cosmology, GrowthNormalizedToday) {
  Cosmology cosmology;
  EXPECT_NEAR(cosmology.growth(1.0), 1.0, 1e-12);
}

TEST(Cosmology, EdsGrowthIsLinearInA) {
  Cosmology cosmology(eds());
  for (const double a : {0.1, 0.25, 0.5, 0.75}) {
    EXPECT_NEAR(cosmology.growth(a), a, 1e-4 * a);
  }
}

TEST(Cosmology, LcdmGrowthSuppressed) {
  // Lambda suppresses late growth: D(a) < a for a < 1 ... actually
  // D(a)/a rises towards early times, so D(0.5) > 0.5 * D(1)/1 scaled:
  // the robust statement is D(a) >= a for ΛCDM normalized at 1.
  Cosmology cosmology;
  for (const double a : {0.1, 0.3, 0.5, 0.8}) {
    EXPECT_GT(cosmology.growth(a), a * 0.999);
  }
}

TEST(Cosmology, GrowthMonotonic) {
  Cosmology cosmology;
  double last = 0.0;
  for (double a = 0.02; a <= 1.0; a += 0.02) {
    const double d = cosmology.growth(a);
    EXPECT_GT(d, last);
    last = d;
  }
}

TEST(Cosmology, GrowthRateMatchesOmegaPower) {
  // f(a) ~ Omega_m(a)^0.55 to ~1% for ΛCDM.
  Cosmology cosmology;
  for (const double a : {0.2, 0.5, 1.0}) {
    const double e = cosmology.efunc(a);
    const double omega_a = 0.27 / (a * a * a) / (e * e);
    EXPECT_NEAR(cosmology.growth_rate(a), std::pow(omega_a, 0.55), 0.02);
  }
}

TEST(Cosmology, EdsGrowthRateIsOne) {
  Cosmology cosmology(eds());
  EXPECT_NEAR(cosmology.growth_rate(0.5), 1.0, 1e-3);
}

TEST(Cosmology, RedshiftHelpers) {
  EXPECT_DOUBLE_EQ(Cosmology::z_of_a(0.5), 1.0);
  EXPECT_DOUBLE_EQ(Cosmology::a_of_z(3.0), 0.25);
}

// ---------- power spectrum ----------

TEST(Power, Sigma8Normalization) {
  PowerSpectrum power;
  EXPECT_NEAR(power.sigma_r(8.0), 0.80, 1e-6);
}

TEST(Power, SigmaDecreasesWithScale) {
  PowerSpectrum power;
  EXPECT_GT(power.sigma_r(1.0), power.sigma_r(8.0));
  EXPECT_GT(power.sigma_r(8.0), power.sigma_r(32.0));
}

TEST(Power, TransferLimits) {
  PowerSpectrum power;
  EXPECT_NEAR(power.transfer(1e-5), 1.0, 1e-3);  // large scales untouched
  EXPECT_LT(power.transfer(10.0), 0.01);         // small scales suppressed
  // Monotone decreasing.
  double last = 2.0;
  for (double k = 1e-4; k < 1e2; k *= 2.0) {
    const double t = power.transfer(k);
    EXPECT_LT(t, last);
    last = t;
  }
}

TEST(Power, SpectrumPositiveWithTurnover) {
  PowerSpectrum power;
  EXPECT_EQ(power(0.0), 0.0);
  double peak_k = 0.0;
  double peak_p = 0.0;
  for (double k = 1e-4; k < 10.0; k *= 1.1) {
    const double p = power(k);
    EXPECT_GT(p, 0.0);
    if (p > peak_p) {
      peak_p = p;
      peak_k = k;
    }
  }
  // ΛCDM turnover sits near k ~ 0.01-0.03 h/Mpc.
  EXPECT_GT(peak_k, 0.005);
  EXPECT_LT(peak_k, 0.05);
}

TEST(Power, GrowsWithExpansionFactor) {
  PowerSpectrum power;
  const double k = 0.1;
  EXPECT_LT(power.at(k, 0.5), power(k));
  EXPECT_NEAR(power.at(k, 1.0), power(k), 1e-9);
  // P scales as D^2.
  Cosmology cosmology;
  const double d = cosmology.growth(0.5);
  EXPECT_NEAR(power.at(k, 0.5), power(k) * d * d, power(k) * 1e-6);
}

TEST(Power, RespondsToSigma8) {
  Params hi;
  hi.sigma8 = 1.0;
  PowerSpectrum strong(hi);
  PowerSpectrum fiducial;
  const double ratio = strong(0.1) / fiducial(0.1);
  EXPECT_NEAR(ratio, (1.0 / 0.8) * (1.0 / 0.8), 1e-6);
}

// ---------- mass function ----------

TEST(MassFunction, RadiusMassInverse) {
  MassFunction mf;
  for (const double m : {1e10, 1e12, 1e14}) {
    EXPECT_NEAR(mf.mass_of_radius(mf.radius_of_mass(m)) / m, 1.0, 1e-12);
  }
  // 8 Mpc/h sphere ~ 1.8e14 Msun/h for Omega_m = 0.27.
  EXPECT_NEAR(mf.mass_of_radius(8.0) / 1.6e14, 1.0, 0.1);
}

TEST(MassFunction, SigmaDecreasesWithMass) {
  MassFunction mf;
  double last = 1e18;
  for (double m = 1e10; m < 1e16; m *= 10.0) {
    const double sigma = mf.sigma_mass(m);
    EXPECT_LT(sigma, last);
    EXPECT_GT(sigma, 0.0);
    last = sigma;
  }
}

TEST(MassFunction, ExponentialHighMassCutoff) {
  MassFunction mf;
  EXPECT_GT(mf.dn_dlnm(1e12), 0.0);
  // Clusters are rare; 1e16 halos essentially nonexistent today.
  EXPECT_GT(mf.dn_dlnm(1e12) / mf.dn_dlnm(1e15), 1e2);
  EXPECT_GT(mf.dn_dlnm(1e14) / mf.dn_dlnm(1e16), 1e4);
}

TEST(MassFunction, CountAboveIsDecreasing) {
  MassFunction mf;
  const double box = 100.0;
  const double n12 = mf.count_above(1e12, box);
  const double n13 = mf.count_above(1e13, box);
  const double n14 = mf.count_above(1e14, box);
  EXPECT_GT(n12, n13);
  EXPECT_GT(n13, n14);
  // A 100 Mpc/h box holds thousands of 1e12 halos and a handful above
  // 1e14 — the well-known orders of magnitude.
  EXPECT_GT(n12, 1e3);
  EXPECT_LT(n14, 1e3);
  EXPECT_GT(n14, 1.0);
}

TEST(MassFunction, StructureGrowsWithTime) {
  MassFunction mf;
  // Massive halos are (much) rarer at high redshift.
  EXPECT_LT(mf.count_above(1e14, 100.0, 0.5),
            0.5 * mf.count_above(1e14, 100.0, 1.0));
  EXPECT_LT(mf.dn_dlnm(1e15, 0.5), mf.dn_dlnm(1e15, 1.0));
}

}  // namespace
}  // namespace gc::cosmo
