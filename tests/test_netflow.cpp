// Tests for the contention flow model (net/flow.hpp) and the SimEnv
// pieces that feed it: the node ledger behind node_of, the closed-form
// fallback, bulk/FIFO interaction, and determinism under tie seeds.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "check/invariant.hpp"
#include "common/rng.hpp"
#include "des/engine.hpp"
#include "net/flow.hpp"
#include "net/simenv.hpp"
#include "net/topology.hpp"

namespace gc::net {
namespace {

static_assert(check::kEnabled,
              "this suite requires a GC_CHECK=ON build (the default)");

Route one_link_route(double latency_s, double capacity_bps,
                     double per_flow_cap_bps = 0.0) {
  Route route;
  route.latency_s = latency_s;
  route.add(LinkRef{linkkey::make(linkkey::kLan, 1), capacity_bps,
                    per_flow_cap_bps});
  return route;
}

// ---------- FlowModel: exact single-flow reduction ----------

TEST(FlowModel, SingleFlowReducesExactlyToClosedForm) {
  des::Engine engine;
  FlowModel model(engine);
  const double latency = 0.011;
  const double bps = 1.25e8;
  const std::int64_t bytes = 3'000'000;
  double delivered = -1.0;
  model.start(one_link_route(latency, bps), bytes,
              [&](double at) { delivered = at; });
  engine.run();
  // Bit-exact: the uncontended flow uses the same floating-point
  // expression tree as Topology::transfer_time.
  EXPECT_EQ(delivered, latency + static_cast<double>(bytes) / bps);
  EXPECT_EQ(model.flows_completed(), 1u);
  EXPECT_EQ(model.active_flows(), 0);
}

// ---------- fair sharing ----------

TEST(FlowModel, TwoEqualFlowsHalveTheLink) {
  des::Engine engine;
  FlowModel model(engine);
  const double bps = 1e8;
  const std::int64_t bytes = 1'000'000;
  std::vector<double> delivered;
  for (int i = 0; i < 2; ++i) {
    model.start(one_link_route(0.0, bps), bytes,
                [&](double at) { delivered.push_back(at); });
  }
  engine.run();
  ASSERT_EQ(delivered.size(), 2u);
  // Each flow runs at bps/2 the whole way: both finish at 2x the solo time.
  const double expected = 2.0 * static_cast<double>(bytes) / bps;
  EXPECT_NEAR(delivered[0], expected, 1e-9);
  EXPECT_NEAR(delivered[1], expected, 1e-9);
}

TEST(FlowModel, LateArrivalSlowsTheFirstFlow) {
  des::Engine engine;
  FlowModel model(engine);
  const double bps = 1e8;
  double first = -1.0;
  double second = -1.0;
  model.start(one_link_route(0.0, bps), 2'000'000,
              [&](double at) { first = at; });
  engine.schedule_at(0.01, [&]() {
    model.start(one_link_route(0.0, bps), 1'000'000,
                [&](double at) { second = at; });
  });
  engine.run();
  // Flow 1 alone for 10 ms (1 MB done), then shares: 1 MB left at 50 MB/s
  // = 20 ms more. Flow 2's 1 MB at 50 MB/s, then the remainder alone.
  EXPECT_NEAR(first, 0.03, 1e-9);
  EXPECT_GT(second, 0.02);  // slower than it would have been alone
  EXPECT_LE(second, 0.031);
}

// ---------- capacity is a hard ceiling (property, any seed) ----------

class FlowSeeded : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, FlowSeeded,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST_P(FlowSeeded, AggregateThroughputNeverExceedsLinkCapacity) {
  Rng rng(GetParam());
  des::Engine engine;
  FlowModel model(engine);
  const double bps = 5e7;
  double total_bytes = 0.0;
  double last_delivery = 0.0;
  double first_start = -1.0;
  const int flows = 12;
  for (int i = 0; i < flows; ++i) {
    const double start = rng.uniform() * 0.05;
    const auto bytes =
        static_cast<std::int64_t>(1'000'000 + rng.uniform_u64(4'000'000));
    total_bytes += static_cast<double>(bytes);
    if (first_start < 0.0 || start < first_start) first_start = start;
    engine.schedule_at(start, [&model, &last_delivery, bytes]() {
      model.start(one_link_route(0.0, 5e7), bytes, [&](double at) {
        if (at > last_delivery) last_delivery = at;
      });
    });
  }
  engine.run();
  EXPECT_EQ(model.flows_completed(), static_cast<std::uint64_t>(flows));
  // The link carried total_bytes in (last_delivery - first_start) seconds;
  // a fluid link of capacity C cannot do better than C.
  const double elapsed = last_delivery - first_start;
  EXPECT_GE(elapsed * bps, total_bytes * (1.0 - 1e-9));
}

// ---------- per-flow caps: why striping wins ----------

TEST(FlowModel, PerFlowCapThrottlesASingleStream) {
  des::Engine engine;
  FlowModel model(engine);
  // 100 MB/s link, but one stream can only sustain 10 MB/s (lossy WAN).
  double delivered = -1.0;
  model.start(one_link_route(0.0, 1e8, 1e7), 40'000'000,
              [&](double at) { delivered = at; });
  engine.run();
  EXPECT_NEAR(delivered, 4.0, 1e-9);  // 40 MB at 10 MB/s
}

TEST(FlowModel, StripingBeatsTheSingleStreamOnACappedLink) {
  des::Engine engine;
  FlowModel model(engine);
  // The same 40 MB as 4 parallel stripes: each gets its own 10 MB/s cap,
  // aggregate 40 MB/s, 4x faster than the single stream above.
  double last = 0.0;
  for (int i = 0; i < 4; ++i) {
    model.start(one_link_route(0.0, 1e8, 1e7), 10'000'000, [&](double at) {
      if (at > last) last = at;
    });
  }
  engine.run();
  EXPECT_NEAR(last, 1.0, 1e-9);
}

// ---------- estimates ----------

TEST(FlowModel, EstimateMatchesClosedFormWhenIdle) {
  des::Engine engine;
  FlowModel model(engine);
  const Route route = one_link_route(0.007, 2e8);
  EXPECT_EQ(model.estimate(route, 5'000'000),
            0.007 + 5'000'000.0 / 2e8);
}

TEST(FlowModel, EstimateSeesCongestion) {
  des::Engine engine;
  FlowModel model(engine);
  const Route route = one_link_route(0.0, 1e8);
  const double idle = model.estimate(route, 1'000'000);
  model.start(route, 50'000'000, [](double) {});
  const double busy = model.estimate(route, 1'000'000);
  EXPECT_NEAR(busy, 2.0 * idle, 1e-9);  // would share with one active flow
  engine.run();
}

// ---------- SimEnv: node ledger / node_of ----------

std::vector<std::string> g_violations;
void record_violation(const char* /*file*/, int /*line*/,
                      const std::string& what) {
  g_violations.push_back(what);
}

/// Swaps in a recording invariant handler for the test's scope.
struct Capture {
  Capture() {
    g_violations.clear();
    check::reset_failure_count();
    check::set_failure_handler(&record_violation);
  }
  ~Capture() { check::set_failure_handler(nullptr); }
  [[nodiscard]] std::size_t count() const {
    return static_cast<std::size_t>(check::failure_count());
  }
};

class RecordingActor final : public Actor {
 public:
  void on_message(const Envelope& envelope) override {
    arrivals.push_back({envelope.type, env()->now()});
  }
  std::vector<std::pair<std::uint32_t, double>> arrivals;
};

TEST(SimEnvNodeOf, AnswersFromTheAttachLedger) {
  des::Engine engine;
  UniformTopology topo(0.001, 1e8);
  SimEnv env(engine, topo);
  RecordingActor actor;
  const Endpoint ep = env.attach(actor, /*node=*/3);
  EXPECT_EQ(env.node_of(ep), 3u);
  // The ledger is permanent: a detached (crashed) endpoint still answers —
  // its placement was real, and costing against it must not regress to
  // node 0.
  env.detach(ep);
  EXPECT_EQ(env.node_of(ep), 3u);
}

TEST(SimEnvNodeOf, UnknownEndpointTripsTheInvariant) {
  Capture capture;
  des::Engine engine;
  UniformTopology topo(0.001, 1e8);
  SimEnv env(engine, topo);
  RecordingActor actor;
  env.attach(actor, 1);
  EXPECT_EQ(capture.count(), 0u);
  // An endpoint that was never attached is a wiring bug, not a crash:
  // debug builds flag it, the conservative node-0 answer is kept.
  EXPECT_EQ(env.node_of(Endpoint{40404}), 0u);
  EXPECT_EQ(capture.count(), 1u);
}

// ---------- SimEnv contention mode ----------

TEST(SimEnvContention, OffByDefaultAndClosedForm) {
  des::Engine engine;
  UniformTopology topo(0.001, 1e8);
  SimEnv env(engine, topo);
  EXPECT_FALSE(env.contention_enabled());
  EXPECT_EQ(env.estimate_transfer_s(1, 2, 123456),
            topo.transfer_time(1, 2, 123456));
}

TEST(SimEnvContention, SingleBulkMessageKeepsTheClosedFormTime) {
  des::Engine engine;
  UniformTopology topo(0.002, 1e8);
  SimEnv env(engine, topo);
  env.enable_contention();
  RecordingActor sender;
  RecordingActor receiver;
  const Endpoint src = env.attach(sender, 1);
  const Endpoint dst = env.attach(receiver, 2);
  Envelope msg{src, dst, 77, Bytes(1024, 0), 9'000'000};
  env.send(msg);
  engine.run();
  ASSERT_EQ(receiver.arrivals.size(), 1u);
  // One uncontended flow: same arithmetic as the closed form.
  EXPECT_EQ(receiver.arrivals[0].second,
            topo.transfer_time(1, 2, msg.wire_size()));
}

TEST(SimEnvContention, BulkFlowHoldsLaterFifoMessages) {
  des::Engine engine;
  UniformTopology topo(0.0, 1e6);
  SimEnv env(engine, topo);
  env.enable_contention();
  RecordingActor sender;
  RecordingActor receiver;
  const Endpoint src = env.attach(sender, 1);
  const Endpoint dst = env.attach(receiver, 2);
  env.send(Envelope{src, dst, 1, Bytes{}, 1'000'000});  // ~1 s bulk flow
  env.send(Envelope{src, dst, 2, Bytes{1, 2, 3}, 0});   // small chaser
  engine.run();
  ASSERT_EQ(receiver.arrivals.size(), 2u);
  // FIFO per stream survives the flow model: the small message neither
  // overtakes nor lands before the bulk bytes that precede it.
  EXPECT_EQ(receiver.arrivals[0].first, 1u);
  EXPECT_EQ(receiver.arrivals[1].first, 2u);
  EXPECT_GE(receiver.arrivals[1].second, receiver.arrivals[0].second);
}

TEST(SimEnvContention, OutOfBandStripesBypassTheFifoHold) {
  des::Engine engine;
  UniformTopology topo(0.0, 1e6);
  SimEnv env(engine, topo);
  env.enable_contention();
  RecordingActor sender;
  RecordingActor receiver;
  const Endpoint src = env.attach(sender, 1);
  const Endpoint dst = env.attach(receiver, 2);
  env.send(Envelope{src, dst, 1, Bytes{}, 1'000'000});  // ~1 s bulk flow
  Envelope oob{src, dst, 2, Bytes{}, 100'000};
  oob.oob = true;
  env.send(oob);  // an out-of-band stripe: its own flow, no hold
  engine.run();
  ASSERT_EQ(receiver.arrivals.size(), 2u);
  // The stripe shares the link (fair split) but does not wait for the
  // bulk flow to finish: it lands first.
  EXPECT_EQ(receiver.arrivals[0].first, 2u);
  EXPECT_LT(receiver.arrivals[0].second, receiver.arrivals[1].second);
}

// ---------- determinism: tie seeds must not change flow outcomes ----------

TEST_P(FlowSeeded, TieSeedsDoNotChangeDeliveryTimes) {
  auto run = [](std::uint64_t tie_seed) {
    des::Engine engine;
    engine.set_tie_break_seed(tie_seed);
    UniformTopology topo(0.001, 1e7);
    SimEnv env(engine, topo);
    env.enable_contention();
    RecordingActor a;
    RecordingActor b;
    RecordingActor c;
    const Endpoint ea = env.attach(a, 1);
    const Endpoint eb = env.attach(b, 2);
    const Endpoint ec = env.attach(c, 3);
    // Three bulk transfers starting at the same instant plus chasers —
    // maximal tie pressure on the calendar.
    env.send(Envelope{ea, eb, 1, Bytes{}, 4'000'000});
    env.send(Envelope{ea, ec, 2, Bytes{}, 4'000'000});
    env.send(Envelope{eb, ec, 3, Bytes{}, 2'000'000});
    env.send(Envelope{ea, eb, 4, Bytes{9}, 0});
    engine.run();
    std::vector<double> times;
    for (const auto* actor : {&a, &b, &c}) {
      for (const auto& [type, at] : actor->arrivals) {
        times.push_back(at);
      }
    }
    return times;
  };
  const auto baseline = run(0);
  const auto seeded = run(GetParam());
  ASSERT_EQ(baseline.size(), seeded.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    // Bit-identical, not approximately equal.
    EXPECT_EQ(baseline[i], seeded[i]) << "delivery " << i;
  }
}

}  // namespace
}  // namespace gc::net
