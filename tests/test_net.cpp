// Tests for the message layer: codec, envelopes, SimEnv, RealEnv.
#include <gtest/gtest.h>

#include <atomic>

#include "common/rng.hpp"
#include "des/engine.hpp"
#include "net/codec.hpp"
#include "net/realenv.hpp"
#include "net/simenv.hpp"

namespace gc::net {
namespace {

// ---------- codec ----------

TEST(Codec, RoundtripScalars) {
  Writer writer;
  writer.u8(0xab);
  writer.u16(0x1234);
  writer.u32(0xdeadbeef);
  writer.u64(0x0123456789abcdefULL);
  writer.i32(-42);
  writer.i64(-1LL << 40);
  writer.f32(1.5F);
  writer.f64(3.14159265358979);
  const Bytes bytes = writer.data();

  Reader reader(bytes);
  EXPECT_EQ(reader.u8(), 0xab);
  EXPECT_EQ(reader.u16(), 0x1234);
  EXPECT_EQ(reader.u32(), 0xdeadbeefu);
  EXPECT_EQ(reader.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(reader.i32(), -42);
  EXPECT_EQ(reader.i64(), -1LL << 40);
  EXPECT_FLOAT_EQ(reader.f32(), 1.5F);
  EXPECT_DOUBLE_EQ(reader.f64(), 3.14159265358979);
  EXPECT_TRUE(reader.done());
}

TEST(Codec, RoundtripStringsAndBytes) {
  Writer writer;
  writer.str("ramsesZoom2");
  writer.str("");
  writer.bytes(Bytes{1, 2, 3});
  Reader reader(writer.data());
  EXPECT_EQ(reader.str(), "ramsesZoom2");
  EXPECT_EQ(reader.str(), "");
  EXPECT_EQ(reader.bytes(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(reader.done());
}

TEST(Codec, UnderflowIsFailSoft) {
  Writer writer;
  writer.u16(7);
  Reader reader(writer.data());
  EXPECT_EQ(reader.u16(), 7);
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(reader.u64(), 0u);  // underflow
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.u32(), 0u);  // still failing, no crash
  EXPECT_FALSE(reader.done());
}

TEST(Codec, StringWithBogusLength) {
  Writer writer;
  writer.u32(1000000);  // claims a long string, no payload
  Reader reader(writer.data());
  EXPECT_EQ(reader.str(), "");
  EXPECT_FALSE(reader.ok());
}

TEST(Codec, DoneDetectsTrailingGarbage) {
  Writer writer;
  writer.u32(1);
  writer.u8(0xff);
  Reader reader(writer.data());
  reader.u32();
  EXPECT_FALSE(reader.done());
  reader.u8();
  EXPECT_TRUE(reader.done());
}

TEST(Codec, FuzzRandomBuffersNeverCrash) {
  Rng rng(77);
  for (int round = 0; round < 200; ++round) {
    Bytes junk(rng.uniform_u64(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    Reader reader(junk);
    // Drain with a random mix of typed reads.
    for (int i = 0; i < 16; ++i) {
      switch (rng.uniform_u64(5)) {
        case 0: reader.u8(); break;
        case 1: reader.u64(); break;
        case 2: reader.f64(); break;
        case 3: reader.str(); break;
        default: reader.bytes(); break;
      }
    }
    SUCCEED();
  }
}

// ---------- envelopes ----------

TEST(Envelope, WireSizeIncludesBulk) {
  Envelope envelope;
  envelope.payload = Bytes(100);
  EXPECT_EQ(envelope.wire_size(), 132);
  envelope.modeled_extra_bytes = 1 << 20;
  EXPECT_EQ(envelope.wire_size(), 132 + (1 << 20));
}

// ---------- SimEnv ----------

class Echo final : public Actor {
 public:
  void on_message(const Envelope& envelope) override {
    received.push_back(envelope);
    received_at.push_back(env()->now());
  }
  std::vector<Envelope> received;
  std::vector<SimTime> received_at;
};

TEST(SimEnv, DeliversWithModeledDelay) {
  des::Engine engine;
  UniformTopology topology(0.010, 1e6);  // 10ms + bytes/1MBps
  SimEnv env(engine, topology);
  Echo a;
  Echo b;
  env.attach(a, 0);
  env.attach(b, 1);

  Envelope envelope{a.endpoint(), b.endpoint(), 5, Bytes(968), 0};
  env.send(std::move(envelope));  // wire = 32 + 968 = 1000 bytes
  engine.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_NEAR(b.received_at[0], 0.011, 1e-12);
  EXPECT_EQ(b.received[0].type, 5u);
}

TEST(SimEnv, SameNodeIsFree) {
  des::Engine engine;
  UniformTopology topology(0.010, 1e6);
  SimEnv env(engine, topology);
  Echo a;
  Echo b;
  env.attach(a, 3);
  env.attach(b, 3);
  env.send(Envelope{a.endpoint(), b.endpoint(), 1, {}, 0});
  engine.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_DOUBLE_EQ(b.received_at[0], 0.0);
}

TEST(SimEnv, DropsUnknownDestination) {
  des::Engine engine;
  UniformTopology topology(0.0, 1e9);
  SimEnv env(engine, topology);
  Echo a;
  env.attach(a, 0);
  env.send(Envelope{a.endpoint(), 999, 1, {}, 0});
  engine.run();  // no crash, nothing delivered
  EXPECT_TRUE(a.received.empty());
}

TEST(SimEnv, DetachedActorInFlight) {
  des::Engine engine;
  UniformTopology topology(0.010, 1e9);
  SimEnv env(engine, topology);
  Echo a;
  Echo b;
  env.attach(a, 0);
  env.attach(b, 1);
  env.send(Envelope{a.endpoint(), b.endpoint(), 1, {}, 0});
  env.detach(b.endpoint());
  engine.run();
  EXPECT_TRUE(b.received.empty());
}

TEST(SimEnv, ExecuteAdvancesVirtualTime) {
  des::Engine engine;
  UniformTopology topology(0.0, 1e9);
  SimEnv env(engine, topology);
  double done_at = -1.0;
  int work_result = 0;
  env.execute(
      0, 3600.0, [] { return 17; },
      [&](int result) {
        work_result = result;
        done_at = engine.now();
      });
  engine.run();
  EXPECT_EQ(work_result, 17);
  EXPECT_DOUBLE_EQ(done_at, 3600.0);
}

TEST(SimEnv, StreamIsFifoPerEndpointPair) {
  // A huge message followed by a tiny one on the same (src, dst) pair:
  // the tiny one must NOT overtake (TCP/CORBA stream semantics). This is
  // what makes send-time persistent-data registration sound.
  des::Engine engine;
  UniformTopology topology(0.001, 1e6);  // 1 MB/s
  SimEnv env(engine, topology);
  Echo a;
  Echo b;
  env.attach(a, 0);
  env.attach(b, 1);
  env.send(Envelope{a.endpoint(), b.endpoint(), 1, Bytes(1000000), 0});
  env.send(Envelope{a.endpoint(), b.endpoint(), 2, {}, 0});
  engine.run();
  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_EQ(b.received[0].type, 1u);
  EXPECT_EQ(b.received[1].type, 2u);
  EXPECT_GE(b.received_at[1], b.received_at[0]);
}

TEST(SimEnv, DistinctPairsStillOverlap) {
  des::Engine engine;
  UniformTopology topology(0.001, 1e6);
  SimEnv env(engine, topology);
  Echo a;
  Echo b;
  Echo c;
  env.attach(a, 0);
  env.attach(b, 1);
  env.attach(c, 2);
  env.send(Envelope{a.endpoint(), b.endpoint(), 1, Bytes(1000000), 0});
  env.send(Envelope{a.endpoint(), c.endpoint(), 2, {}, 0});
  engine.run();
  ASSERT_EQ(c.received.size(), 1u);
  ASSERT_EQ(b.received.size(), 1u);
  // The tiny message to a DIFFERENT destination is not held back.
  EXPECT_LT(c.received_at[0], b.received_at[0]);
}

TEST(SimEnv, CountsTraffic) {
  des::Engine engine;
  UniformTopology topology(0.0, 1e9);
  SimEnv env(engine, topology);
  Echo a;
  Echo b;
  env.attach(a, 0);
  env.attach(b, 1);
  env.send(Envelope{a.endpoint(), b.endpoint(), 1, Bytes(68), 100});
  engine.run();
  EXPECT_EQ(env.messages_sent(), 1u);
  EXPECT_EQ(env.bytes_sent(), 200);  // 32 + 68 + 100
}

// ---------- RealEnv ----------

TEST(RealEnv, PostAfterRuns) {
  UniformTopology topology(0.0, 1e9);
  RealEnv env(topology);
  env.start();
  std::atomic<int> fired{0};
  env.post_after(0.0, [&] { fired = 1; });
  env.wait_idle();
  EXPECT_EQ(fired.load(), 1);
  env.stop();
}

TEST(RealEnv, SendBetweenActors) {
  UniformTopology topology(0.0, 1e9);
  RealEnv env(topology);
  Echo a;
  Echo b;
  env.attach(a, 0);
  env.attach(b, 1);
  env.start();
  env.send(Envelope{a.endpoint(), b.endpoint(), 9, Bytes{1, 2}, 0});
  env.wait_idle();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].type, 9u);
  env.stop();
}

TEST(RealEnv, ExecuteRunsRealWork) {
  UniformTopology topology(0.0, 1e9);
  RealEnv env(topology);
  env.start();
  std::atomic<int> result{0};
  env.execute(0, 0.0, [] { return 6 * 7; },
              [&](int r) { result = r; });
  env.wait_idle();
  EXPECT_EQ(result.load(), 42);
  env.stop();
}

TEST(RealEnv, StopIsIdempotent) {
  UniformTopology topology(0.0, 1e9);
  RealEnv env(topology);
  env.start();
  env.stop();
  env.stop();
  SUCCEED();
}

TEST(RealEnv, ClockAdvances) {
  UniformTopology topology(0.0, 1e9);
  RealEnv env(topology);
  env.start();
  const SimTime t0 = env.now();
  std::atomic<double> fired_at{-1.0};
  env.post_after(0.02, [&] { fired_at = env.now(); });
  env.wait_idle();
  EXPECT_GE(fired_at.load(), t0 + 0.019);
  env.stop();
}

}  // namespace
}  // namespace gc::net
