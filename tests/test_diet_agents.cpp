// Middleware integration tests: client / MA / LA / SED over the DES (and
// one RealEnv end-to-end check), with a synthetic "double" service.
#include <gtest/gtest.h>

#include "des/engine.hpp"
#include "diet/client.hpp"
#include "diet/deployment.hpp"
#include "naming/registry.hpp"
#include "net/realenv.hpp"
#include "net/simenv.hpp"

namespace gc::diet {
namespace {

ProfileDesc double_desc() {
  ProfileDesc desc("double", 0, 0, 1);
  desc.arg(0).type = DataType::kScalar;
  desc.arg(0).base = BaseType::kInt;
  desc.arg(1).type = DataType::kScalar;
  desc.arg(1).base = BaseType::kInt;
  return desc;
}

/// Registers "double": OUT = 2 * IN, with a fixed modeled duration.
void register_double(ServiceTable& table, double modeled_seconds) {
  SolveFn solve = [modeled_seconds](ServiceContext& ctx) {
    ctx.compute(
        modeled_seconds,
        [&ctx]() {
          const auto in = ctx.profile().arg(0).get_scalar<std::int32_t>();
          if (!in.is_ok()) return 1;
          ctx.profile().arg(1).set_scalar<std::int32_t>(
              in.value() * 2, BaseType::kInt, Persistence::kVolatile);
          return 0;
        },
        [&ctx](int rc) { ctx.finish(rc); });
  };
  ASSERT_TRUE(table.add(double_desc(), std::move(solve)).is_ok());
}

Profile double_profile(std::int32_t value) {
  Profile profile("double", 0, 0, 1);
  profile.arg(0).set_scalar<std::int32_t>(value, BaseType::kInt,
                                          Persistence::kVolatile);
  profile.arg(1).desc.type = DataType::kScalar;
  profile.arg(1).desc.base = BaseType::kInt;
  return profile;
}

/// Two-cluster fixture: 1 MA, 2 LAs, 2 SEDs each (4 SEDs total).
struct SimFixture {
  explicit SimFixture(double service_seconds = 10.0,
                      const std::string& policy = "default")
      : topology(5e-3, 1.25e8), env(engine, topology) {
    register_double(services, service_seconds);
    DeploymentSpec spec;
    spec.ma_node = 0;
    spec.policy = policy;
    for (int la = 0; la < 2; ++la) {
      DeploymentSpec::LaSpec l;
      l.name = "LA" + std::to_string(la);
      l.node = static_cast<net::NodeId>(1 + la);
      for (int s = 0; s < 2; ++s) {
        DeploymentSpec::SedSpec sed;
        sed.name = "SeD" + std::to_string(la) + std::to_string(s);
        sed.node = static_cast<net::NodeId>(3 + la * 2 + s);
        sed.host_power = 1.0 + 0.2 * la;
        sed.machines = 4;
        l.sed_indexes.push_back(static_cast<int>(spec.seds.size()));
        spec.seds.push_back(sed);
      }
      spec.las.push_back(l);
    }
    deployment = std::make_unique<Deployment>(env, registry, services, spec);
    env.attach(client, 0);
    client.connect(registry.resolve("MA1").value());
    engine.run_until(engine.now() + 1.0);
  }

  des::Engine engine;
  net::UniformTopology topology;
  net::SimEnv env;
  naming::Registry registry;
  ServiceTable services;
  std::unique_ptr<Deployment> deployment;
  Client client{"client"};
};

TEST(Agents, RegistrationPropagatesServices) {
  SimFixture fix;
  EXPECT_EQ(fix.deployment->ma().child_count(), 2u);
  EXPECT_EQ(fix.deployment->ma().services().count("double"), 1u);
  EXPECT_EQ(fix.deployment->la(0).child_count(), 2u);
  EXPECT_EQ(fix.deployment->la(1).services().count("double"), 1u);
}

TEST(Agents, SingleCallHappyPath) {
  SimFixture fix;
  gc::Status status = make_error(ErrorCode::kInternal, "never ran");
  std::int32_t result = 0;
  fix.client.call_async(double_profile(21),
                        [&](const gc::Status& s, Profile& profile) {
                          status = s;
                          result =
                              profile.arg(1).get_scalar<std::int32_t>().value();
                        });
  fix.engine.run();
  EXPECT_TRUE(status.is_ok()) << status.to_string();
  EXPECT_EQ(result, 42);

  const auto& record = fix.client.records().at(0);
  EXPECT_TRUE(record.ok);
  EXPECT_GT(record.finding_time(), 0.0);
  EXPECT_GT(record.latency(), 0.0);
  EXPECT_GE(record.completed, record.started);
  EXPECT_FALSE(record.sed_name.empty());
}

TEST(Agents, UnknownServiceIsUnavailable) {
  SimFixture fix;
  Profile profile("nonexistent", 0, 0, 1);
  profile.arg(0).set_scalar<std::int32_t>(1, BaseType::kInt,
                                          Persistence::kVolatile);
  gc::Status status;
  fix.client.call_async(std::move(profile),
                        [&](const gc::Status& s, Profile&) { status = s; });
  fix.engine.run();
  EXPECT_EQ(status.code(), ErrorCode::kUnavailable);
}

TEST(Agents, MismatchedProfileShapeIsUnavailable) {
  SimFixture fix;
  // Same name, wrong arg types: SEDs must refuse the match.
  Profile profile("double", 0, 0, 1);
  profile.arg(0).set_scalar<double>(1.0, BaseType::kDouble,
                                    Persistence::kVolatile);
  gc::Status status;
  fix.client.call_async(std::move(profile),
                        [&](const gc::Status& s, Profile&) { status = s; });
  fix.engine.run();
  EXPECT_EQ(status.code(), ErrorCode::kUnavailable);
}

TEST(Agents, ConcurrentRequestsSpreadEvenly) {
  SimFixture fix(/*service_seconds=*/50.0);
  int done = 0;
  for (int i = 0; i < 20; ++i) {
    fix.client.call_async(double_profile(i),
                          [&](const gc::Status& s, Profile&) {
                            EXPECT_TRUE(s.is_ok());
                            ++done;
                          });
  }
  fix.engine.run();
  EXPECT_EQ(done, 20);
  for (std::size_t i = 0; i < fix.deployment->sed_count(); ++i) {
    EXPECT_EQ(fix.deployment->sed(i).jobs_completed(), 5u)
        << fix.deployment->sed(i).name();
  }
}

TEST(Agents, SedRunsOneJobAtATime) {
  SimFixture fix(/*service_seconds=*/100.0);
  for (int i = 0; i < 8; ++i) {
    fix.client.call_async(double_profile(i),
                          [](const gc::Status&, Profile&) {});
  }
  fix.engine.run();
  for (std::size_t i = 0; i < fix.deployment->sed_count(); ++i) {
    const auto& jobs = fix.deployment->sed(i).job_log();
    for (std::size_t j = 1; j < jobs.size(); ++j) {
      // No overlap: each job starts after the previous one finished.
      EXPECT_GE(jobs[j].started, jobs[j - 1].finished);
    }
  }
}

TEST(Agents, QueueWaitShowsUpInLatency) {
  SimFixture fix(/*service_seconds=*/100.0);
  for (int i = 0; i < 8; ++i) {
    fix.client.call_async(double_profile(i),
                          [](const gc::Status&, Profile&) {});
  }
  fix.engine.run();
  double min_latency = 1e18;
  double max_latency = 0.0;
  for (const auto& record : fix.client.records()) {
    min_latency = std::min(min_latency, record.latency());
    max_latency = std::max(max_latency, record.latency());
  }
  // 8 jobs on 4 SEDs: the second wave waits ~100s in the queues.
  EXPECT_LT(min_latency, 1.0);
  EXPECT_GT(max_latency, 99.0);
}

TEST(Agents, OutstandingBookkeeping) {
  SimFixture fix(/*service_seconds=*/5.0);
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    fix.client.call_async(double_profile(i),
                          [&](const gc::Status&, Profile&) { ++done; });
  }
  fix.engine.run();
  EXPECT_EQ(done, 4);
  // After kJobDone propagation every outstanding counter is back to zero.
  std::uint64_t assigned_total = 0;
  for (std::uint64_t uid = 1; uid <= 4; ++uid) {
    EXPECT_DOUBLE_EQ(fix.deployment->ma().outstanding(uid), 0.0);
    assigned_total += fix.deployment->ma().assigned_total(uid);
  }
  EXPECT_EQ(assigned_total, 4u);
  EXPECT_EQ(fix.deployment->ma().requests_handled(), 4u);
}

TEST(Agents, DeadSedTimeoutFallsBackToOthers) {
  // One SED with an estimation delay far beyond the collect timeout: the
  // MA must schedule with the answers it has.
  des::Engine engine;
  net::UniformTopology topology(1e-3, 1e9);
  net::SimEnv env(engine, topology);
  naming::Registry registry;
  ServiceTable services;
  register_double(services, 1.0);

  DeploymentSpec spec;
  spec.ma_node = 0;
  spec.agent_tuning.collect_timeout = 0.5;
  DeploymentSpec::LaSpec la;
  la.name = "LA";
  la.node = 1;
  DeploymentSpec::SedSpec healthy;
  healthy.name = "healthy";
  healthy.node = 2;
  la.sed_indexes.push_back(0);
  spec.seds.push_back(healthy);
  spec.las.push_back(la);
  Deployment deployment(env, registry, services, spec);

  // A rogue SED that registers but never answers collects.
  class Silent final : public net::Actor {
   public:
    void on_message(const net::Envelope& envelope) override {
      if (envelope.type == kRegisterAck) return;
      // swallow everything (dead after registration)
    }
  } silent;
  env.attach(silent, 3);
  SedRegisterMsg reg;
  reg.sed_uid = 99;
  reg.name = "silent";
  reg.services.push_back(double_desc());
  env.send(net::Envelope{silent.endpoint(),
                         registry.resolve("LA").value(), kSedRegister,
                         reg.encode(), 0});

  Client client("client");
  env.attach(client, 0);
  client.connect(registry.resolve("MA1").value());
  engine.run_until(engine.now() + 1.0);

  gc::Status status = make_error(ErrorCode::kInternal, "never ran");
  client.call_async(double_profile(5),
                    [&](const gc::Status& s, Profile&) { status = s; });
  engine.run();
  EXPECT_TRUE(status.is_ok()) << status.to_string();
  const auto& record = client.records().at(0);
  EXPECT_EQ(record.sed_name, "healthy");
  // The finding time includes the LA's timeout wait (60% of the MA's
  // 0.5 s budget), not the full budget: the LA answered with what it had.
  EXPECT_GT(record.finding_time(), 0.29);
  EXPECT_LT(record.finding_time(), 0.5);
}

TEST(Agents, PolicySwapAtRuntime) {
  SimFixture fix(/*service_seconds=*/10.0, "default");
  fix.deployment->ma().set_policy(sched::make_fastest_policy());
  gc::Status status;
  std::string sed_name;
  fix.client.call_async(double_profile(1),
                        [&](const gc::Status& s, Profile&) { status = s; });
  fix.engine.run();
  EXPECT_TRUE(status.is_ok());
  // fastest policy: one of the LA1 SEDs (power 1.2).
  EXPECT_EQ(fix.client.records().at(0).sed_name.substr(0, 4), "SeD1");
}

TEST(Agents, FailedSedDropsEverything) {
  SimFixture fix(/*service_seconds=*/200.0);
  // Submit 4 jobs (one lands per SED), then kill one SED immediately.
  int completed = 0;
  int failed = 0;
  for (int i = 0; i < 4; ++i) {
    fix.client.call_async(
        double_profile(i),
        [&](const gc::Status& s, Profile&) {
          if (s.is_ok()) {
            ++completed;
          } else {
            ++failed;
          }
        },
        /*deadline_s=*/400.0);
  }
  // Let scheduling+data placement happen, then kill SED uid 1.
  fix.engine.run_until(fix.engine.now() + 5.0);
  fix.deployment->sed(0).fail();
  fix.engine.run();
  // The three survivors complete; the job on the dead SED hits its
  // deadline.
  EXPECT_EQ(completed, 3);
  EXPECT_EQ(failed, 1);
}

TEST(Agents, CallDeadlineCancelledOnCompletion) {
  SimFixture fix(/*service_seconds=*/10.0);
  gc::Status status = make_error(ErrorCode::kInternal, "no run");
  fix.client.call_async(
      double_profile(3),
      [&](const gc::Status& s, Profile&) { status = s; },
      /*deadline_s=*/1000.0);
  fix.engine.run();
  EXPECT_TRUE(status.is_ok());  // deadline timer cancelled on completion
}

TEST(Agents, UnresponsiveChildEvictedAfterStrikes) {
  SimFixture fix(/*service_seconds=*/1.0);
  // Kill one SED before any request: it stays registered but silent.
  fix.deployment->sed(0).fail();
  const std::size_t children_before = 2;  // LA0 had two SEDs
  EXPECT_EQ(fix.deployment->la(0).child_count(), children_before);

  // The agent tuning defaults to max_child_timeouts = 2: two slow rounds,
  // then the LA evicts the dead child and scheduling is fast again.
  std::vector<double> finding_times;
  for (int i = 0; i < 4; ++i) {
    bool done = false;
    fix.client.call_async(double_profile(i),
                          [&](const gc::Status& s, Profile&) {
                            EXPECT_TRUE(s.is_ok());
                            done = true;
                          });
    fix.engine.run();
    ASSERT_TRUE(done);
    finding_times.push_back(fix.client.records().back().finding_time());
  }
  EXPECT_EQ(fix.deployment->la(0).child_count(), children_before - 1);
  // Rounds 1-2 pay the LA timeout; later rounds are back to normal.
  EXPECT_GT(finding_times[0], 1.0);
  EXPECT_GT(finding_times[1], 1.0);
  EXPECT_LT(finding_times[3], 0.5);
}

TEST(Agents, PeriodicLoadReportsFlow) {
  // A SED with load_report_period sends kLoadReport to its LA; agents
  // must absorb them without disruption while calls proceed.
  des::Engine engine;
  net::UniformTopology topology(1e-3, 1e9);
  net::SimEnv env(engine, topology);
  naming::Registry registry;
  ServiceTable services;
  register_double(services, 5.0);

  DeploymentSpec spec;
  spec.ma_node = 0;
  spec.sed_tuning.load_report_period = 0.5;
  DeploymentSpec::LaSpec la;
  la.name = "LA";
  la.node = 1;
  DeploymentSpec::SedSpec sed;
  sed.name = "SeD";
  sed.node = 2;
  la.sed_indexes.push_back(0);
  spec.seds.push_back(sed);
  spec.las.push_back(la);
  Deployment deployment(env, registry, services, spec);

  Client client("client");
  env.attach(client, 0);
  client.connect(registry.resolve("MA1").value());
  engine.run_until(engine.now() + 1.0);  // let registration settle

  bool done = false;
  client.call_async(double_profile(7),
                    [&](const gc::Status& s, Profile&) {
                      EXPECT_TRUE(s.is_ok());
                      done = true;
                    });
  engine.run_until(20.0);
  EXPECT_TRUE(done);
  // Reports keep flowing forever; the engine still has the next one
  // pending (periodic self-rescheduling).
  EXPECT_GT(engine.events_pending(), 0u);
}

TEST(Agents, RealEnvEndToEnd) {
  net::UniformTopology topology(1e-4, 1e9);
  net::RealEnv env(topology);
  naming::Registry registry;
  ServiceTable services;
  register_double(services, 0.0);

  DeploymentSpec spec;
  spec.ma_node = 0;
  DeploymentSpec::LaSpec la;
  la.name = "LA";
  la.node = 1;
  DeploymentSpec::SedSpec sed;
  sed.name = "SeD";
  sed.node = 2;
  la.sed_indexes.push_back(0);
  spec.seds.push_back(sed);
  spec.las.push_back(la);
  Deployment deployment(env, registry, services, spec);

  Client client("client");
  env.attach(client, 0);
  client.connect(registry.resolve("MA1").value());
  env.start();
  env.wait_idle();

  Profile profile = double_profile(100);
  const gc::Status status = client.call(profile);
  EXPECT_TRUE(status.is_ok()) << status.to_string();
  EXPECT_EQ(profile.arg(1).get_scalar<std::int32_t>().value(), 200);
  env.stop();
}

}  // namespace
}  // namespace gc::diet
