// Tests for src/common: status, rng, units, strings, stats.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/strings.hpp"
#include "common/units.hpp"

namespace gc {
namespace {

// ---------- Status / Result ----------

TEST(Status, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kOk);
  EXPECT_EQ(status.to_string(), "ok");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status status = make_error(ErrorCode::kNotFound, "thing missing");
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
  EXPECT_EQ(status.message(), "thing missing");
  EXPECT_EQ(status.to_string(), "not_found: thing missing");
}

TEST(Status, AllCodesHaveNames) {
  for (const ErrorCode code :
       {ErrorCode::kOk, ErrorCode::kInvalidArgument, ErrorCode::kNotFound,
        ErrorCode::kAlreadyExists, ErrorCode::kOutOfRange,
        ErrorCode::kFailedPrecondition, ErrorCode::kUnavailable,
        ErrorCode::kIoError, ErrorCode::kInternal}) {
    EXPECT_STRNE(to_string(code), "unknown");
  }
}

TEST(Result, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> result(make_error(ErrorCode::kInternal, "boom"));
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kInternal);
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(5));
  ASSERT_TRUE(result.is_ok());
  auto owned = std::move(result).value();
  EXPECT_EQ(*owned, 5);
}

// ---------- Rng ----------

TEST(Rng, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformBoundsRespected) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformU64Bounded) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.uniform_u64(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(Rng, NormalMoments) {
  Rng rng(10);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalShifted) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalPreservesMean) {
  Rng rng(12);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    stats.add(rng.lognormal_with_mean(100.0, 0.1));
  }
  EXPECT_NEAR(stats.mean(), 100.0, 0.5);
  EXPECT_NEAR(stats.stddev() / stats.mean(), 0.1, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 4.0, 0.1);
  EXPECT_GE(stats.min(), 0.0);
}

TEST(Rng, ReseedResetsStream) {
  Rng rng(5);
  const std::uint64_t first = rng.next_u64();
  rng.next_u64();
  rng.reseed(5);
  EXPECT_EQ(rng.next_u64(), first);
}

// ---------- units ----------

struct DurationCase {
  double seconds;
  const char* expected;
};

class FormatDuration : public ::testing::TestWithParam<DurationCase> {};

TEST_P(FormatDuration, Formats) {
  EXPECT_EQ(format_duration(GetParam().seconds), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FormatDuration,
    ::testing::Values(DurationCase{0.0498, "49.8ms"},
                      DurationCase{12.3, "12.3s"},
                      DurationCase{75.0, "1min 15s"},
                      DurationCase{4511.0, "1h 15min 11s"},
                      DurationCase{58723.0, "16h 18min 43s"},
                      DurationCase{508680.0, "141h 18min 00s"}));

TEST(Units, NegativeDuration) {
  EXPECT_EQ(format_duration(-75.0), "-1min 15s");
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
  EXPECT_EQ(format_bytes(3 * kMiB), "3.00 MiB");
  EXPECT_EQ(format_bytes(kGiB), "1.00 GiB");
}

TEST(Units, Bandwidth) {
  EXPECT_DOUBLE_EQ(gbit_per_s(1.0), 1.25e8);
  EXPECT_DOUBLE_EQ(gbit_per_s(10.0), 1.25e9);
}

// ---------- strings ----------

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWsDropsEmpty) {
  const auto parts = split_ws("  one\ttwo  three \n");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "one");
  EXPECT_EQ(parts[2], "three");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("ramsesZoom2", "ramses"));
  EXPECT_FALSE(starts_with("ram", "ramses"));
  EXPECT_TRUE(ends_with("results.tar", ".tar"));
  EXPECT_FALSE(ends_with(".tar", "results.tar"));
}

TEST(Strings, ToLower) { EXPECT_EQ(to_lower("MAName"), "maname"); }

TEST(Strings, Strformat) {
  EXPECT_EQ(strformat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strformat("%.2f", 3.14159), "3.14");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

// ---------- stats ----------

TEST(Stats, RunningBasics) {
  RunningStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(v);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(Stats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(Stats, Percentile) {
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(i);
  EXPECT_DOUBLE_EQ(percentile(values, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 100), 100.0);
  EXPECT_NEAR(percentile(values, 50), 50.5, 1e-9);
  EXPECT_NEAR(percentile(values, 90), 90.1, 1e-9);
}

TEST(Stats, PercentileEmptyAndSingle) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile({3.0}, 50), 3.0);
  // A single sample answers every percentile, including the clamped ones.
  EXPECT_DOUBLE_EQ(percentile({3.0}, 0), 3.0);
  EXPECT_DOUBLE_EQ(percentile({3.0}, 100), 3.0);
}

TEST(Stats, PercentileClampsOutOfRangeP) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(values, -5.0), 1.0);    // below 0 -> min
  EXPECT_DOUBLE_EQ(percentile(values, 105.0), 4.0);   // above 100 -> max
}

TEST(Stats, PercentileNanPIsZero) {
  // NaN fails both clamp comparisons and a NaN->size_t cast is UB: the
  // implementation must catch it explicitly.
  const std::vector<double> values = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(values, std::nan("")), 0.0);
}

TEST(Stats, PercentileUnsortedInput) {
  // percentile() sorts its copy; callers may pass raw latency logs.
  EXPECT_DOUBLE_EQ(percentile({9.0, 1.0, 5.0}, 50), 5.0);
}

TEST(Stats, RunningSingleSample) {
  RunningStats stats;
  stats.add(7.5);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 7.5);
  EXPECT_DOUBLE_EQ(stats.min(), 7.5);
  EXPECT_DOUBLE_EQ(stats.max(), 7.5);
  // One sample has no spread: variance/stddev are 0, not NaN.
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(Stats, RunningConstantStreamHasZeroStddev) {
  // Welford's m2 can round to a tiny negative on constant input; stddev
  // must come out 0.0, never NaN.
  RunningStats stats;
  for (int i = 0; i < 1000; ++i) stats.add(0.1 + 1e-13);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
  EXPECT_FALSE(std::isnan(stats.stddev()));
}

// ---------- log ----------

TEST(Log, DefaultLevelYieldsToEnvVar) {
  const LogLevel saved = log_level();
  // set_default_log_level is the binary's baseline; GC_LOG_LEVEL wins.
  ::setenv("GC_LOG_LEVEL", "error", 1);
  set_default_log_level(LogLevel::kInfo);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Unknown values are ignored: the requested default applies.
  ::setenv("GC_LOG_LEVEL", "verbose", 1);
  set_default_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  ::unsetenv("GC_LOG_LEVEL");
  set_default_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  // set_log_level is the explicit override: no env consultation.
  ::setenv("GC_LOG_LEVEL", "off", 1);
  set_log_level(LogLevel::kInfo);
  EXPECT_EQ(log_level(), LogLevel::kInfo);
  ::unsetenv("GC_LOG_LEVEL");
  set_log_level(saved);
}

TEST(Stats, RunningNegativeValues) {
  RunningStats stats;
  for (const double v : {-3.0, -1.0, 1.0, 3.0}) stats.add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), -3.0);
  EXPECT_DOUBLE_EQ(stats.max(), 3.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 0.0);
  EXPECT_NEAR(stats.stddev(), std::sqrt(20.0 / 3.0), 1e-12);
}

}  // namespace
}  // namespace gc
