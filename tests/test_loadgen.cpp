// Load-generator suite (ISSUE 9): the open-loop driver must be fully
// deterministic — the same spec plans the same arrivals, a written trace
// replays the Poisson run that produced it bit-for-bit, two same-seed
// serving runs hash identically (journal included), and scrambling the
// DES tie-break must not change any outcome.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "loadgen/loadgen.hpp"
#include "loadgen/serving.hpp"
#include "platform/generator.hpp"

namespace gc {
namespace {

loadgen::LoadSpec small_spec() {
  loadgen::LoadSpec spec;
  spec.clients = 40;
  spec.requests_per_client = 3;
  spec.arrival_rate_hz = 200.0;
  spec.profiles = loadgen::default_mix();
  spec.seed = 7;
  return spec;
}

// ---------- the arrival plan ----------

TEST(LoadgenPlan, PoissonPlanIsAPureFunctionOfTheSpec) {
  const auto first = loadgen::plan_poisson(small_spec(), 10.0);
  const auto replay = loadgen::plan_poisson(small_spec(), 10.0);
  ASSERT_EQ(first.size(), 40u * 3u);
  ASSERT_EQ(first.size(), replay.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].client, replay[i].client);
    EXPECT_EQ(first[i].seq, replay[i].seq);
    EXPECT_EQ(first[i].at_s, replay[i].at_s);  // bitwise
    EXPECT_EQ(first[i].profile, replay[i].profile);
  }

  loadgen::LoadSpec other = small_spec();
  other.seed = 8;
  const auto different = loadgen::plan_poisson(other, 10.0);
  bool any_diff = false;
  for (std::size_t i = 0; i < first.size(); ++i) {
    any_diff = any_diff || first[i].at_s != different[i].at_s;
  }
  EXPECT_TRUE(any_diff);
}

TEST(LoadgenPlan, PlanIsCanonicallyOrderedAndComplete) {
  const auto plan = loadgen::plan_poisson(small_spec(), 5.0);
  std::vector<int> per_client(40, 0);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_GE(plan[i].at_s, 5.0);
    EXPECT_GE(plan[i].profile, 0);
    per_client[static_cast<std::size_t>(plan[i].client)] += 1;
    if (i > 0) {
      const auto& a = plan[i - 1];
      const auto& b = plan[i];
      const bool ordered =
          a.at_s < b.at_s ||
          (a.at_s == b.at_s &&
           (a.client < b.client ||
            (a.client == b.client && a.seq < b.seq)));
      EXPECT_TRUE(ordered) << "plan not canonically sorted at " << i;
    }
  }
  for (const int count : per_client) EXPECT_EQ(count, 3);
}

TEST(LoadgenPlan, TraceRoundTripsBitForBit) {
  const std::string path = testing::TempDir() + "gc_loadgen_trace.txt";
  const auto plan = loadgen::plan_poisson(small_spec(), 2.0);
  ASSERT_TRUE(loadgen::write_trace(path, plan).is_ok());

  std::vector<loadgen::Arrival> back;
  ASSERT_TRUE(loadgen::read_trace(path, &back).is_ok());
  ASSERT_EQ(back.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(back[i].client, plan[i].client);
    EXPECT_EQ(back[i].seq, plan[i].seq);
    EXPECT_EQ(back[i].at_s, plan[i].at_s);  // %.17g survives the trip
    EXPECT_EQ(back[i].profile, plan[i].profile);
  }
  std::remove(path.c_str());
}

TEST(LoadgenPlan, MissingTraceIsAnError) {
  std::vector<loadgen::Arrival> plan;
  EXPECT_FALSE(
      loadgen::read_trace("/nonexistent/trace.txt", &plan).is_ok());
}

// ---------- the fat-tree generator ----------

TEST(LoadgenPlatform, FattreeShapeMatchesTheConfig) {
  platform::FatTreeConfig config;
  config.pods = 3;
  config.clusters_per_pod = 2;
  config.seds_per_cluster = 4;
  config.machines_per_sed = 2;
  const platform::GeneratedPlatform gen = platform::make_fattree(config);
  EXPECT_EQ(gen.sed_count(), 3u * 2u * 4u);
  EXPECT_EQ(gen.ma_nodes.size(), 3u);
  EXPECT_EQ(gen.client_nodes.size(), 3u);
  ASSERT_EQ(gen.clusters.size(), 3u * 2u);
  for (const auto& cluster : gen.clusters) {
    EXPECT_EQ(cluster.sed_nodes.size(), 4u);
    for (const net::NodeId sed_node : cluster.sed_nodes) {
      EXPECT_NE(sed_node, cluster.la_node);
    }
  }
}

// ---------- serving-run determinism ----------

loadgen::ServingConfig tiny_serving(int mas) {
  loadgen::ServingConfig config;
  config.topology.pods = 2;
  config.topology.clusters_per_pod = 1;
  config.topology.seds_per_cluster = 2;
  config.topology.machines_per_sed = 2;
  config.mas = mas;
  config.load.clients = 24;
  config.load.requests_per_client = 2;
  config.load.arrival_rate_hz = 100.0;
  config.load.seed = 11;
  return config;
}

TEST(LoadgenServing, SameSeedRunsAreBitIdentical) {
  const loadgen::ServingReport first = loadgen::run_serving(tiny_serving(2));
  const loadgen::ServingReport replay =
      loadgen::run_serving(tiny_serving(2));
  EXPECT_EQ(first.ok, 48u);
  EXPECT_EQ(first.failed, 0u);
  EXPECT_EQ(first.state_hash, replay.state_hash);
  EXPECT_EQ(first.science_digest, replay.science_digest);
  EXPECT_EQ(first.p50_s, replay.p50_s);            // bitwise
  EXPECT_EQ(first.makespan_s, replay.makespan_s);  // bitwise
  EXPECT_EQ(first.events, replay.events);
  EXPECT_EQ(first.journal_jsonl, replay.journal_jsonl);
  EXPECT_FALSE(first.journal_jsonl.empty());
}

TEST(LoadgenServing, TieSeedScramblesNothingObservable) {
  loadgen::ServingConfig scrambled = tiny_serving(2);
  scrambled.tie_seed = 5;
  const loadgen::ServingReport base = loadgen::run_serving(tiny_serving(2));
  const loadgen::ServingReport run = loadgen::run_serving(scrambled);
  // Same-time events may execute in any order; nothing the harness
  // reports is allowed to depend on which (the `--tie-seed` contract).
  EXPECT_EQ(run.state_hash, base.state_hash);
  EXPECT_EQ(run.science_digest, base.science_digest);
  EXPECT_EQ(run.makespan_s, base.makespan_s);
}

TEST(LoadgenServing, TraceReplayReproducesThePoissonRun) {
  const std::string path = testing::TempDir() + "gc_serving_trace.txt";
  loadgen::ServingConfig recording = tiny_serving(1);
  recording.trace_out = path;
  const loadgen::ServingReport original = loadgen::run_serving(recording);
  ASSERT_EQ(original.failed, 0u);

  loadgen::ServingConfig replaying = tiny_serving(1);
  replaying.load.trace_path = path;
  const loadgen::ServingReport replay = loadgen::run_serving(replaying);
  EXPECT_EQ(replay.arrivals, original.arrivals);
  EXPECT_EQ(replay.state_hash, original.state_hash);
  EXPECT_EQ(replay.science_digest, original.science_digest);
  EXPECT_EQ(replay.journal_jsonl, original.journal_jsonl);
  std::remove(path.c_str());
}

TEST(LoadgenServing, FederationDoesNotChangeTheScience) {
  // 1 vs 2 MAs over the same arrival plan: different scheduling, wildly
  // different timings — identical science digest.
  const loadgen::ServingReport one = loadgen::run_serving(tiny_serving(1));
  const loadgen::ServingReport two = loadgen::run_serving(tiny_serving(2));
  EXPECT_EQ(one.failed, 0u);
  EXPECT_EQ(two.failed, 0u);
  EXPECT_EQ(one.science_digest, two.science_digest);
  EXPECT_GT(two.peer.forwards, 0u);
}

}  // namespace
}  // namespace gc
