// Tests for the 3D Peano-Hilbert curve and curve partitioning.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "hilbert/hilbert.hpp"

namespace gc::hilbert {
namespace {

class HilbertOrder : public ::testing::TestWithParam<int> {};

TEST_P(HilbertOrder, RoundtripRandomPoints) {
  const int order = GetParam();
  const std::uint32_t n = 1u << order;
  Rng rng(static_cast<std::uint64_t>(order));
  for (int i = 0; i < 500; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.uniform_u64(n));
    const auto y = static_cast<std::uint32_t>(rng.uniform_u64(n));
    const auto z = static_cast<std::uint32_t>(rng.uniform_u64(n));
    const std::uint64_t key = encode(x, y, z, order);
    EXPECT_LT(key, std::uint64_t{1} << (3 * order));
    std::uint32_t bx, by, bz;
    decode(key, order, bx, by, bz);
    EXPECT_EQ(bx, x);
    EXPECT_EQ(by, y);
    EXPECT_EQ(bz, z);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, HilbertOrder,
                         ::testing::Values(1, 2, 3, 5, 8, 10, 21));

TEST(Hilbert, BijectionOrder3) {
  const int order = 3;
  const std::uint32_t n = 1u << order;
  std::set<std::uint64_t> keys;
  for (std::uint32_t x = 0; x < n; ++x) {
    for (std::uint32_t y = 0; y < n; ++y) {
      for (std::uint32_t z = 0; z < n; ++z) {
        keys.insert(encode(x, y, z, order));
      }
    }
  }
  EXPECT_EQ(keys.size(), static_cast<std::size_t>(n) * n * n);
  EXPECT_EQ(*keys.begin(), 0u);
  EXPECT_EQ(*keys.rbegin(), static_cast<std::uint64_t>(n) * n * n - 1);
}

TEST(Hilbert, CurveIsContinuous) {
  // Consecutive keys differ by exactly one unit step in one axis — the
  // defining property of the Hilbert curve.
  const int order = 4;
  std::uint32_t px, py, pz;
  decode(0, order, px, py, pz);
  const std::uint64_t total = 1ull << (3 * order);
  for (std::uint64_t key = 1; key < total; ++key) {
    std::uint32_t x, y, z;
    decode(key, order, x, y, z);
    const int dist = std::abs(static_cast<int>(x) - static_cast<int>(px)) +
                     std::abs(static_cast<int>(y) - static_cast<int>(py)) +
                     std::abs(static_cast<int>(z) - static_cast<int>(pz));
    ASSERT_EQ(dist, 1) << "discontinuity at key " << key;
    px = x;
    py = y;
    pz = z;
  }
}

TEST(Hilbert, CurveOrderIsPermutation) {
  const auto order3 = curve_order(3);
  EXPECT_EQ(order3.size(), 512u);
  std::set<std::uint64_t> unique(order3.begin(), order3.end());
  EXPECT_EQ(unique.size(), 512u);
  EXPECT_EQ(*unique.rbegin(), 511u);
}

// ---------- partition ----------

TEST(Partition, EqualWeightsEvenSplit) {
  const std::vector<double> weights(100, 1.0);
  const auto bounds = partition(weights, 4);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_EQ(bounds[0], 0u);
  EXPECT_EQ(bounds[4], 100u);
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(bounds[static_cast<size_t>(p) + 1] -
                  bounds[static_cast<size_t>(p)],
              25u);
  }
}

TEST(Partition, SinglePart) {
  const auto bounds = partition(std::vector<double>(10, 1.0), 1);
  ASSERT_EQ(bounds.size(), 2u);
  EXPECT_EQ(bounds[0], 0u);
  EXPECT_EQ(bounds[1], 10u);
}

TEST(Partition, SkewedWeightsStayBalanced) {
  // One heavy cell; the rest light.
  std::vector<double> weights(64, 1.0);
  weights[10] = 60.0;
  const auto bounds = partition(weights, 4);
  double total = 0.0;
  for (const double w : weights) total += w;
  for (int p = 0; p < 4; ++p) {
    double part = 0.0;
    for (std::size_t i = bounds[static_cast<size_t>(p)];
         i < bounds[static_cast<size_t>(p) + 1]; ++i) {
      part += weights[i];
    }
    // No part can exceed target + the heavy cell.
    EXPECT_LE(part, total / 4 + 60.0);
  }
}

TEST(Partition, BoundsMonotonic) {
  Rng rng(11);
  for (int round = 0; round < 50; ++round) {
    std::vector<double> weights(rng.uniform_u64(200) + 10);
    for (auto& w : weights) w = rng.uniform();
    const int parts = static_cast<int>(rng.uniform_u64(8)) + 1;
    const auto bounds = partition(weights, parts);
    ASSERT_EQ(bounds.size(), static_cast<std::size_t>(parts) + 1);
    EXPECT_EQ(bounds.front(), 0u);
    EXPECT_EQ(bounds.back(), weights.size());
    for (std::size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LE(bounds[i - 1], bounds[i]);
    }
  }
}

TEST(Partition, MorePartsThanCells) {
  const auto bounds = partition(std::vector<double>(3, 1.0), 8);
  ASSERT_EQ(bounds.size(), 9u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), 3u);
  // Exactly 3 non-empty parts.
  int non_empty = 0;
  for (int p = 0; p < 8; ++p) {
    if (bounds[static_cast<size_t>(p) + 1] > bounds[static_cast<size_t>(p)]) {
      ++non_empty;
    }
  }
  EXPECT_EQ(non_empty, 3);
}

TEST(Partition, ZeroWeights) {
  const auto bounds = partition(std::vector<double>(16, 0.0), 4);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), 16u);
}

}  // namespace
}  // namespace gc::hilbert
