// Codec round-trip fuzz: for every DIET protocol message type, random
// instances must satisfy encode -> decode -> encode byte-identity (the
// wire format is part of the determinism contract — a lossy or order-
// sensitive codec would break cross-run reproducibility). Plus explicit
// Status error-path coverage for the fallible APIs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/invariant.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "diet/config.hpp"
#include "diet/protocol.hpp"
#include "dtm/messages.hpp"
#include "io/fortran.hpp"
#include "io/namelist.hpp"
#include "io/tar.hpp"
#include "naming/registry.hpp"
#include "net/codec.hpp"

namespace gc {
namespace {

constexpr int kRounds = 200;

// ---------- random field generators ----------

std::string random_name(Rng& rng) {
  std::string s;
  const std::uint64_t len = rng.uniform_u64(24);
  for (std::uint64_t i = 0; i < len; ++i) {
    s += static_cast<char>('a' + rng.uniform_u64(26));
  }
  return s;
}

net::Bytes random_bytes(Rng& rng) {
  net::Bytes b(rng.uniform_u64(64));
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.next_u64());
  return b;
}

diet::ProfileDesc random_desc(Rng& rng) {
  // Valid marker chain: -1 <= last_in <= last_inout <= last_out, last_out
  // >= 0 (the Profile constructors enforce this).
  const int last_out = static_cast<int>(rng.uniform_u64(4));
  const int last_inout =
      static_cast<int>(
          rng.uniform_u64(static_cast<std::uint64_t>(last_out) + 2)) -
      1;
  const int last_in =
      static_cast<int>(
          rng.uniform_u64(static_cast<std::uint64_t>(last_inout) + 2)) -
      1;
  diet::ProfileDesc desc(random_name(rng), last_in, last_inout, last_out);
  for (int i = 0; i < desc.arg_count(); ++i) {
    auto& arg = desc.arg(i);
    arg.type = static_cast<diet::DataType>(rng.uniform_u64(5));
    arg.base = static_cast<diet::BaseType>(rng.uniform_u64(6));
    arg.persistence = static_cast<diet::Persistence>(rng.uniform_u64(4));
    arg.rows = rng.uniform_u64(1000);
    arg.cols = rng.uniform_u64(16) + 1;
  }
  return desc;
}

sched::Estimation random_estimation(Rng& rng) {
  sched::Estimation est;
  est.timestamp = rng.uniform(0.0, 1e5);
  est.host_power = rng.uniform(0.1, 8.0);
  est.machines = static_cast<std::int32_t>(rng.uniform_u64(128));
  est.queue_length = rng.uniform(0.0, 50.0);
  est.queued_work_s = rng.uniform(0.0, 1e4);
  est.free_cpu = rng.uniform();
  est.free_mem_mb = rng.uniform(0.0, 65536.0);
  est.service_comp_s = rng.uniform(-1.0, 1e4);
  est.jobs_completed = rng.next_u64();
  est.agent_assigned = rng.uniform(0.0, 100.0);
  return est;
}

sched::Candidate random_candidate(Rng& rng) {
  sched::Candidate c;
  c.sed_uid = rng.next_u64();
  c.sed_endpoint = static_cast<net::Endpoint>(rng.uniform_u64(1 << 16));
  c.sed_name = random_name(rng);
  c.est = random_estimation(rng);
  return c;
}

/// encode -> decode -> encode must reproduce the first byte stream.
template <typename Msg, typename MakeFn>
void roundtrip(MakeFn make) {
  Rng rng(20260805);
  for (int round = 0; round < kRounds; ++round) {
    const Msg msg = make(rng);
    const net::Bytes first = msg.encode();
    const Msg back = Msg::decode(first);
    const net::Bytes second = back.encode();
    ASSERT_EQ(first, second) << "round " << round;
  }
}

// ---------- per-message fuzz ----------

TEST(CodecFuzz, SedRegisterMsg) {
  roundtrip<diet::SedRegisterMsg>([](Rng& rng) {
    diet::SedRegisterMsg msg;
    msg.sed_uid = rng.next_u64();
    msg.name = random_name(rng);
    msg.host_power = rng.uniform(0.1, 8.0);
    msg.machines = static_cast<std::int32_t>(rng.uniform_u64(512));
    const std::uint64_t services = rng.uniform_u64(4);
    for (std::uint64_t i = 0; i < services; ++i) {
      msg.services.push_back(random_desc(rng));
    }
    return msg;
  });
}

TEST(CodecFuzz, AgentRegisterMsg) {
  roundtrip<diet::AgentRegisterMsg>([](Rng& rng) {
    diet::AgentRegisterMsg msg;
    msg.name = random_name(rng);
    const std::uint64_t services = rng.uniform_u64(6);
    for (std::uint64_t i = 0; i < services; ++i) {
      msg.services.push_back(random_name(rng));
    }
    return msg;
  });
}

/// Zero to a few data dependencies: the empty case matters because the
/// deps ride as a trailing-optional section (absent = pre-DTM wire form).
std::vector<diet::DataDep> random_deps(Rng& rng) {
  std::vector<diet::DataDep> deps;
  const std::uint64_t count = rng.uniform_u64(4);
  for (std::uint64_t i = 0; i < count; ++i) {
    deps.push_back(diet::DataDep{
        random_name(rng),
        static_cast<std::int64_t>(rng.uniform_u64(1ULL << 40))});
  }
  return deps;
}

TEST(CodecFuzz, RequestSubmitMsg) {
  roundtrip<diet::RequestSubmitMsg>([](Rng& rng) {
    diet::RequestSubmitMsg msg;
    msg.client_request_id = rng.next_u64();
    msg.desc = random_desc(rng);
    msg.in_bytes = static_cast<std::int64_t>(rng.uniform_u64(1ULL << 40));
    msg.deps = random_deps(rng);
    return msg;
  });
}

TEST(CodecFuzz, RequestCollectMsg) {
  roundtrip<diet::RequestCollectMsg>([](Rng& rng) {
    diet::RequestCollectMsg msg;
    msg.request_key = rng.next_u64();
    msg.desc = random_desc(rng);
    msg.in_bytes = static_cast<std::int64_t>(rng.uniform_u64(1ULL << 40));
    msg.timeout_s = rng.uniform(0.0, 30.0);
    msg.deps = random_deps(rng);
    return msg;
  });
}

TEST(CodecFuzz, CandidatesMsg) {
  roundtrip<diet::CandidatesMsg>([](Rng& rng) {
    diet::CandidatesMsg msg;
    msg.request_key = rng.next_u64();
    const std::uint64_t count = rng.uniform_u64(8);
    for (std::uint64_t i = 0; i < count; ++i) {
      msg.candidates.push_back(random_candidate(rng));
    }
    return msg;
  });
}

TEST(CodecFuzz, RequestReplyMsg) {
  roundtrip<diet::RequestReplyMsg>([](Rng& rng) {
    diet::RequestReplyMsg msg;
    msg.client_request_id = rng.next_u64();
    msg.found = rng.uniform_u64(2) == 1;
    msg.chosen = random_candidate(rng);
    const std::uint64_t available = rng.uniform_u64(4);
    for (std::uint64_t i = 0; i < available; ++i) {
      msg.available_ids.push_back(random_name(rng));
    }
    return msg;
  });
}

TEST(CodecFuzz, CallDataMsg) {
  roundtrip<diet::CallDataMsg>([](Rng& rng) {
    diet::CallDataMsg msg;
    msg.call_id = rng.next_u64();
    msg.path = random_name(rng);
    msg.last_out = static_cast<std::int32_t>(rng.uniform_u64(4));
    msg.last_inout =
        static_cast<std::int32_t>(
            rng.uniform_u64(static_cast<std::uint64_t>(msg.last_out) + 2)) -
        1;
    msg.last_in =
        static_cast<std::int32_t>(rng.uniform_u64(
            static_cast<std::uint64_t>(msg.last_inout) + 2)) -
        1;
    msg.inputs = random_bytes(rng);
    return msg;
  });
}

TEST(CodecFuzz, CallStartedMsg) {
  roundtrip<diet::CallStartedMsg>([](Rng& rng) {
    diet::CallStartedMsg msg;
    msg.call_id = rng.next_u64();
    return msg;
  });
}

TEST(CodecFuzz, CallResultMsg) {
  roundtrip<diet::CallResultMsg>([](Rng& rng) {
    diet::CallResultMsg msg;
    msg.call_id = rng.next_u64();
    msg.solve_status =
        static_cast<std::int32_t>(rng.uniform_u64(8)) - 4;  // incl. -3
    msg.outputs = random_bytes(rng);
    return msg;
  });
}

TEST(CodecFuzz, JobDoneMsg) {
  roundtrip<diet::JobDoneMsg>([](Rng& rng) {
    diet::JobDoneMsg msg;
    msg.sed_uid = rng.next_u64();
    msg.call_id = rng.next_u64();
    msg.busy_seconds = rng.uniform(0.0, 1e5);
    return msg;
  });
}

TEST(CodecFuzz, LoadReportMsg) {
  roundtrip<diet::LoadReportMsg>([](Rng& rng) {
    diet::LoadReportMsg msg;
    msg.sed_uid = rng.next_u64();
    msg.queue_length = rng.uniform(0.0, 100.0);
    msg.queued_work_s = rng.uniform(0.0, 1e5);
    msg.jobs_completed = rng.next_u64();
    return msg;
  });
}

TEST(CodecFuzz, HeartbeatMsg) {
  roundtrip<diet::HeartbeatMsg>([](Rng& rng) {
    diet::HeartbeatMsg msg;
    msg.uid = rng.next_u64();
    msg.seq = rng.next_u64();
    return msg;
  });
}

// ---------- federation message fuzz ----------

TEST(CodecFuzz, RequestCollectMsgFederated) {
  roundtrip<diet::RequestCollectMsg>([](Rng& rng) {
    diet::RequestCollectMsg msg;
    msg.request_key = rng.next_u64();
    msg.desc = random_desc(rng);
    msg.in_bytes = static_cast<std::int64_t>(rng.uniform_u64(1ULL << 40));
    msg.timeout_s = rng.uniform(0.0, 30.0);
    msg.deps = random_deps(rng);
    // Sometimes both zero (legacy form), sometimes a real fed section —
    // including ttl 0 with a nonzero origin, which must still encode it.
    if (rng.uniform_u64(3) != 0) {
      msg.origin_uid = static_cast<std::uint32_t>(rng.uniform_u64(1 << 16));
      msg.ttl = static_cast<std::uint32_t>(rng.uniform_u64(4));
    }
    return msg;
  });
}

TEST(CodecFuzz, PeerAnnounceMsg) {
  roundtrip<diet::PeerAnnounceMsg>([](Rng& rng) {
    diet::PeerAnnounceMsg msg;
    msg.ma_uid = static_cast<std::uint32_t>(rng.uniform_u64(1 << 16));
    msg.name = random_name(rng);
    const std::uint64_t services = rng.uniform_u64(6);
    for (std::uint64_t i = 0; i < services; ++i) {
      msg.services.push_back(random_name(rng));
    }
    return msg;
  });
}

TEST(CodecFuzz, PeerCandidatesMsg) {
  roundtrip<diet::PeerCandidatesMsg>([](Rng& rng) {
    diet::PeerCandidatesMsg msg;
    msg.request_key = rng.next_u64();
    msg.ma_uid = static_cast<std::uint32_t>(rng.uniform_u64(1 << 16));
    const std::uint64_t count = rng.uniform_u64(8);
    for (std::uint64_t i = 0; i < count; ++i) {
      msg.candidates.push_back(random_candidate(rng));
    }
    return msg;
  });
}

/// The federation section must be trailing-optional: bytes written by the
/// pre-federation encoder (no origin/ttl) decode with both fields zero,
/// and a message with both fields zero re-encodes to those exact bytes.
TEST(CodecCompat, CollectPreFederationEnvelopeDecodes) {
  Rng rng(20260809);
  for (int round = 0; round < kRounds; ++round) {
    diet::RequestCollectMsg msg;
    msg.request_key = rng.next_u64();
    msg.desc = random_desc(rng);
    msg.in_bytes = static_cast<std::int64_t>(rng.uniform_u64(1ULL << 40));
    msg.timeout_s = rng.uniform(0.0, 30.0);
    msg.deps = random_deps(rng);

    // The pre-federation wire form, written by hand: key, desc, in_bytes,
    // timeout, then the deps section only when non-empty.
    net::Writer w;
    w.u64(msg.request_key);
    msg.desc.serialize(w);
    w.i64(msg.in_bytes);
    w.f64(msg.timeout_s);
    if (!msg.deps.empty()) {
      w.u32(static_cast<std::uint32_t>(msg.deps.size()));
      for (const auto& dep : msg.deps) {
        w.str(dep.data_id);
        w.i64(dep.bytes);
      }
    }
    const net::Bytes legacy = w.take();

    const diet::RequestCollectMsg back =
        diet::RequestCollectMsg::decode(legacy);
    EXPECT_EQ(back.origin_uid, 0u) << "round " << round;
    EXPECT_EQ(back.ttl, 0u) << "round " << round;
    EXPECT_EQ(back.deps.size(), msg.deps.size()) << "round " << round;
    // origin/ttl are zero, so re-encoding must reproduce the old bytes.
    EXPECT_EQ(msg.encode(), legacy) << "round " << round;
    EXPECT_EQ(back.encode(), legacy) << "round " << round;
  }
}

TEST(CodecCompat, LocatePreFederationEnvelopeDecodes) {
  Rng rng(20260810);
  for (int round = 0; round < kRounds; ++round) {
    dtm::DataLocateMsg msg;
    msg.data_id = random_name(rng);
    msg.requester_uid = rng.next_u64();
    msg.requester_endpoint =
        static_cast<net::Endpoint>(rng.uniform_u64(1 << 16));

    net::Writer w;
    w.str(msg.data_id);
    w.u64(msg.requester_uid);
    w.u32(msg.requester_endpoint);
    const net::Bytes legacy = w.take();

    const dtm::DataLocateMsg back = dtm::DataLocateMsg::decode(legacy);
    EXPECT_FALSE(back.federated) << "round " << round;
    EXPECT_EQ(msg.encode(), legacy) << "round " << round;

    // And the federated flag survives its own roundtrip.
    msg.federated = true;
    const dtm::DataLocateMsg fed =
        dtm::DataLocateMsg::decode(msg.encode());
    EXPECT_TRUE(fed.federated) << "round " << round;
  }
}

TEST(CodecFuzz, DataLocateMsgFederated) {
  roundtrip<dtm::DataLocateMsg>([](Rng& rng) {
    dtm::DataLocateMsg msg;
    msg.data_id = random_name(rng);
    msg.requester_uid = rng.next_u64();
    msg.requester_endpoint =
        static_cast<net::Endpoint>(rng.uniform_u64(1 << 16));
    msg.federated = rng.uniform_u64(2) == 1;
    return msg;
  });
}

// ---------- DTM message fuzz ----------

dtm::ReplicaInfo random_replica(Rng& rng) {
  dtm::ReplicaInfo info;
  info.sed_uid = rng.next_u64();
  info.endpoint = static_cast<net::Endpoint>(rng.uniform_u64(1 << 16));
  info.node = static_cast<net::NodeId>(rng.uniform_u64(1 << 12));
  info.bytes = static_cast<std::int64_t>(rng.uniform_u64(1ULL << 40));
  return info;
}

TEST(CodecFuzz, DataRegisterMsg) {
  roundtrip<dtm::DataRegisterMsg>([](Rng& rng) {
    dtm::DataRegisterMsg msg;
    msg.data_id = random_name(rng);
    msg.holder = random_replica(rng);
    msg.replicas = static_cast<std::int32_t>(rng.uniform_u64(8)) + 1;
    return msg;
  });
}

TEST(CodecFuzz, DataUnregisterMsg) {
  roundtrip<dtm::DataUnregisterMsg>([](Rng& rng) {
    dtm::DataUnregisterMsg msg;
    msg.sed_uid = rng.next_u64();
    msg.data_id = random_name(rng);  // may be empty = drop-all
    return msg;
  });
}

TEST(CodecFuzz, DataLocateMsg) {
  roundtrip<dtm::DataLocateMsg>([](Rng& rng) {
    dtm::DataLocateMsg msg;
    msg.data_id = random_name(rng);
    msg.requester_uid = rng.next_u64();
    msg.requester_endpoint =
        static_cast<net::Endpoint>(rng.uniform_u64(1 << 16));
    return msg;
  });
}

TEST(CodecFuzz, DataLocationMsg) {
  roundtrip<dtm::DataLocationMsg>([](Rng& rng) {
    dtm::DataLocationMsg msg;
    msg.data_id = random_name(rng);
    const std::uint64_t count = rng.uniform_u64(6);
    for (std::uint64_t i = 0; i < count; ++i) {
      msg.replicas.push_back(random_replica(rng));
    }
    return msg;
  });
}

TEST(CodecFuzz, DataPullMsg) {
  roundtrip<dtm::DataPullMsg>([](Rng& rng) {
    dtm::DataPullMsg msg;
    msg.data_id = random_name(rng);
    msg.requester_uid = rng.next_u64();
    return msg;
  });
}

TEST(CodecFuzz, DataPushMsg) {
  roundtrip<dtm::DataPushMsg>([](Rng& rng) {
    dtm::DataPushMsg msg;
    msg.data_id = random_name(rng);
    msg.found = rng.uniform_u64(2) == 1;
    msg.value = random_bytes(rng);
    msg.charged_bytes = static_cast<std::int64_t>(rng.uniform_u64(1ULL << 40));
    return msg;
  });
}

TEST(CodecFuzz, DataReplicateMsg) {
  roundtrip<dtm::DataReplicateMsg>([](Rng& rng) {
    dtm::DataReplicateMsg msg;
    msg.data_id = random_name(rng);
    msg.holder = random_replica(rng);
    return msg;
  });
}

// ---------- adversarial descriptor shapes ----------

// A decoded ArgDesc can carry any rows/cols a hostile or corrupted message
// chose; element_count() must clamp so the product (and payload_bytes())
// never wraps into a bogus or negative modeled volume.
TEST(CodecFuzz, ArgDescAdversarialShapesNeverOverflow) {
  constexpr std::uint64_t kMax =
      std::numeric_limits<std::uint64_t>::max();
  constexpr std::uint64_t kMaxElements =
      static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()) / 8;

  struct Capture {
    static void handler(const char*, int, const std::string&) {}
    Capture() {
      check::reset_failure_count();
      check::set_failure_handler(&Capture::handler);
    }
    ~Capture() { check::set_failure_handler(nullptr); }
  } capture;

  const std::pair<std::uint64_t, std::uint64_t> hostile[] = {
      {1ULL << 40, 1ULL << 40},  // product wraps 64 bits outright
      {kMax, kMax},
      {kMax, 2},
      {3, kMax / 2},
      {kMaxElements, 2},     // honest product, *8 would wrap int64
      {kMaxElements + 1, 1},
  };
  for (const auto& [rows, cols] : hostile) {
    diet::ArgDesc desc;
    desc.type = diet::DataType::kMatrix;
    desc.base = diet::BaseType::kDouble;  // 8 bytes: the worst multiplier
    desc.rows = rows;
    desc.cols = cols;

    // Decode path: hostile shapes survive the codec verbatim...
    net::Writer w;
    desc.serialize(w);
    const net::Bytes wire = w.take();
    net::Reader r(wire);
    const diet::ArgDesc back = diet::ArgDesc::deserialize(r);
    EXPECT_EQ(back.rows, rows);
    EXPECT_EQ(back.cols, cols);

    // ...but the derived quantities are clamped, never wrapped.
    EXPECT_LE(back.element_count(), kMaxElements)
        << "rows=" << rows << " cols=" << cols;
    EXPECT_GE(back.payload_bytes(), 0)
        << "rows=" << rows << " cols=" << cols;
  }

  // Sane shapes stay exact, and only the hostile ones trip the invariant.
  diet::ArgDesc sane;
  sane.type = diet::DataType::kMatrix;
  sane.base = diet::BaseType::kDouble;
  sane.rows = 1000;
  sane.cols = 1000;
  EXPECT_EQ(sane.element_count(), 1000u * 1000u);
  EXPECT_EQ(sane.payload_bytes(), 8'000'000);

  if constexpr (check::kEnabled) {
    // Every hostile shape above tripped the clamp invariant exactly once
    // (via element_count inside both element_count and payload_bytes calls,
    // so >= the number of hostile shapes); the sane shape added none.
    EXPECT_GE(check::failure_count(), std::size(hostile));
  }
  check::reset_failure_count();
}

// ---------- Status error paths ----------

TEST(StatusErrorPaths, RegistryReportsTypedErrors) {
  naming::Registry registry;
  ASSERT_TRUE(registry.bind("ma", 1).is_ok());

  const gc::Status dup = registry.bind("ma", 2);
  ASSERT_FALSE(dup.is_ok());
  EXPECT_EQ(dup.code(), ErrorCode::kAlreadyExists);
  EXPECT_NE(dup.to_string().find("ma"), std::string::npos);

  const gc::Status missing = registry.unbind("ghost");
  ASSERT_FALSE(missing.is_ok());
  EXPECT_EQ(missing.code(), ErrorCode::kNotFound);

  const auto resolved = registry.resolve("ghost");
  ASSERT_FALSE(resolved.is_ok());
  EXPECT_EQ(resolved.status().code(), ErrorCode::kNotFound);

  // rebind never fails; the original binding is replaced.
  registry.rebind("ma", 3);
  EXPECT_EQ(registry.resolve("ma").value(), 3u);
}

TEST(StatusErrorPaths, FortranWriterReportsIoErrors) {
  io::FortranWriter writer("/nonexistent-dir/deep/x.bin");
  const std::vector<std::uint8_t> payload = {1, 2, 3};
  const gc::Status status = writer.record(payload);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kIoError);
}

TEST(StatusErrorPaths, FortranReaderReportsMissingFile) {
  io::FortranReader reader("/nonexistent-dir/deep/x.bin");
  const auto record = reader.record();
  ASSERT_FALSE(record.is_ok());
  EXPECT_EQ(record.status().code(), ErrorCode::kIoError);
}

TEST(StatusErrorPaths, LoadersReportMissingFiles) {
  const auto namelist = io::Namelist::load("/nonexistent-dir/x.nml");
  ASSERT_FALSE(namelist.is_ok());
  EXPECT_FALSE(namelist.status().is_ok());

  const auto tar = io::TarReader::load("/nonexistent-dir/x.tar");
  ASSERT_FALSE(tar.is_ok());
  EXPECT_FALSE(tar.status().is_ok());

  const auto config = diet::Config::load("/nonexistent-dir/x.cfg");
  ASSERT_FALSE(config.is_ok());
  EXPECT_FALSE(config.status().is_ok());
}

TEST(StatusErrorPaths, StatusCarriesCodeAndMessage) {
  const gc::Status ok = Status::ok();
  EXPECT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.code(), ErrorCode::kOk);

  const gc::Status err = make_error(ErrorCode::kOutOfRange, "index 9 of 3");
  EXPECT_FALSE(err.is_ok());
  EXPECT_EQ(err.code(), ErrorCode::kOutOfRange);
  EXPECT_NE(err.to_string().find("index 9 of 3"), std::string::npos);

  const Result<int> bad =
      make_error(ErrorCode::kInvalidArgument, "not a number");
  ASSERT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(bad.value_or(-1), -1);

  const Result<int> good = 42;
  ASSERT_TRUE(good.is_ok());
  EXPECT_EQ(good.value(), 42);
}

}  // namespace
}  // namespace gc
