// Figure 5: "Finding time and latency".
//
// Paper shape: the finding time is "low and nearly constant (49.8ms on
// average)"; the latency ("time needed to send the data from the client to
// the chosen SED, plus the time needed to initiate the service" — queue
// wait included) "grows rapidly" because 100 simultaneous requests
// serialize on 11 SEDs; the average service initiation is 20.8ms on the
// first executions; total middleware overhead ~7s for 101 simulations.
//
// Output: per-request series (request index, finding time, latency) — the
// two curves of the figure — plus the summary statistics.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "obs/session.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "workflow/campaign.hpp"

int main(int argc, char** argv) {
  gc::set_default_log_level(gc::LogLevel::kWarn);
  const gc::CliArgs args(argc, argv);
  const gc::obs::Session obs = gc::obs::Session::from_cli(args);

  gc::workflow::CampaignConfig config;
  const gc::workflow::CampaignResult result =
      gc::workflow::run_grid5000_campaign(config);

  std::printf("Fig5 series: request,finding_ms,latency_s (latency plotted in "
              "log scale in the paper)\n");
  std::vector<double> latencies;
  gc::RunningStats finding;
  for (std::size_t i = 0; i < result.zoom2.size(); ++i) {
    const auto& record = result.zoom2[i];
    const double find_ms = record.finding_time() * 1e3;
    const double latency_s = record.latency();
    finding.add(find_ms);
    latencies.push_back(latency_s);
    std::printf("%zu,%.2f,%.4f\n", i + 1, find_ms, latency_s);
  }

  // First-wave latencies: the requests served immediately (queue empty),
  // whose latency is data transfer + service initiation only — the
  // paper's "average time for initiating the service is 20.8ms (taken on
  // the 12 firsts executions)".
  std::vector<double> sorted = latencies;
  std::sort(sorted.begin(), sorted.end());
  gc::RunningStats first_wave;
  for (std::size_t i = 0; i < sorted.size() && i < 11; ++i) {
    first_wave.add(sorted[i]);
  }

  std::printf("\nsummary (paper -> reproduced)\n");
  std::printf("finding time mean: 49.8ms -> %.1fms (min %.1f max %.1f)\n",
              finding.mean(), finding.min(), finding.max());
  std::printf("near-constant finding: stddev %.1fms (%.0f%% of mean)\n",
              finding.stddev(), 100.0 * finding.stddev() / finding.mean());
  std::printf("first-wave latency (xfer+init): ~20.8ms+xfer -> %s mean\n",
              gc::format_duration(first_wave.mean()).c_str());
  std::printf("max latency (queue wait dominated): %s\n",
              gc::format_duration(sorted.back()).c_str());
  std::printf("latency growth (max/min): %.0fx (log-scale curve)\n",
              sorted.back() / std::max(sorted.front(), 1e-9));
  std::printf("total overhead: ~7s -> %s\n",
              gc::format_duration(result.overhead_total).c_str());
  return 0;
}
