// Network contention ablation over the zoom campaign.
//
// Exercises the contention-aware network & disk model end to end: bulk
// transfers become fluid flows fair-sharing link capacity (net::FlowModel)
// instead of being priced on an idle network, and the dtm pull path runs
// the MPWide-style WAN engine (striped parallel streams).
//
// Three tables into BENCH_network.json:
//  - compat: contention off — the paper's closed-form costs. The science
//    digest is recorded so ci/check.sh can pin it against the pre-flow
//    baseline (the flow model must be invisible when disabled).
//  - congested: the RENATER backbone narrowed to a sliver while every
//    request ships a full IC archive. Volatile mode drags every archive
//    across the congested WAN; persistent keeps bytes where they landed;
//    persistent + mct-data additionally steers repeat work toward replica
//    holders. The makespan separation is the win congestion amplifies.
//  - striping: a lossy long-fat WAN (per-stream TCP ceiling well below
//    the link) where a single-stream pull crawls at the ceiling and
//    MPWide-style striping restores the link rate.
//
// Usage:
//   bench_network                  # full table, exit 0
//   bench_network --quick          # CI smoke sizes
//   bench_network --quick --floor  # exit 1 unless the separation >= 20%
//                                  # and striping beats single-stream
#include <cstdio>
#include <fstream>
#include <string>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/units.hpp"
#include "workflow/campaign.hpp"

namespace {

struct Measure {
  double makespan = 0.0;
  double mean_latency = 0.0;
  std::int64_t wan_bytes = 0;
  std::int64_t total_bytes = 0;
  std::uint64_t flows = 0;
  std::uint64_t peak_flows = 0;
  std::uint64_t failed = 0;
  std::uint64_t digest = 0;
};

Measure run(const gc::workflow::CampaignConfig& config) {
  const gc::workflow::CampaignResult result =
      gc::workflow::run_grid5000_campaign(config);
  Measure m;
  m.makespan = result.makespan;
  for (const auto& record : result.zoom2) m.mean_latency += record.latency();
  if (!result.zoom2.empty()) {
    m.mean_latency /= static_cast<double>(result.zoom2.size());
  }
  m.wan_bytes = result.wan_bytes;
  m.total_bytes = result.network_bytes;
  m.flows = result.flows_completed;
  m.peak_flows = result.peak_active_flows;
  m.failed = result.failed_calls;
  m.digest = result.science_digest;
  return m;
}

void print_row(const char* label, const Measure& m) {
  std::printf("%-26s %10s %14s %8llu %6llu %10s\n", label,
              gc::format_duration(m.makespan).c_str(),
              gc::format_bytes(m.wan_bytes).c_str(),
              static_cast<unsigned long long>(m.flows),
              static_cast<unsigned long long>(m.peak_flows),
              gc::format_duration(m.mean_latency).c_str());
}

void json_row(std::ofstream& json, const char* table, const char* label,
              const Measure& m, bool last) {
  char entry[512];
  std::snprintf(
      entry, sizeof entry,
      "  {\"table\": \"%s\", \"mode\": \"%s\", \"makespan_s\": %.3f, "
      "\"mean_latency_s\": %.3f, \"wan_bytes\": %lld, "
      "\"total_bytes\": %lld, \"flows_completed\": %llu, "
      "\"peak_active_flows\": %llu, \"failed_calls\": %llu, "
      "\"science_digest\": \"%016llx\"}%s\n",
      table, label, m.makespan, m.mean_latency,
      static_cast<long long>(m.wan_bytes),
      static_cast<long long>(m.total_bytes),
      static_cast<unsigned long long>(m.flows),
      static_cast<unsigned long long>(m.peak_flows),
      static_cast<unsigned long long>(m.failed),
      static_cast<unsigned long long>(m.digest), last ? "" : ",");
  json << entry;
}

}  // namespace

int main(int argc, char** argv) {
  gc::set_default_log_level(gc::LogLevel::kWarn);
  const gc::CliArgs args(argc, argv);
  const bool quick = args.has("quick");
  const bool floor = args.has("floor");
  const int sub_sims = static_cast<int>(args.get_int("subsims", 22));
  const std::string json_path = args.get("json", "BENCH_network.json");

  // The congested regime: every request ships a full IC archive while the
  // backbone is narrowed to 5% — RENATER on a bad day. The striping rows
  // instead keep the link wide but cap each stream at a lossy-TCP
  // ceiling, the regime MPWide's parallel streams were built for.
  const std::int64_t archive_bytes =
      args.get_int("archive-mib", 2048) * (std::int64_t{1} << 20);
  const double wan_scale = args.get_double("wan-scale", 0.02);
  const double per_stream_bps = 4e6;
  const int replicas = static_cast<int>(args.get_int("replicas", 2));
  (void)quick;  // the DES runs the full table in well under a second

  auto base = [&](gc::diet::Persistence mode, const char* policy,
                  int replicas) {
    gc::workflow::CampaignConfig config;
    config.sub_simulations = sub_sims;
    config.policy = policy;
    config.input_mode = mode;
    config.services.output_mode = mode;
    config.replicas = replicas;
    config.shipped_input_bytes = archive_bytes;
    config.contention = true;
    config.wan_bandwidth_scale = wan_scale;
    // Half resolution: the zoom computes shrink ~8x, putting the campaign
    // in the transfer-bound regime this ablation is about (the compat row
    // keeps the stock paper settings).
    config.resolution = 64;
    // A congested pull of the archive takes far longer than the stock
    // 10 s timeout; without this every pull degrades to a full resend.
    config.sed_tuning.data_fetch_timeout_s = 4.0 * 3600.0;
    return config;
  };

  std::ofstream json(json_path, std::ios::trunc);
  json << "[\n";

  std::printf("bench_network: %d zoom2 requests, 11 SEDs, %s IC archive\n",
              sub_sims, gc::format_bytes(archive_bytes).c_str());
  std::printf("%-26s %10s %14s %8s %6s %10s\n", "mode", "makespan",
              "WAN bytes", "flows", "peak", "mean lat");

  // -- compat: contention off, stock campaign (digest pinned by CI) -----
  gc::workflow::CampaignConfig compat_config;
  compat_config.sub_simulations = sub_sims;
  const Measure compat = run(compat_config);
  print_row("compat (contention off)", compat);
  json_row(json, "compat", "default", compat, false);

  // -- congested: volatile vs persistent vs persistent+mct-data ---------
  const Measure congested_volatile =
      run(base(gc::diet::Persistence::kVolatile, "default", 1));
  print_row("congested volatile", congested_volatile);
  json_row(json, "congested", "volatile", congested_volatile, false);

  const Measure congested_persistent =
      run(base(gc::diet::Persistence::kPersistent, "default", 1));
  print_row("congested persistent", congested_persistent);
  json_row(json, "congested", "persistent", congested_persistent, false);

  const Measure congested_mct =
      run(base(gc::diet::Persistence::kPersistent, "mct-data", replicas));
  print_row("congested persistent+mct", congested_mct);
  json_row(json, "congested", "persistent+mct-data", congested_mct, false);

  const double separation =
      congested_volatile.makespan > 0.0
          ? (congested_volatile.makespan - congested_mct.makespan) /
                congested_volatile.makespan
          : 0.0;

  // -- striping: 1 vs 4 streams on a per-stream-capped (lossy) WAN ------
  // Persistent + default policy: repeat requests land away from the
  // holder, so every one pulls the archive through the WAN engine.
  Measure striped[2];
  const int stream_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    gc::workflow::CampaignConfig config =
        base(gc::diet::Persistence::kPersistent, "default", 1);
    config.wan_bandwidth_scale = 1.0;
    config.wan_per_stream_bps = per_stream_bps;
    config.wan_streams = stream_counts[i];
    striped[i] = run(config);
    const char* label = i == 0 ? "lossy WAN, 1 stream" : "lossy WAN, 4 streams";
    print_row(label, striped[i]);
    json_row(json, "striping", i == 0 ? "1-stream" : "4-stream", striped[i],
             false);
  }
  const double striping_gain =
      striped[1].makespan > 0.0 ? striped[0].makespan / striped[1].makespan
                                : 0.0;

  char summary[256];
  std::snprintf(summary, sizeof summary,
                "  {\"table\": \"summary\", \"separation\": %.4f, "
                "\"striping_gain\": %.4f, \"sub_simulations\": %d, "
                "\"archive_bytes\": %lld}\n",
                separation, striping_gain, sub_sims,
                static_cast<long long>(archive_bytes));
  json << summary << "]\n";

  std::printf(
      "\nshape: congestion amplifies the data-locality win — volatile "
      "drags every archive across the narrowed WAN while mct-data "
      "schedules onto replica holders (separation %.1f%%). On the lossy "
      "per-stream-capped WAN, striping restores the link rate "
      "(%.2fx faster).\n",
      separation * 100.0, striping_gain);
  std::printf("wrote %s\n", json_path.c_str());

  if (floor) {
    bool ok = true;
    if (separation < 0.20) {
      std::printf("FLOOR FAIL: volatile vs persistent+mct-data makespan "
                  "separation %.1f%% < 20%%\n",
                  separation * 100.0);
      ok = false;
    }
    if (striping_gain < 1.05) {
      std::printf("FLOOR FAIL: 4-stream striping gain %.2fx < 1.05x on the "
                  "lossy WAN\n",
                  striping_gain);
      ok = false;
    }
    if (congested_volatile.failed + congested_persistent.failed +
            congested_mct.failed + striped[0].failed + striped[1].failed >
        0) {
      std::printf("FLOOR FAIL: a congested campaign lost calls\n");
      ok = false;
    }
    if (congested_mct.flows == 0) {
      std::printf("FLOOR FAIL: contention on but no flows ran\n");
      ok = false;
    }
    if (!ok) return 1;
  }
  return 0;
}
