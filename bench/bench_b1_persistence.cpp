// B1 — persistent data management ablation.
//
// The paper's deployment generates initial conditions on the server side,
// so each request ships only a ~4 KiB namelist. An alternative deployment
// — natural when GRAFIC is licensed/pinned to the client's site — ships
// the pre-generated multi-level IC archive (~256 MiB for a 128^3 zoom
// set) with every request. DIET's persistence modes exist for exactly
// this case: with DIET_PERSISTENT, each SED receives the archive once and
// later requests carry an id-only reference.
//
// Three deployments compared: tiny volatile input (the paper), big
// volatile input (naive shipping), big persistent input (DTM).
#include <cstdio>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/units.hpp"
#include "obs/session.hpp"
#include "workflow/campaign.hpp"

namespace {

struct Row {
  const char* label;
  std::int64_t input_bytes;
  gc::diet::Persistence mode;
};

}  // namespace

int main(int argc, char** argv) {
  gc::set_default_log_level(gc::LogLevel::kWarn);
  const gc::CliArgs args(argc, argv);
  const gc::obs::Session obs = gc::obs::Session::from_cli(args);

  const Row rows[] = {
      {"namelist, volatile", 4096, gc::diet::Persistence::kVolatile},
      {"256MiB ICs, volatile", 256LL << 20,
       gc::diet::Persistence::kVolatile},
      {"256MiB ICs, persistent", 256LL << 20,
       gc::diet::Persistence::kPersistent},
  };

  std::printf("B1: input-data persistence (100 zoom2 requests, 11 SEDs)\n");
  std::printf("%-24s %14s %12s %16s %14s\n", "input", "wire total",
              "messages", "makespan", "1st-wave lat");

  for (const Row& row : rows) {
    gc::workflow::CampaignConfig config;
    config.shipped_input_bytes = row.input_bytes;
    config.input_mode = row.mode;
    const gc::workflow::CampaignResult result =
        gc::workflow::run_grid5000_campaign(config);

    // First-wave latency = min over requests (no queue wait): shows the
    // transfer-time cost of shipping the input.
    double min_latency = 1e18;
    for (const auto& record : result.zoom2) {
      min_latency = std::min(min_latency, record.latency());
    }
    std::printf("%-24s %14s %12llu %16s %14s\n", row.label,
                gc::format_bytes(result.network_bytes).c_str(),
                static_cast<unsigned long long>(result.network_messages),
                gc::format_duration(result.makespan).c_str(),
                gc::format_duration(min_latency).c_str());
  }

  std::printf("\nshape: naive shipping moves ~100x the input volume and "
              "adds the 2s-per-256MiB transfer to every request's latency; "
              "persistence pays that once per SED (11x) and the rest of "
              "the campaign ships ids. Result tarballs (100 x 200 MiB) "
              "dominate the remaining traffic in all three rows.\n");
  return 0;
}
