// Figure 4 (right): "the execution time of the 100 sub-simulations for
// each SED".
//
// Paper shape: request counts are equal (9, one SED 10) but per-SED busy
// times differ with cluster CPU power — about 15h on Toulouse (Opteron
// 246) down to about 10h30 on Nancy (Opteron 275); "Consequently, the
// schedule is not optimal. The equal distribution of the requests does not
// take into account the machines processing power."
#include <cstdio>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/units.hpp"
#include "obs/session.hpp"
#include "workflow/campaign.hpp"

int main(int argc, char** argv) {
  gc::set_default_log_level(gc::LogLevel::kWarn);
  const gc::CliArgs args(argc, argv);
  const gc::obs::Session obs = gc::obs::Session::from_cli(args);

  gc::workflow::CampaignConfig config;
  const gc::workflow::CampaignResult result =
      gc::workflow::run_grid5000_campaign(config);

  std::printf("Fig4-right: per-SED execution time of the %d sub-simulations\n",
              config.sub_simulations);
  std::printf("%-22s %-12s %-10s %6s %9s %16s  %s\n", "SED", "cluster",
              "site", "power", "requests", "busy time", "bar");
  double busy_max = 0.0;
  for (const auto& sed : result.seds) {
    busy_max = std::max(busy_max, sed.busy_seconds);
  }
  for (const auto& sed : result.seds) {
    const int bar = static_cast<int>(40.0 * sed.busy_seconds / busy_max);
    std::printf("%-22s %-12s %-10s %6.2f %9llu %16s  %.*s\n",
                sed.name.c_str(), sed.cluster.c_str(), sed.site.c_str(),
                sed.machine_power,
                static_cast<unsigned long long>(sed.requests),
                gc::format_duration(sed.busy_seconds).c_str(), bar,
                "########################################");
  }

  // The paper's two anchors.
  double toulouse = 0.0;
  double nancy = 0.0;
  for (const auto& sed : result.seds) {
    if (sed.site == "toulouse") toulouse = std::max(toulouse, sed.busy_seconds);
    if (sed.site == "nancy") nancy = std::max(nancy, sed.busy_seconds);
  }
  std::printf("\npaper: ~15h for Toulouse, ~10h30 for Nancy\n");
  std::printf("ours : %s for Toulouse, %s for Nancy (ratio %.2f)\n",
              gc::format_duration(toulouse).c_str(),
              gc::format_duration(nancy).c_str(), toulouse / nancy);
  return 0;
}
