// B2 — data locality ablation over the 22-sub-sim zoom campaign.
//
// Sweeps the data-management modes the DTM subsystem adds on top of the
// paper's deployment: everything volatile (the paper's Section 4.2.3
// setting, every 200 MiB result tarball ships home across RENATER),
// persistent outputs (results stay on the SED that produced them, only
// ids travel), and persistent + write-replication scheduled with the
// locality-aware mct-data policy (the estimation vector's bytes-to-move
// term steers zoom2 calls toward replica holders).
//
// Emits BENCH_datalocality.json: modeled WAN (inter-site) bytes, total
// wire bytes, mean zoom2 latency, and makespan per mode, so the WAN
// saving is machine-checkable across PRs.
#include <cstdio>
#include <fstream>
#include <string>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/units.hpp"
#include "obs/session.hpp"
#include "workflow/campaign.hpp"

namespace {

struct Row {
  const char* label;
  gc::diet::Persistence mode;  ///< inputs and service outputs
  int replicas;
  const char* policy;
};

}  // namespace

int main(int argc, char** argv) {
  gc::set_default_log_level(gc::LogLevel::kWarn);
  const gc::CliArgs args(argc, argv);
  const gc::obs::Session obs = gc::obs::Session::from_cli(args);
  const int sub_sims = static_cast<int>(args.get_int("subsims", 22));
  const std::string json_path =
      args.get("json", "BENCH_datalocality.json");

  const Row rows[] = {
      {"volatile", gc::diet::Persistence::kVolatile, 1, "default"},
      {"persistent", gc::diet::Persistence::kPersistent, 1, "default"},
      {"persistent+mct-data", gc::diet::Persistence::kPersistent, 2,
       "mct-data"},
  };

  std::printf("B2: data locality (%d zoom2 requests, 11 SEDs)\n", sub_sims);
  std::printf("%-22s %10s %14s %14s %12s %10s\n", "mode", "policy",
              "WAN bytes", "wire total", "mean lat", "makespan");

  std::ofstream json(json_path, std::ios::trunc);
  json << "[\n";

  std::int64_t volatile_wan = 0;
  std::int64_t best_wan = 0;
  for (std::size_t i = 0; i < std::size(rows); ++i) {
    const Row& row = rows[i];
    gc::workflow::CampaignConfig config;
    config.sub_simulations = sub_sims;
    config.policy = row.policy;
    config.input_mode = row.mode;
    config.services.output_mode = row.mode;
    config.replicas = row.replicas;
    const gc::workflow::CampaignResult result =
        gc::workflow::run_grid5000_campaign(config);

    double mean_latency = 0.0;
    for (const auto& record : result.zoom2) {
      mean_latency += record.latency();
    }
    if (!result.zoom2.empty()) {
      mean_latency /= static_cast<double>(result.zoom2.size());
    }

    if (i == 0) volatile_wan = result.wan_bytes;
    best_wan = result.wan_bytes;

    std::printf("%-22s %10s %14s %14s %12s %10s\n", row.label, row.policy,
                gc::format_bytes(result.wan_bytes).c_str(),
                gc::format_bytes(result.network_bytes).c_str(),
                gc::format_duration(mean_latency).c_str(),
                gc::format_duration(result.makespan).c_str());

    char entry[512];
    std::snprintf(entry, sizeof entry,
                  "  {\"mode\": \"%s\", \"policy\": \"%s\", "
                  "\"replicas\": %d, \"sub_simulations\": %d, "
                  "\"wan_bytes\": %lld, \"total_bytes\": %lld, "
                  "\"mean_latency_s\": %.3f, \"makespan_s\": %.3f, "
                  "\"failed_calls\": %llu}%s\n",
                  row.label, row.policy, row.replicas, sub_sims,
                  static_cast<long long>(result.wan_bytes),
                  static_cast<long long>(result.network_bytes), mean_latency,
                  result.makespan,
                  static_cast<unsigned long long>(result.failed_calls),
                  i + 1 < std::size(rows) ? "," : "");
    json << entry;
  }
  json << "]\n";

  std::printf("\nshape: volatile ships every result tarball across RENATER; "
              "persistent outputs stay where they were produced, so WAN "
              "traffic collapses to ids and namelists. mct-data additionally "
              "steers repeat work toward replica holders.\n");
  std::printf("wrote %s\n", json_path.c_str());

  if (best_wan >= volatile_wan) {
    std::printf("WARNING: persistent modes did not reduce WAN bytes\n");
    return 1;
  }
  return 0;
}
