// T1 — the in-text results of Section 5.2.
//
// Paper:   total experiment        16h 18min 43s
//          first part              1h 15min 11s
//          second part (average)   1h 24min 01s
//          sequential estimate     > 141 h
//          overhead per simulation ~ 70.6 ms, ~7 s total
//
// This binary replays the campaign on the modeled Grid'5000 deployment
// and prints the same rows (plus the derived speedup).
#include <cstdio>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/units.hpp"
#include "obs/session.hpp"
#include "workflow/campaign.hpp"

int main(int argc, char** argv) {
  gc::set_default_log_level(gc::LogLevel::kWarn);
  const gc::CliArgs args(argc, argv);
  const gc::obs::Session obs = gc::obs::Session::from_cli(args);

  gc::workflow::CampaignConfig config;
  const gc::workflow::CampaignResult result =
      gc::workflow::run_grid5000_campaign(config);

  std::printf("T1: Section 5.2 headline results (paper vs reproduced)\n");
  std::printf("%-28s %18s %18s\n", "metric", "paper", "reproduced");
  std::printf("%-28s %18s %18s\n", "total experiment", "16h 18min 43s",
              gc::format_duration(result.makespan).c_str());
  std::printf("%-28s %18s %18s\n", "first part", "1h 15min 11s",
              gc::format_duration(result.part1_duration).c_str());
  std::printf("%-28s %18s %18s\n", "second part (mean)", "1h 24min 01s",
              gc::format_duration(result.part2_mean_exec).c_str());
  std::printf("%-28s %18s %18s\n", "sequential estimate", "> 141h",
              gc::format_duration(result.sequential_estimate).c_str());
  const double speedup = result.sequential_estimate / result.makespan;
  std::printf("%-28s %18s %17.2fx\n", "speedup vs sequential", "~8.7x",
              speedup);
  std::printf("%-28s %18s %18s\n", "mean finding time", "49.8ms",
              gc::format_duration(result.finding_mean).c_str());
  std::printf("%-28s %18s %18s\n", "total DIET overhead", "~7s",
              gc::format_duration(result.overhead_total).c_str());
  std::printf("%-28s %18s %18llu\n", "failed calls", "0",
              static_cast<unsigned long long>(result.failed_calls));

  // Request distribution (the "9 requests each, one got 10" sentence).
  std::printf("\nrequest distribution over the %zu SEDs:", result.seds.size());
  for (const auto& sed : result.seds) {
    std::printf(" %llu", static_cast<unsigned long long>(sed.requests));
  }
  std::printf("\n");
  return 0;
}
