// A1 — the paper's improvement claim, quantified.
//
// "Consequently, the schedule is not optimal. [...] A better makespan
// could be attained by writing a plug-in scheduler[2]." (Section 5.2.)
//
// This ablation runs the identical campaign under each scheduling policy:
//   default : what the paper deployed (even request spread, power-blind)
//   mct     : plug-in Minimum-Completion-Time using the per-service
//             estimator (what ref [2] proposes)
//   fastest : always the most powerful SED (degenerates to queueing)
//   random  : uniform choice
// and reports makespan, per-SED busy spread, and speedup over default.
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/units.hpp"
#include "obs/session.hpp"
#include "workflow/campaign.hpp"

int main(int argc, char** argv) {
  gc::set_default_log_level(gc::LogLevel::kWarn);
  const gc::CliArgs args(argc, argv);
  const gc::obs::Session obs = gc::obs::Session::from_cli(args);

  std::printf("A1: scheduling-policy ablation (100 zoom2 on 11 SEDs)\n");
  std::printf("%-10s %16s %16s %16s %10s\n", "policy", "makespan",
              "busiest SED", "idlest SED", "vs default");

  double default_makespan = 0.0;
  for (const char* policy : {"default", "mct", "fastest", "random"}) {
    gc::workflow::CampaignConfig config;
    config.policy = policy;
    const gc::workflow::CampaignResult result =
        gc::workflow::run_grid5000_campaign(config);
    double busy_max = 0.0;
    double busy_min = 1e18;
    for (const auto& sed : result.seds) {
      busy_max = std::max(busy_max, sed.busy_seconds);
      busy_min = std::min(busy_min, sed.busy_seconds);
    }
    if (std::string(policy) == "default") default_makespan = result.makespan;
    std::printf("%-10s %16s %16s %16s %9.1f%%\n", policy,
                gc::format_duration(result.makespan).c_str(),
                gc::format_duration(busy_max).c_str(),
                gc::format_duration(busy_min).c_str(),
                100.0 * (default_makespan - result.makespan) /
                    default_makespan);
  }
  std::printf("\npaper: the deployed default is power-blind; an MCT plug-in "
              "scheduler should cut the makespan.\n");
  return 0;
}
