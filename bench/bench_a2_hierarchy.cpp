// A2 — agent-hierarchy scaling ablation.
//
// Section 2.1: "For performance reasons, the hierarchy of agents should be
// deployed depending on the underlying network topology." This bench
// quantifies that advice on the modeled platform: mean finding time as a
// function of (a) the number of SEDs per cluster and (b) a flat deployment
// (every SED directly under the MA, no LAs) versus the paper's one-LA-per-
// cluster tree.
#include <cstdio>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "obs/session.hpp"
#include "common/stats.hpp"
#include "des/engine.hpp"
#include "diet/client.hpp"
#include "diet/deployment.hpp"
#include "naming/registry.hpp"
#include "net/simenv.hpp"
#include "workflow/campaign.hpp"

namespace {

struct Sample {
  double finding_ms_mean;
  double finding_ms_max;
};

/// Runs `requests` concurrent scheduling rounds (no data phase measured;
/// jobs are near-instant) and reports finding-time stats.
Sample measure(bool flat, int seds_per_cluster, int requests) {
  using namespace gc;
  platform::G5kDeployment g5k = platform::make_grid5000(4);

  des::Engine engine;
  net::SimEnv env(engine, g5k.platform);
  naming::Registry registry;

  workflow::ServiceOptions service_options;
  // Tiny jobs: this bench isolates the scheduling path.
  service_options.cost_model = platform::RamsesCostModel(
      platform::RamsesCostModel::Tuning{1.0, 1.0, 0.0, 0.05, 16, 0.0});
  diet::ServiceTable services;
  GC_CHECK(workflow::register_services(services, service_options).is_ok());

  workflow::CampaignConfig config;
  diet::DeploymentSpec spec =
      workflow::deployment_spec_from_g5k(g5k, config);

  // Vary SEDs per cluster by replicating placements on the same frontals.
  if (seds_per_cluster > 2) {
    std::vector<diet::DeploymentSpec::SedSpec> extra;
    for (const auto& la : spec.las) {
      const auto base =
          spec.seds[static_cast<std::size_t>(la.sed_indexes.front())];
      for (int i = 0; i < seds_per_cluster - 2; ++i) {
        auto copy = base;
        copy.name += "-x" + std::to_string(i);
        extra.push_back(copy);
      }
    }
    for (auto& la : spec.las) {
      for (int i = 0; i < seds_per_cluster - 2; ++i) {
        la.sed_indexes.push_back(static_cast<int>(spec.seds.size()));
        spec.seds.push_back(extra.front());
        extra.erase(extra.begin());
      }
    }
  }

  if (flat) {
    // Every SED directly under the MA: one LA-less hierarchy (the MA
    // still fans out, but across the WAN to every SED frontal).
    diet::DeploymentSpec::LaSpec everything;
    everything.name = "LA-flat";
    everything.node = spec.ma_node;  // co-located with the MA
    for (std::size_t i = 0; i < spec.seds.size(); ++i) {
      everything.sed_indexes.push_back(static_cast<int>(i));
    }
    spec.las.clear();
    spec.las.push_back(std::move(everything));
  }

  diet::Deployment deployment(env, registry, services, spec);
  diet::Client client("client");
  env.attach(client, g5k.client_node);
  client.connect(registry.resolve("MA1").value());
  engine.run_until(engine.now() + 2.0);

  int completed = 0;
  for (int i = 0; i < requests; ++i) {
    client.call_async(
        workflow::make_zoom1_profile("/tmp/none.nml", 1024, 16, 100),
        [&completed](const gc::Status&, diet::Profile&) { ++completed; });
  }
  engine.run();

  Sample sample{0.0, 0.0};
  RunningStats stats;
  for (const auto& record : client.records()) {
    stats.add(record.finding_time() * 1e3);
  }
  sample.finding_ms_mean = stats.mean();
  sample.finding_ms_max = stats.max();
  return sample;
}

}  // namespace

int main(int argc, char** argv) {
  gc::set_default_log_level(gc::LogLevel::kWarn);
  const gc::CliArgs args(argc, argv);
  const gc::obs::Session obs = gc::obs::Session::from_cli(args);

  std::printf("A2: hierarchy ablation — finding time vs deployment shape\n");
  std::printf("%-28s %8s %14s %14s\n", "deployment", "#SEDs", "find mean",
              "find max");
  for (const int per_cluster : {2, 4, 8, 16}) {
    for (const bool flat : {false, true}) {
      const int nseds = 6 * per_cluster - 1;  // capricorne keeps one less
      const Sample s = measure(flat, per_cluster, 100);
      std::printf("%-28s %8d %12.1fms %12.1fms\n",
                  flat ? "flat (all SEDs under MA)" : "per-cluster LAs",
                  nseds, s.finding_ms_mean, s.finding_ms_max);
    }
  }
  std::printf("\nshape: the LA tree keeps the WAN fan-out at one message per"
              " site, so finding time stays near-flat as SEDs grow;\n"
              "the flat deployment pays one WAN round-trip per SED and "
              "degrades with scale.\n");
  return 0;
}
