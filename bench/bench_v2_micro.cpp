// V2 — google-benchmark micro-benchmarks for the hot substrate paths:
// FFT, Hilbert encode/decode, CIC deposit, FoF halo finding, the message
// codec and profile serialization.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "diet/profile.hpp"
#include "halo/halomaker.hpp"
#include "hilbert/hilbert.hpp"
#include "math/fft.hpp"
#include "net/codec.hpp"
#include "ramses/pm.hpp"

namespace {

void BM_Fft1D(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<gc::math::Complex> data(n);
  gc::Rng rng(1);
  for (auto& v : data) v = {rng.normal(), rng.normal()};
  for (auto _ : state) {
    gc::math::fft(data, false);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Fft1D)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_Fft3D(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<gc::math::Complex> data(n * n * n);
  gc::Rng rng(1);
  for (auto& v : data) v = {rng.normal(), 0.0};
  for (auto _ : state) {
    gc::math::fft3(data, n, false);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(n * n * n));
}
BENCHMARK(BM_Fft3D)->Arg(16)->Arg(32)->Arg(64);

void BM_HilbertEncode(benchmark::State& state) {
  gc::Rng rng(2);
  std::uint32_t x = 0;
  for (auto _ : state) {
    x = static_cast<std::uint32_t>(rng.next_u64() & 0x3ff);
    benchmark::DoNotOptimize(gc::hilbert::encode(x, x ^ 0x155, x ^ 0x2aa, 10));
  }
}
BENCHMARK(BM_HilbertEncode);

void BM_HilbertRoundtrip(benchmark::State& state) {
  gc::Rng rng(3);
  for (auto _ : state) {
    const std::uint64_t key = rng.next_u64() % (1ull << 30);
    std::uint32_t x, y, z;
    gc::hilbert::decode(key, 10, x, y, z);
    benchmark::DoNotOptimize(gc::hilbert::encode(x, y, z, 10));
  }
}
BENCHMARK(BM_HilbertRoundtrip);

gc::ramses::ParticleSet random_particles(std::size_t n, std::uint64_t seed) {
  gc::ramses::ParticleSet particles;
  particles.reserve(n);
  gc::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    particles.push_back(rng.uniform(), rng.uniform(), rng.uniform(), 0.0,
                        0.0, 0.0, 1.0 / static_cast<double>(n), i + 1, 0);
  }
  return particles;
}

void BM_CicDeposit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto particles = random_particles(n * n * n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gc::ramses::cic_deposit(particles, static_cast<int>(n)));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(n * n * n));
}
BENCHMARK(BM_CicDeposit)->Arg(16)->Arg(32);

void BM_FofHalos(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  // Clustered distribution: half uniform, half in 8 Gaussian blobs.
  gc::ramses::ParticleSet p = random_particles(n / 2, 5);
  gc::Rng rng(6);
  for (std::size_t i = n / 2; i < n; ++i) {
    const double cx = 0.25 + 0.5 * static_cast<double>(i % 2);
    const double cy = 0.25 + 0.5 * static_cast<double>((i / 2) % 2);
    const double cz = 0.25 + 0.5 * static_cast<double>((i / 4) % 2);
    auto wrap = [](double v) { return v - std::floor(v); };
    p.push_back(wrap(cx + rng.normal(0.0, 0.01)),
                wrap(cy + rng.normal(0.0, 0.01)),
                wrap(cz + rng.normal(0.0, 0.01)), 0.0, 0.0, 0.0,
                1.0 / static_cast<double>(n), i + 1, 0);
  }
  std::vector<double> zeros(p.size(), 0.0);
  gc::halo::ParticleView view{&p.x, &p.y, &p.z, &zeros,
                              &zeros, &zeros, &p.mass, &p.id};
  for (auto _ : state) {
    benchmark::DoNotOptimize(gc::halo::find_halos(view, 1.0, 100.0));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_FofHalos)->Arg(1 << 12)->Arg(1 << 14);

void BM_CodecRoundtrip(benchmark::State& state) {
  for (auto _ : state) {
    gc::net::Writer writer;
    for (int i = 0; i < 64; ++i) {
      writer.u64(static_cast<std::uint64_t>(i));
      writer.f64(i * 0.5);
      writer.str("candidate");
    }
    const gc::net::Bytes bytes = writer.data();
    gc::net::Reader reader(bytes);
    std::uint64_t sum = 0;
    for (int i = 0; i < 64; ++i) {
      sum += reader.u64();
      benchmark::DoNotOptimize(reader.f64());
      benchmark::DoNotOptimize(reader.str());
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_CodecRoundtrip);

void BM_ProfileSerialize(benchmark::State& state) {
  gc::diet::Profile profile("ramsesZoom2", 6, 6, 8);
  profile.arg(0).set_file("/tmp/zoom.nml", gc::diet::Persistence::kVolatile,
                          4096);
  for (int i = 1; i <= 6; ++i) {
    profile.arg(i).set_scalar<std::int32_t>(i, gc::diet::BaseType::kInt,
                                            gc::diet::Persistence::kVolatile);
  }
  for (auto _ : state) {
    gc::net::Writer writer;
    profile.serialize_inputs(writer);
    const gc::net::Bytes bytes = writer.data();
    gc::net::Reader reader(bytes);
    benchmark::DoNotOptimize(
        gc::diet::Profile::deserialize_inputs("ramsesZoom2", 6, 6, 8, reader));
  }
}
BENCHMARK(BM_ProfileSerialize);

}  // namespace

BENCHMARK_MAIN();
