// V2 — google-benchmark micro-benchmarks for the hot substrate paths:
// FFT, Hilbert encode/decode, CIC deposit, FoF halo finding, the message
// codec and profile serialization.
//
// `--parallel_sweep[=path]` skips google-benchmark and instead sweeps
// GC_THREADS over {1, 2, 4} for every pool-backed kernel, verifies the
// results are byte-identical across thread counts, and writes the
// machine-readable BENCH_parallel.json (kernel, n, threads, ms, speedup).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/rng.hpp"
#include "obs/session.hpp"
#include "cosmo/cosmology.hpp"
#include "diet/profile.hpp"
#include "grafic/ic.hpp"
#include "halo/halomaker.hpp"
#include "hilbert/hilbert.hpp"
#include "math/fft.hpp"
#include "net/codec.hpp"
#include "parallel/pool.hpp"
#include "parallel_json.hpp"
#include "ramses/pm.hpp"

namespace {

void BM_Fft1D(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<gc::math::Complex> data(n);
  gc::Rng rng(1);
  for (auto& v : data) v = {rng.normal(), rng.normal()};
  for (auto _ : state) {
    gc::math::fft(data, false);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Fft1D)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_Fft3D(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  gc::parallel::set_thread_count(static_cast<std::size_t>(state.range(1)));
  std::vector<gc::math::Complex> data(n * n * n);
  gc::Rng rng(1);
  for (auto& v : data) v = {rng.normal(), 0.0};
  for (auto _ : state) {
    gc::math::fft3(data, n, false);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(n * n * n));
  gc::parallel::set_thread_count(0);
}
BENCHMARK(BM_Fft3D)
    ->Args({16, 1})
    ->Args({32, 1})
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({64, 4});

void BM_HilbertEncode(benchmark::State& state) {
  gc::Rng rng(2);
  std::uint32_t x = 0;
  for (auto _ : state) {
    x = static_cast<std::uint32_t>(rng.next_u64() & 0x3ff);
    benchmark::DoNotOptimize(gc::hilbert::encode(x, x ^ 0x155, x ^ 0x2aa, 10));
  }
}
BENCHMARK(BM_HilbertEncode);

void BM_HilbertRoundtrip(benchmark::State& state) {
  gc::Rng rng(3);
  for (auto _ : state) {
    const std::uint64_t key = rng.next_u64() % (1ull << 30);
    std::uint32_t x, y, z;
    gc::hilbert::decode(key, 10, x, y, z);
    benchmark::DoNotOptimize(gc::hilbert::encode(x, y, z, 10));
  }
}
BENCHMARK(BM_HilbertRoundtrip);

gc::ramses::ParticleSet random_particles(std::size_t n, std::uint64_t seed) {
  gc::ramses::ParticleSet particles;
  particles.reserve(n);
  gc::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    particles.push_back(rng.uniform(), rng.uniform(), rng.uniform(), 0.0,
                        0.0, 0.0, 1.0 / static_cast<double>(n), i + 1, 0);
  }
  return particles;
}

void BM_CicDeposit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  gc::parallel::set_thread_count(static_cast<std::size_t>(state.range(1)));
  const auto particles = random_particles(n * n * n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gc::ramses::cic_deposit(particles, static_cast<int>(n)));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(n * n * n));
  gc::parallel::set_thread_count(0);
}
BENCHMARK(BM_CicDeposit)->Args({16, 1})->Args({32, 1})->Args({32, 4});

void BM_FofHalos(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  // Clustered distribution: half uniform, half in 8 Gaussian blobs.
  gc::ramses::ParticleSet p = random_particles(n / 2, 5);
  gc::Rng rng(6);
  for (std::size_t i = n / 2; i < n; ++i) {
    const double cx = 0.25 + 0.5 * static_cast<double>(i % 2);
    const double cy = 0.25 + 0.5 * static_cast<double>((i / 2) % 2);
    const double cz = 0.25 + 0.5 * static_cast<double>((i / 4) % 2);
    auto wrap = [](double v) { return v - std::floor(v); };
    p.push_back(wrap(cx + rng.normal(0.0, 0.01)),
                wrap(cy + rng.normal(0.0, 0.01)),
                wrap(cz + rng.normal(0.0, 0.01)), 0.0, 0.0, 0.0,
                1.0 / static_cast<double>(n), i + 1, 0);
  }
  std::vector<double> zeros(p.size(), 0.0);
  gc::halo::ParticleView view{&p.x, &p.y, &p.z, &zeros,
                              &zeros, &zeros, &p.mass, &p.id};
  for (auto _ : state) {
    benchmark::DoNotOptimize(gc::halo::find_halos(view, 1.0, 100.0));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_FofHalos)->Arg(1 << 12)->Arg(1 << 14);

void BM_CodecRoundtrip(benchmark::State& state) {
  for (auto _ : state) {
    gc::net::Writer writer;
    for (int i = 0; i < 64; ++i) {
      writer.u64(static_cast<std::uint64_t>(i));
      writer.f64(i * 0.5);
      writer.str("candidate");
    }
    const gc::net::Bytes bytes = writer.data();
    gc::net::Reader reader(bytes);
    std::uint64_t sum = 0;
    for (int i = 0; i < 64; ++i) {
      sum += reader.u64();
      benchmark::DoNotOptimize(reader.f64());
      benchmark::DoNotOptimize(reader.str());
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_CodecRoundtrip);

void BM_ProfileSerialize(benchmark::State& state) {
  gc::diet::Profile profile("ramsesZoom2", 6, 6, 8);
  profile.arg(0).set_file("/tmp/zoom.nml", gc::diet::Persistence::kVolatile,
                          4096);
  for (int i = 1; i <= 6; ++i) {
    profile.arg(i).set_scalar<std::int32_t>(i, gc::diet::BaseType::kInt,
                                            gc::diet::Persistence::kVolatile);
  }
  for (auto _ : state) {
    gc::net::Writer writer;
    profile.serialize_inputs(writer);
    const gc::net::Bytes bytes = writer.data();
    gc::net::Reader reader(bytes);
    benchmark::DoNotOptimize(
        gc::diet::Profile::deserialize_inputs("ramsesZoom2", 6, 6, 8, reader));
  }
}
BENCHMARK(BM_ProfileSerialize);

// ---------------------------------------------------------------------------
// Thread-count sweep (--parallel_sweep): timings + byte-identity checks for
// every pool-backed kernel, written to BENCH_parallel.json.

/// Best-of-`reps` wall time of fn(), in milliseconds.
template <typename Fn>
double time_ms(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

template <typename T>
bool same_bytes(const std::vector<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

int run_parallel_sweep(const std::string& path) {
  const std::vector<std::size_t> thread_counts = {1, 2, 4};
  std::vector<gc::bench::ParallelEntry> entries;
  bool deterministic = true;

  auto record = [&](const std::string& kernel, long n,
                    const std::vector<double>& ms) {
    for (std::size_t t = 0; t < thread_counts.size(); ++t) {
      entries.push_back({kernel, n, thread_counts[t], ms[t],
                         ms[t] > 0.0 ? ms[0] / ms[t] : 1.0});
      std::printf("%-24s n=%-7ld threads=%zu  %9.2f ms  speedup %.2fx\n",
                  kernel.c_str(), n, thread_counts[t], ms[t],
                  ms[t] > 0.0 ? ms[0] / ms[t] : 1.0);
    }
  };

  // fft3 on a 64^3 grid.
  {
    const std::size_t n = 64;
    std::vector<gc::math::Complex> init(n * n * n);
    gc::Rng rng(1);
    for (auto& v : init) v = {rng.normal(), 0.0};
    std::vector<gc::math::Complex> reference;
    std::vector<double> ms;
    for (const std::size_t t : thread_counts) {
      gc::parallel::set_thread_count(t);
      auto data = init;
      gc::math::fft3(data, n, false);  // warm twiddles + pool
      data = init;
      ms.push_back(time_ms(3, [&] { gc::math::fft3(data, n, false); }));
      auto once = init;
      gc::math::fft3(once, n, false);
      if (t == thread_counts.front()) {
        reference = once;
      } else {
        deterministic &= same_bytes(reference, once);
      }
    }
    record("fft3", 64, ms);
  }

  // CIC deposit: 64^3 particles onto a 64^3 mesh.
  {
    const auto particles = random_particles(64 * 64 * 64, 4);
    std::vector<double> reference;
    std::vector<double> ms;
    for (const std::size_t t : thread_counts) {
      gc::parallel::set_thread_count(t);
      ms.push_back(time_ms(3, [&] {
        benchmark::DoNotOptimize(gc::ramses::cic_deposit(particles, 64));
      }));
      const auto grid = gc::ramses::cic_deposit(particles, 64);
      if (t == thread_counts.front()) {
        reference = grid.raw();
      } else {
        deterministic &= same_bytes(reference, grid.raw());
      }
    }
    record("cic_deposit", 64, ms);
  }

  // Full PM step (deposit + Poisson + forces + kick/drift), 32^3 particles
  // on a 64^3 mesh.
  {
    gc::cosmo::Params params;
    const gc::cosmo::Cosmology cosmology(params);
    const gc::ramses::PmSolver solver(cosmology, {64, params.omega_m});
    const auto init = random_particles(32 * 32 * 32, 7);
    std::vector<double> reference;
    std::vector<double> ms;
    for (const std::size_t t : thread_counts) {
      gc::parallel::set_thread_count(t);
      ms.push_back(time_ms(3, [&] {
        auto p = init;
        solver.step(p, 0.2, 0.01);
        benchmark::DoNotOptimize(p.x.data());
      }));
      auto p = init;
      solver.step(p, 0.2, 0.01);
      if (t == thread_counts.front()) {
        reference = p.x;
      } else {
        deterministic &= same_bytes(reference, p.x);
      }
    }
    record("pm_step", 32, ms);
  }

  // GRAFIC 2LPT second-order displacement on a 32^3 grid.
  {
    const std::size_t n = 32;
    std::vector<float> delta(n * n * n);
    gc::Rng rng(11);
    for (auto& v : delta) v = static_cast<float>(0.1 * rng.normal());
    std::vector<float> reference;
    std::vector<double> ms;
    for (const std::size_t t : thread_counts) {
      gc::parallel::set_thread_count(t);
      ms.push_back(time_ms(3, [&] {
        benchmark::DoNotOptimize(gc::grafic::second_order_displacement(
            delta, static_cast<int>(n), 100.0));
      }));
      const auto psi2 = gc::grafic::second_order_displacement(
          delta, static_cast<int>(n), 100.0);
      if (t == thread_counts.front()) {
        reference = psi2[0];
      } else {
        deterministic &= same_bytes(reference, psi2[0]);
      }
    }
    record("grafic_2lpt", 32, ms);
  }

  // FoF halo finding on the clustered 2^14-particle distribution.
  {
    const std::size_t n = 1 << 14;
    gc::ramses::ParticleSet p = random_particles(n / 2, 5);
    gc::Rng rng(6);
    for (std::size_t i = n / 2; i < n; ++i) {
      const double cx = 0.25 + 0.5 * static_cast<double>(i % 2);
      const double cy = 0.25 + 0.5 * static_cast<double>((i / 2) % 2);
      const double cz = 0.25 + 0.5 * static_cast<double>((i / 4) % 2);
      auto wrap = [](double v) { return v - std::floor(v); };
      p.push_back(wrap(cx + rng.normal(0.0, 0.01)),
                  wrap(cy + rng.normal(0.0, 0.01)),
                  wrap(cz + rng.normal(0.0, 0.01)), 0.0, 0.0, 0.0,
                  1.0 / static_cast<double>(n), i + 1, 0);
    }
    std::vector<double> zeros(p.size(), 0.0);
    gc::halo::ParticleView view{&p.x, &p.y, &p.z, &zeros,
                                &zeros, &zeros, &p.mass, &p.id};
    std::vector<double> reference;  // halo masses, order included
    std::vector<double> ms;
    for (const std::size_t t : thread_counts) {
      gc::parallel::set_thread_count(t);
      ms.push_back(time_ms(3, [&] {
        benchmark::DoNotOptimize(gc::halo::find_halos(view, 1.0, 100.0));
      }));
      const auto catalog = gc::halo::find_halos(view, 1.0, 100.0);
      std::vector<double> masses;
      for (const auto& h : catalog.halos) masses.push_back(h.mass);
      if (t == thread_counts.front()) {
        reference = masses;
      } else {
        deterministic &= same_bytes(reference, masses);
      }
    }
    record("fof", static_cast<long>(n), ms);
  }

  gc::parallel::set_thread_count(0);
  std::printf("byte-identical across thread counts: %s\n",
              deterministic ? "yes" : "NO — DETERMINISM VIOLATION");
  if (!gc::bench::write_parallel_entries(path, entries)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu entries)\n", path.c_str(), entries.size());
  return deterministic ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  // google-benchmark owns the flag parsing here, so observability is wired
  // through the env vars only (GC_TRACE / GC_METRICS).
  const char* trace_env = std::getenv("GC_TRACE");
  const char* metrics_env = std::getenv("GC_METRICS");
  const gc::obs::Session obs(trace_env ? trace_env : "",
                             metrics_env ? metrics_env : "");
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--parallel_sweep", 0) == 0) {
      const std::size_t eq = arg.find('=');
      const std::string path =
          eq == std::string::npos ? "BENCH_parallel.json" : arg.substr(eq + 1);
      return run_parallel_sweep(path);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
