// bench_serving: massive-scale serving throughput on the generated
// fat-tree (ISSUE 9).
//
// Sweeps 1/2/4 MA federations x client counts against one fixed 1024-SED
// topology (16 pods x 4 clusters x 16 SEDs), driving the open-loop
// Poisson plan from src/loadgen. Reported per run:
//
//   requests/s — ok completions per *virtual* second of makespan. The MA
//     reactor CPU is the serving bottleneck, so this is the number that
//     must scale with the MA count. Being virtual, it is bit-reproducible
//     and safe to gate in CI.
//   p50/p99    — end-to-end latency quantiles from the request journal.
//   events/s   — DES events per host second (engine throughput).
//
// The science digest must be identical across the MA sweep at each client
// count (federation changes where requests run, never what they compute);
// the bench fails otherwise, and fails on any failed call.
//
// Output: per-run lines plus --json (default BENCH_serving.json).
// --quick shrinks the fabric for the CI smoke lane; --floor N fails if
// the single-MA requests/s lands below N.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "loadgen/serving.hpp"

int main(int argc, char** argv) {
  gc::set_default_log_level(gc::LogLevel::kWarn);
  const gc::CliArgs args(argc, argv);
  const bool quick = args.has("quick");
  const double floor = args.get_double("floor", 0.0);
  const std::string json_path = args.get("json", "BENCH_serving.json");

  // --trace records the sampled arrival plan (one file per sweep point,
  // suffixed when the sweep has several); --replay drives every run from a
  // recorded trace instead of sampling; --mas pins the MA sweep to one
  // federation size.
  const std::string trace_out = args.get("trace", "");
  const std::string trace_in = args.get("replay", "");

  gc::platform::FatTreeConfig topology;
  std::vector<int> client_counts;
  std::vector<int> ma_counts{1, 2, 4};
  if (args.has("mas")) {
    ma_counts = {static_cast<int>(args.get_int("mas", 1))};
  }
  double arrival_rate = args.get_double("arrival", quick ? 2000.0 : 4000.0);
  if (quick) {
    topology.pods = 4;
    topology.clusters_per_pod = 2;
    topology.seds_per_cluster = 4;
    topology.machines_per_sed = 2;
    client_counts = {static_cast<int>(args.get_int("clients", 200))};
    if (!args.has("mas")) ma_counts = {1, 2};
  } else {
    client_counts = {2500, static_cast<int>(args.get_int("clients", 5000))};
  }

  std::printf("bench_serving (%s): %d SEDs (%d pods x %d x %d), "
              "arrival %.0f req/s\n\n",
              quick ? "quick" : "full",
              topology.pods * topology.clusters_per_pod *
                  topology.seds_per_cluster,
              topology.pods, topology.clusters_per_pod,
              topology.seds_per_cluster, arrival_rate);

  struct Run {
    int mas;
    int clients;
    gc::loadgen::ServingReport report;
  };
  std::vector<Run> runs;
  bool ok = true;
  double single_ma_rate = 0.0;

  for (const int clients : client_counts) {
    std::uint64_t digest = 0;
    bool digest_set = false;
    for (const int mas : ma_counts) {
      gc::loadgen::ServingConfig config;
      config.topology = topology;
      config.mas = mas;
      config.load.clients = clients;
      config.load.requests_per_client = 2;
      config.load.arrival_rate_hz = arrival_rate;
      config.load.seed = 42;
      config.load.trace_path = trace_in;
      // The plan is a pure function of the load spec, so per clients count
      // one recording (taken at the first MA sweep point) covers the row.
      if (!trace_out.empty() && mas == ma_counts.front()) {
        config.trace_out = client_counts.size() == 1
                               ? trace_out
                               : trace_out + "." + std::to_string(clients);
      }
      // The journal at 10^4 requests costs memory but feeds the latency
      // quantiles; keep it on — that is the lane the ISSUE names.
      const gc::loadgen::ServingReport report =
          gc::loadgen::run_serving(config);
      std::printf(
          "mas=%d clients=%5d  %8.0f req/s  p50 %7.3fs  p99 %7.3fs  "
          "%9.0f ev/s  (%zu ok, %zu failed, %llu peer forwards, "
          "%.1fs wall)\n",
          mas, clients, report.requests_per_sec, report.p50_s, report.p99_s,
          report.wall_s > 0.0
              ? static_cast<double>(report.events) / report.wall_s
              : 0.0,
          report.ok, report.failed,
          static_cast<unsigned long long>(report.peer.forwards),
          report.wall_s);
      if (report.failed != 0) {
        std::fprintf(stderr, "FAIL: mas=%d clients=%d had %zu failed calls\n",
                     mas, clients, report.failed);
        ok = false;
      }
      if (!digest_set) {
        digest = report.science_digest;
        digest_set = true;
      } else if (report.science_digest != digest) {
        std::fprintf(stderr,
                     "FAIL: science digest diverged at mas=%d clients=%d "
                     "(%016llx vs %016llx)\n",
                     mas, clients,
                     static_cast<unsigned long long>(report.science_digest),
                     static_cast<unsigned long long>(digest));
        ok = false;
      }
      if (mas == 1) single_ma_rate = report.requests_per_sec;
      runs.push_back({mas, clients, report});
    }
    std::printf("\n");
  }

  std::ofstream json(json_path, std::ios::trunc);
  json << "{\n  \"bench\": \"bench_serving\",\n  \"quick\": "
       << (quick ? "true" : "false") << ",\n  \"sed_count\": "
       << (runs.empty() ? 0 : runs.front().report.sed_count)
       << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    char digest_buf[24];
    std::snprintf(digest_buf, sizeof digest_buf, "%016llx",
                  static_cast<unsigned long long>(r.report.science_digest));
    json << "    {\"mas\": " << r.mas << ", \"clients\": " << r.clients
         << ", \"requests\": " << r.report.arrivals
         << ", \"ok\": " << r.report.ok << ", \"failed\": " << r.report.failed
         << ", \"requests_per_sec\": "
         << static_cast<std::uint64_t>(r.report.requests_per_sec)
         << ", \"p50_s\": " << r.report.p50_s
         << ", \"p99_s\": " << r.report.p99_s << ", \"events\": "
         << r.report.events << ", \"events_per_sec\": "
         << static_cast<std::uint64_t>(
                r.report.wall_s > 0.0
                    ? static_cast<double>(r.report.events) / r.report.wall_s
                    : 0.0)
         << ", \"makespan_s\": " << r.report.makespan_s
         << ", \"peer_forwards\": " << r.report.peer.forwards
         << ", \"peer_replies\": " << r.report.peer.replies
         << ", \"science_digest\": \"" << digest_buf << "\"}"
         << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();
  std::printf("wrote %s\n", json_path.c_str());

  // The floor gates the single-MA baseline; under --mas N>1 there is no
  // such run, so fall back to gating the sweep's (sole) rate instead.
  const double gated_rate =
      single_ma_rate > 0.0 || runs.empty()
          ? single_ma_rate
          : runs.front().report.requests_per_sec;
  if (floor > 0.0 && gated_rate < floor) {
    std::fprintf(stderr, "FAIL: %.0f req/s below floor %.0f req/s\n",
                 gated_rate, floor);
    ok = false;
  }
  return ok ? 0 : 1;
}
