// Figure 4 (left): "Simulation's distribution over the SEDs: the Gantt
// chart" — when each of the 100 sub-simulations ran on which SED.
//
// Output: one ASCII Gantt row per SED plus a machine-readable job list
// (CSV on stdout after the chart) so the figure can be replotted.
#include <algorithm>
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/units.hpp"
#include "obs/session.hpp"
#include "workflow/campaign.hpp"

int main(int argc, char** argv) {
  gc::set_default_log_level(gc::LogLevel::kWarn);
  const gc::CliArgs args(argc, argv);
  const gc::obs::Session obs = gc::obs::Session::from_cli(args);

  gc::workflow::CampaignConfig config;
  const gc::workflow::CampaignResult result =
      gc::workflow::run_grid5000_campaign(config);

  double t_end = 0.0;
  double t_begin = result.zoom1.submitted;
  for (const auto& sed : result.seds) {
    for (const auto& job : sed.jobs) t_end = std::max(t_end, job.finished);
  }
  constexpr int kColumns = 96;
  const double scale = (t_end - t_begin) / kColumns;

  std::printf("Fig4-left: Gantt chart of the %d sub-simulations over %zu "
              "SEDs (one column = %s)\n",
              config.sub_simulations, result.seds.size(),
              gc::format_duration(scale).c_str());
  std::printf("%-22s |%-*s|\n", "SED", kColumns, " time ->");
  for (const auto& sed : result.seds) {
    std::string row(kColumns, '.');
    for (const auto& job : sed.jobs) {
      const int c0 = std::max(
          0, static_cast<int>((job.started - t_begin) / scale));
      const int c1 = std::min(
          kColumns - 1, static_cast<int>((job.finished - t_begin) / scale));
      const char mark = job.service == "ramsesZoom1" ? '1' : '#';
      for (int c = c0; c <= c1; ++c) {
        // Alternate job glyphs so adjacent jobs stay distinguishable.
        row[static_cast<std::size_t>(c)] =
            mark == '1' ? '1' : (job.call_id % 2 == 0 ? '#' : '=');
      }
    }
    std::printf("%-22s |%s|\n", sed.name.c_str(), row.c_str());
  }

  std::printf("\nFig4-left CSV: sed,cluster,site,call_id,service,arrived_s,"
              "started_s,finished_s\n");
  for (const auto& sed : result.seds) {
    for (const auto& job : sed.jobs) {
      std::printf("%s,%s,%s,%llu,%s,%.3f,%.3f,%.3f\n", sed.name.c_str(),
                  sed.cluster.c_str(), sed.site.c_str(),
                  static_cast<unsigned long long>(job.call_id),
                  job.service.c_str(), job.arrived - t_begin,
                  job.started - t_begin, job.finished - t_begin);
    }
  }
  return 0;
}
