// A3 — SED concurrency ablation.
//
// Section 5.1: "As each server cannot compute more than one simulation at
// the same time, we won't be able to have more than 11 parallel
// computations at the same time." This bench asks the natural follow-up:
// what if each SED split its 16 machines across c concurrent simulations?
// Total machine count is held fixed (machines_per_job = 16 / c), so the
// comparison isolates the queueing-vs-Amdahl trade-off: more concurrent
// slots drain the queue faster, but each job runs on fewer machines and
// pays the serial fraction.
#include <cstdio>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/units.hpp"
#include "obs/session.hpp"
#include "workflow/campaign.hpp"

int main(int argc, char** argv) {
  gc::set_default_log_level(gc::LogLevel::kWarn);
  const gc::CliArgs args(argc, argv);
  const gc::obs::Session obs = gc::obs::Session::from_cli(args);

  std::printf("A3: SED concurrency ablation (100 zoom2, 16 machines per "
              "SED, split across c slots)\n");
  std::printf("%3s %14s %16s %16s %16s\n", "c", "machines/job", "makespan",
              "mean exec", "mean latency");

  for (const int concurrency : {1, 2, 4}) {
    gc::workflow::CampaignConfig config;
    config.sed_tuning.concurrency = concurrency;
    config.machines_per_sed = 16 / concurrency;
    const gc::workflow::CampaignResult result =
        gc::workflow::run_grid5000_campaign(config);

    double latency_sum = 0.0;
    for (const auto& record : result.zoom2) latency_sum += record.latency();
    std::printf("%3d %14d %16s %16s %16s\n", concurrency,
                16 / concurrency,
                gc::format_duration(result.makespan).c_str(),
                gc::format_duration(result.part2_mean_exec).c_str(),
                gc::format_duration(latency_sum /
                                    static_cast<double>(result.zoom2.size()))
                    .c_str());
  }
  std::printf("\nshape: more slots drain the queue sooner (mean latency "
              "drops) but each job runs on fewer machines and pays the "
              "Amdahl serial fraction (%.0f%%) again per split — and the "
              "final wave of long jobs finishes later, so the makespan "
              "degrades. The paper's 1-job-per-SED deployment is the right "
              "call for makespan.\n",
              100.0 * gc::platform::RamsesCostModel().tuning().serial_fraction);
  return 0;
}
