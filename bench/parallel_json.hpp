// Shared emitter for BENCH_parallel.json — the machine-readable record of
// kernel wall-times vs thread count that tracks the perf trajectory across
// PRs. The file is a flat JSON array of
//   {"kernel": ..., "n": ..., "threads": ..., "ms": ..., "speedup": ...}
// objects; `speedup` is relative to the 1-thread run of the same kernel.
// bench_v2_micro (--parallel_sweep) rewrites the file; bench_v1 (--json)
// appends its end-to-end entries.
#pragma once

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/strings.hpp"

namespace gc::bench {

struct ParallelEntry {
  std::string kernel;
  long n = 0;            ///< problem size (mesh/particle dimension or count)
  std::size_t threads = 0;
  double ms = 0.0;
  double speedup = 1.0;  ///< ms(threads=1) / ms
};

inline std::string to_json(const ParallelEntry& e) {
  return strformat(
      "  {\"kernel\": \"%s\", \"n\": %ld, \"threads\": %zu, "
      "\"ms\": %.3f, \"speedup\": %.3f}",
      e.kernel.c_str(), e.n, e.threads, e.ms, e.speedup);
}

/// Overwrites `path` with a JSON array of `entries`.
inline bool write_parallel_entries(const std::string& path,
                                   const std::vector<ParallelEntry>& entries) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "[\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out << to_json(entries[i]) << (i + 1 < entries.size() ? ",\n" : "\n");
  }
  out << "]\n";
  return static_cast<bool>(out);
}

/// Appends `entries` to the JSON array at `path` (creates it if missing or
/// not a well-formed array).
inline bool append_parallel_entries(const std::string& path,
                                    const std::vector<ParallelEntry>& entries) {
  std::string existing;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      existing = buffer.str();
    }
  }
  const std::size_t close = existing.rfind(']');
  if (close == std::string::npos) {
    return write_parallel_entries(path, entries);
  }
  // Splice before the final ']'; keep existing entries untouched.
  std::string head = existing.substr(0, close);
  while (!head.empty() && (head.back() == '\n' || head.back() == ' ')) {
    head.pop_back();
  }
  const bool had_entries = !head.empty() && head.back() != '[';
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << head;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out << (i == 0 && !had_entries ? "\n" : ",\n") << to_json(entries[i]);
  }
  out << "\n]\n";
  return static_cast<bool>(out);
}

}  // namespace gc::bench
