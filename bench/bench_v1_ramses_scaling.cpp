// V1 — substrate validation: the RAMSES-style solver under MiniMPI.
//
// The paper runs RAMSES over MPI on 16 machines per SED with Peano-Hilbert
// domain decomposition. This bench validates that machinery at laptop
// scale: per-rank load balance of the Hilbert decomposition on a clustered
// particle distribution, agreement between serial and parallel runs, and
// wall-clock throughput per step.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "common/log.hpp"
#include "ramses/domain.hpp"
#include "ramses/loader.hpp"
#include "ramses/simulation.hpp"

int main() {
  gc::set_log_level(gc::LogLevel::kWarn);

  gc::ramses::RunParams params;
  params.npart_dim = 16;
  params.pm_grid = 32;
  params.steps = 12;
  params.a_start = 0.1;
  params.seed = 99;

  std::printf("V1: PM/N-body over MiniMPI (%d^3 particles, %d^3 mesh, %d "
              "steps)\n",
              params.npart_dim, params.pm_grid, params.steps);

  // Serial reference.
  const auto t0 = std::chrono::steady_clock::now();
  const gc::ramses::RunResult serial = gc::ramses::run_simulation(params);
  const auto t1 = std::chrono::steady_clock::now();
  const double serial_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  std::printf("serial: %zu particles, %d steps, %.0f ms (%.1f ms/step)\n",
              serial.particle_count, serial.steps_taken, serial_ms,
              serial_ms / params.steps);

  // Parallel runs.
  std::printf("%6s %16s %12s %18s\n", "ranks", "wall ms", "imbalance",
              "max |dx| vs serial");
  for (const int ranks : {1, 2, 4}) {
    const auto p0 = std::chrono::steady_clock::now();
    const gc::ramses::RunResult parallel =
        gc::ramses::run_simulation_parallel(params, ranks);
    const auto p1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(p1 - p0).count();

    // Compare final snapshots by particle id.
    double max_dx = 0.0;
    if (!serial.snapshots.empty() && !parallel.snapshots.empty()) {
      const auto& a = serial.snapshots.back().particles;
      const auto& b = parallel.snapshots.back().particles;
      std::vector<std::size_t> index_of(a.size() + 1, 0);
      for (std::size_t i = 0; i < b.size(); ++i) {
        index_of[static_cast<std::size_t>(b.id[i])] = i;
      }
      for (std::size_t i = 0; i < a.size(); ++i) {
        const std::size_t j = index_of[static_cast<std::size_t>(a.id[i])];
        auto wrap = [](double d) {
          if (d > 0.5) d -= 1.0;
          if (d < -0.5) d += 1.0;
          return std::abs(d);
        };
        max_dx = std::max(max_dx, wrap(a.x[i] - b.x[j]));
        max_dx = std::max(max_dx, wrap(a.y[i] - b.y[j]));
        max_dx = std::max(max_dx, wrap(a.z[i] - b.z[j]));
      }
    }
    std::printf("%6d %16.0f %12.3f %18.2e\n", ranks, ms,
                parallel.final_imbalance, max_dx);
  }

  // Hilbert decomposition balance on the evolved (clustered) distribution.
  std::printf("\nHilbert decomposition balance on the clustered final "
              "state:\n%6s %12s\n", "ranks", "max/mean");
  const auto& final_particles = serial.snapshots.back().particles;
  for (const int ranks : {2, 4, 8, 16, 32}) {
    gc::ramses::DomainDecomposition domain(final_particles, 4, ranks);
    std::printf("%6d %12.3f\n", ranks, domain.imbalance(final_particles));
  }
  return 0;
}
