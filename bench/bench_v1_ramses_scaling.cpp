// V1 — substrate validation: the RAMSES-style solver under MiniMPI.
//
// The paper runs RAMSES over MPI on 16 machines per SED with Peano-Hilbert
// domain decomposition. This bench validates that machinery at laptop
// scale: per-rank load balance of the Hilbert decomposition on a clustered
// particle distribution, agreement between serial and parallel runs, and
// wall-clock throughput per step.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "obs/session.hpp"
#include "parallel/pool.hpp"
#include "parallel_json.hpp"
#include "ramses/domain.hpp"
#include "ramses/loader.hpp"
#include "ramses/simulation.hpp"

namespace {

/// Byte-level equality of the final snapshots of two runs.
bool snapshots_identical(const gc::ramses::RunResult& a,
                         const gc::ramses::RunResult& b) {
  if (a.snapshots.size() != b.snapshots.size()) return false;
  for (std::size_t s = 0; s < a.snapshots.size(); ++s) {
    const auto& pa = a.snapshots[s].particles;
    const auto& pb = b.snapshots[s].particles;
    auto same = [](const std::vector<double>& u, const std::vector<double>& v) {
      return u.size() == v.size() &&
             (u.empty() ||
              std::memcmp(u.data(), v.data(), u.size() * sizeof(double)) == 0);
    };
    if (!same(pa.x, pb.x) || !same(pa.y, pb.y) || !same(pa.z, pb.z) ||
        !same(pa.px, pb.px) || !same(pa.py, pb.py) || !same(pa.pz, pb.pz)) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  gc::set_default_log_level(gc::LogLevel::kWarn);
  const gc::CliArgs args(argc, argv);
  const gc::obs::Session obs = gc::obs::Session::from_cli(args);
  const std::string json_path = args.get("json", "");

  gc::ramses::RunParams params;
  params.npart_dim = 16;
  params.pm_grid = 32;
  params.steps = 12;
  params.a_start = 0.1;
  params.seed = 99;

  std::printf("V1: PM/N-body over MiniMPI (%d^3 particles, %d^3 mesh, %d "
              "steps)\n",
              params.npart_dim, params.pm_grid, params.steps);

  // Serial reference (1 pool thread).
  gc::parallel::set_thread_count(1);
  const auto t0 = std::chrono::steady_clock::now();
  const gc::ramses::RunResult serial = gc::ramses::run_simulation(params);
  const auto t1 = std::chrono::steady_clock::now();
  const double serial_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  std::printf("serial: %zu particles, %d steps, %.0f ms (%.1f ms/step)\n",
              serial.particle_count, serial.steps_taken, serial_ms,
              serial_ms / params.steps);

  // Intra-node pool scaling of the same single-rank run: wall clock per
  // GC_THREADS, with the byte-identity guarantee checked against the
  // 1-thread reference.
  std::printf("\npool threads (single rank):\n%8s %12s %10s %12s\n",
              "threads", "wall ms", "speedup", "identical");
  std::vector<gc::bench::ParallelEntry> entries;
  entries.push_back({"run_simulation", params.npart_dim, 1, serial_ms, 1.0});
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    gc::parallel::set_thread_count(threads);
    const auto s0 = std::chrono::steady_clock::now();
    const gc::ramses::RunResult pooled = gc::ramses::run_simulation(params);
    const auto s1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(s1 - s0).count();
    const bool identical = snapshots_identical(serial, pooled);
    std::printf("%8zu %12.0f %10.2f %12s\n", threads, ms, serial_ms / ms,
                identical ? "yes" : "NO");
    entries.push_back({"run_simulation", params.npart_dim, threads, ms,
                       serial_ms / ms});
  }
  if (!json_path.empty()) {
    gc::bench::append_parallel_entries(json_path, entries);
    std::printf("appended %zu entries to %s\n", entries.size(),
                json_path.c_str());
  }
  gc::parallel::set_thread_count(0);

  // Parallel runs.
  std::printf("%6s %16s %12s %18s\n", "ranks", "wall ms", "imbalance",
              "max |dx| vs serial");
  for (const int ranks : {1, 2, 4}) {
    const auto p0 = std::chrono::steady_clock::now();
    const gc::ramses::RunResult parallel =
        gc::ramses::run_simulation_parallel(params, ranks);
    const auto p1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(p1 - p0).count();

    // Compare final snapshots by particle id.
    double max_dx = 0.0;
    if (!serial.snapshots.empty() && !parallel.snapshots.empty()) {
      const auto& a = serial.snapshots.back().particles;
      const auto& b = parallel.snapshots.back().particles;
      std::vector<std::size_t> index_of(a.size() + 1, 0);
      for (std::size_t i = 0; i < b.size(); ++i) {
        index_of[static_cast<std::size_t>(b.id[i])] = i;
      }
      for (std::size_t i = 0; i < a.size(); ++i) {
        const std::size_t j = index_of[static_cast<std::size_t>(a.id[i])];
        auto wrap = [](double d) {
          if (d > 0.5) d -= 1.0;
          if (d < -0.5) d += 1.0;
          return std::abs(d);
        };
        max_dx = std::max(max_dx, wrap(a.x[i] - b.x[j]));
        max_dx = std::max(max_dx, wrap(a.y[i] - b.y[j]));
        max_dx = std::max(max_dx, wrap(a.z[i] - b.z[j]));
      }
    }
    std::printf("%6d %16.0f %12.3f %18.2e\n", ranks, ms,
                parallel.final_imbalance, max_dx);
  }

  // Hilbert decomposition balance on the evolved (clustered) distribution.
  std::printf("\nHilbert decomposition balance on the clustered final "
              "state:\n%6s %12s\n", "ranks", "max/mean");
  const auto& final_particles = serial.snapshots.back().particles;
  for (const int ranks : {2, 4, 8, 16, 32}) {
    gc::ramses::DomainDecomposition domain(final_particles, 4, ranks);
    std::printf("%6d %12.3f\n", ranks, domain.imbalance(final_particles));
  }
  return 0;
}
