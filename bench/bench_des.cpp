// bench_des — DES kernel & message-path throughput (BENCH_des.json).
//
// Every scaling result in the ROADMAP (MA federation, thousands of
// concurrent clients, contention-aware networking) rides on the DES
// engine's event throughput; this bench pins it down with three workloads:
//
//   phold      PHOLD-style self-driving event population: a fixed budget of
//              events, each firing reschedules one successor at
//              now + Exp(1), and every 4th firing re-arms a far-future
//              watchdog after cancelling the previous one (the diet
//              heartbeat/timeout pattern, so the cancel path is priced in).
//              Runs on BOTH the optimized engine and the frozen naive
//              reference (src/des/reference.hpp), so the phold before/after
//              is measured live in the same binary.
//
//   pingstorm  Request/reply message storm through SimEnv over a
//              1 MA / 4 LA / 64 SED topology: every SED ping-pongs its LA
//              and every LA ping-pongs the MA, exercising the per-stream
//              FIFO clock, byte accounting, and delivery-event path.
//
//   pingstorm_sampled
//              The same storm with the obs::TimeSeries sampler ticking on
//              a recurring virtual-time event — its "before" is the
//              unsampled pingstorm lane from the same run, so the recorded
//              speedup is exactly the sampler overhead (budget: < 5%).
//
//   campaign22 The 22-sub-sim zoom campaign replay (the paper's Section 5
//              experiment at bench scale), events counted via the
//              des_events_executed_total metric.
//
// Output: events/sec per workload, printed and written to --json
// (default BENCH_des.json) with before/after numbers. "Before" for
// pingstorm/campaign22 is the recorded pre-PR measurement in this
// container (see EXPERIMENTS.md, "DES kernel throughput"); for phold it is
// the live reference-engine run.
//
//   bench_des                      # full sizes, writes BENCH_des.json
//   bench_des --quick              # CI smoke sizes
//   bench_des --quick --floor 250000   # exit 1 if phold drops below floor
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "des/engine.hpp"
#include "des/reference.hpp"
#include "net/env.hpp"
#include "net/simenv.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "workflow/campaign.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_s(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Pre-PR throughput of this same bench in this container (1 CPU,
// RelWithDebInfo, GC_CHECK=ON): median of three back-to-back runs of this
// exact harness built against the pre-rewrite engine/simenv, interleaved
// with the post-rewrite runs so both sides saw the same machine load.
// Methodology and the matching table live in EXPERIMENTS.md.
constexpr double kRecordedPrePr[3] = {
    2466107.0,  // phold      (also measured live via ReferenceEngine)
    1276003.0,  // pingstorm
    197638.0,   // campaign22 (dominated by campaign setup, not the kernel;
                //             run-to-run spread is ~±20% either side)
};

// ---------------------------------------------------------------------------
// phold

template <typename EngineT>
struct PholdCtx {
  EngineT engine;
  gc::Rng rng{7};
  std::uint64_t remaining = 0;  ///< successors still to be scheduled
  std::uint64_t fired = 0;
  std::uint64_t watchdog = 0;  ///< pending far-future timer, 0 = none
  std::uint64_t cancels = 0;
};

template <typename EngineT>
struct PholdEvent {
  PholdCtx<EngineT>* c;
  void operator()() {
    PholdCtx<EngineT>& ctx = *c;
    ++ctx.fired;
    if (ctx.remaining == 0) return;
    --ctx.remaining;
    ctx.engine.schedule_after(ctx.rng.exponential(1.0), PholdEvent<EngineT>{c});
    if ((ctx.fired & 3u) == 0) {
      // Heartbeat pattern: re-arm a watchdog far in the future; the
      // previous one is cancelled and must not rot in the calendar.
      if (ctx.watchdog != 0 && ctx.engine.cancel(ctx.watchdog)) ++ctx.cancels;
      ctx.watchdog = ctx.engine.schedule_after(1e9, PholdEvent<EngineT>{c});
    }
  }
};

/// Runs PHOLD with `population` events in flight and ~`budget` total
/// firings; returns events/sec (cancellations included in the work, not in
/// the numerator).
template <typename EngineT>
double phold_rate(std::uint64_t budget, int population) {
  PholdCtx<EngineT> ctx;
  ctx.remaining = budget > static_cast<std::uint64_t>(population)
                      ? budget - static_cast<std::uint64_t>(population)
                      : 0;
  for (int i = 0; i < population; ++i) {
    ctx.engine.schedule_after(ctx.rng.exponential(1.0),
                              PholdEvent<EngineT>{&ctx});
  }
  const auto t0 = Clock::now();
  ctx.engine.run();
  const double dt = elapsed_s(t0);
  return static_cast<double>(ctx.engine.events_executed()) / dt;
}

// ---------------------------------------------------------------------------
// pingstorm

struct StormActor final : gc::net::Actor {
  gc::net::Endpoint parent = gc::net::kNullEndpoint;  ///< 0: pure echoer
  int remaining = 0;  ///< pings this actor will still send

  void on_message(const gc::net::Envelope& e) override {
    if (e.type == 1) {  // ping from a child: echo a pong
      gc::net::Envelope r;
      r.from = endpoint();
      r.to = e.from;
      r.type = 2;
      env()->send(r);
      return;
    }
    send_next();  // pong from the parent: fire the next ping
  }

  void send_next() {
    if (remaining <= 0) return;
    --remaining;
    gc::net::Envelope p;
    p.from = endpoint();
    p.to = parent;
    p.type = 1;
    env()->send(p);
  }
};

/// 1 MA / 4 LA / 64 SED ping-pong storm; returns events/sec and fills
/// messages with the wire-message count. Runs with metrics enabled — the
/// production configuration — so the per-link counter path is priced in.
/// With `sampled` set, the obs::TimeSeries sampler additionally snapshots
/// the registry from a recurring virtual-time event (the zoom_campaign
/// --timeseries configuration) — the delta against the unsampled lane is
/// the sampler's whole cost.
double pingstorm_rate(int rounds, std::uint64_t* messages,
                      bool sampled = false) {
  auto& metrics = gc::obs::Metrics::instance();
  const bool was_on = metrics.enabled();
  metrics.reset();
  metrics.set_enabled(true);
  auto& series = gc::obs::TimeSeries::instance();
  if (sampled) {
    series.clear();
    series.set_interval(0.05);  // many ticks across the storm's ~virtual-min
    series.set_enabled(true);
  }
  gc::des::Engine engine;
  gc::net::UniformTopology topology(5e-4, 1.25e8);
  gc::net::SimEnv env(engine, topology);

  constexpr int kLas = 4;
  constexpr int kSeds = 64;
  StormActor ma;
  StormActor las[kLas];
  StormActor seds[kSeds];
  env.attach(ma, 0);
  for (int i = 0; i < kLas; ++i) {
    env.attach(las[i], static_cast<gc::net::NodeId>(1 + i));
    las[i].parent = ma.endpoint();
    las[i].remaining = rounds;
  }
  for (int i = 0; i < kSeds; ++i) {
    env.attach(seds[i], static_cast<gc::net::NodeId>(1 + kLas + i));
    seds[i].parent = las[i / (kSeds / kLas)].endpoint();
    seds[i].remaining = rounds;
  }
  for (int i = 0; i < kLas; ++i) {
    engine.schedule_at(0.0, [&las, i] { las[i].send_next(); });
  }
  for (int i = 0; i < kSeds; ++i) {
    engine.schedule_at(0.0, [&seds, i] { seds[i].send_next(); });
  }
  std::function<void()> sampler_tick;
  if (sampled) {
    sampler_tick = [&engine, &sampler_tick, &series]() {
      engine.publish_tag_metrics();
      series.sample(engine.now());
      if (engine.events_pending() > 0) {
        engine.schedule_after(series.interval(),
                              [&sampler_tick]() { sampler_tick(); },
                              gc::des::EventTag::kSampler);
      }
    };
    engine.schedule_after(series.interval(),
                          [&sampler_tick]() { sampler_tick(); },
                          gc::des::EventTag::kSampler);
  }

  const auto t0 = Clock::now();
  engine.run();
  const double dt = elapsed_s(t0);
  metrics.set_enabled(was_on);
  if (sampled) {
    series.set_enabled(false);
    series.clear();
  }
  *messages = env.messages_sent();
  return static_cast<double>(engine.events_executed()) / dt;
}

// ---------------------------------------------------------------------------
// campaign22

/// The zoom campaign replay, repeated `reps` times for a stable wall-time
/// denominator; events counted via the metrics registry
/// (des_events_executed_total), which each campaign engine bumps per event.
double campaign_rate(int sub_sims, int reps, std::uint64_t* events) {
  auto& metrics = gc::obs::Metrics::instance();
  const bool was_on = metrics.enabled();
  metrics.reset();
  metrics.set_enabled(true);

  const auto t0 = Clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    gc::workflow::CampaignConfig config;
    config.sub_simulations = sub_sims;
    config.seed = 11;
    const gc::workflow::CampaignResult result =
        gc::workflow::run_grid5000_campaign(config);
    if (result.failed_calls != 0) {
      std::fprintf(stderr, "campaign22: unexpected failed calls\n");
    }
  }
  const double dt = elapsed_s(t0);

  *events = metrics.counter("des_events_executed_total").value();
  metrics.set_enabled(was_on);
  return static_cast<double>(*events) / dt;
}

}  // namespace

int main(int argc, char** argv) {
  gc::set_default_log_level(gc::LogLevel::kWarn);
  const gc::CliArgs args(argc, argv);
  const bool quick = args.has("quick");
  const double floor = args.get_double("floor", 0.0);
  const std::string json_path = args.get("json", "BENCH_des.json");

  const std::uint64_t phold_budget = quick ? 300000 : 3000000;
  const int phold_population = static_cast<int>(args.get_int("population", 4096));
  const int storm_rounds = quick ? 150 : 3000;
  const int sub_sims = quick ? 6 : 22;
  const int campaign_reps = quick ? 2 : 40;

  std::printf("bench_des (%s): phold %llu events / storm %d rounds / "
              "campaign %d sub-sims\n\n",
              quick ? "quick" : "full",
              static_cast<unsigned long long>(phold_budget), storm_rounds,
              sub_sims);

  // phold: reference lane first so the optimized lane runs on a warm heap.
  const double phold_ref =
      phold_rate<gc::des::ReferenceEngine>(phold_budget, phold_population);
  const double phold_opt =
      phold_rate<gc::des::Engine>(phold_budget, phold_population);
  std::printf("%-11s %12.0f ev/s   (reference %12.0f ev/s, %.2fx)\n", "phold",
              phold_opt, phold_ref, phold_opt / phold_ref);

  std::uint64_t storm_messages = 0;
  const double storm = pingstorm_rate(storm_rounds, &storm_messages);
  std::printf("%-11s %12.0f ev/s   (%llu messages)\n", "pingstorm", storm,
              static_cast<unsigned long long>(storm_messages));

  // Sampler-overhead lane: the same storm with the time-series sampler
  // ticking; the ratio against the unsampled lane (same run, same machine
  // state) is the sampler's events/sec cost — budgeted at < 5%.
  std::uint64_t sampled_messages = 0;
  const double storm_sampled =
      pingstorm_rate(storm_rounds, &sampled_messages, /*sampled=*/true);
  std::printf("%-11s %12.0f ev/s   (sampler on, %.1f%% of unsampled)\n",
              "pingstorm+ts", storm_sampled, 100.0 * storm_sampled / storm);

  std::uint64_t campaign_events = 0;
  const double campaign =
      campaign_rate(sub_sims, campaign_reps, &campaign_events);
  std::printf("%-11s %12.0f ev/s   (%llu events)\n", "campaign22", campaign,
              static_cast<unsigned long long>(campaign_events));

  std::ofstream json(json_path, std::ios::trunc);
  json << "{\n  \"bench\": \"bench_des\",\n  \"quick\": "
       << (quick ? "true" : "false") << ",\n  \"workloads\": [\n";
  const char* names[4] = {"phold", "pingstorm", "pingstorm_sampled",
                          "campaign22"};
  const double after[4] = {phold_opt, storm, storm_sampled, campaign};
  const double before[4] = {phold_ref, kRecordedPrePr[1], storm,
                            kRecordedPrePr[2]};
  const char* before_src[4] = {"reference engine, live",
                               "recorded pre-PR, this container",
                               "pingstorm lane (sampler off), same run",
                               "recorded pre-PR, this container"};
  for (int i = 0; i < 4; ++i) {
    json << "    {\"name\": \"" << names[i] << "\", \"events_per_sec\": "
         << static_cast<std::uint64_t>(after[i])
         << ", \"before_events_per_sec\": "
         << static_cast<std::uint64_t>(before[i]) << ", \"before_source\": \""
         << before_src[i] << "\", \"speedup\": ";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f",
                  before[i] > 0.0 ? after[i] / before[i] : 0.0);
    json << buf << "}" << (i + 1 < 4 ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();
  std::printf("\nwrote %s\n", json_path.c_str());

  if (floor > 0.0 && phold_opt < floor) {
    std::fprintf(stderr,
                 "FAIL: phold %.0f ev/s below floor %.0f ev/s "
                 "(10x-regression guard)\n",
                 phold_opt, floor);
    return 1;
  }
  return 0;
}
