// A4 — fault injection: a SED dies during the campaign.
//
// Not evaluated in the paper (its run had no failures), but the paper's
// architecture implies the recovery paths this bench exercises:
//   - agents schedule with partial information when a child misses the
//     collect timeout (Section 2.1's hierarchy tolerates silence);
//   - unresponsive children are evicted after repeated timeouts;
//   - clients bound calls with deadlines and resubmit, so jobs queued on
//     the dead SED are re-run elsewhere.
//
// Scenario A: a Toulouse SED dies during part 1 (before any zoom2 job is
// placed). Expected: two slightly slow scheduling rounds (timeout), then
// eviction; all 100 jobs complete on 10 SEDs; no failures.
//
// Scenario B: the same SED dies 2h into part 2 with ~7 of its jobs still
// queued. With a 16h call deadline and 2 retries, the lost jobs resubmit
// and the campaign completes with zero failed calls.
#include <cstdio>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/units.hpp"
#include "obs/session.hpp"
#include "workflow/campaign.hpp"

namespace {

void report(const char* label, const gc::workflow::CampaignResult& result,
            double baseline_makespan) {
  std::printf("%-24s makespan %16s (%+5.1f%%)  failed %llu  resubmitted "
              "%llu\n",
              label, gc::format_duration(result.makespan).c_str(),
              100.0 * (result.makespan - baseline_makespan) /
                  baseline_makespan,
              static_cast<unsigned long long>(result.failed_calls),
              static_cast<unsigned long long>(result.resubmissions));
}

}  // namespace

int main(int argc, char** argv) {
  gc::set_default_log_level(gc::LogLevel::kOff);  // timeouts/evictions are expected
  const gc::CliArgs args(argc, argv);
  const gc::obs::Session obs = gc::obs::Session::from_cli(args);

  std::printf("A4: SED failure during the campaign (victim: "
              "SeD-violette-0, Toulouse)\n\n");

  gc::workflow::CampaignConfig healthy;
  const gc::workflow::CampaignResult baseline =
      gc::workflow::run_grid5000_campaign(healthy);
  report("no fault", baseline, baseline.makespan);

  // The Toulouse SEDs are deployment indexes 7 and 8 (see
  // platform/grid5000.cpp ordering).
  constexpr int kVictim = 7;

  gc::workflow::CampaignConfig scenario_a;
  scenario_a.fault_sed_index = kVictim;
  scenario_a.fault_at_s = 600.0;  // during part 1
  const gc::workflow::CampaignResult a =
      gc::workflow::run_grid5000_campaign(scenario_a);
  report("dies before burst", a, baseline.makespan);

  gc::workflow::CampaignConfig scenario_b;
  scenario_b.fault_sed_index = kVictim;
  scenario_b.fault_at_s = 4511.0 + 2.0 * 3600.0;  // 2h into part 2
  scenario_b.call_deadline_s = 16.0 * 3600.0;
  scenario_b.max_retries = 2;
  const gc::workflow::CampaignResult b =
      gc::workflow::run_grid5000_campaign(scenario_b);
  report("dies mid-burst", b, baseline.makespan);

  std::printf("\nscenario A: the victim is evicted after two collect "
              "timeouts; its share lands on the surviving SEDs.\n");
  std::printf("scenario B: jobs already queued on the victim hit the 16h "
              "deadline and are resubmitted; everything completes.\n");
  return 0;
}
