file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_sedtimes.dir/bench_fig4_sedtimes.cpp.o"
  "CMakeFiles/bench_fig4_sedtimes.dir/bench_fig4_sedtimes.cpp.o.d"
  "bench_fig4_sedtimes"
  "bench_fig4_sedtimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_sedtimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
