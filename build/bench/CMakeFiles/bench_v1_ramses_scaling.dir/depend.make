# Empty dependencies file for bench_v1_ramses_scaling.
# This may be replaced when dependencies are built.
