file(REMOVE_RECURSE
  "CMakeFiles/bench_v1_ramses_scaling.dir/bench_v1_ramses_scaling.cpp.o"
  "CMakeFiles/bench_v1_ramses_scaling.dir/bench_v1_ramses_scaling.cpp.o.d"
  "bench_v1_ramses_scaling"
  "bench_v1_ramses_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_v1_ramses_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
