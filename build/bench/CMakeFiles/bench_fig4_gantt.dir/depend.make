# Empty dependencies file for bench_fig4_gantt.
# This may be replaced when dependencies are built.
