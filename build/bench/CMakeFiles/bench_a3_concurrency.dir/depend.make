# Empty dependencies file for bench_a3_concurrency.
# This may be replaced when dependencies are built.
