file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_concurrency.dir/bench_a3_concurrency.cpp.o"
  "CMakeFiles/bench_a3_concurrency.dir/bench_a3_concurrency.cpp.o.d"
  "bench_a3_concurrency"
  "bench_a3_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
