# Empty dependencies file for bench_a4_faults.
# This may be replaced when dependencies are built.
