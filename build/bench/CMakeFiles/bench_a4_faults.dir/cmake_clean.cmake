file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_faults.dir/bench_a4_faults.cpp.o"
  "CMakeFiles/bench_a4_faults.dir/bench_a4_faults.cpp.o.d"
  "bench_a4_faults"
  "bench_a4_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
