file(REMOVE_RECURSE
  "CMakeFiles/bench_b1_persistence.dir/bench_b1_persistence.cpp.o"
  "CMakeFiles/bench_b1_persistence.dir/bench_b1_persistence.cpp.o.d"
  "bench_b1_persistence"
  "bench_b1_persistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_b1_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
