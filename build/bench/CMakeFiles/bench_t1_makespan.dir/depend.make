# Empty dependencies file for bench_t1_makespan.
# This may be replaced when dependencies are built.
