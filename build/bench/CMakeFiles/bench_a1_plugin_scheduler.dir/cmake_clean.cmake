file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_plugin_scheduler.dir/bench_a1_plugin_scheduler.cpp.o"
  "CMakeFiles/bench_a1_plugin_scheduler.dir/bench_a1_plugin_scheduler.cpp.o.d"
  "bench_a1_plugin_scheduler"
  "bench_a1_plugin_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_plugin_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
