# Empty dependencies file for bench_a1_plugin_scheduler.
# This may be replaced when dependencies are built.
