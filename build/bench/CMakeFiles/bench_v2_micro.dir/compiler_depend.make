# Empty compiler generated dependencies file for bench_v2_micro.
# This may be replaced when dependencies are built.
