
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_v2_micro.cpp" "bench/CMakeFiles/bench_v2_micro.dir/bench_v2_micro.cpp.o" "gcc" "bench/CMakeFiles/bench_v2_micro.dir/bench_v2_micro.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gc_math.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gc_hilbert.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gc_halo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gc_diet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gc_ramses.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gc_naming.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gc_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gc_des.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gc_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gc_grafic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gc_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gc_cosmo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
