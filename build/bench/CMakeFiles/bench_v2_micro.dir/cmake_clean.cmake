file(REMOVE_RECURSE
  "CMakeFiles/bench_v2_micro.dir/bench_v2_micro.cpp.o"
  "CMakeFiles/bench_v2_micro.dir/bench_v2_micro.cpp.o.d"
  "bench_v2_micro"
  "bench_v2_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_v2_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
