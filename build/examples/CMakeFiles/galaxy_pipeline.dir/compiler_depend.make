# Empty compiler generated dependencies file for galaxy_pipeline.
# This may be replaced when dependencies are built.
