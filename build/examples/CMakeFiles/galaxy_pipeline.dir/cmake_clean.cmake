file(REMOVE_RECURSE
  "CMakeFiles/galaxy_pipeline.dir/galaxy_pipeline.cpp.o"
  "CMakeFiles/galaxy_pipeline.dir/galaxy_pipeline.cpp.o.d"
  "galaxy_pipeline"
  "galaxy_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galaxy_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
