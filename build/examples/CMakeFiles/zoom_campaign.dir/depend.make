# Empty dependencies file for zoom_campaign.
# This may be replaced when dependencies are built.
