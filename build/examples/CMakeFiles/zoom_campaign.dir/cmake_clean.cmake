file(REMOVE_RECURSE
  "CMakeFiles/zoom_campaign.dir/zoom_campaign.cpp.o"
  "CMakeFiles/zoom_campaign.dir/zoom_campaign.cpp.o.d"
  "zoom_campaign"
  "zoom_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoom_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
