# Empty compiler generated dependencies file for plugin_scheduler.
# This may be replaced when dependencies are built.
