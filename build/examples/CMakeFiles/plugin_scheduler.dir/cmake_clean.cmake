file(REMOVE_RECURSE
  "CMakeFiles/plugin_scheduler.dir/plugin_scheduler.cpp.o"
  "CMakeFiles/plugin_scheduler.dir/plugin_scheduler.cpp.o.d"
  "plugin_scheduler"
  "plugin_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plugin_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
