# Empty dependencies file for pm_simulation.
# This may be replaced when dependencies are built.
