file(REMOVE_RECURSE
  "CMakeFiles/pm_simulation.dir/pm_simulation.cpp.o"
  "CMakeFiles/pm_simulation.dir/pm_simulation.cpp.o.d"
  "pm_simulation"
  "pm_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
