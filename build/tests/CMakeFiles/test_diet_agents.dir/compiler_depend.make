# Empty compiler generated dependencies file for test_diet_agents.
# This may be replaced when dependencies are built.
