file(REMOVE_RECURSE
  "CMakeFiles/test_diet_agents.dir/test_diet_agents.cpp.o"
  "CMakeFiles/test_diet_agents.dir/test_diet_agents.cpp.o.d"
  "test_diet_agents"
  "test_diet_agents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_diet_agents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
