file(REMOVE_RECURSE
  "CMakeFiles/test_cosmo.dir/test_cosmo.cpp.o"
  "CMakeFiles/test_cosmo.dir/test_cosmo.cpp.o.d"
  "test_cosmo"
  "test_cosmo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cosmo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
