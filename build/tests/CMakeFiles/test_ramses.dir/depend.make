# Empty dependencies file for test_ramses.
# This may be replaced when dependencies are built.
