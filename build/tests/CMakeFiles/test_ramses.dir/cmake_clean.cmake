file(REMOVE_RECURSE
  "CMakeFiles/test_ramses.dir/test_ramses.cpp.o"
  "CMakeFiles/test_ramses.dir/test_ramses.cpp.o.d"
  "test_ramses"
  "test_ramses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ramses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
