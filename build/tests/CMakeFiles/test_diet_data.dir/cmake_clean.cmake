file(REMOVE_RECURSE
  "CMakeFiles/test_diet_data.dir/test_diet_data.cpp.o"
  "CMakeFiles/test_diet_data.dir/test_diet_data.cpp.o.d"
  "test_diet_data"
  "test_diet_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_diet_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
