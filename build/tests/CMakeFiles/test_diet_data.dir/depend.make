# Empty dependencies file for test_diet_data.
# This may be replaced when dependencies are built.
