file(REMOVE_RECURSE
  "CMakeFiles/test_grafic.dir/test_grafic.cpp.o"
  "CMakeFiles/test_grafic.dir/test_grafic.cpp.o.d"
  "test_grafic"
  "test_grafic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grafic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
