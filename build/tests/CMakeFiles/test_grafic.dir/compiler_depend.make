# Empty compiler generated dependencies file for test_grafic.
# This may be replaced when dependencies are built.
