file(REMOVE_RECURSE
  "libgc_naming.a"
)
