file(REMOVE_RECURSE
  "CMakeFiles/gc_naming.dir/naming/registry.cpp.o"
  "CMakeFiles/gc_naming.dir/naming/registry.cpp.o.d"
  "libgc_naming.a"
  "libgc_naming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_naming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
