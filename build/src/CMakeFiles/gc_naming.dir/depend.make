# Empty dependencies file for gc_naming.
# This may be replaced when dependencies are built.
