
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ramses/amr.cpp" "src/CMakeFiles/gc_ramses.dir/ramses/amr.cpp.o" "gcc" "src/CMakeFiles/gc_ramses.dir/ramses/amr.cpp.o.d"
  "/root/repo/src/ramses/domain.cpp" "src/CMakeFiles/gc_ramses.dir/ramses/domain.cpp.o" "gcc" "src/CMakeFiles/gc_ramses.dir/ramses/domain.cpp.o.d"
  "/root/repo/src/ramses/loader.cpp" "src/CMakeFiles/gc_ramses.dir/ramses/loader.cpp.o" "gcc" "src/CMakeFiles/gc_ramses.dir/ramses/loader.cpp.o.d"
  "/root/repo/src/ramses/particles.cpp" "src/CMakeFiles/gc_ramses.dir/ramses/particles.cpp.o" "gcc" "src/CMakeFiles/gc_ramses.dir/ramses/particles.cpp.o.d"
  "/root/repo/src/ramses/pm.cpp" "src/CMakeFiles/gc_ramses.dir/ramses/pm.cpp.o" "gcc" "src/CMakeFiles/gc_ramses.dir/ramses/pm.cpp.o.d"
  "/root/repo/src/ramses/simulation.cpp" "src/CMakeFiles/gc_ramses.dir/ramses/simulation.cpp.o" "gcc" "src/CMakeFiles/gc_ramses.dir/ramses/simulation.cpp.o.d"
  "/root/repo/src/ramses/snapshot.cpp" "src/CMakeFiles/gc_ramses.dir/ramses/snapshot.cpp.o" "gcc" "src/CMakeFiles/gc_ramses.dir/ramses/snapshot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gc_math.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gc_cosmo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gc_hilbert.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gc_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gc_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gc_grafic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
