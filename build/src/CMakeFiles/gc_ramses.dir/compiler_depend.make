# Empty compiler generated dependencies file for gc_ramses.
# This may be replaced when dependencies are built.
