file(REMOVE_RECURSE
  "CMakeFiles/gc_ramses.dir/ramses/amr.cpp.o"
  "CMakeFiles/gc_ramses.dir/ramses/amr.cpp.o.d"
  "CMakeFiles/gc_ramses.dir/ramses/domain.cpp.o"
  "CMakeFiles/gc_ramses.dir/ramses/domain.cpp.o.d"
  "CMakeFiles/gc_ramses.dir/ramses/loader.cpp.o"
  "CMakeFiles/gc_ramses.dir/ramses/loader.cpp.o.d"
  "CMakeFiles/gc_ramses.dir/ramses/particles.cpp.o"
  "CMakeFiles/gc_ramses.dir/ramses/particles.cpp.o.d"
  "CMakeFiles/gc_ramses.dir/ramses/pm.cpp.o"
  "CMakeFiles/gc_ramses.dir/ramses/pm.cpp.o.d"
  "CMakeFiles/gc_ramses.dir/ramses/simulation.cpp.o"
  "CMakeFiles/gc_ramses.dir/ramses/simulation.cpp.o.d"
  "CMakeFiles/gc_ramses.dir/ramses/snapshot.cpp.o"
  "CMakeFiles/gc_ramses.dir/ramses/snapshot.cpp.o.d"
  "libgc_ramses.a"
  "libgc_ramses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_ramses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
