file(REMOVE_RECURSE
  "libgc_ramses.a"
)
