file(REMOVE_RECURSE
  "libgc_galaxy.a"
)
