file(REMOVE_RECURSE
  "CMakeFiles/gc_galaxy.dir/galaxy/galaxymaker.cpp.o"
  "CMakeFiles/gc_galaxy.dir/galaxy/galaxymaker.cpp.o.d"
  "libgc_galaxy.a"
  "libgc_galaxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_galaxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
