# Empty dependencies file for gc_galaxy.
# This may be replaced when dependencies are built.
