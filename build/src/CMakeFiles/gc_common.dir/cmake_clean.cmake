file(REMOVE_RECURSE
  "CMakeFiles/gc_common.dir/common/cli.cpp.o"
  "CMakeFiles/gc_common.dir/common/cli.cpp.o.d"
  "CMakeFiles/gc_common.dir/common/log.cpp.o"
  "CMakeFiles/gc_common.dir/common/log.cpp.o.d"
  "CMakeFiles/gc_common.dir/common/stats.cpp.o"
  "CMakeFiles/gc_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/gc_common.dir/common/status.cpp.o"
  "CMakeFiles/gc_common.dir/common/status.cpp.o.d"
  "CMakeFiles/gc_common.dir/common/strings.cpp.o"
  "CMakeFiles/gc_common.dir/common/strings.cpp.o.d"
  "CMakeFiles/gc_common.dir/common/units.cpp.o"
  "CMakeFiles/gc_common.dir/common/units.cpp.o.d"
  "libgc_common.a"
  "libgc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
