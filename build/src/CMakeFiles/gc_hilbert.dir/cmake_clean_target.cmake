file(REMOVE_RECURSE
  "libgc_hilbert.a"
)
