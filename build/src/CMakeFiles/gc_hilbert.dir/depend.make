# Empty dependencies file for gc_hilbert.
# This may be replaced when dependencies are built.
