file(REMOVE_RECURSE
  "CMakeFiles/gc_hilbert.dir/hilbert/hilbert.cpp.o"
  "CMakeFiles/gc_hilbert.dir/hilbert/hilbert.cpp.o.d"
  "libgc_hilbert.a"
  "libgc_hilbert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_hilbert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
