file(REMOVE_RECURSE
  "CMakeFiles/gc_net.dir/net/realenv.cpp.o"
  "CMakeFiles/gc_net.dir/net/realenv.cpp.o.d"
  "CMakeFiles/gc_net.dir/net/simenv.cpp.o"
  "CMakeFiles/gc_net.dir/net/simenv.cpp.o.d"
  "libgc_net.a"
  "libgc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
