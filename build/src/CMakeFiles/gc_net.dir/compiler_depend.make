# Empty compiler generated dependencies file for gc_net.
# This may be replaced when dependencies are built.
