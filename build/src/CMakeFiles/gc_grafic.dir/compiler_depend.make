# Empty compiler generated dependencies file for gc_grafic.
# This may be replaced when dependencies are built.
