file(REMOVE_RECURSE
  "CMakeFiles/gc_grafic.dir/grafic/files.cpp.o"
  "CMakeFiles/gc_grafic.dir/grafic/files.cpp.o.d"
  "CMakeFiles/gc_grafic.dir/grafic/grf.cpp.o"
  "CMakeFiles/gc_grafic.dir/grafic/grf.cpp.o.d"
  "CMakeFiles/gc_grafic.dir/grafic/ic.cpp.o"
  "CMakeFiles/gc_grafic.dir/grafic/ic.cpp.o.d"
  "libgc_grafic.a"
  "libgc_grafic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_grafic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
