file(REMOVE_RECURSE
  "libgc_grafic.a"
)
