
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/diet/agent.cpp" "src/CMakeFiles/gc_diet.dir/diet/agent.cpp.o" "gcc" "src/CMakeFiles/gc_diet.dir/diet/agent.cpp.o.d"
  "/root/repo/src/diet/capi.cpp" "src/CMakeFiles/gc_diet.dir/diet/capi.cpp.o" "gcc" "src/CMakeFiles/gc_diet.dir/diet/capi.cpp.o.d"
  "/root/repo/src/diet/client.cpp" "src/CMakeFiles/gc_diet.dir/diet/client.cpp.o" "gcc" "src/CMakeFiles/gc_diet.dir/diet/client.cpp.o.d"
  "/root/repo/src/diet/config.cpp" "src/CMakeFiles/gc_diet.dir/diet/config.cpp.o" "gcc" "src/CMakeFiles/gc_diet.dir/diet/config.cpp.o.d"
  "/root/repo/src/diet/data.cpp" "src/CMakeFiles/gc_diet.dir/diet/data.cpp.o" "gcc" "src/CMakeFiles/gc_diet.dir/diet/data.cpp.o.d"
  "/root/repo/src/diet/datamgr.cpp" "src/CMakeFiles/gc_diet.dir/diet/datamgr.cpp.o" "gcc" "src/CMakeFiles/gc_diet.dir/diet/datamgr.cpp.o.d"
  "/root/repo/src/diet/deployment.cpp" "src/CMakeFiles/gc_diet.dir/diet/deployment.cpp.o" "gcc" "src/CMakeFiles/gc_diet.dir/diet/deployment.cpp.o.d"
  "/root/repo/src/diet/profile.cpp" "src/CMakeFiles/gc_diet.dir/diet/profile.cpp.o" "gcc" "src/CMakeFiles/gc_diet.dir/diet/profile.cpp.o.d"
  "/root/repo/src/diet/protocol.cpp" "src/CMakeFiles/gc_diet.dir/diet/protocol.cpp.o" "gcc" "src/CMakeFiles/gc_diet.dir/diet/protocol.cpp.o.d"
  "/root/repo/src/diet/sed.cpp" "src/CMakeFiles/gc_diet.dir/diet/sed.cpp.o" "gcc" "src/CMakeFiles/gc_diet.dir/diet/sed.cpp.o.d"
  "/root/repo/src/diet/service.cpp" "src/CMakeFiles/gc_diet.dir/diet/service.cpp.o" "gcc" "src/CMakeFiles/gc_diet.dir/diet/service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gc_naming.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gc_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gc_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
