# Empty dependencies file for gc_diet.
# This may be replaced when dependencies are built.
