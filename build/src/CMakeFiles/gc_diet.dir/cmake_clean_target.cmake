file(REMOVE_RECURSE
  "libgc_diet.a"
)
