file(REMOVE_RECURSE
  "CMakeFiles/gc_diet.dir/diet/agent.cpp.o"
  "CMakeFiles/gc_diet.dir/diet/agent.cpp.o.d"
  "CMakeFiles/gc_diet.dir/diet/capi.cpp.o"
  "CMakeFiles/gc_diet.dir/diet/capi.cpp.o.d"
  "CMakeFiles/gc_diet.dir/diet/client.cpp.o"
  "CMakeFiles/gc_diet.dir/diet/client.cpp.o.d"
  "CMakeFiles/gc_diet.dir/diet/config.cpp.o"
  "CMakeFiles/gc_diet.dir/diet/config.cpp.o.d"
  "CMakeFiles/gc_diet.dir/diet/data.cpp.o"
  "CMakeFiles/gc_diet.dir/diet/data.cpp.o.d"
  "CMakeFiles/gc_diet.dir/diet/datamgr.cpp.o"
  "CMakeFiles/gc_diet.dir/diet/datamgr.cpp.o.d"
  "CMakeFiles/gc_diet.dir/diet/deployment.cpp.o"
  "CMakeFiles/gc_diet.dir/diet/deployment.cpp.o.d"
  "CMakeFiles/gc_diet.dir/diet/profile.cpp.o"
  "CMakeFiles/gc_diet.dir/diet/profile.cpp.o.d"
  "CMakeFiles/gc_diet.dir/diet/protocol.cpp.o"
  "CMakeFiles/gc_diet.dir/diet/protocol.cpp.o.d"
  "CMakeFiles/gc_diet.dir/diet/sed.cpp.o"
  "CMakeFiles/gc_diet.dir/diet/sed.cpp.o.d"
  "CMakeFiles/gc_diet.dir/diet/service.cpp.o"
  "CMakeFiles/gc_diet.dir/diet/service.cpp.o.d"
  "libgc_diet.a"
  "libgc_diet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_diet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
