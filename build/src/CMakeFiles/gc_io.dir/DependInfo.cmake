
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/fortran.cpp" "src/CMakeFiles/gc_io.dir/io/fortran.cpp.o" "gcc" "src/CMakeFiles/gc_io.dir/io/fortran.cpp.o.d"
  "/root/repo/src/io/namelist.cpp" "src/CMakeFiles/gc_io.dir/io/namelist.cpp.o" "gcc" "src/CMakeFiles/gc_io.dir/io/namelist.cpp.o.d"
  "/root/repo/src/io/tar.cpp" "src/CMakeFiles/gc_io.dir/io/tar.cpp.o" "gcc" "src/CMakeFiles/gc_io.dir/io/tar.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
