file(REMOVE_RECURSE
  "CMakeFiles/gc_io.dir/io/fortran.cpp.o"
  "CMakeFiles/gc_io.dir/io/fortran.cpp.o.d"
  "CMakeFiles/gc_io.dir/io/namelist.cpp.o"
  "CMakeFiles/gc_io.dir/io/namelist.cpp.o.d"
  "CMakeFiles/gc_io.dir/io/tar.cpp.o"
  "CMakeFiles/gc_io.dir/io/tar.cpp.o.d"
  "libgc_io.a"
  "libgc_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
