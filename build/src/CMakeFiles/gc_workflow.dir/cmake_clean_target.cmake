file(REMOVE_RECURSE
  "libgc_workflow.a"
)
