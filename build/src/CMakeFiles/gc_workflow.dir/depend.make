# Empty dependencies file for gc_workflow.
# This may be replaced when dependencies are built.
