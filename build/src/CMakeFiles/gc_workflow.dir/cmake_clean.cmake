file(REMOVE_RECURSE
  "CMakeFiles/gc_workflow.dir/workflow/campaign.cpp.o"
  "CMakeFiles/gc_workflow.dir/workflow/campaign.cpp.o.d"
  "CMakeFiles/gc_workflow.dir/workflow/services.cpp.o"
  "CMakeFiles/gc_workflow.dir/workflow/services.cpp.o.d"
  "libgc_workflow.a"
  "libgc_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
