file(REMOVE_RECURSE
  "libgc_math.a"
)
