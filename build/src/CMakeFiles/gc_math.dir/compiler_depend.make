# Empty compiler generated dependencies file for gc_math.
# This may be replaced when dependencies are built.
