file(REMOVE_RECURSE
  "CMakeFiles/gc_math.dir/math/fft.cpp.o"
  "CMakeFiles/gc_math.dir/math/fft.cpp.o.d"
  "CMakeFiles/gc_math.dir/math/integrate.cpp.o"
  "CMakeFiles/gc_math.dir/math/integrate.cpp.o.d"
  "libgc_math.a"
  "libgc_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
