file(REMOVE_RECURSE
  "libgc_tree.a"
)
