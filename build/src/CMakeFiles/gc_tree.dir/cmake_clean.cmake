file(REMOVE_RECURSE
  "CMakeFiles/gc_tree.dir/tree/treemaker.cpp.o"
  "CMakeFiles/gc_tree.dir/tree/treemaker.cpp.o.d"
  "libgc_tree.a"
  "libgc_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
