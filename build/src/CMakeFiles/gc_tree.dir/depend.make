# Empty dependencies file for gc_tree.
# This may be replaced when dependencies are built.
