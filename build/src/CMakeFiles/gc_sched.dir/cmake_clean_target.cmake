file(REMOVE_RECURSE
  "libgc_sched.a"
)
