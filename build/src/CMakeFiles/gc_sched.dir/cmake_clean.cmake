file(REMOVE_RECURSE
  "CMakeFiles/gc_sched.dir/sched/estimation.cpp.o"
  "CMakeFiles/gc_sched.dir/sched/estimation.cpp.o.d"
  "CMakeFiles/gc_sched.dir/sched/policy.cpp.o"
  "CMakeFiles/gc_sched.dir/sched/policy.cpp.o.d"
  "libgc_sched.a"
  "libgc_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
