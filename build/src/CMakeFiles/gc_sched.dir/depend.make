# Empty dependencies file for gc_sched.
# This may be replaced when dependencies are built.
