file(REMOVE_RECURSE
  "libgc_des.a"
)
