file(REMOVE_RECURSE
  "CMakeFiles/gc_des.dir/des/engine.cpp.o"
  "CMakeFiles/gc_des.dir/des/engine.cpp.o.d"
  "CMakeFiles/gc_des.dir/des/link.cpp.o"
  "CMakeFiles/gc_des.dir/des/link.cpp.o.d"
  "CMakeFiles/gc_des.dir/des/resource.cpp.o"
  "CMakeFiles/gc_des.dir/des/resource.cpp.o.d"
  "libgc_des.a"
  "libgc_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
