# Empty compiler generated dependencies file for gc_des.
# This may be replaced when dependencies are built.
