
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/des/engine.cpp" "src/CMakeFiles/gc_des.dir/des/engine.cpp.o" "gcc" "src/CMakeFiles/gc_des.dir/des/engine.cpp.o.d"
  "/root/repo/src/des/link.cpp" "src/CMakeFiles/gc_des.dir/des/link.cpp.o" "gcc" "src/CMakeFiles/gc_des.dir/des/link.cpp.o.d"
  "/root/repo/src/des/resource.cpp" "src/CMakeFiles/gc_des.dir/des/resource.cpp.o" "gcc" "src/CMakeFiles/gc_des.dir/des/resource.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
