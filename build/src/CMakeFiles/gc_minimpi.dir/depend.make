# Empty dependencies file for gc_minimpi.
# This may be replaced when dependencies are built.
