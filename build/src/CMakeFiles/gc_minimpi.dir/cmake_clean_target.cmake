file(REMOVE_RECURSE
  "libgc_minimpi.a"
)
