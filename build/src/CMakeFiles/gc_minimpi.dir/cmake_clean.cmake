file(REMOVE_RECURSE
  "CMakeFiles/gc_minimpi.dir/minimpi/comm.cpp.o"
  "CMakeFiles/gc_minimpi.dir/minimpi/comm.cpp.o.d"
  "libgc_minimpi.a"
  "libgc_minimpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_minimpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
