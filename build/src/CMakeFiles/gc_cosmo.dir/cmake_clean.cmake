file(REMOVE_RECURSE
  "CMakeFiles/gc_cosmo.dir/cosmo/cosmology.cpp.o"
  "CMakeFiles/gc_cosmo.dir/cosmo/cosmology.cpp.o.d"
  "CMakeFiles/gc_cosmo.dir/cosmo/massfunction.cpp.o"
  "CMakeFiles/gc_cosmo.dir/cosmo/massfunction.cpp.o.d"
  "CMakeFiles/gc_cosmo.dir/cosmo/power.cpp.o"
  "CMakeFiles/gc_cosmo.dir/cosmo/power.cpp.o.d"
  "libgc_cosmo.a"
  "libgc_cosmo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_cosmo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
