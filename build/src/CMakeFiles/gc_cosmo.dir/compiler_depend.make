# Empty compiler generated dependencies file for gc_cosmo.
# This may be replaced when dependencies are built.
