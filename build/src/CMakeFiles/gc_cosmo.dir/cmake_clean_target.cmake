file(REMOVE_RECURSE
  "libgc_cosmo.a"
)
