
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cosmo/cosmology.cpp" "src/CMakeFiles/gc_cosmo.dir/cosmo/cosmology.cpp.o" "gcc" "src/CMakeFiles/gc_cosmo.dir/cosmo/cosmology.cpp.o.d"
  "/root/repo/src/cosmo/massfunction.cpp" "src/CMakeFiles/gc_cosmo.dir/cosmo/massfunction.cpp.o" "gcc" "src/CMakeFiles/gc_cosmo.dir/cosmo/massfunction.cpp.o.d"
  "/root/repo/src/cosmo/power.cpp" "src/CMakeFiles/gc_cosmo.dir/cosmo/power.cpp.o" "gcc" "src/CMakeFiles/gc_cosmo.dir/cosmo/power.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gc_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
