file(REMOVE_RECURSE
  "libgc_platform.a"
)
