# Empty compiler generated dependencies file for gc_platform.
# This may be replaced when dependencies are built.
