file(REMOVE_RECURSE
  "CMakeFiles/gc_platform.dir/platform/cost_model.cpp.o"
  "CMakeFiles/gc_platform.dir/platform/cost_model.cpp.o.d"
  "CMakeFiles/gc_platform.dir/platform/grid5000.cpp.o"
  "CMakeFiles/gc_platform.dir/platform/grid5000.cpp.o.d"
  "CMakeFiles/gc_platform.dir/platform/machine.cpp.o"
  "CMakeFiles/gc_platform.dir/platform/machine.cpp.o.d"
  "CMakeFiles/gc_platform.dir/platform/platform.cpp.o"
  "CMakeFiles/gc_platform.dir/platform/platform.cpp.o.d"
  "libgc_platform.a"
  "libgc_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
