
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/cost_model.cpp" "src/CMakeFiles/gc_platform.dir/platform/cost_model.cpp.o" "gcc" "src/CMakeFiles/gc_platform.dir/platform/cost_model.cpp.o.d"
  "/root/repo/src/platform/grid5000.cpp" "src/CMakeFiles/gc_platform.dir/platform/grid5000.cpp.o" "gcc" "src/CMakeFiles/gc_platform.dir/platform/grid5000.cpp.o.d"
  "/root/repo/src/platform/machine.cpp" "src/CMakeFiles/gc_platform.dir/platform/machine.cpp.o" "gcc" "src/CMakeFiles/gc_platform.dir/platform/machine.cpp.o.d"
  "/root/repo/src/platform/platform.cpp" "src/CMakeFiles/gc_platform.dir/platform/platform.cpp.o" "gcc" "src/CMakeFiles/gc_platform.dir/platform/platform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gc_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
