file(REMOVE_RECURSE
  "CMakeFiles/gc_halo.dir/halo/halomaker.cpp.o"
  "CMakeFiles/gc_halo.dir/halo/halomaker.cpp.o.d"
  "CMakeFiles/gc_halo.dir/halo/overdensity.cpp.o"
  "CMakeFiles/gc_halo.dir/halo/overdensity.cpp.o.d"
  "libgc_halo.a"
  "libgc_halo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_halo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
