file(REMOVE_RECURSE
  "libgc_halo.a"
)
