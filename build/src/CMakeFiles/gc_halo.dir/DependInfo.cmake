
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/halo/halomaker.cpp" "src/CMakeFiles/gc_halo.dir/halo/halomaker.cpp.o" "gcc" "src/CMakeFiles/gc_halo.dir/halo/halomaker.cpp.o.d"
  "/root/repo/src/halo/overdensity.cpp" "src/CMakeFiles/gc_halo.dir/halo/overdensity.cpp.o" "gcc" "src/CMakeFiles/gc_halo.dir/halo/overdensity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gc_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
