# Empty dependencies file for gc_halo.
# This may be replaced when dependencies are built.
