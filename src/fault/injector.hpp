// Deterministic per-message fault injector (the net::FaultHook impl).
//
// Every decision is drawn from a private Rng seeded by hashing the run
// seed with the message's coordinates (endpoints, type, per-stream send
// counter). Two runs of the same scenario therefore tamper with exactly
// the same messages even in RealEnv, where wall-clock timing differs —
// the decision depends only on *which* message this is, never on when it
// was sent or what was decided before it.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_set>

#include "fault/plan.hpp"
#include "net/fault.hpp"

namespace gc::fault {

/// Counters for the end-of-run fault summary. Atomics because RealEnv may
/// consult the hook from multiple threads.
struct InjectorStats {
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> duplicated{0};
  std::atomic<std::uint64_t> delayed{0};
};

class Injector final : public net::FaultHook {
 public:
  Injector(const FaultPlan& plan, std::uint64_t seed)
      : plan_(plan), seed_(seed) {}

  net::FaultDecision on_message(SimTime now, net::NodeId src, net::NodeId dst,
                                const net::Envelope& envelope,
                                std::uint64_t stream_seq) override;

  /// Partitions a node: every message into or out of it is dropped until
  /// heal(). Models a WAN link cut, so unlike a crash the process itself
  /// keeps running (and keeps its state) throughout.
  void isolate(net::NodeId node);
  void heal(net::NodeId node);

  [[nodiscard]] const InjectorStats& stats() const { return stats_; }

 private:
  const FaultPlan plan_;
  const std::uint64_t seed_;
  InjectorStats stats_;
  mutable std::mutex mutex_;  ///< guards isolated_ (RealEnv is threaded)
  std::unordered_set<net::NodeId> isolated_;
};

}  // namespace gc::fault
