#include "fault/plan.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <unordered_set>

#include "common/rng.hpp"
#include "common/strings.hpp"

namespace gc::fault {

namespace {

/// The named starting points; overrides then adjust individual knobs.
Result<FaultPlan> preset(const std::string& name) {
  FaultPlan plan;
  if (name == "none") return plan;
  plan.active = true;
  if (name == "drop-only") {
    plan.drop_rate = 0.05;
    plan.duplicate_rate = 0.02;
    plan.delay_rate = 0.05;
    return plan;
  }
  if (name == "crash-only") {
    plan.sed_crash_fraction = 0.3;
    plan.sed_restart_fraction = 0.5;
    return plan;
  }
  if (name == "mixed") {
    plan.drop_rate = 0.05;
    plan.duplicate_rate = 0.02;
    plan.delay_rate = 0.05;
    plan.sed_crash_fraction = 0.3;
    plan.sed_restart_fraction = 0.5;
    plan.isolations = 1;
    return plan;
  }
  return make_error(ErrorCode::kInvalidArgument,
                    "unknown fault plan preset '" + name +
                        "' (want none, drop-only, crash-only, or mixed)");
}

Status apply_override(FaultPlan& plan, const std::string& key,
                      const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return make_error(ErrorCode::kInvalidArgument,
                      "fault plan: bad value '" + value + "' for " + key);
  }
  if (key == "drop") plan.drop_rate = v;
  else if (key == "dup") plan.duplicate_rate = v;
  else if (key == "delay") plan.delay_rate = v;
  else if (key == "delay_mean_s") plan.delay_mean_s = v;
  else if (key == "dup_lag_s") plan.dup_lag_s = v;
  else if (key == "from_s") plan.message_faults_from_s = v;
  else if (key == "crash") plan.sed_crash_fraction = v;
  else if (key == "restart") plan.sed_restart_fraction = v;
  else if (key == "restart_delay_s") plan.sed_restart_delay_s = v;
  else if (key == "la_deaths") plan.la_deaths = static_cast<int>(v);
  else if (key == "isolations") plan.isolations = static_cast<int>(v);
  else if (key == "window_from_s") plan.fault_window_from_s = v;
  else if (key == "window_to_s") plan.fault_window_to_s = v;
  else if (key == "max_attempts") plan.max_attempts = static_cast<int>(v);
  else if (key == "attempt_timeout_s") plan.attempt_timeout_s = v;
  else if (key == "backoff_base_s") plan.backoff_base_s = v;
  else if (key == "backoff_mult") plan.backoff_mult = v;
  else if (key == "heartbeat_period_s") plan.heartbeat_period_s = v;
  else if (key == "heartbeat_timeout_s") plan.heartbeat_timeout_s = v;
  else {
    return make_error(ErrorCode::kInvalidArgument,
                      "fault plan: unknown key '" + key + "'");
  }
  return Status::ok();
}

/// Draws `count` distinct indices in [0, n), skipping `taken`, in a
/// deterministic order.
std::vector<int> draw_distinct(Rng& rng, int count, int n,
                               std::unordered_set<int>& taken) {
  std::vector<int> out;
  while (static_cast<int>(out.size()) < count &&
         static_cast<int>(taken.size()) < n) {
    const int pick = static_cast<int>(rng.uniform_u64(
        static_cast<std::uint64_t>(n)));
    if (taken.insert(pick).second) out.push_back(pick);
  }
  return out;
}

}  // namespace

std::string FaultPlan::to_string() const {
  if (!active) return "none";
  std::string out = "plan";
  const auto add = [&out](const char* key, double v) {
    out += strformat(",%s=%g", key, v);
  };
  add("drop", drop_rate);
  add("dup", duplicate_rate);
  add("delay", delay_rate);
  add("delay_mean_s", delay_mean_s);
  add("crash", sed_crash_fraction);
  add("restart", sed_restart_fraction);
  add("la_deaths", la_deaths);
  add("isolations", isolations);
  add("max_attempts", max_attempts);
  return out;
}

Result<FaultPlan> parse_plan(const std::string& text) {
  const std::vector<std::string> parts = split(text, ',');
  if (parts.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "empty fault plan");
  }
  Result<FaultPlan> base = preset(std::string(trim(parts[0])));
  if (!base.is_ok()) return base;
  FaultPlan plan = base.value();
  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::string part(trim(parts[i]));
    if (part.empty()) continue;
    const std::size_t eq = part.find('=');
    if (eq == std::string::npos) {
      return make_error(ErrorCode::kInvalidArgument,
                        "fault plan: expected key=value, got '" + part + "'");
    }
    const std::string key = part.substr(0, eq);
    const std::string value = part.substr(eq + 1);
    const Status applied = apply_override(plan, key, value);
    if (!applied.is_ok()) return applied;
  }
  return plan;
}

std::vector<ProcessFault> materialize(const FaultPlan& plan, int sed_count,
                                      int la_count, std::uint64_t seed) {
  std::vector<ProcessFault> schedule;
  if (!plan.active || sed_count <= 0) return schedule;
  // The schedule stream is independent of the per-message stream (see
  // Injector) so adding message faults never reshuffles the crash victims.
  Rng rng(seed ^ 0x5c5c5c5c5c5c5c5cULL);
  const auto draw_time = [&rng, &plan] {
    return plan.fault_window_from_s +
           rng.uniform() *
               (plan.fault_window_to_s - plan.fault_window_from_s);
  };

  std::unordered_set<int> taken;  // SEDs already victimized
  const int crashes = static_cast<int>(
      std::ceil(plan.sed_crash_fraction * static_cast<double>(sed_count)));
  const std::vector<int> crash_victims =
      draw_distinct(rng, crashes, sed_count, taken);
  int restarts = static_cast<int>(std::ceil(
      plan.sed_restart_fraction * static_cast<double>(crash_victims.size())));
  for (const int sed : crash_victims) {
    const SimTime at = draw_time();
    schedule.push_back({ProcessFault::Kind::kSedCrash, sed, at});
    if (restarts > 0) {
      --restarts;
      schedule.push_back({ProcessFault::Kind::kSedRestart, sed,
                          at + plan.sed_restart_delay_s});
    }
  }

  for (const int sed :
       draw_distinct(rng, plan.isolations, sed_count, taken)) {
    const SimTime at = draw_time();
    schedule.push_back({ProcessFault::Kind::kSedIsolate, sed, at});
    // Partitions heal after one restart delay: the paper's WAN outages
    // were transient, and a healed SED exercises the revival path.
    schedule.push_back({ProcessFault::Kind::kSedHeal, sed,
                        at + plan.sed_restart_delay_s});
  }

  std::unordered_set<int> taken_las;
  for (const int la :
       draw_distinct(rng, plan.la_deaths, la_count, taken_las)) {
    schedule.push_back({ProcessFault::Kind::kLaDeath, la, draw_time()});
  }

  std::sort(schedule.begin(), schedule.end(),
            [](const ProcessFault& a, const ProcessFault& b) {
              if (a.at_s != b.at_s) return a.at_s < b.at_s;
              if (a.index != b.index) return a.index < b.index;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  return schedule;
}

}  // namespace gc::fault
