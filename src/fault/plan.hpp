// Fault plans: what goes wrong, how often, and when.
//
// A FaultPlan is a declarative description of a chaos experiment — message
// drop/duplicate/delay rates, link partitions, and scheduled process faults
// (SED crash, SED crash-and-restart, LA death) — plus the fault-tolerance
// knobs (retry budget, backoff, heartbeat cadence) the middleware should run
// with while the plan is active. Together with a seed it fully determines a
// run: `materialize()` expands the fractional crash rates into an explicit
// per-process schedule, and fault::Injector makes the per-message decisions,
// both from common/rng so every replay is bit-identical.
//
// Plans are spelled on the command line as
//   --fault-plan <preset>[,key=value...]
// with presets `none`, `drop-only`, `crash-only`, and `mixed` (see
// DESIGN.md "Fault model").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"

namespace gc::fault {

/// Declarative chaos experiment + the tolerance knobs to survive it.
struct FaultPlan {
  bool active = false;  ///< false = the zero-cost "none" plan

  // --- message-level faults (per message crossing the wire) ---
  double drop_rate = 0.0;       ///< P(message never delivered)
  double duplicate_rate = 0.0;  ///< P(a second copy is delivered)
  double delay_rate = 0.0;      ///< P(extra delivery delay is added)
  double delay_mean_s = 10.0;   ///< mean of the exponential extra delay
  double dup_lag_s = 1.0;       ///< how far behind the duplicate trails
  /// Messages before this virtual time are never tampered with, so
  /// deployment/registration always completes and the chaos targets the
  /// steady-state protocol, like a WAN that degrades mid-campaign.
  double message_faults_from_s = 2.0;

  // --- process faults (scheduled once per run) ---
  double sed_crash_fraction = 0.0;    ///< fraction of SEDs that crash
  double sed_restart_fraction = 0.0;  ///< fraction of crashed SEDs that return
  double sed_restart_delay_s = 600.0; ///< crash-to-restart delay
  int la_deaths = 0;                  ///< LAs killed outright (never return)
  int isolations = 0;                 ///< SEDs whose links partition instead
  double fault_window_from_s = 30.0;  ///< crashes drawn uniformly in
  double fault_window_to_s = 4.0 * kHour;  ///< [from, to)

  // --- tolerance knobs applied while the plan is active ---
  int max_attempts = 5;              ///< client tries per call (>= 1)
  double attempt_timeout_s = 8.0 * kHour;  ///< per-attempt reply deadline
  double backoff_base_s = 60.0;      ///< first retry waits this long
  double backoff_mult = 2.0;         ///< exponential backoff factor
  double heartbeat_period_s = 30.0;  ///< SED/LA -> parent cadence
  double heartbeat_timeout_s = 100.0;  ///< parent marks child dead after

  /// Canonical "preset,key=value,..." spelling (stable across versions so
  /// logs and replay scripts agree).
  [[nodiscard]] std::string to_string() const;
};

/// Parses "preset[,key=value...]" (presets: none, drop-only, crash-only,
/// mixed). Unknown presets/keys and malformed values are errors.
Result<FaultPlan> parse_plan(const std::string& text);

/// One scheduled process fault.
struct ProcessFault {
  enum class Kind { kSedCrash, kSedRestart, kLaDeath, kSedIsolate, kSedHeal };
  Kind kind;
  int index;     ///< SED index or LA index within the deployment
  SimTime at_s;  ///< virtual time of the event
};

/// Expands the plan's fractional rates into an explicit, sorted schedule
/// for a deployment of `sed_count` SEDs and `la_count` LAs. Deterministic
/// in (plan, counts, seed); victims are distinct and isolated SEDs are
/// never also crashed.
std::vector<ProcessFault> materialize(const FaultPlan& plan, int sed_count,
                                      int la_count, std::uint64_t seed);

}  // namespace gc::fault
