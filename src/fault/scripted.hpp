// Scripted, fully deterministic fault hook for bounded model-checking
// scenarios.
//
// The stochastic Injector (fault/injector.hpp) is right for chaos
// campaigns but wrong for exhaustive exploration: the model checker needs
// the *same* faults on every replayed schedule, placed by meaning ("the
// second kCallData anywhere in the run") rather than by hashed
// coordinates. A ScriptedHook holds an ordered list of rules keyed by
// message type and the global occurrence index of that type; each rule
// fires at most once. Occurrence counting is global across streams so a
// rule's target does not depend on which SED won a scheduling race —
// the faults are part of the scenario, not of the schedule.
#pragma once

#include <cstdint>
#include <vector>

#include "net/fault.hpp"

namespace gc::fault {

class ScriptedHook final : public net::FaultHook {
 public:
  struct Rule {
    std::uint32_t msg_type = 0;   ///< diet::MsgType value to match
    std::uint64_t occurrence = 1; ///< 1-based index among sends of this type
    net::FaultDecision decision;
    bool fired = false;
  };

  ScriptedHook() = default;

  /// Drops the nth occurrence of a message type.
  ScriptedHook& drop(std::uint32_t msg_type, std::uint64_t occurrence);
  /// Duplicates the nth occurrence; the copy delivers dup_lag_s after the
  /// original (0 = an exact-timestamp tie, a genuine co-enabled race).
  ScriptedHook& duplicate(std::uint32_t msg_type, std::uint64_t occurrence,
                          double dup_lag_s = 0.0);
  /// Delays the nth occurrence by extra_delay_s beyond the modeled time.
  ScriptedHook& delay(std::uint32_t msg_type, std::uint64_t occurrence,
                      double extra_delay_s);

  /// Re-arms every rule and zeroes the occurrence counters, so one hook
  /// can serve many exploration runs of the same scenario.
  void reset();

  [[nodiscard]] std::size_t rules_fired() const;

  net::FaultDecision on_message(SimTime now, net::NodeId src, net::NodeId dst,
                                const net::Envelope& envelope,
                                std::uint64_t stream_seq) override;

 private:
  std::vector<Rule> rules_;
  /// Global sends seen per message type (not per stream — see header).
  std::vector<std::uint64_t> seen_by_type_;
};

}  // namespace gc::fault
