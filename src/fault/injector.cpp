#include "fault/injector.hpp"

#include "common/rng.hpp"

namespace gc::fault {

namespace {

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash.
std::uint64_t mix(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

net::FaultDecision Injector::on_message(SimTime now, net::NodeId src,
                                        net::NodeId dst,
                                        const net::Envelope& envelope,
                                        std::uint64_t stream_seq) {
  net::FaultDecision decision;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!isolated_.empty() &&
        (isolated_.count(src) > 0 || isolated_.count(dst) > 0)) {
      decision.drop = true;
      stats_.dropped.fetch_add(1, std::memory_order_relaxed);
      return decision;
    }
  }
  if (now < plan_.message_faults_from_s) return decision;

  // One private generator per message, keyed by the message's identity:
  // endpoints, type, and its ordinal on the (from, to) stream. Decisions
  // are thus replayable and independent of global draw order.
  Rng rng(seed_ ^
          mix((static_cast<std::uint64_t>(envelope.from) << 40) ^
              (static_cast<std::uint64_t>(envelope.to) << 20) ^
              (static_cast<std::uint64_t>(envelope.type) << 56) ^
              stream_seq));
  if (plan_.drop_rate > 0.0 && rng.uniform() < plan_.drop_rate) {
    decision.drop = true;
    stats_.dropped.fetch_add(1, std::memory_order_relaxed);
  }
  if (plan_.duplicate_rate > 0.0 && rng.uniform() < plan_.duplicate_rate) {
    decision.duplicate = true;
    decision.dup_lag_s = plan_.dup_lag_s;
    stats_.duplicated.fetch_add(1, std::memory_order_relaxed);
  }
  if (!decision.drop && plan_.delay_rate > 0.0 &&
      rng.uniform() < plan_.delay_rate) {
    decision.extra_delay_s = rng.exponential(plan_.delay_mean_s);
    stats_.delayed.fetch_add(1, std::memory_order_relaxed);
  }
  return decision;
}

void Injector::isolate(net::NodeId node) {
  std::lock_guard<std::mutex> lock(mutex_);
  isolated_.insert(node);
}

void Injector::heal(net::NodeId node) {
  std::lock_guard<std::mutex> lock(mutex_);
  isolated_.erase(node);
}

}  // namespace gc::fault
