#include "fault/scripted.hpp"

#include <algorithm>

namespace gc::fault {

ScriptedHook& ScriptedHook::drop(std::uint32_t msg_type,
                                 std::uint64_t occurrence) {
  Rule rule;
  rule.msg_type = msg_type;
  rule.occurrence = occurrence;
  rule.decision.drop = true;
  rules_.push_back(rule);
  return *this;
}

ScriptedHook& ScriptedHook::duplicate(std::uint32_t msg_type,
                                      std::uint64_t occurrence,
                                      double dup_lag_s) {
  Rule rule;
  rule.msg_type = msg_type;
  rule.occurrence = occurrence;
  rule.decision.duplicate = true;
  rule.decision.dup_lag_s = dup_lag_s;
  rules_.push_back(rule);
  return *this;
}

ScriptedHook& ScriptedHook::delay(std::uint32_t msg_type,
                                  std::uint64_t occurrence,
                                  double extra_delay_s) {
  Rule rule;
  rule.msg_type = msg_type;
  rule.occurrence = occurrence;
  rule.decision.extra_delay_s = extra_delay_s;
  rules_.push_back(rule);
  return *this;
}

void ScriptedHook::reset() {
  for (Rule& rule : rules_) rule.fired = false;
  std::fill(seen_by_type_.begin(), seen_by_type_.end(), 0);
}

std::size_t ScriptedHook::rules_fired() const {
  return static_cast<std::size_t>(
      std::count_if(rules_.begin(), rules_.end(),
                    [](const Rule& rule) { return rule.fired; }));
}

net::FaultDecision ScriptedHook::on_message(SimTime /*now*/,
                                            net::NodeId /*src*/,
                                            net::NodeId /*dst*/,
                                            const net::Envelope& envelope,
                                            std::uint64_t /*stream_seq*/) {
  if (envelope.type >= seen_by_type_.size()) {
    seen_by_type_.resize(envelope.type + 1, 0);
  }
  const std::uint64_t occurrence = ++seen_by_type_[envelope.type];
  for (Rule& rule : rules_) {
    if (rule.fired || rule.msg_type != envelope.type ||
        rule.occurrence != occurrence) {
      continue;
    }
    rule.fired = true;
    return rule.decision;
  }
  return net::FaultDecision{};
}

}  // namespace gc::fault
