// DPOR model checker over the DES engine.
//
// Upgrades the PR 3 schedule fuzzer ("32 tie-break seeds passed") to
// systematic exploration: every inequivalent interleaving of a bounded
// scenario is executed exactly once, and the invariants the repo already
// asserts (at-most-once execution, FIFO delivery, heartbeat-eviction
// consistency, replica-catalog coherence, scenario end-state checks) are
// verified to hold over ALL of them, not a sample.
//
// How it plugs in — three pieces, see DESIGN.md "Model checking":
//  - decision points: the engine's controlled-scheduler seam
//    (des::Strategy) presents the tie group of co-enabled events (all
//    armed events at the minimal pending timestamp) at every step. Only
//    same-timestamp events are concurrent in a DES; an earlier event is
//    causally first by virtual time, so each tie group IS the full set of
//    schedulable alternatives.
//  - independence: two co-enabled events commute iff they have different
//    nonzero owners. An event's owner is the actor endpoint whose state
//    its handler mutates (SimEnv deliveries: the destination; timers and
//    continuations: inherited). Owner 0 (root context) is conservatively
//    dependent with everything. Same-stream FIFO never constrains a tie
//    group: SimEnv bumps same-stream deliveries apart by one ulp, so two
//    FIFO-ordered messages are never co-enabled in the first place.
//  - reduction: depth-first re-execution with sleep sets (Godefroid).
//    Each explored Mazurkiewicz trace is executed once; a branch whose
//    every enabled event sleeps is abandoned (counted as pruned).
//    Exploration is stateless — state "restoration" is deterministic
//    re-execution of the decision prefix, which doubles as the replay
//    mechanism for counterexamples.
//
// Soundness caveats (also in DESIGN.md): exhaustiveness is relative to
// the scenario's virtual-time structure. Timeout races that depend on
// *metric* time (a message arriving before vs after a timer) are only
// explored when the scenario makes the timestamps collide; distinct
// timestamps order events causally and are not permuted. That is the
// correct semantics for a DES — and the reason scenarios below zero out
// delay noise and use symmetric deployments, which maximizes collisions.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "des/engine.hpp"

namespace gc::mc {

/// A captured invariant failure (via check::set_failure_handler).
struct Violation {
  std::string what;
  std::string file;
  int line = 0;
};

/// One forced pick for replay: at the `index`-th decision point that
/// offered more than one choice, run the event with causal id `cid`.
/// Causal ids are stable across interleavings (they hash the scheduling
/// parent chain, not execution order), so a recorded decision names the
/// same logical event in every re-execution.
struct Decision {
  std::uint64_t index = 0;
  std::uint64_t cid = 0;
};

/// One multi-choice decision of an executed schedule, for trace printing.
struct Step {
  std::uint64_t index = 0;     ///< multi-choice decision ordinal
  std::uint64_t cid = 0;       ///< the event that ran
  std::uint32_t owner = 0;     ///< its owner endpoint (0 = root)
  des::EventTag tag = des::EventTag::kGeneric;
  double time = 0.0;           ///< virtual time of the tie group
  std::size_t alternatives = 0;///< size of the tie group
  std::size_t picked = 0;      ///< index picked (0 = native order)
};

/// Handed to the scenario on every (re-)execution. The scenario builds
/// its whole world against `engine` and runs it to completion; it may
/// name owner endpoints for readable counterexamples.
struct RunContext {
  des::Engine& engine;
  std::map<std::uint32_t, std::string>& owner_names;
};

/// A bounded, deterministic scenario. MUST be reproducible: same
/// decision prefix => bitwise-same execution (no wall clock, no global
/// RNG, no cross-run state). Express properties as GC_INVARIANT /
/// invariant-layer checks — the checker captures those.
using ScenarioFn = std::function<void(RunContext&)>;

struct Options {
  /// false = naive enumeration (sleep sets off); the pruning baseline.
  bool sleep_sets = true;
  /// Cap on scenario executions (complete + abandoned); 0 = unlimited.
  std::uint64_t max_executions = 0;
  /// Skip counterexample minimization (it re-executes the scenario up to
  /// once per non-default decision).
  bool minimize = true;
};

struct Result {
  std::uint64_t schedules_explored = 0;  ///< complete inequivalent runs
  std::uint64_t schedules_pruned = 0;    ///< sleep-set-suppressed branches
  std::uint64_t executions = 0;          ///< scenario (re-)executions total
  std::uint64_t decision_points = 0;     ///< multi-choice points, all runs
  std::uint64_t max_enabled = 0;         ///< widest tie group seen
  std::uint64_t cross_owner_cancels = 0; ///< independence tripwire (max/run)
  bool complete = false;                 ///< tree exhausted, no cap hit
  bool violation_found = false;
  Violation violation;
  /// Minimized forced picks that reproduce the violation via replay().
  std::vector<Decision> counterexample;
  /// The violating schedule's multi-choice decisions, in order.
  std::vector<Step> violating_schedule;
  /// Owner endpoint -> name, from the violating (or last) run.
  std::map<std::uint32_t, std::string> owner_names;
};

/// True while the checker has abandoned the current scenario execution
/// (sleep-blocked branch or a captured violation). Scenarios MUST gate
/// their end-of-run property checks on this: an abandoned run leaves a
/// half-executed world, and asserting completion properties on it would
/// record artifacts as violations.
bool current_run_aborted();

/// Explores every inequivalent schedule of `scenario` (or all schedules
/// with sleep_sets off). Stops at the first violation. Requires a
/// GC_CHECK build (the properties live in the invariant layer).
Result explore(const ScenarioFn& scenario, const Options& options = {});

/// Re-runs the scenario forcing the recorded decisions (defaults
/// elsewhere); deterministic and bit-identical run to run.
struct ReplayResult {
  bool violation_found = false;
  Violation violation;
  std::vector<Step> schedule;   ///< multi-choice decisions actually taken
  std::map<std::uint32_t, std::string> owner_names;
};
ReplayResult replay(const ScenarioFn& scenario,
                    const std::vector<Decision>& decisions);

/// Counterexample trace file: one-line header, scenario name, then one
/// `decision <index> <cid>` line per forced pick.
std::string encode_trace(const std::string& scenario_name,
                         const std::vector<Decision>& decisions);
/// Returns false on a malformed file.
bool decode_trace(const std::string& text, std::string& scenario_name,
                  std::vector<Decision>& decisions);

/// Human-readable counterexample: the violation plus the exact delivery
/// order that produced it.
std::string format_counterexample(const Result& result);

}  // namespace gc::mc
