#include "mc/scenario.hpp"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "check/invariant.hpp"
#include "common/log.hpp"
#include "diet/client.hpp"
#include "diet/deployment.hpp"
#include "diet/protocol.hpp"
#include "dtm/catalog.hpp"
#include "fault/scripted.hpp"
#include "naming/registry.hpp"
#include "net/flow.hpp"
#include "net/simenv.hpp"

namespace gc::mc {
namespace {

// ---------- services ----------

/// int -> int * 2, scalar in / scalar out, volatile.
diet::ProfileDesc double_desc() {
  diet::ProfileDesc desc("double", 0, 0, 1);
  desc.arg(0).type = diet::DataType::kScalar;
  desc.arg(0).base = diet::BaseType::kInt;
  desc.arg(1).type = diet::DataType::kScalar;
  desc.arg(1).base = diet::BaseType::kInt;
  return desc;
}

diet::SolveFn double_solve() {
  return [](diet::ServiceContext& ctx) {
    ctx.compute(
        0.05,
        [&ctx]() {
          const auto in = ctx.profile().arg(0).get_scalar<std::int32_t>();
          if (!in.is_ok()) return 1;
          ctx.profile().arg(1).set_scalar<std::int32_t>(
              in.value() * 2, diet::BaseType::kInt,
              diet::Persistence::kVolatile);
          return 0;
        },
        [&ctx](int rc) { ctx.finish(rc); });
  };
}

/// persistent vector in -> sum out; the persistent argument lands in the
/// SED data store and the hierarchy replica catalog.
diet::ProfileDesc sum_desc() {
  diet::ProfileDesc desc("sum", 0, 0, 1);
  desc.arg(0).type = diet::DataType::kVector;
  desc.arg(0).base = diet::BaseType::kDouble;
  desc.arg(1).type = diet::DataType::kScalar;
  desc.arg(1).base = diet::BaseType::kDouble;
  return desc;
}

diet::SolveFn sum_solve() {
  return [](diet::ServiceContext& ctx) {
    ctx.compute(
        0.2,
        [&ctx]() {
          const auto data = ctx.profile().arg(0).get_vector<double>();
          if (!data.is_ok()) return 1;
          double sum = 0.0;
          for (const double v : data.value()) sum += v;
          ctx.profile().arg(1).set_scalar<double>(
              sum, diet::BaseType::kDouble, diet::Persistence::kVolatile);
          return 0;
        },
        [&ctx](int rc) { ctx.finish(rc); });
  };
}

// ---------- deployment helpers ----------

/// Symmetric hierarchy: every SED has the same power, so candidates tie
/// and the MA's pick is decided by arrival order — a real race.
diet::DeploymentSpec make_spec(int las, int seds_per_la) {
  diet::DeploymentSpec spec;
  spec.ma_node = 0;
  spec.agent_tuning.delay_noise_cv = 0.0;
  spec.sed_tuning.delay_noise_cv = 0.0;
  for (int la = 0; la < las; ++la) {
    diet::DeploymentSpec::LaSpec l;
    l.name = "LA" + std::to_string(la);
    l.node = static_cast<net::NodeId>(1 + la);
    for (int s = 0; s < seds_per_la; ++s) {
      diet::DeploymentSpec::SedSpec sed;
      sed.name = "SeD" + std::to_string(la) + std::to_string(s);
      sed.node = static_cast<net::NodeId>(1 + las + la * seds_per_la + s);
      sed.host_power = 1.0;
      sed.machines = 1;
      l.sed_indexes.push_back(static_cast<int>(spec.seds.size()));
      spec.seds.push_back(sed);
    }
    spec.las.push_back(l);
  }
  return spec;
}

void name_owners(RunContext& ctx, diet::Deployment& deployment,
                 diet::Client& client) {
  ctx.owner_names[deployment.ma().endpoint()] = deployment.ma().name();
  for (std::size_t i = 0; i < deployment.la_count(); ++i) {
    ctx.owner_names[deployment.la(i).endpoint()] = deployment.la(i).name();
  }
  for (std::size_t i = 0; i < deployment.sed_count(); ++i) {
    ctx.owner_names[deployment.sed(i).endpoint()] = deployment.sed(i).name();
  }
  ctx.owner_names[client.endpoint()] = client.name();
}

/// No-lost-calls property: all `expected` calls completed, successfully.
void expect_all_completed(const diet::Client& client, int completions,
                          int expected) {
  GC_INVARIANT(completions == expected,
               "every submitted call must complete successfully "
               "(lost or failed call)");
  for (const auto& record : client.records()) {
    GC_INVARIANT(record.ok, "call record not ok: " + record.service);
  }
}

/// Catalog-coherence property: no catalog level may still attribute a
/// replica to `dead_uid`.
void expect_no_replicas_on(const dtm::ReplicaCatalog& catalog,
                           std::uint64_t dead_uid, const std::string& who) {
  for (const std::string& id : catalog.ids()) {
    const auto* replicas = catalog.locate(id);
    if (replicas == nullptr) continue;
    GC_INVARIANT(replicas->find(dead_uid) == replicas->end(),
                 who + " catalog still attributes " + id +
                     " to the evicted SED");
  }
}

// ---------- scenario bodies ----------

/// 1 MA / 1 LA / 2 symmetric SEDs; `calls` volatile calls; optional
/// scripted faults and client tuning (retries).
void small_body(RunContext& ctx, int calls, fault::ScriptedHook* hook,
                const diet::Client::Tuning& tuning) {
  net::UniformTopology topology(5e-3, 1.25e8);
  net::SimEnv env(ctx.engine, topology);
  if (hook != nullptr) env.set_fault_hook(hook);
  naming::Registry registry;
  diet::ServiceTable services;
  GC_CHECK(services.add(double_desc(), double_solve()).is_ok());

  diet::Deployment deployment(env, registry, services, make_spec(1, 2));
  diet::Client client("client", tuning);
  env.attach(client, 0);
  client.connect(registry.resolve("MA1").value());
  name_owners(ctx, deployment, client);
  ctx.engine.run_until(1.0);

  int completions = 0;
  for (int i = 0; i < calls; ++i) {
    diet::Profile profile("double", 0, 0, 1);
    profile.arg(0).set_scalar<std::int32_t>(i, diet::BaseType::kInt,
                                            diet::Persistence::kVolatile);
    profile.arg(1).desc.type = diet::DataType::kScalar;
    profile.arg(1).desc.base = diet::BaseType::kInt;
    client.call_async(std::move(profile),
                      [&completions](const gc::Status& status,
                                     diet::Profile& out) {
                        (void)out;
                        if (status.is_ok()) ++completions;
                      });
  }
  ctx.engine.run();

  if (current_run_aborted()) return;
  expect_all_completed(client, completions, calls);
}

void small_scenario(RunContext& ctx) {
  small_body(ctx, 2, nullptr, diet::Client::Tuning{});
}

void small_dup_scenario(RunContext& ctx) {
  // The first kCallData is duplicated with zero lag: both copies land in
  // one tie group and the checker runs them in every order. The SED's
  // dedup journal must execute the call exactly once either way.
  fault::ScriptedHook hook;
  hook.duplicate(diet::kCallData, 1, 0.0);
  small_body(ctx, 1, &hook, diet::Client::Tuning{});
}

void small_drop_scenario(RunContext& ctx) {
  // The first kCallResult is dropped in-network; the client's attempt
  // timer fires and the whole finding+computing phase re-runs under a
  // fresh wire id, on whichever SED wins the rescheduling race.
  fault::ScriptedHook hook;
  hook.drop(diet::kCallResult, 1);
  diet::Client::Tuning tuning;
  tuning.max_attempts = 3;
  tuning.attempt_timeout_s = 0.5;
  small_body(ctx, 1, &hook, tuning);
}

/// 1 MA / 1 LA / 2 SEDs with heartbeats; call 1 stores persistent data,
/// its SED crashes, the watchdog evicts it (dropping its replicas), it
/// heals, and call 2 completes. Properties: catalog coherence after the
/// eviction, at least one eviction, and no lost calls.
void crash_heal_scenario(RunContext& ctx) {
  net::UniformTopology topology(5e-3, 1.25e8);
  net::SimEnv env(ctx.engine, topology);
  naming::Registry registry;
  diet::ServiceTable services;
  GC_CHECK(services.add(sum_desc(), sum_solve()).is_ok());

  diet::DeploymentSpec spec = make_spec(1, 2);
  // Staggered (coprime) beacon periods: sibling heartbeats never land on
  // the LA at identical timestamps, so the explorer is not asked to
  // permute equivalent beacon arrivals for the whole run.
  spec.seds[0].heartbeat_period = 0.23;
  spec.seds[1].heartbeat_period = 0.31;
  spec.sed_tuning.data_fetch_timeout_s = 0.5;
  // The watchdog tuning is shared by the MA and the LA, so the LA must
  // beacon its parent too or the MA would evict it.
  spec.agent_tuning.heartbeat_period = 0.2;
  spec.agent_tuning.heartbeat_timeout = 0.7;
  diet::Deployment deployment(env, registry, services, spec);
  diet::Client client("client");
  env.attach(client, 0);
  client.connect(registry.resolve("MA1").value());
  name_owners(ctx, deployment, client);
  ctx.engine.run_until(1.0);

  const std::vector<double> data(64, 1.0);
  int completions = 0;
  const auto submit_sum = [&client, &data, &completions] {
    diet::Profile profile("sum", 0, 0, 1);
    profile.arg(0).set_vector<double>(data, diet::BaseType::kDouble,
                                      diet::Persistence::kPersistent);
    profile.arg(1).desc.type = diet::DataType::kScalar;
    profile.arg(1).desc.base = diet::BaseType::kDouble;
    client.call_async(std::move(profile),
                      [&completions](const gc::Status& status,
                                     diet::Profile& out) {
                        (void)out;
                        if (status.is_ok()) ++completions;
                      });
  };
  submit_sum();

  // Call 1 is done well before t=1.6 (deterministic delays); crash the
  // SED that ran it — the one holding the persistent replica.
  std::uint64_t dead_uid = 0;
  ctx.engine.schedule_at(1.6, [&deployment, &client, &dead_uid] {
    if (client.records().empty()) return;
    dead_uid = client.records()[0].sed_uid;
    diet::Sed* sed = deployment.sed_by_uid(dead_uid);
    if (sed != nullptr) sed->fail();
  });
  // Beacons stop at 1.6; the LA watchdog fires by ~2.3 and must have
  // dropped the dead SED's replicas from every catalog level.
  ctx.engine.schedule_at(2.5, [&deployment, &dead_uid] {
    if (dead_uid == 0) return;
    expect_no_replicas_on(deployment.la(0).catalog(), dead_uid, "LA0");
    expect_no_replicas_on(deployment.ma().catalog(), dead_uid, "MA");
  });
  ctx.engine.schedule_at(2.7, [&deployment, &dead_uid] {
    diet::Sed* sed = deployment.sed_by_uid(dead_uid);
    if (sed != nullptr && sed->failed()) sed->restart();
  });
  ctx.engine.schedule_at(2.8, submit_sum);
  ctx.engine.run_until(4.0);

  if (current_run_aborted()) return;
  expect_all_completed(client, completions, 2);
  GC_INVARIANT(deployment.la(0).heartbeat_evictions() >= 1,
               "the LA watchdog must have evicted the crashed SED");
}

/// 2-MA federation, 1 LA x 1 SED per shard, federate_always: call 1's
/// collect crosses the mesh and merges both shards' candidates; MA2 then
/// dies, MA1's peer watchdog ejects the whole shard, and call 2 completes
/// from the surviving shard alone. Properties: no lost calls, the
/// ejection happened, and no forward ever targets the dead peer.
void federation_crash_scenario(RunContext& ctx) {
  net::UniformTopology topology(5e-3, 1.25e8);
  net::SimEnv env(ctx.engine, topology);
  // Duplicate the peer shard's first answer with zero lag: both copies
  // land at MA1 in one tie group, and the explorer proves the per-peer
  // answer dedup (a duplicated kPeerCandidates must not double-merge the
  // peer's candidates) in every ordering.
  fault::ScriptedHook hook;
  hook.duplicate(diet::kPeerCandidates, 1, 0.0);
  env.set_fault_hook(&hook);
  naming::Registry registry;
  diet::ServiceTable services;
  GC_CHECK(services.add(double_desc(), double_solve()).is_ok());

  std::vector<diet::DeploymentSpec> shards;
  for (int s = 0; s < 2; ++s) {
    diet::DeploymentSpec spec;
    spec.ma_name = "MA" + std::to_string(s + 1);
    spec.ma_node = static_cast<net::NodeId>(10 * s + 1);
    spec.agent_tuning.delay_noise_cv = 0.0;
    spec.sed_tuning.delay_noise_cv = 0.0;
    // Staggered coprime cadences (as crash_heal): no two beacon streams
    // land at identical timestamps, so the explorer never has to permute
    // equivalent beat orderings.
    spec.agent_tuning.heartbeat_period = s == 0 ? 0.19 : 0.23;
    spec.agent_tuning.heartbeat_timeout = 0.7;
    spec.agent_tuning.federate_always = true;
    diet::DeploymentSpec::LaSpec la;
    la.name = "LA" + std::to_string(s + 1);
    la.node = static_cast<net::NodeId>(10 * s + 2);
    diet::DeploymentSpec::SedSpec sed;
    sed.name = "SeD" + std::to_string(s + 1);
    sed.node = static_cast<net::NodeId>(10 * s + 3);
    sed.host_power = 1.0;
    sed.machines = 1;
    sed.heartbeat_period = s == 0 ? 0.29 : 0.31;
    la.sed_indexes.push_back(0);
    spec.seds.push_back(sed);
    spec.las.push_back(la);
    shards.push_back(std::move(spec));
  }
  diet::Federation fed(env, registry, services, std::move(shards));
  diet::Client client("client");
  env.attach(client, 0);
  client.connect(registry.resolve("MA1").value());
  for (std::size_t s = 0; s < fed.shard_count(); ++s) {
    diet::Deployment& shard = fed.shard(s);
    ctx.owner_names[shard.ma().endpoint()] = shard.ma().name();
    ctx.owner_names[shard.la(0).endpoint()] = shard.la(0).name();
    ctx.owner_names[shard.sed(0).endpoint()] = shard.sed(0).name();
  }
  ctx.owner_names[client.endpoint()] = client.name();
  ctx.engine.run_until(1.0);

  int completions = 0;
  const auto submit_double = [&client, &completions](std::int32_t in) {
    diet::Profile profile("double", 0, 0, 1);
    profile.arg(0).set_scalar<std::int32_t>(in, diet::BaseType::kInt,
                                            diet::Persistence::kVolatile);
    profile.arg(1).desc.type = diet::DataType::kScalar;
    profile.arg(1).desc.base = diet::BaseType::kInt;
    client.call_async(std::move(profile),
                      [&completions](const gc::Status& status,
                                     diet::Profile& out) {
                        (void)out;
                        if (status.is_ok()) ++completions;
                      });
  };
  submit_double(1);  // crosses the mesh: both shards answer the collect

  // Call 1 is done well before t=1.6 (deterministic delays); kill the
  // peer shard's MA. Its beacons stop mid-stream.
  ctx.engine.schedule_at(1.6, [&fed] { fed.ma(1).fail(); });
  // MA1's watchdog (timeout 0.7) must eject the shard by ~2.4; from then
  // on the dead peer is skipped, not forwarded to.
  std::uint64_t forwards_at_eject = 0;
  ctx.engine.schedule_at(2.45, [&fed, &forwards_at_eject] {
    GC_INVARIANT(fed.ma(0).peer_stats().evictions >= 1,
                 "MA1 never ejected the dead peer shard");
    forwards_at_eject = fed.ma(0).peer_stats().forwards;
  });
  ctx.engine.schedule_at(2.5, [&submit_double] { submit_double(2); });
  ctx.engine.run_until(3.2);

  if (current_run_aborted()) return;
  expect_all_completed(client, completions, 2);
  GC_INVARIANT(fed.ma(0).peer_stats().forwards >= 1,
               "call 1 never crossed the federation mesh");
  GC_INVARIANT(fed.ma(0).peer_stats().forwards == forwards_at_eject,
               "a collect was forwarded to the ejected peer shard");
}

/// Contention flow model under the checker: 1 MA / 1 LA / 3 SEDs, one
/// persistent call with replication_factor 3. The holder's LA fans the
/// fresh value out to both siblings, whose striped WAN pulls (2 streams
/// each) race as four fluid flows on the holder's shared egress link.
/// Properties: the call completes, every SED ends up holding a replica,
/// and the stripes actually ran through the flow model — in every
/// inequivalent ordering of the racing pulls and stripe completions.
void wan_race_scenario(RunContext& ctx) {
  net::UniformTopology topology(5e-3, 1.25e8);
  net::SimEnv env(ctx.engine, topology);
  env.enable_contention(/*min_flow_bytes=*/1024);
  naming::Registry registry;
  diet::ServiceTable services;
  GC_CHECK(services.add(sum_desc(), sum_solve()).is_ok());

  diet::DeploymentSpec spec = make_spec(1, 3);
  spec.sed_tuning.replication_factor = 3;
  spec.sed_tuning.wan.streams = 2;
  spec.sed_tuning.wan.stripe_min_bytes = 4096;
  diet::Deployment deployment(env, registry, services, spec);
  diet::Client client("client");
  env.attach(client, 0);
  client.connect(registry.resolve("MA1").value());
  name_owners(ctx, deployment, client);
  ctx.engine.run_until(1.0);

  // 2048 doubles = 16 KiB on the wire: above the stripe floor, so each
  // replicate pull ships as 2 out-of-band stripes.
  const std::vector<double> data(2048, 0.5);
  int completions = 0;
  diet::Profile profile("sum", 0, 0, 1);
  profile.arg(0).set_vector<double>(data, diet::BaseType::kDouble,
                                    diet::Persistence::kPersistent);
  profile.arg(1).desc.type = diet::DataType::kScalar;
  profile.arg(1).desc.base = diet::BaseType::kDouble;
  client.call_async(std::move(profile),
                    [&completions](const gc::Status& status,
                                   diet::Profile& out) {
                      (void)out;
                      if (status.is_ok()) ++completions;
                    });
  ctx.engine.run();

  if (current_run_aborted()) return;
  expect_all_completed(client, completions, 1);
  for (std::size_t i = 0; i < deployment.sed_count(); ++i) {
    GC_INVARIANT(deployment.sed(i).data_manager().count() == 1,
                 deployment.sed(i).name() +
                     " never received its write-replica of the "
                     "persistent argument");
  }
  const net::FlowModel* flow = env.flow_model();
  GC_INVARIANT(flow != nullptr && flow->flows_completed() >= 4,
               "the replicate pulls never ran as striped flows");
}

/// 1 MA / 2 LAs / 4 symmetric SEDs, fault-free; two calls race through
/// both subtrees.
void hierarchy_scenario(RunContext& ctx) {
  net::UniformTopology topology(5e-3, 1.25e8);
  net::SimEnv env(ctx.engine, topology);
  naming::Registry registry;
  diet::ServiceTable services;
  GC_CHECK(services.add(double_desc(), double_solve()).is_ok());

  diet::Deployment deployment(env, registry, services, make_spec(2, 2));
  diet::Client client("client");
  env.attach(client, 0);
  client.connect(registry.resolve("MA1").value());
  name_owners(ctx, deployment, client);
  ctx.engine.run_until(1.0);

  int completions = 0;
  for (int i = 0; i < 2; ++i) {
    diet::Profile profile("double", 0, 0, 1);
    profile.arg(0).set_scalar<std::int32_t>(i, diet::BaseType::kInt,
                                            diet::Persistence::kVolatile);
    profile.arg(1).desc.type = diet::DataType::kScalar;
    profile.arg(1).desc.base = diet::BaseType::kInt;
    client.call_async(std::move(profile),
                      [&completions](const gc::Status& status,
                                     diet::Profile& out) {
                        (void)out;
                        if (status.is_ok()) ++completions;
                      });
  }
  ctx.engine.run();

  if (current_run_aborted()) return;
  expect_all_completed(client, completions, 2);
}

}  // namespace

const std::vector<Scenario>& scenarios() {
  static const std::vector<Scenario> all = {
      {"small", "1MA/1LA/2SED, 2 volatile calls, fault-free",
       &small_scenario},
      {"small_dup", "1MA/1LA/2SED, duplicated kCallData (same-time tie)",
       &small_dup_scenario},
      {"small_drop", "1MA/1LA/2SED, dropped kCallResult + client retries",
       &small_drop_scenario},
      {"crash_heal",
       "1MA/1LA/2SED, persistent data, SED crash -> eviction -> heal",
       &crash_heal_scenario},
      {"federation_crash",
       "2-MA federation, peer MA crash -> shard ejection, no lost calls",
       &federation_crash_scenario},
      {"hierarchy", "1MA/2LA/4SED, 2 volatile calls, fault-free",
       &hierarchy_scenario},
      {"wan_race",
       "1MA/1LA/3SED, contention on: 2 striped WAN replica pulls race on "
       "the holder's shared egress link",
       &wan_race_scenario},
  };
  return all;
}

const Scenario* find_scenario(const std::string& name) {
  for (const Scenario& scenario : scenarios()) {
    if (scenario.name == name) return &scenario;
  }
  return nullptr;
}

}  // namespace gc::mc
