#include "mc/checker.hpp"

#include <algorithm>
#include <sstream>

#include "check/invariant.hpp"

namespace gc::mc {

namespace {

/// The violation captured by the installed failure handler. The checker
/// is strictly single-threaded (one scenario execution at a time), so a
/// file-scope slot is fine; first failure wins — follow-on failures in an
/// already-inconsistent run add nothing.
struct Capture {
  bool hit = false;
  Violation violation;
} g_capture;

void capture_handler(const char* file, int line, const std::string& what) {
  if (g_capture.hit) return;
  g_capture.hit = true;
  g_capture.violation = Violation{what, file != nullptr ? file : "", line};
}

/// Independence relation: co-enabled events commute iff they belong to
/// different actors. Owner 0 is the root context (shared state) and is
/// dependent with everything.
bool independent(std::uint32_t owner_a, std::uint32_t owner_b) {
  return owner_a != owner_b && owner_a != 0 && owner_b != 0;
}

/// True once the current run was aborted (sleep-blocked branch or a
/// captured violation); scenarios consult it to skip end-of-run property
/// checks that are meaningless on a half-executed world.
bool g_run_aborted = false;

struct SleepEntry {
  std::uint64_t cid = 0;
  std::uint32_t owner = 0;
};

bool sleeping(const std::vector<SleepEntry>& sleep, std::uint64_t cid) {
  for (const SleepEntry& entry : sleep) {
    if (entry.cid == cid) return true;
  }
  return false;
}

/// One decision point on the current DFS path. Rebuilt choices on replay
/// must match `choices` exactly (the scenario-determinism contract).
struct Node {
  std::vector<des::Choice> choices;
  std::vector<bool> done;           ///< alternatives already fully explored
  std::vector<SleepEntry> sleep_in; ///< sleep set on entry to this node
  std::size_t picked = 0;
};

/// DFS explorer; also the engine Strategy for the run being executed.
class Explorer final : public des::Strategy {
 public:
  explicit Explorer(const Options& options) : options_(options) {}

  enum class RunEnd { kComplete, kSleepBlocked, kViolation };

  void begin_run() {
    depth_ = 0;
    cur_sleep_.clear();
    run_end_ = RunEnd::kComplete;
    aborted_ = false;
    g_run_aborted = false;
    g_capture.hit = false;
  }

  std::size_t pick(const std::vector<des::Choice>& choices) override {
    // Latched: once a run is abandoned, later engine.run() calls by the
    // same scenario invocation must not resume executing events.
    if (aborted_) return kAbortRun;
    if (g_capture.hit) {
      run_end_ = RunEnd::kViolation;
      return abort_run();
    }
    max_enabled_ = std::max<std::uint64_t>(max_enabled_, choices.size());
    if (depth_ < path_.size()) {
      // Replaying the decision prefix of this branch.
      Node& node = path_[depth_];
      GC_CHECK_MSG(same_choices(node.choices, choices),
                   "scenario is not deterministic: replayed decision point "
                   "offered a different tie group");
      advance_sleep(node);
      ++depth_;
      return node.picked;
    }
    // Extending the path at a fresh decision point.
    Node node;
    node.choices = choices;
    node.done.assign(choices.size(), false);
    node.sleep_in = cur_sleep_;
    if (choices.size() > 1) ++decision_points_;
    std::size_t first = choices.size();
    for (std::size_t i = 0; i < choices.size(); ++i) {
      if (!sleeping(node.sleep_in, choices[i].cid)) {
        first = i;
        break;
      }
    }
    if (first == choices.size()) {
      // Every enabled event sleeps: this branch re-orders only commuting
      // events of an already-explored trace.
      ++pruned_;
      run_end_ = RunEnd::kSleepBlocked;
      return abort_run();
    }
    node.picked = first;
    advance_sleep(node);
    path_.push_back(std::move(node));
    ++depth_;
    return first;
  }

  /// After a run: classify it, then move `picked` to the next unexplored
  /// non-sleeping alternative, popping exhausted nodes. Returns false
  /// when the whole tree is done.
  bool advance() {
    while (!path_.empty()) {
      Node& node = path_.back();
      node.done[node.picked] = true;
      std::size_t next = node.choices.size();
      for (std::size_t i = 0; i < node.choices.size(); ++i) {
        if (!node.done[i] && !sleeping(node.sleep_in, node.choices[i].cid)) {
          next = i;
          break;
        }
      }
      if (next != node.choices.size()) {
        node.picked = next;
        return true;
      }
      // Alternatives suppressed by the sleep set were never executed:
      // each is (at least) one schedule DPOR did not have to run.
      for (std::size_t i = 0; i < node.choices.size(); ++i) {
        if (!node.done[i]) ++pruned_;
      }
      path_.pop_back();
    }
    return false;
  }

  /// The multi-choice decisions of the current path (the violating run).
  [[nodiscard]] std::vector<Step> schedule_of_path() const {
    std::vector<Step> steps;
    std::uint64_t index = 0;
    for (std::size_t d = 0; d < depth_ && d < path_.size(); ++d) {
      const Node& node = path_[d];
      if (node.choices.size() < 2) continue;
      const des::Choice& chosen = node.choices[node.picked];
      steps.push_back(Step{index, chosen.cid, chosen.owner, chosen.tag,
                           chosen.time, node.choices.size(), node.picked});
      ++index;
    }
    return steps;
  }

  [[nodiscard]] RunEnd run_end() const { return run_end_; }
  [[nodiscard]] std::uint64_t pruned() const { return pruned_; }
  [[nodiscard]] std::uint64_t decision_points() const {
    return decision_points_;
  }
  [[nodiscard]] std::uint64_t max_enabled() const { return max_enabled_; }

  /// A run that ended without an engine abort can still have tripped the
  /// handler in its end-of-run checks. A sleep-blocked run stays
  /// sleep-blocked: its world is half-executed and any end-of-run failure
  /// on it is an artifact, not a property violation.
  void note_end_of_run() {
    if (run_end_ == RunEnd::kComplete && g_capture.hit) {
      run_end_ = RunEnd::kViolation;
    }
  }

 private:
  std::size_t abort_run() {
    aborted_ = true;
    g_run_aborted = true;
    return kAbortRun;
  }

  static bool same_choices(const std::vector<des::Choice>& a,
                           const std::vector<des::Choice>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].cid != b[i].cid) return false;
    }
    return true;
  }

  /// Sleep set entering the chosen event's subtree: inherited entries
  /// plus explored siblings, minus everything dependent with the chosen
  /// event (executing a dependent event wakes a sleeper).
  void advance_sleep(const Node& node) {
    const des::Choice& chosen = node.choices[node.picked];
    std::vector<SleepEntry> next;
    for (const SleepEntry& entry : node.sleep_in) {
      if (independent(entry.owner, chosen.owner)) next.push_back(entry);
    }
    if (options_.sleep_sets) {
      for (std::size_t i = 0; i < node.choices.size(); ++i) {
        if (!node.done[i]) continue;
        const des::Choice& done_choice = node.choices[i];
        if (independent(done_choice.owner, chosen.owner)) {
          next.push_back(SleepEntry{done_choice.cid, done_choice.owner});
        }
      }
    }
    cur_sleep_ = std::move(next);
  }

  Options options_;
  std::vector<Node> path_;
  std::size_t depth_ = 0;
  std::vector<SleepEntry> cur_sleep_;
  RunEnd run_end_ = RunEnd::kComplete;
  bool aborted_ = false;
  std::uint64_t pruned_ = 0;
  std::uint64_t decision_points_ = 0;
  std::uint64_t max_enabled_ = 0;
};

/// Strategy for replays: force recorded picks at their decision
/// ordinals, take the native order everywhere else, log what ran.
class ReplayStrategy final : public des::Strategy {
 public:
  explicit ReplayStrategy(const std::vector<Decision>& decisions) {
    for (const Decision& d : decisions) forced_[d.index] = d.cid;
  }

  std::size_t pick(const std::vector<des::Choice>& choices) override {
    if (g_capture.hit) {
      g_run_aborted = true;
      return kAbortRun;
    }
    if (choices.size() < 2) return 0;
    std::size_t idx = 0;
    auto it = forced_.find(seen_);
    if (it != forced_.end()) {
      for (std::size_t i = 0; i < choices.size(); ++i) {
        if (choices[i].cid == it->second) {
          idx = i;
          break;
        }
      }
    }
    log_.push_back(Step{seen_, choices[idx].cid, choices[idx].owner,
                        choices[idx].tag, choices[idx].time, choices.size(),
                        idx});
    ++seen_;
    return idx;
  }

  [[nodiscard]] const std::vector<Step>& log() const { return log_; }

 private:
  std::map<std::uint64_t, std::uint64_t> forced_;
  std::uint64_t seen_ = 0;
  std::vector<Step> log_;
};

/// Installs the capture handler for one scope; restores the default
/// print-and-abort handler on exit.
struct ScopedHandler {
  ScopedHandler() {
    g_capture.hit = false;
    check::set_failure_handler(&capture_handler);
  }
  ~ScopedHandler() { check::set_failure_handler(nullptr); }
  ScopedHandler(const ScopedHandler&) = delete;
  ScopedHandler& operator=(const ScopedHandler&) = delete;
};

ReplayResult run_once(const ScenarioFn& scenario,
                      const std::vector<Decision>& decisions) {
  ScopedHandler handler;
  ReplayStrategy strategy(decisions);
  ReplayResult result;
  g_run_aborted = false;
  des::Engine engine;
  engine.set_strategy(&strategy);
  RunContext ctx{engine, result.owner_names};
  scenario(ctx);
  engine.set_strategy(nullptr);
  result.violation_found = g_capture.hit;
  if (g_capture.hit) result.violation = g_capture.violation;
  result.schedule = strategy.log();
  return result;
}

/// Greedy linear minimization: try dropping each forced decision; keep
/// the drop when the violation still reproduces. Then one final replay
/// re-derives a self-consistent trace (indices of later decisions can
/// shift once earlier ones are dropped).
std::vector<Decision> minimize(const ScenarioFn& scenario,
                               std::vector<Decision> decisions,
                               std::uint64_t& executions) {
  for (std::size_t i = 0; i < decisions.size();) {
    std::vector<Decision> candidate = decisions;
    candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
    ++executions;
    if (run_once(scenario, candidate).violation_found) {
      decisions = std::move(candidate);
    } else {
      ++i;
    }
  }
  ++executions;
  const ReplayResult final_run = run_once(scenario, decisions);
  if (!final_run.violation_found) return decisions;  // shouldn't happen
  std::vector<Decision> derived;
  for (const Step& step : final_run.schedule) {
    if (step.picked != 0) derived.push_back(Decision{step.index, step.cid});
  }
  return derived;
}

}  // namespace

bool current_run_aborted() { return g_run_aborted; }

Result explore(const ScenarioFn& scenario, const Options& options) {
  GC_CHECK_MSG(check::kEnabled,
               "mc::explore needs a GC_CHECK build: the properties live in "
               "the invariant layer");
  Result result;
  Explorer explorer(options);
  ScopedHandler handler;
  for (;;) {
    explorer.begin_run();
    des::Engine engine;
    engine.set_strategy(&explorer);
    result.owner_names.clear();
    RunContext ctx{engine, result.owner_names};
    scenario(ctx);
    engine.set_strategy(nullptr);
    explorer.note_end_of_run();
    ++result.executions;
    result.cross_owner_cancels =
        std::max(result.cross_owner_cancels, engine.cross_owner_cancels());
    if (explorer.run_end() == Explorer::RunEnd::kViolation) {
      result.violation_found = true;
      result.violation = g_capture.violation;
      result.violating_schedule = explorer.schedule_of_path();
      std::vector<Decision> decisions;
      for (const Step& step : result.violating_schedule) {
        if (step.picked != 0) {
          decisions.push_back(Decision{step.index, step.cid});
        }
      }
      if (options.minimize) {
        decisions = minimize(scenario, std::move(decisions),
                             result.executions);
        const ReplayResult final_run = run_once(scenario, decisions);
        if (final_run.violation_found) {
          result.violation = final_run.violation;
          result.violating_schedule = final_run.schedule;
          result.owner_names = final_run.owner_names;
        }
        ++result.executions;
      }
      result.counterexample = std::move(decisions);
      break;
    }
    if (explorer.run_end() == Explorer::RunEnd::kComplete) {
      ++result.schedules_explored;
    }
    if (options.max_executions != 0 &&
        result.executions >= options.max_executions) {
      break;  // capped: complete stays false
    }
    if (!explorer.advance()) {
      result.complete = true;
      break;
    }
  }
  result.schedules_pruned = explorer.pruned();
  result.decision_points = explorer.decision_points();
  result.max_enabled = explorer.max_enabled();
  return result;
}

ReplayResult replay(const ScenarioFn& scenario,
                    const std::vector<Decision>& decisions) {
  GC_CHECK_MSG(check::kEnabled,
               "mc::replay needs a GC_CHECK build: the properties live in "
               "the invariant layer");
  return run_once(scenario, decisions);
}

std::string encode_trace(const std::string& scenario_name,
                         const std::vector<Decision>& decisions) {
  std::ostringstream out;
  out << "# gc mc counterexample v1\n";
  out << "scenario " << scenario_name << "\n";
  for (const Decision& d : decisions) {
    out << "decision " << d.index << " " << d.cid << "\n";
  }
  return out.str();
}

bool decode_trace(const std::string& text, std::string& scenario_name,
                  std::vector<Decision>& decisions) {
  std::istringstream in(text);
  std::string line;
  scenario_name.clear();
  decisions.clear();
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword == "scenario") {
      fields >> scenario_name;
    } else if (keyword == "decision") {
      Decision d;
      fields >> d.index >> d.cid;
      if (fields.fail()) return false;
      decisions.push_back(d);
    } else {
      return false;
    }
  }
  return !scenario_name.empty();
}

std::string format_counterexample(const Result& result) {
  std::ostringstream out;
  if (!result.violation_found) {
    out << "no violation\n";
    return out.str();
  }
  out << "VIOLATION: " << result.violation.what << "\n";
  if (!result.violation.file.empty()) {
    out << "  at " << result.violation.file << ":" << result.violation.line
        << "\n";
  }
  out << "schedule (" << result.violating_schedule.size()
      << " racing decisions; unlisted steps take the default order):\n";
  for (const Step& step : result.violating_schedule) {
    out << "  [" << step.index << "] t=" << step.time << " ran cid "
        << step.cid << " owner " << step.owner;
    auto name = result.owner_names.find(step.owner);
    if (name != result.owner_names.end()) out << " (" << name->second << ")";
    out << " tag " << des::event_tag_name(step.tag) << " [picked "
        << step.picked << " of " << step.alternatives << "]";
    if (step.picked != 0) out << "  <-- forced";
    out << "\n";
  }
  return out.str();
}

}  // namespace gc::mc
