// Order-independent hash of the observability trace.
//
// Span ids and record order legitimately permute across tie-break seeds
// and schedules (they are allocation-order artifacts), so each span is
// reduced to its topology tuple (phase, name, track, trace id, parent's
// NAME, ts, dur, args) and the per-tuple hashes combine commutatively.
// Shared by the schedule fuzzer (tie-break invariance) and anything that
// wants to compare runs for observational equivalence.
#pragma once

#include <cstdint>

namespace gc::mc {

/// Hashes the global obs::Tracer's current event buffer.
std::uint64_t trace_topology_hash();

}  // namespace gc::mc
