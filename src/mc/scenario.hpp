// Bounded DIET scenarios for the model checker.
//
// Each scenario builds a full middleware deployment against the run's
// fresh engine, drives a short workload (possibly under scripted faults),
// and states its properties as GC_INVARIANT checks — which the checker's
// failure handler captures. Scenarios are deliberately deterministic:
// every delay-noise CV is zeroed and SEDs are symmetric, so the only
// degrees of freedom are genuine scheduling races (same-timestamp tie
// groups), which is exactly the space mc::explore enumerates.
#pragma once

#include <string>
#include <vector>

#include "mc/checker.hpp"

namespace gc::mc {

struct Scenario {
  std::string name;
  std::string description;
  ScenarioFn fn;
};

/// The named scenarios mc_explore (and the tests) can run, in listing
/// order. All are bounded and safe for exhaustive exploration.
const std::vector<Scenario>& scenarios();

/// nullptr when no scenario has that name.
const Scenario* find_scenario(const std::string& name);

}  // namespace gc::mc
