#include "mc/tracehash.hpp"

#include <map>
#include <string>
#include <vector>

#include "check/statehash.hpp"
#include "obs/trace.hpp"

namespace gc::mc {

std::uint64_t trace_topology_hash() {
  const std::vector<obs::TraceEvent> events = obs::Tracer::instance().events();
  std::map<obs::SpanId, std::string> span_names;
  for (const auto& ev : events) {
    if (ev.span_id != 0) span_names[ev.span_id] = ev.name;
  }
  check::MultisetHash multiset;
  for (const auto& ev : events) {
    check::Fnv f;
    f.u64(static_cast<std::uint64_t>(ev.phase));
    f.str(ev.name);
    f.str(ev.track);
    f.u64(ev.trace_id);
    const auto parent = span_names.find(ev.parent_span);
    f.str(parent == span_names.end() ? std::string() : parent->second);
    f.d(ev.ts);
    f.d(ev.dur);
    f.u64(ev.args.size());
    for (const auto& [key, value] : ev.args) {
      f.str(key);
      f.str(value);
    }
    multiset.add(f.h);
  }
  return multiset.finish();
}

}  // namespace gc::mc
