#include "galaxy/galaxymaker.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "io/fortran.hpp"

namespace gc::galaxy {

std::vector<GalaxyCatalog> run_sam(const tree::MergerForest& forest,
                                   const cosmo::Cosmology& cosmology,
                                   const SamParams& params) {
  const auto& nodes = forest.nodes();
  std::vector<Galaxy> galaxy_of(nodes.size());

  std::vector<GalaxyCatalog> catalogs;
  catalogs.reserve(forest.by_snapshot().size());

  for (std::size_t s = 0; s < forest.by_snapshot().size(); ++s) {
    GalaxyCatalog catalog;
    for (const std::int32_t ni : forest.by_snapshot()[s]) {
      const tree::TreeNode& node = nodes[static_cast<std::size_t>(ni)];
      Galaxy g;
      g.node = ni;
      g.halo_id = node.halo_id;
      g.snapshot = node.snapshot;
      g.aexp = node.aexp;
      g.halo_mass = node.mass;

      // Inherit from progenitors (merging adds components).
      double prog_mass = 0.0;
      double dt = 0.0;  // time since main progenitor, in 1/H0
      for (const std::int32_t p : node.progenitors) {
        const Galaxy& prog = galaxy_of[static_cast<std::size_t>(p)];
        g.mhot += prog.mhot;
        g.mcold += prog.mcold;
        g.mstar += prog.mstar;
        g.n_mergers += prog.n_mergers;
        prog_mass += prog.halo_mass;
      }
      if (node.progenitors.size() >= 2) {
        g.n_mergers += static_cast<std::int32_t>(node.progenitors.size()) - 1;
      }
      if (node.main_progenitor >= 0) {
        const tree::TreeNode& main =
            nodes[static_cast<std::size_t>(node.main_progenitor)];
        dt = cosmology.age(node.aexp) - cosmology.age(main.aexp);
      } else {
        // Newly formed halo: give it half a dynamical time of history.
        dt = 0.5 * params.disc_tdyn_fraction * cosmology.efunc(node.aexp);
      }

      // Smooth accretion: the baryon share of newly acquired dark matter
      // arrives hot.
      const double accreted = std::max(0.0, node.mass - prog_mass);
      g.mhot += params.baryon_fraction * accreted;

      // Evolution over dt: cooling, star formation, feedback.
      // t_dyn = fraction / H(a); rates are per t_dyn. All times in 1/H0.
      const double tdyn =
          params.disc_tdyn_fraction / cosmology.efunc(node.aexp);
      const double steps = std::max(1.0, dt / tdyn);
      // Integrate with an implicit-Euler-flavoured closed form per
      // channel: exponential transfer fractions keep masses positive for
      // any dt.
      const double cool_frac =
          1.0 - std::exp(-params.cooling_efficiency * steps);
      const double cooled = g.mhot * cool_frac;
      g.mhot -= cooled;
      g.mcold += cooled;

      const double sf_frac =
          1.0 - std::exp(-params.star_formation_eff * steps);
      const double formed_total = g.mcold * sf_frac;
      // Of the gas leaving the cold phase, a fraction
      // 1/(1+feedback) becomes stars; the rest is reheated to hot.
      const double to_stars = formed_total / (1.0 + params.feedback_efficiency);
      const double reheated = formed_total - to_stars;
      g.mcold -= formed_total;
      g.mstar += to_stars;
      g.mhot += reheated;
      g.sfr = dt > 0.0 ? to_stars / dt : 0.0;

      galaxy_of[static_cast<std::size_t>(ni)] = g;
      catalog.aexp = node.aexp;
      catalog.galaxies.push_back(g);
    }
    catalogs.push_back(std::move(catalog));
  }
  return catalogs;
}

std::string catalog_to_text(const GalaxyCatalog& catalog) {
  std::string out = strformat(
      "# galaxy catalog: aexp=%.4f ngal=%zu\n"
      "# halo_id halo_mass mstar mcold mhot sfr n_mergers\n",
      catalog.aexp, catalog.galaxies.size());
  for (const Galaxy& g : catalog.galaxies) {
    out += strformat("%llu %.6e %.6e %.6e %.6e %.6e %d\n",
                     static_cast<unsigned long long>(g.halo_id), g.halo_mass,
                     g.mstar, g.mcold, g.mhot, g.sfr, g.n_mergers);
  }
  return out;
}

gc::Status write_catalog(const std::string& path,
                         const GalaxyCatalog& catalog) {
  io::FortranWriter writer(path);
  if (!writer.ok()) {
    return make_error(ErrorCode::kIoError, "cannot create " + path);
  }
  struct Header {
    double aexp;
    std::uint64_t count;
  } header{catalog.aexp, catalog.galaxies.size()};
  auto status = writer.record_scalar(header);
  if (status.is_ok() && !catalog.galaxies.empty()) {
    status = writer.record_array(std::span<const Galaxy>(
        catalog.galaxies.data(), catalog.galaxies.size()));
  }
  if (status.is_ok()) status = writer.close();
  return status;
}

gc::Result<GalaxyCatalog> read_catalog(const std::string& path) {
  io::FortranReader reader(path);
  if (!reader.ok()) {
    return make_error(ErrorCode::kIoError, "cannot open " + path);
  }
  struct Header {
    double aexp;
    std::uint64_t count;
  };
  auto header = reader.record_scalar<Header>();
  if (!header.is_ok()) return header.status();
  GalaxyCatalog catalog;
  catalog.aexp = header.value().aexp;
  if (header.value().count > 0) {
    auto rows = reader.record_array<Galaxy>();
    if (!rows.is_ok()) return rows.status();
    if (rows.value().size() != header.value().count) {
      return make_error(ErrorCode::kIoError, "galaxy count mismatch");
    }
    catalog.galaxies = std::move(rows.value());
  }
  return catalog;
}

}  // namespace gc::galaxy
