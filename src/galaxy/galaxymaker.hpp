// GalaxyMaker: semi-analytic galaxy formation on merger trees.
//
// "GalaxyMaker: applies a semi-analytical model to the results of
// TreeMaker to form galaxies, and creates a catalog of galaxies"
// (Section 3). The recipe is the classic GALICS-style minimal SAM:
//   - each new halo receives its cosmic baryon share as hot gas;
//   - hot gas cools onto the disc at a halo-mass-dependent efficiency;
//   - stars form from cold gas on a dynamical time;
//   - supernova feedback reheats part of the cold gas;
//   - when halos merge, their galaxies merge (stars and gas add).
// Walking the forest in time order makes each galaxy's history follow its
// halo's merger tree.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "cosmo/cosmology.hpp"
#include "tree/treemaker.hpp"

namespace gc::galaxy {

struct SamParams {
  double baryon_fraction = 0.16;     ///< Omega_b / Omega_m
  double cooling_efficiency = 0.5;   ///< hot -> cold per dynamical time
  double star_formation_eff = 0.10;  ///< cold -> stars per dynamical time
  double feedback_efficiency = 0.3;  ///< reheated mass per stellar mass formed
  double disc_tdyn_fraction = 0.02;  ///< t_dyn = fraction / H(a)
};

struct Galaxy {
  std::int32_t node = -1;      ///< forest node this galaxy lives in
  std::uint64_t halo_id = 0;
  std::int32_t snapshot = 0;
  double aexp = 0.0;
  double halo_mass = 0.0;  ///< box-mass units, as in the halo catalog
  double mhot = 0.0;       ///< hot gas (same units)
  double mcold = 0.0;      ///< cold disc gas
  double mstar = 0.0;      ///< stars
  double sfr = 0.0;        ///< star formation rate, mass units per 1/H0
  std::int32_t n_mergers = 0;  ///< cumulative merger count in its history
};

struct GalaxyCatalog {
  double aexp = 0.0;
  std::vector<Galaxy> galaxies;  ///< one per halo at that snapshot
};

/// Runs the SAM over the whole forest; returns one catalog per snapshot.
std::vector<GalaxyCatalog> run_sam(const tree::MergerForest& forest,
                                   const cosmo::Cosmology& cosmology,
                                   const SamParams& params = {});

/// Text form (one galaxy per line) for the result tarball.
std::string catalog_to_text(const GalaxyCatalog& catalog);

gc::Status write_catalog(const std::string& path,
                         const GalaxyCatalog& catalog);
gc::Result<GalaxyCatalog> read_catalog(const std::string& path);

}  // namespace gc::galaxy
