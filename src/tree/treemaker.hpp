// TreeMaker: merger tree construction.
//
// "TreeMaker: given the catalog of halos, TreeMaker builds a merger tree:
// it follows the position, the mass, the velocity of the different
// particules present in the halos through cosmic time" (Section 3).
//
// Halos in consecutive snapshots are linked by shared particle ids: the
// descendant of a halo is the halo in the next catalog holding the
// largest number of its particles. A node may have many progenitors
// (mergers) but one descendant.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "halo/halomaker.hpp"

namespace gc::tree {

struct TreeNode {
  std::int32_t snapshot = 0;   ///< index into the catalog sequence
  std::uint64_t halo_id = 0;   ///< id within that snapshot's catalog
  double aexp = 0.0;
  double mass = 0.0;
  std::size_t npart = 0;
  double x = 0.0, y = 0.0, z = 0.0;
  double vx = 0.0, vy = 0.0, vz = 0.0;

  std::int32_t descendant = -1;       ///< node index, -1 at the final time
  std::int32_t main_progenitor = -1;  ///< heaviest progenitor node
  std::vector<std::int32_t> progenitors;
};

class MergerForest {
 public:
  [[nodiscard]] const std::vector<TreeNode>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<std::vector<std::int32_t>>& by_snapshot()
      const {
    return by_snapshot_;
  }

  /// Final-snapshot nodes (the z ~ 0 halos whose histories the SAM walks).
  [[nodiscard]] std::vector<std::int32_t> roots() const;

  /// Main branch of a node, walking main progenitors back in time
  /// (node itself first).
  [[nodiscard]] std::vector<std::int32_t> main_branch(std::int32_t node) const;

  /// Number of merger events (nodes with >= 2 progenitors).
  [[nodiscard]] std::size_t merger_count() const;

  /// Structural invariants (descendant/progenitor symmetry, time ordering).
  [[nodiscard]] bool check_invariants() const;

  /// Rebuilds a forest from a node list (descendant links must be
  /// consistent); used by the tree reader.
  static MergerForest from_nodes(std::vector<TreeNode> nodes);

 private:
  friend MergerForest build_forest(const std::vector<halo::HaloCatalog>&);
  std::vector<TreeNode> nodes_;
  std::vector<std::vector<std::int32_t>> by_snapshot_;
};

/// Builds the forest from catalogs ordered by increasing aexp.
MergerForest build_forest(const std::vector<halo::HaloCatalog>& catalogs);

/// Tree file I/O (Fortran records).
gc::Status write_forest(const std::string& path, const MergerForest& forest);
gc::Result<MergerForest> read_forest(const std::string& path);

}  // namespace gc::tree
