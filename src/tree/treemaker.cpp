#include "tree/treemaker.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/log.hpp"
#include "io/fortran.hpp"

namespace gc::tree {

std::vector<std::int32_t> MergerForest::roots() const {
  if (by_snapshot_.empty()) return {};
  return by_snapshot_.back();
}

std::vector<std::int32_t> MergerForest::main_branch(std::int32_t node) const {
  std::vector<std::int32_t> branch;
  while (node >= 0) {
    branch.push_back(node);
    node = nodes_[static_cast<std::size_t>(node)].main_progenitor;
  }
  return branch;
}

std::size_t MergerForest::merger_count() const {
  std::size_t count = 0;
  for (const TreeNode& node : nodes_) {
    if (node.progenitors.size() >= 2) ++count;
  }
  return count;
}

bool MergerForest::check_invariants() const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const TreeNode& node = nodes_[i];
    if (node.descendant >= 0) {
      const TreeNode& desc = nodes_[static_cast<std::size_t>(node.descendant)];
      if (desc.snapshot != node.snapshot + 1) return false;
      const auto& progs = desc.progenitors;
      if (std::find(progs.begin(), progs.end(),
                    static_cast<std::int32_t>(i)) == progs.end()) {
        return false;
      }
    }
    if (node.main_progenitor >= 0) {
      const auto& progs = node.progenitors;
      if (std::find(progs.begin(), progs.end(), node.main_progenitor) ==
          progs.end()) {
        return false;
      }
    } else if (!node.progenitors.empty()) {
      return false;
    }
    for (const std::int32_t p : node.progenitors) {
      if (nodes_[static_cast<std::size_t>(p)].descendant !=
          static_cast<std::int32_t>(i)) {
        return false;
      }
    }
  }
  return true;
}

MergerForest MergerForest::from_nodes(std::vector<TreeNode> nodes) {
  MergerForest forest;
  forest.nodes_ = std::move(nodes);
  std::int32_t max_snapshot = -1;
  for (const TreeNode& node : forest.nodes_) {
    max_snapshot = std::max(max_snapshot, node.snapshot);
  }
  forest.by_snapshot_.assign(static_cast<std::size_t>(max_snapshot) + 1, {});
  for (std::size_t i = 0; i < forest.nodes_.size(); ++i) {
    forest.by_snapshot_[static_cast<std::size_t>(forest.nodes_[i].snapshot)]
        .push_back(static_cast<std::int32_t>(i));
  }
  return forest;
}

MergerForest build_forest(const std::vector<halo::HaloCatalog>& catalogs) {
  MergerForest forest;
  forest.by_snapshot_.resize(catalogs.size());

  // Create nodes.
  for (std::size_t s = 0; s < catalogs.size(); ++s) {
    for (const halo::Halo& halo : catalogs[s].halos) {
      TreeNode node;
      node.snapshot = static_cast<std::int32_t>(s);
      node.halo_id = halo.id;
      node.aexp = catalogs[s].aexp;
      node.mass = halo.mass;
      node.npart = halo.npart;
      node.x = halo.x;
      node.y = halo.y;
      node.z = halo.z;
      node.vx = halo.vx;
      node.vy = halo.vy;
      node.vz = halo.vz;
      forest.by_snapshot_[s].push_back(
          static_cast<std::int32_t>(forest.nodes_.size()));
      forest.nodes_.push_back(std::move(node));
    }
  }

  // Link consecutive snapshots by shared particle ids.
  for (std::size_t s = 0; s + 1 < catalogs.size(); ++s) {
    // particle id -> halo index (within snapshot s+1).
    std::unordered_map<std::uint64_t, std::size_t> owner;
    for (std::size_t h = 0; h < catalogs[s + 1].halos.size(); ++h) {
      for (const std::uint64_t pid : catalogs[s + 1].halos[h].members) {
        owner[pid] = h;
      }
    }
    for (std::size_t h = 0; h < catalogs[s].halos.size(); ++h) {
      const halo::Halo& halo = catalogs[s].halos[h];
      std::unordered_map<std::size_t, std::size_t> votes;
      for (const std::uint64_t pid : halo.members) {
        auto it = owner.find(pid);
        if (it != owner.end()) votes[it->second] += 1;
      }
      if (votes.empty()) continue;  // halo dissolved
      std::size_t best = 0;
      std::size_t best_votes = 0;
      for (const auto& [candidate, count] : votes) {
        if (count > best_votes ||
            (count == best_votes && candidate < best)) {
          best = candidate;
          best_votes = count;
        }
      }
      const std::int32_t from = forest.by_snapshot_[s][h];
      const std::int32_t to = forest.by_snapshot_[s + 1][best];
      forest.nodes_[static_cast<std::size_t>(from)].descendant = to;
      forest.nodes_[static_cast<std::size_t>(to)].progenitors.push_back(from);
    }
  }

  // Main progenitor = heaviest.
  for (TreeNode& node : forest.nodes_) {
    double best_mass = -1.0;
    for (const std::int32_t p : node.progenitors) {
      const double m = forest.nodes_[static_cast<std::size_t>(p)].mass;
      if (m > best_mass) {
        best_mass = m;
        node.main_progenitor = p;
      }
    }
  }
  return forest;
}

gc::Status write_forest(const std::string& path, const MergerForest& forest) {
  io::FortranWriter writer(path);
  if (!writer.ok()) {
    return make_error(ErrorCode::kIoError, "cannot create " + path);
  }
  const std::uint64_t count = forest.nodes().size();
  auto status = writer.record_scalar(count);
  for (const TreeNode& node : forest.nodes()) {
    if (!status.is_ok()) break;
    struct Row {
      std::int32_t snapshot;
      std::int32_t descendant;
      std::int32_t main_progenitor;
      std::int32_t pad;
      std::uint64_t halo_id;
      std::uint64_t npart;
      double aexp, mass, x, y, z, vx, vy, vz;
    } row{node.snapshot,
          node.descendant,
          node.main_progenitor,
          0,
          node.halo_id,
          node.npart,
          node.aexp,
          node.mass,
          node.x,
          node.y,
          node.z,
          node.vx,
          node.vy,
          node.vz};
    status = writer.record_scalar(row);
    if (status.is_ok()) {
      status = writer.record_array(std::span<const std::int32_t>(
          node.progenitors.data(), node.progenitors.size()));
    }
  }
  if (status.is_ok()) status = writer.close();
  return status;
}

gc::Result<MergerForest> read_forest(const std::string& path) {
  io::FortranReader reader(path);
  if (!reader.ok()) {
    return make_error(ErrorCode::kIoError, "cannot open " + path);
  }
  auto count = reader.record_scalar<std::uint64_t>();
  if (!count.is_ok()) return count.status();
  std::vector<TreeNode> nodes;
  nodes.reserve(count.value());
  for (std::uint64_t i = 0; i < count.value(); ++i) {
    struct Row {
      std::int32_t snapshot;
      std::int32_t descendant;
      std::int32_t main_progenitor;
      std::int32_t pad;
      std::uint64_t halo_id;
      std::uint64_t npart;
      double aexp, mass, x, y, z, vx, vy, vz;
    };
    auto row = reader.record_scalar<Row>();
    if (!row.is_ok()) return row.status();
    auto progs = reader.record_array<std::int32_t>();
    if (!progs.is_ok()) return progs.status();
    TreeNode node;
    node.snapshot = row.value().snapshot;
    node.descendant = row.value().descendant;
    node.main_progenitor = row.value().main_progenitor;
    node.halo_id = row.value().halo_id;
    node.npart = row.value().npart;
    node.aexp = row.value().aexp;
    node.mass = row.value().mass;
    node.x = row.value().x;
    node.y = row.value().y;
    node.z = row.value().z;
    node.vx = row.value().vx;
    node.vy = row.value().vy;
    node.vz = row.value().vz;
    node.progenitors = std::move(progs.value());
    nodes.push_back(std::move(node));
  }
  return MergerForest::from_nodes(std::move(nodes));
}

}  // namespace gc::tree
