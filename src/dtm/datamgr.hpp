// Hierarchy-wide data management (DIET's DAGDA successor to the per-SED
// DTM): the server-local replica store.
//
// DIET's non-VOLATILE persistence modes keep argument data on the server
// between calls so a client can ship an id instead of the bytes:
//
//   call 1: client -> SED  full data, persistence = DIET_PERSISTENT
//           SED stores it under the argument's data id
//   call 2: client -> SED  reference (id only)
//           SED materializes the stored value before solving
//
// This store is deliberately value-agnostic: it holds opaque serialized
// blobs plus the modeled wire volume they represent, so the module sits
// below the diet layer (which owns the ArgValue codec) and above nothing
// but the codec/metrics/check foundations. The SED serializes at the
// boundary.
//
// The store is LRU-bounded by charged bytes. Eviction is catalog-
// coordinated in two ways: victims known to have replicas elsewhere (the
// replica hint) are evicted first, and every eviction fires the listener
// so the owner can unregister the id from the hierarchy catalog. A miss
// is no longer a dead end — the owner locates a surviving replica through
// the catalog and pulls it peer-to-peer (see diet/sed.cpp), with the
// client full-resend as the final fallback.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <unordered_map>

#include "check/invariant.hpp"
#include "net/codec.hpp"

namespace gc::dtm {

/// One stored value: the serialized payload plus the wire volume the
/// value represents (files charge their modeled size, not the few bytes
/// of path metadata that physically travel).
struct Blob {
  net::Bytes value;
  std::int64_t charged_bytes = 0;
};

class DataManager {
 public:
  /// max_bytes bounds the total charged_bytes of stored values (0 =
  /// unbounded); `owner` labels the diet_dtm_* metrics (empty = unmetered).
  explicit DataManager(std::int64_t max_bytes = 0, std::string owner = "")
      : max_bytes_(max_bytes), owner_(std::move(owner)) {}

  /// Stores (or refreshes) a blob under `id`. Returns true when the id
  /// was not present before (the caller registers it in the catalog).
  bool store(const std::string& id, Blob blob);

  /// Looks up a stored blob; nullptr on miss. Refreshes LRU order and
  /// counts the hit/miss.
  [[nodiscard]] const Blob* lookup(const std::string& id);

  /// True when `id` is stored; no LRU refresh, no hit/miss accounting.
  [[nodiscard]] bool contains(const std::string& id) const {
    return store_.count(id) > 0;
  }

  /// Marks `id` as replicated elsewhere in the hierarchy: eviction
  /// prefers such entries, because a peer can serve them back.
  void set_replica_hint(const std::string& id, int other_replicas);

  /// Explicit removal (DIET_VOLATILE cleanup / diet_free_data). Does not
  /// fire the eviction listener.
  bool erase(const std::string& id);

  /// Drops everything — a crashed server's store does not survive the
  /// restart; peers re-fetch from surviving replicas (or the client
  /// resends). Does not fire the eviction listener.
  void clear();

  /// Called with (id, charged_bytes) for every LRU eviction, so the owner
  /// can unregister the replica from the hierarchy catalog.
  void set_eviction_listener(
      std::function<void(const std::string&, std::int64_t)> listener) {
    eviction_listener_ = std::move(listener);
  }

  [[nodiscard]] std::size_t count() const { return store_.size(); }
  [[nodiscard]] std::int64_t bytes() const { return bytes_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  void evict_to_fit();
  void remove_entry(const std::string& id);
  void update_gauges() const;

  struct Entry {
    Blob blob;
    int replica_hint = 0;  ///< known replicas elsewhere (eviction prefers >0)
    std::list<std::string>::iterator lru_position;
  };

  std::int64_t max_bytes_;
  std::string owner_;
  std::int64_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::unordered_map<std::string, Entry> store_;
  std::list<std::string> lru_;  ///< front = most recently used
  std::function<void(const std::string&, std::int64_t)> eviction_listener_;
  /// Shadow accounting (GC_CHECK builds): catches bytes_/LRU drift.
  check::StoreAudit audit_{"dtm data store"};
};

}  // namespace gc::dtm
