// MPWide-style WAN transfer engine knobs (Groen et al.: striped parallel
// TCP streams, store-and-forward relay hops, optional compression — the
// techniques that kept the CosmoGrid simulations fed across continents).
//
// Applied by SEDs to their bulk dtm pushes (pull replies and write-
// replication). Striping only changes modeled time under the contention
// flow model, where each stripe is an independent flow: on a WAN link
// with a per-stream cap (lossy TCP), K stripes sustain up to K times the
// single-stream throughput; under fair sharing they also claim a K/(K+n)
// share against n competitors. With the flow model off, stripes still
// travel but the closed-form cost makes them a wash — the engine is
// honest, not a free speedup.
#pragma once

#include <cstdint>

namespace gc::dtm {

struct WanTuning {
  /// Parallel streams per bulk transfer (1 = classic single push).
  int streams = 1;
  /// Transfers below this size never stripe (stripe overhead dominates).
  std::int64_t stripe_min_bytes = 1 << 20;
  /// Route stripes through the requester's parent LA (store-and-forward
  /// relay; hop pipelining across stripes) instead of SED-to-SED direct.
  bool relay = false;
  /// Modeled compression: fraction of bulk bytes shaved off the wire
  /// (0 = off). Charged as CPU time at compress_bps before sending.
  double compression = 0.0;
  /// Compressor throughput in bytes/s; 0 = compression is free CPU-wise.
  double compress_bps = 0.0;

  [[nodiscard]] bool striping(std::int64_t bytes) const {
    return streams > 1 && bytes >= stripe_min_bytes;
  }
};

}  // namespace gc::dtm
