// Wire protocol of the data-management subsystem.
//
// Rides the same Envelope transport as the DIET scheduling protocol
// (diet/protocol.hpp) with a disjoint message-type range, and carries the
// originating request's trace id wherever a transfer happens on a call's
// behalf:
//
//   SED --kDataRegister---> LA --kDataRegister(fwd)--> MA   (store/replicate)
//   SED --kDataUnregister-> LA --kDataUnregister(fwd)-> MA  (evict/crash)
//   SED --kDataLocate-----> LA [--kDataLocate(fwd)--> MA]   (reference miss)
//   LA/MA --kDataLocation-> SED                             (known replicas)
//   SED --kDataPull-------> peer SED                        (fetch request)
//   peer --kDataPush------> SED                             (the bytes)
//   LA  --kDataReplicate--> SED                             (pull a copy)
//
// kDataPush prices the transfer on the modeled link: the payload carries
// the serialized value, and Envelope::modeled_extra_bytes charges the
// remainder for values (files) whose bytes never travel in the payload.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dtm/catalog.hpp"
#include "net/codec.hpp"
#include "net/message.hpp"

namespace gc::dtm {

/// Message tags; disjoint from diet::MsgType (1..31).
enum DtmMsgType : std::uint32_t {
  kDataRegister = 40,
  kDataUnregister = 41,
  kDataLocate = 42,
  kDataLocation = 43,
  kDataPull = 44,
  kDataPush = 45,
  kDataReplicate = 46,
  kDataStripe = 47,
};

void serialize_replica(net::Writer& w, const ReplicaInfo& info);
ReplicaInfo deserialize_replica(net::Reader& r);

/// SED -> parent (forwarded up): "I now hold `data_id`".
struct DataRegisterMsg {
  std::string data_id;
  ReplicaInfo holder;
  /// Desired total replica count. >1 asks the direct parent LA to
  /// replicate onto siblings; forwarded copies and pulled/replicated
  /// copies carry 1 so replication does not cascade.
  std::int32_t replicas = 1;

  net::Bytes encode() const;
  static DataRegisterMsg decode(const net::Bytes& payload);
};

/// SED -> parent (forwarded up): "I no longer hold `data_id`"
/// (empty data_id = drop everything this SED held).
struct DataUnregisterMsg {
  std::uint64_t sed_uid = 0;
  std::string data_id;

  net::Bytes encode() const;
  static DataUnregisterMsg decode(const net::Bytes& payload);
};

/// SED -> parent (forwarded up): "who holds `data_id`?" The answer goes
/// straight back to the requester's endpoint, not down the tree.
struct DataLocateMsg {
  std::string data_id;
  std::uint64_t requester_uid = 0;
  net::Endpoint requester_endpoint = net::kNullEndpoint;
  /// Set when a root MA forwards the locate across a federation edge.
  /// A peer that receives it answers the requester only on a hit (a miss
  /// stays silent — another peer may hold the data) and never re-forwards.
  /// Trailing-optional on the wire: absent when false, so intra-hierarchy
  /// locates keep their pre-federation encoding.
  bool federated = false;

  net::Bytes encode() const;
  static DataLocateMsg decode(const net::Bytes& payload);
};

/// Agent -> requesting SED: known replicas (empty = nobody holds it).
struct DataLocationMsg {
  std::string data_id;
  std::vector<ReplicaInfo> replicas;

  net::Bytes encode() const;
  static DataLocationMsg decode(const net::Bytes& payload);
};

/// SED -> peer SED: "send me `data_id`".
struct DataPullMsg {
  std::string data_id;
  std::uint64_t requester_uid = 0;
  /// WAN-engine relay hint: when non-null, striped replies may be routed
  /// through this agent (the requester's parent LA) instead of directly,
  /// store-and-forward — the MPWide-style multi-hop path. Trailing-
  /// optional on the wire so plain pulls keep their classic encoding.
  net::Endpoint relay_endpoint = net::kNullEndpoint;

  net::Bytes encode() const;
  static DataPullMsg decode(const net::Bytes& payload);
};

/// Peer SED -> SED: the serialized value (found = 0 when the peer
/// evicted it since the catalog answered).
struct DataPushMsg {
  std::string data_id;
  bool found = false;
  net::Bytes value;  ///< serialized ArgValue (diet codec); opaque here
  std::int64_t charged_bytes = 0;

  net::Bytes encode() const;
  static DataPushMsg decode(const net::Bytes& payload);
};

/// One stripe of an MPWide-style striped bulk transfer. The holder SED
/// splits a big push into `stripe_count` stripes, each sent as its own
/// out-of-band envelope (= its own parallel connection under the flow
/// model); stripe 0 carries the serialized value, the rest charge their
/// slice via Envelope::modeled_extra_bytes. Stripes may hop through an
/// agent (relay) that forwards them to `dest_endpoint`; the receiving SED
/// reassembles by `transfer_id` and completes the fetch when all stripes
/// arrived.
struct DataStripeMsg {
  std::uint64_t transfer_id = 0;  ///< (holder uid << 32) | counter
  std::string data_id;
  std::uint32_t stripe_index = 0;
  std::uint32_t stripe_count = 1;
  bool found = false;
  net::Bytes value;  ///< serialized ArgValue; only on stripe 0
  std::int64_t total_bytes = 0;  ///< full transfer size (all stripes)
  net::Endpoint dest_endpoint = net::kNullEndpoint;  ///< final receiver

  net::Bytes encode() const;
  static DataStripeMsg decode(const net::Bytes& payload);
};

/// Parent LA -> SED: "pull a copy of `data_id` from `holder`"
/// (write-replication fan-out).
struct DataReplicateMsg {
  std::string data_id;
  ReplicaInfo holder;

  net::Bytes encode() const;
  static DataReplicateMsg decode(const net::Bytes& payload);
};

}  // namespace gc::dtm
