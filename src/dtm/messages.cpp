#include "dtm/messages.hpp"

namespace gc::dtm {

void serialize_replica(net::Writer& w, const ReplicaInfo& info) {
  w.u64(info.sed_uid);
  w.u32(info.endpoint);
  w.u32(info.node);
  w.i64(info.bytes);
}

ReplicaInfo deserialize_replica(net::Reader& r) {
  ReplicaInfo info;
  info.sed_uid = r.u64();
  info.endpoint = r.u32();
  info.node = r.u32();
  info.bytes = r.i64();
  return info;
}

net::Bytes DataRegisterMsg::encode() const {
  net::Writer w;
  w.str(data_id);
  serialize_replica(w, holder);
  w.i32(replicas);
  return w.take();
}

DataRegisterMsg DataRegisterMsg::decode(const net::Bytes& payload) {
  net::Reader r(payload);
  DataRegisterMsg m;
  m.data_id = r.str();
  m.holder = deserialize_replica(r);
  m.replicas = r.i32();
  return m;
}

net::Bytes DataUnregisterMsg::encode() const {
  net::Writer w;
  w.u64(sed_uid);
  w.str(data_id);
  return w.take();
}

DataUnregisterMsg DataUnregisterMsg::decode(const net::Bytes& payload) {
  net::Reader r(payload);
  DataUnregisterMsg m;
  m.sed_uid = r.u64();
  m.data_id = r.str();
  return m;
}

net::Bytes DataLocateMsg::encode() const {
  net::Writer w;
  w.str(data_id);
  w.u64(requester_uid);
  w.u32(requester_endpoint);
  if (federated) w.u8(1);  // trailing-optional: absent when false
  return w.take();
}

DataLocateMsg DataLocateMsg::decode(const net::Bytes& payload) {
  net::Reader r(payload);
  DataLocateMsg m;
  m.data_id = r.str();
  m.requester_uid = r.u64();
  m.requester_endpoint = r.u32();
  if (r.remaining() > 0) m.federated = r.u8() != 0;
  return m;
}

net::Bytes DataLocationMsg::encode() const {
  net::Writer w;
  w.str(data_id);
  w.u32(static_cast<std::uint32_t>(replicas.size()));
  for (const auto& replica : replicas) serialize_replica(w, replica);
  return w.take();
}

DataLocationMsg DataLocationMsg::decode(const net::Bytes& payload) {
  net::Reader r(payload);
  DataLocationMsg m;
  m.data_id = r.str();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    m.replicas.push_back(deserialize_replica(r));
  }
  return m;
}

net::Bytes DataPullMsg::encode() const {
  net::Writer w;
  w.str(data_id);
  w.u64(requester_uid);
  // Trailing-optional: absent when null, so plain pulls keep their
  // pre-WAN-engine encoding.
  if (relay_endpoint != net::kNullEndpoint) w.u32(relay_endpoint);
  return w.take();
}

DataPullMsg DataPullMsg::decode(const net::Bytes& payload) {
  net::Reader r(payload);
  DataPullMsg m;
  m.data_id = r.str();
  m.requester_uid = r.u64();
  if (r.remaining() > 0) m.relay_endpoint = r.u32();
  return m;
}

net::Bytes DataStripeMsg::encode() const {
  net::Writer w;
  w.u64(transfer_id);
  w.str(data_id);
  w.u32(stripe_index);
  w.u32(stripe_count);
  w.u8(found ? 1 : 0);
  w.bytes(value);
  w.i64(total_bytes);
  w.u32(dest_endpoint);
  return w.take();
}

DataStripeMsg DataStripeMsg::decode(const net::Bytes& payload) {
  net::Reader r(payload);
  DataStripeMsg m;
  m.transfer_id = r.u64();
  m.data_id = r.str();
  m.stripe_index = r.u32();
  m.stripe_count = r.u32();
  m.found = r.u8() != 0;
  m.value = r.bytes();
  m.total_bytes = r.i64();
  m.dest_endpoint = r.u32();
  return m;
}

net::Bytes DataPushMsg::encode() const {
  net::Writer w;
  w.str(data_id);
  w.u8(found ? 1 : 0);
  w.bytes(value);
  w.i64(charged_bytes);
  return w.take();
}

DataPushMsg DataPushMsg::decode(const net::Bytes& payload) {
  net::Reader r(payload);
  DataPushMsg m;
  m.data_id = r.str();
  m.found = r.u8() != 0;
  m.value = r.bytes();
  m.charged_bytes = r.i64();
  return m;
}

net::Bytes DataReplicateMsg::encode() const {
  net::Writer w;
  w.str(data_id);
  serialize_replica(w, holder);
  return w.take();
}

DataReplicateMsg DataReplicateMsg::decode(const net::Bytes& payload) {
  net::Reader r(payload);
  DataReplicateMsg m;
  m.data_id = r.str();
  m.holder = deserialize_replica(r);
  return m;
}

}  // namespace gc::dtm
