#include "dtm/catalog.hpp"

namespace gc::dtm {

void ReplicaCatalog::add(const std::string& id, const ReplicaInfo& info) {
  if (id.empty() || info.sed_uid == 0) return;
  entries_[id][info.sed_uid] = info;
}

bool ReplicaCatalog::remove(const std::string& id, std::uint64_t sed_uid) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  const bool removed = it->second.erase(sed_uid) > 0;
  if (it->second.empty()) entries_.erase(it);
  return removed;
}

std::vector<std::string> ReplicaCatalog::drop_sed(std::uint64_t sed_uid) {
  std::vector<std::string> dropped;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.erase(sed_uid) > 0) dropped.push_back(it->first);
    if (it->second.empty()) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return dropped;
}

const std::map<std::uint64_t, ReplicaInfo>* ReplicaCatalog::locate(
    const std::string& id) const {
  auto it = entries_.find(id);
  return it != entries_.end() ? &it->second : nullptr;
}

bool ReplicaCatalog::holds(const std::string& id,
                           std::uint64_t sed_uid) const {
  auto it = entries_.find(id);
  return it != entries_.end() && it->second.count(sed_uid) > 0;
}

std::size_t ReplicaCatalog::replica_count() const {
  std::size_t n = 0;
  for (const auto& [id, replicas] : entries_) n += replicas.size();
  return n;
}

std::vector<std::string> ReplicaCatalog::ids() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [id, replicas] : entries_) out.push_back(id);
  return out;
}

}  // namespace gc::dtm
