#include "dtm/datamgr.hpp"

#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace gc::dtm {

void DataManager::update_gauges() const {
  if (owner_.empty() || !obs::metrics_on()) return;
  auto& m = obs::Metrics::instance();
  const obs::Labels labels = {{"owner", owner_}};
  m.gauge("diet_dtm_store_bytes", labels)
      .set(static_cast<double>(bytes_));
  m.gauge("diet_dtm_entries", labels)
      .set(static_cast<double>(store_.size()));
}

bool DataManager::store(const std::string& id, Blob blob) {
  if (id.empty()) return false;
  const bool inserted = store_.find(id) == store_.end();
  if (!inserted) remove_entry(id);
  lru_.push_front(id);
  const std::int64_t charged = blob.charged_bytes;
  store_.emplace(id, Entry{std::move(blob), 0, lru_.begin()});
  bytes_ += charged;
  if constexpr (check::kEnabled) {
    audit_.add(id, charged, __FILE__, __LINE__);
    audit_.expect(store_.size(), bytes_, __FILE__, __LINE__);
    GC_INVARIANT(lru_.size() == store_.size(),
                 "LRU list and store diverged");
  }
  evict_to_fit();
  update_gauges();
  return inserted;
}

const Blob* DataManager::lookup(const std::string& id) {
  auto it = store_.find(id);
  if (it == store_.end()) {
    ++misses_;
    if (!owner_.empty() && obs::metrics_on()) {
      obs::Metrics::instance()
          .counter("diet_dtm_misses_total", {{"owner", owner_}})
          .inc();
    }
    return nullptr;
  }
  ++hits_;
  if (!owner_.empty() && obs::metrics_on()) {
    obs::Metrics::instance()
        .counter("diet_dtm_hits_total", {{"owner", owner_}})
        .inc();
  }
  lru_.erase(it->second.lru_position);
  lru_.push_front(id);
  it->second.lru_position = lru_.begin();
  return &it->second.blob;
}

void DataManager::set_replica_hint(const std::string& id,
                                   int other_replicas) {
  auto it = store_.find(id);
  if (it != store_.end()) it->second.replica_hint = other_replicas;
}

void DataManager::remove_entry(const std::string& id) {
  auto it = store_.find(id);
  GC_CHECK(it != store_.end());
  bytes_ -= it->second.blob.charged_bytes;
  if constexpr (check::kEnabled) {
    audit_.remove(id, it->second.blob.charged_bytes, __FILE__, __LINE__);
  }
  lru_.erase(it->second.lru_position);
  store_.erase(it);
  if constexpr (check::kEnabled) {
    audit_.expect(store_.size(), bytes_, __FILE__, __LINE__);
    GC_INVARIANT(lru_.size() == store_.size(),
                 "LRU list and store diverged");
  }
}

bool DataManager::erase(const std::string& id) {
  if (store_.find(id) == store_.end()) return false;
  remove_entry(id);
  update_gauges();
  return true;
}

void DataManager::clear() {
  store_.clear();
  lru_.clear();
  bytes_ = 0;
  if constexpr (check::kEnabled) audit_.reset();
  update_gauges();
}

void DataManager::evict_to_fit() {
  if (max_bytes_ <= 0) return;
  while (bytes_ > max_bytes_ && !lru_.empty()) {
    // Catalog-coordinated victim choice: the least-recently-used entry
    // with a known replica elsewhere goes first (a peer can serve it
    // back); only when every entry is the last copy does plain LRU apply.
    std::string victim;
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      if (store_.at(*it).replica_hint > 0) {
        victim = *it;
        break;
      }
    }
    if (victim.empty()) victim = lru_.back();
    const std::int64_t charged = store_.at(victim).blob.charged_bytes;
    GC_DEBUG << "dtm: evicting " << victim;
    remove_entry(victim);
    ++evictions_;
    if (!owner_.empty() && obs::metrics_on()) {
      obs::Metrics::instance()
          .counter("diet_dtm_evictions_total", {{"owner", owner_}})
          .inc();
    }
    if (eviction_listener_) eviction_listener_(victim, charged);
  }
}

}  // namespace gc::dtm
