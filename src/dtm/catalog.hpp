// Replica catalog: which servers hold which persistent data.
//
// Every agent (LA and MA) keeps one. SEDs register each id they store
// with their parent LA; the LA records it and forwards the registration
// up, so the MA's catalog covers the whole hierarchy while each LA covers
// its subtree. Evictions and crashes unregister the same way (a silent
// crash is caught by the heartbeat watchdog, which drops every replica
// the dead SED held).
//
// Two consumers:
//  - locality-aware scheduling: agents price each candidate's
//    bytes-to-move from the catalog + the platform cost model
//    (Agent::finalize), consumed by the "mct-data" policy;
//  - peer-to-peer pulls: a SED that misses a referenced id asks its
//    parent to locate a surviving replica and fetches from the nearest
//    one over the modeled link (diet/sed.cpp) instead of failing the
//    call back to the client.
//
// All containers are ordered so catalog-derived decisions (replica
// choice, replication targets) are deterministic under the DES.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/message.hpp"

namespace gc::dtm {

/// One replica of one data id, as the catalog sees it.
struct ReplicaInfo {
  std::uint64_t sed_uid = 0;
  net::Endpoint endpoint = net::kNullEndpoint;
  net::NodeId node = 0;
  std::int64_t bytes = 0;  ///< modeled wire volume of the value
};

class ReplicaCatalog {
 public:
  /// Adds (or refreshes) one replica of `id`.
  void add(const std::string& id, const ReplicaInfo& info);

  /// Removes one replica; false if it was not recorded.
  bool remove(const std::string& id, std::uint64_t sed_uid);

  /// Drops every replica a SED held (crash / restart / eviction);
  /// returns the ids that lost a replica.
  std::vector<std::string> drop_sed(std::uint64_t sed_uid);

  /// Replicas of `id` ordered by sed uid; nullptr when none are known.
  [[nodiscard]] const std::map<std::uint64_t, ReplicaInfo>* locate(
      const std::string& id) const;

  /// True when `sed_uid` is recorded as holding `id`.
  [[nodiscard]] bool holds(const std::string& id,
                           std::uint64_t sed_uid) const;

  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }
  [[nodiscard]] std::size_t replica_count() const;

  /// Data ids in catalog order (for tests and diagnostics).
  [[nodiscard]] std::vector<std::string> ids() const;

 private:
  /// id -> (sed uid -> replica). Both maps ordered: iteration order is
  /// part of the deterministic schedule.
  std::map<std::string, std::map<std::uint64_t, ReplicaInfo>> entries_;
};

}  // namespace gc::dtm
