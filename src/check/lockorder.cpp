#include "check/lockorder.hpp"

#include <algorithm>

namespace gc::check {

namespace {

/// Names this thread currently holds, oldest first, behind a teardown
/// sentinel. TLS destructors run BEFORE atexit destructors on the main
/// thread, and the pool's function-local static destructor takes tracked
/// locks on its way out — touching the stack then would be a use after
/// free (ThreadSanitizer catches it at exit). The sentinel flag is
/// trivially destructible, so reading it after teardown is safe; once the
/// stack is gone the recorder degrades to a no-op, which is fine — lock
/// ordering during single-threaded process exit proves nothing.
struct TlsHeld {
  std::vector<std::string> names;
  ~TlsHeld() { torn_down() = true; }
  static bool& torn_down() {
    thread_local bool flag = false;
    return flag;
  }
};

std::vector<std::string>* held_stack() {
  if (TlsHeld::torn_down()) return nullptr;
  thread_local TlsHeld held;
  return &held.names;
}

std::string join(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += " -> ";
    out += n;
  }
  return out;
}

}  // namespace

LockOrderRecorder& LockOrderRecorder::instance() {
  static LockOrderRecorder* recorder = new LockOrderRecorder();
  return *recorder;
}

void LockOrderRecorder::acquired(const char* name, const char* file,
                                 int line) {
  std::vector<std::string>* held_ptr = held_stack();
  if (held_ptr == nullptr) return;  // process teardown, see TlsHeld
  std::vector<std::string>& held = *held_ptr;
  std::string violation;
  if (std::find(held.begin(), held.end(), name) != held.end()) {
    violation = std::string("lock-order: re-acquiring \"") + name +
                "\" already held by this thread (held: " + join(held) + ")";
  } else if (!held.empty()) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::string& h : held) {
      if (h == name) continue;
      // Adding h -> name closes a cycle iff name already reaches h.
      if (reaches(name, h)) {
        // Reconstruct the first recorded edge of the reverse path for the
        // report: some thread held `name` (stack shown) while taking a
        // lock that leads back to `h`.
        std::string reverse_example;
        auto from_it = edges_.find(name);
        if (from_it != edges_.end() && !from_it->second.empty()) {
          reverse_example = from_it->second.begin()->second;
        }
        violation = std::string("lock-order cycle: this thread holds [") +
                    join(held) + "] and is acquiring \"" + name +
                    "\", but \"" + name + "\" was previously held before \"" +
                    h + "\" (first recorded as: " + reverse_example + ")";
        break;
      }
      auto& slot = edges_[h][name];
      if (slot.empty()) slot = join(held) + " -> " + name;
    }
  }
  held.emplace_back(name);
  if (!violation.empty()) fail(file, line, violation);
}

void LockOrderRecorder::released(const char* name) {
  std::vector<std::string>* held_ptr = held_stack();
  if (held_ptr == nullptr) return;  // process teardown, see TlsHeld
  std::vector<std::string>& held = *held_ptr;
  // Release the most recent acquisition of this name (locks are scoped,
  // so this is the matching one).
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (*it == name) {
      held.erase(std::next(it).base());
      return;
    }
  }
}

void LockOrderRecorder::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  edges_.clear();
}

std::size_t LockOrderRecorder::edge_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const auto& [from, tos] : edges_) count += tos.size();
  return count;
}

bool LockOrderRecorder::reaches(const std::string& from,
                                const std::string& to) const {
  if (from == to) return true;
  std::vector<const std::string*> frontier{&from};
  std::vector<std::string> visited;
  while (!frontier.empty()) {
    const std::string* node = frontier.back();
    frontier.pop_back();
    if (std::find(visited.begin(), visited.end(), *node) != visited.end()) {
      continue;
    }
    visited.push_back(*node);
    auto it = edges_.find(*node);
    if (it == edges_.end()) continue;
    for (const auto& [next, example] : it->second) {
      if (next == to) return true;
      frontier.push_back(&next);
    }
  }
  return false;
}

}  // namespace gc::check
