#include "check/invariant.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace gc::check {

namespace {

void default_handler(const char* file, int line, const std::string& what) {
  std::fprintf(stderr, "INVARIANT VIOLATION %s:%d: %s\n", file, line,
               what.c_str());
  std::fflush(stderr);
  std::abort();
}

std::atomic<FailureHandler> g_handler{&default_handler};
std::atomic<std::uint64_t> g_failures{0};

}  // namespace

void set_failure_handler(FailureHandler handler) {
  g_handler.store(handler != nullptr ? handler : &default_handler);
}

void fail(const char* file, int line, const std::string& what) {
  g_failures.fetch_add(1);
  const FailureHandler handler = g_handler.load();
  handler(file, line, what);
}

std::uint64_t failure_count() { return g_failures.load(); }

void reset_failure_count() { g_failures.store(0); }

void FifoMonitor::observe(std::uint64_t key, std::uint64_t seq,
                          const char* file, int line) {
  auto [it, inserted] = last_.emplace(key, seq);
  if (inserted) return;
  if (seq != it->second + 1) {
    fail(file, line,
         what_ + ": stream " + std::to_string(key) + " observed seq " +
             std::to_string(seq) + " after seq " + std::to_string(it->second) +
             " (FIFO order broken)");
  }
  it->second = seq;
}

void UniqueIds::add(std::uint64_t id, const char* file, int line) {
  if (!live_.insert(id).second) {
    fail(file, line, what_ + ": duplicate live id " + std::to_string(id));
  }
}

void StoreAudit::add(const std::string& id, std::int64_t bytes,
                     const char* file, int line) {
  auto [it, inserted] = sizes_.emplace(id, bytes);
  if (!inserted) {
    fail(file, line, what_ + ": duplicate store of \"" + id + "\"");
    return;
  }
  total_ += bytes;
}

void StoreAudit::remove(const std::string& id, std::int64_t bytes,
                        const char* file, int line) {
  auto it = sizes_.find(id);
  if (it == sizes_.end()) {
    fail(file, line, what_ + ": removing unknown id \"" + id + "\"");
    return;
  }
  if (it->second != bytes) {
    fail(file, line,
         what_ + ": \"" + id + "\" removed with " + std::to_string(bytes) +
             " bytes but stored with " + std::to_string(it->second));
  }
  total_ -= it->second;
  sizes_.erase(it);
}

void StoreAudit::expect(std::size_t count, std::int64_t total_bytes,
                        const char* file, int line) const {
  if (count != sizes_.size() || total_bytes != total_) {
    fail(file, line,
         what_ + ": store reports " + std::to_string(count) + " entries / " +
             std::to_string(total_bytes) + " bytes but the audit tracked " +
             std::to_string(sizes_.size()) + " / " + std::to_string(total_));
  }
}

void StoreAudit::reset() {
  sizes_.clear();
  total_ = 0;
}

}  // namespace gc::check
