// Debug invariant layer.
//
// GC_INVARIANT(cond, msg) states a property the middleware relies on but
// cannot afford to re-derive on every hot-path operation in release
// builds: monotone DES timestamps, per-link FIFO delivery, request-id
// uniqueness, store accounting. The checks compile to nothing unless
// GC_CHECK_INVARIANTS is defined (CMake option GC_CHECK, default ON), so
// instrumented code pays zero cost when the layer is off.
//
// Unlike GC_CHECK (always on, aborts), a tripped invariant routes through
// a swappable failure handler so tests can seed a violation and assert it
// is caught without dying. The default handler prints file:line and
// aborts, exactly like gc::fatal.
//
// This module depends on nothing else in the repo so that any subsystem
// (including common/) can adopt it without a cycle.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace gc::check {

#ifdef GC_CHECK_INVARIANTS
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// Receives every tripped invariant. Installing a handler that returns
/// (instead of aborting) lets a test drive a checker past a violation;
/// production code must treat a tripped invariant as fatal.
using FailureHandler = void (*)(const char* file, int line,
                                const std::string& what);

/// nullptr restores the default print-and-abort handler.
void set_failure_handler(FailureHandler handler);

/// Reports a violated invariant through the installed handler.
void fail(const char* file, int line, const std::string& what);

/// Number of invariant failures reported since process start (or the last
/// reset_failure_count()). Tests use this to assert a seeded violation was
/// actually caught.
[[nodiscard]] std::uint64_t failure_count();
void reset_failure_count();

/// Checks that per-stream sequence numbers are observed in exactly the
/// order they were issued: observation `seq` on stream `key` must follow
/// observation `seq - 1` (the first observation of a stream may carry any
/// seq). Used for per-link FIFO delivery in SimEnv.
class FifoMonitor {
 public:
  explicit FifoMonitor(std::string what) : what_(std::move(what)) {}

  void observe(std::uint64_t key, std::uint64_t seq, const char* file,
               int line);
  void reset() { last_.clear(); }

 private:
  std::string what_;
  std::unordered_map<std::uint64_t, std::uint64_t> last_;
};

/// Checks that ids in a live set are unique: add() of an id already live
/// is a violation. remove() tolerates unknown ids (callers often erase on
/// multiple paths).
class UniqueIds {
 public:
  explicit UniqueIds(std::string what) : what_(std::move(what)) {}

  void add(std::uint64_t id, const char* file, int line);
  void remove(std::uint64_t id) { live_.erase(id); }
  [[nodiscard]] bool contains(std::uint64_t id) const {
    return live_.count(id) > 0;
  }
  [[nodiscard]] std::size_t size() const { return live_.size(); }
  void reset() { live_.clear(); }

 private:
  std::string what_;
  std::unordered_set<std::uint64_t> live_;
};

/// Shadow accounting for a byte-bounded store (the SED DataManager):
/// tracks ids and their sizes independently of the audited container and
/// fails when the two disagree — duplicate insert, unknown remove, size
/// drift between insert and remove, or an aggregate (count, total bytes)
/// that no longer matches the shadow.
class StoreAudit {
 public:
  explicit StoreAudit(std::string what) : what_(std::move(what)) {}

  void add(const std::string& id, std::int64_t bytes, const char* file,
           int line);
  void remove(const std::string& id, std::int64_t bytes, const char* file,
              int line);
  /// Asserts the audited store's own aggregates match the shadow.
  void expect(std::size_t count, std::int64_t total_bytes, const char* file,
              int line) const;
  void reset();

 private:
  std::string what_;
  std::unordered_map<std::string, std::int64_t> sizes_;
  std::int64_t total_ = 0;
};

}  // namespace gc::check

#ifdef GC_CHECK_INVARIANTS
#define GC_INVARIANT(cond, msg)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::gc::check::fail(__FILE__, __LINE__,                           \
                        std::string("invariant (" #cond "): ") +      \
                            (msg));                                   \
    }                                                                 \
  } while (0)
#else
#define GC_INVARIANT(cond, msg) \
  do {                          \
  } while (0)
#endif
