// Mutation seams: known-fixed bugs kept re-introducible for the model
// checker's own test suite.
//
// A concurrency checker that has never caught a bug proves nothing about
// itself. Each seam below re-enables one ordering bug this repo actually
// had and fixed; tests/test_mc.cpp flips a seam on, runs the DPOR
// explorer over a small scenario, and asserts the checker produces a
// counterexample trace. The seams compile only under GC_MC_MUTATIONS
// (CMake option, default ON — the flags still default to off, so the
// behavior of an untouched process is byte-identical) and sit in
// src/check so the layers that host the bugs (src/diet) can query them
// without a dependency cycle.
#pragma once

#include <cstddef>

namespace gc::check {

#ifdef GC_MC_MUTATIONS
inline constexpr bool kMutationsCompiled = true;
#else
inline constexpr bool kMutationsCompiled = false;
#endif

enum class Mutation : std::size_t {
  /// Client: a retry reuses the previous attempt's wire id instead of
  /// drawing a fresh one, so a stale reply to the abandoned attempt is
  /// accepted as if it answered the live one.
  kStaleReplyReuseWire = 0,
  /// SED: skip the duplicate-call journal, so a duplicated kCallData
  /// (fault-injected network duplicate) executes the job twice.
  kSedSkipDedup,
  /// Agent: heartbeat eviction forgets to drop the dead SED's replica
  /// catalog entries, so locate() keeps routing to a corpse.
  kKeepReplicasOnEviction,
  kCount,
};

/// Runtime switch for one seam. Always false when GC_MC_MUTATIONS is not
/// compiled in; call sites stay `if (mutation_enabled(...))` either way.
[[nodiscard]] bool mutation_enabled(Mutation m);

/// Flips a seam (no-op without GC_MC_MUTATIONS). Tests pair this with a
/// scope guard; nothing in production code ever calls it.
void set_mutation(Mutation m, bool on);

/// Convenience guard: enables a mutation for one scope.
class ScopedMutation {
 public:
  explicit ScopedMutation(Mutation m) : m_(m) { set_mutation(m_, true); }
  ~ScopedMutation() { set_mutation(m_, false); }
  ScopedMutation(const ScopedMutation&) = delete;
  ScopedMutation& operator=(const ScopedMutation&) = delete;

 private:
  Mutation m_;
};

}  // namespace gc::check
