// Runtime lock-order (deadlock-potential) checker.
//
// Every instrumented mutex acquisition is reported to a global recorder
// under a stable name ("realenv.mutex", "pool.queue", ...). The recorder
// keeps, per thread, the stack of names currently held and, globally, the
// directed graph of observed held-before-acquired edges. A new edge that
// closes a cycle means two threads can acquire the same two locks in
// opposite orders — a potential deadlock — and trips an invariant failure
// whose message shows this thread's held stack and the held stack first
// recorded for the reverse path.
//
// Names identify lock *roles*, not instances: all Region mutexes share
// "pool.region". That is the useful granularity for ordering bugs and
// keeps the graph tiny. Re-acquiring a role already held by the same
// thread is reported too (self-deadlock for the non-recursive mutexes
// this repo uses).
//
// Everything here is compiled unconditionally (tests drive it directly);
// instrumented call sites are gated on gc::check::kEnabled so production
// builds with GC_CHECK=OFF pay nothing.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "check/invariant.hpp"

namespace gc::check {

class LockOrderRecorder {
 public:
  static LockOrderRecorder& instance();

  /// Reports intent to acquire `name` (call just before locking, so a
  /// genuinely deadlocked thread has already recorded the closing edge).
  void acquired(const char* name, const char* file, int line);
  /// Reports release of `name` (most recent acquisition of that name).
  void released(const char* name);

  /// Forgets the recorded graph (not the per-thread held stacks). Tests
  /// use this to isolate scenarios.
  void reset();

  [[nodiscard]] std::size_t edge_count() const;

 private:
  LockOrderRecorder() = default;

  // Caller holds mutex_. True if `to` is reachable from `from` via
  // recorded edges.
  [[nodiscard]] bool reaches(const std::string& from,
                             const std::string& to) const;

  mutable std::mutex mutex_;
  /// edges_[a][b] = example held-stack text recorded when the edge
  /// "a held while acquiring b" was first seen.
  std::map<std::string, std::map<std::string, std::string>> edges_;
};

/// RAII guard: records the acquisition order, then locks. Drop-in for
/// std::lock_guard at instrumented sites.
template <typename Mutex>
class TrackedLock {
 public:
  TrackedLock(Mutex& m, const char* name, const char* file, int line)
      : noter_(name, file, line), lock_(m) {}

 private:
  struct Noter {
    Noter(const char* n, const char* file, int line) : name(n) {
      if constexpr (kEnabled) {
        LockOrderRecorder::instance().acquired(name, file, line);
      }
    }
    ~Noter() {
      if constexpr (kEnabled) LockOrderRecorder::instance().released(name);
    }
    Noter(const Noter&) = delete;
    Noter& operator=(const Noter&) = delete;
    const char* name;
  };
  Noter noter_;
  std::lock_guard<Mutex> lock_;
};

/// Companion for std::unique_lock regions that unlock/relock mid-scope
/// (condition-variable loops): mirrors the lock's state into the
/// recorder. Waiting on a cv counts as holding the lock, which is
/// conservative and safe — a sleeping thread records no new edges.
class LockTracker {
 public:
  LockTracker(const char* name, const char* file, int line)
      : name_(name), file_(file), line_(line) {
    if constexpr (kEnabled) {
      LockOrderRecorder::instance().acquired(name_, file_, line_);
      held_ = true;
    }
  }
  ~LockTracker() {
    if constexpr (kEnabled) {
      if (held_) LockOrderRecorder::instance().released(name_);
    }
  }
  LockTracker(const LockTracker&) = delete;
  LockTracker& operator=(const LockTracker&) = delete;

  void unlocked() {
    if constexpr (kEnabled) {
      LockOrderRecorder::instance().released(name_);
      held_ = false;
    }
  }
  void relocked() {
    if constexpr (kEnabled) {
      LockOrderRecorder::instance().acquired(name_, file_, line_);
      held_ = true;
    }
  }

 private:
  const char* name_;
  const char* file_;
  int line_;
  bool held_ = false;
};

}  // namespace gc::check

/// Instrumented lock_guard with call-site capture.
#define GC_TRACKED_LOCK(var, mtx, lock_name)        \
  ::gc::check::TrackedLock<std::mutex> var(mtx, lock_name, __FILE__, \
                                           __LINE__)
