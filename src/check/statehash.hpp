// Deterministic state hashing (FNV-1a), factored out of the schedule
// fuzzer so the model checker, the fuzzer, and any future golden-output
// test agree on one definition of "the same state".
//
// Doubles are hashed by bit pattern: two runs match only if every value
// is bitwise identical, which is exactly the determinism contract the
// DES makes. MultisetHash combines per-element hashes commutatively for
// collections whose order legitimately varies across equivalent
// schedules (trace records, snapshot rows keyed by allocation order).
//
// Depends on nothing else in the repo (like the rest of src/check).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace gc::check {

/// FNV-1a accumulator.
struct Fnv {
  std::uint64_t h = 1469598103934665603ULL;

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void i64(std::int64_t v) { bytes(&v, sizeof v); }
  void d(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
};

/// Order-independent combiner: add() per-element hashes in any order,
/// finish() folds the count in so {a} and {a, a} differ.
struct MultisetHash {
  std::uint64_t sum = 0;
  std::uint64_t mix = 0;
  std::uint64_t count = 0;

  void add(std::uint64_t element_hash) {
    sum += element_hash;
    mix ^= element_hash * 1099511628211ULL;
    ++count;
  }
  [[nodiscard]] std::uint64_t finish() const {
    Fnv out;
    out.u64(count);
    out.u64(sum);
    out.u64(mix);
    return out.h;
  }
};

}  // namespace gc::check
