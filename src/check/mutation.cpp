#include "check/mutation.hpp"

namespace gc::check {

namespace {

#ifdef GC_MC_MUTATIONS
bool g_flags[static_cast<std::size_t>(Mutation::kCount)] = {};
#endif

}  // namespace

bool mutation_enabled(Mutation m) {
#ifdef GC_MC_MUTATIONS
  return g_flags[static_cast<std::size_t>(m)];
#else
  (void)m;
  return false;
#endif
}

void set_mutation(Mutation m, bool on) {
#ifdef GC_MC_MUTATIONS
  g_flags[static_cast<std::size_t>(m)] = on;
#else
  (void)m;
  (void)on;
#endif
}

}  // namespace gc::check
