// Time and size units used across the middleware and the simulator.
//
// Simulated time is a double in seconds (the DES kernel's native unit);
// helpers here format durations the way the paper reports them
// ("16h 18min 43s") and convert byte sizes and bandwidths.
#pragma once

#include <cstdint>
#include <string>

namespace gc {

/// Simulated time in seconds since the start of the experiment.
using SimTime = double;

constexpr double kMillisecond = 1e-3;
constexpr double kSecond = 1.0;
constexpr double kMinute = 60.0;
constexpr double kHour = 3600.0;

constexpr std::int64_t kKiB = 1024;
constexpr std::int64_t kMiB = 1024 * kKiB;
constexpr std::int64_t kGiB = 1024 * kMiB;

/// Bits-per-second bandwidth to bytes-per-second.
constexpr double gbit_per_s(double gbits) { return gbits * 1e9 / 8.0; }

/// "1h 24min 01s" (paper style). Sub-second durations fall back to "X.Yms".
std::string format_duration(SimTime seconds);

/// "12.3 MiB" style.
std::string format_bytes(std::int64_t bytes);

}  // namespace gc
