// Descriptive statistics used by the experiment harness (mean finding time,
// latency percentiles, per-SED busy-time summaries).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace gc {

/// Online accumulator (Welford) for mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const {
    // Zero for empty and single-sample streams; Welford's m2 can round to
    // a tiny negative, which would make stddev() NaN.
    if (n_ <= 1 || m2_ <= 0.0) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile by linear interpolation on a copy of the data; p in [0, 100].
double percentile(std::vector<double> values, double p);

}  // namespace gc
