// Small string utilities shared by the namelist parser, config readers and
// report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace gc {

/// Removes leading/trailing whitespace.
std::string_view trim(std::string_view text);

/// Splits on a delimiter; empty fields are kept.
std::vector<std::string> split(std::string_view text, char delim);

/// Splits on arbitrary whitespace; empty fields are dropped.
std::vector<std::string> split_ws(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// ASCII lower-casing (config keys are case-insensitive, like Fortran
/// namelists).
std::string to_lower(std::string_view text);

/// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

}  // namespace gc
