#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace gc {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mutex;

// Current-time source for line prefixes, guarded by g_mutex.
double (*g_clock_fn)(const void*) = nullptr;
const void* g_clock_ctx = nullptr;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

/// Parses GC_LOG_LEVEL; returns true and writes `out` on success.
bool level_from_env(LogLevel* out) {
  const char* env = std::getenv("GC_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return false;
  if (std::strcmp(env, "debug") == 0) *out = LogLevel::kDebug;
  else if (std::strcmp(env, "info") == 0) *out = LogLevel::kInfo;
  else if (std::strcmp(env, "warn") == 0) *out = LogLevel::kWarn;
  else if (std::strcmp(env, "error") == 0) *out = LogLevel::kError;
  else if (std::strcmp(env, "off") == 0) *out = LogLevel::kOff;
  else return false;
  return true;
}

/// Applies GC_LOG_LEVEL once, before the first threshold query.
void init_level_from_env() {
  static const bool applied = [] {
    LogLevel level;
    if (level_from_env(&level)) g_level.store(static_cast<int>(level));
    return true;
  }();
  (void)applied;
}

double wall_since_start() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point origin = Clock::now();
  return std::chrono::duration<double>(Clock::now() - origin).count();
}

// Touch the wall origin at static-init time so "time since process start"
// does not begin at the first log line.
const double g_origin_touch = wall_since_start();

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() {
  init_level_from_env();
  return static_cast<LogLevel>(g_level.load());
}

void set_default_log_level(LogLevel level) {
  LogLevel from_env;
  if (level_from_env(&from_env)) {
    g_level.store(static_cast<int>(from_env));
  } else {
    g_level.store(static_cast<int>(level));
  }
}

void set_log_clock(double (*fn)(const void*), const void* ctx) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_clock_fn = fn;
  g_clock_ctx = ctx;
}

void clear_log_clock(const void* ctx) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_clock_ctx == ctx) {
    g_clock_fn = nullptr;
    g_clock_ctx = nullptr;
  }
}

namespace detail {
void log_line(LogLevel level, const std::string& text) {
  std::lock_guard<std::mutex> lock(g_mutex);
  const double now =
      g_clock_fn != nullptr ? g_clock_fn(g_clock_ctx) : wall_since_start();
  std::fprintf(stderr, "[%s %12.6f] %s\n", level_tag(level), now,
               text.c_str());
}
}  // namespace detail

void fatal(const std::string& message, const char* file, int line) {
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    std::fprintf(stderr, "[FATAL] %s:%d: %s\n", file, line, message.c_str());
  }
  std::abort();
}

}  // namespace gc
