#include "common/cli.hpp"

#include <cstdlib>

#include "common/strings.hpp"

namespace gc {

CliArgs::CliArgs(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (!starts_with(token, "--")) continue;
    token = token.substr(2);
    const std::size_t eq = token.find('=');
    if (eq != std::string::npos) {
      values_[token.substr(0, eq)] = token.substr(eq + 1);
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      values_[token] = argv[++i];
    } else {
      values_[token] = "true";  // boolean flag
    }
  }
}

bool CliArgs::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string CliArgs::get(const std::string& key, std::string fallback) const {
  auto it = values_.find(key);
  return it != values_.end() ? it->second : std::move(fallback);
}

long CliArgs::get_int(const std::string& key, long fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtol(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

}  // namespace gc
