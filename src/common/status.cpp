#include "common/status.hpp"

namespace gc {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kAlreadyExists: return "already_exists";
    case ErrorCode::kOutOfRange: return "out_of_range";
    case ErrorCode::kFailedPrecondition: return "failed_precondition";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kIoError: return "io_error";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::string out = gc::to_string(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace gc
