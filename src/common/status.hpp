// Lightweight error handling: Status + Result<T>.
//
// The middleware and the simulation pipeline both report recoverable
// failures (bad profile, missing file, service not found) through these
// types instead of exceptions; exceptions are reserved for programming
// errors (see GC_CHECK in log.hpp).
#pragma once

#include <optional>
#include <string>
#include <utility>

namespace gc {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnavailable,
  kIoError,
  kInternal,
};

/// Human-readable name of an error code ("not_found", ...).
const char* to_string(ErrorCode code);

/// A success/failure outcome with an optional message.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  [[nodiscard]] bool is_ok() const { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  [[nodiscard]] std::string to_string() const;

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status make_error(ErrorCode code, std::string message) {
  return Status(code, std::move(message));
}

/// Either a value or a Status explaining why there is none.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  [[nodiscard]] bool is_ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] T& value() & { return *value_; }
  [[nodiscard]] const T& value() const& { return *value_; }
  [[nodiscard]] T&& value() && { return std::move(*value_); }

  [[nodiscard]] T value_or(T fallback) const {
    return value_ ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace gc
