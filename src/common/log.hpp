// Minimal leveled logger + assertion macros.
//
// The logger is process-global and thread-safe; benchmark binaries lower the
// level to kWarn so figure output stays clean.
#pragma once

#include <sstream>
#include <string>

namespace gc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Like set_log_level, but yields to a `GC_LOG_LEVEL` env var
/// (debug|info|warn|error|off) when one is set. Binaries use this for
/// their "quiet by default" setting so the env var can still override it.
void set_default_log_level(LogLevel level);

/// Registers a time source for log-line prefixes: `fn(ctx)` returns the
/// current time in seconds. A discrete-event engine registers its virtual
/// clock here while it runs; with no clock registered, lines carry wall
/// time since process start. `clear_log_clock(ctx)` only unregisters when
/// `ctx` still owns the clock (a newer registration wins).
void set_log_clock(double (*fn)(const void*), const void* ctx);
void clear_log_clock(const void* ctx);

namespace detail {
void log_line(LogLevel level, const std::string& text);

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

[[noreturn]] void fatal(const std::string& message, const char* file, int line);

}  // namespace gc

#define GC_LOG(level)                               \
  if (static_cast<int>(level) <                     \
      static_cast<int>(::gc::log_level())) {        \
  } else                                            \
    ::gc::detail::LogStream(level)

#define GC_DEBUG GC_LOG(::gc::LogLevel::kDebug)
#define GC_INFO GC_LOG(::gc::LogLevel::kInfo)
#define GC_WARN GC_LOG(::gc::LogLevel::kWarn)
#define GC_ERROR GC_LOG(::gc::LogLevel::kError)

// Invariant check: aborts with location on failure. Used for programming
// errors only; recoverable conditions go through Status.
#define GC_CHECK(cond)                                             \
  do {                                                             \
    if (!(cond)) ::gc::fatal("check failed: " #cond, __FILE__, __LINE__); \
  } while (0)

#define GC_CHECK_MSG(cond, msg)                                        \
  do {                                                                 \
    if (!(cond))                                                       \
      ::gc::fatal(std::string("check failed: " #cond ": ") + (msg),    \
                  __FILE__, __LINE__);                                 \
  } while (0)
