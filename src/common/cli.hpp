// Minimal command-line flag parser for the examples and benches.
// Supports --key value and --key=value; unknown flags are reported.
#pragma once

#include <map>
#include <string>

namespace gc {

class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                std::string fallback) const;
  [[nodiscard]] long get_int(const std::string& key, long fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  /// Keys that were provided but never queried (typo detection).
  [[nodiscard]] std::string program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
};

}  // namespace gc
