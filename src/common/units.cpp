#include "common/units.hpp"

#include <cmath>
#include <cstdio>

namespace gc {

std::string format_duration(SimTime seconds) {
  char buf[64];
  if (seconds < 0) {
    return "-" + format_duration(-seconds);
  }
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1fms", seconds * 1e3);
    return buf;
  }
  if (seconds < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
    return buf;
  }
  const auto total = static_cast<std::int64_t>(std::llround(seconds));
  const std::int64_t h = total / 3600;
  const std::int64_t m = (total % 3600) / 60;
  const std::int64_t s = total % 60;
  if (h > 0) {
    std::snprintf(buf, sizeof(buf), "%lldh %02lldmin %02llds",
                  static_cast<long long>(h), static_cast<long long>(m),
                  static_cast<long long>(s));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldmin %02llds",
                  static_cast<long long>(m), static_cast<long long>(s));
  }
  return buf;
}

std::string format_bytes(std::int64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", b / static_cast<double>(kGiB));
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", b / static_cast<double>(kMiB));
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", b / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(bytes));
  }
  return buf;
}

}  // namespace gc
