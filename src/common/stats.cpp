#include "common/stats.hpp"

namespace gc {

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  // NaN fails both clamping comparisons below and would poison the rank
  // (NaN cast to size_t is undefined); treat it as "no valid percentile".
  if (std::isnan(p)) return 0.0;
  if (p <= 0.0) return values.front();
  if (p >= 100.0) return values.back();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

}  // namespace gc
