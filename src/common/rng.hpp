// Deterministic random number generation.
//
// Everything stochastic in the repository (Gaussian random fields, job
// durations, scheduling noise) draws from Rng so experiments replay
// bit-identically from a seed. The core generator is xoshiro256**.
#pragma once

#include <cstdint>
#include <cmath>

namespace gc {

/// xoshiro256** by Blackman & Vigna: fast, high-quality 64-bit generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
    has_cached_normal_ = false;
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_u64(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box-Muller (cached pair).
  double normal() {
    if (has_cached_normal_) {
      has_cached_normal_ = false;
      return cached_normal_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Log-normal with the given mean and coefficient of variation of the
  /// *resulting* distribution. Used for job-duration jitter.
  double lognormal_with_mean(double mean, double cv) {
    const double sigma2 = std::log(1.0 + cv * cv);
    const double mu = std::log(mean) - 0.5 * sigma2;
    return std::exp(normal(mu, std::sqrt(sigma2)));
  }

  /// Exponential with the given mean.
  double exponential(double mean) {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -mean * std::log(u);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace gc
