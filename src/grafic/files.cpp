#include "grafic/files.hpp"

#include <array>
#include <filesystem>

#include "io/fortran.hpp"

namespace gc::grafic {

namespace {

constexpr std::array<const char*, 7> kFiles = {
    "ic_deltac", "ic_poscx", "ic_poscy", "ic_poscz",
    "ic_velcx",  "ic_velcy", "ic_velcz"};

gc::Status write_component(const std::string& path, const GraficHeader& header,
                           const std::vector<float>& data, int n) {
  io::FortranWriter writer(path);
  if (!writer.ok()) {
    return make_error(ErrorCode::kIoError, "cannot create " + path);
  }
  auto status = writer.record_scalar(header);
  if (!status.is_ok()) return status;
  const auto plane = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  for (int k = 0; k < n; ++k) {
    status = writer.record_array(std::span<const float>(
        data.data() + static_cast<std::size_t>(k) * plane, plane));
    if (!status.is_ok()) return status;
  }
  return writer.close();
}

gc::Result<std::vector<float>> read_component(const std::string& path,
                                              GraficHeader& header) {
  io::FortranReader reader(path);
  if (!reader.ok()) {
    return make_error(ErrorCode::kIoError, "cannot open " + path);
  }
  auto h = reader.record_scalar<GraficHeader>();
  if (!h.is_ok()) return h.status();
  header = h.value();
  if (header.np1 <= 0 || header.np1 != header.np2 ||
      header.np2 != header.np3) {
    return make_error(ErrorCode::kIoError, "non-cubic grafic grid in " + path);
  }
  const auto n = static_cast<std::size_t>(header.np1);
  std::vector<float> data;
  data.reserve(n * n * n);
  for (std::size_t k = 0; k < n; ++k) {
    auto plane = reader.record_array<float>();
    if (!plane.is_ok()) return plane.status();
    if (plane.value().size() != n * n) {
      return make_error(ErrorCode::kIoError, "bad plane size in " + path);
    }
    data.insert(data.end(), plane.value().begin(), plane.value().end());
  }
  return data;
}

}  // namespace

gc::Status write_level(const std::string& dir, const IcLevel& level,
                       const cosmo::Params& params) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return make_error(ErrorCode::kIoError, "cannot create dir " + dir);

  GraficHeader header;
  header.np1 = header.np2 = header.np3 = level.n;
  header.dx = static_cast<float>(level.cell_mpc());
  header.x1o = static_cast<float>(level.origin.x);
  header.x2o = static_cast<float>(level.origin.y);
  header.x3o = static_cast<float>(level.origin.z);
  header.astart = static_cast<float>(level.a_start);
  header.omega_m = static_cast<float>(params.omega_m);
  header.omega_v = static_cast<float>(params.omega_l);
  header.h0 = static_cast<float>(100.0 * params.h);

  const std::vector<float>* fields[7] = {
      &level.delta,   &level.disp[0], &level.disp[1], &level.disp[2],
      &level.vel[0], &level.vel[1],  &level.vel[2]};
  for (std::size_t f = 0; f < kFiles.size(); ++f) {
    auto status = write_component(dir + "/" + kFiles[f], header, *fields[f],
                                  level.n);
    if (!status.is_ok()) return status;
  }
  return Status::ok();
}

gc::Result<IcLevel> read_level(const std::string& dir) {
  IcLevel level;
  GraficHeader header{};
  std::vector<float>* fields[7] = {
      &level.delta,   &level.disp[0], &level.disp[1], &level.disp[2],
      &level.vel[0], &level.vel[1],  &level.vel[2]};
  for (std::size_t f = 0; f < kFiles.size(); ++f) {
    auto data = read_component(dir + "/" + kFiles[f], header);
    if (!data.is_ok()) return data.status();
    *fields[f] = std::move(data.value());
  }
  level.n = header.np1;
  level.box_mpc = static_cast<double>(header.dx) * header.np1;
  level.origin = Vec3{header.x1o, header.x2o, header.x3o};
  level.a_start = header.astart;
  return level;
}

gc::Result<GraficHeader> read_header(const std::string& file) {
  io::FortranReader reader(file);
  if (!reader.ok()) {
    return make_error(ErrorCode::kIoError, "cannot open " + file);
  }
  return reader.record_scalar<GraficHeader>();
}

}  // namespace gc::grafic
