// GRAFIC file format.
//
// Real GRAFIC writes, per field component, a Fortran binary file with a
// header record (grid dims, cell size, offsets, a_start, cosmology) and
// one record per z-plane of float32 values; RAMSES reads exactly that
// ("These initial conditions are read from Fortran binary files",
// Section 3). write_level produces the seven standard files in a directory:
//   ic_deltac, ic_poscx/y/z, ic_velcx/y/z
// and read_level loads them back.
#pragma once

#include <string>

#include "common/status.hpp"
#include "grafic/ic.hpp"

namespace gc::grafic {

struct GraficHeader {
  std::int32_t np1, np2, np3;
  float dx;              ///< cell size (Mpc/h)
  float x1o, x2o, x3o;   ///< level origin (Mpc/h)
  float astart;
  float omega_m, omega_v;
  float h0;              ///< km/s/Mpc
};

/// Writes one IC level into `dir` (created if needed).
gc::Status write_level(const std::string& dir, const IcLevel& level,
                       const cosmo::Params& params);

/// Reads a level previously written by write_level.
gc::Result<IcLevel> read_level(const std::string& dir);

/// Reads only the header of one component file.
gc::Result<GraficHeader> read_header(const std::string& file);

}  // namespace gc::grafic
