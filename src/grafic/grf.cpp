#include "grafic/grf.hpp"

#include <cmath>

#include "common/log.hpp"
#include "math/fft.hpp"

namespace gc::grafic {

math::Grid3<double> gaussian_random_field(int n, double box_mpc,
                                          const PowerFn& power, Rng& rng,
                                          const GrfOptions& options) {
  GC_CHECK(n > 0 && math::is_pow2(static_cast<std::size_t>(n)));
  GC_CHECK(box_mpc > 0.0);
  const auto nu = static_cast<std::size_t>(n);
  const double volume = box_mpc * box_mpc * box_mpc;
  const double n3 = static_cast<double>(nu * nu * nu);

  // White noise, unit variance per cell.
  std::vector<math::Complex> field(nu * nu * nu);
  for (auto& v : field) v = math::Complex(rng.normal(), 0.0);

  math::fft3(field, nu, false);

  // Scale each mode: after a forward FFT of unit white noise, |W_k|^2
  // averages N^3; the discrete field with spectrum P needs |delta_k|^2 =
  // P(k) N^6 / V, so multiply by sqrt(P(k) / V) (white noise supplies the
  // sqrt(N^3) and the inverse FFT divides by N^3).
  const double kf = 2.0 * M_PI / box_mpc;  // fundamental frequency
  for (std::size_t i = 0; i < nu; ++i) {
    for (std::size_t j = 0; j < nu; ++j) {
      for (std::size_t l = 0; l < nu; ++l) {
        const double kx = kf * static_cast<double>(math::freq_index(i, nu));
        const double ky = kf * static_cast<double>(math::freq_index(j, nu));
        const double kz = kf * static_cast<double>(math::freq_index(l, nu));
        const double k = std::sqrt(kx * kx + ky * ky + kz * kz);
        double amp = 0.0;
        if (k > 0.0 && (options.k_min <= 0.0 || k >= options.k_min) &&
            (options.k_max <= 0.0 || k <= options.k_max)) {
          amp = std::sqrt(power(k) * n3 / volume);
        }
        field[(i * nu + j) * nu + l] *= amp;
      }
    }
  }

  math::fft3(field, nu, true);

  // With the conventions F_k = sum_x f_x e^{-ikx} and P(k) = V <|F_k|^2> /
  // N^6, white noise gives <|W_k|^2> = N^3, so the sqrt(P N^3 / V) factor
  // above yields exactly the target spectrum after the (1/N^3) inverse.
  math::Grid3<double> out(nu);
  for (std::size_t idx = 0; idx < field.size(); ++idx) {
    out.raw()[idx] = field[idx].real();
  }
  return out;
}

std::vector<std::pair<double, double>> measure_power(
    const math::Grid3<double>& delta, double box_mpc, int bins) {
  const std::size_t n = delta.n();
  std::vector<math::Complex> field(n * n * n);
  for (std::size_t i = 0; i < field.size(); ++i) {
    field[i] = math::Complex(delta.raw()[i], 0.0);
  }
  math::fft3(field, n, false);

  const double volume = box_mpc * box_mpc * box_mpc;
  const double n3 = static_cast<double>(n * n * n);
  const double kf = 2.0 * M_PI / box_mpc;
  const double k_nyq = kf * static_cast<double>(n) / 2.0;

  std::vector<double> power_sum(static_cast<std::size_t>(bins), 0.0);
  std::vector<double> k_sum(static_cast<std::size_t>(bins), 0.0);
  std::vector<std::size_t> counts(static_cast<std::size_t>(bins), 0);
  const double log_lo = std::log(kf);
  const double log_hi = std::log(k_nyq);

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t l = 0; l < n; ++l) {
        const double kx = kf * static_cast<double>(math::freq_index(i, n));
        const double ky = kf * static_cast<double>(math::freq_index(j, n));
        const double kz = kf * static_cast<double>(math::freq_index(l, n));
        const double k = std::sqrt(kx * kx + ky * ky + kz * kz);
        if (k <= 0.0 || k > k_nyq) continue;
        int bin = static_cast<int>((std::log(k) - log_lo) /
                                   (log_hi - log_lo) * bins);
        if (bin < 0) bin = 0;
        if (bin >= bins) bin = bins - 1;
        const math::Complex& m = field[(i * n + j) * n + l];
        const double p = std::norm(m) * volume / (n3 * n3);
        power_sum[static_cast<std::size_t>(bin)] += p;
        k_sum[static_cast<std::size_t>(bin)] += k;
        counts[static_cast<std::size_t>(bin)] += 1;
      }
    }
  }

  std::vector<std::pair<double, double>> out;
  for (int b = 0; b < bins; ++b) {
    const auto bu = static_cast<std::size_t>(b);
    if (counts[bu] == 0) continue;
    out.emplace_back(k_sum[bu] / static_cast<double>(counts[bu]),
                     power_sum[bu] / static_cast<double>(counts[bu]));
  }
  return out;
}

}  // namespace gc::grafic
