// Gaussian random fields with a prescribed power spectrum.
//
// GRAFIC's core operation: fill a periodic grid with a realization of the
// linear density field. Method: unit white noise in real space, forward
// FFT, multiply each mode by sqrt(P(k) / V_cell) (convolution theorem),
// inverse FFT. The result is real by construction and has the target
// spectrum in expectation.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.hpp"
#include "math/grid3.hpp"

namespace gc::grafic {

/// P(k) with k in h/Mpc, P in (Mpc/h)^3.
using PowerFn = std::function<double(double)>;

struct GrfOptions {
  /// Only keep modes with k >= k_min (h/Mpc). Used by the multi-level
  /// generator: a child box only adds power above its parent's Nyquist
  /// frequency. 0 = keep everything.
  double k_min = 0.0;
  /// Only keep modes with k <= k_max; 0 = no cutoff (grid Nyquist rules).
  double k_max = 0.0;
};

/// Generates delta on an n^3 grid covering a periodic box of box_mpc
/// (Mpc/h) per side.
math::Grid3<double> gaussian_random_field(int n, double box_mpc,
                                          const PowerFn& power, Rng& rng,
                                          const GrfOptions& options = {});

/// Measured P(k) of a field, binned in k (used by tests to close the
/// loop). Returns pairs (k_center, P) for `bins` log bins.
std::vector<std::pair<double, double>> measure_power(
    const math::Grid3<double>& delta, double box_mpc, int bins);

}  // namespace gc::grafic
