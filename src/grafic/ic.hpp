// Initial conditions generator (our GRAFIC).
//
// Section 3: "Two types of initial conditions can be generated with
// GRAFIC: single level [...] multiple levels: [...] multiple, nested boxes
// of smaller and smaller dimensions, as for Russian dolls. The smallest
// box is centered around the halo region."
//
// A level carries Zel'dovich displacement and peculiar-velocity fields on
// its grid; RAMSES turns them into particles. Multi-level generation takes
// the long-wavelength modes from the parent level (trilinear resampling)
// and adds only the power above the parent's Nyquist frequency — the
// nested boxes therefore agree on shared scales, as GRAFIC's mode
// conditioning guarantees.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "cosmo/cosmology.hpp"
#include "cosmo/power.hpp"
#include "grafic/grf.hpp"

namespace gc::grafic {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;
};

struct IcLevel {
  int level = 0;        ///< 0 = base box
  int n = 0;            ///< grid points per dimension
  double box_mpc = 0.0; ///< comoving size of this level's box (Mpc/h)
  Vec3 origin;          ///< lower corner in base-box coordinates (Mpc/h)
  double a_start = 0.0;

  /// Zel'dovich displacement (Mpc/h) and peculiar velocity (km/s), n^3
  /// row-major grids per component.
  std::array<std::vector<float>, 3> disp;
  std::array<std::vector<float>, 3> vel;
  /// Linear overdensity at a_start (kept for diagnostics/halo seeding).
  std::vector<float> delta;

  [[nodiscard]] std::size_t cells() const {
    return static_cast<std::size_t>(n) * static_cast<std::size_t>(n) *
           static_cast<std::size_t>(n);
  }
  [[nodiscard]] double cell_mpc() const {
    return box_mpc / static_cast<double>(n);
  }
};

struct InitialConditions {
  cosmo::Params params;
  std::vector<IcLevel> levels;  ///< [0] = base, then nested boxes
};

class Generator {
 public:
  Generator(const cosmo::Params& params, std::uint64_t seed);

  /// Enables second-order Lagrangian perturbation theory (2LPT, as in
  /// GRAFIC2): displacements gain the -3/7 D^2 correction term, which
  /// suppresses the transients a pure Zel'dovich start injects. Off by
  /// default (the paper's era mostly ran Zel'dovich ICs).
  void set_second_order(bool enabled) { second_order_ = enabled; }
  [[nodiscard]] bool second_order() const { return second_order_; }

  /// "Standard" single-level ICs for the first, low-resolution run.
  InitialConditions single_level(int n, double box_mpc, double a_start);

  /// Zoom ICs: base box plus `extra_levels` nested boxes, each half the
  /// size of its parent, centred on `centre` (base-box Mpc/h coordinates).
  /// This matches the "number of zoom levels (number of nested boxes)"
  /// IN argument of ramsesZoom2.
  InitialConditions multi_level(int n, double box_mpc, double a_start,
                                Vec3 centre, int extra_levels);

 private:
  IcLevel build_level(int level_index, int n, double box_mpc, Vec3 origin,
                      double a_start, const IcLevel* parent);

  cosmo::Params params_;
  cosmo::Cosmology cosmology_;
  cosmo::PowerSpectrum power_;
  Rng rng_;
  bool second_order_ = false;
};

/// Second-order source S2 = sum_{i<j} (phi,ii phi,jj - phi,ij^2) and the
/// resulting 2LPT displacement field psi2 = grad(laplace^-1 S2), computed
/// spectrally from the (first-order) density field. Exposed for tests.
std::array<std::vector<float>, 3> second_order_displacement(
    const std::vector<float>& delta, int n, double box_mpc);

/// Trilinear periodic sample of an n^3 row-major float grid at fractional
/// grid coordinates (gx, gy, gz). Exposed for tests and the particle
/// loader.
double trilinear(const std::vector<float>& grid, int n, double gx, double gy,
                 double gz);

}  // namespace gc::grafic
