#include "grafic/ic.hpp"

#include <cmath>

#include "common/log.hpp"
#include "math/fft.hpp"
#include "parallel/pool.hpp"

namespace gc::grafic {

namespace {

/// Frequencies kf * freq_index(i, n) for every grid index, hoisted out of
/// the k-space loops (kx/ky are invariant in the j/l loops).
std::vector<double> frequency_table(std::size_t n, double kf) {
  std::vector<double> k1d(n);
  for (std::size_t i = 0; i < n; ++i) {
    k1d[i] = kf * static_cast<double>(math::freq_index(i, n));
  }
  return k1d;
}

}  // namespace

std::array<std::vector<float>, 3> second_order_displacement(
    const std::vector<float>& delta, int n, double box_mpc) {
  const auto nu = static_cast<std::size_t>(n);
  const double kf = 2.0 * M_PI / box_mpc;
  const std::size_t n3 = nu * nu * nu;
  const std::vector<double> k1d = frequency_table(nu, kf);

  // Forward transform of delta (= -laplace(phi) up to the growth factor;
  // we work with phi normalized so that delta = -lap phi, i.e. phi_k =
  // delta_k / k^2).
  std::vector<math::Complex> dk(n3);
  parallel::parallel_for(0, n3, 8192,
                         [&](std::size_t begin, std::size_t end) {
                           for (std::size_t i = begin; i < end; ++i) {
                             dk[i] = {delta[i], 0.0};
                           }
                         });
  math::fft3(dk, nu, false);

  // phi,ab in real space for one index pair (a, b).
  auto second_derivative = [&](int a, int b) {
    std::vector<math::Complex> field(n3);
    for (std::size_t i = 0; i < nu; ++i) {
      const double ki = k1d[i];
      for (std::size_t j = 0; j < nu; ++j) {
        const double kj = k1d[j];
        const double kij2 = ki * ki + kj * kj;
        const math::Complex* drow = dk.data() + (i * nu + j) * nu;
        math::Complex* frow = field.data() + (i * nu + j) * nu;
        for (std::size_t l = 0; l < nu; ++l) {
          const double kl = k1d[l];
          const double k2 = kij2 + kl * kl;
          const double kk[3] = {ki, kj, kl};
          // phi_k = delta_k / k^2; phi,ab <-> -k_a k_b phi_k.
          frow[l] = k2 > 0.0
                        ? drow[l] * (-kk[static_cast<size_t>(a)] *
                                     kk[static_cast<size_t>(b)] / k2)
                        : math::Complex(0.0, 0.0);
        }
      }
    }
    math::fft3(field, nu, true);
    std::vector<double> out(n3);
    for (std::size_t i = 0; i < n3; ++i) out[i] = field[i].real();
    return out;
  };

  // The six independent phi,ab fields: one pool task each (the nested FFTs
  // run inline on their worker, so each field's arithmetic is identical at
  // any thread count).
  static constexpr int kPairs[6][2] = {{0, 0}, {1, 1}, {2, 2},
                                       {0, 1}, {0, 2}, {1, 2}};
  std::array<std::vector<double>, 6> fields;
  parallel::parallel_for(0, 6, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t f = begin; f < end; ++f) {
      fields[f] = second_derivative(kPairs[f][0], kPairs[f][1]);
    }
  });
  const auto& pxx = fields[0];
  const auto& pyy = fields[1];
  const auto& pzz = fields[2];
  const auto& pxy = fields[3];
  const auto& pxz = fields[4];
  const auto& pyz = fields[5];

  // S2 = phi,xx phi,yy + phi,xx phi,zz + phi,yy phi,zz
  //      - phi,xy^2 - phi,xz^2 - phi,yz^2.
  std::vector<math::Complex> s2(n3);
  parallel::parallel_for(
      0, n3, 8192, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          s2[i] = {pxx[i] * pyy[i] + pxx[i] * pzz[i] + pyy[i] * pzz[i] -
                       pxy[i] * pxy[i] - pxz[i] * pxz[i] - pyz[i] * pyz[i],
                   0.0};
        }
      });
  math::fft3(s2, nu, false);

  // psi2 = grad(laplace^-1 S2): psi2_k = -i k / k^2 * S2_k... with the
  // standard sign convention matching psi1 = i k / k^2 delta_k the 2LPT
  // displacement enters as x = q + D psi1 - (3/7) D^2 psi2 with
  // psi2 = grad(lap^-1 S2); we return grad(lap^-1 S2) itself.
  std::array<std::vector<float>, 3> psi2;
  std::vector<math::Complex> component(n3);
  for (int axis = 0; axis < 3; ++axis) {
    parallel::parallel_for(
        0, nu, 1, [&](std::size_t i_begin, std::size_t i_end) {
          for (std::size_t i = i_begin; i < i_end; ++i) {
            const double ki = k1d[i];
            for (std::size_t j = 0; j < nu; ++j) {
              const double kj = k1d[j];
              const double kij2 = ki * ki + kj * kj;
              const math::Complex* srow = s2.data() + (i * nu + j) * nu;
              math::Complex* crow = component.data() + (i * nu + j) * nu;
              for (std::size_t l = 0; l < nu; ++l) {
                const double kl = k1d[l];
                const double k2 = kij2 + kl * kl;
                const double kk[3] = {ki, kj, kl};
                crow[l] = k2 > 0.0
                              ? math::Complex(
                                    0.0,
                                    -kk[static_cast<size_t>(axis)] / k2) *
                                    srow[l]
                              : math::Complex(0.0, 0.0);
              }
            }
          }
        });
    math::fft3(component, nu, true);
    auto& out = psi2[static_cast<size_t>(axis)];
    out.resize(n3);
    parallel::parallel_for(0, n3, 8192,
                           [&](std::size_t begin, std::size_t end) {
                             for (std::size_t i = begin; i < end; ++i) {
                               out[i] = static_cast<float>(component[i].real());
                             }
                           });
  }
  return psi2;
}

double trilinear(const std::vector<float>& grid, int n, double gx, double gy,
                 double gz) {
  const auto wrap = [n](int i) { return ((i % n) + n) % n; };
  const auto idx = [n, &wrap](int i, int j, int k) {
    return (static_cast<std::size_t>(wrap(i)) * n + wrap(j)) * n + wrap(k);
  };
  const int i0 = static_cast<int>(std::floor(gx));
  const int j0 = static_cast<int>(std::floor(gy));
  const int k0 = static_cast<int>(std::floor(gz));
  const double fx = gx - i0;
  const double fy = gy - j0;
  const double fz = gz - k0;
  double acc = 0.0;
  for (int di = 0; di <= 1; ++di) {
    for (int dj = 0; dj <= 1; ++dj) {
      for (int dk = 0; dk <= 1; ++dk) {
        const double w = (di ? fx : 1.0 - fx) * (dj ? fy : 1.0 - fy) *
                         (dk ? fz : 1.0 - fz);
        acc += w * grid[idx(i0 + di, j0 + dj, k0 + dk)];
      }
    }
  }
  return acc;
}

Generator::Generator(const cosmo::Params& params, std::uint64_t seed)
    : params_(params), cosmology_(params), power_(params), rng_(seed) {}

InitialConditions Generator::single_level(int n, double box_mpc,
                                          double a_start) {
  InitialConditions ic;
  ic.params = params_;
  ic.levels.push_back(
      build_level(0, n, box_mpc, Vec3{0.0, 0.0, 0.0}, a_start, nullptr));
  return ic;
}

InitialConditions Generator::multi_level(int n, double box_mpc,
                                         double a_start, Vec3 centre,
                                         int extra_levels) {
  GC_CHECK(extra_levels >= 0);
  InitialConditions ic;
  ic.params = params_;
  ic.levels.push_back(
      build_level(0, n, box_mpc, Vec3{0.0, 0.0, 0.0}, a_start, nullptr));
  double size = box_mpc;
  for (int l = 1; l <= extra_levels; ++l) {
    size *= 0.5;
    const Vec3 origin{centre.x - 0.5 * size, centre.y - 0.5 * size,
                      centre.z - 0.5 * size};
    ic.levels.push_back(build_level(l, n, size, origin, a_start,
                                    &ic.levels.back()));
  }
  return ic;
}

IcLevel Generator::build_level(int level_index, int n, double box_mpc,
                               Vec3 origin, double a_start,
                               const IcLevel* parent) {
  const double growth = cosmology_.growth(a_start);
  const auto power_at_start = [this, growth](double k) {
    return power_(k) * growth * growth;
  };

  // Small-scale realization: everything for the base level; only modes
  // above the parent's Nyquist for nested levels.
  GrfOptions options;
  if (parent != nullptr) {
    options.k_min = M_PI * static_cast<double>(parent->n) / parent->box_mpc;
  }
  math::Grid3<double> delta =
      gaussian_random_field(n, box_mpc, power_at_start, rng_, options);

  // Long-wavelength conditioning from the parent: resample the parent's
  // delta at this level's cell centres.
  if (parent != nullptr) {
    const auto nu = static_cast<std::size_t>(n);
    const double cell = box_mpc / n;
    const double parent_cell = parent->box_mpc / parent->n;
    parallel::parallel_for(0, nu, 1, [&](std::size_t i_begin,
                                         std::size_t i_end) {
    for (std::size_t i = i_begin; i < i_end; ++i) {
      for (std::size_t j = 0; j < nu; ++j) {
        for (std::size_t k = 0; k < nu; ++k) {
          // Position of this child cell centre in parent grid coordinates
          // (cell centres sit at (idx + 0.5) * cell).
          const double px =
              (origin.x - parent->origin.x + (i + 0.5) * cell) / parent_cell -
              0.5;
          const double py =
              (origin.y - parent->origin.y + (j + 0.5) * cell) / parent_cell -
              0.5;
          const double pz =
              (origin.z - parent->origin.z + (k + 0.5) * cell) / parent_cell -
              0.5;
          delta.at(i, j, k) += trilinear(parent->delta, parent->n, px, py, pz);
        }
      }
    }
    });
  }

  // Zel'dovich displacement: psi(k) = i k / k^2 * delta(k).
  const auto nu = static_cast<std::size_t>(n);
  std::vector<math::Complex> dk(nu * nu * nu);
  parallel::parallel_for(0, dk.size(), 8192,
                         [&](std::size_t begin, std::size_t end) {
                           for (std::size_t idx = begin; idx < end; ++idx) {
                             dk[idx] = math::Complex(delta.raw()[idx], 0.0);
                           }
                         });
  math::fft3(dk, nu, false);

  IcLevel out;
  out.level = level_index;
  out.n = n;
  out.box_mpc = box_mpc;
  out.origin = origin;
  out.a_start = a_start;
  out.delta.resize(delta.size());
  for (std::size_t i = 0; i < delta.size(); ++i) {
    out.delta[i] = static_cast<float>(delta.raw()[i]);
  }

  const double kf = 2.0 * M_PI / box_mpc;
  const std::vector<double> k1d = frequency_table(nu, kf);
  std::vector<math::Complex> psi(nu * nu * nu);
  for (int axis = 0; axis < 3; ++axis) {
    parallel::parallel_for(
        0, nu, 1, [&](std::size_t i_begin, std::size_t i_end) {
          for (std::size_t i = i_begin; i < i_end; ++i) {
            const double ki = k1d[i];
            for (std::size_t j = 0; j < nu; ++j) {
              const double kj = k1d[j];
              const double kij2 = ki * ki + kj * kj;
              const math::Complex* drow = dk.data() + (i * nu + j) * nu;
              math::Complex* prow = psi.data() + (i * nu + j) * nu;
              for (std::size_t l = 0; l < nu; ++l) {
                const double kl = k1d[l];
                const double k2 = kij2 + kl * kl;
                const double kv[3] = {ki, kj, kl};
                if (k2 <= 0.0) {
                  prow[l] = 0.0;
                } else {
                  // i * k / k^2 * delta_k
                  prow[l] = math::Complex(0.0, kv[axis] / k2) * drow[l];
                }
              }
            }
          }
        });
    math::fft3(psi, nu, true);

    auto& d = out.disp[static_cast<std::size_t>(axis)];
    auto& v = out.vel[static_cast<std::size_t>(axis)];
    d.resize(psi.size());
    v.resize(psi.size());
    // v = a H(a) f(a) psi; with psi in Mpc/h and H/h = 100 E(a) km/s/Mpc,
    // the h's cancel and v comes out in km/s.
    const double vfact = a_start * 100.0 * cosmology_.efunc(a_start) *
                         cosmology_.growth_rate(a_start);
    for (std::size_t idx = 0; idx < psi.size(); ++idx) {
      d[idx] = static_cast<float>(psi[idx].real());
      v[idx] = static_cast<float>(psi[idx].real() * vfact);
    }
  }

  if (second_order_) {
    // 2LPT: x = q + psi1 - (3/7) psi2 where psi2 is built from the
    // *already grown* delta (so the D^2 scaling is implicit), and the
    // velocity term carries f2 ~ 2 Omega_m(a)^(6/11).
    const auto psi2 = second_order_displacement(out.delta, n, box_mpc);
    const double e = cosmology_.efunc(a_start);
    const double omega_a =
        params_.omega_m / (a_start * a_start * a_start * e * e);
    const double f2 = 2.0 * std::pow(omega_a, 6.0 / 11.0);
    const double v2fact = a_start * 100.0 * e * f2;
    for (int axis = 0; axis < 3; ++axis) {
      auto& d = out.disp[static_cast<std::size_t>(axis)];
      auto& v = out.vel[static_cast<std::size_t>(axis)];
      const auto& p2 = psi2[static_cast<std::size_t>(axis)];
      for (std::size_t idx = 0; idx < d.size(); ++idx) {
        const double correction = -(3.0 / 7.0) * p2[idx];
        d[idx] += static_cast<float>(correction);
        v[idx] += static_cast<float>(correction * v2fact);
      }
    }
  }
  return out;
}

}  // namespace gc::grafic
