// RAII observability session: enables the tracer, metrics registry,
// time-series sampler, and/or request journal on construction, writes the
// exports and disables them on destruction.
//
// Binaries create one at the top of main():
//
//   gc::obs::Session obs = gc::obs::Session::from_cli(args);
//
// which resolves `--trace <path>` / `--metrics <path>` /
// `--timeseries <path>` / `--journal <path>` flags with `GC_TRACE` /
// `GC_METRICS` / `GC_TIMESERIES` / `GC_JOURNAL` env-var fallbacks, and
// `--metrics-interval <seconds>` (`GC_METRICS_INTERVAL`) for the sampling
// period. A default-constructed (or all-empty) session enables nothing and
// writes nothing, so the flags are free to plumb unconditionally.
//
// Metrics output format follows the extension: `.json` gets the flat JSON
// dump, anything else the Prometheus text exposition. Time-series and
// journal exports are always JSONL.
//
// `--timeseries` implies the metrics registry is enabled (the sampler
// snapshots it), whether or not `--metrics` asks for the final dump.
#pragma once

#include <string>

namespace gc {
class CliArgs;
}

namespace gc::obs {

class Session {
 public:
  /// All paths optional; empty = that subsystem stays off.
  struct Config {
    std::string trace_path;
    std::string metrics_path;
    std::string timeseries_path;
    std::string journal_path;
    double metrics_interval_s = 0.0;  ///< <= 0 keeps the sampler's default
  };

  Session() = default;
  Session(std::string trace_path, std::string metrics_path);
  explicit Session(Config config);
  ~Session();

  Session(Session&& other) noexcept;
  Session& operator=(Session&& other) noexcept;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Reads --trace/--metrics/--timeseries/--journal/--metrics-interval
  /// (GC_TRACE/GC_METRICS/GC_TIMESERIES/GC_JOURNAL/GC_METRICS_INTERVAL as
  /// fallbacks).
  static Session from_cli(const CliArgs& args);

  [[nodiscard]] bool trace_active() const { return !trace_path_.empty(); }
  [[nodiscard]] bool metrics_active() const { return !metrics_path_.empty(); }
  [[nodiscard]] bool timeseries_active() const {
    return !timeseries_path_.empty();
  }
  [[nodiscard]] bool journal_active() const { return !journal_path_.empty(); }

  /// Writes exports now and disables the subsystems; the destructor then
  /// does nothing. Useful to flush before process-exit shortcuts.
  void finish();

 private:
  std::string trace_path_;
  std::string metrics_path_;
  std::string timeseries_path_;
  std::string journal_path_;
};

}  // namespace gc::obs
