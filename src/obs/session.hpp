// RAII observability session: enables the tracer and/or metrics registry
// on construction, writes the exports and disables them on destruction.
//
// Binaries create one at the top of main():
//
//   gc::obs::Session obs = gc::obs::Session::from_cli(args);
//
// which resolves `--trace <path>` / `--metrics <path>` flags with
// `GC_TRACE` / `GC_METRICS` env-var fallbacks. A default-constructed (or
// empty-path) session enables nothing and writes nothing, so the flags are
// free to plumb unconditionally.
//
// Metrics output format follows the extension: `.json` gets the flat JSON
// dump, anything else the Prometheus text exposition.
#pragma once

#include <string>

namespace gc {
class CliArgs;
}

namespace gc::obs {

class Session {
 public:
  Session() = default;
  Session(std::string trace_path, std::string metrics_path);
  ~Session();

  Session(Session&& other) noexcept;
  Session& operator=(Session&& other) noexcept;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Reads --trace/--metrics (GC_TRACE/GC_METRICS as fallback).
  static Session from_cli(const CliArgs& args);

  [[nodiscard]] bool trace_active() const { return !trace_path_.empty(); }
  [[nodiscard]] bool metrics_active() const { return !metrics_path_.empty(); }

  /// Writes exports now and disables the subsystems; the destructor then
  /// does nothing. Useful to flush before process-exit shortcuts.
  void finish();

 private:
  std::string trace_path_;
  std::string metrics_path_;
};

}  // namespace gc::obs
