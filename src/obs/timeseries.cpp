#include "obs/timeseries.hpp"

#include <chrono>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/log.hpp"
#include "obs/trace.hpp"

namespace gc::obs {

TimeSeries& TimeSeries::instance() {
  static TimeSeries* series = new TimeSeries();  // leaked: outlive all callers
  return *series;
}

void TimeSeries::set_interval(double seconds) {
  GC_CHECK_MSG(seconds > 0.0, "time-series interval must be positive");
  interval_s_.store(seconds, std::memory_order_relaxed);
}

void TimeSeries::sample(double t) {
  if (!enabled()) return;
  Sample s;
  s.t = t;
  s.snap = Metrics::instance().snapshot();
  std::lock_guard<std::mutex> lock(mutex_);
  samples_.push_back(std::move(s));
}

std::size_t TimeSeries::sample_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_.size();
}

std::string TimeSeries::to_jsonl() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const Sample& s : samples_) {
    out << "{\"t\": " << fmt_double(s.t) << ", \"counters\": {";
    bool first = true;
    for (const auto& [key, v] : s.snap.counters) {
      if (!first) out << ", ";
      out << '"' << escape_json(key) << "\": " << v;
      first = false;
    }
    out << "}, \"gauges\": {";
    first = true;
    for (const auto& [key, v] : s.snap.gauges) {
      if (!first) out << ", ";
      out << '"' << escape_json(key) << "\": " << fmt_double(v);
      first = false;
    }
    out << "}, \"histograms\": {";
    first = true;
    for (const auto& h : s.snap.histograms) {
      if (!first) out << ", ";
      out << '"' << escape_json(h.key) << "\": {\"count\": " << h.count
          << ", \"sum\": " << fmt_double(h.sum) << '}';
      first = false;
    }
    out << "}}\n";
  }
  return out.str();
}

Status TimeSeries::write_jsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return make_error(ErrorCode::kIoError, "cannot open " + path);
  }
  out << to_jsonl();
  out.flush();
  if (!out) {
    return make_error(ErrorCode::kIoError, "short write to " + path);
  }
  return Status::ok();
}

void TimeSeries::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  samples_.clear();
}

void TimeSeries::start_wall_sampler() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(thread_mutex_);
  if (worker_.joinable()) return;  // already sampling
  stop_requested_ = false;
  // Sampling service thread (like RealEnv's dispatcher), not
  // data-parallel work for the shared pool.
  worker_ = std::thread([this] {  // gclint: allow(thread) sampler backend
    sample(wall_seconds());
    std::unique_lock<std::mutex> lock(thread_mutex_);
    while (!stop_requested_) {
      const auto period = std::chrono::duration<double>(interval());
      if (thread_cv_.wait_for(lock, period,
                              [this] { return stop_requested_; })) {
        break;
      }
      lock.unlock();
      sample(wall_seconds());
      lock.lock();
    }
  });
}

void TimeSeries::stop_wall_sampler() {
  {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    if (!worker_.joinable()) return;
    stop_requested_ = true;
    thread_cv_.notify_all();
  }
  worker_.join();
  sample(wall_seconds());  // closing sample so short runs still get curves
}

}  // namespace gc::obs
