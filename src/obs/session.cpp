#include "obs/session.hpp"

#include <cstdlib>
#include <utility>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gc::obs {

Session::Session(std::string trace_path, std::string metrics_path)
    : trace_path_(std::move(trace_path)),
      metrics_path_(std::move(metrics_path)) {
  if (!trace_path_.empty()) {
    Tracer::instance().clear();
    Tracer::instance().set_enabled(true);
  }
  if (!metrics_path_.empty()) {
    Metrics::instance().reset();
    Metrics::instance().set_enabled(true);
  }
}

Session::~Session() { finish(); }

Session::Session(Session&& other) noexcept
    : trace_path_(std::exchange(other.trace_path_, {})),
      metrics_path_(std::exchange(other.metrics_path_, {})) {}

Session& Session::operator=(Session&& other) noexcept {
  if (this != &other) {
    finish();
    trace_path_ = std::exchange(other.trace_path_, {});
    metrics_path_ = std::exchange(other.metrics_path_, {});
  }
  return *this;
}

Session Session::from_cli(const CliArgs& args) {
  std::string trace = args.get("trace", "");
  std::string metrics = args.get("metrics", "");
  if (trace.empty()) {
    if (const char* env = std::getenv("GC_TRACE")) trace = env;
  }
  if (metrics.empty()) {
    if (const char* env = std::getenv("GC_METRICS")) metrics = env;
  }
  return Session(std::move(trace), std::move(metrics));
}

void Session::finish() {
  if (!trace_path_.empty()) {
    const Status st = Tracer::instance().write_chrome_trace(trace_path_);
    if (!st.is_ok()) {
      GC_ERROR << "trace export failed: " << st.to_string();
    } else {
      GC_INFO << "trace written to " << trace_path_ << " ("
              << Tracer::instance().event_count() << " events)";
    }
    Tracer::instance().set_enabled(false);
    trace_path_.clear();
  }
  if (!metrics_path_.empty()) {
    const bool json = metrics_path_.size() >= 5 &&
                      metrics_path_.compare(metrics_path_.size() - 5, 5,
                                            ".json") == 0;
    const Status st = json ? Metrics::instance().write_json(metrics_path_)
                           : Metrics::instance().write_prometheus(metrics_path_);
    if (!st.is_ok()) {
      GC_ERROR << "metrics export failed: " << st.to_string();
    } else {
      GC_INFO << "metrics written to " << metrics_path_;
    }
    Metrics::instance().set_enabled(false);
    metrics_path_.clear();
  }
}

}  // namespace gc::obs
