#include "obs/session.hpp"

#include <cstdlib>
#include <utility>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace gc::obs {

namespace {

/// Flag value with env-var fallback: empty flag -> getenv(env) -> "".
std::string flag_or_env(const CliArgs& args, const std::string& flag,
                        const char* env) {
  std::string value = args.get(flag, "");
  if (value.empty()) {
    if (const char* from_env = std::getenv(env)) value = from_env;
  }
  return value;
}

}  // namespace

Session::Session(std::string trace_path, std::string metrics_path)
    : Session(Config{std::move(trace_path), std::move(metrics_path), "", "",
                     0.0}) {}

Session::Session(Config config)
    : trace_path_(std::move(config.trace_path)),
      metrics_path_(std::move(config.metrics_path)),
      timeseries_path_(std::move(config.timeseries_path)),
      journal_path_(std::move(config.journal_path)) {
  if (!trace_path_.empty()) {
    Tracer::instance().clear();
    Tracer::instance().set_enabled(true);
  }
  if (!metrics_path_.empty() || !timeseries_path_.empty()) {
    // The sampler snapshots the registry, so --timeseries implies metrics
    // collection even without a --metrics dump at the end.
    Metrics::instance().reset();
    Metrics::instance().set_enabled(true);
  }
  if (!timeseries_path_.empty()) {
    TimeSeries::instance().clear();
    if (config.metrics_interval_s > 0.0) {
      TimeSeries::instance().set_interval(config.metrics_interval_s);
    }
    TimeSeries::instance().set_enabled(true);
  }
  if (!journal_path_.empty()) {
    Journal::instance().clear();
    Journal::instance().set_enabled(true);
  }
}

Session::~Session() { finish(); }

Session::Session(Session&& other) noexcept
    : trace_path_(std::exchange(other.trace_path_, {})),
      metrics_path_(std::exchange(other.metrics_path_, {})),
      timeseries_path_(std::exchange(other.timeseries_path_, {})),
      journal_path_(std::exchange(other.journal_path_, {})) {}

Session& Session::operator=(Session&& other) noexcept {
  if (this != &other) {
    finish();
    trace_path_ = std::exchange(other.trace_path_, {});
    metrics_path_ = std::exchange(other.metrics_path_, {});
    timeseries_path_ = std::exchange(other.timeseries_path_, {});
    journal_path_ = std::exchange(other.journal_path_, {});
  }
  return *this;
}

Session Session::from_cli(const CliArgs& args) {
  Config config;
  config.trace_path = flag_or_env(args, "trace", "GC_TRACE");
  config.metrics_path = flag_or_env(args, "metrics", "GC_METRICS");
  config.timeseries_path = flag_or_env(args, "timeseries", "GC_TIMESERIES");
  config.journal_path = flag_or_env(args, "journal", "GC_JOURNAL");
  const std::string interval =
      flag_or_env(args, "metrics-interval", "GC_METRICS_INTERVAL");
  if (!interval.empty()) {
    config.metrics_interval_s = std::strtod(interval.c_str(), nullptr);
    if (config.metrics_interval_s <= 0.0) {
      GC_ERROR << "ignoring non-positive --metrics-interval '" << interval
               << "'";
      config.metrics_interval_s = 0.0;
    }
  }
  return Session(std::move(config));
}

void Session::finish() {
  if (!trace_path_.empty()) {
    const Status st = Tracer::instance().write_chrome_trace(trace_path_);
    if (!st.is_ok()) {
      GC_ERROR << "trace export failed: " << st.to_string();
    } else {
      GC_INFO << "trace written to " << trace_path_ << " ("
              << Tracer::instance().event_count() << " events)";
    }
    Tracer::instance().set_enabled(false);
    trace_path_.clear();
  }
  if (!timeseries_path_.empty()) {
    // Stop the wall sampler if one is running (no-op for DES-driven runs)
    // so the final sample lands before export.
    TimeSeries::instance().stop_wall_sampler();
    const Status st = TimeSeries::instance().write_jsonl(timeseries_path_);
    if (!st.is_ok()) {
      GC_ERROR << "time-series export failed: " << st.to_string();
    } else {
      GC_INFO << "time series written to " << timeseries_path_ << " ("
              << TimeSeries::instance().sample_count() << " samples)";
    }
    TimeSeries::instance().set_enabled(false);
    if (metrics_path_.empty()) {
      // We enabled the registry for the sampler's sake; release it.
      Metrics::instance().set_enabled(false);
    }
    timeseries_path_.clear();
  }
  if (!journal_path_.empty()) {
    const Status st = Journal::instance().write_jsonl(journal_path_);
    if (!st.is_ok()) {
      GC_ERROR << "journal export failed: " << st.to_string();
    } else {
      GC_INFO << "journal written to " << journal_path_ << " ("
              << Journal::instance().record_count() << " records)";
    }
    Journal::instance().set_enabled(false);
    journal_path_.clear();
  }
  if (!metrics_path_.empty()) {
    const bool json = metrics_path_.size() >= 5 &&
                      metrics_path_.compare(metrics_path_.size() - 5, 5,
                                            ".json") == 0;
    const Status st = json ? Metrics::instance().write_json(metrics_path_)
                           : Metrics::instance().write_prometheus(metrics_path_);
    if (!st.is_ok()) {
      GC_ERROR << "metrics export failed: " << st.to_string();
    } else {
      GC_INFO << "metrics written to " << metrics_path_;
    }
    Metrics::instance().set_enabled(false);
    metrics_path_.clear();
  }
}

}  // namespace gc::obs
