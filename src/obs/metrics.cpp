#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/log.hpp"

namespace gc::obs {

/// Deterministic shortest-round-trip-ish double formatting; avoids
/// locale-dependent std::ostream state.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Prometheus label-value escaping: backslash, double quote, and newline
/// must travel escaped inside the quoted value. Applied when the series
/// key is built, so the stored key is already exposition-safe (and the
/// escaping is injective — distinct raw values keep distinct keys). The
/// JSON exporter escapes the whole key string again on top, which is
/// exactly the right double-escaping for a JSON string holding a
/// Prometheus series name.
std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// "name{a=\"x\",b=\"y\"}" with labels sorted by key and values escaped;
/// bare "name" when empty.
std::string series_key(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name;
  key += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += ',';
    key += sorted[i].first;
    key += "=\"";
    key += escape_label_value(sorted[i].second);
    key += '"';
  }
  key += '}';
  return key;
}

/// Splits a series key back into (name, "{labels}" or ""), for exporters
/// that need to splice in extra labels (histogram `le`).
void split_key(const std::string& key, std::string* name, std::string* labels) {
  const std::size_t brace = key.find('{');
  if (brace == std::string::npos) {
    *name = key;
    labels->clear();
  } else {
    *name = key.substr(0, brace);
    *labels = key.substr(brace);
  }
}

Status write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return make_error(ErrorCode::kIoError, "cannot open " + path);
  }
  out << body;
  out.flush();
  if (!out) {
    return make_error(ErrorCode::kIoError, "short write to " + path);
  }
  return Status::ok();
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  GC_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bounds must be ascending");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  // lower_bound for Prometheus `le` semantics: v equal to a bucket's upper
  // edge counts in that bucket, not the next one.
  const std::size_t i =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  std::lock_guard<std::mutex> lock(mutex_);
  ++counts_[i];
  sum_ += v;
  ++count_;
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  std::lock_guard<std::mutex> lock(mutex_);
  GC_CHECK(i < counts_.size());
  return counts_[i];
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fill(counts_.begin(), counts_.end(), 0);
  sum_ = 0.0;
  count_ = 0;
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  int count) {
  GC_CHECK(start > 0.0 && factor > 1.0 && count >= 1);
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double b = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

const std::vector<double>& latency_buckets_s() {
  // 100 us .. ~1.8 h in x4 steps: covers finding times (~50 ms) through
  // hours-scale queueing latency with the same layout everywhere.
  static const std::vector<double> kBuckets =
      Histogram::exponential_bounds(1e-4, 4.0, 13);
  return kBuckets;
}

const std::vector<double>& duration_buckets_s() {
  // 1 s .. ~73 h in x2 steps: campaign makespans and per-step times.
  static const std::vector<double> kBuckets =
      Histogram::exponential_bounds(1.0, 2.0, 19);
  return kBuckets;
}

Metrics& Metrics::instance() {
  static Metrics* metrics = new Metrics();  // leaked: outlive all callers
  return *metrics;
}

void Metrics::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, c] : counters_) c->reset();
  for (auto& [key, g] : gauges_) g->reset();
  for (auto& [key, h] : histograms_) h->reset();
}

Counter& Metrics::counter(const std::string& name, const Labels& labels) {
  const std::string key = series_key(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[key];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Metrics::gauge(const std::string& name, const Labels& labels) {
  const std::string key = series_key(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[key];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Metrics::histogram(const std::string& name,
                              const std::vector<double>& bounds,
                              const Labels& labels) {
  const std::string key = series_key(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[key];
  if (!slot) {
    slot = std::make_unique<Histogram>(bounds);
  } else {
    GC_CHECK_MSG(slot->bounds() == bounds,
                 "histogram re-registered with different bounds: " + key);
  }
  return *slot;
}

MetricsSnapshot Metrics::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [key, c] : counters_) {
    snap.counters.emplace_back(key, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [key, g] : gauges_) {
    snap.gauges.emplace_back(key, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [key, h] : histograms_) {
    snap.histograms.push_back({key, h->count(), h->sum()});
  }
  return snap;
}

std::string Metrics::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  std::string last_type_for;
  auto type_line = [&](const std::string& key, const char* type) {
    std::string name, labels;
    split_key(key, &name, &labels);
    if (name != last_type_for) {
      out << "# TYPE " << name << ' ' << type << '\n';
      last_type_for = name;
    }
    return labels;
  };
  for (const auto& [key, c] : counters_) {
    type_line(key, "counter");
    out << key << ' ' << c->value() << '\n';
  }
  last_type_for.clear();
  for (const auto& [key, g] : gauges_) {
    type_line(key, "gauge");
    out << key << ' ' << fmt_double(g->value()) << '\n';
  }
  last_type_for.clear();
  for (const auto& [key, h] : histograms_) {
    std::string labels = type_line(key, "histogram");
    std::string name, ignored;
    split_key(key, &name, &ignored);
    // Prometheus buckets are cumulative and always end at le="+Inf".
    auto bucket_labels = [&](const std::string& le) {
      if (labels.empty()) return "{le=\"" + le + "\"}";
      return labels.substr(0, labels.size() - 1) + ",le=\"" + le + "\"}";
    };
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h->bounds().size(); ++i) {
      cum += h->bucket_count(i);
      out << name << "_bucket" << bucket_labels(fmt_double(h->bounds()[i]))
          << ' ' << cum << '\n';
    }
    cum += h->bucket_count(h->bounds().size());
    out << name << "_bucket" << bucket_labels("+Inf") << ' ' << cum << '\n';
    out << name << "_sum" << labels << ' ' << fmt_double(h->sum()) << '\n';
    out << name << "_count" << labels << ' ' << h->count() << '\n';
  }
  return out.str();
}

std::string Metrics::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [key, c] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << escape_json(key)
        << "\": " << c->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [key, g] : gauges_) {
    out << (first ? "\n" : ",\n") << "    \"" << escape_json(key)
        << "\": " << fmt_double(g->value());
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [key, h] : histograms_) {
    out << (first ? "\n" : ",\n") << "    \"" << escape_json(key) << "\": {"
        << "\"count\": " << h->count() << ", \"sum\": " << fmt_double(h->sum())
        << ", \"buckets\": [";
    // Raw per-bucket counts here (not cumulative); the "le" value is the
    // bucket's upper edge, "+Inf" spelled as a JSON string for the overflow.
    for (std::size_t i = 0; i <= h->bounds().size(); ++i) {
      if (i > 0) out << ", ";
      out << "{\"le\": ";
      if (i < h->bounds().size()) {
        out << fmt_double(h->bounds()[i]);
      } else {
        out << "\"+Inf\"";
      }
      out << ", \"count\": " << h->bucket_count(i) << '}';
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

Status Metrics::write_prometheus(const std::string& path) const {
  return write_file(path, to_prometheus());
}

Status Metrics::write_json(const std::string& path) const {
  return write_file(path, to_json());
}

}  // namespace gc::obs
