#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

namespace gc::obs {

namespace {

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Microseconds for the trace-event "ts"/"dur" fields; fixed-point output
/// keeps the JSON deterministic across platforms.
std::string fmt_us(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer* tracer = new Tracer();  // leaked: outlive all callers
  return *tracer;
}

SpanId Tracer::begin_span(double ts, const std::string& name,
                          const std::string& track, TraceId trace_id,
                          SpanId parent) {
  if (!enabled()) return 0;
  std::lock_guard<std::mutex> lock(mutex_);
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kSpan;
  ev.name = name;
  ev.track = track;
  ev.ts = ts;
  ev.trace_id = trace_id;
  ev.span_id = next_span_++;
  ev.parent_span = parent;
  ev.seq = next_seq_++;
  ev.open = true;
  events_.push_back(std::move(ev));
  return events_.back().span_id;
}

void Tracer::span_arg(SpanId span, const std::string& key,
                      const std::string& value) {
  if (span == 0 || !enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  // Open spans are recent: scan from the back.
  for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
    if (it->span_id == span) {
      it->args.emplace_back(key, value);
      return;
    }
  }
}

void Tracer::end_span(SpanId span, double ts) {
  if (span == 0 || !enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
    if (it->span_id == span && it->open) {
      it->dur = ts - it->ts;
      if (it->dur < 0.0) it->dur = 0.0;
      it->open = false;
      return;
    }
  }
}

void Tracer::complete_span(double ts, double dur, const std::string& name,
                           const std::string& track, TraceId trace_id,
                           SpanId parent) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kSpan;
  ev.name = name;
  ev.track = track;
  ev.ts = ts;
  ev.dur = dur < 0.0 ? 0.0 : dur;
  ev.trace_id = trace_id;
  ev.span_id = next_span_++;
  ev.parent_span = parent;
  ev.seq = next_seq_++;
  events_.push_back(std::move(ev));
}

void Tracer::instant(double ts, const std::string& name,
                     const std::string& track, TraceId trace_id,
                     std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kInstant;
  ev.name = name;
  ev.track = track;
  ev.ts = ts;
  ev.trace_id = trace_id;
  ev.seq = next_seq_++;
  ev.args = std::move(args);
  events_.push_back(std::move(ev));
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::string Tracer::chrome_trace_json() const {
  std::vector<TraceEvent> evs = events();
  std::stable_sort(evs.begin(), evs.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts != b.ts) return a.ts < b.ts;
                     return a.seq < b.seq;
                   });
  // Tracks become "threads" of one "process"; tids in first-use order of
  // the sorted stream so numbering is deterministic under SimEnv.
  std::map<std::string, int> tids;
  for (const auto& ev : evs) {
    tids.emplace(ev.track, 0);
  }
  {
    // Re-walk in sorted order to assign first-use ids.
    int next_tid = 1;
    std::map<std::string, int> assigned;
    for (const auto& ev : evs) {
      if (assigned.emplace(ev.track, next_tid).second) ++next_tid;
    }
    tids = std::move(assigned);
  }

  std::ostringstream out;
  out << "{\"traceEvents\": [\n";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };
  for (const auto& [track, tid] : tids) {
    sep();
    out << "{\"ph\": \"M\", \"pid\": 1, \"tid\": " << tid
        << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
        << escape_json(track) << "\"}}";
  }
  for (const auto& ev : evs) {
    sep();
    const int tid = tids[ev.track];
    if (ev.phase == TraceEvent::Phase::kSpan) {
      out << "{\"ph\": \"X\", \"pid\": 1, \"tid\": " << tid << ", \"name\": \""
          << escape_json(ev.name) << "\", \"ts\": " << fmt_us(ev.ts)
          << ", \"dur\": " << fmt_us(ev.open ? 0.0 : ev.dur);
    } else {
      out << "{\"ph\": \"i\", \"pid\": 1, \"tid\": " << tid << ", \"name\": \""
          << escape_json(ev.name) << "\", \"ts\": " << fmt_us(ev.ts)
          << ", \"s\": \"t\"";
    }
    out << ", \"args\": {";
    bool first_arg = true;
    auto arg = [&](const std::string& k, const std::string& v) {
      if (!first_arg) out << ", ";
      first_arg = false;
      out << '"' << escape_json(k) << "\": \"" << escape_json(v) << '"';
    };
    if (ev.trace_id != 0) arg("trace_id", std::to_string(ev.trace_id));
    if (ev.span_id != 0) arg("span_id", std::to_string(ev.span_id));
    if (ev.parent_span != 0) arg("parent_span", std::to_string(ev.parent_span));
    for (const auto& [k, v] : ev.args) arg(k, v);
    out << "}}";
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out.str();
}

Status Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return make_error(ErrorCode::kIoError, "cannot open " + path);
  }
  out << chrome_trace_json();
  out.flush();
  if (!out) {
    return make_error(ErrorCode::kIoError, "short write to " + path);
  }
  return Status::ok();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  next_span_ = 1;
  next_seq_ = 0;
}

double wall_seconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point origin = Clock::now();
  return std::chrono::duration<double>(Clock::now() - origin).count();
}

}  // namespace gc::obs
