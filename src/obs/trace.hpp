// Spans & events with causal links, exported as Chrome trace-event JSON.
//
// The tracer is process-global and clock-agnostic: every record call takes
// an explicit timestamp in seconds, supplied by the call site from its
// owning `Env` (`env().now()`). Under SimEnv that is virtual time, under
// RealEnv wall time since the env's origin — the same instrumentation code
// yields a correct trace in both backends.
//
// Causality is carried two ways:
//   - span/parent ids link child spans to enclosing ones (SED "exec" under
//     "queue", client "finding" under "call");
//   - a trace id rides on `net::Envelope` across the middleware hop chain
//     (client → MA → LA → SED → response), so one DIET request is a single
//     trace even though its spans live on different actors' tracks.
//
// Overhead when disabled: record calls are guarded at the call site with
// `if (obs::tracing())` — a single relaxed atomic load, no allocation, no
// locking. Span ids obtained while disabled are 0 and `end_span(0, ..)`
// is a no-op, so begin/end pairs straddling an enable/disable edge are
// safe.
//
// Export: `chrome_trace_json()` emits the Trace Event Format understood by
// Perfetto / chrome://tracing — ph "X" complete events (us timestamps and
// durations), ph "i" instants, ph "M" thread_name metadata naming each
// track. Events sort by (timestamp, record order) and tracks get integer
// tids in first-use order, so output is byte-deterministic under SimEnv.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace gc::obs {

using TraceId = std::uint64_t;
using SpanId = std::uint64_t;

struct TraceEvent {
  enum class Phase { kSpan, kInstant };

  Phase phase = Phase::kInstant;
  std::string name;
  std::string track;   ///< logical timeline, e.g. "agent:MA" or "sed:n3"
  double ts = 0.0;     ///< seconds, from the owning Env's clock
  double dur = 0.0;    ///< seconds; spans only
  TraceId trace_id = 0;
  SpanId span_id = 0;
  SpanId parent_span = 0;
  std::uint64_t seq = 0;  ///< record order, tie-breaker for equal ts
  bool open = false;      ///< span begun but not yet ended
  std::vector<std::pair<std::string, std::string>> args;
};

class Tracer {
 public:
  static Tracer& instance();

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Opens a span at `ts`; returns 0 (and records nothing) when disabled.
  SpanId begin_span(double ts, const std::string& name,
                    const std::string& track, TraceId trace_id = 0,
                    SpanId parent = 0);
  /// Attaches a key/value to an open span; no-op for span 0 / unknown ids.
  void span_arg(SpanId span, const std::string& key, const std::string& value);
  /// Closes the span at `ts`; no-op for span 0 / unknown ids.
  void end_span(SpanId span, double ts);

  /// Records a fully-formed span in one call (known start + duration).
  void complete_span(double ts, double dur, const std::string& name,
                     const std::string& track, TraceId trace_id = 0,
                     SpanId parent = 0);

  /// Records a point event.
  void instant(double ts, const std::string& name, const std::string& track,
               TraceId trace_id = 0,
               std::vector<std::pair<std::string, std::string>> args = {});

  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t event_count() const;

  [[nodiscard]] std::string chrome_trace_json() const;
  Status write_chrome_trace(const std::string& path) const;

  /// Drops all recorded events (open spans included) and resets ids.
  void clear();

 private:
  Tracer() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;  ///< guarded
  SpanId next_span_ = 1;            ///< guarded
  std::uint64_t next_seq_ = 0;      ///< guarded
};

/// One-atomic fast path for instrumentation sites.
inline bool tracing() { return Tracer::instance().enabled(); }

/// Wall-clock seconds since the first call; for instrumenting code that
/// runs outside any Env (the ramses step loop in real pipelines).
double wall_seconds();

}  // namespace gc::obs
