// Metrics registry: counters, gauges, histograms with fixed bucket layouts.
//
// One process-global registry (like the tracer in obs/trace.hpp) shared by
// both execution backends. Instruments are cheap atomics once created;
// recording sites additionally gate on `metrics_on()` — a single relaxed
// atomic load — so a build with metrics compiled in pays near-zero cost
// while no exporter is attached.
//
// Instrument identity is (name, sorted labels); the registry hands back the
// same instrument for the same identity, so per-agent / per-SED / per-link
// series coexist under one metric name, Prometheus style:
//
//   diet_sed_queue_depth{sed="SeD-capricorne-1"}  3
//
// `reset()` zeroes values but never destroys instruments — call sites may
// cache `Counter*` / `Histogram*` across resets (the parallel pool does).
//
// Exporters: Prometheus-style text (cumulative histogram buckets, `le`
// labels) and a flat JSON dump (raw per-bucket counts). Both iterate the
// registry in key order, so output is deterministic for a deterministic
// run (the DES campaigns).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace gc::obs {

using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-layout histogram: `bounds` are ascending bucket upper edges; an
/// implicit +Inf bucket catches the rest. The layout is immutable after
/// construction so concurrent observers only take the mutex to bump counts.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Raw (non-cumulative) count of bucket i; i == bounds().size() is +Inf.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const;
  void reset();

  /// `count` bounds starting at `start`, each `factor` times the previous.
  static std::vector<double> exponential_bounds(double start, double factor,
                                                int count);

 private:
  std::vector<double> bounds_;
  mutable std::mutex mutex_;
  std::vector<std::uint64_t> counts_;  ///< bounds_.size() + 1, guarded
  double sum_ = 0.0;                   ///< guarded
  std::uint64_t count_ = 0;            ///< guarded
};

/// Shared fixed layouts (seconds): middleware-scale latencies (100 us .. ~1h)
/// and campaign-scale durations (1 s .. ~100 h).
const std::vector<double>& latency_buckets_s();
const std::vector<double>& duration_buckets_s();

/// Point-in-time copy of every instrument's value, keyed by the registry's
/// series key (name + sorted, escaped labels), in key order. What the
/// time-series sampler appends once per tick; histograms are summarized as
/// (count, sum) — the per-bucket layout never changes over a run, so the
/// curves people plot from a series are the aggregates.
struct MetricsSnapshot {
  struct HistogramEntry {
    std::string key;
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramEntry> histograms;
};

class Metrics {
 public:
  static Metrics& instance();

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Zeroes every instrument's value; instruments themselves (and pointers
  /// to them) stay valid.
  void reset();

  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  /// `bounds` must match the instrument's layout when it already exists.
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& bounds,
                       const Labels& labels = {});

  [[nodiscard]] MetricsSnapshot snapshot() const;

  [[nodiscard]] std::string to_prometheus() const;
  [[nodiscard]] std::string to_json() const;
  Status write_prometheus(const std::string& path) const;
  Status write_json(const std::string& path) const;

 private:
  Metrics() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  // Keyed by "name{label=\"value\",...}" (labels sorted); std::map keeps
  // exporter output deterministic.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// One-atomic fast path for recording sites.
inline bool metrics_on() { return Metrics::instance().enabled(); }

/// JSON string escaping shared by the obs exporters (metrics, time-series,
/// request journal): quotes, backslashes, and control characters.
std::string escape_json(const std::string& s);

/// Deterministic, locale-independent double formatting ("%.9g") shared by
/// the obs exporters.
std::string fmt_double(double v);

}  // namespace gc::obs
