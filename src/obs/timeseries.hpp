// Virtual-time (and wall-time) time-series sampler over the metrics
// registry.
//
// The metrics registry alone only answers "what were the totals at the end
// of the run?". This sampler turns the registry into plottable curves: a
// recurring tick — a DES event under SimEnv, a dedicated wall-clock thread
// under RealEnv / env-less pipelines — snapshots every instrument into an
// append-only in-memory series, exported as JSONL (one sample per line).
// Queue depth, DES events executed, dtm bytes moved, and per-SED busy time
// become time series instead of final numbers.
//
// Process-global singleton like the tracer and the registry; off by
// default, `timeseries_on()` is one relaxed atomic load. Who drives the
// ticks depends on the backend:
//
//   - SimEnv campaigns arm a self-rearming engine event every
//     `interval()` virtual seconds (workflow/campaign.cpp), so samples
//     land at deterministic virtual times and the exported series is
//     byte-identical run to run — including under --tie-seed scrambles.
//   - RealEnv::start()/stop() (and env-less binaries like pm_simulation)
//     drive `start_wall_sampler()` / `stop_wall_sampler()`: a thread that
//     samples at `obs::wall_seconds()` timestamps every `interval()` wall
//     seconds, plus once on start and once on stop.
//
// Export format — JSON Lines, one object per sample:
//
//   {"t": 62.0, "counters": {...}, "gauges": {...},
//    "histograms": {"name{...}": {"count": N, "sum": S}}}
//
// consumed by tools/gcprof and trivially by any plotting script.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <string>
#include <thread>  // gclint: allow(thread) wall-clock sampler backend, see below
#include <vector>

#include "common/status.hpp"
#include "obs/metrics.hpp"

namespace gc::obs {

class TimeSeries {
 public:
  static TimeSeries& instance();

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Sampling period in seconds (virtual under the DES, wall otherwise);
  /// default 60. Must be > 0.
  void set_interval(double seconds);
  [[nodiscard]] double interval() const {
    return interval_s_.load(std::memory_order_relaxed);
  }

  /// Appends one sample: the full metrics snapshot stamped `t`. No-op when
  /// disabled, so tick drivers can call unconditionally.
  void sample(double t);

  [[nodiscard]] std::size_t sample_count() const;

  /// One JSON object per line, samples in record order. Deterministic for
  /// a deterministic run (snapshot keys are in registry order).
  [[nodiscard]] std::string to_jsonl() const;
  Status write_jsonl(const std::string& path) const;

  /// Drops all recorded samples.
  void clear();

  /// Starts the wall-clock sampling thread (no-op when disabled or already
  /// running): one sample immediately, one every `interval()` wall
  /// seconds, one at stop. For RealEnv runs and env-less pipelines; DES
  /// campaigns sample from a virtual-time event instead.
  void start_wall_sampler();
  /// Stops the thread (taking a final sample) and joins it. Safe to call
  /// when no sampler is running.
  void stop_wall_sampler();

 private:
  TimeSeries() = default;

  struct Sample {
    double t = 0.0;
    MetricsSnapshot snap;
  };

  std::atomic<bool> enabled_{false};
  std::atomic<double> interval_s_{60.0};
  mutable std::mutex mutex_;
  std::vector<Sample> samples_;  ///< guarded

  // Wall-sampler machinery. The raw thread is deliberate: this is a
  // backend-style service thread (like RealEnv's dispatcher), not
  // data-parallel work for the shared pool.
  std::mutex thread_mutex_;
  std::condition_variable thread_cv_;  ///< signalled to stop early
  bool stop_requested_ = false;        ///< guarded by thread_mutex_
  std::thread worker_;  // gclint: allow(thread) sampling service thread, not pool work
};

/// One-atomic fast path for tick-driver call sites.
inline bool timeseries_on() { return TimeSeries::instance().enabled(); }

}  // namespace gc::obs
