#include "obs/journal.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"

namespace gc::obs {

Journal& Journal::instance() {
  static Journal* journal = new Journal();  // leaked: outlive all callers
  return *journal;
}

void Journal::note_edge(const std::string& child, const std::string& parent) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  edges_[child] = parent;
}

void Journal::sed_phases(std::uint64_t trace_id, const std::string& sed,
                         double arrived, double exec_start, double exec_end) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  phases_[trace_id] = SedPhases{sed, arrived, exec_start, exec_end};
}

void Journal::complete(RequestRecord record) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  completions_.push_back(std::move(record));
}

void Journal::resolve_path(RequestRecord& record) const {
  auto it = edges_.find(record.sed);
  if (it == edges_.end()) return;
  // Walk the registration chain upward: the direct parent is the LA, the
  // root is the MA. A SED registered straight under the MA has a
  // single-hop chain and no LA level.
  std::vector<std::string> chain;
  std::string current = it->second;
  while (chain.size() < 16) {  // cycle guard; hierarchies are shallow
    chain.push_back(current);
    auto parent = edges_.find(current);
    if (parent == edges_.end()) break;
    current = parent->second;
  }
  record.ma = chain.back();
  record.la = chain.size() >= 2 ? chain.front() : "";
}

std::vector<RequestRecord> Journal::merged_records() const {
  std::vector<RequestRecord> merged = completions_;
  for (RequestRecord& record : merged) {
    auto it = phases_.find(record.trace_id);
    if (it != phases_.end()) {
      if (record.sed.empty()) record.sed = it->second.sed;
      record.arrived = it->second.arrived;
      record.exec_start = it->second.exec_start;
      record.exec_end = it->second.exec_end;
    }
    resolve_path(record);
  }
  // Sorted by trace id: completion order depends on the schedule, trace
  // ids do not — this is what makes the export byte-stable under
  // --tie-seed scrambles.
  std::sort(merged.begin(), merged.end(),
            [](const RequestRecord& a, const RequestRecord& b) {
              return a.trace_id < b.trace_id;
            });
  return merged;
}

std::vector<RequestRecord> Journal::records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return merged_records();
}

std::size_t Journal::record_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completions_.size();
}

std::string Journal::to_jsonl() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const RequestRecord& r : merged_records()) {
    out << "{\"trace_id\": " << r.trace_id << ", \"service\": \""
        << escape_json(r.service) << "\", \"client\": \""
        << escape_json(r.client) << "\", \"path\": {\"ma\": \""
        << escape_json(r.ma) << "\", \"la\": \"" << escape_json(r.la)
        << "\", \"sed\": \"" << escape_json(r.sed) << "\"}, \"attempts\": "
        << r.attempts << ", \"status\": \"" << escape_json(r.status)
        << "\", \"phases\": {\"submitted\": " << fmt_double(r.submitted)
        << ", \"found\": " << fmt_double(r.found)
        << ", \"arrived\": " << fmt_double(r.arrived)
        << ", \"exec_start\": " << fmt_double(r.exec_start)
        << ", \"exec_end\": " << fmt_double(r.exec_end)
        << ", \"completed\": " << fmt_double(r.completed) << "}}\n";
  }
  return out.str();
}

Status Journal::write_jsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return make_error(ErrorCode::kIoError, "cannot open " + path);
  }
  out << to_jsonl();
  out.flush();
  if (!out) {
    return make_error(ErrorCode::kIoError, "short write to " + path);
  }
  return Status::ok();
}

void Journal::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  edges_.clear();
  phases_.clear();
  completions_.clear();
}

}  // namespace gc::obs
