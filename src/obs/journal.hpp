// Per-request journal: one structured completion record per DIET call.
//
// Traces answer "what happened, visually"; the journal answers "where did
// this request's time go" in a form a tool can aggregate: for every call,
// the full hierarchy path (client → MA → LA → SED) and the phase
// boundaries
//
//   submitted → found → arrived → exec_start → exec_end → completed
//     (finding)  (transfer)  (queue+init)  (compute)   (reply)
//
// all in the owning Env's clock. Consecutive boundaries telescope, so the
// five phases sum to the end-to-end latency exactly — the invariant
// tools/gcprof checks per record.
//
// The journal is a process-global side channel, deliberately NOT on the
// wire: every protocol message feeds the modeled transfer-time function
// through its payload size, so extending messages for accounting would
// shift every timing in the simulation. Instead:
//
//   - agents record parent/child *name* edges at registration time
//     (`note_edge`), giving the journal the hierarchy topology;
//   - the executing SED contributes its phase timestamps keyed by the
//     trace id that already rides the envelopes (`sed_phases`);
//   - the client emits the completion record (`complete`) with the
//     client-side boundaries, and export time merges the three.
//
// Export is JSONL sorted by trace id, so the file is byte-identical run to
// run (and under --tie-seed scrambles) even though completion *order* is
// schedule-dependent.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace gc::obs {

/// One completed DIET call. Times are seconds on the owning Env's clock;
/// -1 marks a boundary the request never reached (failed calls).
struct RequestRecord {
  std::uint64_t trace_id = 0;
  std::string service;
  std::string client;
  std::string ma;   ///< resolved from registration edges at export
  std::string la;   ///< "" when the SED registered directly under the MA
  std::string sed;  ///< executing SED ("" when no SED was ever chosen)
  int attempts = 1;
  std::string status;  ///< "ok" or the failure's status string

  double submitted = -1.0;   ///< client issued the request (client clock)
  double found = -1.0;       ///< scheduling reply received (finding done)
  double arrived = -1.0;     ///< call data arrived at the SED
  double exec_start = -1.0;  ///< solve began (queue + service init done)
  double exec_end = -1.0;    ///< solve finished
  double completed = -1.0;   ///< result received back at the client
};

class Journal {
 public:
  static Journal& instance();

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Records "child registered under parent" (names). Idempotent; called
  /// by agents on every SED/LA registration, so restarts just re-assert
  /// the edge.
  void note_edge(const std::string& child, const std::string& parent);

  /// The executing SED's contribution, keyed by the request's trace id.
  /// A re-execution (missing-data resend) overwrites: the journal reports
  /// the attempt that produced the result.
  void sed_phases(std::uint64_t trace_id, const std::string& sed,
                  double arrived, double exec_start, double exec_end);

  /// The client's completion record. SED phases and the hierarchy path
  /// are merged in at export time, so arrival order between the SED's
  /// contribution and the client's completion never matters.
  void complete(RequestRecord record);

  /// Fully-merged records, sorted by trace id.
  [[nodiscard]] std::vector<RequestRecord> records() const;

  [[nodiscard]] std::size_t record_count() const;

  /// One JSON object per line, sorted by trace id.
  [[nodiscard]] std::string to_jsonl() const;
  Status write_jsonl(const std::string& path) const;

  /// Drops all records, phases, and edges.
  void clear();

 private:
  Journal() = default;

  struct SedPhases {
    std::string sed;
    double arrived = -1.0;
    double exec_start = -1.0;
    double exec_end = -1.0;
  };

  /// Resolves ma/la/sed from the edge map; callers hold mutex_.
  void resolve_path(RequestRecord& record) const;
  [[nodiscard]] std::vector<RequestRecord> merged_records() const;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::map<std::string, std::string> edges_;          ///< child -> parent
  std::map<std::uint64_t, SedPhases> phases_;         ///< by trace id
  std::vector<RequestRecord> completions_;            ///< client records
};

/// One-atomic fast path for instrumentation sites.
inline bool journal_on() { return Journal::instance().enabled(); }

}  // namespace gc::obs
