// Fault-injection seam shared by both Env backends.
//
// A FaultHook, when installed on a SimEnv or RealEnv, is consulted once
// per send() and may drop the message, schedule a duplicate copy, or add
// extra delivery delay — the three message-level faults of a real WAN
// (the paper's campaign ran across five Grid'5000 sites for days; lost
// and reordered messages are the norm there, not the exception).
//
// The hook lives in net (like Topology) so that the fault module can
// depend on net without a cycle; the concrete deterministic implementation
// is fault::Injector. With no hook installed the send path is exactly the
// pre-existing code — zero cost when off.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "net/message.hpp"

namespace gc::net {

/// What the fault layer decided for one message entering the wire.
struct FaultDecision {
  bool drop = false;           ///< never delivered
  bool duplicate = false;      ///< a second copy delivers dup_lag_s later
  double extra_delay_s = 0.0;  ///< added to the modeled transfer time
  double dup_lag_s = 0.0;      ///< extra delay of the duplicate copy

  /// A tampered message leaves the per-stream FIFO model: it is delivered
  /// out of band (possibly late, twice, or never), exactly like a packet
  /// that left the TCP fast path.
  [[nodiscard]] bool tampered() const {
    return drop || duplicate || extra_delay_s > 0.0;
  }
};

/// Per-message fault oracle. `stream_seq` is the 1-based send counter of
/// the (from, to) endpoint pair, maintained by the Env only while a hook
/// is installed; a deterministic hook can hash it (with the endpoints and
/// message type) so every replay of a run makes identical decisions.
class FaultHook {
 public:
  virtual ~FaultHook() = default;
  virtual FaultDecision on_message(SimTime now, NodeId src, NodeId dst,
                                   const Envelope& envelope,
                                   std::uint64_t stream_seq) = 0;
};

}  // namespace gc::net
