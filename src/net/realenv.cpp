#include "net/realenv.hpp"

#include <utility>

#include "check/lockorder.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace gc::net {

// gclint: allow-file(wallclock) RealEnv IS the wall-clock backend; the
// Env abstraction keeps it out of simulated code paths.
// gclint: allow-file(thread) the dispatcher/worker threads are this
// backend's reason to exist; everything else must go through parallel/.

using Clock = std::chrono::steady_clock;

/// Lock-order role of mutex_ (see check::LockOrderRecorder).
constexpr const char* kLockName = "realenv.mutex";

RealEnv::RealEnv(const Topology& topology, double delay_scale)
    : Env(topology), delay_scale_(delay_scale), origin_(Clock::now()) {}

RealEnv::~RealEnv() { stop(); }

SimTime RealEnv::now() const {
  return std::chrono::duration<double>(Clock::now() - origin_).count();
}

void RealEnv::start() {
  {
    GC_TRACKED_LOCK(lock, mutex_, kLockName);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
    stopped_ = false;
    dispatcher_ = std::thread([this] { dispatcher_loop(); });
  }
  // Wall-clock runs have no virtual calendar to hang sampling ticks on;
  // the sampler brings its own thread. No-op when time series are off.
  obs::TimeSeries::instance().start_wall_sampler();
}

void RealEnv::stop() {
  {
    check::LockTracker tracker(kLockName, __FILE__, __LINE__);
    std::unique_lock<std::mutex> lock(mutex_);
    if (!running_) return;
    idle_cv_.wait(lock,
                  [this] { return live_queued() == 0 && in_flight_ == 0; });
    stop_requested_ = true;
    cv_.notify_all();
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  std::vector<std::thread> workers;
  {
    GC_TRACKED_LOCK(lock, mutex_, kLockName);
    workers.swap(workers_);
    running_ = false;
    stopped_ = true;
  }
  for (auto& w : workers) {
    if (w.joinable()) w.join();
  }
  obs::TimeSeries::instance().stop_wall_sampler();
}

void RealEnv::wait_idle() {
  check::LockTracker tracker(kLockName, __FILE__, __LINE__);
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock,
                [this] { return live_queued() == 0 && in_flight_ == 0; });
}

TimerId RealEnv::enqueue(SimTime deadline, std::function<void()> fn) {
  GC_TRACKED_LOCK(lock, mutex_, kLockName);
  GC_INVARIANT(!stopped_, "post/send after RealEnv::stop() completed");
  const std::uint64_t seq = next_seq_++;
  queue_.push(Timed{deadline, seq, std::move(fn)});
  queued_ids_.insert(seq);
  cv_.notify_all();
  return seq;
}

TimerId RealEnv::post_after(SimTime delay, std::function<void()> fn) {
  GC_CHECK_MSG(delay >= 0.0, "negative delay");
  if (obs::metrics_on()) {
    obs::Metrics::instance().counter("net_timers_total").inc();
  }
  return enqueue(now() + delay, std::move(fn));
}

bool RealEnv::cancel_timer(TimerId id) {
  GC_TRACKED_LOCK(lock, mutex_, kLockName);
  if (queued_ids_.count(id) == 0 || cancelled_.count(id) > 0) return false;
  cancelled_.insert(id);
  cv_.notify_all();  // the dispatcher may now be idle
  idle_cv_.notify_all();
  return true;
}

Endpoint RealEnv::do_attach(Actor& actor, NodeId node) {
  GC_TRACKED_LOCK(lock, mutex_, kLockName);
  const Endpoint ep = next_endpoint_++;
  actors_.emplace(ep, Entry{&actor, node});
  return ep;
}

void RealEnv::detach(Endpoint endpoint) {
  GC_TRACKED_LOCK(lock, mutex_, kLockName);
  actors_.erase(endpoint);
}

void RealEnv::send(Envelope envelope) {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint64_t stream_seq = 0;
  {
    GC_TRACKED_LOCK(lock, mutex_, kLockName);
    auto to_it = actors_.find(envelope.to);
    if (to_it == actors_.end()) {
      GC_WARN << "realenv: dropping message type " << envelope.type
              << " to unknown endpoint " << envelope.to;
      return;
    }
    dst = to_it->second.node;
    auto from_it = actors_.find(envelope.from);
    src = from_it != actors_.end() ? from_it->second.node : dst;
    if (fault_hook_ != nullptr) {
      const std::uint64_t stream_key =
          (static_cast<std::uint64_t>(envelope.from) << 32) | envelope.to;
      stream_seq = ++fault_seq_[stream_key];
    }
  }
  double delay =
      delay_scale_ * topology().transfer_time(src, dst, envelope.wire_size());
  double dup_at = -1.0;
  if (fault_hook_ != nullptr) {
    const FaultDecision decision =
        fault_hook_->on_message(now(), src, dst, envelope, stream_seq);
    if (decision.tampered()) {
      if (obs::metrics_on()) {
        obs::Metrics::instance()
            .counter("net_fault_tampered_total",
                     {{"link", "n" + std::to_string(src) + "->n" +
                                   std::to_string(dst)}})
            .inc();
      }
      if (decision.duplicate) dup_at = delay + decision.dup_lag_s;
      if (decision.drop) {
        if (dup_at < 0.0) {
          if (obs::tracing()) {
            obs::Tracer::instance().instant(
                now(), "fault:drop:" + std::to_string(envelope.type),
                "net:n" + std::to_string(src), envelope.trace_id);
          }
          return;
        }
        // Dropped original but a duplicate survives: deliver only the copy.
        delay = dup_at;
        dup_at = -1.0;
      } else {
        delay += decision.extra_delay_s;
      }
    }
  }
  if (obs::metrics_on()) {
    auto& m = obs::Metrics::instance();
    const obs::Labels labels = {
        {"link", "n" + std::to_string(src) + "->n" + std::to_string(dst)}};
    m.counter("net_messages_total", labels).inc();
    m.counter("net_bytes_total", labels)
        .inc(static_cast<std::uint64_t>(envelope.wire_size()));
  }
  if (obs::tracing()) {
    obs::Tracer::instance().complete_span(
        now(), delay, "msg:" + std::to_string(envelope.type),
        "net:n" + std::to_string(src), envelope.trace_id);
  }
  const Endpoint to = envelope.to;
  const NodeId dst_node = dst;
  auto deliver = [this, to, dst_node](Envelope env) {
    return [this, to, dst_node, env = std::move(env)]() mutable {
      Actor* actor = nullptr;
      {
        GC_TRACKED_LOCK(lock, mutex_, kLockName);
        auto it = actors_.find(to);
        if (it != actors_.end()) actor = it->second.actor;
      }
      if (actor != nullptr) {
        if (obs::tracing()) {
          obs::Tracer::instance().instant(
              now(), "deliver:" + std::to_string(env.type),
              "net:n" + std::to_string(dst_node), env.trace_id);
        }
        actor->on_message(env);
      }
    };
  };
  if (dup_at >= 0.0) enqueue(now() + dup_at, deliver(envelope));
  enqueue(now() + delay, deliver(std::move(envelope)));
}

void RealEnv::execute(NodeId /*node*/, double /*modeled_seconds*/,
                      std::function<int()> work,
                      std::function<void(int)> done) {
  {
    GC_TRACKED_LOCK(lock, mutex_, kLockName);
    ++in_flight_;
  }
  std::thread worker([this, work = std::move(work),
                      done = std::move(done)]() mutable {
    const int result = work ? work() : 0;
    enqueue(now(), [done = std::move(done), result]() { done(result); });
    GC_TRACKED_LOCK(lock, mutex_, kLockName);
    --in_flight_;
    idle_cv_.notify_all();
  });
  GC_TRACKED_LOCK(lock, mutex_, kLockName);
  workers_.push_back(std::move(worker));
}

void RealEnv::dispatcher_loop() {
  check::LockTracker tracker(kLockName, __FILE__, __LINE__);
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    // Drain cancelled timers eagerly so they neither delay shutdown nor
    // hold the idle predicate.
    while (!queue_.empty() && cancelled_.count(queue_.top().seq) > 0) {
      cancelled_.erase(queue_.top().seq);
      queued_ids_.erase(queue_.top().seq);
      queue_.pop();
    }
    if (stop_requested_ && queue_.empty()) break;
    if (queue_.empty()) {
      idle_cv_.notify_all();
      cv_.wait(lock);
      continue;
    }
    const SimTime deadline = queue_.top().deadline;
    const SimTime t = now();
    if (deadline > t) {
      if (live_queued() == 0 && in_flight_ == 0) idle_cv_.notify_all();
      cv_.wait_for(lock, std::chrono::duration<double>(deadline - t));
      continue;
    }
    // Pop and run outside the lock so callbacks can post/send freely.
    auto fn = std::move(const_cast<Timed&>(queue_.top()).fn);
    queued_ids_.erase(queue_.top().seq);
    queue_.pop();
    ++in_flight_;
    tracker.unlocked();
    lock.unlock();
    fn();
    lock.lock();
    tracker.relocked();
    --in_flight_;
    if (live_queued() == 0 && in_flight_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace gc::net
