#include "net/simenv.hpp"

#include <utility>

#include "common/log.hpp"

namespace gc::net {

Endpoint SimEnv::do_attach(Actor& actor, NodeId node) {
  const Endpoint ep = next_endpoint_++;
  actors_.emplace(ep, Entry{&actor, node});
  return ep;
}

void SimEnv::send(Envelope envelope) {
  auto from_it = actors_.find(envelope.from);
  auto to_it = actors_.find(envelope.to);
  if (to_it == actors_.end()) {
    GC_WARN << "simenv: dropping message type " << envelope.type
            << " to unknown endpoint " << envelope.to;
    return;
  }
  const NodeId src =
      from_it != actors_.end() ? from_it->second.node : to_it->second.node;
  const NodeId dst = to_it->second.node;
  const double delay =
      topology().transfer_time(src, dst, envelope.wire_size());
  ++messages_sent_;
  bytes_sent_ += envelope.wire_size();

  // FIFO per connection: never deliver before an earlier message on the
  // same (src, dst) endpoint pair.
  const std::uint64_t stream_key =
      (static_cast<std::uint64_t>(envelope.from) << 32) | envelope.to;
  SimTime deliver_at = engine_.now() + delay;
  auto stream = stream_clock_.find(stream_key);
  if (stream != stream_clock_.end()) {
    deliver_at = std::max(deliver_at, stream->second);
  }
  stream_clock_[stream_key] = deliver_at;

  const Endpoint to = envelope.to;
  engine_.schedule_at(deliver_at, [this, to, env = std::move(envelope)]() {
    auto it = actors_.find(to);
    if (it == actors_.end()) return;  // actor detached in flight
    it->second.actor->on_message(env);
  });
}

void SimEnv::execute(NodeId /*node*/, double modeled_seconds,
                     std::function<int()> work,
                     std::function<void(int)> done) {
  GC_CHECK_MSG(modeled_seconds >= 0.0, "negative computation time");
  engine_.schedule_after(
      modeled_seconds,
      [work = std::move(work), done = std::move(done)]() mutable {
        const int result = work ? work() : 0;
        done(result);
      });
}

}  // namespace gc::net
