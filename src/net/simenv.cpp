#include "net/simenv.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gc::net {

namespace {

/// Metric label for one directed node pair, e.g. "n2->n17". Cold path:
/// called once per stream when its counters are first bound, never per
/// message.
obs::Labels link_labels(NodeId src, NodeId dst) {
  // gclint: allow(hot-string) built once per stream, cached in StreamState
  return {{"link", "n" + std::to_string(src) + "->n" + std::to_string(dst)}};
}

}  // namespace

Endpoint SimEnv::do_attach(Actor& actor, NodeId node) {
  const Endpoint ep = next_endpoint_++;
  actors_.emplace(ep, Entry{&actor, node});
  nodes_.emplace(ep, node);
  return ep;
}

void SimEnv::enable_contention(std::int64_t min_flow_bytes) {
  GC_CHECK_MSG(min_flow_bytes > 0, "min_flow_bytes must be positive");
  min_flow_bytes_ = min_flow_bytes;
  if (flow_ == nullptr) flow_ = std::make_unique<FlowModel>(engine_);
}

double SimEnv::estimate_transfer_s(NodeId a, NodeId b,
                                   std::int64_t bytes) const {
  if (flow_ == nullptr || a == b || bytes < min_flow_bytes_) {
    return topology().transfer_time(a, b, bytes);
  }
  Route route;
  topology().route(a, b, route);
  // Bulk estimates include the disk/NFS stage a file-backed transfer pays
  // (stage off the holder's storage, onto the destination's).
  route.add(topology().disk_read(a));
  route.add(topology().disk_write(b));
  if (route.empty()) return topology().transfer_time(a, b, bytes);
  return flow_->estimate(route, bytes);
}

const std::map<std::pair<NodeId, NodeId>, std::int64_t>&
SimEnv::bytes_by_node_pair() const {
  pair_bytes_.clear();
  // Unordered iteration feeding commutative += — order-independent.
  for (const auto& [key, stream] : streams_) {
    if (stream.bytes != 0) pair_bytes_[{stream.src, stream.dst}] += stream.bytes;
  }
  return pair_bytes_;
}

void SimEnv::send(Envelope envelope) {
  auto to_it = actors_.find(envelope.to);
  if (to_it == actors_.end()) {
    GC_WARN << "simenv: dropping message type " << envelope.type
            << " to unknown endpoint " << envelope.to;
    return;
  }
  const std::uint64_t stream_key =
      (static_cast<std::uint64_t>(envelope.from) << 32) | envelope.to;
  auto [stream_it, inserted] = streams_.try_emplace(stream_key);
  StreamState& stream = stream_it->second;
  if (inserted) {
    auto from_it = actors_.find(envelope.from);
    stream.src =
        from_it != actors_.end() ? from_it->second.node : to_it->second.node;
    stream.dst = to_it->second.node;
  }

  const std::int64_t wire = envelope.wire_size();
  const double delay = topology().transfer_time(stream.src, stream.dst, wire);
  ++messages_sent_;
  bytes_sent_ += wire;
  stream.bytes += wire;

  if (obs::metrics_on()) {
    if (stream.messages == nullptr) {
      auto& m = obs::Metrics::instance();
      const obs::Labels labels = link_labels(stream.src, stream.dst);
      stream.messages = &m.counter("net_messages_total", labels);
      stream.bytes_counter = &m.counter("net_bytes_total", labels);
    }
    stream.messages->inc();
    stream.bytes_counter->inc(static_cast<std::uint64_t>(wire));
  }

  // Fault injection: tampered messages (dropped, duplicated, delayed)
  // leave the per-stream FIFO model and deliver out of band; clean
  // messages — and everything when no hook is installed — take the exact
  // pre-existing path. Tampered messages stay on the closed-form cost
  // even in contention mode: a dropped or duplicated datagram is outside
  // the stream/flow abstraction by design.
  if (fault_hook_ != nullptr) {
    const FaultDecision decision = fault_hook_->on_message(
        engine_.now(), stream.src, stream.dst, envelope, ++stream.fault_seq);
    if (decision.tampered()) {
      if (obs::metrics_on()) {
        if (stream.tampered == nullptr) {
          stream.tampered = &obs::Metrics::instance().counter(
              "net_fault_tampered_total", link_labels(stream.src, stream.dst));
        }
        stream.tampered->inc();
      }
      if (decision.duplicate) {
        // The copy also crosses the wire: charge it like any message.
        ++messages_sent_;
        bytes_sent_ += wire;
        stream.bytes += wire;
        schedule_delivery(engine_.now() + delay + decision.dup_lag_s,
                          envelope, stream.src, stream_key, 0);
      }
      if (decision.drop) {
        if (obs::tracing()) {
          obs::Tracer::instance().instant(
              engine_.now(), "fault:drop:" + std::to_string(envelope.type),
              "net:n" + std::to_string(stream.src), envelope.trace_id);
        }
        return;
      }
      schedule_delivery(engine_.now() + delay + decision.extra_delay_s,
                        std::move(envelope), stream.src, stream_key, 0);
      return;
    }
  }

  if (flow_ != nullptr) {
    const bool bulk = wire >= min_flow_bytes_ && stream.src != stream.dst;
    if (envelope.oob) {
      // Out-of-band lane (WAN-engine stripes): its own parallel
      // connection, never serialized behind the stream, never FIFO-checked.
      if (bulk) {
        const NodeId src = stream.src;
        Route route;
        topology().route(stream.src, stream.dst, route);
        if (envelope.modeled_extra_bytes > 0) {
          Route staged;
          staged.latency_s = route.latency_s;
          staged.add(topology().disk_read(stream.src));
          for (int i = 0; i < route.hop_count; ++i) staged.add(route.hops[i]);
          staged.add(topology().disk_write(stream.dst));
          route = staged;
        }
        flow_->start(route, wire,
                     [this, stream_key, src,
                      env = std::move(envelope)](double delivery_at) mutable {
                       schedule_delivery(delivery_at, std::move(env), src,
                                         stream_key, 0);
                     });
      } else {
        schedule_delivery(engine_.now() + delay, std::move(envelope),
                          stream.src, stream_key, 0);
      }
      return;
    }
    std::uint64_t fifo_seq = 0;
    if constexpr (check::kEnabled) fifo_seq = ++stream.fifo_seq;
    if (stream.busy) {
      // A bulk flow owns the stream: queue behind it, in send order.
      stream.held.emplace_back(std::move(envelope), fifo_seq);
      return;
    }
    if (bulk) {
      dispatch_bulk(stream, stream_key, std::move(envelope), fifo_seq);
      return;
    }
    // Small control message on an idle stream: closed form, FIFO-clamped.
    deliver_clamped(stream, stream_key, std::move(envelope), fifo_seq,
                    engine_.now() + delay);
    return;
  }

  // FIFO per connection: never deliver before an earlier message on the
  // same (src, dst) endpoint pair. The bump past the previous delivery is
  // *strict* (one ulp) so two messages on one stream never share a
  // timestamp — the engine's same-timestamp tie-break is then free to
  // reorder without ever breaking stream order (see test_schedule_fuzz).
  std::uint64_t fifo_seq = 0;
  if constexpr (check::kEnabled) fifo_seq = ++stream.fifo_seq;
  deliver_clamped(stream, stream_key, std::move(envelope), fifo_seq,
                  engine_.now() + delay);
}

void SimEnv::deliver_clamped(StreamState& stream, std::uint64_t stream_key,
                             Envelope envelope, std::uint64_t fifo_seq,
                             SimTime deliver_at) {
  if (stream.clock_valid && deliver_at <= stream.clock) {
    deliver_at = std::nextafter(stream.clock,
                                std::numeric_limits<SimTime>::infinity());
  }
  stream.clock = deliver_at;
  stream.clock_valid = true;
  schedule_delivery(deliver_at, std::move(envelope), stream.src, stream_key,
                    fifo_seq);
}

void SimEnv::dispatch_bulk(StreamState& stream, std::uint64_t stream_key,
                           Envelope envelope, std::uint64_t fifo_seq) {
  stream.busy = true;
  Route route;
  topology().route(stream.src, stream.dst, route);
  if (envelope.modeled_extra_bytes > 0) {
    // File-backed bulk data (IC staging, result tarballs): the transfer
    // reads off the source's disk/NFS and lands on the destination's —
    // both stages are links of the flow, charged at their bandwidth.
    Route staged;
    staged.latency_s = route.latency_s;
    staged.add(topology().disk_read(stream.src));
    for (int i = 0; i < route.hop_count; ++i) staged.add(route.hops[i]);
    staged.add(topology().disk_write(stream.dst));
    route = staged;
  }
  const std::int64_t wire = envelope.wire_size();
  flow_->start(
      route, wire,
      [this, stream_key, fifo_seq,
       env = std::move(envelope)](double delivery_at) mutable {
        auto it = streams_.find(stream_key);
        GC_CHECK_MSG(it != streams_.end(), "stream vanished mid-flow");
        StreamState& s = it->second;
        deliver_clamped(s, stream_key, std::move(env), fifo_seq, delivery_at);
        s.busy = false;
        drain_held(s, stream_key);
      });
}

void SimEnv::drain_held(StreamState& stream, std::uint64_t stream_key) {
  while (!stream.held.empty() && !stream.busy) {
    Envelope env = std::move(stream.held.front().first);
    const std::uint64_t fifo_seq = stream.held.front().second;
    stream.held.pop_front();
    const std::int64_t wire = env.wire_size();
    if (wire >= min_flow_bytes_ && stream.src != stream.dst) {
      dispatch_bulk(stream, stream_key, std::move(env), fifo_seq);
    } else {
      const double delay =
          topology().transfer_time(stream.src, stream.dst, wire);
      deliver_clamped(stream, stream_key, std::move(env), fifo_seq,
                      engine_.now() + delay);
    }
  }
}

void SimEnv::schedule_delivery(SimTime at, Envelope envelope, NodeId src,
                               std::uint64_t stream_key,
                               std::uint64_t fifo_seq) {
  if (obs::tracing()) {
    // The in-flight hop as a span on the source node's network track: the
    // whole transfer, send to delivery, linked to the request's trace.
    obs::Tracer::instance().complete_span(
        engine_.now(), at - engine_.now(),
        "msg:" + std::to_string(envelope.type),
        "net:n" + std::to_string(src), envelope.trace_id);
  }

  // The lambda (Envelope + stream bookkeeping) fits EventFn's inline
  // buffer, so a message delivery never allocates. The delivery event is
  // owned by the destination endpoint: its handler mutates that actor's
  // state, so deliveries to different actors commute (the model checker's
  // independence relation relies on this).
  const Endpoint owner = envelope.to;
  engine_.schedule_at(at, [this, stream_key, fifo_seq,
                           env = std::move(envelope)]() {
    if constexpr (check::kEnabled) {
      // Out-of-band deliveries (fault-tampered, fifo_seq 0) are exempt:
      // dropped and duplicated messages break exact succession by design.
      if (fifo_seq != 0) fifo_.observe(stream_key, fifo_seq, __FILE__, __LINE__);
    }
    auto it = actors_.find(env.to);
    if (it == actors_.end()) return;  // actor detached in flight
    if (obs::tracing()) {
      obs::Tracer::instance().instant(
          engine_.now(), "deliver:" + std::to_string(env.type),
          "net:n" + std::to_string(it->second.node), env.trace_id);
    }
    it->second.actor->on_message(env);
  }, des::EventTag::kMessage, owner);
}

void SimEnv::execute(NodeId /*node*/, double modeled_seconds,
                     std::function<int()> work,
                     std::function<void(int)> done) {
  GC_CHECK_MSG(modeled_seconds >= 0.0, "negative computation time");
  engine_.schedule_after(
      modeled_seconds,
      [work = std::move(work), done = std::move(done)]() mutable {
        const int result = work ? work() : 0;
        done(result);
      },
      des::EventTag::kExecute);
}

}  // namespace gc::net
