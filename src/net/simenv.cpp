#include "net/simenv.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gc::net {

namespace {

/// Metric label for one directed node pair, e.g. "n2->n17".
obs::Labels link_labels(NodeId src, NodeId dst) {
  return {{"link", "n" + std::to_string(src) + "->n" + std::to_string(dst)}};
}

}  // namespace

Endpoint SimEnv::do_attach(Actor& actor, NodeId node) {
  const Endpoint ep = next_endpoint_++;
  actors_.emplace(ep, Entry{&actor, node});
  return ep;
}

void SimEnv::send(Envelope envelope) {
  auto from_it = actors_.find(envelope.from);
  auto to_it = actors_.find(envelope.to);
  if (to_it == actors_.end()) {
    GC_WARN << "simenv: dropping message type " << envelope.type
            << " to unknown endpoint " << envelope.to;
    return;
  }
  const NodeId src =
      from_it != actors_.end() ? from_it->second.node : to_it->second.node;
  const NodeId dst = to_it->second.node;
  double delay = topology().transfer_time(src, dst, envelope.wire_size());
  ++messages_sent_;
  bytes_sent_ += envelope.wire_size();
  bytes_by_node_pair_[{src, dst}] += envelope.wire_size();

  if (obs::metrics_on()) {
    auto& m = obs::Metrics::instance();
    const obs::Labels labels = link_labels(src, dst);
    m.counter("net_messages_total", labels).inc();
    m.counter("net_bytes_total", labels)
        .inc(static_cast<std::uint64_t>(envelope.wire_size()));
  }

  const std::uint64_t stream_key =
      (static_cast<std::uint64_t>(envelope.from) << 32) | envelope.to;

  // Fault injection: tampered messages (dropped, duplicated, delayed)
  // leave the per-stream FIFO model and deliver out of band; clean
  // messages — and everything when no hook is installed — take the exact
  // pre-existing path.
  if (fault_hook_ != nullptr) {
    const FaultDecision decision = fault_hook_->on_message(
        engine_.now(), src, dst, envelope, ++fault_seq_[stream_key]);
    if (decision.tampered()) {
      if (obs::metrics_on()) {
        obs::Metrics::instance()
            .counter("net_fault_tampered_total", link_labels(src, dst))
            .inc();
      }
      if (decision.duplicate) {
        // The copy also crosses the wire: charge it like any message.
        ++messages_sent_;
        bytes_sent_ += envelope.wire_size();
        bytes_by_node_pair_[{src, dst}] += envelope.wire_size();
        schedule_delivery(engine_.now() + delay + decision.dup_lag_s,
                          envelope, src, stream_key, 0);
      }
      if (decision.drop) {
        if (obs::tracing()) {
          obs::Tracer::instance().instant(
              engine_.now(), "fault:drop:" + std::to_string(envelope.type),
              "net:n" + std::to_string(src), envelope.trace_id);
        }
        return;
      }
      schedule_delivery(engine_.now() + delay + decision.extra_delay_s,
                        std::move(envelope), src, stream_key, 0);
      return;
    }
  }

  // FIFO per connection: never deliver before an earlier message on the
  // same (src, dst) endpoint pair. The bump past the previous delivery is
  // *strict* (one ulp) so two messages on one stream never share a
  // timestamp — the engine's same-timestamp tie-break is then free to
  // reorder without ever breaking stream order (see test_schedule_fuzz).
  SimTime deliver_at = engine_.now() + delay;
  auto stream = stream_clock_.find(stream_key);
  if (stream != stream_clock_.end() && deliver_at <= stream->second) {
    deliver_at = std::nextafter(stream->second,
                                std::numeric_limits<SimTime>::infinity());
  }
  stream_clock_[stream_key] = deliver_at;
  std::uint64_t fifo_seq = 0;
  if constexpr (check::kEnabled) fifo_seq = ++stream_seq_[stream_key];

  schedule_delivery(deliver_at, std::move(envelope), src, stream_key,
                    fifo_seq);
}

void SimEnv::schedule_delivery(SimTime at, Envelope envelope, NodeId src,
                               std::uint64_t stream_key,
                               std::uint64_t fifo_seq) {
  if (obs::tracing()) {
    // The in-flight hop as a span on the source node's network track: the
    // whole transfer, send to delivery, linked to the request's trace.
    obs::Tracer::instance().complete_span(
        engine_.now(), at - engine_.now(),
        "msg:" + std::to_string(envelope.type),
        "net:n" + std::to_string(src), envelope.trace_id);
  }

  const Endpoint to = envelope.to;
  engine_.schedule_at(at, [this, to, stream_key, fifo_seq,
                           env = std::move(envelope)]() {
    if constexpr (check::kEnabled) {
      // Out-of-band deliveries (fault-tampered, fifo_seq 0) are exempt:
      // dropped and duplicated messages break exact succession by design.
      if (fifo_seq != 0) fifo_.observe(stream_key, fifo_seq, __FILE__, __LINE__);
    }
    auto it = actors_.find(to);
    if (it == actors_.end()) return;  // actor detached in flight
    if (obs::tracing()) {
      obs::Tracer::instance().instant(
          engine_.now(), "deliver:" + std::to_string(env.type),
          "net:n" + std::to_string(it->second.node), env.trace_id);
    }
    it->second.actor->on_message(env);
  });
}

void SimEnv::execute(NodeId /*node*/, double modeled_seconds,
                     std::function<int()> work,
                     std::function<void(int)> done) {
  GC_CHECK_MSG(modeled_seconds >= 0.0, "negative computation time");
  engine_.schedule_after(
      modeled_seconds,
      [work = std::move(work), done = std::move(done)]() mutable {
        const int result = work ? work() : 0;
        done(result);
      });
}

}  // namespace gc::net
