// Execution environment abstraction.
//
// All middleware components (agents, SEDs, clients) are Actors written
// against Env; the same code runs on two backends:
//  - SimEnv  : discrete-event simulation (virtual clock, modeled costs) —
//              used for the Grid'5000-scale experiments;
//  - RealEnv : std::thread dispatcher with a wall clock — used by the
//              runnable examples, where services execute real code.
#pragma once

#include <cstdint>
#include <functional>

#include "common/units.hpp"
#include "net/message.hpp"
#include "net/topology.hpp"

namespace gc::net {

class Env;

/// Event-driven middleware component. on_message always runs on the Env's
/// dispatch context; actors never need their own locking.
class Actor {
 public:
  virtual ~Actor() = default;
  virtual void on_message(const Envelope& envelope) = 0;

  [[nodiscard]] Endpoint endpoint() const { return endpoint_; }
  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] Env* env() const { return env_; }

 private:
  friend class Env;
  Endpoint endpoint_ = kNullEndpoint;
  NodeId node_ = 0;
  Env* env_ = nullptr;
};

/// Handle for cancelling a pending timer; 0 is never a valid id.
using TimerId = std::uint64_t;

class Env {
 public:
  virtual ~Env() = default;

  /// Current time: virtual seconds (SimEnv) or wall seconds since start
  /// (RealEnv).
  [[nodiscard]] virtual SimTime now() const = 0;

  /// Runs fn after `delay` seconds on the dispatch context. The returned
  /// id can cancel the timer before it fires.
  virtual TimerId post_after(SimTime delay, std::function<void()> fn) = 0;

  /// post_after, attributed to `owner` for the DES's independence
  /// bookkeeping (see des::Strategy). An actor arming a timer chain from
  /// outside its own dispatch context (deployment-time registration, an
  /// application thread) passes its endpoint so the chain does not fall
  /// into the conservatively-shared root ownership. Backends without a
  /// scheduler seam ignore the attribution.
  virtual TimerId post_after_as(Endpoint owner, SimTime delay,
                                std::function<void()> fn) {
    (void)owner;
    return post_after(delay, std::move(fn));
  }

  /// Cancels a pending timer; false if it already fired or is unknown.
  virtual bool cancel_timer(TimerId id) = 0;

  /// Registers an actor on a node; the actor becomes addressable.
  Endpoint attach(Actor& actor, NodeId node) {
    const Endpoint ep = do_attach(actor, node);
    actor.endpoint_ = ep;
    actor.node_ = node;
    actor.env_ = this;
    return ep;
  }

  virtual void detach(Endpoint endpoint) = 0;

  /// Sends an envelope; delivery is delayed by the topology's transfer
  /// time for envelope.wire_size(). Unknown destinations are dropped with
  /// a warning (as a real middleware drops messages for dead objects).
  virtual void send(Envelope envelope) = 0;

  /// Runs `work` as a computation on `node` that occupies `modeled_seconds`
  /// of that node's time. SimEnv advances the virtual clock and then runs
  /// `work` inline (services pass cheap synthetic work in simulation);
  /// RealEnv runs `work` on a worker thread and takes as long as it takes.
  /// `done(result)` is dispatched afterwards on the dispatch context.
  virtual void execute(NodeId node, double modeled_seconds,
                       std::function<int()> work,
                       std::function<void(int)> done) = 0;

  [[nodiscard]] virtual bool is_simulated() const = 0;

  /// Node an endpoint is attached to; 0 when unknown (detached endpoint,
  /// or a backend without an address book). Real DIET deployments know
  /// this from the deployment file; SimEnv answers from its attach table.
  /// Agents use it to price candidate links in the data-locality term.
  [[nodiscard]] virtual NodeId node_of(Endpoint /*endpoint*/) const {
    return 0;
  }

  /// Modeled one-way time for `bytes` from `a` to `b` *as of now*: the
  /// topology's closed-form transfer_time, except under a contention model
  /// (SimEnv with flows enabled), where the current congestion census is
  /// priced in. All byte-costing outside src/net + src/platform goes
  /// through here (gclint rule net-cost), so schedulers see congestion.
  [[nodiscard]] virtual double estimate_transfer_s(NodeId a, NodeId b,
                                                   std::int64_t bytes) const {
    // gclint: allow(net-cost) the seam the rule funnels callers into
    return topology().transfer_time(a, b, bytes);
  }

  [[nodiscard]] const Topology& topology() const { return *topology_; }

 protected:
  explicit Env(const Topology& topology) : topology_(&topology) {}
  virtual Endpoint do_attach(Actor& actor, NodeId node) = 0;

 private:
  const Topology* topology_;
};

}  // namespace gc::net
