// Message envelopes exchanged between middleware actors.
#pragma once

#include <cstdint>
#include <string>

#include "net/codec.hpp"

namespace gc::net {

/// Actor address, unique within an Env. 0 is invalid.
using Endpoint = std::uint32_t;
inline constexpr Endpoint kNullEndpoint = 0;

/// Physical node hosting an actor (index into the platform's node table).
using NodeId = std::uint32_t;

struct Envelope {
  Endpoint from = kNullEndpoint;
  Endpoint to = kNullEndpoint;
  std::uint32_t type = 0;  ///< protocol-defined message tag
  Bytes payload;
  /// Bytes of bulk data this message *represents* beyond the payload it
  /// physically carries (e.g. a multi-GiB simulation result file in the
  /// DES). Charged to the link cost model, never materialized.
  std::int64_t modeled_extra_bytes = 0;
  /// Observability: id linking every hop of one DIET request into a single
  /// trace (client assigns, agents/SEDs copy to every message they emit on
  /// the request's behalf). 0 = untraced. Modeled as riding in the fixed
  /// 32-byte header, so it does not change wire_size().
  std::uint64_t trace_id = 0;
  /// Out-of-band: delivery skips the per-(src,dst) FIFO stream — each oob
  /// message travels as its own parallel connection (the WAN engine's
  /// stripes). Ordering/reassembly is the sender protocol's job. Ignored
  /// when the contention model is off.
  bool oob = false;

  /// Size charged to the network model: fixed header + payload + bulk data.
  [[nodiscard]] std::int64_t wire_size() const {
    constexpr std::int64_t kHeaderBytes = 32;
    return kHeaderBytes + static_cast<std::int64_t>(payload.size()) +
           modeled_extra_bytes;
  }
};

}  // namespace gc::net
