// DES-backed Env: virtual time, modeled transfer and computation costs.
//
// Two transfer models, selected per run:
//  - default: every message is priced with the closed-form
//    Topology::transfer_time at send time (the pre-contention model,
//    byte-identical to historical runs);
//  - contention (enable_contention()): bulk messages become fluid flows in
//    a net::FlowModel that fair-shares link capacity along the topology's
//    route, with a per-cluster disk/NFS stage for file-backed transfers.
//    Small control messages keep the closed form but still honor stream
//    FIFO order behind any bulk flow in progress on their stream.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "check/invariant.hpp"
#include "des/engine.hpp"
#include "net/env.hpp"
#include "net/fault.hpp"
#include "net/flow.hpp"
#include "obs/metrics.hpp"

namespace gc::net {

class SimEnv final : public Env {
 public:
  SimEnv(des::Engine& engine, const Topology& topology)
      : Env(topology), engine_(engine) {}

  [[nodiscard]] SimTime now() const override { return engine_.now(); }

  TimerId post_after(SimTime delay, std::function<void()> fn) override {
    return engine_.schedule_after(delay, std::move(fn),
                                  des::EventTag::kTimer);
  }

  TimerId post_after_as(Endpoint owner, SimTime delay,
                        std::function<void()> fn) override {
    return engine_.schedule_after(delay, std::move(fn), des::EventTag::kTimer,
                                  owner);
  }

  bool cancel_timer(TimerId id) override { return engine_.cancel(id); }

  void detach(Endpoint endpoint) override { actors_.erase(endpoint); }

  void send(Envelope envelope) override;

  void execute(NodeId node, double modeled_seconds, std::function<int()> work,
               std::function<void(int)> done) override;

  [[nodiscard]] bool is_simulated() const override { return true; }

  /// Answers from the permanent attach ledger, so endpoints stay
  /// resolvable after detach (a dead SED still has a node). An endpoint
  /// that was NEVER attached is a caller bug: invariant violation in
  /// GC_CHECK builds, node 0 in release.
  [[nodiscard]] NodeId node_of(Endpoint endpoint) const override {
    auto it = nodes_.find(endpoint);
    GC_INVARIANT(it != nodes_.end(),
                 "node_of(" + std::to_string(endpoint) +
                     "): endpoint was never attached");
    return it != nodes_.end() ? it->second : 0;
  }

  /// Switches bulk transfers (wire size >= min_flow_bytes) to the
  /// fair-sharing flow model. Must be called before traffic starts; the
  /// default (off) send path is byte-identical to the pre-flow-model env.
  void enable_contention(std::int64_t min_flow_bytes = 4096);

  [[nodiscard]] bool contention_enabled() const { return flow_ != nullptr; }
  /// nullptr when contention is off.
  [[nodiscard]] const FlowModel* flow_model() const { return flow_.get(); }

  /// Congestion-aware when contention is on: prices `bytes` at the
  /// current fair share of the route (including the disk stage for bulk
  /// sizes); otherwise the closed form.
  [[nodiscard]] double estimate_transfer_s(NodeId a, NodeId b,
                                           std::int64_t bytes) const override;

  [[nodiscard]] des::Engine& engine() { return engine_; }

  /// Installs (or clears, with nullptr) the fault-injection hook. The hook
  /// must outlive the env; with none installed the send path is unchanged.
  void set_fault_hook(FaultHook* hook) { fault_hook_ = hook; }

  /// Total bytes charged to the network model so far.
  [[nodiscard]] std::int64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }

  /// Bytes charged per directed (src, dst) node pair, in node order.
  /// Callers with a site map (the platform) can split this into LAN vs
  /// WAN traffic — what the data-locality bench reports. Aggregated from
  /// the per-stream state on each call; the reference stays valid until
  /// the next call.
  [[nodiscard]] const std::map<std::pair<NodeId, NodeId>, std::int64_t>&
  bytes_by_node_pair() const;

 private:
  struct StreamState;

  Endpoint do_attach(Actor& actor, NodeId node) override;
  /// Schedules one delivery; fifo_seq 0 = out-of-band (no FIFO check).
  void schedule_delivery(SimTime at, Envelope envelope, NodeId src,
                         std::uint64_t stream_key, std::uint64_t fifo_seq);
  /// FIFO-clamps `deliver_at` against the stream clock, advances it, and
  /// schedules the delivery (the tail of the classic send path).
  void deliver_clamped(StreamState& stream, std::uint64_t stream_key,
                       Envelope envelope, std::uint64_t fifo_seq,
                       SimTime deliver_at);
  /// Starts envelope as a flow occupying its stream; on completion the
  /// stream un-busies and held messages drain in order.
  void dispatch_bulk(StreamState& stream, std::uint64_t stream_key,
                     Envelope envelope, std::uint64_t fifo_seq);
  void drain_held(StreamState& stream, std::uint64_t stream_key);

  struct Entry {
    Actor* actor;
    NodeId node;
  };

  /// Per (src, dst) endpoint pair: everything the send hot path needs,
  /// resolved with ONE hash lookup per message instead of the former
  /// four parallel maps (stream clock, FIFO seq, fault seq, byte ledger)
  /// plus per-message metric-label construction. Endpoints are never
  /// reused, so the node pair and the cached per-link counters are fixed
  /// for the stream's lifetime.
  struct StreamState {
    NodeId src = 0;
    NodeId dst = 0;
    /// Time of the latest scheduled delivery. Messages on one pair deliver
    /// in send order, like a TCP/CORBA stream — a small control message
    /// cannot overtake a bulk transfer sent earlier on the same connection.
    SimTime clock = 0.0;
    bool clock_valid = false;
    std::uint64_t fifo_seq = 0;   ///< send counter (GC_CHECK builds only)
    std::uint64_t fault_seq = 0;  ///< maintained while a hook is installed
    std::int64_t bytes = 0;       ///< ledger behind bytes_by_node_pair()
    /// Contention mode: a bulk flow is in progress on this stream; later
    /// sends queue in `held` and dispatch in order when it completes.
    bool busy = false;
    std::deque<std::pair<Envelope, std::uint64_t>> held;
    /// Lazily bound per-link instruments ("n<src>->n<dst>" label built
    /// once per stream, not per message); Metrics::reset() never
    /// invalidates them.
    obs::Counter* messages = nullptr;
    obs::Counter* bytes_counter = nullptr;
    obs::Counter* tampered = nullptr;
  };

  des::Engine& engine_;
  Endpoint next_endpoint_ = 1;
  std::unordered_map<Endpoint, Entry> actors_;
  /// Permanent endpoint -> node ledger; unlike actors_, never erased.
  std::unordered_map<Endpoint, NodeId> nodes_;
  std::unordered_map<std::uint64_t, StreamState> streams_;
  /// Delivery-order monitor (GC_CHECK builds only).
  check::FifoMonitor fifo_{"simenv per-stream delivery"};
  FaultHook* fault_hook_ = nullptr;
  std::unique_ptr<FlowModel> flow_;  ///< non-null = contention mode
  std::int64_t min_flow_bytes_ = 4096;
  std::int64_t bytes_sent_ = 0;
  std::uint64_t messages_sent_ = 0;
  /// Rebuilt by bytes_by_node_pair() from the stream ledgers.
  mutable std::map<std::pair<NodeId, NodeId>, std::int64_t> pair_bytes_;
};

}  // namespace gc::net
