// DES-backed Env: virtual time, modeled transfer and computation costs.
#pragma once

#include <map>
#include <unordered_map>
#include <utility>

#include "check/invariant.hpp"
#include "des/engine.hpp"
#include "net/env.hpp"
#include "net/fault.hpp"
#include "obs/metrics.hpp"

namespace gc::net {

class SimEnv final : public Env {
 public:
  SimEnv(des::Engine& engine, const Topology& topology)
      : Env(topology), engine_(engine) {}

  [[nodiscard]] SimTime now() const override { return engine_.now(); }

  TimerId post_after(SimTime delay, std::function<void()> fn) override {
    return engine_.schedule_after(delay, std::move(fn),
                                  des::EventTag::kTimer);
  }

  TimerId post_after_as(Endpoint owner, SimTime delay,
                        std::function<void()> fn) override {
    return engine_.schedule_after(delay, std::move(fn), des::EventTag::kTimer,
                                  owner);
  }

  bool cancel_timer(TimerId id) override { return engine_.cancel(id); }

  void detach(Endpoint endpoint) override { actors_.erase(endpoint); }

  void send(Envelope envelope) override;

  void execute(NodeId node, double modeled_seconds, std::function<int()> work,
               std::function<void(int)> done) override;

  [[nodiscard]] bool is_simulated() const override { return true; }

  [[nodiscard]] NodeId node_of(Endpoint endpoint) const override {
    auto it = actors_.find(endpoint);
    return it != actors_.end() ? it->second.node : 0;
  }

  [[nodiscard]] des::Engine& engine() { return engine_; }

  /// Installs (or clears, with nullptr) the fault-injection hook. The hook
  /// must outlive the env; with none installed the send path is unchanged.
  void set_fault_hook(FaultHook* hook) { fault_hook_ = hook; }

  /// Total bytes charged to the network model so far.
  [[nodiscard]] std::int64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }

  /// Bytes charged per directed (src, dst) node pair, in node order.
  /// Callers with a site map (the platform) can split this into LAN vs
  /// WAN traffic — what the data-locality bench reports. Aggregated from
  /// the per-stream state on each call; the reference stays valid until
  /// the next call.
  [[nodiscard]] const std::map<std::pair<NodeId, NodeId>, std::int64_t>&
  bytes_by_node_pair() const;

 private:
  Endpoint do_attach(Actor& actor, NodeId node) override;
  /// Schedules one delivery; fifo_seq 0 = out-of-band (no FIFO check).
  void schedule_delivery(SimTime at, Envelope envelope, NodeId src,
                         std::uint64_t stream_key, std::uint64_t fifo_seq);

  struct Entry {
    Actor* actor;
    NodeId node;
  };

  /// Per (src, dst) endpoint pair: everything the send hot path needs,
  /// resolved with ONE hash lookup per message instead of the former
  /// four parallel maps (stream clock, FIFO seq, fault seq, byte ledger)
  /// plus per-message metric-label construction. Endpoints are never
  /// reused, so the node pair and the cached per-link counters are fixed
  /// for the stream's lifetime.
  struct StreamState {
    NodeId src = 0;
    NodeId dst = 0;
    /// Time of the latest scheduled delivery. Messages on one pair deliver
    /// in send order, like a TCP/CORBA stream — a small control message
    /// cannot overtake a bulk transfer sent earlier on the same connection.
    SimTime clock = 0.0;
    bool clock_valid = false;
    std::uint64_t fifo_seq = 0;   ///< send counter (GC_CHECK builds only)
    std::uint64_t fault_seq = 0;  ///< maintained while a hook is installed
    std::int64_t bytes = 0;       ///< ledger behind bytes_by_node_pair()
    /// Lazily bound per-link instruments ("n<src>->n<dst>" label built
    /// once per stream, not per message); Metrics::reset() never
    /// invalidates them.
    obs::Counter* messages = nullptr;
    obs::Counter* bytes_counter = nullptr;
    obs::Counter* tampered = nullptr;
  };

  des::Engine& engine_;
  Endpoint next_endpoint_ = 1;
  std::unordered_map<Endpoint, Entry> actors_;
  std::unordered_map<std::uint64_t, StreamState> streams_;
  /// Delivery-order monitor (GC_CHECK builds only).
  check::FifoMonitor fifo_{"simenv per-stream delivery"};
  FaultHook* fault_hook_ = nullptr;
  std::int64_t bytes_sent_ = 0;
  std::uint64_t messages_sent_ = 0;
  /// Rebuilt by bytes_by_node_pair() from the stream ledgers.
  mutable std::map<std::pair<NodeId, NodeId>, std::int64_t> pair_bytes_;
};

}  // namespace gc::net
