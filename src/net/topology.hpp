// Network topology interface: where actors live and what links cost.
//
// The platform library provides the Grid'5000 implementation; tests use
// UniformTopology.
#pragma once

#include "net/message.hpp"

namespace gc::net {

class Topology {
 public:
  virtual ~Topology() = default;

  /// One-way propagation latency between two nodes, in seconds.
  [[nodiscard]] virtual double latency(NodeId a, NodeId b) const = 0;

  /// Bottleneck bandwidth between two nodes, in bytes/second.
  [[nodiscard]] virtual double bandwidth(NodeId a, NodeId b) const = 0;

  /// Modeled one-way transfer time for `bytes` between two nodes.
  [[nodiscard]] double transfer_time(NodeId a, NodeId b,
                                     std::int64_t bytes) const {
    if (a == b) return 0.0;  // same host: loopback, free in the model
    return latency(a, b) + static_cast<double>(bytes) / bandwidth(a, b);
  }
};

/// Flat topology: every pair of distinct nodes has the same link.
class UniformTopology final : public Topology {
 public:
  UniformTopology(double latency_s, double bandwidth_bps)
      : latency_(latency_s), bandwidth_(bandwidth_bps) {}

  [[nodiscard]] double latency(NodeId a, NodeId b) const override {
    return a == b ? 0.0 : latency_;
  }
  [[nodiscard]] double bandwidth(NodeId, NodeId) const override {
    return bandwidth_;
  }

 private:
  double latency_;
  double bandwidth_;
};

}  // namespace gc::net
