// Network topology interface: where actors live and what links cost.
//
// Two pricing surfaces coexist:
//  - transfer_time(): the classic instantaneous formula (latency +
//    bytes/bandwidth), used when the contention model is off and by
//    estimates that want the uncongested baseline;
//  - route(): the path as a sequence of capacitated links, consumed by
//    net::FlowModel to fair-share bandwidth between concurrent bulk
//    transfers (SimEnv contention mode).
//
// The platform library provides the Grid'5000 implementation; tests use
// UniformTopology.
#pragma once

#include <string>

#include "common/log.hpp"
#include "net/message.hpp"

namespace gc::net {

/// Link identity scheme: 64-bit keys, kind-tagged so every topology mints
/// non-colliding ids without central bookkeeping and the observability
/// layer can render a stable label from the key alone.
namespace linkkey {

enum Kind : std::uint64_t {
  kPair = 1,      ///< default: one private link per directed node pair
  kNicOut = 2,    ///< a node's egress NIC (UniformTopology)
  kNicIn = 3,     ///< a node's ingress NIC (UniformTopology)
  kLan = 4,       ///< a cluster's switched LAN (platform)
  kWan = 5,       ///< a site-pair WAN segment (platform)
  kDiskRead = 6,  ///< a cluster's NFS/disk read stage (platform)
  kDiskWrite = 7, ///< a cluster's NFS/disk write stage (platform)
};

[[nodiscard]] constexpr std::uint64_t make(Kind kind, std::uint64_t a,
                                           std::uint64_t b = 0) {
  return (static_cast<std::uint64_t>(kind) << 56) | ((a & 0xfffffffULL) << 28) |
         (b & 0xfffffffULL);
}

/// Stable human-readable label for metrics ("lan:c3", "wan:s0-s2", ...).
/// Cold path: the flow model calls it once per link, never per transfer.
[[nodiscard]] std::string name(std::uint64_t key);

}  // namespace linkkey

/// One capacitated hop of a route.
struct LinkRef {
  std::uint64_t key = 0;      ///< linkkey identity; 0 = no link
  double capacity_bps = 0.0;  ///< total capacity shared by crossing flows
  /// Ceiling on any SINGLE flow's rate through this link (0 = none).
  /// Models lossy-WAN TCP, where one stream cannot fill the pipe — the
  /// reason MPWide-style striping wins (each stripe is its own flow).
  double per_flow_cap_bps = 0.0;
};

/// A path between two nodes: one-way propagation latency plus the links
/// the bytes cross. Fixed-capacity inline storage — routes are built on
/// the send hot path and never allocate.
struct Route {
  static constexpr int kMaxHops = 6;

  double latency_s = 0.0;
  int hop_count = 0;
  LinkRef hops[kMaxHops];

  void clear() {
    latency_s = 0.0;
    hop_count = 0;
  }
  void add(const LinkRef& link) {
    if (link.key == 0 || link.capacity_bps <= 0.0) return;
    GC_CHECK_MSG(hop_count < kMaxHops, "route exceeds kMaxHops");
    hops[hop_count++] = link;
  }
  [[nodiscard]] bool empty() const { return hop_count == 0; }
  /// Bottleneck capacity of the path (uncongested single-flow rate).
  [[nodiscard]] double min_capacity_bps() const {
    double min_bps = 0.0;
    for (int i = 0; i < hop_count; ++i) {
      if (min_bps <= 0.0 || hops[i].capacity_bps < min_bps) {
        min_bps = hops[i].capacity_bps;
      }
    }
    return min_bps;
  }
};

class Topology {
 public:
  virtual ~Topology() = default;

  /// One-way propagation latency between two nodes, in seconds.
  [[nodiscard]] virtual double latency(NodeId a, NodeId b) const = 0;

  /// Bottleneck bandwidth between two nodes, in bytes/second.
  [[nodiscard]] virtual double bandwidth(NodeId a, NodeId b) const = 0;

  /// Modeled one-way transfer time for `bytes` between two nodes.
  [[nodiscard]] double transfer_time(NodeId a, NodeId b,
                                     std::int64_t bytes) const {
    if (a == b) return 0.0;  // same host: loopback, free in the model
    const double bps = bandwidth(a, b);
    GC_CHECK_MSG(bps > 0.0, "non-positive bandwidth on a priced link");
    return latency(a, b) + static_cast<double>(bytes) / bps;
  }

  /// The path `a` -> `b` as capacitated links, for the flow model. The
  /// default is one private per-pair link of bandwidth(a, b) — correct
  /// single-flow times, no cross-pair sharing; real topologies override
  /// with shared links. a == b must produce an empty route (loopback).
  virtual void route(NodeId a, NodeId b, Route& out) const {
    out.clear();
    if (a == b) return;
    out.latency_s = latency(a, b);
    out.add(LinkRef{linkkey::make(linkkey::kPair, a, b), bandwidth(a, b), 0.0});
  }

  /// Disk/NFS stage a staged bulk transfer reads from at `node`'s storage
  /// (IC archives, result tarballs). key 0 = no disk stage modeled.
  [[nodiscard]] virtual LinkRef disk_read(NodeId /*node*/) const {
    return LinkRef{};
  }
  /// Disk/NFS stage a staged bulk transfer writes to at `node`'s storage.
  [[nodiscard]] virtual LinkRef disk_write(NodeId /*node*/) const {
    return LinkRef{};
  }
};

/// Flat topology: every pair of distinct nodes has the same link. Under
/// the flow model each node contributes its egress and ingress NIC, both
/// of the flat bandwidth: transfers from one node share its uplink.
class UniformTopology final : public Topology {
 public:
  UniformTopology(double latency_s, double bandwidth_bps)
      : latency_(latency_s), bandwidth_(bandwidth_bps) {}

  [[nodiscard]] double latency(NodeId a, NodeId b) const override {
    return a == b ? 0.0 : latency_;
  }
  [[nodiscard]] double bandwidth(NodeId, NodeId) const override {
    return bandwidth_;
  }

  void route(NodeId a, NodeId b, Route& out) const override {
    out.clear();
    if (a == b) return;
    out.latency_s = latency_;
    out.add(LinkRef{linkkey::make(linkkey::kNicOut, a), bandwidth_,
                    per_flow_cap_bps_});
    out.add(LinkRef{linkkey::make(linkkey::kNicIn, b), bandwidth_,
                    per_flow_cap_bps_});
  }

  /// Per-flow rate ceiling applied to both NICs (0 = none). Tests use it
  /// to model a lossy link where striping beats a single stream.
  void set_per_flow_cap(double bps) { per_flow_cap_bps_ = bps; }

 private:
  double latency_;
  double bandwidth_;
  double per_flow_cap_bps_ = 0.0;
};

}  // namespace gc::net
