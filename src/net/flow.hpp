// Contention-aware transfer model: concurrent bulk transfers as fluid
// flows that fair-share link capacity.
//
// Each flow is a (route, bytes) pair. Whenever a flow starts or finishes,
// every active flow's rate is recomputed by max-min progressive filling
// over the capacitated links of the routes, honoring per-flow rate caps
// (the lossy-WAN single-stream ceiling that makes MPWide-style striping
// pay off). Between recomputations rates are constant, so each flow's
// completion instant is exact — no timestep.
//
// Determinism: the allocation a max-min solve produces is unique (it does
// not depend on iteration order), flows and links are iterated in id/key
// order, and completion times are pure functions of the allocation — so a
// run is bit-identical under any engine tie-break seed.
//
// The model never cancels calendar events (a cancel against another
// owner's event would couple the two owners in the model checker's
// independence relation). Instead, completion events carry an epoch: when
// a flow's rate changes, its epoch is bumped and a fresh event scheduled
// at the new completion instant; stale events fire as no-ops.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "des/engine.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"

namespace gc::net {

class FlowModel {
 public:
  using FlowId = std::uint64_t;
  /// Called exactly once when the flow's last byte has been sent;
  /// `delivery_at` is when that byte arrives (completion + latency). For a
  /// flow whose rate never changed, delivery_at reduces exactly — same
  /// floating-point expression — to start + (latency + bytes/bottleneck),
  /// the classic Topology::transfer_time formula.
  using DoneFn = std::function<void(double delivery_at)>;

  explicit FlowModel(des::Engine& engine) : engine_(engine) {}
  FlowModel(const FlowModel&) = delete;
  FlowModel& operator=(const FlowModel&) = delete;

  /// Starts a flow of `bytes` over `route` (must be non-empty). Recomputes
  /// all rates; `done` fires from a root-owned calendar event.
  FlowId start(const Route& route, std::int64_t bytes, DoneFn done);

  /// What a NEW flow over `route` would get right now, given the current
  /// active-flow census: latency + bytes / min over hops of
  /// min(per_flow_cap, capacity / (active + 1)). The congestion signal
  /// surfaced to mct-data scheduling estimates — a snapshot, not a
  /// promise.
  [[nodiscard]] double estimate(const Route& route, std::int64_t bytes) const;

  [[nodiscard]] int active_flows() const {
    return static_cast<int>(flows_.size());
  }
  [[nodiscard]] std::uint64_t flows_started() const { return started_; }
  [[nodiscard]] std::uint64_t flows_completed() const { return completed_; }
  [[nodiscard]] int peak_active_flows() const { return peak_active_; }
  [[nodiscard]] std::uint64_t rate_recomputes() const { return recomputes_; }

 private:
  struct Flow {
    FlowId id = 0;
    double remaining_bytes = 0.0;
    double bytes = 0.0;
    double rate = 0.0;        ///< current allocation, bytes/s
    double first_rate = 0.0;  ///< allocation at start
    bool rate_changed = false;
    double start_time = 0.0;
    double latency_s = 0.0;
    double completion_at = 0.0;  ///< when the last byte leaves the source
    std::uint64_t epoch = 0;     ///< invalidates stale completion events
    int hop_count = 0;
    std::uint64_t hop_keys[Route::kMaxHops] = {};
    double cap_bps = 0.0;  ///< per-flow ceiling over the route (0 = none)
    DoneFn done;
    // solve() scratch
    double alloc = 0.0;
    bool frozen = false;
  };

  struct LinkState {
    double capacity_bps = 0.0;
    double per_flow_cap_bps = 0.0;
    int active = 0;  ///< flows currently crossing this link
    obs::Gauge* util_gauge = nullptr;
    obs::Gauge* flows_gauge = nullptr;
    // solve() scratch
    double residual = 0.0;
    int unfrozen = 0;
  };

  /// Drains transferred bytes from every flow up to `now`.
  void advance_to(double now);
  /// Max-min progressive filling over flows whose completion lies strictly
  /// after `now` (flows completing in the current tie group keep their
  /// rates and fire untouched — recomputing them would reorder ties).
  void solve(double now);
  void schedule_completion(FlowId id, Flow& flow);
  void on_completion(FlowId id, std::uint64_t epoch);

  des::Engine& engine_;
  std::map<FlowId, Flow> flows_;           ///< id order = deterministic
  std::map<std::uint64_t, LinkState> links_;  ///< key order = deterministic
  std::vector<Flow*> solve_scratch_;
  double last_advance_ = 0.0;
  FlowId next_id_ = 1;
  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t recomputes_ = 0;
  int peak_active_ = 0;
};

}  // namespace gc::net
