// Thread-backed Env: wall-clock time, a single dispatcher thread for all
// actor callbacks, and worker threads for service executions.
//
// The runnable examples use this backend: the middleware behaves exactly as
// in simulation (same actors, same protocol), but solve functions run real
// RAMSES/GALICS code and take real time. Modeled network delays from the
// topology are still applied (scaled by `delay_scale`, default 1), so even
// a laptop run shows realistic finding times.
//
// gclint: allow-file(wallclock) RealEnv IS the wall-clock backend
// gclint: allow-file(thread) dispatcher/worker threads are this backend's job
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/env.hpp"
#include "net/fault.hpp"

namespace gc::net {

class RealEnv final : public Env {
 public:
  explicit RealEnv(const Topology& topology, double delay_scale = 1.0);
  ~RealEnv() override;

  RealEnv(const RealEnv&) = delete;
  RealEnv& operator=(const RealEnv&) = delete;

  /// Starts the dispatcher thread. Must be called before any send().
  void start();

  /// Waits until no timer, message, or execution is outstanding, then stops
  /// the dispatcher. Safe to call more than once.
  void stop();

  /// Blocks the calling (non-dispatcher) thread until there is no pending
  /// work, without stopping the dispatcher.
  void wait_idle();

  [[nodiscard]] SimTime now() const override;
  TimerId post_after(SimTime delay, std::function<void()> fn) override;
  bool cancel_timer(TimerId id) override;
  void detach(Endpoint endpoint) override;
  void send(Envelope envelope) override;
  void execute(NodeId node, double modeled_seconds, std::function<int()> work,
               std::function<void(int)> done) override;
  [[nodiscard]] bool is_simulated() const override { return false; }

  /// Installs (or clears, with nullptr) the fault-injection hook. The hook
  /// must outlive the env and be installed before start(); with none
  /// installed the send path is unchanged.
  void set_fault_hook(FaultHook* hook) { fault_hook_ = hook; }

 private:
  Endpoint do_attach(Actor& actor, NodeId node) override;
  void dispatcher_loop();
  TimerId enqueue(SimTime deadline, std::function<void()> fn);
  /// Live (non-cancelled) queued events; callers hold mutex_.
  [[nodiscard]] std::size_t live_queued() const {
    return queue_.size() - cancelled_.size();
  }

  struct Timed {
    SimTime deadline;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Timed& a, const Timed& b) const {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.seq > b.seq;
    }
  };

  struct Entry {
    Actor* actor;
    NodeId node;
  };

  double delay_scale_;
  std::chrono::steady_clock::time_point origin_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::priority_queue<Timed, std::vector<Timed>, Later> queue_;
  std::unordered_set<std::uint64_t> queued_ids_;   // guarded by mutex_
  std::unordered_set<std::uint64_t> cancelled_;    // subset of queued_ids_
  std::uint64_t next_seq_ = 1;
  bool running_ = false;
  bool stop_requested_ = false;
  bool stopped_ = false;  ///< stop() completed; posting now is a bug
  int in_flight_ = 0;  ///< executions + the event currently dispatching

  std::unordered_map<Endpoint, Entry> actors_;  // guarded by mutex_
  Endpoint next_endpoint_ = 1;

  /// Per-stream send counters for the fault hook (guarded by mutex_,
  /// populated only while a hook is installed).
  std::unordered_map<std::uint64_t, std::uint64_t> fault_seq_;
  FaultHook* fault_hook_ = nullptr;  ///< set before start(); read-only after

  std::thread dispatcher_;
  std::vector<std::thread> workers_;  // guarded by mutex_
};

}  // namespace gc::net
