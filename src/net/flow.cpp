#include "net/flow.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "check/invariant.hpp"
#include "common/log.hpp"

namespace gc::net {

namespace linkkey {

std::string name(std::uint64_t key) {
  const auto kind = static_cast<Kind>(key >> 56);
  const auto a = (key >> 28) & 0xfffffffULL;
  const auto b = key & 0xfffffffULL;
  // gclint: allow-file(hot-string) cold path, once per link ever seen
  switch (kind) {
    case kPair:
      return "pair:n" + std::to_string(a) + "-n" + std::to_string(b);
    case kNicOut:
      return "nic-out:n" + std::to_string(a);
    case kNicIn:
      return "nic-in:n" + std::to_string(a);
    case kLan:
      return "lan:c" + std::to_string(a);
    case kWan:
      return "wan:s" + std::to_string(a) + "-s" + std::to_string(b);
    case kDiskRead:
      return "disk-rd:c" + std::to_string(a);
    case kDiskWrite:
      return "disk-wr:c" + std::to_string(a);
  }
  return "link:" + std::to_string(key);
}

}  // namespace linkkey

FlowModel::FlowId FlowModel::start(const Route& route, std::int64_t bytes,
                                   DoneFn done) {
  GC_CHECK_MSG(!route.empty(), "flow over an empty route");
  GC_CHECK_MSG(bytes >= 0, "flow with negative bytes");
  const double now = engine_.now();
  advance_to(now);

  const FlowId id = next_id_++;
  Flow& flow = flows_[id];
  flow.id = id;
  flow.bytes = static_cast<double>(bytes);
  flow.remaining_bytes = flow.bytes;
  flow.start_time = now;
  flow.latency_s = route.latency_s;
  flow.done = std::move(done);
  flow.hop_count = route.hop_count;
  for (int i = 0; i < route.hop_count; ++i) {
    const LinkRef& hop = route.hops[i];
    flow.hop_keys[i] = hop.key;
    auto [it, inserted] = links_.try_emplace(hop.key);
    LinkState& link = it->second;
    if (inserted) {
      link.capacity_bps = hop.capacity_bps;
      link.per_flow_cap_bps = hop.per_flow_cap_bps;
    }
    ++link.active;
    if (hop.per_flow_cap_bps > 0.0 &&
        (flow.cap_bps <= 0.0 || hop.per_flow_cap_bps < flow.cap_bps)) {
      flow.cap_bps = hop.per_flow_cap_bps;
    }
  }

  ++started_;
  peak_active_ = std::max(peak_active_, static_cast<int>(flows_.size()));
  solve(now);
  GC_CHECK_MSG(flow.rate > 0.0, "new flow got no bandwidth");
  return id;
}

double FlowModel::estimate(const Route& route, std::int64_t bytes) const {
  if (route.empty()) return 0.0;
  double rate = 0.0;
  for (int i = 0; i < route.hop_count; ++i) {
    const LinkRef& hop = route.hops[i];
    int active = 0;
    auto it = links_.find(hop.key);
    if (it != links_.end()) active = it->second.active;
    double share = hop.capacity_bps / static_cast<double>(active + 1);
    if (hop.per_flow_cap_bps > 0.0 && hop.per_flow_cap_bps < share) {
      share = hop.per_flow_cap_bps;
    }
    if (rate <= 0.0 || share < rate) rate = share;
  }
  GC_CHECK_MSG(rate > 0.0, "estimate over a zero-capacity route");
  return route.latency_s + static_cast<double>(bytes) / rate;
}

void FlowModel::advance_to(double now) {
  GC_CHECK_MSG(now >= last_advance_, "flow clock moved backwards");
  const double dt = now - last_advance_;
  last_advance_ = now;
  if (dt <= 0.0) return;
  for (auto& [id, flow] : flows_) {
    flow.remaining_bytes -= flow.rate * dt;
    if (flow.remaining_bytes < 0.0) flow.remaining_bytes = 0.0;
  }
}

void FlowModel::solve(double now) {
  ++recomputes_;
  for (auto& [key, link] : links_) {
    link.residual = link.capacity_bps;
    link.unfrozen = 0;
  }
  // Participants: flows still transferring after `now`. Flows completing
  // within the current tie group keep their (about-to-fire) rates.
  solve_scratch_.clear();
  for (auto& [id, flow] : flows_) {
    if (flow.rate > 0.0 && flow.completion_at <= now) continue;
    flow.alloc = 0.0;
    flow.frozen = false;
    solve_scratch_.push_back(&flow);
    for (int i = 0; i < flow.hop_count; ++i) {
      ++links_.find(flow.hop_keys[i])->second.unfrozen;
    }
  }

  // Progressive filling: raise all unfrozen allocations together until a
  // link saturates or a flow hits its per-flow cap; freeze, repeat. The
  // resulting max-min allocation is unique, so iteration order (here: id
  // and key order) cannot leak into the outcome.
  int unfrozen = static_cast<int>(solve_scratch_.size());
  const int max_iters =
      unfrozen + static_cast<int>(links_.size()) + 4;  // each iter freezes
  int iters = 0;
  while (unfrozen > 0) {
    GC_CHECK_MSG(++iters <= max_iters, "progressive filling diverged");
    double delta = -1.0;
    for (const auto& [key, link] : links_) {
      if (link.unfrozen == 0) continue;
      const double fair = link.residual / link.unfrozen;
      if (delta < 0.0 || fair < delta) delta = fair;
    }
    for (const Flow* flow : solve_scratch_) {
      if (flow->frozen || flow->cap_bps <= 0.0) continue;
      const double slack = flow->cap_bps - flow->alloc;
      if (delta < 0.0 || slack < delta) delta = slack;
    }
    GC_CHECK_MSG(delta > 0.0, "progressive filling stalled");
    for (Flow* flow : solve_scratch_) {
      if (!flow->frozen) flow->alloc += delta;
    }
    for (auto& [key, link] : links_) {
      if (link.unfrozen > 0) link.residual -= delta * link.unfrozen;
    }
    for (Flow* flow : solve_scratch_) {
      if (flow->frozen) continue;
      bool freeze =
          flow->cap_bps > 0.0 &&
          flow->cap_bps - flow->alloc <= flow->cap_bps * 1e-12;
      for (int i = 0; !freeze && i < flow->hop_count; ++i) {
        const LinkState& link = links_.find(flow->hop_keys[i])->second;
        if (link.residual <= link.capacity_bps * 1e-12) freeze = true;
      }
      if (!freeze) continue;
      flow->frozen = true;
      --unfrozen;
      for (int i = 0; i < flow->hop_count; ++i) {
        --links_.find(flow->hop_keys[i])->second.unfrozen;
      }
    }
  }

  if constexpr (check::kEnabled) {
    for (const auto& [key, link] : links_) {
      GC_INVARIANT(link.residual >= -link.capacity_bps * 1e-9,
                   "flow allocation exceeds link capacity");
    }
  }

  // Scratch is in id order, so event sequence numbers are deterministic.
  for (Flow* flow : solve_scratch_) {
    GC_CHECK_MSG(flow->alloc > 0.0, "participant got no bandwidth");
    if (flow->rate == 0.0) {
      // Fresh flow: first allocation.
      flow->rate = flow->alloc;
      flow->first_rate = flow->alloc;
    } else if (flow->alloc != flow->rate) {
      flow->rate = flow->alloc;
      flow->rate_changed = true;
      ++flow->epoch;  // the pending completion event goes stale
    } else {
      continue;  // rate unchanged: the pending completion stands
    }
    flow->completion_at = now + flow->remaining_bytes / flow->rate;
    schedule_completion(flow->id, *flow);
  }

  if (obs::metrics_on()) {
    for (auto& [key, link] : links_) {
      if (link.active == 0 && link.flows_gauge == nullptr) continue;
      if (link.flows_gauge == nullptr) {
        auto& m = obs::Metrics::instance();
        const obs::Labels labels = {{"link", linkkey::name(key)}};
        link.flows_gauge = &m.gauge("net_link_active_flows", labels);
        link.util_gauge = &m.gauge("net_link_utilization", labels);
      }
      link.flows_gauge->set(static_cast<double>(link.active));
      double used = 0.0;
      for (const auto& [id, flow] : flows_) {
        for (int i = 0; i < flow.hop_count; ++i) {
          if (flow.hop_keys[i] == key) used += flow.rate;
        }
      }
      link.util_gauge->set(link.capacity_bps > 0.0 ? used / link.capacity_bps
                                                   : 0.0);
    }
  }
}

void FlowModel::schedule_completion(FlowId id, Flow& flow) {
  const std::uint64_t epoch = flow.epoch;
  // Root-owned (owner 0): the handler mutates the shared flow table and
  // other flows' schedules — conservatively dependent with everything.
  engine_.schedule_at(
      flow.completion_at, [this, id, epoch]() { on_completion(id, epoch); },
      des::EventTag::kGeneric, /*owner=*/0);
}

void FlowModel::on_completion(FlowId id, std::uint64_t epoch) {
  auto it = flows_.find(id);
  if (it == flows_.end() || it->second.epoch != epoch) return;  // stale
  Flow& flow = it->second;
  const double now = engine_.now();
  advance_to(now);

  // Delivery = completion + propagation. When the rate never changed the
  // closed form reproduces Topology::transfer_time bit-for-bit (same
  // expression tree), so a lone flow on an idle network is
  // indistinguishable from the contention-off model.
  double delivery_at;
  if (!flow.rate_changed) {
    delivery_at =
        flow.start_time + (flow.latency_s + flow.bytes / flow.first_rate);
  } else {
    delivery_at = now + flow.latency_s;
  }
  if (delivery_at < now) delivery_at = now;

  DoneFn done = std::move(flow.done);
  for (int i = 0; i < flow.hop_count; ++i) {
    --links_.find(flow.hop_keys[i])->second.active;
  }
  flows_.erase(it);
  ++completed_;
  solve(now);
  done(delivery_at);
}

}  // namespace gc::net
