// Binary serialization codec (our CORBA-CDR substitute).
//
// All middleware payloads — profile descriptions, argument descriptors,
// scalar values, file metadata, estimation vectors — cross the (modeled)
// wire as byte buffers produced by Writer and consumed by Reader.
// Fixed-width little-endian encoding; Reader is fail-soft: after the first
// underflow it returns zero values and ok() turns false, so malformed
// messages are rejected in one check at the end.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace gc::net {

using Bytes = std::vector<std::uint8_t>;

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put_raw(&v, sizeof v); }
  void u32(std::uint32_t v) { put_raw(&v, sizeof v); }
  void u64(std::uint64_t v) { put_raw(&v, sizeof v); }
  void i32(std::int32_t v) { put_raw(&v, sizeof v); }
  void i64(std::int64_t v) { put_raw(&v, sizeof v); }
  void f32(float v) { put_raw(&v, sizeof v); }
  void f64(double v) { put_raw(&v, sizeof v); }

  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    put_raw(s.data(), s.size());
  }

  void bytes(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    put_raw(data.data(), data.size());
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] Bytes take() { return std::move(buf_); }
  [[nodiscard]] const Bytes& data() const { return buf_; }

 private:
  void put_raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}
  explicit Reader(const Bytes& data) : data_(data.data(), data.size()) {}

  std::uint8_t u8() { return get<std::uint8_t>(); }
  std::uint16_t u16() { return get<std::uint16_t>(); }
  std::uint32_t u32() { return get<std::uint32_t>(); }
  std::uint64_t u64() { return get<std::uint64_t>(); }
  std::int32_t i32() { return get<std::int32_t>(); }
  std::int64_t i64() { return get<std::int64_t>(); }
  float f32() { return get<float>(); }
  double f64() { return get<double>(); }

  std::string str() {
    const std::uint32_t n = u32();
    if (!check(n)) return {};
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  Bytes bytes() {
    const std::uint32_t n = u32();
    if (!check(n)) return {};
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  /// True iff no read ran past the end so far.
  [[nodiscard]] bool ok() const { return ok_; }
  /// True iff the whole buffer was consumed and all reads succeeded.
  [[nodiscard]] bool done() const { return ok_ && pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  template <typename T>
  T get() {
    if (!check(sizeof(T))) return T{};
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  bool check(std::size_t n) {
    if (!ok_ || pos_ + n > data_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace gc::net
