#include "sched/policy.hpp"

#include <algorithm>
#include <cmath>

namespace gc::sched {

namespace {

/// Outstanding load the scheduler believes a SED has.
double outstanding(const Candidate& c) {
  // agent_assigned already includes everything this MA routed to the SED
  // and has not seen complete; queue_length is the SED's own (possibly
  // slightly stale) view. Take the max so neither a stale SED view nor a
  // cold agent counter under-reports.
  return std::max(c.est.agent_assigned, c.est.queue_length);
}

class DefaultPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "default"; }

  void rank(std::vector<Candidate>& candidates, const RequestContext&,
            Rng& rng) override {
    // Shuffle first so ties resolve uniformly (DIET's default behaviour:
    // share the requests, no power awareness), then stable-sort by
    // outstanding load.
    for (std::size_t i = candidates.size(); i > 1; --i) {
      std::swap(candidates[i - 1], candidates[rng.uniform_u64(i)]);
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       return outstanding(a) < outstanding(b);
                     });
  }
};

double completion_estimate(const Candidate& c) {
  // Per-job compute estimate: plugin-filled when available, otherwise
  // infer from the queue (queued_work / queue_length) or fall back to a
  // power-only ranking.
  double per_job = c.est.service_comp_s;
  if (per_job < 0.0) {
    per_job = c.est.queue_length > 0.0
                  ? c.est.queued_work_s / c.est.queue_length
                  : 1.0 / std::max(c.est.host_power, 1e-9);
  }
  const double backlog =
      std::max(c.est.queued_work_s, outstanding(c) * per_job);
  return backlog + per_job;
}

class MctPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "mct"; }

  void rank(std::vector<Candidate>& candidates, const RequestContext&,
            Rng&) override {
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       return completion_estimate(a) < completion_estimate(b);
                     });
  }
};

class MctDataPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "mct-data"; }

  void rank(std::vector<Candidate>& candidates, const RequestContext&,
            Rng&) override {
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       return data_completion(a) < data_completion(b);
                     });
  }

 private:
  static double data_completion(const Candidate& c) {
    // Completion estimate plus the cost of moving the request's
    // persistent inputs to this SED. Agents fill data_xfer_s from the
    // replica catalog and the platform cost model; when only the byte
    // count is known (unit tests, topology-less callers), convert it at
    // the WAN reference bandwidth of the Grid'5000 model (1 Gb/s).
    double xfer = c.est.data_xfer_s;
    if (xfer <= 0.0 && c.est.data_bytes_to_move > 0.0) {
      constexpr double kReferenceBandwidth = 1e9 / 8.0;  // bytes/second
      xfer = c.est.data_bytes_to_move / kReferenceBandwidth;
    }
    return completion_estimate(c) + xfer;
  }
};

class FastestPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "fastest"; }

  void rank(std::vector<Candidate>& candidates, const RequestContext&,
            Rng&) override {
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       return a.est.host_power > b.est.host_power;
                     });
  }
};

class RandomPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "random"; }

  void rank(std::vector<Candidate>& candidates, const RequestContext&,
            Rng& rng) override {
    for (std::size_t i = candidates.size(); i > 1; --i) {
      std::swap(candidates[i - 1], candidates[rng.uniform_u64(i)]);
    }
  }
};

}  // namespace

std::unique_ptr<Policy> make_default_policy() {
  return std::make_unique<DefaultPolicy>();
}
std::unique_ptr<Policy> make_mct_policy() {
  return std::make_unique<MctPolicy>();
}
std::unique_ptr<Policy> make_mct_data_policy() {
  return std::make_unique<MctDataPolicy>();
}
std::unique_ptr<Policy> make_fastest_policy() {
  return std::make_unique<FastestPolicy>();
}
std::unique_ptr<Policy> make_random_policy() {
  return std::make_unique<RandomPolicy>();
}

std::unique_ptr<Policy> make_policy(const std::string& name) {
  if (name == "default") return make_default_policy();
  if (name == "mct") return make_mct_policy();
  if (name == "mct-data") return make_mct_data_policy();
  if (name == "fastest") return make_fastest_policy();
  if (name == "random") return make_random_policy();
  return nullptr;
}

std::vector<std::string> policy_names() {
  return {"default", "mct", "mct-data", "fastest", "random"};
}

}  // namespace gc::sched
