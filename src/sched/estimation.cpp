#include "sched/estimation.hpp"

namespace gc::sched {

void Estimation::serialize(net::Writer& w) const {
  w.f64(timestamp);
  w.f64(host_power);
  w.i32(machines);
  w.f64(queue_length);
  w.f64(queued_work_s);
  w.f64(free_cpu);
  w.f64(free_mem_mb);
  w.f64(service_comp_s);
  w.u64(jobs_completed);
  w.f64(agent_assigned);
}

Estimation Estimation::deserialize(net::Reader& r) {
  Estimation e;
  e.timestamp = r.f64();
  e.host_power = r.f64();
  e.machines = r.i32();
  e.queue_length = r.f64();
  e.queued_work_s = r.f64();
  e.free_cpu = r.f64();
  e.free_mem_mb = r.f64();
  e.service_comp_s = r.f64();
  e.jobs_completed = r.u64();
  e.agent_assigned = r.f64();
  return e;
}

void Candidate::serialize(net::Writer& w) const {
  w.u64(sed_uid);
  w.u32(sed_endpoint);
  w.str(sed_name);
  est.serialize(w);
}

Candidate Candidate::deserialize(net::Reader& r) {
  Candidate c;
  c.sed_uid = r.u64();
  c.sed_endpoint = r.u32();
  c.sed_name = r.str();
  c.est = Estimation::deserialize(r);
  return c;
}

void serialize_candidates(net::Writer& w, const std::vector<Candidate>& c) {
  w.u32(static_cast<std::uint32_t>(c.size()));
  for (const auto& candidate : c) candidate.serialize(w);
}

std::vector<Candidate> deserialize_candidates(net::Reader& r) {
  const std::uint32_t n = r.u32();
  std::vector<Candidate> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    out.push_back(Candidate::deserialize(r));
  }
  return out;
}

}  // namespace gc::sched
