// Performance estimation vectors.
//
// When an agent hierarchy "collects computation abilities from servers"
// (Section 2.1), what travels up the tree is one Estimation per capable
// SED. The default deployment fills the generic fields; plug-in
// schedulers (paper ref [2]) may additionally fill service_comp_s with an
// application-specific completion estimate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/codec.hpp"
#include "net/message.hpp"

namespace gc::sched {

struct Estimation {
  double timestamp = 0.0;       ///< when the SED produced this vector
  double host_power = 1.0;      ///< aggregate relative power of the SED's machines
  std::int32_t machines = 1;    ///< machines behind the SED
  double queue_length = 0.0;    ///< jobs running + waiting at the SED
  double queued_work_s = 0.0;   ///< modeled seconds of work in that queue
  double free_cpu = 1.0;        ///< frontal node idle fraction
  double free_mem_mb = 0.0;
  double service_comp_s = -1.0; ///< plugin estimate for THIS service; <0 = unknown
  std::uint64_t jobs_completed = 0;
  /// Filled agent-side, never by the SED: requests this MA has already
  /// assigned to the SED and not yet seen completed. This is the
  /// "list of requests" state of Section 2.1 and what makes the default
  /// policy distribute 100 simultaneous requests evenly.
  double agent_assigned = 0.0;
  /// Filled agent-side from the replica catalog, and deliberately NOT
  /// serialized (each agent recomputes it from its own catalog level, so
  /// the wire format — and the modeled transfer times of fault-free runs
  /// with no persistent data — is unchanged): bytes of the request's
  /// persistent inputs that are known to the hierarchy but not resident
  /// on this SED, i.e. what scheduling here would have to move.
  double data_bytes_to_move = 0.0;
  /// Modeled seconds to move them from the nearest replicas over the
  /// platform's links (catalog + topology cost model); 0 when nothing
  /// moves or the topology cannot price it.
  double data_xfer_s = 0.0;

  void serialize(net::Writer& w) const;
  static Estimation deserialize(net::Reader& r);
};

/// One schedulable server, as seen by an agent.
struct Candidate {
  std::uint64_t sed_uid = 0;       ///< stable id (registration order)
  net::Endpoint sed_endpoint = net::kNullEndpoint;
  std::string sed_name;
  Estimation est;

  void serialize(net::Writer& w) const;
  static Candidate deserialize(net::Reader& r);
};

void serialize_candidates(net::Writer& w, const std::vector<Candidate>& c);
std::vector<Candidate> deserialize_candidates(net::Reader& r);

}  // namespace gc::sched
