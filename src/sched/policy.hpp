// Scheduling policies ("plug-in schedulers", paper ref [2]).
//
// A Policy ranks the candidate SEDs collected for one request, best first.
// Agents apply the policy at every level of the hierarchy: LAs pre-sort
// their subtree's candidates, the MA does the final merge-and-sort and
// picks the head of the list.
//
// Policies shipped:
//   - "default"  : what the deployed DIET of the paper did — spread the
//                  load by outstanding request count, ignoring machine
//                  power (this is exactly why Figure 4 right is uneven);
//   - "mct"      : Minimum Completion Time plug-in — uses the plugin-
//                  filled per-service compute estimate and the queued work
//                  to finish each job earliest (the paper's "better
//                  makespan could be attained" fix);
//   - "mct-data" : MCT plus the data-locality term the agents fill from
//                  the replica catalog (Estimation::data_bytes_to_move /
//                  data_xfer_s): a SED already holding the request's
//                  persistent inputs wins over an otherwise-equal one
//                  that would have to pull them across the WAN;
//   - "fastest"  : highest aggregate power first;
//   - "random"   : uniform random (baseline for ablations).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sched/estimation.hpp"

namespace gc::sched {

/// What the scheduler may know about the request being placed.
struct RequestContext {
  std::uint64_t request_id = 0;
  std::string service;
  std::int64_t in_bytes = 0;  ///< IN-data volume the client will push
};

class Policy {
 public:
  virtual ~Policy() = default;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Reorders candidates best-first. `rng` provides the tie-breaking /
  /// randomization source so runs are reproducible.
  virtual void rank(std::vector<Candidate>& candidates,
                    const RequestContext& request, Rng& rng) = 0;
};

std::unique_ptr<Policy> make_default_policy();
std::unique_ptr<Policy> make_mct_policy();
std::unique_ptr<Policy> make_mct_data_policy();
std::unique_ptr<Policy> make_fastest_policy();
std::unique_ptr<Policy> make_random_policy();

/// Plug-in registry: policies are constructed by name, so deployments and
/// config files can select them ("schedulerPolicy = mct"). Unknown names
/// return nullptr.
std::unique_ptr<Policy> make_policy(const std::string& name);

/// Names make_policy understands.
std::vector<std::string> policy_names();

}  // namespace gc::sched
