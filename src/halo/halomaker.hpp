// HaloMaker: friends-of-friends dark matter halo finder.
//
// "HaloMaker: detects dark matter halos present in RAMSES output files,
// and creates a catalog of halos" (Section 3) — each halo with "position,
// mass and velocity", which is exactly what ramsesZoom1 returns to the
// client so it can choose re-simulation targets.
//
// Standard FoF: particles closer than b times the mean inter-particle
// separation are friends; connected components with at least min_npart
// members are halos. Linked-cell acceleration, periodic box.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace gc::ramses {
struct Snapshot;  // halo only needs particle arrays; avoid a hard dep
}

namespace gc::halo {

struct FofOptions {
  double linking_factor = 0.2;  ///< b, in units of mean separation
  std::size_t min_npart = 20;
};

struct Halo {
  std::uint64_t id = 0;          ///< 1-based, ordered by mass (descending)
  std::size_t npart = 0;
  double mass = 0.0;             ///< box mass units (sum of member masses)
  double x = 0.0, y = 0.0, z = 0.0;  ///< centre of mass, box units
  double vx = 0.0, vy = 0.0, vz = 0.0;  ///< mean velocity, km/s
  double r_rms = 0.0;            ///< rms member distance to centre, box units
  double sigma_v = 0.0;          ///< 1D velocity dispersion, km/s
  std::vector<std::uint64_t> members;  ///< particle ids (TreeMaker input)
};

struct HaloCatalog {
  double aexp = 0.0;
  double box_mpc = 0.0;
  std::size_t total_particles = 0;
  std::vector<Halo> halos;  ///< sorted by mass, heaviest first
};

/// Input view decoupled from ramses::Snapshot (positions in box units,
/// velocities in km/s).
struct ParticleView {
  const std::vector<double>* x;
  const std::vector<double>* y;
  const std::vector<double>* z;
  const std::vector<double>* vx_kms;
  const std::vector<double>* vy_kms;
  const std::vector<double>* vz_kms;
  const std::vector<double>* mass;
  const std::vector<std::uint64_t>* id;
  [[nodiscard]] std::size_t size() const { return x->size(); }
};

/// Runs FoF on the view; aexp/box recorded in the catalog header.
HaloCatalog find_halos(const ParticleView& particles, double aexp,
                       double box_mpc, const FofOptions& options = {});

/// Catalog I/O, Fortran-record "tree brick" style.
gc::Status write_catalog(const std::string& path, const HaloCatalog& catalog);
gc::Result<HaloCatalog> read_catalog(const std::string& path);

/// Text form for the tarball the SED returns (one halo per line).
std::string catalog_to_text(const HaloCatalog& catalog);

}  // namespace gc::halo
