// Spherical-overdensity halo properties.
//
// FoF masses depend on the linking length; the standard complementary
// definition is M_Delta: the mass inside the sphere (centred on the halo)
// whose mean density is Delta times the mean matter density. HaloMaker
// derivatives report both; zoom target selection typically uses M200.
#pragma once

#include "halo/halomaker.hpp"

namespace gc::halo {

struct SoProperties {
  double radius = 0.0;  ///< R_Delta in box units (0 when undefined)
  double mass = 0.0;    ///< M_Delta in box-mass units
  std::size_t npart = 0;
};

/// Computes M_Delta/R_Delta around (cx, cy, cz) for the given overdensity
/// (e.g. 200). `particles` is the full snapshot view (periodic box, box
/// units, total mass ~1). Returns zeros when even the innermost shell is
/// below the threshold.
SoProperties spherical_overdensity(const ParticleView& particles, double cx,
                                   double cy, double cz,
                                   double overdensity = 200.0);

/// Convenience: fills SO properties for every halo in the catalog.
std::vector<SoProperties> so_properties(const ParticleView& particles,
                                        const HaloCatalog& catalog,
                                        double overdensity = 200.0);

}  // namespace gc::halo
