#include "halo/halomaker.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "io/fortran.hpp"
#include "parallel/pool.hpp"

namespace gc::halo {

namespace {

/// Union-find with path halving.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }

  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[a] = b;
  }

  /// Folds another partition over the same elements into this one: the
  /// result's components are the transitive closure of both edge sets,
  /// independent of merge order.
  void merge(DisjointSets& other) {
    for (std::size_t v = 0; v < parent_.size(); ++v) {
      const std::size_t root = other.find(v);
      if (root != v) unite(v, root);
    }
  }

 private:
  std::vector<std::size_t> parent_;
};

double periodic_delta(double a, double b) {
  double d = a - b;
  if (d > 0.5) d -= 1.0;
  if (d < -0.5) d += 1.0;
  return d;
}

}  // namespace

HaloCatalog find_halos(const ParticleView& particles, double aexp,
                       double box_mpc, const FofOptions& options) {
  const std::size_t n = particles.size();
  HaloCatalog catalog;
  catalog.aexp = aexp;
  catalog.box_mpc = box_mpc;
  catalog.total_particles = n;
  if (n == 0) return catalog;

  // Linking length in box units: b * (1/N)^(1/3).
  const double ll =
      options.linking_factor / std::cbrt(static_cast<double>(n));
  const double ll2 = ll * ll;

  // Linked cells: cell size >= ll so friends live in the 27-neighborhood.
  const auto ncell = std::max<std::size_t>(
      1, std::min<std::size_t>(256, static_cast<std::size_t>(1.0 / ll)));
  const double ncd = static_cast<double>(ncell);
  std::vector<std::vector<std::uint32_t>> cells(ncell * ncell * ncell);
  auto cell_index = [&](double x, double y, double z) {
    auto i = std::min(static_cast<std::size_t>(x * ncd), ncell - 1);
    auto j = std::min(static_cast<std::size_t>(y * ncd), ncell - 1);
    auto k = std::min(static_cast<std::size_t>(z * ncd), ncell - 1);
    return (i * ncell + j) * ncell + k;
  };
  for (std::size_t p = 0; p < n; ++p) {
    cells[cell_index((*particles.x)[p], (*particles.y)[p], (*particles.z)[p])]
        .push_back(static_cast<std::uint32_t>(p));
  }

  // Pair sweep over fixed ranges of the flat cell index, each range
  // building its own union-find; the per-range partitions are folded
  // together afterwards in ascending range order. Connected components are
  // the transitive closure of the pair relation, so the result is
  // independent of how cells are chunked or interleaved across threads.
  const long nc = static_cast<long>(ncell);
  const std::size_t ncells3 = ncell * ncell * ncell;
  auto sweep_cells = [&](DisjointSets& sets, std::size_t cell_begin,
                         std::size_t cell_end) {
    for (std::size_t cell = cell_begin; cell < cell_end; ++cell) {
      const auto& home = cells[cell];
      if (home.empty()) continue;
      const long ci = static_cast<long>(cell / (ncell * ncell));
      const long cj = static_cast<long>((cell / ncell) % ncell);
      const long ck = static_cast<long>(cell % ncell);
      // Half of the 27 neighbors (plus self) to visit each pair once.
      static const int kOffsets[14][3] = {
          {0, 0, 0},  {1, 0, 0},  {-1, 1, 0}, {0, 1, 0},  {1, 1, 0},
          {-1, -1, 1}, {0, -1, 1}, {1, -1, 1}, {-1, 0, 1}, {0, 0, 1},
          {1, 0, 1},  {-1, 1, 1}, {0, 1, 1},  {1, 1, 1}};
      for (const auto& off : kOffsets) {
        const std::size_t ni = static_cast<std::size_t>(
            ((ci + off[0]) % nc + nc) % nc);
        const std::size_t nj = static_cast<std::size_t>(
            ((cj + off[1]) % nc + nc) % nc);
        const std::size_t nk = static_cast<std::size_t>(
            ((ck + off[2]) % nc + nc) % nc);
        const auto& other = cells[(ni * ncell + nj) * ncell + nk];
        const bool same = off[0] == 0 && off[1] == 0 && off[2] == 0;
        for (std::size_t ai = 0; ai < home.size(); ++ai) {
          const std::uint32_t a = home[ai];
          const std::size_t b_begin = same ? ai + 1 : 0;
          for (std::size_t bi = b_begin; bi < other.size(); ++bi) {
            const std::uint32_t b = other[bi];
            const double dx =
                periodic_delta((*particles.x)[a], (*particles.x)[b]);
            const double dy =
                periodic_delta((*particles.y)[a], (*particles.y)[b]);
            const double dz =
                periodic_delta((*particles.z)[a], (*particles.z)[b]);
            if (dx * dx + dy * dy + dz * dz <= ll2) sets.unite(a, b);
          }
        }
      }
    }
  };

  DisjointSets sets(n);
  const std::size_t cell_grain =
      std::max<std::size_t>(1, (ncells3 + 7) / 8);  // <= 8 local partitions
  if (parallel::chunk_count(0, ncells3, cell_grain) <= 1 ||
      parallel::thread_count() == 1) {
    sweep_cells(sets, 0, ncells3);
  } else {
    std::vector<DisjointSets> partials;
    const std::size_t nchunks = parallel::chunk_count(0, ncells3, cell_grain);
    partials.assign(nchunks, DisjointSets(n));
    parallel::for_each_chunk(
        0, ncells3, cell_grain,
        [&](std::size_t c, std::size_t begin, std::size_t end) {
          sweep_cells(partials[c], begin, end);
        });
    for (auto& partial : partials) sets.merge(partial);
  }

  // Collect groups.
  std::vector<std::vector<std::uint32_t>> groups;
  {
    std::vector<std::int64_t> group_of(n, -1);
    for (std::size_t p = 0; p < n; ++p) {
      const std::size_t root = sets.find(p);
      if (group_of[root] < 0) {
        group_of[root] = static_cast<std::int64_t>(groups.size());
        groups.emplace_back();
      }
      groups[static_cast<std::size_t>(group_of[root])].push_back(
          static_cast<std::uint32_t>(p));
    }
  }

  for (const auto& members : groups) {
    if (members.size() < options.min_npart) continue;
    Halo halo;
    halo.npart = members.size();
    // Periodic centre of mass: unwrap relative to the first member.
    const double rx = (*particles.x)[members[0]];
    const double ry = (*particles.y)[members[0]];
    const double rz = (*particles.z)[members[0]];
    double cx = 0.0, cy = 0.0, cz = 0.0;
    for (const std::uint32_t p : members) {
      const double m = (*particles.mass)[p];
      halo.mass += m;
      cx += m * periodic_delta((*particles.x)[p], rx);
      cy += m * periodic_delta((*particles.y)[p], ry);
      cz += m * periodic_delta((*particles.z)[p], rz);
      halo.vx += m * (*particles.vx_kms)[p];
      halo.vy += m * (*particles.vy_kms)[p];
      halo.vz += m * (*particles.vz_kms)[p];
    }
    cx = rx + cx / halo.mass;
    cy = ry + cy / halo.mass;
    cz = rz + cz / halo.mass;
    auto wrap = [](double v) { return v - std::floor(v); };
    halo.x = wrap(cx);
    halo.y = wrap(cy);
    halo.z = wrap(cz);
    halo.vx /= halo.mass;
    halo.vy /= halo.mass;
    halo.vz /= halo.mass;

    double r2 = 0.0, v2 = 0.0;
    for (const std::uint32_t p : members) {
      const double dx = periodic_delta((*particles.x)[p], halo.x);
      const double dy = periodic_delta((*particles.y)[p], halo.y);
      const double dz = periodic_delta((*particles.z)[p], halo.z);
      r2 += dx * dx + dy * dy + dz * dz;
      const double ux = (*particles.vx_kms)[p] - halo.vx;
      const double uy = (*particles.vy_kms)[p] - halo.vy;
      const double uz = (*particles.vz_kms)[p] - halo.vz;
      v2 += ux * ux + uy * uy + uz * uz;
    }
    halo.r_rms = std::sqrt(r2 / static_cast<double>(halo.npart));
    halo.sigma_v = std::sqrt(v2 / (3.0 * static_cast<double>(halo.npart)));

    halo.members.reserve(members.size());
    for (const std::uint32_t p : members) {
      halo.members.push_back((*particles.id)[p]);
    }
    catalog.halos.push_back(std::move(halo));
  }

  std::sort(catalog.halos.begin(), catalog.halos.end(),
            [](const Halo& a, const Halo& b) { return a.mass > b.mass; });
  for (std::size_t i = 0; i < catalog.halos.size(); ++i) {
    catalog.halos[i].id = i + 1;
  }
  return catalog;
}

gc::Status write_catalog(const std::string& path, const HaloCatalog& catalog) {
  io::FortranWriter writer(path);
  if (!writer.ok()) {
    return make_error(ErrorCode::kIoError, "cannot create " + path);
  }
  struct Header {
    double aexp, box_mpc;
    std::uint64_t total_particles, nhalos;
  } header{catalog.aexp, catalog.box_mpc, catalog.total_particles,
           catalog.halos.size()};
  auto status = writer.record_scalar(header);
  for (const Halo& halo : catalog.halos) {
    if (!status.is_ok()) break;
    struct Row {
      std::uint64_t id, npart;
      double mass, x, y, z, vx, vy, vz, r_rms, sigma_v;
    } row{halo.id, halo.npart, halo.mass, halo.x,     halo.y,   halo.z,
          halo.vx, halo.vy,    halo.vz,   halo.r_rms, halo.sigma_v};
    status = writer.record_scalar(row);
    if (status.is_ok()) {
      status = writer.record_array(std::span<const std::uint64_t>(
          halo.members.data(), halo.members.size()));
    }
  }
  if (status.is_ok()) status = writer.close();
  return status;
}

gc::Result<HaloCatalog> read_catalog(const std::string& path) {
  io::FortranReader reader(path);
  if (!reader.ok()) {
    return make_error(ErrorCode::kIoError, "cannot open " + path);
  }
  struct Header {
    double aexp, box_mpc;
    std::uint64_t total_particles, nhalos;
  };
  auto header = reader.record_scalar<Header>();
  if (!header.is_ok()) return header.status();
  HaloCatalog catalog;
  catalog.aexp = header.value().aexp;
  catalog.box_mpc = header.value().box_mpc;
  catalog.total_particles = header.value().total_particles;
  for (std::uint64_t i = 0; i < header.value().nhalos; ++i) {
    struct Row {
      std::uint64_t id, npart;
      double mass, x, y, z, vx, vy, vz, r_rms, sigma_v;
    };
    auto row = reader.record_scalar<Row>();
    if (!row.is_ok()) return row.status();
    auto members = reader.record_array<std::uint64_t>();
    if (!members.is_ok()) return members.status();
    Halo halo;
    halo.id = row.value().id;
    halo.npart = row.value().npart;
    halo.mass = row.value().mass;
    halo.x = row.value().x;
    halo.y = row.value().y;
    halo.z = row.value().z;
    halo.vx = row.value().vx;
    halo.vy = row.value().vy;
    halo.vz = row.value().vz;
    halo.r_rms = row.value().r_rms;
    halo.sigma_v = row.value().sigma_v;
    halo.members = std::move(members.value());
    catalog.halos.push_back(std::move(halo));
  }
  return catalog;
}

std::string catalog_to_text(const HaloCatalog& catalog) {
  std::string out = strformat(
      "# halo catalog: aexp=%.4f box=%.1f Mpc/h nhalos=%zu\n"
      "# id npart mass x y z vx vy vz sigma_v\n",
      catalog.aexp, catalog.box_mpc, catalog.halos.size());
  for (const Halo& halo : catalog.halos) {
    out += strformat("%llu %zu %.6e %.6f %.6f %.6f %.2f %.2f %.2f %.2f\n",
                     static_cast<unsigned long long>(halo.id), halo.npart,
                     halo.mass, halo.x, halo.y, halo.z, halo.vx, halo.vy,
                     halo.vz, halo.sigma_v);
  }
  return out;
}

}  // namespace gc::halo
