#include "halo/overdensity.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace gc::halo {

namespace {
double periodic_delta(double a, double b) {
  double d = a - b;
  if (d > 0.5) d -= 1.0;
  if (d < -0.5) d += 1.0;
  return d;
}
}  // namespace

SoProperties spherical_overdensity(const ParticleView& particles, double cx,
                                   double cy, double cz, double overdensity) {
  // Collect (distance^2, mass) pairs out to the largest meaningful radius
  // (a quarter box: beyond that "sphere" loses meaning in a periodic box).
  constexpr double kMaxRadius = 0.25;
  const double max_r2 = kMaxRadius * kMaxRadius;
  std::vector<std::pair<double, double>> shells;
  for (std::size_t i = 0; i < particles.size(); ++i) {
    const double dx = periodic_delta((*particles.x)[i], cx);
    const double dy = periodic_delta((*particles.y)[i], cy);
    const double dz = periodic_delta((*particles.z)[i], cz);
    const double r2 = dx * dx + dy * dy + dz * dz;
    if (r2 <= max_r2) shells.emplace_back(r2, (*particles.mass)[i]);
  }
  std::sort(shells.begin(), shells.end());

  // Walk outward: mean enclosed density (mean matter density = 1 in these
  // units because total box mass ~ 1 and box volume = 1) falls through
  // `overdensity`; the last radius above the threshold defines R_Delta.
  SoProperties result;
  double enclosed = 0.0;
  std::size_t count = 0;
  for (const auto& [r2, mass] : shells) {
    enclosed += mass;
    ++count;
    const double r = std::sqrt(r2);
    if (r <= 0.0) continue;
    const double volume = 4.0 / 3.0 * M_PI * r * r * r;
    if (enclosed / volume >= overdensity) {
      result.radius = r;
      result.mass = enclosed;
      result.npart = count;
    }
  }
  return result;
}

std::vector<SoProperties> so_properties(const ParticleView& particles,
                                        const HaloCatalog& catalog,
                                        double overdensity) {
  std::vector<SoProperties> out;
  out.reserve(catalog.halos.size());
  for (const Halo& halo : catalog.halos) {
    out.push_back(spherical_overdensity(particles, halo.x, halo.y, halo.z,
                                        overdensity));
  }
  return out;
}

}  // namespace gc::halo
