// Background cosmology: ΛCDM expansion history and linear growth.
//
// GRAFIC generates "Gaussian random fields [...] consistent with current
// observational data obtained by the WMAP satellite" (Section 3); the
// parameter defaults below are the WMAP 3-year flat ΛCDM values in use in
// 2006-2007. The expansion-factor machinery also drives the leapfrog
// integrator (RAMSES outputs snapshots at a "list of time steps (or
// expansion factor)").
#pragma once

#include <vector>

namespace gc::cosmo {

struct Params {
  double omega_m = 0.27;   ///< total matter density today
  double omega_l = 0.73;   ///< cosmological constant
  double omega_b = 0.044;  ///< baryons (part of omega_m)
  double h = 0.71;         ///< H0 / (100 km/s/Mpc)
  double sigma8 = 0.80;    ///< power normalization in 8 Mpc/h spheres
  double n_s = 0.95;       ///< scalar spectral index

  [[nodiscard]] double omega_k() const { return 1.0 - omega_m - omega_l; }
};

class Cosmology {
 public:
  explicit Cosmology(const Params& params = Params{});

  [[nodiscard]] const Params& params() const { return params_; }

  /// Dimensionless expansion rate E(a) = H(a)/H0.
  [[nodiscard]] double efunc(double a) const;

  /// H(a) in km/s/Mpc.
  [[nodiscard]] double hubble(double a) const;

  /// Age of the universe at expansion factor a, in units of 1/H0
  /// (multiply by hubble_time_gyr() for Gyr).
  [[nodiscard]] double age(double a) const;

  /// 1/H0 in Gyr.
  [[nodiscard]] double hubble_time_gyr() const;

  /// Expansion factor at age t (same 1/H0 units); bisection on age().
  [[nodiscard]] double a_of_age(double t) const;

  /// Linear growth factor, normalized so growth(1) = 1.
  [[nodiscard]] double growth(double a) const;

  /// Logarithmic growth rate f = dlnD/dlna (finite difference).
  [[nodiscard]] double growth_rate(double a) const;

  /// Redshift helpers.
  [[nodiscard]] static double z_of_a(double a) { return 1.0 / a - 1.0; }
  [[nodiscard]] static double a_of_z(double z) { return 1.0 / (1.0 + z); }

 private:
  [[nodiscard]] double growth_unnormalized(double a) const;

  Params params_;
  double growth_norm_;
};

}  // namespace gc::cosmo
