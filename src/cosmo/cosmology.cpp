#include "cosmo/cosmology.hpp"

#include <cmath>

#include "common/log.hpp"
#include "math/integrate.hpp"

namespace gc::cosmo {

Cosmology::Cosmology(const Params& params)
    : params_(params), growth_norm_(1.0) {
  GC_CHECK(params_.omega_m > 0.0);
  growth_norm_ = growth_unnormalized(1.0);
}

double Cosmology::efunc(double a) const {
  GC_CHECK(a > 0.0);
  const double a2 = a * a;
  const double a3 = a2 * a;
  return std::sqrt(params_.omega_m / a3 + params_.omega_k() / a2 +
                   params_.omega_l);
}

double Cosmology::hubble(double a) const { return 100.0 * params_.h * efunc(a); }

double Cosmology::age(double a) const {
  // t(a) = ∫_0^a da' / (a' E(a')); integrand ~ sqrt(a) near 0, substitute
  // a = x^2 to remove the mild singularity.
  return math::simpson(
      [this](double x) {
        const double aa = x * x;
        if (aa <= 0.0) return 0.0;
        return 2.0 * x / (aa * efunc(aa));
      },
      0.0, std::sqrt(a), 512);
}

double Cosmology::hubble_time_gyr() const {
  // 1/H0 = 9.778 h^-1 Gyr.
  return 9.778131 / params_.h;
}

double Cosmology::a_of_age(double t) const {
  double lo = 1e-6;
  double hi = 64.0;
  for (int i = 0; i < 96; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (age(mid) < t) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double Cosmology::growth_unnormalized(double a) const {
  // Heath (1977) integral, exact for ΛCDM (no radiation):
  // D(a) ∝ E(a) ∫_0^a da' / (a' E(a'))^3, substitute a = x^2 again.
  const double integral = math::simpson(
      [this](double x) {
        const double aa = x * x;
        if (aa <= 0.0) return 0.0;
        const double denom = aa * efunc(aa);
        return 2.0 * x / (denom * denom * denom);
      },
      0.0, std::sqrt(a), 512);
  return efunc(a) * integral;
}

double Cosmology::growth(double a) const {
  return growth_unnormalized(a) / growth_norm_;
}

double Cosmology::growth_rate(double a) const {
  const double eps = 1e-4;
  const double lo = std::log(growth(a * (1.0 - eps)));
  const double hi = std::log(growth(a * (1.0 + eps)));
  return (hi - lo) / (std::log1p(eps) - std::log1p(-eps));
}

}  // namespace gc::cosmo
