// Linear matter power spectrum: Eisenstein & Hu (1998) no-wiggle transfer
// function, normalized to sigma8.
//
// This is the P(k) GRAFIC samples to build its Gaussian random fields.
// k is in h/Mpc throughout; P(k) in (Mpc/h)^3.
#pragma once

#include "cosmo/cosmology.hpp"

namespace gc::cosmo {

class PowerSpectrum {
 public:
  explicit PowerSpectrum(const Params& params = Params{});

  /// EH98 zero-baryon-wiggle transfer function T(k), k in h/Mpc.
  [[nodiscard]] double transfer(double k) const;

  /// Linear P(k) today (z = 0), sigma8-normalized.
  [[nodiscard]] double operator()(double k) const;

  /// P(k) at expansion factor a: P(k) * D(a)^2.
  [[nodiscard]] double at(double k, double a) const;

  /// RMS linear fluctuation in a top-hat sphere of radius r [Mpc/h].
  [[nodiscard]] double sigma_r(double r) const;

  [[nodiscard]] const Params& params() const { return params_; }

 private:
  [[nodiscard]] double unnormalized(double k) const;

  Params params_;
  Cosmology cosmology_;
  double norm_;
  // EH98 fitted scales.
  double sound_horizon_;  ///< s, Mpc
  double alpha_gamma_;
};

}  // namespace gc::cosmo
