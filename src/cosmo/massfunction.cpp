#include "cosmo/massfunction.hpp"

#include <cmath>

#include "common/log.hpp"
#include "math/integrate.hpp"

namespace gc::cosmo {

MassFunction::MassFunction(const Params& params)
    : params_(params), power_(params), cosmology_(params) {}

double MassFunction::mean_density() const {
  // rho_crit = 2.775e11 h^2 Msun/Mpc^3; expressed per (Mpc/h)^3 in Msun/h
  // the h's cancel: rho_mean = 2.775e11 * Omega_m [Msun/h / (Mpc/h)^3].
  return 2.775e11 * params_.omega_m;
}

double MassFunction::radius_of_mass(double m) const {
  GC_CHECK(m > 0.0);
  return std::cbrt(3.0 * m / (4.0 * M_PI * mean_density()));
}

double MassFunction::mass_of_radius(double r) const {
  GC_CHECK(r > 0.0);
  return 4.0 / 3.0 * M_PI * r * r * r * mean_density();
}

double MassFunction::sigma_mass(double m, double a) const {
  return power_.sigma_r(radius_of_mass(m)) * cosmology_.growth(a);
}

double MassFunction::dn_dlnm(double m, double a) const {
  const double sigma = sigma_mass(m, a);
  if (sigma <= 0.0) return 0.0;
  // dln(sigma)/dlnM by central difference.
  const double eps = 0.05;
  const double dlns = (std::log(sigma_mass(m * (1.0 + eps), a)) -
                       std::log(sigma_mass(m * (1.0 - eps), a))) /
                      (std::log1p(eps) - std::log1p(-eps));
  const double nu = kDeltaC / sigma;
  return std::sqrt(2.0 / M_PI) * mean_density() / m * nu * std::abs(dlns) *
         std::exp(-0.5 * nu * nu);
}

double MassFunction::count_above(double m, double box_mpc, double a) const {
  const double volume = box_mpc * box_mpc * box_mpc;
  // Integrate dn/dlnM over lnM up to a generous cutoff.
  const double integral = math::simpson(
      [this, a](double lnm) { return dn_dlnm(std::exp(lnm), a); },
      std::log(m), std::log(m) + 12.0, 256);
  return integral * volume;
}

}  // namespace gc::cosmo
