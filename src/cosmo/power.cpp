#include "cosmo/power.hpp"

#include <cmath>

#include "common/log.hpp"
#include "math/integrate.hpp"

namespace gc::cosmo {

PowerSpectrum::PowerSpectrum(const Params& params)
    : params_(params), cosmology_(params), norm_(1.0) {
  // Eisenstein & Hu (1998), eqs. 26 & 31: effective sound horizon and the
  // baryon suppression of the apparent shape parameter.
  const double om = params_.omega_m * params_.h * params_.h;
  const double ob = params_.omega_b * params_.h * params_.h;
  const double fb = params_.omega_b / params_.omega_m;
  sound_horizon_ =
      44.5 * std::log(9.83 / om) / std::sqrt(1.0 + 10.0 * std::pow(ob, 0.75));
  alpha_gamma_ = 1.0 - 0.328 * std::log(431.0 * om) * fb +
                 0.38 * std::log(22.3 * om) * fb * fb;

  // Normalize to sigma8.
  const double target = params_.sigma8;
  const double raw = sigma_r(8.0);
  GC_CHECK(raw > 0.0);
  norm_ = target * target / (raw * raw);
}

double PowerSpectrum::transfer(double k) const {
  if (k <= 0.0) return 1.0;
  // k arrives in h/Mpc; EH98 works with k in 1/Mpc.
  const double k_mpc = k * params_.h;
  const double s = sound_horizon_;
  const double gamma_eff =
      params_.omega_m * params_.h *
      (alpha_gamma_ +
       (1.0 - alpha_gamma_) / (1.0 + std::pow(0.43 * k_mpc * s, 4)));
  const double q =
      k * std::pow(2.725 / 2.7, 2) / gamma_eff;  // theta_cmb = T/2.7K
  const double l0 = std::log(2.0 * M_E + 1.8 * q);
  const double c0 = 14.2 + 731.0 / (1.0 + 62.5 * q);
  return l0 / (l0 + c0 * q * q);
}

double PowerSpectrum::unnormalized(double k) const {
  const double t = transfer(k);
  return std::pow(k, params_.n_s) * t * t;
}

double PowerSpectrum::operator()(double k) const {
  if (k <= 0.0) return 0.0;
  return norm_ * unnormalized(k);
}

double PowerSpectrum::at(double k, double a) const {
  const double d = cosmology_.growth(a);
  return (*this)(k) * d * d;
}

double PowerSpectrum::sigma_r(double r) const {
  GC_CHECK(r > 0.0);
  // sigma^2(R) = 1/(2 pi^2) ∫ k^2 P(k) W^2(kR) dk with the top-hat window
  // W(x) = 3 (sin x - x cos x) / x^3. Integrate in ln k over a generous
  // range.
  const double integral = math::simpson(
      [this, r](double lnk) {
        const double k = std::exp(lnk);
        const double x = k * r;
        double w;
        if (x < 1e-3) {
          w = 1.0 - x * x / 10.0;  // small-x expansion, avoids 0/0
        } else {
          w = 3.0 * (std::sin(x) - x * std::cos(x)) / (x * x * x);
        }
        return k * k * k * norm_ * unnormalized(k) * w * w;
      },
      std::log(1e-5), std::log(1e3), 2048);
  return std::sqrt(integral / (2.0 * M_PI * M_PI));
}

}  // namespace gc::cosmo
