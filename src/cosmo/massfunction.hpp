// Press-Schechter halo mass function.
//
// The analytic abundance of collapsed dark-matter halos; the classic
// cross-check for any halo finder running on any N-body code — our
// bench_v1/pm_simulation print measured FoF abundances against it.
//
//   dn/dlnM = sqrt(2/pi) (rho_mean/M) (delta_c/sigma) |dln sigma/dlnM|
//             exp(-delta_c^2 / (2 sigma^2))
//
// Masses in Msun/h, volumes in (Mpc/h)^3, k in h/Mpc throughout.
#pragma once

#include "cosmo/power.hpp"

namespace gc::cosmo {

class MassFunction {
 public:
  explicit MassFunction(const Params& params = Params{});

  /// Mean comoving matter density, Msun h^2 / Mpc^3 (in "per (Mpc/h)^3 of
  /// Msun/h" units this is rho = 2.775e11 * Omega_m * h^2 / h ... all h's
  /// folded: rho [Msun/h per (Mpc/h)^3] = 2.775e11 * Omega_m).
  [[nodiscard]] double mean_density() const;

  /// Lagrangian top-hat radius of mass M (Msun/h), in Mpc/h.
  [[nodiscard]] double radius_of_mass(double m) const;
  [[nodiscard]] double mass_of_radius(double r) const;

  /// RMS fluctuation sigma(M) at expansion factor a.
  [[nodiscard]] double sigma_mass(double m, double a = 1.0) const;

  /// Press-Schechter dn/dlnM at expansion factor a, per (Mpc/h)^3.
  [[nodiscard]] double dn_dlnm(double m, double a = 1.0) const;

  /// Expected number of halos above mass m in a (box_mpc)^3 volume.
  [[nodiscard]] double count_above(double m, double box_mpc,
                                   double a = 1.0) const;

  /// Critical linear overdensity for collapse.
  static constexpr double kDeltaC = 1.686;

 private:
  Params params_;
  PowerSpectrum power_;
  Cosmology cosmology_;
};

}  // namespace gc::cosmo
