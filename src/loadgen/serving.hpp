// Massive-scale serving harness: a federated DIET deployment on a
// generated fat-tree, driven by the open-loop load generator.
//
// run_serving() builds the whole experiment from one config: the
// platform::make_fattree topology, `mas` MA shards splitting the pods
// contiguously, per-shard service tables (so some services exist only on
// one shard and force cross-MA scheduling), thousands of Clients pinned
// to their pod's frontal, and the loadgen arrival plan scheduled as
// engine events. It returns throughput/latency aggregates plus two
// hashes:
//
//   science_digest — order- and timing-independent hash of every call's
//     (id, service, result) triple. Equal across 1/2/4-MA runs of the
//     same plan: federation must not change *what* is computed.
//   state_hash     — order-independent hash over full per-call records
//     including virtual timestamps. Equal across two same-seed runs (and
//     under tie-seed scrambles): the whole experiment is deterministic.
#pragma once

#include <cstdint>
#include <string>

#include "diet/agent.hpp"
#include "loadgen/loadgen.hpp"
#include "platform/generator.hpp"

namespace gc::loadgen {

/// The standard request mix: 90% "work" (short compute, volatile scalar),
/// 4% "store" (persistent vector IN — the GRAFIC1-style reuse path), and
/// four 1.5% "rareK" services. In a federation, rareK lives only on shard
/// K mod mas, so most rare requests miss locally and cross the mesh.
std::vector<RequestProfile> default_mix();

struct ServingConfig {
  platform::FatTreeConfig topology;
  /// Federation shards; pods are split into `mas` contiguous blocks, each
  /// block's clusters forming one MA hierarchy. Must be in [1, pods].
  int mas = 1;
  LoadSpec load;
  std::string policy = "default";
  std::uint64_t tie_seed = 0;
  std::string fault_plan = "none";
  std::uint64_t fault_seed = 1;
  std::uint32_t peer_ttl = 1;
  std::size_t peer_top_k = 4;
  bool federate_always = false;
  /// Agent collect timeout. The 5s Agent default is sized for detecting
  /// dead children; under open-loop saturation a *live* peer MA's answer
  /// queues behind tens of virtual seconds of backlog, and timing it out
  /// fails the call. Size this for worst-case queueing delay instead.
  double collect_timeout_s = 120.0;
  /// Client-side deadline per call; generous because open-loop bursts
  /// queue on the MAs.
  double call_deadline_s = 3600.0;
  double work_seconds = 0.05;  ///< modeled compute of the "work" service
  /// Contention-aware network model: bulk transfers fair-share the fabric
  /// links (net::FlowModel) instead of being priced on an idle network.
  bool contention = false;
  /// Captures the per-request obs::Journal (cleared at start; jsonl
  /// returned in the report). Costs memory at 10^4+ requests.
  bool journal = true;
  /// When set, the sampled plan is also written here (replayable via
  /// LoadSpec::trace_path).
  std::string trace_out;
};

struct ServingReport {
  std::size_t sed_count = 0;
  std::size_t arrivals = 0;
  std::size_t completed = 0;
  std::size_t ok = 0;
  std::size_t failed = 0;
  double makespan_s = 0.0;  ///< first submit -> last completion (virtual)
  double requests_per_sec = 0.0;  ///< ok / makespan (virtual seconds)
  double p50_s = 0.0;             ///< end-to-end latency quantiles
  double p99_s = 0.0;
  std::uint64_t events = 0;  ///< DES events executed
  double wall_s = 0.0;       ///< host seconds the run took
  std::uint64_t science_digest = 0;
  std::uint64_t state_hash = 0;
  diet::Agent::PeerStats peer;  ///< summed over all MAs
  std::string journal_jsonl;    ///< when config.journal
};

ServingReport run_serving(const ServingConfig& config);

}  // namespace gc::loadgen
