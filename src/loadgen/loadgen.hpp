// Deterministic open-loop load generator (cf. the paper's Section 5.2
// client farm, scaled up).
//
// The generator turns a LoadSpec into a *plan*: a flat, canonically
// ordered list of arrivals, each naming the client that issues it, the
// request profile it draws, and the absolute simulated time it enters the
// system. Open-loop means arrival times never depend on response times —
// a client whose previous call is still in flight submits anyway, which
// is what exposes queueing collapse at saturation.
//
// Determinism contract: every stochastic choice draws from a per-client
// Rng stream seeded from (spec.seed, client index) only, so the plan is a
// pure function of the spec — independent of scheduling, tie seeds, and
// the number of worker threads. Plans can be written to a trace file and
// replayed bit-identically (doubles round-trip via %.17g).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace gc::loadgen {

/// One kind of request the mix can draw. `service` is a DIET service name
/// (the serving harness registers them on the federation's SEDs).
struct RequestProfile {
  std::string service;
  /// Bytes of IN data shipped with the call (a persistent profile ships
  /// them once, then by reference — the paper's GRAFIC1-style reuse).
  std::uint64_t in_bytes = 8;
  double weight = 1.0;  ///< relative draw probability in the mix
  bool persistent = false;
};

struct LoadSpec {
  int clients = 1000;
  int requests_per_client = 2;
  /// Aggregate Poisson arrival rate across all clients, in requests per
  /// simulated second. Each client's stream is exponential with mean
  /// clients/rate, so the superposition is Poisson(rate).
  double arrival_rate_hz = 500.0;
  /// Non-empty replays this trace file instead of sampling Poisson
  /// arrivals (profiles/seed/rate are then ignored; clients still bounds
  /// the client index space).
  std::string trace_path;
  std::vector<RequestProfile> profiles;
  std::uint64_t seed = 42;
};

/// One planned request: client `client` submits a `profile` request at
/// absolute simulated time `at_s`. `seq` numbers the client's own
/// arrivals from 0.
struct Arrival {
  int client = 0;
  int seq = 0;
  double at_s = 0.0;
  int profile = 0;  ///< index into LoadSpec::profiles (or trace's mix)
};

/// Samples the Poisson plan: per-client exponential inter-arrival streams
/// plus weighted profile draws, merged and canonically sorted by
/// (at_s, client, seq). Requires a non-empty profile mix.
std::vector<Arrival> plan_poisson(const LoadSpec& spec, double start_s);

/// Writes a plan as a replayable text trace (one line per arrival,
/// doubles printed with %.17g so replay is bit-exact).
gc::Status write_trace(const std::string& path,
                       const std::vector<Arrival>& plan);

/// Reads a trace written by write_trace (or by hand; format:
/// `client seq at_s profile` per line, `#` comments ignored).
gc::Status read_trace(const std::string& path, std::vector<Arrival>* plan);

/// Plans per the spec: replays spec.trace_path when set, else samples
/// Poisson arrivals starting at `start_s`.
std::vector<Arrival> plan_arrivals(const LoadSpec& spec, double start_s);

}  // namespace gc::loadgen
